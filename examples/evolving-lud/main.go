// Evolving LUD: the paper's §3 walkthrough. Analyze the blocked LU
// decomposition benchmark, print its symbolic end-to-end SDC specification
// (Equation 2), then apply the small and large code modifications and show
// how much analysis work the compositional store saves on each re-analysis.
//
// Run with: go run ./examples/evolving-lud
package main

import (
	"fmt"
	"log"

	"fastflip"
)

func main() {
	cfg := fastflip.DefaultConfig()
	a := fastflip.NewAnalyzer(cfg)

	fmt.Println("=== original version ===")
	orig := analyze(a, "lud", fastflip.None, false)

	fmt.Println("\nEquation 2 — symbolic end-to-end SDC specification:")
	fmt.Printf("  d(mat) <= %s\n", orig.FormatSpec(0))
	fmt.Println("(the coefficient of each phi is the total downstream amplification")
	fmt.Println(" of an SDC introduced into that section instance's output)")

	fmt.Println("\n=== small modification: BMOD without per-row bounds checks ===")
	small := analyze(a, "lud", fastflip.Small, true)
	speedup(orig, small)

	fmt.Println("\n=== large modification: LU0 replaced by a lookup table ===")
	large := analyze(a, "lud", fastflip.Large, true)
	speedup(orig, large)
}

func analyze(a *fastflip.Analyzer, name string, v fastflip.Variant, modified bool) *fastflip.Result {
	p, err := fastflip.BuildBenchmark(name, v)
	if err != nil {
		log.Fatal(err)
	}
	if modified {
		a.NoteModification()
	}
	r, err := a.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, modified)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sites=%d  sections analyzed=%d reused=%d  FastFlip cost=%.0f Mi  baseline cost=%.0f Mi\n",
		r.SiteCount, r.InjectedInstances, r.ReusedInstances,
		float64(r.FFCost())/1e6, float64(r.BaseCost())/1e6)
	for _, ev := range evals {
		fmt.Printf("  target %.2f: achieved %.4f, protection cost %.3f (baseline %.3f)\n",
			ev.Target, ev.Achieved, ev.FFCostFrac, ev.BaseCostFrac)
	}
	return r
}

func speedup(orig, mod *fastflip.Result) {
	fmt.Printf("re-analysis speedup vs. monolithic baseline: %.1fx "+
		"(FastFlip re-injected %d of %d section instances)\n",
		float64(mod.BaseCost())/float64(mod.FFCost()),
		mod.InjectedInstances, mod.InjectedInstances+mod.ReusedInstances)
	_ = orig
}
