// Minilang: write program sections in the high-level kernel language,
// compile them to the ISA, and run the FastFlip analysis on the result.
//
// The pipeline normalizes a vector in two sections:
//
//	norm:  n = sqrt(Σ v[i]²)
//	scale: out[i] = v[i] / n
//
// Run with: go run ./examples/minilang
package main

import (
	"fmt"
	"log"
	"math"

	"fastflip"
)

const (
	addrV   = 0 // 8 input elements
	addrN   = 8 // the norm
	addrOut = 9 // 8 normalized outputs
)

const kernels = `
kernel norm(v: float[8], n: float[1]) {
    var acc: float = 0.0;
    for i = 0 to 8 {
        acc = acc + v[i] * v[i];
    }
    n[0] = sqrt(acc);
}

kernel scale(v: float[8], n: float[1], out: float[8]) {
    for i = 0 to 8 {
        out[i] = v[i] / n[0];
    }
}
`

func main() {
	fns, err := fastflip.CompileKernels(kernels, fastflip.KernelBindings{
		"v": addrV, "n": addrN, "out": addrOut,
	})
	if err != nil {
		log.Fatal(err)
	}

	mod := fastflip.NewModule()
	main := fastflip.NewFunc("main")
	main.RoiBeg()
	for sec, fn := range fns {
		main.SecBeg(sec)
		main.Call(fn.Name)
		main.SecEnd(sec)
	}
	main.RoiEnd()
	main.Halt()
	mod.MustAdd(main.MustBuild())
	for _, fn := range fns {
		mod.MustAdd(fn)
	}
	linked, err := mod.Link("main")
	if err != nil {
		log.Fatal(err)
	}

	v := fastflip.Buffer{Name: "v", Addr: addrV, Len: 8, Kind: fastflip.Float}
	n := fastflip.Buffer{Name: "n", Addr: addrN, Len: 1, Kind: fastflip.Float}
	out := fastflip.Buffer{Name: "out", Addr: addrOut, Len: 8, Kind: fastflip.Float}
	live := []fastflip.Buffer{v, n, out}

	p := &fastflip.Program{
		Name:     "normalize",
		Linked:   linked,
		MemWords: 32,
		Init: func(m *fastflip.Machine) {
			for i, x := range []float64{3, -1, 4, 1, -5, 9, 2, -6} {
				m.Mem[addrV+i] = math.Float64bits(x)
			}
		},
		Sections: []fastflip.Section{
			{ID: 0, Name: "norm", Instances: []fastflip.InstanceIO{
				{Inputs: []fastflip.Buffer{v}, Outputs: []fastflip.Buffer{n}, Live: live},
			}},
			{ID: 1, Name: "scale", Instances: []fastflip.InstanceIO{
				{Inputs: []fastflip.Buffer{v, n}, Outputs: []fastflip.Buffer{out}, Live: live},
			}},
		},
		FinalOutputs: []fastflip.Buffer{out},
	}

	tr, err := fastflip.RecordTrace(p)
	if err != nil {
		log.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 8; i++ {
		x := math.Float64frombits(tr.Final.Mem[addrOut+i])
		sum += x * x
	}
	fmt.Printf("‖out‖² = %.15f (want 1), trace %d instructions\n", sum, tr.TotalDyn)

	cfg := fastflip.DefaultConfig()
	cfg.Targets = []float64{0.95}
	cfg.CoRunBaseline = true // self-contained ground truth (§4.10 co-run)
	a := fastflip.NewAnalyzer(cfg)
	r, err := a.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sites=%d, end-to-end spec: d(out) <= %s\n", r.SiteCount, r.FormatSpec(0))
	fmt.Printf("protect %d instructions (%.0f%% of dynamic instructions) to cover %.1f%% of SDC-causing flips\n",
		len(evals[0].FF.IDs), evals[0].FFCostFrac*100, evals[0].Achieved*100)
}
