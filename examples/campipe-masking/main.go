// Campipe masking: demonstrates the paper's inter-section masking effect
// (§4.9, §6.3) and how adaptive target adjustment compensates for it.
//
// The camera pipeline's final tonemap stage clamps and quantizes pixels to
// 8-bit levels, silently absorbing many small corruptions introduced
// upstream. FastFlip's conservative propagation cannot see that masking, so
// without adjustment it misranks instructions and undershoots the
// protection target; with adjustment (§4.10) it raises its internal target
// until the externally-measured protection meets the requested one.
//
// Run with: go run ./examples/campipe-masking
package main

import (
	"fmt"
	"log"

	"fastflip"
)

func main() {
	p, err := fastflip.BuildBenchmark("campipe", fastflip.None)
	if err != nil {
		log.Fatal(err)
	}

	cfg := fastflip.DefaultConfig()
	cfg.Targets = []float64{0.90, 0.95, 0.99}

	// Analyze once; evaluate both with and without target adjustment
	// (evaluation reuses the injection results, so the second pass is
	// nearly free — the paper's §6.4 observation).
	withAdj := fastflip.NewAnalyzer(cfg)
	r, err := withAdj.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	withAdj.RunBaseline(r)

	adjEvals, err := withAdj.Evaluate(r, 0, false)
	if err != nil {
		log.Fatal(err)
	}

	noAdjCfg := cfg
	noAdjCfg.AdjustTargets = false
	noAdj := &fastflip.Analyzer{Cfg: noAdjCfg, Store: withAdj.Store}
	rawEvals, err := noAdj.Evaluate(r, 0, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("campipe: %d error sites, %d section instances\n\n", r.SiteCount, len(r.Trace.Instances))
	fmt.Println("target   without adjustment        with adjustment")
	fmt.Println("         achieved   (cost)         v'_trgt  achieved   (cost)")
	for i := range adjEvals {
		raw, adj := rawEvals[i], adjEvals[i]
		fmt.Printf("%.2f     %.4f %s  (%.3f)        %.4f   %.4f %s  (%.3f)\n",
			adj.Target,
			raw.Achieved, mark(raw), raw.FFCostFrac,
			adj.Adjusted, adj.Achieved, mark(adj), adj.FFCostFrac)
	}
	fmt.Println("\n(x = achieved value outside the pruning error range, * = within)")
	fmt.Println("The unadjusted analysis undershoots because the tonemap stage masks")
	fmt.Println("upstream SDCs that FastFlip conservatively counts as harmful.")
}

func mark(ev fastflip.TargetEval) string {
	if ev.WithinRange {
		return "*"
	}
	return "x"
}
