// Quickstart: build a tiny two-section program with the public API, run
// the full FastFlip pipeline on it, and print the instructions that should
// be protected against silent data corruptions.
//
// The program computes, over a 4-element vector v stored in memory:
//
//	section 0 "sumsq": s = Σ v[i]²
//	section 1 "root":  r = sqrt(s)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"fastflip"
)

const (
	addrV = 0 // 4 input words
	addrS = 4 // sum of squares
	addrR = 5 // final output
)

func buildProgram() (*fastflip.Program, error) {
	mod := fastflip.NewModule()

	// main: run both sections inside the region of interest.
	main := fastflip.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Call("sumsq")
	main.SecEnd(0)
	main.SecBeg(1)
	main.Call("root")
	main.SecEnd(1)
	main.RoiEnd()
	main.Halt()
	mod.MustAdd(main.MustBuild())

	// sumsq: s = Σ v[i]² over a counted loop.
	sumsq := fastflip.NewFunc("sumsq")
	sumsq.Fli(0, 0) // accumulator
	sumsq.Li(1, 0)  // i
	sumsq.Li(2, 4)  // n
	sumsq.Label("loop")
	sumsq.Bge(1, 2, "done")
	sumsq.Fld(1, 1, addrV) // v[i] (base register r1 carries the index)
	sumsq.Fmul(1, 1, 1)
	sumsq.Fadd(0, 0, 1)
	sumsq.Addi(1, 1, 1)
	sumsq.Jmp("loop")
	sumsq.Label("done")
	sumsq.Li(1, 0)
	sumsq.Fst(0, 1, addrS)
	sumsq.Ret()
	mod.MustAdd(sumsq.MustBuild())

	// root: r = sqrt(s).
	root := fastflip.NewFunc("root")
	root.Li(1, 0)
	root.Fld(0, 1, addrS)
	root.Fsqrt(0, 0)
	root.Fst(0, 1, addrR)
	root.Ret()
	mod.MustAdd(root.MustBuild())

	linked, err := mod.Link("main")
	if err != nil {
		return nil, err
	}

	v := fastflip.Buffer{Name: "v", Addr: addrV, Len: 4, Kind: fastflip.Float}
	s := fastflip.Buffer{Name: "s", Addr: addrS, Len: 1, Kind: fastflip.Float}
	r := fastflip.Buffer{Name: "r", Addr: addrR, Len: 1, Kind: fastflip.Float}
	live := []fastflip.Buffer{v, s, r}

	return &fastflip.Program{
		Name:     "quickstart",
		Version:  "none",
		Linked:   linked,
		MemWords: 16,
		Init: func(m *fastflip.Machine) {
			for i, x := range []float64{1.5, -2.25, 0.5, 3.0} {
				m.Mem[addrV+i] = math.Float64bits(x)
			}
		},
		Sections: []fastflip.Section{
			{ID: 0, Name: "sumsq", Instances: []fastflip.InstanceIO{
				{Inputs: []fastflip.Buffer{v}, Outputs: []fastflip.Buffer{s}, Live: live},
			}},
			{ID: 1, Name: "root", Instances: []fastflip.InstanceIO{
				{Inputs: []fastflip.Buffer{s}, Outputs: []fastflip.Buffer{r}, Live: live},
			}},
		},
		FinalOutputs: []fastflip.Buffer{r},
	}, nil
}

func main() {
	p, err := buildProgram()
	if err != nil {
		log.Fatal(err)
	}

	// 1. Clean run: record the trace and show the program works.
	tr, err := fastflip.RecordTrace(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean output r = %v (%d dynamic instructions, %d section instances)\n",
		math.Float64frombits(tr.Final.Mem[addrR]), tr.TotalDyn, len(tr.Instances))

	// 2. FastFlip analysis: per-section injection, sensitivity, and the
	//    composed end-to-end SDC specification.
	cfg := fastflip.DefaultConfig()
	cfg.Targets = []float64{0.90, 0.99}
	a := fastflip.NewAnalyzer(cfg)
	r, err := a.Analyze(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nerror sites |J| = %d, injection experiments = %d (%.2f M simulated instructions)\n",
		r.SiteCount, r.FFInject.Experiments, float64(r.FFCost())/1e6)
	fmt.Printf("end-to-end SDC bound: d(r) <= %s\n", r.FormatSpec(0))

	// 3. Baseline co-run and protection selection.
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range evals {
		fmt.Printf("\ntarget %.0f%%: protect %d static instructions "+
			"(%.1f%% of dynamic instructions), achieves %.1f%% of SDC-causing bitflips\n",
			ev.Target*100, len(ev.FF.IDs), ev.FFCostFrac*100, ev.Achieved*100)
	}

	// 4. Show the most valuable instructions to protect.
	bad := r.FFBadCounts(0)
	type row struct {
		id fastflip.StaticID
		n  int
	}
	var rows []row
	for id, n := range bad.PerStatic {
		rows = append(rows, row{id, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Println("\nmost SDC-vulnerable static instructions:")
	for i, rw := range rows {
		if i == 5 {
			break
		}
		fmt.Printf("  %-12s  %5d SDC-causing bitflips, %d dynamic instances\n",
			rw.id, rw.n, r.Costs[rw.id])
	}
}
