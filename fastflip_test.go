// Tests of the public API surface: everything a downstream user touches
// must be reachable through the root package alone.
package fastflip_test

import (
	"math"
	"path/filepath"
	"testing"

	"fastflip"
)

// publicProgram builds a one-section program using only root-package
// identifiers.
func publicProgram(t *testing.T) *fastflip.Program {
	t.Helper()
	mod := fastflip.NewModule()

	main := fastflip.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Call("halve")
	main.SecEnd(0)
	main.RoiEnd()
	main.Halt()
	mod.MustAdd(main.MustBuild())

	halve := fastflip.NewFunc("halve")
	halve.Li(1, 0)
	halve.Fld(0, 1, 0)
	halve.Fli(1, 0.5)
	halve.Fmul(0, 0, 1)
	halve.Li(1, 0)
	halve.Fst(0, 1, 1)
	halve.Ret()
	mod.MustAdd(halve.MustBuild())

	linked, err := mod.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	in := fastflip.Buffer{Name: "in", Addr: 0, Len: 1, Kind: fastflip.Float}
	out := fastflip.Buffer{Name: "out", Addr: 1, Len: 1, Kind: fastflip.Float}
	return &fastflip.Program{
		Name:     "halver",
		Linked:   linked,
		MemWords: 4,
		Init:     func(m *fastflip.Machine) { m.Mem[0] = math.Float64bits(5.0) },
		Sections: []fastflip.Section{
			{ID: 0, Name: "halve", Instances: []fastflip.InstanceIO{
				{Inputs: []fastflip.Buffer{in}, Outputs: []fastflip.Buffer{out},
					Live: []fastflip.Buffer{in, out}},
			}},
		},
		FinalOutputs: []fastflip.Buffer{out},
	}
}

func TestPublicAPIPipeline(t *testing.T) {
	p := publicProgram(t)

	tr, err := fastflip.RecordTrace(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(tr.Final.Mem[1]); got != 2.5 {
		t.Fatalf("out = %v, want 2.5", got)
	}

	cfg := fastflip.DefaultConfig()
	cfg.Targets = []float64{0.9}
	a := fastflip.NewAnalyzer(cfg)
	r, err := a.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 1 || evals[0].FF == nil {
		t.Fatalf("evals = %+v", evals)
	}

	// Store round trip through the public API.
	path := filepath.Join(t.TempDir(), "s.gob")
	if err := a.Store.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := fastflip.LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	a2 := &fastflip.Analyzer{Cfg: cfg, Store: st}
	r2, err := a2.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedInstances != 1 {
		t.Errorf("reuse through public store API: %d", r2.ReusedInstances)
	}
}

func TestPublicBenchmarks(t *testing.T) {
	names := fastflip.Benchmarks()
	if len(names) != 5 {
		t.Fatalf("benchmarks = %v", names)
	}
	for _, v := range []fastflip.Variant{fastflip.None, fastflip.Small, fastflip.Large} {
		p, err := fastflip.BuildBenchmark("bscholes", v)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fastflip.RecordTrace(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fastflip.BuildBenchmark("nope", fastflip.None); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestPublicEvaluation(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign")
	}
	opts := fastflip.DefaultEvalOptions()
	opts.Benchmarks = []string{"bscholes"}
	suite, err := fastflip.RunEvaluation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Table1() == "" || suite.Table2() == "" || suite.Table3() == "" {
		t.Error("empty tables")
	}
}
