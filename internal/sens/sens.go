// Package sens implements the local sensitivity analysis (§2.2, Eq. 1): it
// estimates, for each section instance, how much the section amplifies an
// SDC already present in each of its inputs.
//
// For input buffer i and output buffer o of a section s at concrete input
// x₀, the amplification factor is the empirical Lipschitz estimate
//
//	K[o][i] = max over perturbations φ of |s(x₀+φ)(o) - s(x₀)(o)| / |φ|
//
// computed by re-running the section from its entry checkpoint with random
// perturbations of single, several, or all elements of the input buffer
// (§5.6 "Sensitivity analysis parameters"). Sections marked Discrete
// (integer/bitwise kernels such as a hash round) get the worst-case factor
// instead: any input corruption may scramble the output arbitrarily.
package sens

import (
	"math"
	"math/rand"

	"fastflip/internal/mix"
	"fastflip/internal/spec"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

// DiscreteK is the amplification factor assigned to Discrete sections.
// It is large enough that any propagated SDC exceeds every practical ε.
const DiscreteK = 1e100

// Config controls the sensitivity estimation.
type Config struct {
	// Samples is the number of perturbation runs per input buffer.
	// The paper uses 1e6; our defaults are smaller because the estimates
	// converge quickly at our input sizes (see DESIGN.md).
	Samples int
	// PhiMax is the maximum perturbation magnitude, matching the SDC-Good
	// threshold ε of §5.6.
	PhiMax float64
	// Seed makes the random perturbations reproducible.
	Seed int64
}

// DefaultConfig matches the evaluation setup: perturbations up to 0.01.
func DefaultConfig() Config {
	return Config{Samples: 64, PhiMax: 0.01, Seed: 1}
}

// Amplification holds the per-instance result: K[o][i] is the estimated
// amplification from input buffer i to output buffer o.
type Amplification struct {
	K [][]float64
}

// Stats counts the simulated instructions spent estimating sensitivities.
type Stats struct {
	Runs      int
	SimInstrs uint64
}

// streamSeed derives the perturbation RNG seed of one section instance.
// The instance's full identity — section ID, occurrence index, and dynamic
// position — is avalanche-mixed with the configured seed, so two instances
// never share a perturbation stream even when an edit leaves them at equal
// BegDyn (a plain XOR of cfg.Seed and BegDyn collided exactly there).
// Everything mixed in comes from the trace, so a resumed analysis draws
// the same streams as an uninterrupted one.
func streamSeed(seed int64, inst *trace.Instance) int64 {
	acc := mix.Fold(uint64(seed), uint64(inst.Sec))
	acc = mix.Fold(acc, uint64(inst.Occur))
	acc = mix.Fold(acc, inst.BegDyn)
	return int64(acc)
}

// Analyze estimates the amplification matrix of one section instance.
func Analyze(t *trace.Trace, inst *trace.Instance, cfg Config) (*Amplification, Stats) {
	nIn, nOut := len(inst.IO.Inputs), len(inst.IO.Outputs)
	amp := &Amplification{K: make([][]float64, nOut)}
	for oi := range amp.K {
		amp.K[oi] = make([]float64, nIn)
	}
	var stats Stats

	sec := t.Prog.Sections[inst.Sec]
	if sec.Discrete {
		for oi := 0; oi < nOut; oi++ {
			for ii := 0; ii < nIn; ii++ {
				amp.K[oi][ii] = DiscreteK
			}
		}
		return amp, stats
	}
	if cfg.Samples <= 0 || cfg.PhiMax <= 0 {
		return amp, stats
	}

	rng := rand.New(rand.NewSource(streamSeed(cfg.Seed, inst)))
	m := inst.Entry.Clone()
	limit := inst.BegDyn + 1 + 16*inst.Len() + 64

	for ii, in := range inst.IO.Inputs {
		if in.Kind != spec.Float {
			// Integer inputs of non-discrete sections (e.g. control
			// parameters) are not perturbed; errors in them are covered by
			// the conservative side-effect handling.
			continue
		}
		for s := 0; s < cfg.Samples; s++ {
			m.RestoreFrom(inst.Entry)
			m.MaxDyn = limit
			phi := perturb(rng, m, in, cfg.PhiMax)
			if phi == 0 {
				continue
			}
			if !runToSecEnd(m, inst.Sec) {
				// Perturbation diverged the section so far that it did not
				// complete; treat as worst case for this input.
				for oi := 0; oi < nOut; oi++ {
					amp.K[oi][ii] = DiscreteK
				}
				stats.Runs++
				stats.SimInstrs += m.Dyn - (inst.BegDyn + 1)
				break
			}
			stats.Runs++
			stats.SimInstrs += m.Dyn - (inst.BegDyn + 1)
			for oi, out := range inst.IO.Outputs {
				diff := maxAbsDiff(out, inst.Exit, m)
				if k := diff / phi; k > amp.K[oi][ii] {
					amp.K[oi][ii] = k
				}
			}
		}
	}
	return amp, stats
}

// perturb adds random perturbations up to phiMax to one, several, or all
// elements of the buffer and returns the maximum absolute perturbation
// applied (the |φ| denominator of Eq. 1).
func perturb(rng *rand.Rand, m *vm.Machine, b spec.Buffer, phiMax float64) float64 {
	var idxs []int
	switch rng.Intn(3) {
	case 0: // single element
		idxs = []int{rng.Intn(b.Len)}
	case 1: // several elements
		n := 1 + rng.Intn(b.Len)
		idxs = rng.Perm(b.Len)[:n]
	default: // all elements
		idxs = make([]int, b.Len)
		for i := range idxs {
			idxs[i] = i
		}
	}
	maxPhi := 0.0
	for _, i := range idxs {
		delta := (rng.Float64()*2 - 1) * phiMax
		if delta == 0 {
			continue
		}
		addr := b.Addr + i
		v := math.Float64frombits(m.Mem[addr])
		m.Mem[addr] = math.Float64bits(v + delta)
		if a := math.Abs(delta); a > maxPhi {
			maxPhi = a
		}
	}
	return maxPhi
}

// runToSecEnd resumes the machine until the SECEND of section sec executes.
// It reports false if execution terminates first.
func runToSecEnd(m *vm.Machine, sec int) bool {
	for {
		ev := m.Step()
		switch ev.Kind {
		case vm.EvSecEnd:
			if ev.Sec == sec {
				return true
			}
		case vm.EvHalt, vm.EvCrash, vm.EvTimeout:
			return false
		}
	}
}

func maxAbsDiff(b spec.Buffer, clean, dirty *vm.Machine) float64 {
	max := 0.0
	for i := 0; i < b.Len; i++ {
		cv := math.Float64frombits(clean.Mem[b.Addr+i])
		dv := math.Float64frombits(dirty.Mem[b.Addr+i])
		d := math.Abs(cv - dv)
		if math.IsNaN(d) {
			return math.Inf(1)
		}
		if d > max {
			max = d
		}
	}
	return max
}
