package sens

import (
	"math"
	"testing"

	"fastflip/internal/spec"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
)

func recorded(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestLinearSectionAmplification(t *testing.T) {
	tr := recorded(t)
	// scale: y = 3x, so K(x -> y) is exactly 3 for any perturbation.
	amp, stats := Analyze(tr, tr.Instances[0], DefaultConfig())
	if stats.Runs == 0 || stats.SimInstrs == 0 {
		t.Fatalf("no sensitivity runs recorded: %+v", stats)
	}
	k := amp.K[0][0]
	if math.Abs(k-3) > 1e-9 {
		t.Errorf("K(x->y) = %v, want 3", k)
	}
}

func TestNonlinearSectionAmplification(t *testing.T) {
	tr := recorded(t)
	// square: z = y² + c with y = 4.5, so K(y -> z) = |2y ± φ| ≈ 9.
	cfg := DefaultConfig()
	cfg.Samples = 256
	amp, _ := Analyze(tr, tr.Instances[1], cfg)
	ky := amp.K[0][0]
	if ky < 8.9 || ky > 9.02 {
		t.Errorf("K(y->z) = %v, want ≈ 9 (2·y)", ky)
	}
	// c enters additively: K(c -> z) = 1.
	kc := amp.K[0][1]
	if math.Abs(kc-1) > 1e-6 {
		t.Errorf("K(c->z) = %v, want 1", kc)
	}
}

func TestAmplificationIsConservativeForSmallSamples(t *testing.T) {
	tr := recorded(t)
	// Fewer samples may under-estimate, but never exceed the analytic
	// maximum |2y| + φmax.
	cfg := DefaultConfig()
	cfg.Samples = 8
	amp, _ := Analyze(tr, tr.Instances[1], cfg)
	limit := 2*testprog.WantY() + cfg.PhiMax
	if amp.K[0][0] > limit {
		t.Errorf("K estimate %v exceeds analytic bound %v", amp.K[0][0], limit)
	}
}

func TestDiscreteSection(t *testing.T) {
	p := testprog.Pipeline()
	p.Sections[1].Discrete = true
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	amp, stats := Analyze(tr, tr.Instances[1], DefaultConfig())
	if stats.Runs != 0 {
		t.Errorf("discrete section ran %d perturbations", stats.Runs)
	}
	for _, row := range amp.K {
		for _, k := range row {
			if k != DiscreteK {
				t.Errorf("discrete K = %v, want %v", k, DiscreteK)
			}
		}
	}
}

func TestZeroSamplesYieldZeroMatrix(t *testing.T) {
	tr := recorded(t)
	amp, stats := Analyze(tr, tr.Instances[0], Config{Samples: 0, PhiMax: 0.01})
	if stats.Runs != 0 || amp.K[0][0] != 0 {
		t.Errorf("zero-sample analysis: %+v, K = %v", stats, amp.K)
	}
}

func TestIntegerInputsNotPerturbed(t *testing.T) {
	p := testprog.Pipeline()
	// Declare the square section's c input as integer: it must be skipped.
	p.Sections[1].Instances[0].Inputs[1].Kind = spec.Int
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	amp, _ := Analyze(tr, tr.Instances[1], DefaultConfig())
	if amp.K[0][1] != 0 {
		t.Errorf("integer input was perturbed: K = %v", amp.K[0][1])
	}
	if amp.K[0][0] == 0 {
		t.Error("float input was not perturbed")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	tr := recorded(t)
	a1, _ := Analyze(tr, tr.Instances[1], DefaultConfig())
	a2, _ := Analyze(tr, tr.Instances[1], DefaultConfig())
	if a1.K[0][0] != a2.K[0][0] || a1.K[0][1] != a2.K[0][1] {
		t.Error("sensitivity estimates are not reproducible")
	}
}

func TestDistinctInstancesDrawDistinctStreams(t *testing.T) {
	tr := recorded(t)
	// The regression this guards: seeding with cfg.Seed ^ BegDyn gave two
	// instances with equal BegDyn identical perturbation streams. Identity
	// must separate streams even at a shared dynamic position.
	a := &trace.Instance{Sec: 0, Occur: 0, BegDyn: 1000}
	b := &trace.Instance{Sec: 1, Occur: 0, BegDyn: 1000}
	c := &trace.Instance{Sec: 0, Occur: 1, BegDyn: 1000}
	cfg := DefaultConfig()
	sa, sb, sc := streamSeed(cfg.Seed, a), streamSeed(cfg.Seed, b), streamSeed(cfg.Seed, c)
	if sa == sb || sa == sc || sb == sc {
		t.Fatalf("instances share an RNG seed: sec0/occ0=%d sec1/occ0=%d sec0/occ1=%d", sa, sb, sc)
	}
	// And the real instances of the pipeline trace must differ too.
	s0 := streamSeed(cfg.Seed, tr.Instances[0])
	s1 := streamSeed(cfg.Seed, tr.Instances[1])
	if s0 == s1 {
		t.Fatalf("trace instances share an RNG seed: %d", s0)
	}
}

func TestSeedVariesEstimate(t *testing.T) {
	tr := recorded(t)
	cfg1 := DefaultConfig()
	cfg1.Samples = 4
	cfg2 := cfg1
	cfg2.Seed = 99
	a1, _ := Analyze(tr, tr.Instances[1], cfg1)
	a2, _ := Analyze(tr, tr.Instances[1], cfg2)
	if a1.K[0][0] == a2.K[0][0] {
		t.Log("different seeds produced identical estimates (possible but unlikely)")
	}
}
