package diffcheck

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"

	"fastflip/internal/core"
	"fastflip/internal/harden"
	"fastflip/internal/metrics"
	"fastflip/internal/ostore"
	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// Invariant names the four differential invariants.
type Invariant string

const (
	// InvSound: the composed per-section SDC bound covers the monolithic
	// co-run ground truth — every experiment whose end-to-end outcome is a
	// real SDC must be classified SDC-Bad by the composed specification.
	InvSound Invariant = "sound"
	// InvIncremental: incremental re-analysis after an edit equals a
	// from-scratch analysis of the edited program.
	InvIncremental Invariant = "incremental"
	// InvResume: a campaign killed mid-WAL and resumed converges to the
	// uninterrupted summary.
	InvResume Invariant = "resume"
	// InvEngines: the legacy and clean-cursor replay engines agree on
	// every per-class outcome.
	InvEngines Invariant = "engines"
	// InvHarden: the hardening transform is semantics-preserving — with
	// every eligible instruction protected, the hardened program's
	// fault-free run produces the same final memory, registers, and halt
	// status as the original.
	InvHarden Invariant = "harden"
)

// Invariants lists all five in fixed order.
var Invariants = []Invariant{InvSound, InvIncremental, InvResume, InvEngines, InvHarden}

// Violation describes one failed invariant check on one generated
// program. It satisfies error so checks compose with normal error plumbing.
type Violation struct {
	Invariant Invariant `json:"invariant"`
	Seed      uint64    `json:"seed"`
	Detail    string    `json:"detail"`
	Prog      *Prog     `json:"prog"`
	Edit      *Edit     `json:"edit,omitempty"`
}

func (v *Violation) Error() string {
	return fmt.Sprintf("diffcheck: invariant %q violated on seed %#x (%d sections): %s",
		v.Invariant, v.Seed, len(v.Prog.Secs), v.Detail)
}

func violationf(inv Invariant, g *Prog, e *Edit, format string, args ...any) *Violation {
	return &Violation{Invariant: inv, Seed: g.Seed, Detail: fmt.Sprintf(format, args...), Prog: g, Edit: e}
}

// baseConfig is the analysis configuration shared by all oracles: no
// target evaluation, no adaptive adjustment, ε = 0.
func baseConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Targets = nil
	cfg.AdjustTargets = false
	cfg.Epsilon = 0
	return cfg
}

func build(inv Invariant, g *Prog, e *Edit) (*spec.Program, *Violation) {
	p, err := g.Program()
	if err != nil {
		// A generated or shrunk program that fails to compile is itself a
		// bug worth reporting — the generator's contract is well-formedness.
		return nil, violationf(inv, g, e, "program construction failed: %v", err)
	}
	return p, nil
}

func maxMag(mags []float64) float64 {
	m := 0.0
	for _, v := range mags {
		if v > m {
			m = v
		}
	}
	return m
}

// CheckSoundness verifies invariant 1 on a FamilySound program: running
// the per-section campaign with the co-run monolithic baseline, every
// experiment whose end-to-end outcome is an SDC with a real value
// difference must be classified SDC-Bad by the composed specification at
// ε = 0, and the per-static SDC-Bad counts from the composed bound must
// dominate the co-run ground truth.
func CheckSoundness(g *Prog) *Violation {
	p, v := build(InvSound, g, nil)
	if v != nil {
		return v
	}
	cfg := baseConfig()
	cfg.CoRunBaseline = true
	r, err := core.NewAnalyzer(cfg).Analyze(p)
	if err != nil {
		return violationf(InvSound, g, nil, "analysis failed: %v", err)
	}
	zeroEps := make([]float64, len(p.FinalOutputs))
	for _, co := range r.ClassOutcomes() {
		if co.Fin == nil || co.Fin.Kind != metrics.SDC || maxMag(co.Fin.Magnitudes) == 0 {
			continue
		}
		if !r.Spec.Bad(co.Inst, co.Out.Magnitudes, zeroEps) {
			return violationf(InvSound, g, nil,
				"class %v inst %d: co-run ground truth is SDC (max mag %g) but composed bound classifies benign (section outcome %v, mags %v)",
				co.Key, co.Inst, maxMag(co.Fin.Magnitudes), co.Out.Kind, co.Out.Magnitudes)
		}
	}
	ff := r.FFBadCounts(0)
	truth := r.CoRunBadCounts(0)
	for id, n := range truth.PerStatic {
		if ff.PerStatic[id] < n {
			return violationf(InvSound, g, nil,
				"static %v: composed bound marks %d sites SDC-Bad, co-run ground truth has %d",
				id, ff.PerStatic[id], n)
		}
	}
	return nil
}

// CheckIncremental verifies invariant 2: analyze the base program, note
// the modification, re-analyze the edited program with the warm store,
// and require the result to equal a from-scratch analysis of the edited
// program — per-class outcomes and the engine-work-neutralized summary —
// while reusing at least MinReuse section instances.
func CheckIncremental(g *Prog, e *Edit) *Violation {
	edited := e.Apply(g)
	pBase, v := build(InvIncremental, g, e)
	if v != nil {
		return v
	}
	pEdit, v := build(InvIncremental, edited, e)
	if v != nil {
		return v
	}
	cfg := baseConfig()
	// Strict keys make reuse exact: a fault-deflected load can observe
	// output/live words outside the declared inputs, so equality with the
	// from-scratch analysis only holds when those contents are keyed (the
	// fuzzer found the divergence under default keys; see DESIGN.md §10).
	cfg.StrictReuseKeys = true

	a := core.NewAnalyzer(cfg)
	if _, err := a.Analyze(pBase); err != nil {
		return violationf(InvIncremental, g, e, "base analysis failed: %v", err)
	}
	a.NoteModification()
	rIncr, err := a.Analyze(pEdit)
	if err != nil {
		return violationf(InvIncremental, g, e, "incremental analysis failed: %v", err)
	}
	rScratch, err := core.NewAnalyzer(cfg).Analyze(pEdit)
	if err != nil {
		return violationf(InvIncremental, g, e, "scratch analysis failed: %v", err)
	}

	if v := compareOutcomes(InvIncremental, g, e, rScratch, rIncr, "scratch", "incremental"); v != nil {
		return v
	}
	sIncr := rIncr.Summarize(cfg.Epsilon, nil)
	sScratch := rScratch.Summarize(cfg.Epsilon, nil)
	for _, s := range []*core.Summary{sIncr, sScratch} {
		neutralizeWork(s)
		// Reuse legitimately splits the work between store hits and fresh
		// injection; everything outcome-shaped must still match. The
		// elided subset is part of that split — a reused instance serves
		// its outcomes from the store without re-proving elision.
		s.Reused, s.Injected = 0, 0
		s.FFExperiments = 0
		s.FFSimInstrs = 0
		s.ElidedExperiments, s.ElidedSimInstrs = 0, 0
	}
	if !reflect.DeepEqual(sIncr, sScratch) {
		return violationf(InvIncremental, g, e,
			"summaries differ (edit %s):\nincremental: %+v\nscratch:     %+v", e.Kind, sIncr, sScratch)
	}
	if min := MinReuse(len(g.Secs), e); rIncr.ReusedInstances < min {
		return violationf(InvIncremental, g, e,
			"edit %s reused %d section instances, want at least %d", e.Kind, rIncr.ReusedInstances, min)
	}
	return nil
}

// CheckIncrementalTier verifies invariant 2 with the reuse flowing
// through the shared outcome tier instead of a warm in-memory store: the
// base program is analyzed by one process-equivalent (its own
// ostore.Store handle over dir, publishing every section), the edited
// program by a second handle with a completely fresh section store — so
// every reused section must round-trip through gob, the segment file, and
// the cross-handle directory rescan — and the result must still equal a
// from-scratch analysis of the edited program. dir is a scratch
// directory; "" allocates a temporary one.
func CheckIncrementalTier(g *Prog, e *Edit, dir string) *Violation {
	edited := e.Apply(g)
	pBase, v := build(InvIncremental, g, e)
	if v != nil {
		return v
	}
	pEdit, v := build(InvIncremental, edited, e)
	if v != nil {
		return v
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "diffcheck-ostore-")
		if err != nil {
			return violationf(InvIncremental, g, e, "mkdir temp: %v", err)
		}
		defer os.RemoveAll(d)
		dir = d
	}
	cfg := baseConfig()
	cfg.StrictReuseKeys = true // see CheckIncremental

	os1, err := ostore.Open(ostore.Options{Dir: dir})
	if err != nil {
		return violationf(InvIncremental, g, e, "opening shared tier: %v", err)
	}
	a1 := core.NewAnalyzer(cfg)
	a1.Store.WithTier(os1.AsTier("base"))
	if _, err := a1.Analyze(pBase); err != nil {
		return violationf(InvIncremental, g, e, "base analysis failed: %v", err)
	}
	if err := os1.Close(); err != nil {
		return violationf(InvIncremental, g, e, "publishing base sections: %v", err)
	}

	os2, err := ostore.Open(ostore.Options{Dir: dir})
	if err != nil {
		return violationf(InvIncremental, g, e, "reopening shared tier: %v", err)
	}
	defer os2.Close()
	a2 := core.NewAnalyzer(cfg)
	a2.Store.WithTier(os2.AsTier("incr"))
	a2.NoteModification()
	rIncr, err := a2.Analyze(pEdit)
	if err != nil {
		return violationf(InvIncremental, g, e, "incremental analysis failed: %v", err)
	}
	rScratch, err := core.NewAnalyzer(cfg).Analyze(pEdit)
	if err != nil {
		return violationf(InvIncremental, g, e, "scratch analysis failed: %v", err)
	}

	if v := compareOutcomes(InvIncremental, g, e, rScratch, rIncr, "scratch", "incremental-tier"); v != nil {
		return v
	}
	sIncr := rIncr.Summarize(cfg.Epsilon, nil)
	sScratch := rScratch.Summarize(cfg.Epsilon, nil)
	for _, s := range []*core.Summary{sIncr, sScratch} {
		neutralizeWork(s)
		s.Reused, s.Injected = 0, 0
		s.FFExperiments = 0
		s.FFSimInstrs = 0
		s.ElidedExperiments, s.ElidedSimInstrs = 0, 0
	}
	if !reflect.DeepEqual(sIncr, sScratch) {
		return violationf(InvIncremental, g, e,
			"summaries differ with shared tier (edit %s):\nincremental: %+v\nscratch:     %+v", e.Kind, sIncr, sScratch)
	}
	if min := MinReuse(len(g.Secs), e); rIncr.ReusedInstances < min {
		return violationf(InvIncremental, g, e,
			"edit %s reused %d section instances through the shared tier, want at least %d", e.Kind, rIncr.ReusedInstances, min)
	}
	return nil
}

// CheckResume verifies invariant 3: a WAL-backed campaign cancelled after
// its first injected instance, resumed by a fresh analyzer, must converge
// to the uninterrupted run's summary and per-class outcomes, re-executing
// exactly the remainder. walDir is a scratch directory; "" allocates a
// temporary one.
func CheckResume(g *Prog, walDir string) *Violation {
	p, v := build(InvResume, g, nil)
	if v != nil {
		return v
	}
	if walDir == "" {
		dir, err := os.MkdirTemp("", "diffcheck-wal-")
		if err != nil {
			return violationf(InvResume, g, nil, "mkdir temp: %v", err)
		}
		defer os.RemoveAll(dir)
		walDir = dir
	}
	cfg := baseConfig()
	cfg.Workers = 1 // deterministic crash point

	rRef, err := core.NewAnalyzer(cfg).Analyze(p)
	if err != nil {
		return violationf(InvResume, g, nil, "reference analysis failed: %v", err)
	}

	cfg1 := cfg
	cfg1.WALDir = walDir
	a1 := core.NewAnalyzer(cfg1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a1.Progress = func(pr core.Progress) {
		if pr.Injected >= 1 {
			cancel()
		}
	}
	if _, err := a1.AnalyzeContext(ctx, p); !errors.Is(err, context.Canceled) {
		return violationf(InvResume, g, nil, "interrupted analysis returned %v, want context.Canceled", err)
	}

	cfg2 := cfg
	cfg2.WALDir = walDir
	cfg2.Resume = true
	r2, err := core.NewAnalyzer(cfg2).Analyze(p)
	if err != nil {
		return violationf(InvResume, g, nil, "resumed analysis failed: %v", err)
	}
	if r2.ResumedExperiments() == 0 {
		return violationf(InvResume, g, nil, "resume recovered nothing from the WAL")
	}
	newWork := r2.FFInject.Experiments - r2.FFRecovered.Experiments
	if want := rRef.FFInject.Experiments - r2.FFRecovered.Experiments; newWork != want {
		return violationf(InvResume, g, nil,
			"resume re-executed %d experiments, want exactly the remainder %d", newWork, want)
	}
	if v := compareOutcomes(InvResume, g, nil, rRef, r2, "uninterrupted", "resumed"); v != nil {
		return v
	}
	sRef := rRef.Summarize(cfg.Epsilon, nil)
	s2 := r2.Summarize(cfg.Epsilon, nil)
	neutralizeWork(sRef)
	neutralizeWork(s2)
	if !reflect.DeepEqual(sRef, s2) {
		return violationf(InvResume, g, nil,
			"resumed summary differs from uninterrupted run:\nref:     %+v\nresumed: %+v", sRef, s2)
	}
	return nil
}

// engineConfigs is the replay-engine matrix the engines invariant sweeps:
// the default batched cursor engine with static-masking elision, the same
// engine with each tier disabled, and the legacy full-restore engine. All
// four must agree experiment by experiment. Exhaustive disables elision,
// so its accounted costs legitimately differ (see neutralizeElision).
var engineConfigs = []struct {
	name       string
	exhaustive bool
	mut        func(*core.Config)
}{
	{name: "cursor-batch", mut: func(*core.Config) {}},
	{name: "cursor-scalar", mut: func(c *core.Config) { c.NoBatch = true }},
	{name: "cursor-exhaustive", exhaustive: true, mut: func(c *core.Config) { c.Elide = false; c.NoBatch = true }},
	{name: "legacy", mut: func(c *core.Config) {
		c.LegacyReplay = true
		c.CheckpointInterval = -1
	}},
}

// CheckEngines verifies invariant 4 over the full engine matrix: the
// legacy full-restore engine, the clean-cursor engine with and without
// lockstep batching, and the exhaustive configuration with the static
// masking tier disabled all agree on every per-class outcome, on the
// work-neutralized summary, and on the rendered end-to-end specification.
// Exhaustive agreement is the elision tier's correctness claim: every
// experiment the masking proof skipped really is Masked when simulated.
func CheckEngines(g *Prog) *Violation {
	p, v := build(InvEngines, g, nil)
	if v != nil {
		return v
	}
	results := make([]*core.Result, len(engineConfigs))
	for i, ec := range engineConfigs {
		cfg := baseConfig()
		ec.mut(&cfg)
		r, err := core.NewAnalyzer(cfg).Analyze(p)
		if err != nil {
			return violationf(InvEngines, g, nil, "analysis (%s) failed: %v", ec.name, err)
		}
		results[i] = r
	}
	ref, refName := results[0], engineConfigs[0].name
	sRef := ref.Summarize(0, nil)
	neutralizeWork(sRef)
	for i, ec := range engineConfigs[1:] {
		r := results[i+1]
		if v := compareOutcomes(InvEngines, g, nil, ref, r, refName, ec.name); v != nil {
			return v
		}
		s := r.Summarize(0, nil)
		neutralizeWork(s)
		want := sRef
		if ec.exhaustive {
			want = new(core.Summary)
			*want = *sRef
			if sRef.Baseline != nil {
				bl := *sRef.Baseline
				want.Baseline = &bl
			}
			neutralizeElision(want)
			neutralizeElision(s)
		}
		if !reflect.DeepEqual(want, s) {
			return violationf(InvEngines, g, nil,
				"summaries differ:\n%s: %+v\n%s: %+v", refName, want, ec.name, s)
		}
		for λ := range p.FinalOutputs {
			if a, b := ref.FormatSpec(λ), r.FormatSpec(λ); a != b {
				return violationf(InvEngines, g, nil,
					"end-to-end specification %d differs:\n%s: %s\n%s: %s", λ, refName, a, ec.name, b)
			}
		}
	}
	return nil
}

// CheckHarden verifies the harden invariant: protect every eligible
// instruction of the generated program with duplication-and-compare
// detectors and require the hardened fault-free run to halt with the same
// final memory (below the original MemWords — the detector spill slots
// above are private) and the same register files as the original. A
// detector that fires without a fault, a mis-remapped branch, or an
// unrestored spill all surface here as state divergence.
func CheckHarden(g *Prog) *Violation {
	p, v := build(InvHarden, g, nil)
	if v != nil {
		return v
	}
	m := p.NewMachine()
	m.MaxDyn = 1 << 22
	if ev := m.Run(); ev.Kind != vm.EvHalt {
		return violationf(InvHarden, g, nil, "original run did not halt: %v (status %v)", ev.Kind, m.Status)
	}

	sel := make(map[prog.StaticID]bool, len(p.Linked.Code))
	for pc := range p.Linked.Code {
		sel[p.Linked.StaticIDOf(pc)] = true
	}
	hp, res, err := harden.Program(p, sel, harden.Options{})
	if err != nil {
		return violationf(InvHarden, g, nil, "hardening failed: %v", err)
	}
	hm := hp.NewMachine()
	hm.MaxDyn = 1 << 22
	if ev := hm.Run(); ev.Kind != vm.EvHalt {
		return violationf(InvHarden, g, nil,
			"hardened run did not halt: %v (status %v, pc %d; %d protected, %d spills)",
			ev.Kind, hm.Status, hm.PC, len(res.Protected), res.Spills)
	}
	for i := 0; i < p.MemWords; i++ {
		if m.Mem[i] != hm.Mem[i] {
			return violationf(InvHarden, g, nil,
				"mem[%d] diverged: original %#x, hardened %#x", i, m.Mem[i], hm.Mem[i])
		}
	}
	if m.R != hm.R {
		return violationf(InvHarden, g, nil, "integer registers diverged:\noriginal %v\nhardened %v", m.R, hm.R)
	}
	if m.F != hm.F {
		return violationf(InvHarden, g, nil, "float registers diverged:\noriginal %v\nhardened %v", m.F, hm.F)
	}
	return nil
}

// compareOutcomes requires identical per-class outcome sequences.
func compareOutcomes(inv Invariant, g *Prog, e *Edit, want, got *core.Result, wantName, gotName string) *Violation {
	a, b := want.ClassOutcomes(), got.ClassOutcomes()
	if len(a) != len(b) {
		return violationf(inv, g, e, "class count: %s %d, %s %d", wantName, len(a), gotName, len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Inst != b[i].Inst {
			return violationf(inv, g, e, "class %d identity differs: %s %v inst %d, %s %v inst %d",
				i, wantName, a[i].Key, a[i].Inst, gotName, b[i].Key, b[i].Inst)
		}
		if !reflect.DeepEqual(a[i], b[i]) {
			return violationf(inv, g, e, "class %v inst %d: %s outcome %+v, %s outcome %+v",
				a[i].Key, a[i].Inst, wantName, a[i], gotName, b[i])
		}
	}
	return nil
}

// neutralizeWork zeroes summary fields that legitimately differ between
// two runs of the same analysis: wall time, the engine work split, batch
// dispatch telemetry (how the experiments were grouped, not what they
// found), and resume/WAL bookkeeping. Outcome counts and accounted costs
// survive.
func neutralizeWork(s *core.Summary) {
	s.FFWall = 0
	s.FFCleanInstrs, s.FFFaultyInstrs = 0, 0
	s.BatchedExperiments, s.BatchReplicasAvg = 0, 0
	s.ResumedExperiments = 0
	s.WALNotes = nil
	if s.Baseline != nil {
		s.Baseline.Wall = 0
		s.Baseline.CleanInstrs, s.Baseline.FaultyInstrs = 0, 0
		s.Baseline.BatchedExperiments = 0
	}
}

// neutralizeElision additionally zeroes the accounted-cost fields that an
// elide-on vs elide-off comparison legitimately disagrees on: an elided
// experiment is charged only its clean prefix, so total accounted cost
// (and the baseline speedup derived from it) shifts while every outcome
// stays byte-identical — which is exactly what the engine matrix asserts.
func neutralizeElision(s *core.Summary) {
	s.FFSimInstrs = 0
	s.ElidedExperiments, s.ElidedSimInstrs = 0, 0
	if s.Baseline != nil {
		s.Baseline.SimInstrs = 0
		s.Baseline.ElidedExperiments, s.Baseline.ElidedSimInstrs = 0, 0
		s.Baseline.Speedup = 0
	}
}

// Check dispatches one invariant on one seed: it generates the program
// (FamilySound for the soundness oracle, FamilyMixed otherwise), derives
// an edit for the incremental oracle, and runs the check.
func Check(inv Invariant, seed uint64) *Violation {
	switch inv {
	case InvSound:
		return CheckSoundness(Generate(seed, FamilySound))
	case InvIncremental:
		g := Generate(seed, FamilyMixed)
		return CheckIncremental(g, ProposeEdit(g, newRNG(seed^0xed17)))
	case InvResume:
		return CheckResume(Generate(seed, FamilyMixed), "")
	case InvEngines:
		return CheckEngines(Generate(seed, FamilyMixed))
	case InvHarden:
		return CheckHarden(Generate(seed, FamilyMixed))
	default:
		panic(fmt.Sprintf("diffcheck: unknown invariant %q", inv))
	}
}
