// Package diffcheck is the differential verification subsystem: a seeded
// generator of well-formed minilang pipelines and of edits to them, plus
// oracles that cross-check the analysis pipeline against itself.
//
// The generator plays the role Csmith plays for C compilers. Each seed
// deterministically yields a multi-section program (float kernels with
// loops, branches, index reversals, and optionally a discrete integer
// kernel) whose ground truth the oracles can afford to compute; the four
// oracles in oracle.go then assert the paper's equivalence claims on it:
// composed-bound soundness against the co-run ground truth, incremental
// re-analysis vs from-scratch, crash/resume convergence, and legacy vs
// cursor replay engine agreement. Failures shrink (shrink.go) to a minimal
// reproducer written to a corpus directory (corpus.go).
//
// Soundness needs care: the sensitivity stage estimates an *empirical*
// Lipschitz factor, which genuinely under-approximates nonlinear kernels.
// The soundness family (FamilySound) therefore generates only elementwise
// affine float pipelines with one uniform nonzero literal coefficient per
// (input buffer → output) edge and full-range loops: for those the
// empirical K equals the true |coefficient| on every sample, every
// section output feeds the final output through a nonzero-coefficient
// chain, and the composed bound provably covers the co-run truth at ε = 0.
// The mixed family (FamilyMixed) adds discrete integer kernels and is used
// by the determinism oracles, which compare two runs of the same analysis
// and need no soundness guarantee.
package diffcheck

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"fastflip/internal/lang"
	"fastflip/internal/mix"
	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// Family selects the generator's program family.
type Family int

const (
	// FamilySound generates elementwise affine float pipelines for which
	// the composed SDC bound is provably sound at ε = 0.
	FamilySound Family = iota
	// FamilyMixed additionally generates discrete integer kernels and
	// int/float conversions; used by the run-vs-run determinism oracles.
	FamilyMixed
)

func (f Family) String() string {
	if f == FamilySound {
		return "sound"
	}
	return "mixed"
}

// Prog is the generator's IR: a buffer-chained pipeline of elementwise
// kernels. It is the unit the edit generator and the shrinker operate on,
// and what a reproducer serializes. Buffer ids are stable across edits:
// buffer 0 is the program input, every section writes its own fresh
// buffer, and addresses are derived from the id alone.
type Prog struct {
	Seed   uint64 `json:"seed"`
	BufLen int    `json:"buf_len"`
	// NextBuf is the first unused buffer id (edits allocate from here).
	NextBuf int `json:"next_buf"`
	// Final is the buffer id compared as the program's final output.
	Final int `json:"final"`
	// IntBufs lists buffer ids holding integers. Membership is decided
	// when the buffer is created and survives shrinking (a consumer keeps
	// reading `float(b[i])` even if the producing section was dropped).
	IntBufs []int `json:"int_bufs,omitempty"`
	Secs    []Sec `json:"sections"`
}

// Sec is one section: a kernel computing, elementwise over [0, Bound),
//
//	out[i] = Σ_t Coef_t · src_t[σ_t(i)]  (+ additive index term)
//
// or, for Discrete sections, an integer modular kernel.
type Sec struct {
	Name string `json:"name"`
	Out  int    `json:"out"`
	// Bound is the loop's upper bound; FamilySound always generates the
	// full BufLen (partial bounds arrive only through edits).
	Bound int    `json:"bound"`
	Terms []Term `json:"terms"`
	// AddMode selects the additive index term: 0 a plain constant AddA,
	// 1 a branch-selected constant (AddA, or AddB when i < Bound/2),
	// 2 the index-scaled term float(i)·AddA.
	AddMode int     `json:"add_mode"`
	AddA    float64 `json:"add_a"`
	AddB    float64 `json:"add_b,omitempty"`
	// Dead adds a semantically inert statement (the preserving edit).
	Dead bool `json:"dead,omitempty"`
	// DeadMask adds an inert bitwise chain (AND/OR/shift over a register
	// that is never read): every bit of it is dead, so the static masking
	// tier gets whole statements to prove elidable. Safe in FamilySound —
	// dead code carries no soundness weight.
	DeadMask bool `json:"dead_mask,omitempty"`

	// Discrete marks an integer modular kernel
	// out[i] = (trunc(src) · IMul + IAdd) mod IMod, declared Discrete to
	// the analysis. Terms[0] supplies the source buffer.
	Discrete bool `json:"discrete,omitempty"`
	IMul     int  `json:"imul,omitempty"`
	IAdd     int  `json:"iadd,omitempty"`
	IMod     int  `json:"imod,omitempty"`
	// MaskAnd/MaskOr (MaskAnd nonzero) insert a live absorption chain
	// v = v & MaskAnd; v = v | MaskOr before the modulus: bits above
	// MaskAnd and under MaskOr are absorbed, so faults there are provably
	// masked. Trunc (nonzero) truncates the store — out[i] = v & Trunc —
	// making the ignored high bits dead all the way upstream.
	MaskAnd int `json:"mask_and,omitempty"`
	MaskOr  int `json:"mask_or,omitempty"`
	Trunc   int `json:"trunc,omitempty"`
}

// Term is one dataflow edge: Coef · src[i] (or src[Bound-1-i] when Rev).
type Term struct {
	Src  int     `json:"src"`
	Coef float64 `json:"coef"`
	Rev  bool    `json:"rev,omitempty"`
}

// rng is a tiny deterministic generator over mix.Splitmix64. It is
// self-contained so generated programs are stable across Go releases.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: mix.Splitmix64(seed)} }

func (r *rng) next() uint64 {
	r.state++
	return mix.Splitmix64(r.state)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) bool() bool { return r.next()&1 == 1 }

// coefPalette holds the uniform per-edge coefficients; all nonzero, with
// magnitudes spanning [0.25, 4] so both attenuating and amplifying edges
// occur. Zero is deliberately absent: a zero coefficient disconnects the
// dataflow an injected error actually follows.
var coefPalette = []float64{0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3, 4}

func (r *rng) coef() float64 {
	c := coefPalette[r.intn(len(coefPalette))]
	if r.bool() {
		c = -c
	}
	return c
}

// addPalette holds additive constants (zero allowed: they cancel in
// differences and carry no soundness weight).
var addPalette = []float64{0, 0.125, 0.5, 1, 2.5, -0.75, -2}

func (r *rng) addConst() float64 { return addPalette[r.intn(len(addPalette))] }

// Generate deterministically builds a program for seed within the family.
func Generate(seed uint64, fam Family) *Prog {
	r := newRNG(seed)
	g := &Prog{
		Seed:   seed,
		BufLen: 2 + r.intn(3), // 2..4
	}
	nsec := 2 + r.intn(3) // 2..4
	discreteAt := -1
	if fam == FamilyMixed && nsec > 2 && r.bool() {
		// One discrete kernel somewhere strictly inside the pipeline.
		discreteAt = 1 + r.intn(nsec-2)
	}
	for j := 0; j < nsec; j++ {
		out := j + 1
		s := Sec{
			Name:  fmt.Sprintf("k%d", out),
			Out:   out,
			Bound: g.BufLen,
		}
		// The chain edge: every section reads its predecessor's output,
		// so every buffer has a nonzero-coefficient path to the final.
		chainSrc := j
		s.Terms = append(s.Terms, Term{Src: chainSrc, Coef: r.coef(), Rev: r.bool()})
		if j == discreteAt {
			s.Discrete = true
			s.IMul = 2 + r.intn(5)
			s.IAdd = r.intn(10)
			s.IMod = 5 + r.intn(13)
			if r.bool() {
				// Contiguous low mask (15..255) plus a small OR constant:
				// absorbed bits give the elision tier real work.
				s.MaskAnd = 1<<(4+r.intn(5)) - 1
				s.MaskOr = r.intn(8)
			}
			if r.bool() {
				s.Trunc = 1<<(2+r.intn(3)) - 1
			}
			g.IntBufs = append(g.IntBufs, out)
		} else {
			// An optional skip edge from an earlier distinct buffer
			// exercises chisel's multi-path summation.
			if j > 0 && r.bool() {
				extra := r.intn(j) // in [0, j): always distinct from chainSrc
				s.Terms = append(s.Terms, Term{Src: extra, Coef: r.coef(), Rev: r.bool()})
			}
			s.AddMode = r.intn(3)
			s.AddA = r.addConst()
			if s.AddMode == 1 {
				s.AddB = r.addConst()
			} else if s.AddMode == 2 {
				// Index-scaled terms need a nonzero scale to matter.
				s.AddA = 0.5
			}
		}
		// One kernel in four carries the inert mask chain, in both
		// families — provably-elidable statements everywhere the oracles
		// look.
		s.DeadMask = r.intn(4) == 0
		g.Secs = append(g.Secs, s)
	}
	g.NextBuf = nsec + 1
	g.Final = nsec
	return g
}

// intBuf reports whether buffer id holds integers.
func (g *Prog) intBuf(id int) bool {
	for _, b := range g.IntBufs {
		if b == id {
			return true
		}
	}
	return false
}

// bufName returns the stable source-level name of a buffer.
func bufName(id int) string { return fmt.Sprintf("b%d", id) }

// addr returns the memory base address of a buffer.
func (g *Prog) addr(id int) int { return id * g.BufLen }

// MemWords returns the memory size of the built program.
func (g *Prog) MemWords() int { return g.NextBuf*g.BufLen + 4 }

// Name returns the spec.Program name, derived from the seed.
func (g *Prog) Name() string { return fmt.Sprintf("dc%016x", g.Seed) }

func formatFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// refExpr renders a read of src at loop index i (reversed within the
// section's bound when rev), converting integer buffers to float.
func (g *Prog) refExpr(src int, rev bool, bound int, asFloat bool) string {
	idx := "i"
	if rev {
		idx = fmt.Sprintf("%d - i", bound-1)
	}
	e := fmt.Sprintf("%s[%s]", bufName(src), idx)
	if asFloat && g.intBuf(src) {
		e = fmt.Sprintf("float(%s)", e)
	}
	return e
}

// bufsOf returns the sorted distinct buffer ids a section touches
// (sources first semantics-wise, but sorted by id for stable rendering).
func bufsOf(s Sec) []int {
	seen := map[int]bool{s.Out: true}
	ids := []int{s.Out}
	for _, t := range s.Terms {
		if !seen[t.Src] {
			seen[t.Src] = true
			ids = append(ids, t.Src)
		}
	}
	sort.Ints(ids)
	return ids
}

// Source renders the program as minilang source, one kernel per section.
func (g *Prog) Source() string {
	var b strings.Builder
	for _, s := range g.Secs {
		g.renderKernel(&b, s)
		b.WriteString("\n")
	}
	return b.String()
}

func (g *Prog) renderKernel(b *strings.Builder, s Sec) {
	fmt.Fprintf(b, "kernel %s(", s.Name)
	for i, id := range bufsOf(s) {
		if i > 0 {
			b.WriteString(", ")
		}
		kind := "float"
		if g.intBuf(id) {
			kind = "int"
		}
		fmt.Fprintf(b, "%s: %s[%d]", bufName(id), kind, g.BufLen)
	}
	b.WriteString(") {\n")
	if s.Dead {
		// Semantically inert: the register it initializes is never read.
		b.WriteString("    var dz: float = 1.25;\n")
	}
	if s.DeadMask {
		// Inert bitwise chain: dm is never read, so every bit of every
		// intermediate is dead and the masking tier elides the whole chain.
		b.WriteString("    var dm: int = 202;\n")
		b.WriteString("    dm = dm & 60;\n")
		b.WriteString("    dm = dm | 5;\n")
		b.WriteString("    dm = dm << 3;\n")
	}
	if s.Discrete {
		g.renderDiscreteBody(b, s)
	} else {
		g.renderFloatBody(b, s)
	}
	b.WriteString("}\n")
}

func (g *Prog) renderFloatBody(b *strings.Builder, s Sec) {
	fmt.Fprintf(b, "    for i = 0 to %d {\n", s.Bound)
	var terms []string
	for _, t := range s.Terms {
		terms = append(terms, fmt.Sprintf("%s * %s", formatFloat(t.Coef), g.refExpr(t.Src, t.Rev, s.Bound, true)))
	}
	switch s.AddMode {
	case 1:
		fmt.Fprintf(b, "        var g: float = %s;\n", formatFloat(s.AddA))
		fmt.Fprintf(b, "        if i < %d {\n            g = %s;\n        }\n", s.Bound/2, formatFloat(s.AddB))
		terms = append(terms, "g")
	case 2:
		terms = append(terms, fmt.Sprintf("float(i) * %s", formatFloat(s.AddA)))
	default:
		if s.AddA != 0 {
			terms = append(terms, formatFloat(s.AddA))
		}
	}
	fmt.Fprintf(b, "        %s[i] = %s;\n", bufName(s.Out), strings.Join(terms, " + "))
	b.WriteString("    }\n")
}

func (g *Prog) renderDiscreteBody(b *strings.Builder, s Sec) {
	src := s.Terms[0]
	fmt.Fprintf(b, "    for i = 0 to %d {\n", s.Bound)
	ref := g.refExpr(src.Src, src.Rev, s.Bound, false)
	if g.intBuf(src.Src) {
		fmt.Fprintf(b, "        var v: int = %s;\n", ref)
	} else {
		fmt.Fprintf(b, "        var v: int = int(%s * 8.0);\n", ref)
	}
	fmt.Fprintf(b, "        v = v * %d;\n", s.IMul)
	fmt.Fprintf(b, "        v = v + %d;\n", s.IAdd)
	if s.MaskAnd != 0 {
		fmt.Fprintf(b, "        v = v & %d;\n", s.MaskAnd)
		fmt.Fprintf(b, "        v = v | %d;\n", s.MaskOr)
	}
	if s.Trunc != 0 {
		fmt.Fprintf(b, "        v = v %% %d;\n", s.IMod)
		fmt.Fprintf(b, "        %s[i] = v & %d;\n", bufName(s.Out), s.Trunc)
	} else {
		fmt.Fprintf(b, "        %s[i] = v %% %d;\n", bufName(s.Out), s.IMod)
	}
	b.WriteString("    }\n")
}

// InputValues returns the deterministic contents of the input buffer;
// magnitudes stay in [0.5, 2.25] so no element is zero or huge.
func (g *Prog) InputValues() []float64 {
	r := newRNG(g.Seed ^ 0x1e9e1) // distinct stream from the structure RNG
	vals := make([]float64, g.BufLen)
	for i := range vals {
		frac := float64(r.next()>>11) / (1 << 53)
		v := 0.5 + 1.75*frac
		if r.bool() {
			v = -v
		}
		vals[i] = v
	}
	return vals
}

// Program compiles and assembles the IR into an analyzable program.
func (g *Prog) Program() (*spec.Program, error) {
	binds := lang.Bindings{}
	for id := 0; id < g.NextBuf; id++ {
		binds[bufName(id)] = g.addr(id)
	}
	fns, err := lang.Compile(g.Source(), binds)
	if err != nil {
		return nil, fmt.Errorf("diffcheck: seed %#x: %w", g.Seed, err)
	}

	mod := prog.New()
	main := prog.NewFunc("main")
	main.RoiBeg()
	for i, s := range g.Secs {
		main.SecBeg(i)
		main.Call(s.Name)
		main.SecEnd(i)
	}
	main.RoiEnd()
	main.Halt()
	mainFn, err := main.Build()
	if err != nil {
		return nil, fmt.Errorf("diffcheck: seed %#x: %w", g.Seed, err)
	}
	if err := mod.Add(mainFn); err != nil {
		return nil, err
	}
	for _, fn := range fns {
		if err := mod.Add(fn); err != nil {
			return nil, err
		}
	}
	linked, err := mod.Link("main")
	if err != nil {
		return nil, fmt.Errorf("diffcheck: seed %#x: %w", g.Seed, err)
	}

	buffer := func(id int) spec.Buffer {
		kind := spec.Float
		if g.intBuf(id) {
			kind = spec.Int
		}
		return spec.Buffer{Name: bufName(id), Addr: g.addr(id), Len: g.BufLen, Kind: kind}
	}
	live := make([]spec.Buffer, 0, g.NextBuf)
	for id := 0; id < g.NextBuf; id++ {
		live = append(live, buffer(id))
	}

	sections := make([]spec.Section, len(g.Secs))
	for i, s := range g.Secs {
		var inputs []spec.Buffer
		for _, id := range bufsOf(s) {
			if id != s.Out {
				inputs = append(inputs, buffer(id))
			}
		}
		sections[i] = spec.Section{
			ID:       i,
			Name:     s.Name,
			Discrete: s.Discrete,
			Instances: []spec.InstanceIO{{
				Inputs:  inputs,
				Outputs: []spec.Buffer{buffer(s.Out)},
				Live:    live,
			}},
		}
	}

	vals := g.InputValues()
	p := &spec.Program{
		Name:     g.Name(),
		Version:  "diffcheck",
		Linked:   linked,
		MemWords: g.MemWords(),
		Init: func(m *vm.Machine) {
			for i, v := range vals {
				m.Mem[i] = math.Float64bits(v)
			}
		},
		Sections:     sections,
		FinalOutputs: []spec.Buffer{buffer(g.Final)},
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("diffcheck: seed %#x: generated invalid program: %w", g.Seed, err)
	}
	return p, nil
}

// Clone deep-copies the IR.
func (g *Prog) Clone() *Prog {
	c := *g
	c.IntBufs = append([]int(nil), g.IntBufs...)
	c.Secs = append([]Sec(nil), g.Secs...)
	for i := range c.Secs {
		c.Secs[i].Terms = append([]Term(nil), g.Secs[i].Terms...)
	}
	return &c
}
