package diffcheck

import (
	"fmt"

	"fastflip/internal/mix"
)

// Options configures a fuzzing campaign (the fffuzz CLI's engine).
type Options struct {
	// Seed is the campaign master seed; iteration i checks the derived
	// seed Fold(Seed, i), so campaigns are reproducible and disjoint
	// seeds explore disjoint programs.
	Seed uint64
	// N is the number of checks to run, distributed round-robin over
	// Invariants.
	N int
	// Invariants restricts the campaign; nil means all five.
	Invariants []Invariant
	// CorpusDir, when non-empty, receives a shrunk reproducer per
	// violation.
	CorpusDir string
	// NoShrink reports violations as found, without minimization.
	NoShrink bool
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Report summarizes a campaign.
type Report struct {
	Checked     map[Invariant]int
	Violations  []*Violation
	Reproducers []string
}

// Run executes a campaign and returns its report. Violations are
// collected, not fatal; infrastructure failures (corpus I/O) abort.
func (o Options) Run() (*Report, error) {
	invs := o.Invariants
	if len(invs) == 0 {
		invs = Invariants
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := &Report{Checked: make(map[Invariant]int)}
	for i := 0; i < o.N; i++ {
		inv := invs[i%len(invs)]
		seed := mix.Fold(o.Seed, uint64(i))
		v := Check(inv, seed)
		rep.Checked[inv]++
		if v == nil {
			if (i+1)%20 == 0 || i+1 == o.N {
				logf("checked %d/%d (last: %s seed %#x)", i+1, o.N, inv, seed)
			}
			continue
		}
		logf("VIOLATION %s on seed %#x: %s", inv, seed, v.Detail)
		if !o.NoShrink {
			before := len(v.Prog.Secs)
			v = ShrinkViolation(v)
			logf("shrunk %d sections -> %d", before, len(v.Prog.Secs))
		}
		rep.Violations = append(rep.Violations, v)
		if o.CorpusDir != "" {
			path, err := WriteReproducer(o.CorpusDir, v)
			if err != nil {
				return rep, fmt.Errorf("diffcheck: writing reproducer: %w", err)
			}
			rep.Reproducers = append(rep.Reproducers, path)
			logf("reproducer written to %s", path)
		}
	}
	return rep, nil
}
