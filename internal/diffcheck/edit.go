package diffcheck

// Edit is one program modification, in the paper's incremental-analysis
// sense (§5): the developer changes the program and FastFlip re-analyzes
// only what the change invalidated. The generator produces both
// semantics-preserving edits (EditDead) and semantics-changing ones
// (coefficient perturbation, loop-bound change, kernel insertion and
// reordering); the incremental oracle asserts that re-analysis after any
// of them equals a from-scratch analysis of the edited program.
type Edit struct {
	Kind EditKind `json:"kind"`
	// Sec is the edited section index (dead/coef/bound) or the swap
	// position (reorder: sections Sec and Sec+1 exchange places).
	Sec int `json:"sec,omitempty"`
	// Term indexes the perturbed dataflow edge (coef).
	Term     int     `json:"term,omitempty"`
	NewCoef  float64 `json:"new_coef,omitempty"`
	NewBound int     `json:"new_bound,omitempty"`
	// At is the insertion position (insert).
	At int `json:"at,omitempty"`
	// Src is the inserted kernel's input buffer (insert).
	Src  int     `json:"src,omitempty"`
	Coef float64 `json:"coef,omitempty"`
}

// EditKind enumerates the edit grammar.
type EditKind string

const (
	// EditDead adds a semantically inert statement to one kernel: the
	// binary changes, the computed values do not.
	EditDead EditKind = "dead"
	// EditCoef perturbs one dataflow coefficient.
	EditCoef EditKind = "coef"
	// EditBound changes one kernel's loop bound (partial updates).
	EditBound EditKind = "bound"
	// EditInsert inserts a fresh kernel writing a new buffer.
	EditInsert EditKind = "insert"
	// EditReorder swaps two adjacent independent kernels. The generator's
	// mandatory chain edge makes adjacent sections dependent, so this kind
	// is proposed only when an independent pair exists (hand-written IRs,
	// unit tests); ProposeEdit otherwise falls back to EditInsert.
	EditReorder EditKind = "reorder"
)

// Apply returns the edited program; g is not modified.
func (e *Edit) Apply(g *Prog) *Prog {
	c := g.Clone()
	switch e.Kind {
	case EditDead:
		c.Secs[e.Sec].Dead = true
	case EditCoef:
		c.Secs[e.Sec].Terms[e.Term].Coef = e.NewCoef
	case EditBound:
		c.Secs[e.Sec].Bound = e.NewBound
	case EditInsert:
		out := c.NextBuf
		c.NextBuf++
		s := Sec{
			Name:  bufName(out) + "k", // "b<N>k": disjoint from generated "k<N>" names
			Out:   out,
			Bound: c.BufLen,
			Terms: []Term{{Src: e.Src, Coef: e.Coef}},
		}
		c.Secs = append(c.Secs, Sec{})
		copy(c.Secs[e.At+1:], c.Secs[e.At:])
		c.Secs[e.At] = s
	case EditReorder:
		c.Secs[e.Sec], c.Secs[e.Sec+1] = c.Secs[e.Sec+1], c.Secs[e.Sec]
	}
	return c
}

// reads reports whether section s reads buffer id.
func reads(s Sec, id int) bool {
	for _, t := range s.Terms {
		if t.Src == id {
			return true
		}
	}
	return false
}

// independentPairs lists positions p where sections p and p+1 commute:
// neither reads the other's output (outputs are always distinct buffers).
func independentPairs(g *Prog) []int {
	var ps []int
	for p := 0; p+1 < len(g.Secs); p++ {
		if !reads(g.Secs[p+1], g.Secs[p].Out) && !reads(g.Secs[p], g.Secs[p+1].Out) {
			ps = append(ps, p)
		}
	}
	return ps
}

// floatSecs lists the indices of non-discrete sections.
func floatSecs(g *Prog) []int {
	var out []int
	for i, s := range g.Secs {
		if !s.Discrete {
			out = append(out, i)
		}
	}
	return out
}

// ProposeEdit deterministically derives one applicable edit from r.
func ProposeEdit(g *Prog, r *rng) *Edit {
	switch r.intn(5) {
	case 0:
		return &Edit{Kind: EditDead, Sec: r.intn(len(g.Secs))}
	case 1:
		fs := floatSecs(g)
		sec := fs[r.intn(len(fs))]
		term := r.intn(len(g.Secs[sec].Terms))
		old := g.Secs[sec].Terms[term].Coef
		nc := old
		for nc == old {
			nc = r.coef()
		}
		return &Edit{Kind: EditCoef, Sec: sec, Term: term, NewCoef: nc}
	case 2:
		sec := r.intn(len(g.Secs))
		old := g.Secs[sec].Bound
		nb := old
		for nb == old {
			nb = 1 + r.intn(g.BufLen)
		}
		return &Edit{Kind: EditBound, Sec: sec, NewBound: nb}
	case 3:
		if ps := independentPairs(g); len(ps) > 0 {
			return &Edit{Kind: EditReorder, Sec: ps[r.intn(len(ps))]}
		}
		fallthrough
	default:
		at := r.intn(len(g.Secs) + 1)
		// Buffers 0..at are produced before position at.
		return &Edit{Kind: EditInsert, At: at, Src: r.intn(at + 1), Coef: r.coef()}
	}
}

// MinReuse returns the lower bound on section-instance reuse the
// incremental oracle asserts after applying e to a program with n
// sections. A dead edit invalidates exactly the edited kernel; coef and
// bound edits additionally invalidate everything downstream of the
// changed values (input contents are part of the reuse key), leaving the
// Sec upstream instances reusable. Insert and reorder rewrite the main
// function's call sequence, which is part of every instance's executed
// code identity, so no reuse is guaranteed.
func MinReuse(n int, e *Edit) int {
	switch e.Kind {
	case EditDead:
		return n - 1
	case EditCoef, EditBound:
		return e.Sec
	default:
		return 0
	}
}
