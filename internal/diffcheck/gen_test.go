package diffcheck

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fastflip/internal/mix"
)

// TestGenerateDeterministic: same seed, same IR and source; different
// seeds explore different programs.
func TestGenerateDeterministic(t *testing.T) {
	for _, fam := range []Family{FamilySound, FamilyMixed} {
		a := Generate(42, fam)
		b := Generate(42, fam)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: Generate(42) not deterministic", fam)
		}
		if a.Source() != b.Source() {
			t.Fatalf("%v: source not deterministic", fam)
		}
	}
	if Generate(1, FamilySound).Source() == Generate(2, FamilySound).Source() {
		t.Error("seeds 1 and 2 generated identical programs")
	}
}

// TestGeneratedProgramsBuild compiles and validates a spread of seeds in
// both families — the generator's well-formedness contract.
func TestGeneratedProgramsBuild(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		seed := mix.Fold(7, i)
		for _, fam := range []Family{FamilySound, FamilyMixed} {
			g := Generate(seed, fam)
			if _, err := g.Program(); err != nil {
				t.Fatalf("%v seed %#x: %v\nsource:\n%s", fam, seed, err, g.Source())
			}
		}
	}
}

// TestSoundFamilyShape: the soundness family must stay inside the affine
// fragment its proof covers — no discrete kernels, full loop bounds,
// nonzero coefficients, and a chain edge from each section to its
// predecessor's buffer.
func TestSoundFamilyShape(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		g := Generate(mix.Fold(11, i), FamilySound)
		if len(g.IntBufs) != 0 {
			t.Fatalf("seed %#x: sound family generated int buffers", g.Seed)
		}
		for j, s := range g.Secs {
			if s.Discrete {
				t.Fatalf("seed %#x: sound family generated discrete section %d", g.Seed, j)
			}
			if s.Bound != g.BufLen {
				t.Fatalf("seed %#x: section %d has partial bound %d", g.Seed, j, s.Bound)
			}
			if len(s.Terms) == 0 || s.Terms[0].Src != j {
				t.Fatalf("seed %#x: section %d lacks the chain edge", g.Seed, j)
			}
			for _, term := range s.Terms {
				if term.Coef == 0 {
					t.Fatalf("seed %#x: section %d has a zero coefficient", g.Seed, j)
				}
			}
		}
	}
}

// TestEditsApplyAndBuild: every edit kind produced by ProposeEdit yields
// a program that still compiles, and MinReuse stays within bounds.
func TestEditsApplyAndBuild(t *testing.T) {
	kinds := map[EditKind]int{}
	for i := uint64(0); i < 60; i++ {
		seed := mix.Fold(13, i)
		g := Generate(seed, FamilyMixed)
		e := ProposeEdit(g, newRNG(seed^0xed17))
		kinds[e.Kind]++
		edited := e.Apply(g)
		if _, err := edited.Program(); err != nil {
			t.Fatalf("seed %#x edit %+v: edited program invalid: %v", seed, e, err)
		}
		if min := MinReuse(len(g.Secs), e); min < 0 || min > len(g.Secs) {
			t.Fatalf("seed %#x: MinReuse %d out of range", seed, min)
		}
		if reflect.DeepEqual(g, edited) && e.Kind != EditDead {
			t.Fatalf("seed %#x: edit %+v left the program unchanged", seed, e)
		}
	}
	for _, k := range []EditKind{EditDead, EditCoef, EditBound, EditInsert} {
		if kinds[k] == 0 {
			t.Errorf("60 proposed edits never produced kind %q (got %v)", k, kinds)
		}
	}
}

// independentProg builds an IR with an independent adjacent pair (the
// generator's mandatory chain edge never produces one, so reorder is
// exercised on a hand-built program).
func independentProg() *Prog {
	return &Prog{
		Seed:    0xbeef,
		BufLen:  2,
		NextBuf: 4,
		Final:   3,
		Secs: []Sec{
			{Name: "k1", Out: 1, Bound: 2, Terms: []Term{{Src: 0, Coef: 2}}},
			{Name: "k2", Out: 2, Bound: 2, Terms: []Term{{Src: 0, Coef: -1.5}}},
			{Name: "k3", Out: 3, Bound: 2, Terms: []Term{{Src: 1, Coef: 0.5}, {Src: 2, Coef: 1.25}}},
		},
	}
}

// TestReorderEdit: the hand-built independent pair is detected, the swap
// compiles, and the incremental oracle holds across it.
func TestReorderEdit(t *testing.T) {
	g := independentProg()
	ps := independentPairs(g)
	if len(ps) != 1 || ps[0] != 0 {
		t.Fatalf("independentPairs = %v, want [0]", ps)
	}
	re := &Edit{Kind: EditReorder, Sec: 0}
	if _, err := re.Apply(g).Program(); err != nil {
		t.Fatalf("reordered program invalid: %v", err)
	}
	if v := CheckIncremental(g, re); v != nil {
		t.Fatalf("incremental oracle failed on reorder: %v", v)
	}
}

// TestAdjustEdit covers the shrinker's edit remapping across section
// drops.
func TestAdjustEdit(t *testing.T) {
	cases := []struct {
		e    Edit
		drop int
		want *Edit
	}{
		{Edit{Kind: EditCoef, Sec: 2}, 1, &Edit{Kind: EditCoef, Sec: 1}},
		{Edit{Kind: EditCoef, Sec: 1}, 1, nil},
		{Edit{Kind: EditBound, Sec: 0}, 2, &Edit{Kind: EditBound, Sec: 0}},
		{Edit{Kind: EditReorder, Sec: 1}, 2, nil},
		{Edit{Kind: EditReorder, Sec: 3}, 1, &Edit{Kind: EditReorder, Sec: 2}},
		{Edit{Kind: EditInsert, At: 3}, 1, &Edit{Kind: EditInsert, At: 2}},
		{Edit{Kind: EditInsert, At: 1}, 1, &Edit{Kind: EditInsert, At: 1}},
	}
	for _, c := range cases {
		got, ok := adjustEdit(&c.e, c.drop)
		if c.want == nil {
			if ok {
				t.Errorf("adjustEdit(%+v, drop %d) = %+v, want skip", c.e, c.drop, got)
			}
			continue
		}
		if !ok || !reflect.DeepEqual(got, c.want) {
			t.Errorf("adjustEdit(%+v, drop %d) = %+v ok=%v, want %+v", c.e, c.drop, got, ok, c.want)
		}
	}
}

// TestShrinkPredicateRespected: the shrinker never returns a candidate
// the predicate rejects, and it reaches the minimal section count for a
// predicate that only needs one specific section.
func TestShrinkSections(t *testing.T) {
	g := Generate(mix.Fold(5, 3), FamilyMixed)
	if len(g.Secs) < 2 {
		t.Skip("seed produced a single-section program")
	}
	name := g.Secs[len(g.Secs)-1].Name
	pred := func(c *Prog, _ *Edit) bool {
		for _, s := range c.Secs {
			if s.Name == name {
				return true
			}
		}
		return false
	}
	shrunk, _ := Shrink(g, nil, pred)
	if len(shrunk.Secs) != 1 || shrunk.Secs[0].Name != name {
		t.Fatalf("Shrink kept %d sections (want just %q): %+v", len(shrunk.Secs), name, shrunk.Secs)
	}
	if _, err := shrunk.Program(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
}

// TestReproducerRoundTrip: write, read back, recheck.
func TestReproducerRoundTrip(t *testing.T) {
	g := Generate(17, FamilyMixed)
	v := &Violation{Invariant: InvEngines, Seed: 17, Detail: "synthetic", Prog: g}
	dir := t.TempDir()
	path, err := WriteReproducer(dir, v)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReadReproducer(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Invariant != InvEngines || rep.Seed != 17 || !reflect.DeepEqual(rep.Prog, g) {
		t.Fatalf("round trip mangled the reproducer: %+v", rep)
	}
	if src, err := filepath.Glob(filepath.Join(dir, "*.ml")); err != nil || len(src) != 1 {
		t.Fatalf("expected one .ml source next to the JSON, got %v (%v)", src, err)
	}
	// The engines invariant holds on healthy code, so recheck passes.
	if nv := rep.Recheck(); nv != nil {
		t.Fatalf("recheck of a healthy program failed: %v", nv)
	}
}

// TestSourceRendering spot-checks the renderer's constructs.
func TestSourceRendering(t *testing.T) {
	g := &Prog{
		Seed:    1,
		BufLen:  3,
		NextBuf: 3,
		Final:   2,
		IntBufs: []int{1},
		Secs: []Sec{
			{Name: "k1", Out: 1, Bound: 3, Discrete: true, Terms: []Term{{Src: 0}},
				IMul: 3, IAdd: 7, IMod: 11, MaskAnd: 63, MaskOr: 5, Trunc: 7},
			{Name: "k2", Out: 2, Bound: 2, Dead: true, DeadMask: true, AddMode: 1, AddA: 0.5, AddB: -1,
				Terms: []Term{{Src: 1, Coef: -2.5, Rev: true}}},
		},
	}
	src := g.Source()
	for _, want := range []string{
		"kernel k1(b0: float[3], b1: int[3])",
		"var v: int = int(b0[i] * 8.0);",
		"v = v & 63;", // live absorption chain
		"v = v | 5;",
		"v = v % 11;",
		"b1[i] = v & 7;", // truncating store
		"var dz: float = 1.25;",
		"dm = dm << 3;", // inert mask chain
		"for i = 0 to 2 {",
		"float(b1[1 - i])", // reversal within bound 2 of an int buffer
		"-2.5 *",
		"if i < 1 {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("source missing %q:\n%s", want, src)
		}
	}
	if _, err := g.Program(); err != nil {
		t.Fatalf("hand-built IR does not compile: %v\n%s", err, src)
	}
}
