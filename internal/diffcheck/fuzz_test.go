package diffcheck

import (
	"testing"

	"fastflip/internal/chisel"
	"fastflip/internal/core"
	"fastflip/internal/mix"
)

// The five native fuzz targets. Each input is one generator seed; the
// harness derives program (and edit) deterministically from it, so every
// crash reproduces from the seed alone. Checked-in corpus lives under
// testdata/fuzz/<FuzzName>/.

func FuzzCompositionalSound(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if v := Check(InvSound, seed); v != nil {
			t.Fatal(v)
		}
	})
}

func FuzzIncrementalMatchesScratch(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if v := Check(InvIncremental, seed); v != nil {
			t.Fatal(v)
		}
	})
}

func FuzzResumeConverges(f *testing.F) {
	f.Add(uint64(1))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if v := Check(InvResume, seed); v != nil {
			t.Fatal(v)
		}
	})
}

func FuzzEnginesAgree(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	// Seed 44 generates a discrete kernel with a live absorption chain and
	// a truncating store — the masking tier elides ~23% of its experiments,
	// so the matrix exercises elide-vs-exhaustive agreement for real.
	f.Add(uint64(44))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if v := Check(InvEngines, seed); v != nil {
			t.Fatal(v)
		}
	})
}

func FuzzHardenPreserves(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	// Seed 44's discrete kernel mixes integer and float protections with
	// heavy register pressure, so the transform's spill save/restore path
	// is on the semantics-preservation hook, not just the fast path.
	f.Add(uint64(44))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if v := Check(InvHarden, seed); v != nil {
			t.Fatal(v)
		}
	})
}

// TestMaskHeavySeedElides pins the property that makes the
// masked-discrete corpus entry interesting: seed 44's absorption chain
// and truncating store let the static masking tier elide a substantial
// share of the campaign, and the engine matrix still agrees byte for
// byte against the exhaustive configuration.
func TestMaskHeavySeedElides(t *testing.T) {
	g := Generate(44, FamilyMixed)
	masked := false
	for _, s := range g.Secs {
		if s.Discrete && s.MaskAnd != 0 && s.Trunc != 0 {
			masked = true
		}
	}
	if !masked {
		t.Fatalf("seed 44 no longer generates a masked discrete kernel:\n%s", g.Source())
	}
	p, err := g.Program()
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.NewAnalyzer(baseConfig()).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summarize(0, nil)
	if s.ElidedExperiments == 0 {
		t.Error("masking tier elided nothing on the mask-heavy kernel")
	}
	if s.BatchedExperiments == 0 {
		t.Error("no experiments ran in lockstep batches")
	}
	if v := CheckEngines(g); v != nil {
		t.Fatal(v)
	}
}

// TestOracleSweep runs a short campaign over all four invariants — the
// fffuzz engine end to end, including corpus plumbing.
func TestOracleSweep(t *testing.T) {
	n := 8
	if testing.Short() {
		n = 4
	}
	rep, err := Options{Seed: 1, N: n, CorpusDir: t.TempDir()}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("unexpected violation: %v", v)
	}
	total := 0
	for _, c := range rep.Checked {
		total += c
	}
	if total != n {
		t.Errorf("campaign ran %d checks, want %d", total, n)
	}
}

// TestIncrementalTierMatchesScratch runs the incremental oracle with the
// reuse flowing through the shared outcome tier: two independent store
// handles over one directory, every reused section round-tripping through
// gob and a segment file. The acceptance bar for the shared tier is that
// this is indistinguishable from the warm in-memory store.
func TestIncrementalTierMatchesScratch(t *testing.T) {
	seeds := []uint64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		g := Generate(seed, FamilyMixed)
		e := ProposeEdit(g, newRNG(seed^0xed17))
		if v := CheckIncrementalTier(g, e, t.TempDir()); v != nil {
			t.Fatal(v)
		}
	}
}

// TestSeededChiselBugCaughtAndShrunk is the harness's own differential
// test: disable the chisel bound widening for sub-unity amplification
// factors (a seeded soundness defect behind a test hook) and require the
// soundness oracle to catch it within a bounded seed budget and shrink
// the failure to a reproducer of at most 3 kernels.
func TestSeededChiselBugCaughtAndShrunk(t *testing.T) {
	prev := chisel.SetDropSubUnityAmp(true)
	defer chisel.SetDropSubUnityAmp(prev)

	var caught *Violation
	for i := uint64(0); i < 40 && caught == nil; i++ {
		caught = CheckSoundness(Generate(mix.Fold(1, i), FamilySound))
	}
	if caught == nil {
		t.Fatal("soundness oracle missed the seeded chisel defect across 40 seeds")
	}
	shrunk := ShrinkViolation(caught)
	if n := len(shrunk.Prog.Secs); n > 3 {
		t.Fatalf("shrunk reproducer still has %d kernels, want <= 3:\n%s", n, shrunk.Prog.Source())
	}
	if shrunk.Invariant != InvSound || shrunk.Detail == "" {
		t.Fatalf("shrunk violation lost its identity: %+v", shrunk)
	}
	// With the defect disabled again, the shrunk reproducer must pass —
	// proving the oracle blames the seeded bug, not the program.
	chisel.SetDropSubUnityAmp(false)
	if v := CheckSoundness(shrunk.Prog); v != nil {
		t.Fatalf("shrunk reproducer fails on healthy code: %v", v)
	}
}

// TestStrictReuseKeysRegression pins the reuse-key divergence the fuzzer
// originally found (seed 0xe1ce2c1dc3510be9, shrunk): a loop-bound edit
// to one kernel changes a buffer that a *later* kernel never declares as
// input but can observe through a fault-deflected load, so incremental
// re-analysis only matches from-scratch analysis under strict reuse keys.
func TestStrictReuseKeysRegression(t *testing.T) {
	g := &Prog{
		Seed:    0xe1ce2c1dc3510be9,
		BufLen:  2,
		NextBuf: 4,
		Final:   3,
		IntBufs: []int{2},
		Secs: []Sec{
			{Name: "k1", Out: 1, Bound: 2, Terms: []Term{{Src: 0, Coef: 2, Rev: true}}},
			{Name: "k3", Out: 3, Bound: 2, Terms: []Term{{Src: 2, Coef: -1.25, Rev: true}}},
		},
	}
	e := &Edit{Kind: EditBound, Sec: 0, NewBound: 1}
	if v := CheckIncremental(g, e); v != nil {
		t.Fatalf("incremental oracle (strict keys) fails on the pinned reproducer: %v", v)
	}
}
