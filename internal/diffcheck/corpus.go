package diffcheck

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Reproducer is the on-disk form of a (shrunk) violation: enough to
// re-run the failing check without the generator. Next to the JSON file
// the writer drops the rendered minilang source with an .ml extension for
// human inspection.
type Reproducer struct {
	Invariant Invariant `json:"invariant"`
	Seed      uint64    `json:"seed"`
	Detail    string    `json:"detail"`
	Prog      *Prog     `json:"prog"`
	Edit      *Edit     `json:"edit,omitempty"`
}

// WriteReproducer persists v under dir and returns the JSON path.
func WriteReproducer(dir string, v *Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	rep := Reproducer{Invariant: v.Invariant, Seed: v.Seed, Detail: v.Detail, Prog: v.Prog, Edit: v.Edit}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return "", err
	}
	base := fmt.Sprintf("%s-%016x", v.Invariant, v.Seed)
	path := filepath.Join(dir, base+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, base+".ml"), []byte(v.Prog.Source()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadReproducer loads a reproducer written by WriteReproducer.
func ReadReproducer(path string) (*Reproducer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Reproducer
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("diffcheck: %s: %w", path, err)
	}
	if rep.Prog == nil {
		return nil, fmt.Errorf("diffcheck: %s: no program", path)
	}
	return &rep, nil
}

// Recheck re-runs a reproducer's invariant on its stored program.
func (rep *Reproducer) Recheck() *Violation {
	switch rep.Invariant {
	case InvSound:
		return CheckSoundness(rep.Prog)
	case InvIncremental:
		if rep.Edit == nil {
			return violationf(InvIncremental, rep.Prog, nil, "reproducer has no edit")
		}
		return CheckIncremental(rep.Prog, rep.Edit)
	case InvResume:
		return CheckResume(rep.Prog, "")
	case InvEngines:
		return CheckEngines(rep.Prog)
	default:
		return violationf(rep.Invariant, rep.Prog, rep.Edit, "unknown invariant")
	}
}
