package diffcheck

// Shrinking: delta-debug a failing (program, edit) pair down to a minimal
// reproducer. The reduction passes, in order: drop whole sections (a
// dropped producer leaves its output buffer zero-filled, which stays a
// well-formed program because buffer ids and addresses never move), then
// per-section simplifications (drop skip edges, remove additive terms and
// dead statements, normalize partial loop bounds). Each candidate is kept
// only if the predicate still fails, so the final pair provokes the same
// invariant violation.

// adjustEdit maps e onto the program with section drop removed; ok=false
// when the edit targets the dropped section and the candidate must be
// skipped.
func adjustEdit(e *Edit, drop int) (*Edit, bool) {
	if e == nil {
		return nil, true
	}
	c := *e
	switch e.Kind {
	case EditDead, EditCoef, EditBound:
		if e.Sec == drop {
			return nil, false
		}
		if e.Sec > drop {
			c.Sec--
		}
	case EditReorder:
		if e.Sec == drop || e.Sec+1 == drop {
			return nil, false
		}
		if e.Sec > drop {
			c.Sec--
		}
	case EditInsert:
		if e.At > drop {
			c.At--
		}
		// The inserted kernel may read the dropped section's (now zero)
		// output buffer; that is still well-formed.
	}
	return &c, true
}

// dropSection returns g without section d (buffer ids unchanged).
func dropSection(g *Prog, d int) *Prog {
	c := g.Clone()
	c.Secs = append(c.Secs[:d], c.Secs[d+1:]...)
	return c
}

// Shrink minimizes (g, e) under pred ("still fails"). pred must be a pure
// function of its arguments; it is called O(sections²) times, each call
// typically running full analyses, so callers should only shrink actual
// failures. The returned pair always satisfies pred (in the worst case it
// is the input itself).
func Shrink(g *Prog, e *Edit, pred func(*Prog, *Edit) bool) (*Prog, *Edit) {
	// Pass 1: greedily drop sections while the failure reproduces.
	for changed := true; changed; {
		changed = false
		for d := len(g.Secs) - 1; d >= 0 && len(g.Secs) > 1; d-- {
			e2, ok := adjustEdit(e, d)
			if !ok {
				continue
			}
			if g2 := dropSection(g, d); pred(g2, e2) {
				g, e = g2, e2
				changed = true
			}
		}
	}

	// Pass 2: simplify surviving sections statement by statement.
	try := func(mutate func(c *Prog) bool) {
		c := g.Clone()
		if mutate(c) && pred(c, e) {
			g = c
		}
	}
	for i := range g.Secs {
		i := i
		try(func(c *Prog) bool { // drop skip edges
			if len(c.Secs[i].Terms) <= 1 {
				return false
			}
			c.Secs[i].Terms = c.Secs[i].Terms[:1]
			return true
		})
		try(func(c *Prog) bool { // remove the additive term
			if c.Secs[i].Discrete || (c.Secs[i].AddMode == 0 && c.Secs[i].AddA == 0) {
				return false
			}
			c.Secs[i].AddMode, c.Secs[i].AddA, c.Secs[i].AddB = 0, 0, 0
			return true
		})
		try(func(c *Prog) bool { // remove the dead statement
			if !c.Secs[i].Dead {
				return false
			}
			c.Secs[i].Dead = false
			return true
		})
		try(func(c *Prog) bool { // normalize a partial loop bound
			if c.Secs[i].Bound == c.BufLen {
				return false
			}
			c.Secs[i].Bound = c.BufLen
			return true
		})
	}
	return g, e
}

// predFor builds the shrink predicate for one invariant: "the candidate
// still violates it".
func predFor(inv Invariant) func(*Prog, *Edit) bool {
	return func(g *Prog, e *Edit) bool {
		switch inv {
		case InvSound:
			return CheckSoundness(g) != nil
		case InvIncremental:
			if e == nil {
				return false
			}
			return CheckIncremental(g, e) != nil
		case InvResume:
			return CheckResume(g, "") != nil
		case InvEngines:
			return CheckEngines(g) != nil
		case InvHarden:
			return CheckHarden(g) != nil
		}
		return false
	}
}

// ShrinkViolation minimizes a violation's program (and edit) and re-runs
// the check once more to refresh the detail message for the reduced pair.
func ShrinkViolation(v *Violation) *Violation {
	g, e := Shrink(v.Prog, v.Edit, predFor(v.Invariant))
	final := &Violation{Invariant: v.Invariant, Seed: v.Seed, Detail: v.Detail, Prog: g, Edit: e}
	switch v.Invariant {
	case InvSound:
		if nv := CheckSoundness(g); nv != nil {
			final.Detail = nv.Detail
		}
	case InvIncremental:
		if nv := CheckIncremental(g, e); nv != nil {
			final.Detail = nv.Detail
		}
	case InvResume:
		if nv := CheckResume(g, ""); nv != nil {
			final.Detail = nv.Detail
		}
	case InvEngines:
		if nv := CheckEngines(g); nv != nil {
			final.Detail = nv.Detail
		}
	case InvHarden:
		if nv := CheckHarden(g); nv != nil {
			final.Detail = nv.Detail
		}
	}
	return final
}
