package harden

import (
	"math"
	"testing"
	"testing/quick"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
	"fastflip/internal/qcheck"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
	"fastflip/internal/vm"
)

// allEligible selects every static instruction of l; Apply sorts the
// ineligible ones into Skipped, so this is "protect everything".
func allEligible(l *prog.Linked) map[prog.StaticID]bool {
	sel := make(map[prog.StaticID]bool)
	for pc := range l.Code {
		sel[l.StaticIDOf(pc)] = true
	}
	return sel
}

func funcStart(l *prog.Linked, name string) int {
	for i, n := range l.FuncNames {
		if n == name {
			return l.FuncStarts[i]
		}
	}
	return -1
}

func runClean(t *testing.T, p *spec.Program) *vm.Machine {
	t.Helper()
	m := p.NewMachine()
	m.MaxDyn = 1 << 20
	if ev := m.Run(); ev.Kind != vm.EvHalt {
		t.Fatalf("%s: clean run ended with %v (status %v, crash %v)", p.Name, ev.Kind, m.Status, m.Crash)
	}
	return m
}

// TestHardenPreservesSemantics protects every eligible instruction of the
// pipeline fixture and checks the hardened fault-free run is
// architecturally identical to the original: same status, byte-identical
// memory over the original extent, identical register files.
func TestHardenPreservesSemantics(t *testing.T) {
	p := testprog.Pipeline()
	hp, res, err := Program(p, allEligible(p.Linked), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protected) == 0 {
		t.Fatal("nothing protected")
	}
	if len(res.Skipped) == 0 {
		t.Fatal("expected stores/markers/branches in Skipped")
	}
	if res.AddedInstrs == 0 {
		t.Fatal("no detector instructions added")
	}
	// The fixture's float registers are all live at RET (strict boundary),
	// so float-destination detectors must spill.
	if res.Spills == 0 {
		t.Fatal("expected spilled scratch registers on the all-live fixture")
	}
	if hp.MemWords != p.MemWords+ScratchWords {
		t.Fatalf("MemWords = %d, want %d", hp.MemWords, p.MemWords+ScratchWords)
	}

	orig := runClean(t, p)
	hard := runClean(t, hp)
	for a := 0; a < p.MemWords; a++ {
		if orig.Mem[a] != hard.Mem[a] {
			t.Errorf("Mem[%d] = %#x, want %#x", a, hard.Mem[a], orig.Mem[a])
		}
	}
	if orig.R != hard.R {
		t.Errorf("integer registers diverged: %v vs %v", hard.R, orig.R)
	}
	if orig.F != hard.F {
		t.Errorf("float registers diverged: %v vs %v", hard.F, orig.F)
	}
	if got := math.Float64frombits(hard.Mem[testprog.AddrZ]); got != testprog.WantZ() {
		t.Errorf("z = %v, want %v", got, testprog.WantZ())
	}
}

// TestHardenLoopBranchRemap hardens a program whose control flow branches
// backward into the middle of the protected region, checking targets are
// remapped to detector-block starts and the loop still computes the same
// result.
func TestHardenLoopBranchRemap(t *testing.T) {
	b := prog.NewFunc("main")
	b.RoiBeg()
	b.Li(1, 0) // sum
	b.Li(2, 5) // counter
	b.Li(3, 1) // step
	b.Label("loop")
	b.Add(1, 1, 2)
	b.Sub(2, 2, 3)
	b.Bne(2, 0, "loop")
	b.Li(4, 0)
	b.St(1, 4, 0)
	b.RoiEnd()
	b.Halt()
	p := prog.New()
	p.MustAdd(b.MustBuild())
	l, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}

	res, err := Apply(l, allEligible(l), Options{ScratchBase: 8})
	if err != nil {
		t.Fatal(err)
	}
	orig := vm.New(l.Code, l.Entry, 12)
	orig.MaxDyn = 1 << 16
	hard := vm.New(res.Linked.Code, res.Linked.Entry, 12)
	hard.MaxDyn = 1 << 16
	if ev := orig.Run(); ev.Kind != vm.EvHalt {
		t.Fatalf("original: %v", ev.Kind)
	}
	if ev := hard.Run(); ev.Kind != vm.EvHalt {
		t.Fatalf("hardened: %v (crash %v at pc %d)", ev.Kind, hard.Crash, hard.PC)
	}
	if orig.Mem[0] != hard.Mem[0] || orig.Mem[0] != 5+4+3+2+1 {
		t.Fatalf("sum: orig %d hardened %d", orig.Mem[0], hard.Mem[0])
	}
	if orig.R != hard.R {
		t.Fatalf("registers diverged: %v vs %v", hard.R, orig.R)
	}
}

// TestHardenMapRoundTrip checks the static-identity map is total over the
// original instructions, invertible, and points at the verbatim original
// opcode in the hardened body.
func TestHardenMapRoundTrip(t *testing.T) {
	p := testprog.Pipeline()
	res, err := Apply(p.Linked, allEligible(p.Linked), Options{ScratchBase: p.MemWords})
	if err != nil {
		t.Fatal(err)
	}
	for pc := range p.Linked.Code {
		oid := p.Linked.StaticIDOf(pc)
		hid, ok := res.Map.OrigToHard[oid]
		if !ok {
			t.Fatalf("OrigToHard missing %v", oid)
		}
		if back, ok := res.Map.HardToOrig[hid]; !ok || back != oid {
			t.Fatalf("HardToOrig[%v] = %v, want %v", hid, back, oid)
		}
		hpc := funcStart(res.Linked, hid.Func) + hid.Local
		if got, want := res.Linked.Code[hpc].Op, p.Linked.Code[pc].Op; got != want {
			t.Fatalf("%v: hardened op %v, want %v", oid, got, want)
		}
	}
	if len(res.Map.HardToOrig) != len(p.Linked.Code) {
		t.Fatalf("HardToOrig has %d entries, want %d", len(res.Map.HardToOrig), len(p.Linked.Code))
	}
}

// TestHardenDetectorFires is the property test closing the loop on the
// detector mechanism: for random selections over the pipeline fixture,
// every protected instruction that executes must trap when a single bit
// of its destination register flips right after it writes (the error
// model's destination injection point), and the detectors must stay
// silent on clean runs.
func TestHardenDetectorFires(t *testing.T) {
	p := testprog.Pipeline()
	var ids []prog.StaticID
	for pc := range p.Linked.Code {
		if isa.Info(p.Linked.Code[pc].Op).Dst != isa.RegNone {
			ids = append(ids, p.Linked.StaticIDOf(pc))
		}
	}
	property := func(mask uint64, bitSeed uint8) bool {
		sel := make(map[prog.StaticID]bool)
		for i, id := range ids {
			if mask&(1<<(uint(i)%64)) != 0 {
				sel[id] = true
			}
		}
		hp, res, err := Program(p, sel, Options{})
		if err != nil {
			t.Logf("harden: %v", err)
			return false
		}

		// Detectors never fire on the clean run.
		clean := hp.NewMachine()
		clean.MaxDyn = 1 << 20
		if ev := clean.Run(); ev.Kind != vm.EvHalt {
			t.Logf("clean hardened run: %v (crash %v)", ev.Kind, clean.Crash)
			return false
		}
		if got := math.Float64frombits(clean.Mem[testprog.AddrZ]); got != testprog.WantZ() {
			t.Logf("clean hardened z = %v, want %v", got, testprog.WantZ())
			return false
		}

		// Every executed protected instruction traps on a destination flip.
		bit := uint(bitSeed) % 64
		for _, oid := range res.Protected {
			hid := res.Map.OrigToHard[oid]
			pc := funcStart(res.Linked, hid.Func) + hid.Local
			in := res.Linked.Code[pc]
			m := hp.NewMachine()
			m.MaxDyn = 1 << 20
			reached := false
			for m.Status == vm.Running {
				if m.PC == pc {
					reached = true
					break
				}
				m.Step()
			}
			if !reached {
				continue // instruction never executes under this input
			}
			m.Step() // execute the protected instruction
			if isa.Info(in.Op).Dst == isa.RegInt {
				m.FlipInt(int(in.Rd), bit)
			} else {
				m.FlipFloat(int(in.Rd), bit)
			}
			m.Run()
			if m.Status != vm.Crashed || m.Crash != vm.CrashTrap {
				t.Logf("%v: dst flip bit %d not trapped (status %v, crash %v)", oid, bit, m.Status, m.Crash)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, qcheck.Config(t, 30)); err != nil {
		t.Fatal(err)
	}
}

// TestHardenRangeDetector checks the output invariant detectors: bounds
// bracketing the clean output pass; bounds excluding it trap.
func TestHardenRangeDetector(t *testing.T) {
	p := testprog.Pipeline()
	z := spec.Buffer{Name: "z", Addr: testprog.AddrZ, Len: 1, Kind: spec.Float}

	ok, _, err := Program(p, nil, Options{
		Ranges: map[int][]Range{1: {{Buf: z, Min: 0, Max: 100}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	runClean(t, ok) // must halt: 20.5 ∈ [0, 100]

	tight, _, err := Program(p, nil, Options{
		Ranges: map[int][]Range{1: {{Buf: z, Min: 0, Max: 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := tight.NewMachine()
	m.MaxDyn = 1 << 20
	m.Run()
	if m.Status != vm.Crashed || m.Crash != vm.CrashTrap {
		t.Fatalf("out-of-range output not trapped: status %v, crash %v", m.Status, m.Crash)
	}
}

// TestHardenIneligibleOnly checks a selection of only ineligible
// instructions (no destination register) is a no-op transform.
func TestHardenIneligibleOnly(t *testing.T) {
	p := testprog.Pipeline()
	sel := make(map[prog.StaticID]bool)
	for pc := range p.Linked.Code {
		if isa.Info(p.Linked.Code[pc].Op).Dst == isa.RegNone {
			sel[p.Linked.StaticIDOf(pc)] = true
		}
	}
	_, res, err := Program(p, sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protected) != 0 {
		t.Fatalf("Protected = %v, want empty", res.Protected)
	}
	if len(res.Skipped) != len(sel) {
		t.Fatalf("Skipped %d, want %d", len(res.Skipped), len(sel))
	}
	if res.AddedInstrs != 0 {
		t.Fatalf("AddedInstrs = %d, want 0", res.AddedInstrs)
	}
}
