// Package harden closes the protection loop: it applies a knapsack
// selection (internal/knap) to a linked program as instruction
// duplication-and-compare detectors, in the spirit of the paper's §5.3
// cost model (which prices protection as instruction duplication).
//
// For every protected instruction with a destination register the
// transform emits
//
//	[sta r_s, slot]      ; save scratch when it is live here
//	op   r_s, a, b       ; duplicate into scratch, before the original
//	op   r_d, a, b       ; the original instruction
//	bne  r_s, r_d, trap  ; compare; mismatch crashes with vm.CrashTrap
//	[lda r_s, slot]      ; restore scratch
//
// The duplicate runs *before* the original, so a source-register flip
// landing just before the original reads it (the error model's source
// injection point) is observed as a disagreement with the duplicate's
// clean recomputation, and a destination flip landing just after the
// original writes (the destination injection point) disagrees with the
// scratch copy. Float destinations compare bit-exactly through FBITS
// (FBEQ/FBNE are quiet on NaN; raw bit compare is not).
//
// Scratch registers come from a per-function backward liveness scan with
// an all-registers-live boundary at HALT/RET (final register values are
// observable: the semantics-preservation oracle compares them), so a
// register is only taken without saving when overwriting it provably
// cannot change any architecturally visible state. When no such register
// exists the scratch is spilled to reserved slots appended beyond the
// program's declared memory; the hardened spec raises MemWords by
// ScratchWords and output buffers never overlap the slots. The slots are
// detector-private: the spec's MemLimit keeps them out of reach of the
// program's register-addressed loads and stores, so a fault-deflected
// address crashes exactly where the original program would have.
//
// Optional range/invariant detectors (Options.Ranges) check kernel
// output buffers against profiled bounds just before the section's
// SECEND marker: a NaN or an out-of-bounds value branches to the trap.
//
// Branch targets are remapped to the start of the target instruction's
// detector block, so control flow never lands between a duplicate and
// its compare. Each function with at least one detector gets a single
// TRAP instruction appended as the shared mismatch sink.
package harden

import (
	"fmt"
	"math"
	"sort"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
	"fastflip/internal/spec"
)

// ScratchWords is the number of reserved memory words appended beyond the
// original program's memory for detector spills. Detector blocks are
// self-contained (save/restore around each), so the slots are reused and
// three suffice (one float value, two int compare temporaries); the
// fourth is slack for the range detectors.
const ScratchWords = 4

// Range is one output invariant: every word of Buf must be a non-NaN
// float in [Min, Max] when the section ends, otherwise the detector
// traps. Bounds typically come from profiling the clean run.
type Range struct {
	Buf spec.Buffer
	Min float64
	Max float64
}

// Options configures the transform.
type Options struct {
	// ScratchBase is the absolute word address of the first reserved
	// spill slot — the original program's MemWords.
	ScratchBase int
	// Ranges, keyed by section static ID, inserts range/invariant
	// detectors immediately before that section's SECEND markers.
	Ranges map[int][]Range
}

// Map relates static identities across the transform. Every original
// instruction survives verbatim (at a shifted local index), so both
// directions are total over the original instruction set.
type Map struct {
	OrigToHard map[prog.StaticID]prog.StaticID
	HardToOrig map[prog.StaticID]prog.StaticID
}

// Result is the hardened program plus the transform's accounting.
type Result struct {
	Linked *prog.Linked
	Map    Map
	// Protected is the effective protected set: the requested selection
	// minus the ineligible instructions (no destination register — stores,
	// branches, markers — cannot be duplicate-and-compared). Sorted.
	Protected []prog.StaticID
	// Skipped lists requested instructions that were ineligible. Sorted.
	Skipped []prog.StaticID
	// AddedInstrs counts detector instructions emitted; Spills counts
	// scratch registers that had to be saved/restored through memory.
	AddedInstrs int
	Spills      int
	// SpillsAt breaks Spills down by detector block, keyed by the original
	// static instruction the block protects (the SECEND for range blocks).
	// Spill save/restore instructions are the one detector component whose
	// own fault exposure is not self-detecting (a flipped save lands back
	// in a live register on restore), so residual-SDC bounds need to know
	// where they were emitted.
	SpillsAt map[prog.StaticID]int
}

// regset is a per-register-file liveness bitset.
type regset struct {
	i uint16
	f uint16
}

var allRegs = regset{i: 0xffff, f: 0xffff}

func (s regset) union(o regset) regset { return regset{i: s.i | o.i, f: s.f | o.f} }

func (s regset) deadInt(r uint8) bool   { return s.i&(1<<r) == 0 }
func (s regset) deadFloat(r uint8) bool { return s.f&(1<<r) == 0 }

// Apply hardens l against the selected static instructions and returns
// the transformed program. The input is not modified.
func Apply(l *prog.Linked, sel map[prog.StaticID]bool, opt Options) (*Result, error) {
	fns, err := delink(l)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Map: Map{
			OrigToHard: make(map[prog.StaticID]prog.StaticID),
			HardToOrig: make(map[prog.StaticID]prog.StaticID),
		},
		SpillsAt: make(map[prog.StaticID]int),
	}

	out := prog.New()
	for _, fn := range fns {
		hfn, err := rewrite(fn, sel, opt, res)
		if err != nil {
			return nil, err
		}
		if err := out.Add(hfn); err != nil {
			return nil, err
		}
	}
	linked, err := out.Link(l.FuncNames[0])
	if err != nil {
		return nil, fmt.Errorf("harden: relink: %w", err)
	}
	res.Linked = linked
	sortIDs(res.Protected)
	sortIDs(res.Skipped)
	return res, nil
}

// Program hardens p and returns a new spec with the transformed code and
// the reserved spill slots appended beyond the original memory. Name
// gains a "+hardened" suffix so campaign state (WAL directories, store
// keys via the code hashes) never collides with the original's.
func Program(p *spec.Program, sel map[prog.StaticID]bool, opt Options) (*spec.Program, *Result, error) {
	opt.ScratchBase = p.MemWords
	res, err := Apply(p.Linked, sel, opt)
	if err != nil {
		return nil, nil, err
	}
	hp := *p
	hp.Name = p.Name + "+hardened"
	hp.Linked = res.Linked
	hp.MemWords = p.MemWords + ScratchWords
	// The slots are detector-private: register-addressed loads/stores keep
	// the original bounds, so a fault-deflected address behaves exactly as
	// it would in the unhardened program instead of landing in a slot.
	hp.MemLimit = p.MemWords
	if p.MemLimit != 0 {
		hp.MemLimit = p.MemLimit
	}
	return &hp, res, nil
}

func sortIDs(ids []prog.StaticID) {
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].Func != ids[b].Func {
			return ids[a].Func < ids[b].Func
		}
		return ids[a].Local < ids[b].Local
	})
}

// delink reconstructs position-independent functions from a linked
// program: branch targets become function-local again and call targets
// become callee names. Link is its exact inverse.
func delink(l *prog.Linked) ([]*prog.Function, error) {
	n := len(l.Code)
	entryName := make(map[int]string, len(l.FuncStarts))
	for i, s := range l.FuncStarts {
		entryName[s] = l.FuncNames[i]
	}
	fns := make([]*prog.Function, len(l.FuncStarts))
	for i, start := range l.FuncStarts {
		end := n
		for _, o := range l.FuncStarts {
			if o > start && o < end {
				end = o
			}
		}
		fn := &prog.Function{Name: l.FuncNames[i]}
		callIdx := make(map[string]int)
		for pc := start; pc < end; pc++ {
			in := l.Code[pc]
			switch isa.Info(in.Op).Imm {
			case isa.ImmTarget:
				in.Imm -= int64(start)
				if in.Imm < 0 || in.Imm >= int64(end-start) {
					return nil, fmt.Errorf("harden: %s+%d: branch target escapes function", fn.Name, pc-start)
				}
			case isa.ImmCallee:
				callee, ok := entryName[int(in.Imm)]
				if !ok {
					return nil, fmt.Errorf("harden: %s+%d: call target %d is not a function entry", fn.Name, pc-start, in.Imm)
				}
				idx, seen := callIdx[callee]
				if !seen {
					idx = len(fn.Calls)
					callIdx[callee] = idx
					fn.Calls = append(fn.Calls, callee)
				}
				in.Imm = int64(idx)
			}
			fn.Instrs = append(fn.Instrs, in)
		}
		fns[i] = fn
	}
	return fns, nil
}

// liveness runs a backward register-level fixpoint over one function and
// returns liveIn per instruction. The boundary is deliberately strict:
// every register is live at HALT, RET, TRAP, and a fall-through off the
// function end (final register values are compared by the semantics
// oracle), and a CALL reads everything (the callee's behavior is not
// analyzed). A register reported dead is therefore overwritten before
// any architecturally observable point on every path.
func liveness(fn *prog.Function) []regset {
	n := len(fn.Instrs)
	liveIn := make([]regset, n)
	changed := true
	for changed {
		changed = false
		for pc := n - 1; pc >= 0; pc-- {
			in := fn.Instrs[pc]
			var out regset
			switch in.Op {
			case isa.HALT, isa.RET, isa.TRAP:
				out = allRegs
			case isa.JMP:
				out = liveIn[in.Imm]
			case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE,
				isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
				out = liveIn[in.Imm]
				if pc+1 < n {
					out = out.union(liveIn[pc+1])
				} else {
					out = allRegs
				}
			default:
				if pc+1 < n {
					out = liveIn[pc+1]
				} else {
					out = allRegs
				}
			}
			ni := transfer(in, out)
			if ni != liveIn[pc] {
				liveIn[pc] = ni
				changed = true
			}
		}
	}
	return liveIn
}

// transfer computes liveIn = use ∪ (out − def) for one instruction.
func transfer(in isa.Instr, out regset) regset {
	if in.Op == isa.CALL {
		return allRegs
	}
	info := isa.Info(in.Op)
	st := out
	if info.Dst == isa.RegInt {
		st.i &^= 1 << in.Rd
	} else if info.Dst == isa.RegFloat {
		st.f &^= 1 << in.Rd
	}
	if info.SrcA == isa.RegInt {
		st.i |= 1 << in.Ra
	} else if info.SrcA == isa.RegFloat {
		st.f |= 1 << in.Ra
	}
	if info.SrcB == isa.RegInt {
		st.i |= 1 << in.Rb
	} else if info.SrcB == isa.RegFloat {
		st.f |= 1 << in.Rb
	}
	return st
}

// scratch is one chosen scratch register with its save/restore decision.
type scratch struct {
	reg   uint8
	spill bool
	slot  int64 // absolute spill address; meaningful when spill
}

// pickInt chooses an integer scratch register outside exclude, preferring
// one dead at live (no save needed). Scans descending for determinism
// and to stay clear of the low registers benchmark kernels favor.
func pickInt(live regset, exclude uint16, slot int64) scratch {
	for r := isa.NumRegs - 1; r >= 0; r-- {
		if exclude&(1<<r) == 0 && live.deadInt(uint8(r)) {
			return scratch{reg: uint8(r)}
		}
	}
	for r := isa.NumRegs - 1; r >= 0; r-- {
		if exclude&(1<<r) == 0 {
			return scratch{reg: uint8(r), spill: true, slot: slot}
		}
	}
	panic("harden: no integer register available") // exclude can never cover all 16
}

func pickFloat(live regset, exclude uint16, slot int64) scratch {
	for r := isa.NumRegs - 1; r >= 0; r-- {
		if exclude&(1<<r) == 0 && live.deadFloat(uint8(r)) {
			return scratch{reg: uint8(r)}
		}
	}
	for r := isa.NumRegs - 1; r >= 0; r-- {
		if exclude&(1<<r) == 0 {
			return scratch{reg: uint8(r), spill: true, slot: slot}
		}
	}
	panic("harden: no float register available")
}

// operandBits returns the registers in occupied by in, per file.
func operandBits(in isa.Instr) (ints, floats uint16) {
	info := isa.Info(in.Op)
	add := func(class isa.RegClass, r uint8) {
		if class == isa.RegInt {
			ints |= 1 << r
		} else if class == isa.RegFloat {
			floats |= 1 << r
		}
	}
	add(info.Dst, in.Rd)
	add(info.SrcA, in.Ra)
	add(info.SrcB, in.Rb)
	return ints, floats
}

// plan is the per-original-instruction rewrite decision, fixed before
// layout so block starts can be computed ahead of emission.
type plan struct {
	protect bool
	intDst  bool
	rs      scratch // duplicate destination (int or float per intDst)
	rx, ry  scratch // FBITS compare temporaries (float case only)
	ranges  []Range // SECEND invariant checks
	rfs     scratch // range-check value register (float)
	rfb     scratch // range-check bound register (float)
	prefix  int     // instructions emitted before the original
	suffix  int     // instructions emitted after it
}

func spillLen(ss ...scratch) int {
	n := 0
	for _, s := range ss {
		if s.spill {
			n++
		}
	}
	return n
}

// rewrite hardens one function. Detector blocks are planned first (their
// lengths fix the new layout), then emitted with branch targets remapped
// to block starts and compare branches patched to the shared trap.
func rewrite(fn *prog.Function, sel map[prog.StaticID]bool, opt Options, res *Result) (*prog.Function, error) {
	liveIn := liveness(fn)
	slot := func(k int) int64 { return int64(opt.ScratchBase + k) }

	plans := make([]plan, len(fn.Instrs))
	anyDetector := false
	for idx, in := range fn.Instrs {
		p := &plans[idx]
		id := prog.StaticID{Func: fn.Name, Local: idx}
		info := isa.Info(in.Op)
		if sel[id] {
			if info.Dst == isa.RegNone {
				res.Skipped = append(res.Skipped, id)
			} else {
				p.protect = true
				p.intDst = info.Dst == isa.RegInt
				exInt, exFloat := operandBits(in)
				if p.intDst {
					p.rs = pickInt(liveIn[idx], exInt, slot(1))
					p.prefix = 1 + spillLen(p.rs) // [sta] dup
					p.suffix = 1 + spillLen(p.rs) // bne [lda]
				} else {
					p.rs = pickFloat(liveIn[idx], exFloat, slot(0))
					p.rx = pickInt(liveIn[idx], exInt, slot(1))
					exInt |= 1 << p.rx.reg
					p.ry = pickInt(liveIn[idx], exInt, slot(2))
					p.prefix = 1 + spillLen(p.rs, p.rx, p.ry) // saves + dup
					p.suffix = 3 + spillLen(p.rs, p.rx, p.ry) // fbits ×2, bne, restores
				}
				res.Protected = append(res.Protected, id)
				anyDetector = true
			}
		}
		if in.Op == isa.SECEND {
			if rs := opt.Ranges[int(in.Imm)]; len(rs) > 0 {
				p.ranges = rs
				p.rfs = pickFloat(liveIn[idx], 0, slot(0))
				p.rfb = pickFloat(liveIn[idx], 1<<p.rfs.reg, slot(3))
				words := 0
				for _, r := range rs {
					words += r.Buf.Len
				}
				// Per word: flda, NaN fbne, fli min, fblt, fli max, fblt.
				p.prefix = 6*words + 2*spillLen(p.rfs, p.rfb)
				anyDetector = true
			}
		}
	}

	// Layout: blockStart[idx] is where idx's block begins in the new
	// body, origPos[idx] where the original instruction itself lands.
	blockStart := make([]int, len(fn.Instrs)+1)
	origPos := make([]int, len(fn.Instrs))
	pos := 0
	for idx := range fn.Instrs {
		blockStart[idx] = pos
		origPos[idx] = pos + plans[idx].prefix
		pos += plans[idx].prefix + 1 + plans[idx].suffix
	}
	blockStart[len(fn.Instrs)] = pos
	trapIdx := pos // TRAP appended after the last block

	hfn := &prog.Function{Name: fn.Name, Calls: append([]string(nil), fn.Calls...)}
	emit := func(in isa.Instr) { hfn.Instrs = append(hfn.Instrs, in) }
	var trapFix []int
	toTrap := func(in isa.Instr) {
		trapFix = append(trapFix, len(hfn.Instrs))
		emit(in)
	}
	save := func(s scratch, op isa.Op) { // op = STA or FSTA
		if s.spill {
			emit(isa.Instr{Op: op, Ra: s.reg, Imm: s.slot})
		}
	}
	restore := func(s scratch, op isa.Op) { // op = LDA or FLDA
		if s.spill {
			emit(isa.Instr{Op: op, Rd: s.reg, Imm: s.slot})
		}
	}

	for idx, in := range fn.Instrs {
		p := plans[idx]

		if len(p.ranges) > 0 {
			save(p.rfs, isa.FSTA)
			save(p.rfb, isa.FSTA)
			for _, r := range p.ranges {
				for w := 0; w < r.Buf.Len; w++ {
					emit(isa.Instr{Op: isa.FLDA, Rd: p.rfs.reg, Imm: int64(r.Buf.Addr + w)})
					// NaN compares unequal to itself under the quiet
					// float branches, so fbne(x, x) fires exactly on NaN.
					toTrap(isa.Instr{Op: isa.FBNE, Ra: p.rfs.reg, Rb: p.rfs.reg})
					emit(isa.Instr{Op: isa.FLI, Rd: p.rfb.reg, Imm: int64(math.Float64bits(r.Min))})
					toTrap(isa.Instr{Op: isa.FBLT, Ra: p.rfs.reg, Rb: p.rfb.reg})
					emit(isa.Instr{Op: isa.FLI, Rd: p.rfb.reg, Imm: int64(math.Float64bits(r.Max))})
					toTrap(isa.Instr{Op: isa.FBLT, Ra: p.rfb.reg, Rb: p.rfs.reg})
				}
			}
			restore(p.rfb, isa.FLDA)
			restore(p.rfs, isa.FLDA)
		}

		if p.protect {
			if p.intDst {
				save(p.rs, isa.STA)
			} else {
				save(p.rs, isa.FSTA)
				save(p.rx, isa.STA)
				save(p.ry, isa.STA)
			}
			dup := in
			dup.Rd = p.rs.reg
			if isa.Info(in.Op).Imm == isa.ImmTarget {
				// Unreachable: target-carrying ops have no destination.
				return nil, fmt.Errorf("harden: %s+%d: branch marked protectable", fn.Name, idx)
			}
			emit(dup)
		}

		// The original instruction, with branch targets remapped to the
		// target's block start so control flow never enters mid-block.
		if isa.Info(in.Op).Imm == isa.ImmTarget {
			in.Imm = int64(blockStart[in.Imm])
		}
		emit(in)

		if p.protect {
			if p.intDst {
				toTrap(isa.Instr{Op: isa.BNE, Ra: p.rs.reg, Rb: in.Rd})
				restore(p.rs, isa.LDA)
			} else {
				emit(isa.Instr{Op: isa.FBITS, Rd: p.rx.reg, Ra: p.rs.reg})
				emit(isa.Instr{Op: isa.FBITS, Rd: p.ry.reg, Ra: in.Rd})
				toTrap(isa.Instr{Op: isa.BNE, Ra: p.rx.reg, Rb: p.ry.reg})
				restore(p.ry, isa.LDA)
				restore(p.rx, isa.LDA)
				restore(p.rs, isa.FLDA)
			}
			if n := spillLen(p.rs, p.rx, p.ry); n > 0 {
				res.Spills += n
				res.SpillsAt[prog.StaticID{Func: fn.Name, Local: idx}] += n
			}
		} else if len(p.ranges) > 0 {
			if n := spillLen(p.rfs, p.rfb); n > 0 {
				res.Spills += n
				res.SpillsAt[prog.StaticID{Func: fn.Name, Local: idx}] += n
			}
		}

		if got := len(hfn.Instrs); got != blockStart[idx]+plans[idx].prefix+1+plans[idx].suffix {
			return nil, fmt.Errorf("harden: %s+%d: block length mismatch (%d vs planned %d)", fn.Name, idx, got-blockStart[idx], plans[idx].prefix+1+plans[idx].suffix)
		}

		oid := prog.StaticID{Func: fn.Name, Local: idx}
		hid := prog.StaticID{Func: fn.Name, Local: origPos[idx]}
		res.Map.OrigToHard[oid] = hid
		res.Map.HardToOrig[hid] = oid
	}

	if anyDetector {
		if trapIdx != len(hfn.Instrs) {
			return nil, fmt.Errorf("harden: %s: trap index drifted", fn.Name)
		}
		emit(isa.Instr{Op: isa.TRAP})
	}
	for _, at := range trapFix {
		hfn.Instrs[at].Imm = int64(trapIdx)
	}
	res.AddedInstrs += len(hfn.Instrs) - len(fn.Instrs)
	return hfn, nil
}
