package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"fastflip/internal/qcheck"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

func machines(words int) (clean, dirty *vm.Machine) {
	return vm.New(nil, 0, words), vm.New(nil, 0, words)
}

func setF(m *vm.Machine, addr int, v float64) { m.Mem[addr] = math.Float64bits(v) }

func TestCompareMasked(t *testing.T) {
	clean, dirty := machines(4)
	setF(clean, 0, 1.5)
	setF(dirty, 0, 1.5)
	out := Compare([]spec.Buffer{{Addr: 0, Len: 4, Kind: spec.Float}}, clean, dirty)
	if out.Kind != Masked || out.Magnitudes != nil {
		t.Errorf("outcome = %+v", out)
	}
}

func TestCompareFloatSDC(t *testing.T) {
	clean, dirty := machines(4)
	setF(clean, 0, 1.0)
	setF(dirty, 0, 1.25)
	setF(clean, 2, -3.0)
	setF(dirty, 2, -3.5)
	out := Compare([]spec.Buffer{{Addr: 0, Len: 4, Kind: spec.Float}}, clean, dirty)
	if out.Kind != SDC {
		t.Fatalf("kind = %v", out.Kind)
	}
	if out.Magnitudes[0] != 0.5 {
		t.Errorf("magnitude = %v, want 0.5 (max element-wise)", out.Magnitudes[0])
	}
	if out.MaxMagnitude() != 0.5 {
		t.Errorf("MaxMagnitude = %v", out.MaxMagnitude())
	}
}

func TestComparePerBufferMagnitudes(t *testing.T) {
	clean, dirty := machines(4)
	setF(clean, 0, 1)
	setF(dirty, 0, 2)
	setF(clean, 1, 5)
	setF(dirty, 1, 5)
	bufs := []spec.Buffer{
		{Name: "a", Addr: 0, Len: 1, Kind: spec.Float},
		{Name: "b", Addr: 1, Len: 1, Kind: spec.Float},
	}
	out := Compare(bufs, clean, dirty)
	if out.Kind != SDC || out.Magnitudes[0] != 1 || out.Magnitudes[1] != 0 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestCompareNaNIsDetected(t *testing.T) {
	clean, dirty := machines(2)
	setF(clean, 0, 1.0)
	setF(dirty, 0, math.NaN())
	out := Compare([]spec.Buffer{{Addr: 0, Len: 2, Kind: spec.Float}}, clean, dirty)
	if out.Kind != Detected || out.Reason != DetectBadOutput {
		t.Errorf("outcome = %+v", out)
	}
}

func TestCompareInfIsDetected(t *testing.T) {
	clean, dirty := machines(2)
	setF(clean, 0, 1.0)
	setF(dirty, 0, math.Inf(-1))
	out := Compare([]spec.Buffer{{Addr: 0, Len: 2, Kind: spec.Float}}, clean, dirty)
	if out.Kind != Detected || out.Reason != DetectBadOutput {
		t.Errorf("outcome = %+v", out)
	}
}

func TestCleanNaNStaysComparable(t *testing.T) {
	// If the clean output already holds a NaN, a *different* NaN bit
	// pattern is not "malformed" — but it is also not the same word, so it
	// surfaces as an SDC rather than Detected.
	clean, dirty := machines(1)
	clean.Mem[0] = math.Float64bits(math.NaN())
	dirty.Mem[0] = math.Float64bits(math.NaN()) ^ 1
	out := Compare([]spec.Buffer{{Addr: 0, Len: 1, Kind: spec.Float}}, clean, dirty)
	if out.Kind == Detected {
		t.Errorf("clean-NaN buffer misclassified as malformed: %+v", out)
	}
}

func TestCompareIntBuffer(t *testing.T) {
	clean, dirty := machines(2)
	clean.Mem[0] = 100
	dirty.Mem[0] = 92
	out := Compare([]spec.Buffer{{Addr: 0, Len: 2, Kind: spec.Int}}, clean, dirty)
	if out.Kind != SDC || out.Magnitudes[0] != 8 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestIntDiffSigned(t *testing.T) {
	clean, dirty := machines(1)
	var neg5 int64 = -5
	clean.Mem[0] = uint64(neg5)
	dirty.Mem[0] = 3
	mag, _ := BufferDiff(spec.Buffer{Addr: 0, Len: 1, Kind: spec.Int}, clean, dirty)
	if mag != 8 {
		t.Errorf("|-5 - 3| = %v, want 8", mag)
	}
}

func TestIntDiffExtremes(t *testing.T) {
	clean, dirty := machines(1)
	var lo int64 = math.MinInt64
	clean.Mem[0] = uint64(lo)
	var hi int64 = math.MaxInt64
	dirty.Mem[0] = uint64(hi)
	mag, _ := BufferDiff(spec.Buffer{Addr: 0, Len: 1, Kind: spec.Int}, clean, dirty)
	if mag <= 0 || math.IsInf(mag, 0) || math.IsNaN(mag) {
		t.Errorf("extreme diff = %v", mag)
	}
}

// Property: the magnitude metric is symmetric and zero iff equal.
func TestBufferDiffMetricQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		clean, dirty := machines(1)
		clean.Mem[0] = a
		dirty.Mem[0] = b
		m1, _ := BufferDiff(spec.Buffer{Addr: 0, Len: 1, Kind: spec.Int}, clean, dirty)
		m2, _ := BufferDiff(spec.Buffer{Addr: 0, Len: 1, Kind: spec.Int}, dirty, clean)
		if m1 != m2 {
			return false
		}
		return (m1 == 0) == (a == b)
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	for _, k := range []OutcomeKind{Masked, SDC, Detected} {
		if k.String() == "" {
			t.Errorf("kind %d empty string", k)
		}
	}
	for _, r := range []DetectReason{DetectNone, DetectCrash, DetectTimeout, DetectBadOutput} {
		if r.String() == "" {
			t.Errorf("reason %d empty string", r)
		}
	}
}
