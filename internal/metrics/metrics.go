// Package metrics defines injection outcome classification and the SDC
// magnitude metric.
//
// The magnitude metric is the paper's (§5.6): the maximum element-wise
// absolute difference between the clean and the corrupted value of an
// output buffer. Float buffers compare as float64s; integer buffers compare
// as absolute integer difference. A NaN or infinity appearing in a float
// output where the clean run had none counts as a *detectable* output
// change ("misformatted output"), not an SDC.
package metrics

import (
	"fmt"
	"math"

	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// OutcomeKind classifies the effect of one injected error (§2.1).
type OutcomeKind uint8

const (
	// Masked: the error did not change the compared outputs.
	Masked OutcomeKind = iota
	// SDC: the outputs silently changed; Magnitudes hold per-buffer errors.
	SDC
	// Detected: the error led to a crash, a timeout, or a detectably
	// malformed output (NaN/Inf where the clean output had none).
	Detected
)

func (k OutcomeKind) String() string {
	switch k {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Detected:
		return "detected"
	}
	return fmt.Sprintf("outcome(%d)", uint8(k))
}

// DetectReason records why an outcome is Detected, for diagnostics.
type DetectReason uint8

const (
	DetectNone DetectReason = iota
	DetectCrash
	DetectTimeout
	DetectBadOutput // NaN/Inf introduced into a float output
	// DetectTrap is a hardening detector firing (vm.CrashTrap): the
	// duplicated computation disagreed with the protected instruction and
	// the program trapped. Appended at the end so persisted reason values
	// (WAL records, gob store entries) keep decoding.
	DetectTrap
)

func (r DetectReason) String() string {
	switch r {
	case DetectNone:
		return "-"
	case DetectCrash:
		return "crash"
	case DetectTimeout:
		return "timeout"
	case DetectBadOutput:
		return "malformed output"
	case DetectTrap:
		return "trap"
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// Outcome is the result of one injection experiment.
type Outcome struct {
	Kind   OutcomeKind
	Reason DetectReason
	// Magnitudes[k] is the SDC magnitude in compared buffer k (the section
	// outputs for per-section experiments, the final outputs for monolithic
	// ones). Only meaningful when Kind == SDC; +Inf marks a side-effect
	// corruption that must be treated as SDC-Bad regardless of ε.
	Magnitudes []float64
}

// MaxMagnitude returns the largest per-buffer magnitude, or 0.
func (o Outcome) MaxMagnitude() float64 {
	max := 0.0
	for _, m := range o.Magnitudes {
		if m > max {
			max = m
		}
	}
	return max
}

// BufferDiff computes the SDC magnitude of buffer b between a clean and a
// corrupted machine, and whether the corrupted buffer is malformed
// (NaN/Inf introduced into a float buffer).
func BufferDiff(b spec.Buffer, clean, dirty *vm.Machine) (mag float64, malformed bool) {
	for i := 0; i < b.Len; i++ {
		cw := clean.Mem[b.Addr+i]
		dw := dirty.Mem[b.Addr+i]
		if cw == dw {
			continue
		}
		switch b.Kind {
		case spec.Float:
			cv := math.Float64frombits(cw)
			dv := math.Float64frombits(dw)
			if (math.IsNaN(dv) || math.IsInf(dv, 0)) && !(math.IsNaN(cv) || math.IsInf(cv, 0)) {
				return 0, true
			}
			if d := math.Abs(cv - dv); d > mag {
				mag = d
			}
		case spec.Int:
			if d := absIntDiff(cw, dw); d > mag {
				mag = d
			}
		}
	}
	return mag, false
}

// Compare classifies the difference between clean and dirty machines over
// the given buffers: per-buffer magnitudes, or Detected on malformed float
// output.
func Compare(bufs []spec.Buffer, clean, dirty *vm.Machine) Outcome {
	out := Outcome{Kind: Masked}
	for _, b := range bufs {
		mag, malformed := BufferDiff(b, clean, dirty)
		if malformed {
			return Outcome{Kind: Detected, Reason: DetectBadOutput}
		}
		out.Magnitudes = append(out.Magnitudes, mag)
		if mag != 0 {
			out.Kind = SDC
		}
	}
	if out.Kind == Masked {
		out.Magnitudes = nil
	}
	return out
}

// absIntDiff returns |int64(a) - int64(b)| as a float64, saturating instead
// of overflowing.
func absIntDiff(a, b uint64) float64 {
	ia, ib := int64(a), int64(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	d := uint64(ib) - uint64(ia) // two's complement difference is exact
	return float64(d)
}
