package chisel

import (
	"math"
	"testing"
	"testing/quick"

	"fastflip/internal/qcheck"
	"fastflip/internal/sens"
	"fastflip/internal/trace"
)

// composed builds the fixture spec once for the property tests.
func composed(t *testing.T) (*Spec, *trace.Trace) {
	t.Helper()
	tr := recorded(t)
	s, err := Compose(tr, amps())
	if err != nil {
		t.Fatal(err)
	}
	return s, tr
}

// Property: Bound is linear and monotone in the injected magnitudes —
// scaling a section's SDC scales the end-to-end bound by the same factor,
// and a larger corruption never yields a smaller bound.
func TestBoundLinearityQuick(t *testing.T) {
	s, _ := composed(t)
	f := func(magRaw, scaleRaw uint16) bool {
		mag := float64(magRaw) / 256
		scale := float64(scaleRaw)/1024 + 0.5
		b1 := s.Bound(0, []float64{mag})[0]
		b2 := s.Bound(0, []float64{float64(mag * scale)})[0]
		want := float64(b1 * scale)
		if math.Abs(b2-want) > 1e-9*math.Max(1, want) {
			return false
		}
		bigger := s.Bound(0, []float64{mag + 1})[0]
		return bigger >= b1
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: Bad is monotone in ε — relaxing the threshold never turns an
// acceptable outcome unacceptable.
func TestBadMonotoneInEpsilonQuick(t *testing.T) {
	s, _ := composed(t)
	f := func(magRaw, epsRaw uint16) bool {
		mag := float64(magRaw) / 512
		eps := float64(epsRaw) / 512
		strict := s.Bad(0, []float64{mag}, []float64{eps})
		relaxed := s.Bad(0, []float64{mag}, []float64{eps * 2})
		// relaxed implies strict: anything bad at 2ε is bad at ε.
		return !relaxed || strict
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: a masked section outcome (all-zero magnitudes) is never
// SDC-Bad at any non-negative ε.
func TestMaskedNeverBadQuick(t *testing.T) {
	s, tr := composed(t)
	f := func(instRaw uint8, epsRaw uint16) bool {
		inst := int(instRaw) % len(tr.Instances)
		eps := float64(epsRaw) / 512
		return !s.Bad(inst, []float64{0}, []float64{eps})
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: amplification factors scale the composed coefficients
// multiplicatively — doubling a section's K doubles the upstream
// coefficient while the section's own φ coefficient stays 1.
func TestCoefficientScalesWithKQuick(t *testing.T) {
	tr := recorded(t)
	f := func(kRaw uint8) bool {
		k := float64(kRaw)/16 + 0.25
		a := []*sens.Amplification{
			{K: [][]float64{{3}}},
			{K: [][]float64{{k, 1}}},
		}
		s, err := Compose(tr, a)
		if err != nil {
			return false
		}
		return s.Coefficient(0, 0, 0) == k && s.Coefficient(0, 1, 0) == 1
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}
