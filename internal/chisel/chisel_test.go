package chisel

import (
	"math"
	"testing"

	"fastflip/internal/prog"
	"fastflip/internal/sens"
	"fastflip/internal/spec"
	"fastflip/internal/sym"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

func recorded(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// amps builds hand-specified amplification matrices for the fixture:
// scale has K(x->y) = 3; square has K(y->z) = 9, K(c->z) = 1.
func amps() []*sens.Amplification {
	return []*sens.Amplification{
		{K: [][]float64{{3}}},
		{K: [][]float64{{9, 1}}},
	}
}

func TestComposeEquation2Shape(t *testing.T) {
	tr := recorded(t)
	s, err := Compose(tr, amps())
	if err != nil {
		t.Fatal(err)
	}
	// Δ(z) ≤ 9·φ_{scale,y} + 1·φ_{square,z}; x is a program input and
	// assumed SDC-free, so no constant term.
	if got := s.Coefficient(0, 0, 0); got != 9 {
		t.Errorf("coefficient of scale's output = %v, want 9", got)
	}
	if got := s.Coefficient(0, 1, 0); got != 1 {
		t.Errorf("coefficient of square's output = %v, want 1", got)
	}
	if c := s.Final[0].Const(); c != 0 {
		t.Errorf("constant term = %v, want 0 (SDC-free inputs)", c)
	}
}

func TestBoundSingleErrorModel(t *testing.T) {
	tr := recorded(t)
	s, err := Compose(tr, amps())
	if err != nil {
		t.Fatal(err)
	}
	// An error introducing 0.5 into scale's output bounds z by 4.5.
	if got := s.Bound(0, []float64{0.5}); got[0] != 4.5 {
		t.Errorf("bound via scale = %v, want 4.5", got)
	}
	// The same magnitude in square's own output bounds z by 0.5.
	if got := s.Bound(1, []float64{0.5}); got[0] != 0.5 {
		t.Errorf("bound via square = %v, want 0.5", got)
	}
}

func TestBadThreshold(t *testing.T) {
	tr := recorded(t)
	s, err := Compose(tr, amps())
	if err != nil {
		t.Fatal(err)
	}
	eps := []float64{1.0}
	if s.Bad(1, []float64{0.5}, eps) {
		t.Error("0.5 through square flagged bad at eps = 1")
	}
	if !s.Bad(0, []float64{0.5}, eps) {
		t.Error("0.5 through scale (bound 4.5) not flagged bad at eps = 1")
	}
	if s.Bad(0, []float64{0}, []float64{0}) {
		t.Error("masked outcome flagged bad at eps = 0")
	}
	if !s.Bad(0, []float64{math.Inf(1)}, []float64{1e300}) {
		t.Error("conservative +Inf magnitude not flagged bad")
	}
}

func TestComposeMismatchedAmps(t *testing.T) {
	tr := recorded(t)
	if _, err := Compose(tr, amps()[:1]); err == nil {
		t.Error("Compose accepted wrong amplification count")
	}
}

// chainProgram builds n sections, each multiplying the same cell in place:
// section i computes v = v * 2 (input == output buffer), checking the
// in-place update semantics of the composition.
func chainProgram(t *testing.T, n int) *spec.Program {
	t.Helper()
	p := prog.New()
	main := prog.NewFunc("main")
	main.RoiBeg()
	for i := 0; i < n; i++ {
		main.SecBeg(i)
		main.Call("dbl")
		main.SecEnd(i)
	}
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	dbl := prog.NewFunc("dbl")
	dbl.Li(1, 0)
	dbl.Fld(0, 1, 0)
	dbl.Fli(1, 2)
	dbl.Fmul(0, 0, 1)
	dbl.Li(1, 0)
	dbl.Fst(0, 1, 0)
	dbl.Ret()
	p.MustAdd(dbl.MustBuild())

	linked, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	v := spec.Buffer{Name: "v", Addr: 0, Len: 1, Kind: spec.Float}
	secs := make([]spec.Section, n)
	for i := range secs {
		secs[i] = spec.Section{ID: i, Name: "dbl", Instances: []spec.InstanceIO{
			{Inputs: []spec.Buffer{v}, Outputs: []spec.Buffer{v}, Live: []spec.Buffer{v}},
		}}
	}
	return &spec.Program{
		Name: "chain", Linked: linked, MemWords: 4,
		Init:         func(m *vm.Machine) { m.Mem[0] = math.Float64bits(1) },
		Sections:     secs,
		FinalOutputs: []spec.Buffer{v},
	}
}

func TestComposeInPlaceChain(t *testing.T) {
	p := chainProgram(t, 4)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]*sens.Amplification, 4)
	for i := range a {
		a[i] = &sens.Amplification{K: [][]float64{{2}}}
	}
	s, err := Compose(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	// φ introduced in section i is amplified by 2^(3-i) downstream.
	for i := 0; i < 4; i++ {
		want := math.Pow(2, float64(3-i))
		if got := s.Coefficient(0, i, 0); got != want {
			t.Errorf("coefficient of section %d = %v, want %v", i, got, want)
		}
	}
}

func TestComposeDeadOutputHasZeroCoefficient(t *testing.T) {
	// A section whose output is overwritten before reaching the final
	// output contributes nothing (FastFlip's declared-dataflow masking).
	p := chainProgram(t, 2)
	// Redeclare section 0's output as a scratch cell that section 1
	// overwrites entirely.
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	a := []*sens.Amplification{
		{K: [][]float64{{2}}},
		// Section 1 ignores its input: K = 0. Its own φ fully determines v.
		{K: [][]float64{{0}}},
	}
	s, err := Compose(tr, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Coefficient(0, 0, 0); got != 0 {
		t.Errorf("dead upstream coefficient = %v, want 0", got)
	}
	if got := s.Coefficient(0, 1, 0); got != 1 {
		t.Errorf("final section coefficient = %v, want 1", got)
	}
}

func TestVarNaming(t *testing.T) {
	v := sym.Var{Inst: 3, Out: 1}
	if v.String() != "phi[3.1]" {
		t.Errorf("Var.String = %q", v.String())
	}
}
