// Package chisel implements the symbolic SDC propagation analysis (§4.4),
// modeled on Chisel: it composes per-section total SDC specifications
//
//	Δ(o_{s,k}) ≤ Σ_i K[k][i]·Δ(i_{s,i}) + φ_{s,k}
//
// along the developer-declared dataflow into a conservative affine
// end-to-end specification Δ(o_{T,λ}) ≤ f_{T,λ}(φ_{*,*}) — the paper's
// Equation 2. Dataflow between sections follows from buffer identity:
// memory words written by one section instance and read by a later one.
//
// Conservatism: where several symbolic bounds cover the words of one input
// buffer, their sum is used (sound because all coefficients are
// non-negative), and each section is assumed to amplify by its maximum
// observed factor.
package chisel

import (
	"fmt"
	"math"
	"sync/atomic"

	"fastflip/internal/sens"
	"fastflip/internal/sym"
	"fastflip/internal/trace"
)

// dropSubUnityAmp, when set, makes Compose discard amplification factors
// below 1 — i.e. it disables the bound widening that keeps attenuating
// sections sound. It exists only as a seeded defect for the differential
// fuzzer (internal/diffcheck) to detect; production code never sets it.
var dropSubUnityAmp atomic.Bool

// SetDropSubUnityAmp toggles the seeded soundness defect used by the
// differential verification self-test and returns the previous value so
// tests can restore it.
func SetDropSubUnityAmp(on bool) bool { return dropSubUnityAmp.Swap(on) }

// Spec is the end-to-end SDC propagation specification for one traced
// execution.
type Spec struct {
	// Final[λ] bounds the SDC in final output λ as an affine expression of
	// the φ variables: f_{T,λ}(φ_{*,*}).
	Final []*sym.Expr
}

// Compose runs the propagation analysis over the trace. amps[i] is the
// amplification matrix of t.Instances[i].
func Compose(t *trace.Trace, amps []*sens.Amplification) (*Spec, error) {
	if len(amps) != len(t.Instances) {
		return nil, fmt.Errorf("chisel: %d amplification matrices for %d instances", len(amps), len(t.Instances))
	}
	// wordExpr[w] bounds the SDC currently present in memory word w; nil
	// means SDC-free (the paper's assumption for program inputs, §4.1).
	wordExpr := make([]*sym.Expr, t.Prog.MemWords)

	// exprOver sums the distinct bounds covering a buffer's words.
	exprOver := func(addr, length int) *sym.Expr {
		seen := make(map[*sym.Expr]bool)
		sum := sym.Zero()
		for w := addr; w < addr+length; w++ {
			e := wordExpr[w]
			if e == nil || seen[e] {
				continue
			}
			seen[e] = true
			sum.AddScaled(1, e)
		}
		return sum
	}

	for idx, inst := range t.Instances {
		amp := amps[idx]
		// Input bounds are taken before any of this instance's outputs are
		// written, so in-place updates (input buffer == output buffer) read
		// the upstream bound.
		inBounds := make([]*sym.Expr, len(inst.IO.Inputs))
		for ii, in := range inst.IO.Inputs {
			inBounds[ii] = exprOver(in.Addr, in.Len)
		}
		outExprs := make([]*sym.Expr, len(inst.IO.Outputs))
		for oi := range inst.IO.Outputs {
			e := sym.NewVar(sym.Var{Inst: idx, Out: oi})
			for ii := range inst.IO.Inputs {
				k := amp.K[oi][ii]
				if dropSubUnityAmp.Load() && k < 1 {
					k = 0
				}
				e.AddScaled(k, inBounds[ii])
			}
			outExprs[oi] = e
		}
		for oi, out := range inst.IO.Outputs {
			for w := out.Addr; w < out.Addr+out.Len; w++ {
				wordExpr[w] = outExprs[oi]
			}
		}
	}

	s := &Spec{Final: make([]*sym.Expr, len(t.Prog.FinalOutputs))}
	for λ, out := range t.Prog.FinalOutputs {
		s.Final[λ] = exprOver(out.Addr, out.Len)
	}
	return s, nil
}

// Bound evaluates the end-to-end bound on every final output for an error
// inside instance instIdx that introduced SDC magnitudes mags into that
// instance's outputs (the specialization f_{T,λ,s} of Equation 4: all φ
// variables of other instances are zero under the single-error model).
func (s *Spec) Bound(instIdx int, mags []float64) []float64 {
	bounds := make([]float64, len(s.Final))
	for λ, e := range s.Final {
		bounds[λ] = e.Eval(func(v sym.Var) float64 {
			if v.Inst != instIdx || v.Out >= len(mags) {
				return 0
			}
			return mags[v.Out]
		})
	}
	return bounds
}

// Bad reports whether an error in instance instIdx with per-output SDC
// magnitudes mags is SDC-Bad: some final output's bound exceeds its ε.
// eps must have one entry per final output.
func (s *Spec) Bad(instIdx int, mags []float64, eps []float64) bool {
	// An infinite magnitude marks a side-effect corruption (metrics.Outcome
	// contract): SDC-Bad regardless of ε and of the declared dataflow. The
	// explicit check matters because a zero path coefficient times +Inf
	// evaluates to NaN, which would otherwise fail every comparison below
	// and silently classify the experiment as benign.
	for _, m := range mags {
		if math.IsInf(m, 1) {
			return true
		}
	}
	for λ, b := range s.Bound(instIdx, mags) {
		if b > eps[λ] {
			return true
		}
	}
	return false
}

// Coefficient returns the total downstream amplification of φ_{instIdx,out}
// into final output λ — the numeric coefficients of Equation 2.
func (s *Spec) Coefficient(λ, instIdx, out int) float64 {
	return s.Final[λ].Coef(sym.Var{Inst: instIdx, Out: out})
}
