// Package service runs FastFlip analyses as managed jobs behind a bounded
// worker pool — the resident form of the cmd/fastflip workflow. A Manager
// owns a submission queue, per-job lifecycle (queued → running →
// done/failed/cancelled), live progress snapshots, retained results with
// FIFO eviction, and an in-memory cache of section stores so repeated
// submissions reuse per-section results across requests (§4.7 applied
// across processes instead of within one).
//
// The store cache is keyed by benchmark name. The store itself is
// content-addressed (a section's key hashes its executed code and input
// values), so one store safely serves every variant of a benchmark: a
// resubmission of the same version reuses everything, and a modified
// version reuses its unchanged sections — the paper's cross-version reuse,
// now surviving between requests.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fastflip/internal/bench"
	"fastflip/internal/coord"
	"fastflip/internal/core"
	"fastflip/internal/ostore"
	"fastflip/internal/spec"
	"fastflip/internal/store"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: Queued → Running → one of the terminal states.
// A queued job can move directly to Cancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Request describes one analysis submission.
type Request struct {
	// Bench and Variant select the program version, as in cmd/fastflip.
	Bench   string `json:"bench"`
	Variant string `json:"variant"`
	// Targets are the protection value targets; empty means the paper's
	// defaults (0.90, 0.95, 0.99).
	Targets []float64 `json:"targets,omitempty"`
	// Epsilon is the SDC-Bad threshold ε.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Baseline additionally runs the monolithic campaign and the utility
	// comparison (slower; off by default).
	Baseline bool `json:"baseline,omitempty"`
	// Workers overrides the per-job injection parallelism (0 = the
	// manager's default).
	Workers int `json:"workers,omitempty"`
	// Modified marks this as a modified version of the last analysis of
	// the same benchmark (advances the §4.10 m_adj counter).
	Modified bool `json:"modified,omitempty"`
	// Harden closes the protection loop: the knapsack selection for
	// HardenTarget (default 0.95) is applied as duplication-and-compare
	// detectors, the hardened program is re-injected, and the result
	// carries the measured residual SDC, detector coverage, and the
	// hardened disassembly (Summary.HardenedAsm).
	Harden       bool    `json:"harden,omitempty"`
	HardenTarget float64 `json:"harden_target,omitempty"`
	// Tenant names the submitting tenant for shared-tier attribution,
	// per-tenant quotas, and metrics. Empty means "default". The tenant is
	// a namespace for accounting, not for lookups: content addressing
	// makes every tenant's published sections reusable by every other.
	Tenant string `json:"tenant,omitempty"`
}

// tenant returns the request's tenant name, defaulted.
func (r Request) tenant() string {
	if r.Tenant == "" {
		return "default"
	}
	return r.Tenant
}

// JobView is a point-in-time snapshot of a job, safe to serialize.
type JobView struct {
	ID         string        `json:"id"`
	Bench      string        `json:"bench"`
	Variant    string        `json:"variant"`
	State      State         `json:"state"`
	CreatedAt  time.Time     `json:"created_at"`
	StartedAt  *time.Time    `json:"started_at,omitempty"`
	FinishedAt *time.Time    `json:"finished_at,omitempty"`
	Progress   core.Progress `json:"progress"`
	Error      string        `json:"error,omitempty"`
	Result     *core.Summary `json:"result,omitempty"`
}

// Metrics are the service's cumulative counters and gauges, served by
// GET /metrics.
type Metrics struct {
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsDone      uint64 `json:"jobs_done"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsCancelled uint64 `json:"jobs_cancelled"`
	JobsEvicted   uint64 `json:"jobs_evicted"`
	// JobsPanicked counts jobs whose analysis panicked outside the
	// experiment supervisor and was contained by the job-level recover
	// (the job fails; the service keeps running).
	JobsPanicked uint64 `json:"jobs_panicked"`
	// PanicRetries counts experiment attempts that panicked and succeeded
	// on retry; ExperimentsPoisoned counts experiments quarantined after
	// panicking twice.
	PanicRetries        uint64 `json:"panic_retries"`
	ExperimentsPoisoned uint64 `json:"experiments_poisoned"`
	// WALDegradedJobs counts jobs whose write-ahead campaign log latched
	// off after a persistent write failure (the analysis still completed,
	// memory-only for the affected sections).
	WALDegradedJobs uint64 `json:"wal_degraded_jobs"`
	// HardenedJobs counts jobs that ran the protection loop
	// (Request.Harden); DetectorTriggers accumulates the hardened-campaign
	// sites whose injection was caught by a detector trap.
	HardenedJobs     uint64 `json:"hardened_jobs"`
	DetectorTriggers uint64 `json:"detector_triggers"`

	JobsQueued  int `json:"jobs_queued"`  // gauge
	JobsRunning int `json:"jobs_running"` // gauge
	QueueDepth  int `json:"queue_depth"`  // gauge; same as jobs_queued

	InjectionsRun uint64 `json:"injections_run"`
	SimInstrs     uint64 `json:"sim_instrs"`
	// CleanInstrs/FaultyInstrs split the replay engine's actual simulated
	// work (clean-prefix replay vs post-flip execution); SimInstrs above is
	// the accounted cost model and stays comparable across engine versions.
	CleanInstrs  uint64 `json:"clean_instrs"`
	FaultyInstrs uint64 `json:"faulty_instrs"`
	// ElidedExperiments counts experiments the static masking tier resolved
	// without simulation; BatchedExperiments counts experiments whose faulty
	// suffix ran inside a lockstep batch replica, and BatchDispatches the
	// dispatch groups behind them. BatchReplicasAvg is the mean batch width
	// (BatchedExperiments / BatchDispatches), computed at read time.
	ElidedExperiments  uint64  `json:"elided_experiments"`
	BatchedExperiments uint64  `json:"batched_experiments"`
	BatchDispatches    uint64  `json:"batch_dispatches"`
	BatchReplicasAvg   float64 `json:"batch_replicas_avg"`

	// StoreHits counts section instances resolved from the cache,
	// StoreMisses those that had to be injected.
	StoreHits     uint64 `json:"store_hits"`
	StoreMisses   uint64 `json:"store_misses"`
	StoreSections int    `json:"store_sections"`   // gauge
	StoreBenches  int    `json:"store_benchmarks"` // gauge
	// StoreInvalidations counts per-benchmark cache drops: explicit
	// InvalidateStore calls plus the automatic invalidation every
	// completed distributed job performs before merging its results.
	StoreInvalidations uint64 `json:"store_invalidations"`

	// Shared-tier counters, all zero without Options.Shared. Hits and
	// misses are lookups against the cross-process outcome store (a hit
	// means the section was analyzed by some earlier job — possibly in
	// another process, by another tenant); Bytes and Evictions describe
	// the store's live on-disk footprint and quota enforcement.
	SharedHits      uint64 `json:"shared_hits,omitempty"`
	SharedMisses    uint64 `json:"shared_misses,omitempty"`
	SharedBytes     int64  `json:"shared_bytes,omitempty"`
	SharedEvictions uint64 `json:"shared_evictions,omitempty"`
	SharedSections  int    `json:"shared_sections,omitempty"`
	SharedSegments  int    `json:"shared_segments,omitempty"`
	// SharedTenants maps tenant names to their shared-tier counters.
	SharedTenants map[string]ostore.TenantStats `json:"shared_tenants,omitempty"`
	// ClientDisconnects counts response writes abandoned because the
	// client went away (set by the HTTP layer, not the manager).
	ClientDisconnects uint64 `json:"client_disconnects,omitempty"`

	// Dist carries the distributed-campaign coordinator's counters
	// (shard throughput, leases, reassignments); nil when the service
	// runs campaigns locally.
	Dist *coord.Metrics `json:"dist,omitempty"`
}

// BenchmarkInfo describes one available benchmark, served by
// GET /v1/benchmarks.
type BenchmarkInfo struct {
	Name            string   `json:"name"`
	Variants        []string `json:"variants"`
	PilotInaccuracy float64  `json:"pilot_inaccuracy,omitempty"`
	CachedSections  int      `json:"cached_sections"`
}

// BuildFunc constructs the program for one benchmark version.
type BuildFunc func(benchName, variant string) (*spec.Program, error)

// Options configure a Manager. The zero value gets sensible defaults.
type Options struct {
	// Workers is the number of jobs analyzed concurrently (default 1 —
	// one campaign already saturates GOMAXPROCS via injection workers).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (default 64).
	QueueDepth int
	// MaxRetained bounds the finished jobs kept for retrieval; the oldest
	// are evicted first (default 64).
	MaxRetained int
	// InjectWorkers is the default per-job injection parallelism
	// (0 = GOMAXPROCS).
	InjectWorkers int
	// Build constructs programs (default bench.Build). Tests substitute
	// small fixtures.
	Build BuildFunc
	// ListBenchmarks names the submittable benchmarks (default
	// bench.Names).
	ListBenchmarks func() []string
	// WALDir, when non-empty, gives every job a write-ahead campaign log
	// under this directory (core.Config.WALDir) with resume enabled: a job
	// re-POSTed over a crashed or cancelled campaign merges the logged
	// experiments and reports them as resumed_experiments.
	WALDir string
	// MaxCachedBenches bounds the per-benchmark store cache; the least
	// recently used benchmark's store is evicted first. Benchmarks with a
	// queued or running job are pinned and never evicted mid-merge.
	// 0 means unlimited.
	MaxCachedBenches int
	// ConfigHook, when non-nil, is applied to every job's core.Config
	// after the manager's own fields are set. Chaos tests use it to
	// install fault-injecting filesystems, shrunken retry policies, and
	// experiment panic hooks.
	ConfigHook func(*core.Config)
	// Coordinator, when non-nil, runs every job's injection campaigns
	// distributed: each section is sharded across the coordinator's
	// registered workers (core.Config.SectionInjector). Distributed jobs
	// bypass the per-benchmark store clone and invalidate it on
	// completion — the merged campaign is authoritative, and reusing a
	// stale cached section (e.g. a conservative poison fill from an
	// earlier local run) would silently override re-executed results.
	Coordinator *coord.Coordinator
	// Shared, when non-nil, is the cross-process outcome tier behind
	// every job's store snapshot: lookups fall through benchmark cache →
	// shared tier → miss, and freshly analyzed sections are published
	// back. The staged batch is flushed after every job. Distributed jobs
	// skip the tier for the same reason they skip the benchmark cache.
	// The Manager does not own the store; the caller closes it.
	Shared *ostore.Store
	// MaxTenantActive bounds one tenant's queued-plus-running jobs;
	// submissions beyond it fail with ErrTenantQuota (HTTP 429). 0 means
	// unlimited.
	MaxTenantActive int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxRetained <= 0 {
		o.MaxRetained = 64
	}
	if o.Build == nil {
		o.Build = func(name, variant string) (*spec.Program, error) {
			return bench.Build(name, bench.Variant(variant))
		}
	}
	if o.ListBenchmarks == nil {
		o.ListBenchmarks = bench.Names
	}
	return o
}

// Sentinel errors mapped by the HTTP layer onto status codes.
var (
	ErrNotFound  = errors.New("service: no such job")
	ErrFinished  = errors.New("service: job already finished")
	ErrQueueFull = errors.New("service: queue full")
	ErrClosed    = errors.New("service: manager closed")
	// ErrInvalid wraps submit failures caused by the request itself — an
	// unknown benchmark, a malformed spec — and maps to 400; ErrInfra
	// wraps failures of the service's own machinery (an unwritable WAL
	// directory, shared-tier I/O) and maps to 500. ErrTenantQuota rejects
	// a tenant already at its active-job quota and maps to 429.
	ErrInvalid     = errors.New("service: invalid request")
	ErrInfra       = errors.New("service: infrastructure failure")
	ErrTenantQuota = errors.New("service: tenant active-job quota exceeded")
)

type job struct {
	id       string
	req      Request
	prog     *spec.Program
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	progress core.Progress
	err      string
	result   *core.Summary
	cancel   context.CancelFunc
	done     chan struct{}
	// watchers receive coalesced JobView snapshots on every state or
	// progress change (capacity-1 channels: a slow watcher sees the
	// latest view, never a backlog). All closed when the job finishes.
	watchers []chan JobView
}

// Manager owns the job queue, the worker pool, and the store cache.
type Manager struct {
	opts  Options
	queue chan *job
	wg    sync.WaitGroup

	mu         sync.Mutex
	closed     bool
	nextID     int
	jobs       map[string]*job
	order      []string // submission order, for listing and FIFO eviction
	stores     map[string]*store.Store
	storeOrder []string // benchmark names, least recently used first
	counters   Metrics  // cumulative fields only; gauges computed on demand
}

// New starts a Manager with opts.Workers job workers.
func New(opts Options) *Manager {
	m := &Manager{
		opts:   opts.withDefaults(),
		jobs:   make(map[string]*job),
		stores: make(map[string]*store.Store),
	}
	m.queue = make(chan *job, m.opts.QueueDepth)
	for i := 0; i < m.opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates req, builds its program, and enqueues a job, returning
// its snapshot. Failures are classified: request problems (unknown
// benchmark, malformed spec) wrap ErrInvalid, service problems (an
// unwritable WAL directory) wrap ErrInfra, a full queue is ErrQueueFull,
// a tenant at its active-job quota ErrTenantQuota, and a draining manager
// ErrClosed.
func (m *Manager) Submit(req Request) (JobView, error) {
	if req.Variant == "" {
		req.Variant = string(bench.None)
	}
	p, err := m.opts.Build(req.Bench, req.Variant)
	if err != nil {
		return JobView{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	// Validate the spec before the job can reach the analyzer: a buffer
	// declared outside memory must fail this tenant's build step, not a
	// worker goroutine.
	if err := p.Validate(); err != nil {
		return JobView{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if dir := m.opts.WALDir; dir != "" {
		// Probe durability now: accepting a job whose campaign log cannot
		// be written is an infrastructure failure, not the client's fault.
		if err := checkWritable(dir); err != nil {
			return JobView{}, fmt.Errorf("%w: wal dir: %v", ErrInfra, err)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return JobView{}, ErrClosed
	}
	if q := m.opts.MaxTenantActive; q > 0 {
		active := 0
		for _, j := range m.jobs {
			if !j.state.Terminal() && j.req.tenant() == req.tenant() {
				active++
			}
		}
		if active >= q {
			return JobView{}, fmt.Errorf("%w: tenant %q has %d active jobs (max %d)", ErrTenantQuota, req.tenant(), active, q)
		}
	}
	m.nextID++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.nextID),
		req:     req,
		prog:    p,
		state:   StateQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		m.nextID--
		return JobView{}, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.counters.JobsSubmitted++
	return m.viewLocked(j), nil
}

// Get returns a snapshot of the job, or ErrNotFound.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return m.viewLocked(j), nil
}

// List returns snapshots of all retained jobs in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.viewLocked(m.jobs[id]))
	}
	return out
}

// Cancel stops a queued or running job. A queued job lands in
// StateCancelled immediately; a running one is cancelled asynchronously —
// its injection campaign observes the cancellation between experiments.
// Cancelling a finished job returns ErrFinished.
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		m.finishLocked(j, StateCancelled)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	default:
		return m.viewLocked(j), ErrFinished
	}
	return m.viewLocked(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return JobView{}, ErrNotFound
	}
	select {
	case <-j.done:
		return m.Get(id)
	case <-ctx.Done():
		return JobView{}, ctx.Err()
	}
}

// Watch subscribes to a job's state and progress changes. The returned
// channel immediately carries the current snapshot, then a fresh one on
// every change, coalesced: a slow consumer sees the latest view rather
// than a backlog. The channel is closed after the terminal snapshot is
// delivered (or when cancel is called). cancel is idempotent and must be
// called once the caller is done.
func (m *Manager) Watch(id string) (<-chan JobView, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan JobView, 1)
	ch <- m.viewLocked(j)
	if j.state.Terminal() {
		// Already over: the snapshot above is the terminal one.
		close(ch)
		return ch, func() {}, nil
	}
	j.watchers = append(j.watchers, ch)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			m.mu.Lock()
			defer m.mu.Unlock()
			for i, w := range j.watchers {
				if w == ch {
					j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
					close(ch)
					break
				}
			}
			// Not found: finishLocked already closed it.
		})
	}
	return ch, cancel, nil
}

// notifyLocked pushes the job's current view to every watcher,
// displacing any undelivered older view (the channels have capacity 1
// and every send happens under m.mu, so drain-then-send cannot race
// another producer).
func (m *Manager) notifyLocked(j *job) {
	if len(j.watchers) == 0 {
		return
	}
	v := m.viewLocked(j)
	for _, ch := range j.watchers {
		select {
		case ch <- v:
		default:
			select {
			case <-ch:
			default:
			}
			ch <- v
		}
	}
}

// Metrics returns the current counters and gauges.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := m.counters
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			mt.JobsQueued++
		case StateRunning:
			mt.JobsRunning++
		}
	}
	mt.QueueDepth = mt.JobsQueued
	if mt.BatchDispatches > 0 {
		mt.BatchReplicasAvg = float64(mt.BatchedExperiments) / float64(mt.BatchDispatches)
	}
	mt.StoreBenches = len(m.stores)
	for _, st := range m.stores {
		mt.StoreSections += len(st.Sections)
	}
	if m.opts.Shared != nil {
		st := m.opts.Shared.Stats()
		mt.SharedHits = st.Hits
		mt.SharedMisses = st.Misses
		mt.SharedBytes = st.Bytes
		mt.SharedEvictions = st.Evictions
		mt.SharedSections = st.Sections
		mt.SharedSegments = st.Segments
		mt.SharedTenants = st.Tenants
	}
	if m.opts.Coordinator != nil {
		d := m.opts.Coordinator.Metrics()
		mt.Dist = &d
	}
	return mt
}

// Benchmarks describes the submittable benchmarks and their cache state.
func (m *Manager) Benchmarks() []BenchmarkInfo {
	names := m.opts.ListBenchmarks()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]BenchmarkInfo, 0, len(names))
	for _, n := range names {
		info := BenchmarkInfo{
			Name:            n,
			PilotInaccuracy: bench.PilotInaccuracies[n],
		}
		for _, v := range bench.Variants {
			info.Variants = append(info.Variants, string(v))
		}
		if st := m.stores[n]; st != nil {
			info.CachedSections = len(st.Sections)
		}
		out = append(out, info)
	}
	return out
}

// Close drains the service: no new submissions, queued jobs are
// cancelled, and running jobs are given until ctx is done to finish
// before being hard-cancelled. Returns ctx.Err() if the drain timed out.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, id := range m.order {
		if j := m.jobs[id]; j.state == StateQueued {
			m.finishLocked(j, StateCancelled)
		}
	}
	close(m.queue)
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		m.mu.Lock()
		for _, j := range m.jobs {
			if j.state == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		m.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

func (m *Manager) runJob(j *job) {
	m.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting in the queue
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	distributed := m.opts.Coordinator != nil
	var snap *store.Store
	var tier *tenantTier
	if distributed {
		// A distributed campaign is re-executed authoritatively across the
		// fleet: it must not resolve sections from the per-benchmark clone,
		// where a stale entry (a conservative poison fill, a section from a
		// crashed local run) would mask the merged results.
		snap = store.New()
	} else {
		snap = m.storeSnapshotLocked(j.req.Bench)
		if m.opts.Shared != nil {
			// The job's snapshot falls through to the shared tier on a
			// benchmark-cache miss and publishes what it analyzes. The
			// adapter carries this job's tenant for attribution and counts
			// this job's traffic for its summary.
			tier = &tenantTier{shared: m.opts.Shared, tenant: j.req.tenant()}
			snap.WithTier(tier)
		}
	}
	m.notifyLocked(j)
	m.mu.Unlock()
	defer cancel()

	r, evals, h, err, panicked := m.analyze(ctx, j, snap)

	if m.opts.Shared != nil {
		// Publish this job's staged sections before reporting it finished:
		// the next process's lookup must see them. A failed flush keeps
		// the batch staged (counted in shared stats), never fails the job.
		_ = m.opts.Shared.Flush()
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if distributed && r != nil && err == nil {
		// The coordinator-merged campaign supersedes whatever the cache
		// holds for this benchmark: invalidate the clone so the merge below
		// replaces it instead of first-write-wins keeping stale sections.
		m.invalidateStoreLocked(j.req.Bench)
	}
	// Sections completed before a cancellation are valid (their keys are
	// content hashes), so merge the snapshot back unconditionally: a
	// cancelled job still warms the cache for its retry. The tier is
	// detached first — the cached store must stay tenant-neutral, and
	// each job re-attaches its own adapter to its clone.
	snap.WithTier(nil)
	m.mergeStoreLocked(j.req.Bench, snap)
	j.cancel = nil
	switch {
	case err == nil:
		s := r.Summarize(j.req.Epsilon, evals)
		s.Bench = j.req.Bench
		s.Variant = j.req.Variant
		if h != nil {
			h.ApplyTo(s)
			// A disassembly failure loses only the retrievable text, never
			// the measured figures.
			s.HardenedAsm, _ = h.Asm()
			m.counters.HardenedJobs++
			m.counters.DetectorTriggers += uint64(h.DetectorTriggers)
		}
		if tier != nil {
			s.SharedHits = int(tier.hits.Load())
			s.SharedMisses = int(tier.misses.Load())
		}
		j.result = s
		if n := len(s.Poisoned); n > 0 {
			// The analysis completed (poisoned classes carry the
			// conservative fill), but its quality is compromised: fail the
			// job with diagnostics while retaining the summary so the
			// poison records are inspectable through the API.
			j.err = fmt.Sprintf("service: %d experiment(s) quarantined after repeated panics; outcomes filled conservatively (see result.poisoned)", n)
			m.finishLocked(j, StateFailed)
		} else {
			m.finishLocked(j, StateDone)
		}
	case errors.Is(err, context.Canceled):
		m.finishLocked(j, StateCancelled)
	default:
		j.err = err.Error()
		m.finishLocked(j, StateFailed)
	}
	if panicked {
		m.counters.JobsPanicked++
	}
	m.counters.InjectionsRun += uint64(j.progress.Experiments)
	m.counters.SimInstrs += j.progress.SimInstrs
	m.counters.CleanInstrs += j.progress.CleanInstrs
	m.counters.FaultyInstrs += j.progress.FaultyInstrs
	m.counters.ElidedExperiments += uint64(j.progress.ElidedExperiments)
	m.counters.BatchedExperiments += uint64(j.progress.BatchExperiments)
	m.counters.BatchDispatches += uint64(j.progress.Batches)
	m.counters.StoreHits += uint64(j.progress.Reused)
	m.counters.StoreMisses += uint64(j.progress.Injected)
	if r != nil {
		m.counters.PanicRetries += uint64(r.PanicRetries)
		m.counters.ExperimentsPoisoned += uint64(len(r.Poisoned))
		if r.WALDegraded {
			m.counters.WALDegradedJobs++
		}
	}
	if r != nil && len(evals) > 0 {
		m.counters.InjectionsRun += uint64(r.BaseInject.Experiments)
		m.counters.SimInstrs += r.BaseCost()
		m.counters.CleanInstrs += r.BaseInject.CleanInstrs
		m.counters.FaultyInstrs += r.BaseInject.FaultyInstrs
	}
}

// analyze runs one job's full analysis under a job-level panic guard: the
// last line of defense behind the per-experiment supervisor. Whatever
// escapes — a harness bug in trace recording, composition, evaluation —
// fails this job with the captured stack instead of killing the worker
// goroutine (and with it the process).
func (m *Manager) analyze(ctx context.Context, j *job, snap *store.Store) (r *core.Result, evals []core.TargetEval, h *core.HardenEval, err error, panicked bool) {
	defer func() {
		if rec := recover(); rec != nil {
			r, evals, h = nil, nil, nil
			err = fmt.Errorf("service: job %s panicked: %v\n%s", j.id, rec, debug.Stack())
			panicked = true
		}
	}()

	a := core.NewAnalyzer(m.configFor(j.req))
	a.Store = snap
	a.Progress = func(p core.Progress) {
		m.mu.Lock()
		j.progress = p
		m.notifyLocked(j)
		m.mu.Unlock()
	}
	if j.req.Modified {
		a.NoteModification()
	}

	r, err = a.AnalyzeContext(ctx, j.prog)
	if err == nil && j.req.Baseline {
		if err = a.RunBaselineContext(ctx, r); err == nil {
			evals, err = a.Evaluate(r, j.req.Epsilon, j.req.Modified)
		}
	}
	if err == nil && j.req.Harden {
		target := j.req.HardenTarget
		if target <= 0 {
			target = 0.95
		}
		h, err = a.Harden(ctx, r, j.req.Epsilon, target)
	}
	return r, evals, h, err, false
}

// finishLocked moves j to a terminal state, bumps the matching counter,
// wakes waiters, delivers the terminal snapshot to watchers, and applies
// retention.
func (m *Manager) finishLocked(j *job, s State) {
	j.state = s
	j.finished = time.Now()
	switch s {
	case StateDone:
		m.counters.JobsDone++
	case StateFailed:
		m.counters.JobsFailed++
	case StateCancelled:
		m.counters.JobsCancelled++
	}
	close(j.done)
	m.notifyLocked(j)
	for _, ch := range j.watchers {
		close(ch)
	}
	j.watchers = nil
	m.evictLocked()
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
func (m *Manager) evictLocked() {
	finished := 0
	for _, id := range m.order {
		if m.jobs[id].state.Terminal() {
			finished++
		}
	}
	for i := 0; finished > m.opts.MaxRetained && i < len(m.order); {
		id := m.order[i]
		if !m.jobs[id].state.Terminal() {
			i++
			continue
		}
		delete(m.jobs, id)
		m.order = append(m.order[:i], m.order[i+1:]...)
		finished--
		m.counters.JobsEvicted++
	}
}

// storeSnapshotLocked clones the benchmark's cached store (or a fresh one)
// for a job to analyze against without racing other jobs.
func (m *Manager) storeSnapshotLocked(benchName string) *store.Store {
	if st := m.stores[benchName]; st != nil {
		m.touchStoreLocked(benchName)
		return st.Clone()
	}
	return store.New()
}

// mergeStoreLocked folds a job's store snapshot back into the cache.
// Section payloads are immutable, so first-write-wins is safe; adjusted
// targets and the m_adj counter take the latest job's view. The merge
// writes only into maps owned by m.stores under m.mu — a concurrent
// DELETE (cancel) or bench eviction can never free the entry mid-merge,
// because eviction also runs under m.mu and skips benchmarks with live
// jobs.
func (m *Manager) mergeStoreLocked(benchName string, snap *store.Store) {
	cached := m.stores[benchName]
	if cached == nil {
		m.stores[benchName] = snap
	} else {
		for k, v := range snap.Sections {
			if _, ok := cached.Sections[k]; !ok {
				cached.Sections[k] = v
			}
		}
		for k, v := range snap.AdjustedTargets {
			cached.AdjustedTargets[k] = v
		}
		cached.ModsSinceAdjust = snap.ModsSinceAdjust
	}
	m.touchStoreLocked(benchName)
	m.evictStoresLocked()
}

// InvalidateStore drops the cached per-benchmark store, reporting whether
// an entry existed. It is the explicit hook behind the automatic
// invalidation of distributed jobs: an operator (or test) can force the
// next submission to re-derive every section instead of trusting cached
// state known to be stale.
func (m *Manager) InvalidateStore(benchName string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.invalidateStoreLocked(benchName)
}

func (m *Manager) invalidateStoreLocked(benchName string) bool {
	if _, ok := m.stores[benchName]; !ok {
		return false
	}
	delete(m.stores, benchName)
	for i, n := range m.storeOrder {
		if n == benchName {
			m.storeOrder = append(m.storeOrder[:i], m.storeOrder[i+1:]...)
			break
		}
	}
	m.counters.StoreInvalidations++
	return true
}

// touchStoreLocked moves benchName to the most-recently-used end of the
// store cache order.
func (m *Manager) touchStoreLocked(benchName string) {
	for i, n := range m.storeOrder {
		if n == benchName {
			m.storeOrder = append(m.storeOrder[:i], m.storeOrder[i+1:]...)
			break
		}
	}
	m.storeOrder = append(m.storeOrder, benchName)
}

// evictStoresLocked drops least-recently-used benchmark stores beyond
// MaxCachedBenches. A benchmark with a queued or running job is pinned:
// its store may be about to receive that job's merge, and evicting it
// would discard completed sections the retry could have reused.
func (m *Manager) evictStoresLocked() {
	if m.opts.MaxCachedBenches <= 0 {
		return
	}
	pinned := make(map[string]bool)
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			pinned[j.req.Bench] = true
		}
	}
	for i := 0; len(m.stores) > m.opts.MaxCachedBenches && i < len(m.storeOrder); {
		name := m.storeOrder[i]
		if pinned[name] {
			i++
			continue
		}
		delete(m.stores, name)
		m.storeOrder = append(m.storeOrder[:i], m.storeOrder[i+1:]...)
	}
}

func (m *Manager) configFor(req Request) core.Config {
	cfg := core.DefaultConfig()
	if len(req.Targets) > 0 {
		cfg.Targets = append([]float64(nil), req.Targets...)
	}
	cfg.Workers = req.Workers
	if cfg.Workers <= 0 {
		cfg.Workers = m.opts.InjectWorkers
	}
	if pi, ok := bench.PilotInaccuracies[req.Bench]; ok {
		cfg.PilotInaccuracy = pi
	}
	if m.opts.WALDir != "" {
		// Always resume: the WAL segments are content-validated against the
		// trace and config fingerprints, so stale state is discarded and a
		// re-POSTed job over a crashed campaign merges what survived.
		cfg.WALDir = m.opts.WALDir
		cfg.Resume = true
	}
	if m.opts.Coordinator != nil {
		cfg.SectionInjector = m.opts.Coordinator.SectionInjector(req.Bench, req.Variant)
	}
	if m.opts.ConfigHook != nil {
		m.opts.ConfigHook(&cfg)
	}
	return cfg
}

// tenantTier adapts the shared outcome store to the store.Tier interface
// for one job, carrying the submitting tenant for attribution and
// counting the job's own tier traffic (the shared store's counters are
// global; a job's summary wants just its slice).
type tenantTier struct {
	shared *ostore.Store
	tenant string
	hits   atomic.Uint64
	misses atomic.Uint64
}

func (t *tenantTier) TierLookup(key store.Key) *store.Section {
	sec := t.shared.Get(t.tenant, key)
	if sec != nil {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return sec
}

func (t *tenantTier) TierPublish(key store.Key, sec *store.Section) {
	// Staged only; the manager flushes after the job so the publish cost
	// is off the analysis path. Errors surface through shared stats.
	_ = t.shared.Put(t.tenant, key, sec)
}

// Readiness reports whether the service can usefully accept a new job:
// nil when ready, otherwise the reason it is not. The service is unready
// when it is draining, when the submission queue is saturated (a POST
// would be rejected with 503 anyway), or when the WAL directory cannot be
// written (every accepted job would immediately lose its durability).
// Liveness is a separate, weaker property: a saturated or degraded
// service is still alive.
func (m *Manager) Readiness() error {
	m.mu.Lock()
	closed := m.closed
	queued := len(m.queue)
	m.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if queued >= m.opts.QueueDepth {
		return ErrQueueFull
	}
	if dir := m.opts.WALDir; dir != "" {
		if err := checkWritable(dir); err != nil {
			return fmt.Errorf("service: wal dir: %w", err)
		}
	}
	return nil
}

// checkWritable probes that dir exists (creating it if needed) and that a
// file can be created in it.
func checkWritable(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".readyz-*")
	if err != nil {
		return err
	}
	f.Close()
	return os.Remove(f.Name())
}

func (m *Manager) viewLocked(j *job) JobView {
	v := JobView{
		ID:        j.id,
		Bench:     j.req.Bench,
		Variant:   j.req.Variant,
		State:     j.state,
		CreatedAt: j.created,
		Progress:  j.progress,
		Error:     j.err,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.FinishedAt = &t
	}
	return v
}
