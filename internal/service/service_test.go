package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
	"fastflip/internal/vm"
)

// testBuild serves the two-section testprog pipeline as benchmark "pipe"
// and a long-running single-section spin loop as benchmark "slow".
func testBuild(name, variant string) (*spec.Program, error) {
	switch name {
	case "pipe":
		return testprog.Pipeline(), nil
	case "slow":
		return slowProg(50000), nil
	case "slowish":
		// Long enough to still be running when a test reacts to the
		// state change, short enough to drain quickly.
		return slowProg(5000), nil
	default:
		return nil, fmt.Errorf("testBuild: unknown benchmark %q", name)
	}
}

func testOptions() Options {
	return Options{
		Build:          testBuild,
		ListBenchmarks: func() []string { return []string{"pipe", "slow"} },
	}
}

// slowProg builds a program whose single section spins a float loop for
// iters iterations: enough error sites and a long enough section that its
// injection campaign takes seconds if left uncancelled.
func slowProg(iters int64) *spec.Program {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Call("spin")
	main.SecEnd(0)
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	spin := prog.NewFunc("spin")
	spin.Li(1, 0)
	spin.Fld(0, 1, 0) // acc = x
	spin.Fli(1, 0)    // f1 = 0: acc stays finite
	spin.Li(12, 0)
	spin.Li(13, iters)
	spin.Label("loop")
	spin.Fadd(0, 0, 1)
	spin.Addi(12, 12, 1)
	spin.Blt(12, 13, "loop")
	spin.Li(1, 0)
	spin.Fst(0, 1, 1) // y = acc
	spin.Ret()
	p.MustAdd(spin.MustBuild())

	linked, err := p.Link("main")
	if err != nil {
		panic(err)
	}
	x := spec.Buffer{Name: "x", Addr: 0, Len: 1, Kind: spec.Float}
	y := spec.Buffer{Name: "y", Addr: 1, Len: 1, Kind: spec.Float}
	return &spec.Program{
		Name: "slow", Linked: linked, MemWords: 4,
		Init: func(m *vm.Machine) { m.Mem[0] = 0x3FF0000000000000 }, // x = 1.0
		Sections: []spec.Section{{ID: 0, Name: "spin", Instances: []spec.InstanceIO{
			{Inputs: []spec.Buffer{x}, Outputs: []spec.Buffer{y}, Live: []spec.Buffer{x, y}},
		}}},
		FinalOutputs: []spec.Buffer{y},
	}
}

func closeManager(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m.Close(ctx)
}

func waitDone(t *testing.T, m *Manager, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	v, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return v
}

// waitState polls until the job reaches state s (for non-terminal states
// Wait can't observe).
func waitState(t *testing.T, m *Manager, id string, s State) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State == s {
			return v
		}
		if v.State.Terminal() {
			t.Fatalf("job %s reached terminal state %s while waiting for %s", id, v.State, s)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, s)
	return JobView{}
}

func TestJobLifecycleAndCacheReuse(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)

	v, err := m.Submit(Request{Bench: "pipe", Variant: "none", Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state = %s", v.State)
	}
	got := waitDone(t, m, v.ID)
	if got.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", got.State, got.Error)
	}
	if got.Result == nil {
		t.Fatal("done job has no result")
	}
	if got.Result.Instances != 2 || got.Result.Injected != 2 || got.Result.Reused != 0 {
		t.Errorf("first run: instances=%d injected=%d reused=%d, want 2/2/0",
			got.Result.Instances, got.Result.Injected, got.Result.Reused)
	}
	if len(got.Result.Targets) == 0 || got.Result.Baseline == nil {
		t.Error("baseline run missing targets or baseline summary")
	}
	if got.Progress.Done != 2 {
		t.Errorf("final progress done = %d, want 2", got.Progress.Done)
	}
	if got.StartedAt == nil || got.FinishedAt == nil {
		t.Error("done job missing timestamps")
	}

	// A second submission of the same benchmark+variant must be served
	// from the store cache: every section instance reused.
	v2, err := m.Submit(Request{Bench: "pipe", Variant: "none", Baseline: true})
	if err != nil {
		t.Fatal(err)
	}
	got2 := waitDone(t, m, v2.ID)
	if got2.State != StateDone {
		t.Fatalf("second job state = %s (err %q)", got2.State, got2.Error)
	}
	if got2.Result.Reused != 2 || got2.Result.Injected != 0 {
		t.Errorf("second run: reused=%d injected=%d, want 2/0",
			got2.Result.Reused, got2.Result.Injected)
	}

	mt := m.Metrics()
	if mt.JobsSubmitted != 2 || mt.JobsDone != 2 {
		t.Errorf("metrics: submitted=%d done=%d, want 2/2", mt.JobsSubmitted, mt.JobsDone)
	}
	if mt.StoreHits != 2 || mt.StoreMisses != 2 {
		t.Errorf("metrics: hits=%d misses=%d, want 2/2", mt.StoreHits, mt.StoreMisses)
	}
	if mt.StoreSections != 2 || mt.StoreBenches != 1 {
		t.Errorf("metrics: sections=%d benches=%d, want 2/1", mt.StoreSections, mt.StoreBenches)
	}
	if mt.InjectionsRun == 0 || mt.SimInstrs == 0 {
		t.Error("metrics: injection counters did not move")
	}
}

// TestHardenedJob runs the protection loop through the job path: the
// result must carry the measured residual figures within the predicted
// bound, the hardened disassembly, and the metrics must count the job and
// its detector triggers.
func TestHardenedJob(t *testing.T) {
	m := New(testOptions())
	defer m.Close(context.Background())
	v, err := m.Submit(Request{Bench: "pipe", Harden: true, HardenTarget: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m.Wait(context.Background(), v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("state %v (error %q)", fin.State, fin.Error)
	}
	s := fin.Result
	if s.HardenedTarget != 0.9 {
		t.Errorf("hardened target %v, want 0.9", s.HardenedTarget)
	}
	if s.ResidualSDC > s.PredictedResidual {
		t.Errorf("residual SDC %d exceeds predicted bound %d", s.ResidualSDC, s.PredictedResidual)
	}
	if s.DetectorTriggers == 0 {
		t.Error("no detector triggers in the hardened campaign")
	}
	if !strings.Contains(s.HardenedAsm, "trap") {
		t.Errorf("hardened disassembly carries no detector trap:\n%s", s.HardenedAsm)
	}
	mt := m.Metrics()
	if mt.HardenedJobs != 1 {
		t.Errorf("hardened_jobs = %d, want 1", mt.HardenedJobs)
	}
	if mt.DetectorTriggers != uint64(s.DetectorTriggers) {
		t.Errorf("detector_triggers = %d, want %d", mt.DetectorTriggers, s.DetectorTriggers)
	}
}

func TestSubmitUnknownBenchmark(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)
	if _, err := m.Submit(Request{Bench: "nope"}); err == nil {
		t.Error("submitting an unknown benchmark must fail")
	}
}

func TestGetAndCancelUnknownJob(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)
	if _, err := m.Get("job-99"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown = %v, want ErrNotFound", err)
	}
	if _, err := m.Cancel("job-99"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)
	v, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, m, v.ID)
	if got.State != StateCancelled {
		t.Fatalf("cancelled job state = %s (err %q)", got.State, got.Error)
	}
	if got.Result != nil {
		t.Error("cancelled job must not carry a result")
	}
	if got.Progress.Done >= got.Progress.Instances && got.Progress.Instances > 0 {
		t.Errorf("cancelled job completed all %d instances", got.Progress.Instances)
	}
	if mt := m.Metrics(); mt.JobsCancelled != 1 {
		t.Errorf("jobs_cancelled = %d, want 1", mt.JobsCancelled)
	}
}

func TestCancelQueuedJobAndCancelFinished(t *testing.T) {
	m := New(testOptions()) // one worker: the slow job blocks the queue
	defer closeManager(t, m)
	slow, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, slow.ID, StateRunning)
	queued, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := m.Cancel(queued.ID); err != nil || v.State != StateCancelled {
		t.Fatalf("cancelling queued job: state %s, err %v", v.State, err)
	}
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel = %v, want ErrFinished", err)
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, m, slow.ID); got.State != StateCancelled {
		t.Fatalf("slow job state = %s", got.State)
	}
}

func TestQueueFull(t *testing.T) {
	opts := testOptions()
	opts.QueueDepth = 1
	m := New(opts)
	defer closeManager(t, m)
	slow, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, slow.ID, StateRunning) // queue slot free again
	if _, err := m.Submit(Request{Bench: "pipe"}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Bench: "pipe"}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("third submit = %v, want ErrQueueFull", err)
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionKeepsNewestFinished(t *testing.T) {
	opts := testOptions()
	opts.MaxRetained = 1
	m := New(opts)
	defer closeManager(t, m)
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(Request{Bench: "pipe"})
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, m, v.ID)
		ids = append(ids, v.ID)
	}
	for _, id := range ids[:2] {
		if _, err := m.Get(id); !errors.Is(err, ErrNotFound) {
			t.Errorf("job %s not evicted: %v", id, err)
		}
	}
	if _, err := m.Get(ids[2]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	if mt := m.Metrics(); mt.JobsEvicted != 2 {
		t.Errorf("jobs_evicted = %d, want 2", mt.JobsEvicted)
	}
	if got := m.List(); len(got) != 1 || got[0].ID != ids[2] {
		t.Errorf("List = %+v, want just %s", got, ids[2])
	}
}

func TestCloseDrainsRunningAndRejectsSubmit(t *testing.T) {
	m := New(testOptions())
	v, err := m.Submit(Request{Bench: "slowish"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("Close = %v", err)
	}
	got, err := m.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Errorf("drained job state = %s, want done", got.State)
	}
	if _, err := m.Submit(Request{Bench: "pipe"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v, want ErrClosed", err)
	}
}

func TestCloseCancelsQueuedJobs(t *testing.T) {
	m := New(testOptions())
	slow, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, slow.ID, StateRunning)
	queued, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	// The running job ignores the drain deadline only until hard-cancel:
	// a tiny timeout exercises that path too.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close = %v, want deadline exceeded", err)
	}
	if got, _ := m.Get(queued.ID); got.State != StateCancelled {
		t.Errorf("queued job state after close = %s, want cancelled", got.State)
	}
	if got, _ := m.Get(slow.ID); got.State != StateCancelled {
		t.Errorf("running job state after hard-cancel = %s, want cancelled", got.State)
	}
}

func TestBenchmarksInfo(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)
	v, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, v.ID)
	infos := m.Benchmarks()
	if len(infos) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(infos))
	}
	byName := map[string]BenchmarkInfo{}
	for _, info := range infos {
		byName[info.Name] = info
	}
	if byName["pipe"].CachedSections != 2 {
		t.Errorf("pipe cached sections = %d, want 2", byName["pipe"].CachedSections)
	}
	if byName["slow"].CachedSections != 0 {
		t.Errorf("slow cached sections = %d, want 0", byName["slow"].CachedSections)
	}
}
