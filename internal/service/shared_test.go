package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fastflip/internal/core"
	"fastflip/internal/ostore"
)

// openShared opens an ostore handle over dir and closes it with the test.
func openShared(t *testing.T, dir string) *ostore.Store {
	t.Helper()
	s, err := ostore.Open(ostore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// neutralizeSummary zeroes the fields that legitimately differ between a
// fresh analysis and one served entirely from the shared tier: wall
// clock, simulated work, and provenance counters. Everything analytical
// — outcomes, specs, targets, selections — must be byte-identical.
func neutralizeSummary(s *core.Summary) *core.Summary {
	c := *s
	c.Reused, c.Injected = 0, 0
	c.SharedHits, c.SharedMisses = 0, 0
	c.FFExperiments, c.FFSimInstrs, c.FFWall = 0, 0, 0
	c.FFCleanInstrs, c.FFFaultyInstrs = 0, 0
	c.ElidedExperiments, c.ElidedSimInstrs = 0, 0
	c.BatchedExperiments, c.BatchReplicasAvg = 0, 0
	c.ResumedExperiments = 0
	c.WALNotes = nil
	if s.Baseline != nil {
		b := *s.Baseline
		b.Wall = 0
		b.CleanInstrs, b.FaultyInstrs = 0, 0
		b.BatchedExperiments = 0
		b.Speedup = 0
		c.Baseline = &b
	}
	return &c
}

func summaryJSON(t *testing.T, s *core.Summary) string {
	t.Helper()
	raw, err := json.Marshal(neutralizeSummary(s))
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestSharedTierAcrossManagers is the tentpole scenario at the service
// level: two Manager instances — independent processes in production —
// share one outcome-store directory through separate handles. The second
// manager's first analysis of the same version must re-simulate nothing:
// every section arrives from the shared tier, and the analytical summary
// is byte-identical to the first manager's.
func TestSharedTierAcrossManagers(t *testing.T) {
	dir := t.TempDir()

	optsA := testOptions()
	optsA.Shared = openShared(t, dir)
	mA := New(optsA)
	defer closeManager(t, mA)

	vA, err := mA.Submit(Request{Bench: "pipe", Baseline: true, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	gotA := waitDone(t, mA, vA.ID)
	if gotA.State != StateDone {
		t.Fatalf("first manager's job: %s (err %q)", gotA.State, gotA.Error)
	}
	rA := gotA.Result
	if rA.Injected != 2 || rA.SharedMisses != 2 || rA.SharedHits != 0 {
		t.Fatalf("cold run: injected=%d shared_misses=%d shared_hits=%d, want 2/2/0",
			rA.Injected, rA.SharedMisses, rA.SharedHits)
	}

	// A second manager with a *different* handle over the same directory:
	// nothing shared in memory, everything through segment files.
	optsB := testOptions()
	optsB.Shared = openShared(t, dir)
	mB := New(optsB)
	defer closeManager(t, mB)

	vB, err := mB.Submit(Request{Bench: "pipe", Baseline: true, Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	gotB := waitDone(t, mB, vB.ID)
	if gotB.State != StateDone {
		t.Fatalf("second manager's job: %s (err %q)", gotB.State, gotB.Error)
	}
	rB := gotB.Result
	if rB.Injected != 0 || rB.Reused != 2 {
		t.Errorf("warm run re-simulated: injected=%d reused=%d, want 0/2", rB.Injected, rB.Reused)
	}
	if rB.SharedHits != 2 || rB.SharedMisses != 0 {
		t.Errorf("warm run: shared_hits=%d shared_misses=%d, want 2/0", rB.SharedHits, rB.SharedMisses)
	}
	if a, b := summaryJSON(t, rA), summaryJSON(t, rB); a != b {
		t.Errorf("summaries diverge across the shared tier:\n A %s\n B %s", a, b)
	}

	// Within manager B the benchmark cache now sits in front of the tier:
	// a third run reuses everything without touching the shared store.
	vB2, err := mB.Submit(Request{Bench: "pipe", Baseline: true, Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	gotB2 := waitDone(t, mB, vB2.ID)
	if r := gotB2.Result; r.Reused != 2 || r.SharedHits != 0 {
		t.Errorf("cached run: reused=%d shared_hits=%d, want 2/0", r.Reused, r.SharedHits)
	}

	mt := mB.Metrics()
	if mt.SharedHits != 2 {
		t.Errorf("metrics shared_hits = %d, want 2", mt.SharedHits)
	}
	if mt.SharedSections == 0 || mt.SharedBytes == 0 {
		t.Errorf("shared gauges did not move: sections=%d bytes=%d", mt.SharedSections, mt.SharedBytes)
	}
	if ts := mt.SharedTenants["bob"]; ts.Hits != 2 {
		t.Errorf("tenant bob shared hits = %d, want 2", ts.Hits)
	}
}

// TestSubmitErrorClasses pins the error taxonomy Submit promises: client
// mistakes wrap ErrInvalid, broken infrastructure wraps ErrInfra.
func TestSubmitErrorClasses(t *testing.T) {
	t.Run("invalid", func(t *testing.T) {
		m := New(testOptions())
		defer closeManager(t, m)
		if _, err := m.Submit(Request{Bench: "nope"}); !errors.Is(err, ErrInvalid) {
			t.Errorf("unknown benchmark = %v, want ErrInvalid", err)
		}
	})
	t.Run("infra", func(t *testing.T) {
		// A WAL "directory" that is actually a file is an operator
		// problem: Submit must classify it as infrastructure.
		blocked := filepath.Join(t.TempDir(), "wal")
		if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		opts := testOptions()
		opts.WALDir = blocked
		m := New(opts)
		defer closeManager(t, m)
		if _, err := m.Submit(Request{Bench: "pipe"}); !errors.Is(err, ErrInfra) {
			t.Errorf("unwritable WAL dir = %v, want ErrInfra", err)
		}
	})
}

// TestTenantActiveQuota bounds one tenant's queued-plus-running jobs
// without touching other tenants.
func TestTenantActiveQuota(t *testing.T) {
	opts := testOptions()
	opts.MaxTenantActive = 1
	m := New(opts)
	defer closeManager(t, m)

	slow, err := m.Submit(Request{Bench: "slow", Tenant: "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Request{Bench: "pipe", Tenant: "greedy"}); !errors.Is(err, ErrTenantQuota) {
		t.Errorf("over-quota submit = %v, want ErrTenantQuota", err)
	}
	other, err := m.Submit(Request{Bench: "pipe", Tenant: "modest"})
	if err != nil {
		t.Errorf("other tenant blocked by greedy's quota: %v", err)
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, slow.ID)
	if _, err := m.Submit(Request{Bench: "pipe", Tenant: "greedy"}); err != nil {
		t.Errorf("quota slot not released after terminal job: %v", err)
	}
	if other.ID != "" {
		waitDone(t, m, other.ID)
	}
}

// TestWatchStreamsToTerminal subscribes to a job and requires the stream
// to deliver monotonic progress and end with a closed channel after the
// terminal snapshot.
func TestWatchStreamsToTerminal(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)

	if _, _, err := m.Watch("job-404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Watch unknown = %v, want ErrNotFound", err)
	}

	v, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Watch(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	var views []JobView
	deadline := time.After(60 * time.Second)
	for {
		select {
		case view, ok := <-ch:
			if !ok {
				goto closed
			}
			views = append(views, view)
		case <-deadline:
			t.Fatal("watch channel never closed")
		}
	}
closed:
	if len(views) == 0 {
		t.Fatal("watch delivered no snapshots")
	}
	last := views[len(views)-1]
	if !last.State.Terminal() || last.State != StateDone {
		t.Fatalf("final snapshot state = %s, want done", last.State)
	}
	if last.Result == nil {
		t.Error("terminal snapshot carries no result")
	}
	for i := 1; i < len(views); i++ {
		if views[i].Progress.Done < views[i-1].Progress.Done {
			t.Errorf("progress went backwards: %d then %d", views[i-1].Progress.Done, views[i].Progress.Done)
		}
	}
	cancel() // idempotent after close

	// Watching an already-terminal job yields exactly the terminal
	// snapshot and an immediate close.
	ch2, cancel2, err := m.Watch(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	view, ok := <-ch2
	if !ok || view.State != StateDone {
		t.Fatalf("terminal watch: ok=%v state=%s", ok, view.State)
	}
	if _, ok := <-ch2; ok {
		t.Error("terminal watch channel not closed after its snapshot")
	}
}
