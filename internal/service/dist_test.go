package service

import (
	"reflect"
	"testing"

	"fastflip/internal/coord"
	"fastflip/internal/metrics"
)

// distOptions is testOptions with a coordinator attached. The fleet is
// deliberately empty: every campaign converges through the coordinator's
// local fallback, which exercises the exact distributed code path
// (fresh store, invalidate-then-merge) without network plumbing.
func distOptions(c *coord.Coordinator) Options {
	o := testOptions()
	o.Coordinator = c
	return o
}

func TestInvalidateStore(t *testing.T) {
	m := New(testOptions())
	defer closeManager(t, m)

	if m.InvalidateStore("pipe") {
		t.Error("invalidating an uncached benchmark reported true")
	}
	v, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, v.ID)
	if got := m.Metrics().StoreBenches; got != 1 {
		t.Fatalf("cached benchmarks after job: %d", got)
	}
	if !m.InvalidateStore("pipe") {
		t.Error("invalidating a cached benchmark reported false")
	}
	mt := m.Metrics()
	if mt.StoreBenches != 0 {
		t.Errorf("benchmarks cached after invalidation: %d", mt.StoreBenches)
	}
	if mt.StoreInvalidations != 1 {
		t.Errorf("StoreInvalidations = %d, want 1", mt.StoreInvalidations)
	}
}

// TestDistributedJobIgnoresAndReplacesStaleCache is the stale-merge
// regression: a distributed job must neither resolve sections from the
// benchmark's cached store (a stale entry would mask the fleet's merged
// results) nor leave the stale entries behind afterwards.
func TestDistributedJobIgnoresAndReplacesStaleCache(t *testing.T) {
	c := coord.NewCoordinator(coord.Options{Heartbeat: -1})
	defer c.Close()
	m := New(distOptions(c))
	defer closeManager(t, m)

	// Reference summary from a clean run (this also warms the cache).
	ref := waitDone(t, m, submit(t, m, Request{Bench: "pipe"}).ID)
	if ref.State != StateDone {
		t.Fatalf("reference job: %+v", ref)
	}

	// Corrupt every cached section the way a stale fleet or a crashed
	// local run would: conservative +Inf SDC fills everywhere. A job that
	// trusts the cache now reports a radically different summary.
	m.mu.Lock()
	st := m.stores["pipe"]
	if st == nil || len(st.Sections) == 0 {
		m.mu.Unlock()
		t.Fatal("reference run cached no sections")
	}
	for _, sec := range st.Sections {
		for key, out := range sec.Outcomes {
			out.Kind = metrics.SDC
			out.Magnitudes = []float64{1e18}
			sec.Outcomes[key] = out
		}
	}
	m.mu.Unlock()

	// The distributed re-run must reuse nothing and match the reference.
	redo := waitDone(t, m, submit(t, m, Request{Bench: "pipe"}).ID)
	if redo.State != StateDone {
		t.Fatalf("distributed job: %+v", redo)
	}
	if redo.Progress.Reused != 0 {
		t.Errorf("distributed job reused %d cached sections", redo.Progress.Reused)
	}
	if ref.Result == nil || redo.Result == nil {
		t.Fatal("missing results")
	}
	if !reflect.DeepEqual(ref.Result.Outcomes, redo.Result.Outcomes) {
		t.Errorf("stale cache leaked into distributed run:\nref:  %+v\nredo: %+v", ref.Result.Outcomes, redo.Result.Outcomes)
	}
	if m.Metrics().StoreInvalidations == 0 {
		t.Error("coordinator-merged campaign did not invalidate the cache")
	}

	// The merge after invalidation replaced the poisoned entries: the
	// cache now holds the campaign's real outcomes, not the stale fills.
	m.mu.Lock()
	defer m.mu.Unlock()
	stale := 0
	for _, sec := range m.stores["pipe"].Sections {
		for _, out := range sec.Outcomes {
			if len(out.Magnitudes) == 1 && out.Magnitudes[0] == 1e18 {
				stale++
			}
		}
	}
	if stale != 0 {
		t.Errorf("%d stale section outcomes survived the distributed merge", stale)
	}
}

// TestDistributedMetricsExposed: a manager with a coordinator surfaces
// the fleet's metrics through its own.
func TestDistributedMetricsExposed(t *testing.T) {
	c := coord.NewCoordinator(coord.Options{Heartbeat: -1})
	defer c.Close()
	m := New(distOptions(c))
	defer closeManager(t, m)

	waitDone(t, m, submit(t, m, Request{Bench: "pipe"}).ID)
	mt := m.Metrics()
	if mt.Dist == nil {
		t.Fatal("manager with coordinator exposes no dist metrics")
	}
	if mt.Dist.LocalFallbackExperiments == 0 {
		t.Errorf("empty-fleet campaign not counted as local fallback: %+v", mt.Dist)
	}

	plain := New(testOptions())
	defer closeManager(t, plain)
	if plain.Metrics().Dist != nil {
		t.Error("manager without coordinator exposes dist metrics")
	}
}

// submit is a fatal-on-error Submit.
func submit(t *testing.T, m *Manager, req Request) JobView {
	t.Helper()
	v, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
