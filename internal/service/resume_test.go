package service

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// waitWALBytes polls until the campaign directory under walDir holds more
// than min bytes of segment data, i.e. experiments are durably logged.
func waitWALBytes(t *testing.T, walDir string, min int64) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		segs, _ := filepath.Glob(filepath.Join(walDir, "*", "*.wal"))
		var total int64
		for _, seg := range segs {
			if fi, err := os.Stat(seg); err == nil {
				total += fi.Size()
			}
		}
		if total > min {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no WAL records appeared within the deadline")
}

// TestJobResumeAfterCancelledCampaign cancels a job mid-campaign and
// re-POSTs it: the retry must merge the experiments the write-ahead log
// captured and report them as resumed_experiments, re-executing only the
// remainder.
func TestJobResumeAfterCancelledCampaign(t *testing.T) {
	opts := testOptions()
	opts.WALDir = t.TempDir()
	m := New(opts)
	defer closeManager(t, m)

	v, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)
	// The spin benchmark has a single section, so job progress stays at
	// zero until it completes — watch the log itself instead.
	waitWALBytes(t, opts.WALDir, 8192)
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, m, v.ID); got.State != StateCancelled {
		t.Fatalf("cancelled job ended in state %s", got.State)
	}

	// Re-POST over the crashed campaign. The single section was never
	// completed, so nothing is in the store cache — everything recovered
	// comes from the WAL.
	v2, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, m, v2.ID)
	if got.State != StateDone {
		t.Fatalf("retry ended in state %s (%s)", got.State, got.Error)
	}
	if got.Result == nil {
		t.Fatal("retry has no result")
	}
	if got.Result.ResumedExperiments == 0 {
		t.Error("retry reports resumed_experiments = 0; the WAL was not merged")
	}
	if got.Progress.ResumedExperiments != got.Result.ResumedExperiments {
		t.Errorf("progress reports %d resumed experiments, summary %d",
			got.Progress.ResumedExperiments, got.Result.ResumedExperiments)
	}
	if got.Result.ResumedExperiments >= got.Result.FFExperiments {
		t.Errorf("resumed %d of %d experiments: cancellation happened after the campaign finished",
			got.Result.ResumedExperiments, got.Result.FFExperiments)
	}
}

// TestBenchStoreCacheEviction exercises MaxCachedBenches: the least
// recently used benchmark store is evicted once the cap is exceeded, but a
// benchmark with a live job is pinned so its cache entry can never be
// freed in the window between job start and store merge.
func TestBenchStoreCacheEviction(t *testing.T) {
	opts := testOptions()
	opts.Workers = 2
	opts.MaxCachedBenches = 1
	opts.ListBenchmarks = func() []string { return []string{"pipe", "slowish"} }
	m := New(opts)
	defer closeManager(t, m)

	cached := func(name string) bool {
		for _, b := range m.Benchmarks() {
			if b.Name == name {
				return b.CachedSections > 0
			}
		}
		return false
	}

	// Seed the cache with slowish's store.
	v1, err := m.Submit(Request{Bench: "slowish"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, v1.ID)
	if !cached("slowish") {
		t.Fatal("completed job left no cached store")
	}

	// Pin slowish with a second, running job; completing pipe now pushes
	// the cache over the cap, and eviction must drop pipe itself — the
	// LRU victim (slowish) is pinned.
	v2, err := m.Submit(Request{Bench: "slowish"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v2.ID, StateRunning)
	v3, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, v3.ID)
	if !cached("slowish") {
		t.Error("pinned benchmark store was evicted mid-job")
	}
	if got := m.Metrics().StoreBenches; got > 2 {
		t.Errorf("store cache holds %d benchmarks, cap is 1 (+1 pinned)", got)
	}
	waitDone(t, m, v2.ID)

	// With the pin gone, completing pipe again evicts slowish (LRU).
	v4, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, v4.ID)
	if cached("slowish") && cached("pipe") {
		t.Error("eviction kept both stores beyond the cap")
	}
	if got := m.Metrics().StoreBenches; got != 1 {
		t.Errorf("store cache holds %d benchmarks after unpinning, want 1", got)
	}
}

// TestCancelMergeEvictRace hammers the cancel → merge-completed-sections →
// evict path from many goroutines with the store cache capped, so the
// race detector can observe any window where eviction frees a cache entry
// a merging job still writes into.
func TestCancelMergeEvictRace(t *testing.T) {
	opts := testOptions()
	opts.Workers = 2
	opts.QueueDepth = 128
	opts.MaxRetained = 4
	opts.MaxCachedBenches = 1
	opts.WALDir = t.TempDir()
	m := New(opts)
	defer closeManager(t, m)

	benches := []string{"pipe", "slowish"}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 6; i++ {
				v, err := m.Submit(Request{Bench: benches[rng.Intn(len(benches))]})
				if err != nil {
					continue // queue full under load is fine
				}
				if rng.Intn(2) == 0 {
					time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					m.Cancel(v.ID) // races the merge on purpose
				}
				m.Get(v.ID)
				m.List()
				m.Metrics()
				m.Benchmarks()
			}
		}(g)
	}
	wg.Wait()
	// The deferred Close drains whatever is still queued or running.
}
