package service

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fastflip/internal/core"
	"fastflip/internal/errfs"
	"fastflip/internal/inject"
)

// TestPoisonedJobFailsWithDiagnostics installs an always-panicking
// experiment hook for the first job: the per-experiment supervisor must
// quarantine the class, the job must fail with diagnostics while keeping
// its summary, and a later job must run normally — the panic never
// reaches the worker goroutine.
func TestPoisonedJobFailsWithDiagnostics(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	opts := testOptions()
	opts.ConfigHook = func(cfg *core.Config) {
		cfg.Workers = 1
		cfg.ExperimentPanicHook = func(class, attempt int) {
			if armed.Load() && class == 0 {
				panic("test-poison boom")
			}
		}
	}
	m := New(opts)
	defer closeManager(t, m)

	v, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, m, v.ID)
	if got.State != StateFailed {
		t.Fatalf("poisoned job state = %s (err %q), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "quarantined") {
		t.Errorf("job error carries no quarantine diagnostics: %q", got.Error)
	}
	if got.Result == nil {
		t.Fatal("poisoned job dropped its summary; the poison records are uninspectable")
	}
	if len(got.Result.Poisoned) == 0 {
		t.Fatal("retained summary has no poison records")
	}
	for _, p := range got.Result.Poisoned {
		if !strings.Contains(p.Stack, "test-poison boom") || p.Attempts != 2 {
			t.Errorf("poison record incomplete: %+v", p)
		}
	}
	mt := m.Metrics()
	if mt.ExperimentsPoisoned == 0 {
		t.Error("experiments_poisoned metric did not move")
	}
	if mt.JobsPanicked != 0 {
		t.Errorf("jobs_panicked = %d; the supervisor contained the panic, the job guard must not fire", mt.JobsPanicked)
	}

	// Disarm and prove the service is still healthy.
	armed.Store(false)
	v2, err := m.Submit(Request{Bench: "slowish"})
	if err != nil {
		t.Fatal(err)
	}
	if got2 := waitDone(t, m, v2.ID); got2.State != StateDone {
		t.Fatalf("follow-up job state = %s (err %q), want done", got2.State, got2.Error)
	}
}

// TestPanickingJobContained panics outside any experiment (in the config
// hook, i.e. during analyzer setup): the job-level guard must fail the
// job with the stack, count it, and leave the service serving.
func TestPanickingJobContained(t *testing.T) {
	var armed atomic.Bool
	armed.Store(true)
	opts := testOptions()
	opts.ConfigHook = func(cfg *core.Config) {
		if armed.Load() {
			panic("test-harness bug")
		}
	}
	m := New(opts)
	defer closeManager(t, m)

	v, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, m, v.ID)
	if got.State != StateFailed {
		t.Fatalf("panicked job state = %s, want failed", got.State)
	}
	if !strings.Contains(got.Error, "panicked") || !strings.Contains(got.Error, "test-harness bug") {
		t.Errorf("job error carries no panic diagnostics: %q", got.Error)
	}
	if mt := m.Metrics(); mt.JobsPanicked != 1 {
		t.Errorf("jobs_panicked = %d, want 1", mt.JobsPanicked)
	}

	armed.Store(false)
	v2, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	if got2 := waitDone(t, m, v2.ID); got2.State != StateDone {
		t.Fatalf("follow-up job state = %s (err %q), want done", got2.State, got2.Error)
	}
}

// TestWALDegradedJobMetric breaks the campaign disk mid-job and checks
// the degradation is visible in job progress and the service counters —
// while the job itself still succeeds memory-only.
func TestWALDegradedJobMetric(t *testing.T) {
	opts := testOptions()
	opts.WALDir = t.TempDir()
	opts.ConfigHook = func(cfg *core.Config) {
		cfg.FaultFS = errfs.Wrap(nil, errfs.FailFrom(errfs.OpWrite, 8, os.ErrPermission))
		cfg.WALRetry = inject.RetryPolicy{Attempts: 2, Base: time.Microsecond, Max: time.Microsecond, Sleep: func(time.Duration) {}}
	}
	m := New(opts)
	defer closeManager(t, m)

	v, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, m, v.ID)
	if got.State != StateDone {
		t.Fatalf("degraded job state = %s (err %q), want done", got.State, got.Error)
	}
	if !got.Result.WALDegraded {
		t.Error("summary does not carry wal_degraded")
	}
	if !got.Progress.WALDegraded {
		t.Error("job progress does not carry wal_degraded")
	}
	if mt := m.Metrics(); mt.WALDegradedJobs != 1 {
		t.Errorf("wal_degraded_jobs = %d, want 1", mt.WALDegradedJobs)
	}
}

// TestDrainLeavesNoTornTail cancels a WAL-backed campaign via manager
// shutdown and requires every segment on disk to end on a record
// boundary: a drained service must never leave a torn tail for the next
// resume to truncate.
func TestDrainLeavesNoTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions()
	opts.WALDir = dir
	m := New(opts)

	v, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, v.ID, StateRunning)

	// Wait until real experiment records are on disk, so the drain has a
	// non-trivial segment to seal off.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("campaign produced no WAL records within the deadline")
		}
		var bytes int64
		segs, _ := filepath.Glob(filepath.Join(dir, "*", "*.wal"))
		for _, seg := range segs {
			if fi, err := os.Stat(seg); err == nil {
				bytes += fi.Size()
			}
		}
		if bytes > 4096 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Hard drain: the deadline is already expired, so Close cancels the
	// running campaign immediately — the ffserved SIGTERM path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m.Close(ctx)
	if got, _ := m.Get(v.ID); got.State != StateCancelled {
		t.Fatalf("drained job state = %s, want cancelled", got.State)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "*", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments after drain (err=%v)", err)
	}
	for _, seg := range segs {
		info, err := inject.InspectSegment(seg)
		if err != nil {
			t.Fatal(err)
		}
		if info.TailBytes != 0 {
			t.Errorf("segment %s has a %d-byte torn tail after drain", filepath.Base(seg), info.TailBytes)
		}
		if info.Experiments == 0 {
			t.Errorf("segment %s drained with zero durable experiments", filepath.Base(seg))
		}
	}
}

// TestReadinessStates walks the Readiness transitions: ready, queue
// saturated, WAL dir unwritable, closed.
func TestReadinessStates(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	opts := testOptions()
	opts.QueueDepth = 1
	opts.WALDir = walDir
	m := New(opts)

	if err := m.Readiness(); err != nil {
		t.Fatalf("fresh manager unready: %v", err)
	}

	// Saturate the queue: one running job frees its slot, one queued job
	// fills the single-deep queue again.
	slow, err := m.Submit(Request{Bench: "slow"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, slow.ID, StateRunning)
	queued, err := m.Submit(Request{Bench: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Readiness(); err == nil {
		t.Error("manager with a saturated queue reports ready")
	}
	if _, err := m.Cancel(slow.ID); err != nil {
		t.Fatal(err)
	}
	waitDone(t, m, slow.ID)
	// The queued job starts once the slot frees and writes WAL segments;
	// let it finish before yanking the WAL dir out from under it.
	waitDone(t, m, queued.ID)

	// Unwritable WAL dir: the probe must fail when the path cannot be a
	// directory (tests run as root, so permission bits are no obstacle —
	// occupy the path with a regular file instead).
	if err := os.RemoveAll(walDir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walDir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Readiness(); err == nil {
		t.Error("manager with an unwritable WAL dir reports ready")
	}
	if err := os.Remove(walDir); err != nil {
		t.Fatal(err)
	}
	if err := m.Readiness(); err != nil {
		t.Errorf("manager unready after WAL dir restored: %v", err)
	}

	closeManager(t, m)
	if err := m.Readiness(); err == nil {
		t.Error("closed manager reports ready")
	}
}
