package store

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"fastflip/internal/errfs"
)

// ManifestVersion is the on-disk manifest format version. A manifest with
// a different version is rejected by LoadManifest so a resume never trusts
// state written by an incompatible binary.
const ManifestVersion = 1

// SectionStatus is the campaign progress of one section instance.
type SectionStatus struct {
	// Experiments counts the outcomes durably logged for the section.
	Experiments int
	// Sealed marks a finished section: all experiments plus the sensitivity
	// matrix are in its WAL segment. A manifest entry with Sealed unset is a
	// partially-injected section whose remainder must be scheduled on
	// resume.
	Sealed bool
}

// Manifest is the versioned ledger of an injection campaign: which
// sections have WAL segments, how far each got, and the fingerprints that
// gate resume. It lives next to the per-section segments in the campaign
// directory and is rewritten atomically after every section transition, so
// a crashed campaign is distinguishable — per section — from a finished
// one without parsing any segment.
type Manifest struct {
	// Version is ManifestVersion at write time.
	Version int
	// Program names the analyzed program (bench/variant), informational.
	Program string
	// TraceFP fingerprints the recorded trace the campaign ran against.
	TraceFP uint64
	// ConfigFP fingerprints the campaign configuration knobs that change
	// experiment outcomes or schedules.
	ConfigFP uint64
	// Sections maps section content keys to their campaign status.
	Sections map[Key]SectionStatus
}

// NewManifest returns an empty manifest for the given identity.
func NewManifest(program string, traceFP, configFP uint64) *Manifest {
	return &Manifest{
		Version:  ManifestVersion,
		Program:  program,
		TraceFP:  traceFP,
		ConfigFP: configFP,
		Sections: make(map[Key]SectionStatus),
	}
}

// Matches reports whether the manifest belongs to the same campaign
// identity: same format version, trace, and configuration. A mismatch
// means the on-disk WAL state describes a different campaign and must not
// be resumed into this one.
func (m *Manifest) Matches(traceFP, configFP uint64) bool {
	return m != nil && m.Version == ManifestVersion && m.TraceFP == traceFP && m.ConfigFP == configFP
}

// Save atomically writes the manifest to path (temp file in the target
// directory, sync, rename) — the same crash discipline as Store.Save.
func (m *Manifest) Save(path string) error {
	return atomicWriteGob(nil, path, m)
}

// SaveFS is Save through an explicit filesystem seam (nil = the real
// filesystem); chaos tests inject write faults through it.
func (m *Manifest) SaveFS(fsys errfs.FS, path string) error {
	return atomicWriteGob(fsys, path, m)
}

// LoadManifest reads a manifest written by Save. An unknown version is an
// error: resume code treats it as "no usable manifest".
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	m := &Manifest{}
	if err := gob.NewDecoder(f).Decode(m); err != nil {
		return nil, fmt.Errorf("store: decoding manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("store: manifest %s has version %d, want %d", path, m.Version, ManifestVersion)
	}
	if m.Sections == nil {
		m.Sections = make(map[Key]SectionStatus)
	}
	return m, nil
}

// atomicWriteGob gob-encodes v into a temporary file in path's directory,
// syncs it, and renames it over path, so a crash mid-write never corrupts
// an existing file. All I/O goes through fsys (nil = real filesystem) so
// fault-injection tests can break any step of the protocol.
func atomicWriteGob(fsys errfs.FS, path string, v any) error {
	if fsys == nil {
		fsys = errfs.OS()
	}
	f, err := fsys.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		return fail(fmt.Errorf("store: encoding %s: %w", path, err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("store: syncing %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("store: %w", err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
