package store

import (
	"path/filepath"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.manifest")
	m := NewManifest("fft/small", 111, 222)
	var k1, k2 Key
	k1[0], k2[0] = 1, 2
	m.Sections[k1] = SectionStatus{Experiments: 40, Sealed: true}
	m.Sections[k2] = SectionStatus{Experiments: 7}
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matches(111, 222) {
		t.Fatalf("loaded manifest does not match its own identity: %+v", got)
	}
	if got.Matches(111, 223) || got.Matches(112, 222) {
		t.Fatal("manifest matched a different fingerprint")
	}
	if s := got.Sections[k1]; !s.Sealed || s.Experiments != 40 {
		t.Fatalf("section 1 status = %+v", s)
	}
	if s := got.Sections[k2]; s.Sealed || s.Experiments != 7 {
		t.Fatalf("section 2 status = %+v (partial section must not read as sealed)", s)
	}
}

func TestManifestVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.manifest")
	m := NewManifest("x", 1, 2)
	m.Version = ManifestVersion + 1
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Fatal("manifest with unknown version was accepted")
	}
}
