// Package store persists per-section analysis results for reuse across
// program versions (§4.7). A section instance's results are keyed by its
// *content*: the hashes of the functions it executed plus the values of its
// input buffers. A semantics-preserving change to one function changes only
// that section's key; downstream sections receive identical inputs and
// their stored results remain valid. This is exactly the reuse condition
// FastFlip requires.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"

	"fastflip/internal/errfs"
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/trace"
)

// Outcome is a serializable injection outcome for one equivalence class.
type Outcome struct {
	Kind       metrics.OutcomeKind
	Reason     metrics.DetectReason
	Magnitudes []float64
}

// ToMetrics converts back to the analysis representation.
func (o Outcome) ToMetrics() metrics.Outcome {
	return metrics.Outcome{Kind: o.Kind, Reason: o.Reason, Magnitudes: o.Magnitudes}
}

// FromMetrics converts an analysis outcome for storage.
func FromMetrics(m metrics.Outcome) Outcome {
	return Outcome{Kind: m.Kind, Reason: m.Reason, Magnitudes: m.Magnitudes}
}

// Section is the stored analysis of one section instance.
type Section struct {
	// Outcomes maps equivalence-class keys (stable across versions) to the
	// pilot outcome observed for that class.
	Outcomes map[sites.ClassKey]Outcome
	// Final, present when the analysis co-ran the baseline (§4.10), maps
	// class keys to the corresponding end-to-end outcome.
	Final map[sites.ClassKey]Outcome
	// Amp is the sensitivity amplification matrix K[out][in].
	Amp [][]float64
	// SimInstrs is what the original injection cost, for bookkeeping.
	SimInstrs uint64
}

// Key identifies a section instance by content.
type Key [32]byte

func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// KeyFor computes the reuse key of a section instance: section static ID,
// executed code identity, input buffer declarations and contents, and
// output/live declarations. Any difference that could change the injection
// outcomes or the amplification matrix through the *declared* dataflow
// changes the key.
//
// The declared dataflow is an approximation: a fault-flipped address can
// make the faulty execution load from output or live-state words it never
// legitimately reads, so an experiment's outcome can additionally depend
// on the entry contents of those buffers (the differential fuzzer found
// exactly this divergence; see DESIGN.md §10). KeyForStrict closes that
// hole at the price of less reuse.
func KeyFor(t *trace.Trace, inst *trace.Instance) Key {
	return keyFor(t, inst, false)
}

// KeyForStrict is KeyFor extended with the entry contents of output and
// live buffers, making the key cover everything an error-deflected load
// inside declared state can observe. Incremental re-analysis under strict
// keys reproduces a from-scratch analysis experiment for experiment;
// default keys trade that exactness for the paper's reuse rate.
func KeyForStrict(t *trace.Trace, inst *trace.Instance) Key {
	return keyFor(t, inst, true)
}

func keyFor(t *trace.Trace, inst *trace.Instance, strict bool) Key {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(uint64(inst.Sec))
	code := t.CodeKey(inst)
	h.Write(code[:])
	for _, b := range inst.IO.Inputs {
		h.Write([]byte(b.Name))
		wu(uint64(b.Addr))
		wu(uint64(b.Len))
		wu(uint64(b.Kind))
		for i := 0; i < b.Len; i++ {
			wu(inst.Entry.Mem[b.Addr+i])
		}
	}
	for _, b := range append(append([]spec.Buffer{}, inst.IO.Outputs...), inst.IO.Live...) {
		h.Write([]byte(b.Name))
		wu(uint64(b.Addr))
		wu(uint64(b.Len))
		wu(uint64(b.Kind))
		if strict {
			for i := 0; i < b.Len; i++ {
				wu(inst.Entry.Mem[b.Addr+i])
			}
		}
	}
	if strict {
		wu(1)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Store holds analysis results across versions of one program.
type Store struct {
	// Sections maps content keys to stored per-section results.
	Sections map[Key]*Section
	// AdjustedTargets maps the original target value to the adjusted
	// target v'_trgt computed during the last full analysis (§4.10),
	// per ε threshold.
	AdjustedTargets map[TargetKey]float64
	// ModsSinceAdjust counts program modifications analyzed since the last
	// target adjustment (the paper's m_adj).
	ModsSinceAdjust int
}

// TargetKey identifies one adjusted target.
type TargetKey struct {
	Epsilon float64
	Target  float64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		Sections:        make(map[Key]*Section),
		AdjustedTargets: make(map[TargetKey]float64),
	}
}

// Clone returns a copy of the store whose maps are independent of the
// original; the per-section payloads are shared (they are immutable once
// recorded). Useful for replaying an analysis against a fixed snapshot.
func (s *Store) Clone() *Store {
	c := &Store{
		Sections:        make(map[Key]*Section, len(s.Sections)),
		AdjustedTargets: make(map[TargetKey]float64, len(s.AdjustedTargets)),
		ModsSinceAdjust: s.ModsSinceAdjust,
	}
	for k, v := range s.Sections {
		c.Sections[k] = v
	}
	for k, v := range s.AdjustedTargets {
		c.AdjustedTargets[k] = v
	}
	return c
}

// Lookup returns the stored section for key, or nil.
func (s *Store) Lookup(key Key) *Section {
	return s.Sections[key]
}

// Put records the section under key.
func (s *Store) Put(key Key, sec *Section) {
	s.Sections[key] = sec
}

// Save writes the store to path with encoding/gob (gob round-trips the
// ±Inf magnitudes JSON cannot represent). The write is atomic: the store
// is encoded into a temporary file in the destination directory, synced,
// and renamed over path, so a crash or cancellation mid-save never
// truncates an existing store.
func (s *Store) Save(path string) error {
	return atomicWriteGob(nil, path, s)
}

// SaveFS is Save through an explicit filesystem seam (nil = the real
// filesystem); chaos tests inject write faults through it.
func (s *Store) SaveFS(fsys errfs.FS, path string) error {
	return atomicWriteGob(fsys, path, s)
}

// Load reads a store written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	s := New()
	if err := gob.NewDecoder(f).Decode(s); err != nil {
		return nil, fmt.Errorf("store: decoding %s: %w", path, err)
	}
	return s, nil
}
