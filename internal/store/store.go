// Package store persists per-section analysis results for reuse across
// program versions (§4.7). A section instance's results are keyed by its
// *content*: the hashes of the functions it executed plus the values of its
// input buffers. A semantics-preserving change to one function changes only
// that section's key; downstream sections receive identical inputs and
// their stored results remain valid. This is exactly the reuse condition
// FastFlip requires.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"

	"fastflip/internal/errfs"
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/trace"
)

// Outcome is a serializable injection outcome for one equivalence class.
type Outcome struct {
	Kind       metrics.OutcomeKind
	Reason     metrics.DetectReason
	Magnitudes []float64
}

// ToMetrics converts back to the analysis representation.
func (o Outcome) ToMetrics() metrics.Outcome {
	return metrics.Outcome{Kind: o.Kind, Reason: o.Reason, Magnitudes: o.Magnitudes}
}

// FromMetrics converts an analysis outcome for storage.
func FromMetrics(m metrics.Outcome) Outcome {
	return Outcome{Kind: m.Kind, Reason: m.Reason, Magnitudes: m.Magnitudes}
}

// Section is the stored analysis of one section instance.
type Section struct {
	// Outcomes maps equivalence-class keys (stable across versions) to the
	// pilot outcome observed for that class.
	Outcomes map[sites.ClassKey]Outcome
	// Final, present when the analysis co-ran the baseline (§4.10), maps
	// class keys to the corresponding end-to-end outcome.
	Final map[sites.ClassKey]Outcome
	// Amp is the sensitivity amplification matrix K[out][in].
	Amp [][]float64
	// SimInstrs is what the original injection cost, for bookkeeping.
	SimInstrs uint64
}

// Key identifies a section instance by content.
type Key [32]byte

func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// KeyFor computes the reuse key of a section instance: section static ID,
// executed code identity, input buffer declarations and contents, and
// output/live declarations. Any difference that could change the injection
// outcomes or the amplification matrix through the *declared* dataflow
// changes the key.
//
// The declared dataflow is an approximation: a fault-flipped address can
// make the faulty execution load from output or live-state words it never
// legitimately reads, so an experiment's outcome can additionally depend
// on the entry contents of those buffers (the differential fuzzer found
// exactly this divergence; see DESIGN.md §10). KeyForStrict closes that
// hole at the price of less reuse.
//
// A buffer declaration that falls outside the entry snapshot's memory
// (malformed Addr or Len, including sums that overflow int) is an error,
// not a panic: a multi-tenant service must fail the offending job's build
// step, never the process. The returned key covers only validated bytes.
func KeyFor(t *trace.Trace, inst *trace.Instance) (Key, error) {
	return keyFor(t, inst, false)
}

// KeyForStrict is KeyFor extended with the entry contents of output and
// live buffers, making the key cover everything an error-deflected load
// inside declared state can observe. Incremental re-analysis under strict
// keys reproduces a from-scratch analysis experiment for experiment;
// default keys trade that exactness for the paper's reuse rate.
func KeyForStrict(t *trace.Trace, inst *trace.Instance) (Key, error) {
	return keyFor(t, inst, true)
}

// validBuffer checks one declared buffer against the entry snapshot. The
// length is compared as memWords-Addr rather than Addr+Len vs memWords so
// an adversarial declaration cannot wrap the sum past the check.
func validBuffer(b spec.Buffer, memWords int) error {
	if b.Addr < 0 || b.Len < 0 || b.Addr > memWords || b.Len > memWords-b.Addr {
		return fmt.Errorf("store: buffer %s [addr %d, len %d] outside machine memory [0:%d)", b.Name, b.Addr, b.Len, memWords)
	}
	return nil
}

func keyFor(t *trace.Trace, inst *trace.Instance, strict bool) (Key, error) {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(uint64(inst.Sec))
	code := t.CodeKey(inst)
	h.Write(code[:])
	memWords := len(inst.Entry.Mem)
	for _, b := range inst.IO.Inputs {
		if err := validBuffer(b, memWords); err != nil {
			return Key{}, fmt.Errorf("section %d input: %w", inst.Sec, err)
		}
		h.Write([]byte(b.Name))
		wu(uint64(b.Addr))
		wu(uint64(b.Len))
		wu(uint64(b.Kind))
		for i := 0; i < b.Len; i++ {
			wu(inst.Entry.Mem[b.Addr+i])
		}
	}
	for _, b := range append(append([]spec.Buffer{}, inst.IO.Outputs...), inst.IO.Live...) {
		if err := validBuffer(b, memWords); err != nil {
			return Key{}, fmt.Errorf("section %d output/live: %w", inst.Sec, err)
		}
		h.Write([]byte(b.Name))
		wu(uint64(b.Addr))
		wu(uint64(b.Len))
		wu(uint64(b.Kind))
		if strict {
			for i := 0; i < b.Len; i++ {
				wu(inst.Entry.Mem[b.Addr+i])
			}
		}
	}
	if strict {
		wu(1)
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// Tier is a second lookup/publish level behind the in-memory Sections
// map: the shared, cross-process outcome store. A Lookup that misses
// Sections falls through to the tier and promotes a hit; a Put publishes
// to both. Implementations must be safe for concurrent use.
type Tier interface {
	// TierLookup returns the stored section for key, or nil.
	TierLookup(key Key) *Section
	// TierPublish offers a freshly analyzed section to the tier.
	TierPublish(key Key, sec *Section)
}

// Store holds analysis results across versions of one program.
type Store struct {
	// Sections maps content keys to stored per-section results.
	Sections map[Key]*Section
	// AdjustedTargets maps the original target value to the adjusted
	// target v'_trgt computed during the last full analysis (§4.10),
	// per ε threshold.
	AdjustedTargets map[TargetKey]float64
	// ModsSinceAdjust counts program modifications analyzed since the last
	// target adjustment (the paper's m_adj).
	ModsSinceAdjust int

	// tier, when set, backs Sections with the shared outcome store.
	// Unexported on purpose: gob never serializes it, so a saved store
	// file is identical with or without a tier attached.
	tier Tier
}

// TargetKey identifies one adjusted target.
type TargetKey struct {
	Epsilon float64
	Target  float64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		Sections:        make(map[Key]*Section),
		AdjustedTargets: make(map[TargetKey]float64),
	}
}

// WithTier attaches (or clears, with nil) the shared outcome tier behind
// this store's section map and returns the store.
func (s *Store) WithTier(t Tier) *Store {
	s.tier = t
	return s
}

// Clone returns a copy of the store whose maps are independent of the
// original; the per-section payloads are shared (they are immutable once
// recorded). Useful for replaying an analysis against a fixed snapshot.
// The clone keeps the original's tier attachment.
func (s *Store) Clone() *Store {
	c := &Store{
		Sections:        make(map[Key]*Section, len(s.Sections)),
		AdjustedTargets: make(map[TargetKey]float64, len(s.AdjustedTargets)),
		ModsSinceAdjust: s.ModsSinceAdjust,
		tier:            s.tier,
	}
	for k, v := range s.Sections {
		c.Sections[k] = v
	}
	for k, v := range s.AdjustedTargets {
		c.AdjustedTargets[k] = v
	}
	return c
}

// Lookup returns the stored section for key, or nil. A miss in the
// in-memory map falls through to the attached tier (if any); a tier hit
// is promoted into Sections so the analysis — and the per-benchmark cache
// it merges back into — serves repeats locally.
func (s *Store) Lookup(key Key) *Section {
	if sec := s.Sections[key]; sec != nil {
		return sec
	}
	if s.tier != nil {
		if sec := s.tier.TierLookup(key); sec != nil {
			s.Sections[key] = sec
			return sec
		}
	}
	return nil
}

// Put records the section under key and offers it to the attached tier.
func (s *Store) Put(key Key, sec *Section) {
	s.Sections[key] = sec
	if s.tier != nil {
		s.tier.TierPublish(key, sec)
	}
}

// Save writes the store to path with encoding/gob (gob round-trips the
// ±Inf magnitudes JSON cannot represent). The write is atomic: the store
// is encoded into a temporary file in the destination directory, synced,
// and renamed over path, so a crash or cancellation mid-save never
// truncates an existing store.
func (s *Store) Save(path string) error {
	return atomicWriteGob(nil, path, s)
}

// SaveFS is Save through an explicit filesystem seam (nil = the real
// filesystem); chaos tests inject write faults through it.
func (s *Store) SaveFS(fsys errfs.FS, path string) error {
	return atomicWriteGob(fsys, path, s)
}

// Load reads a store written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	s := New()
	if err := gob.NewDecoder(f).Decode(s); err != nil {
		return nil, fmt.Errorf("store: decoding %s: %w", path, err)
	}
	return s, nil
}
