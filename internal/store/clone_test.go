package store

import "testing"

func TestClone(t *testing.T) {
	s := New()
	key := Key{9}
	s.Put(key, &Section{SimInstrs: 7})
	s.AdjustedTargets[TargetKey{Target: 0.9}] = 0.93
	s.ModsSinceAdjust = 3

	c := s.Clone()
	if c.Lookup(key) != s.Lookup(key) {
		t.Error("clone should share section payloads")
	}
	if c.ModsSinceAdjust != 3 || c.AdjustedTargets[TargetKey{Target: 0.9}] != 0.93 {
		t.Errorf("clone lost metadata: %+v", c)
	}
	// Mutations of the clone's maps must not leak back.
	c.Put(Key{1}, &Section{})
	c.AdjustedTargets[TargetKey{Target: 0.5}] = 0.5
	c.ModsSinceAdjust = 9
	if s.Lookup(Key{1}) != nil || len(s.AdjustedTargets) != 1 || s.ModsSinceAdjust != 3 {
		t.Error("clone mutations leaked into the original")
	}
}
