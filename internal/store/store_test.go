package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

func recorded(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustKey(t *testing.T, tr *trace.Trace, inst *trace.Instance) Key {
	t.Helper()
	k, err := KeyFor(tr, inst)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestKeyForDeterministic(t *testing.T) {
	tr1, tr2 := recorded(t), recorded(t)
	for i := range tr1.Instances {
		if mustKey(t, tr1, tr1.Instances[i]) != mustKey(t, tr2, tr2.Instances[i]) {
			t.Errorf("instance %d keys differ across identical traces", i)
		}
	}
}

func TestKeyForDistinguishesInstances(t *testing.T) {
	tr := recorded(t)
	if mustKey(t, tr, tr.Instances[0]) == mustKey(t, tr, tr.Instances[1]) {
		t.Error("different sections share a key")
	}
}

func TestKeyForTracksCodeChange(t *testing.T) {
	tr1 := recorded(t)
	tr2, err := trace.Record(testprog.PipelineModified())
	if err != nil {
		t.Fatal(err)
	}
	if mustKey(t, tr1, tr1.Instances[0]) != mustKey(t, tr2, tr2.Instances[0]) {
		t.Error("unmodified section's key changed")
	}
	if mustKey(t, tr1, tr1.Instances[1]) == mustKey(t, tr2, tr2.Instances[1]) {
		t.Error("modified section's key unchanged")
	}
}

func TestKeyForTracksInputChange(t *testing.T) {
	p2 := testprog.Pipeline()
	baseInit := p2.Init
	p2.Init = func(m *vm.Machine) {
		baseInit(m)
		m.Mem[testprog.AddrX] = math.Float64bits(2.5) // different input
	}
	tr1 := recorded(t)
	tr2, err := trace.Record(p2)
	if err != nil {
		t.Fatal(err)
	}
	if mustKey(t, tr1, tr1.Instances[0]) == mustKey(t, tr2, tr2.Instances[0]) {
		t.Error("input change did not change the first section's key")
	}
	// The downstream section's input (y) also changed, so its key must too.
	if mustKey(t, tr1, tr1.Instances[1]) == mustKey(t, tr2, tr2.Instances[1]) {
		t.Error("downstream input change did not change the second section's key")
	}
}

func TestKeyForRejectsOutOfRangeBuffer(t *testing.T) {
	tr := recorded(t)
	inst := tr.Instances[0]
	// Clone the instance and declare a malformed input buffer whose
	// Addr+Len wraps past the machine memory (the panic a bounds-checked
	// keyFor must turn into an error).
	bad := *inst
	bad.IO.Inputs = append([]spec.Buffer{}, inst.IO.Inputs...)
	bad.IO.Inputs[0].Addr = int(^uint(0)>>1) - 5 // maxint-5
	bad.IO.Inputs[0].Len = 10                    // Addr+Len wraps negative
	if _, err := KeyFor(tr, &bad); err == nil {
		t.Error("KeyFor accepted an overflowing buffer declaration")
	}
	bad = *inst
	bad.IO.Inputs = append([]spec.Buffer{}, inst.IO.Inputs...)
	bad.IO.Inputs[0].Len = len(inst.Entry.Mem) + 1
	if _, err := KeyFor(tr, &bad); err == nil {
		t.Error("KeyFor accepted a buffer past the end of memory")
	}
	bad = *inst
	bad.IO.Outputs = append([]spec.Buffer{}, inst.IO.Outputs...)
	bad.IO.Outputs[0].Len = -1
	if _, err := KeyForStrict(tr, &bad); err == nil {
		t.Error("KeyForStrict accepted a negative-length output buffer")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	key := Key{1, 2, 3}
	s.Put(key, &Section{
		Outcomes: map[sites.ClassKey]Outcome{
			{Static: prog.StaticID{Func: "f", Local: 3}, Role: isa.OperandDst, Bit: 17}: {
				Kind:       metrics.SDC,
				Magnitudes: []float64{1.5, math.Inf(1)}, // Inf must survive
			},
			{Static: prog.StaticID{Func: "f", Local: 4}, Role: isa.OperandSrcA, Bit: 2}: {
				Kind:   metrics.Detected,
				Reason: metrics.DetectTimeout,
			},
		},
		Amp:       [][]float64{{3.25, 0}},
		SimInstrs: 12345,
	})
	s.AdjustedTargets[TargetKey{Epsilon: 0.01, Target: 0.9}] = 0.925
	s.ModsSinceAdjust = 2

	path := filepath.Join(t.TempDir(), "store.gob")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	sec := got.Lookup(key)
	if sec == nil {
		t.Fatal("section missing after round trip")
	}
	out := sec.Outcomes[sites.ClassKey{Static: prog.StaticID{Func: "f", Local: 3}, Role: isa.OperandDst, Bit: 17}]
	if out.Kind != metrics.SDC || out.Magnitudes[0] != 1.5 || !math.IsInf(out.Magnitudes[1], 1) {
		t.Errorf("outcome mangled: %+v", out)
	}
	if sec.Amp[0][0] != 3.25 || sec.SimInstrs != 12345 {
		t.Errorf("section metadata mangled: %+v", sec)
	}
	if got.AdjustedTargets[TargetKey{Epsilon: 0.01, Target: 0.9}] != 0.925 {
		t.Error("adjusted targets lost")
	}
	if got.ModsSinceAdjust != 2 {
		t.Error("m_adj lost")
	}
}

func TestSaveAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.gob")
	s1 := New()
	s1.Put(Key{1}, &Section{SimInstrs: 1})
	if err := s1.Save(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	s2.Put(Key{1}, &Section{SimInstrs: 1})
	s2.Put(Key{2}, &Section{SimInstrs: 2})
	if err := s2.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sections) != 2 {
		t.Errorf("overwritten store has %d sections, want 2", len(got.Sections))
	}
	// No temp files may be left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "store.gob" {
		t.Errorf("directory not clean after save: %v", entries)
	}
}

func TestSaveFailureLeavesExistingStore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.gob")
	s := New()
	s.Put(Key{7}, &Section{SimInstrs: 7})
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// Saving into a directory that doesn't exist must fail without
	// touching the original file.
	if err := s.Save(filepath.Join(dir, "missing", "store.gob")); err == nil {
		t.Fatal("expected error saving into a missing directory")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Lookup(Key{7}) == nil {
		t.Error("original store damaged by failed save")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestOutcomeConversions(t *testing.T) {
	m := metrics.Outcome{Kind: metrics.SDC, Magnitudes: []float64{0.5}}
	if got := FromMetrics(m).ToMetrics(); got.Kind != m.Kind || got.Magnitudes[0] != 0.5 {
		t.Errorf("round trip = %+v", got)
	}
}
