package asm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
	"fastflip/internal/qcheck"
)

// randFunction generates a structurally valid random function: a mix of
// ALU ops, memory ops, float ops, in-range branches, and calls.
func randFunction(r *rand.Rand) *prog.Function {
	n := 4 + r.Intn(24)
	fn := &prog.Function{Name: "f"}
	callees := []string{"g", "h"}
	reg := func() uint8 { return uint8(r.Intn(isa.NumRegs)) }
	for i := 0; i < n; i++ {
		var in isa.Instr
		switch r.Intn(8) {
		case 0:
			in = isa.Instr{Op: isa.ADD, Rd: reg(), Ra: reg(), Rb: reg()}
		case 1:
			in = isa.Instr{Op: isa.FMUL, Rd: reg(), Ra: reg(), Rb: reg()}
		case 2:
			in = isa.Instr{Op: isa.LI, Rd: reg(), Imm: int64(r.Intn(2048) - 1024)}
		case 3:
			in = isa.Instr{Op: isa.FLI, Rd: reg(),
				Imm: int64(math.Float64bits(float64(r.Intn(512))/8 - 32))}
		case 4:
			in = isa.Instr{Op: isa.LD, Rd: reg(), Ra: reg(), Imm: int64(r.Intn(64))}
		case 5:
			in = isa.Instr{Op: isa.ST, Ra: reg(), Rb: reg(), Imm: int64(r.Intn(64))}
		case 6:
			// Branch to an in-range local index.
			in = isa.Instr{Op: isa.BLT, Ra: reg(), Rb: reg(), Imm: int64(r.Intn(n))}
		default:
			callee := callees[r.Intn(len(callees))]
			ci := -1
			for j, c := range fn.Calls {
				if c == callee {
					ci = j
				}
			}
			if ci < 0 {
				ci = len(fn.Calls)
				fn.Calls = append(fn.Calls, callee)
			}
			in = isa.Instr{Op: isa.CALL, Imm: int64(ci)}
		}
		fn.Instrs = append(fn.Instrs, in)
	}
	fn.Instrs = append(fn.Instrs, isa.Instr{Op: isa.RET})
	return fn
}

// Property: Assemble(Disassemble(fn)) is the identity (up to hash) for
// arbitrary well-formed functions, not just the curated benchmarks.
func TestRoundTripRandomFunctionsQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := randFunction(r)
		text := Disassemble(fn)
		back, err := Assemble(text)
		if err != nil {
			t.Logf("seed %d: reassembly failed: %v\n%s", seed, err, text)
			return false
		}
		got := back.Func("f")
		if got == nil || got.Hash() != fn.Hash() {
			t.Logf("seed %d: hash mismatch\n%s", seed, text)
			return false
		}
		return true
	}
	if err := quick.Check(f, qcheck.Config(t, 150)); err != nil {
		t.Error(err)
	}
}

// Property: disassembly is stable — rendering the same function twice
// produces identical text (label naming must be deterministic).
func TestDisassembleStableQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fn := randFunction(r)
		return Disassemble(fn) == Disassemble(fn)
	}
	if err := quick.Check(f, qcheck.Config(t, 50)); err != nil {
		t.Error(err)
	}
}
