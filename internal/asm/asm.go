// Package asm implements a textual assembly format for the fastflip ISA:
// an assembler (text → prog.Program) and a disassembler (prog → text).
//
// Format:
//
//	; line comment (also //)
//	func main {
//	    roibeg
//	    li r15, 2
//	loop:
//	    secbeg 0
//	    call lud.sec1
//	    fli f0, 3.25
//	    blt r14, r15, loop
//	    halt
//	}
//
// Mnemonics and operand order match isa.Instr.String. Registers are rN
// (integer) and fN (float); branch targets are labels; call targets are
// function names; integer immediates accept decimal and 0x hex; fli takes
// a float literal.
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
)

// Assemble parses the full program text into a module.
func Assemble(src string) (*prog.Program, error) {
	p := prog.New()
	var cur *funcAsm
	for ln, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "func "):
			if cur != nil {
				return nil, fmt.Errorf("asm:%d: func inside func %q", lineNo, cur.name)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "func "))
			name, ok := strings.CutSuffix(rest, "{")
			if !ok {
				return nil, fmt.Errorf("asm:%d: expected 'func NAME {'", lineNo)
			}
			cur = newFuncAsm(strings.TrimSpace(name))
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("asm:%d: '}' outside func", lineNo)
			}
			fn, err := cur.finish()
			if err != nil {
				return nil, err
			}
			if err := p.Add(fn); err != nil {
				return nil, fmt.Errorf("asm:%d: %v", lineNo, err)
			}
			cur = nil
		case strings.HasSuffix(line, ":"):
			if cur == nil {
				return nil, fmt.Errorf("asm:%d: label outside func", lineNo)
			}
			label := strings.TrimSuffix(line, ":")
			if err := cur.label(label); err != nil {
				return nil, fmt.Errorf("asm:%d: %v", lineNo, err)
			}
		default:
			if cur == nil {
				return nil, fmt.Errorf("asm:%d: instruction outside func", lineNo)
			}
			if err := cur.instruction(line); err != nil {
				return nil, fmt.Errorf("asm:%d: %v", lineNo, err)
			}
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("asm: unterminated func %q", cur.name)
	}
	return p, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, ";"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

type fixup struct {
	instr int
	label string
}

type funcAsm struct {
	name    string
	instrs  []isa.Instr
	labels  map[string]int
	fixups  []fixup
	calls   []string
	callIdx map[string]int
}

func newFuncAsm(name string) *funcAsm {
	return &funcAsm{
		name:    name,
		labels:  map[string]int{},
		callIdx: map[string]int{},
	}
}

func (f *funcAsm) label(name string) error {
	if _, dup := f.labels[name]; dup {
		return fmt.Errorf("duplicate label %q", name)
	}
	f.labels[name] = len(f.instrs)
	return nil
}

func (f *funcAsm) instruction(line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var fields []string
	if rest = strings.TrimSpace(rest); rest != "" {
		for _, fl := range strings.Split(rest, ",") {
			fields = append(fields, strings.TrimSpace(fl))
		}
	}
	info := isa.Info(op)
	in := isa.Instr{Op: op}
	idx := 0
	next := func() (string, error) {
		if idx >= len(fields) {
			return "", fmt.Errorf("%s: missing operand %d", mnemonic, idx+1)
		}
		fl := fields[idx]
		idx++
		return fl, nil
	}
	reg := func(class isa.RegClass, dst *uint8) error {
		fl, err := next()
		if err != nil {
			return err
		}
		want := byte('r')
		if class == isa.RegFloat {
			want = 'f'
		}
		if len(fl) < 2 || fl[0] != want {
			return fmt.Errorf("%s: expected %c-register, got %q", mnemonic, want, fl)
		}
		n, err := strconv.Atoi(fl[1:])
		if err != nil || n < 0 || n >= isa.NumRegs {
			return fmt.Errorf("%s: bad register %q", mnemonic, fl)
		}
		*dst = uint8(n)
		return nil
	}
	if info.Dst != isa.RegNone {
		if err := reg(info.Dst, &in.Rd); err != nil {
			return err
		}
	}
	if info.SrcA != isa.RegNone {
		if err := reg(info.SrcA, &in.Ra); err != nil {
			return err
		}
	}
	if info.SrcB != isa.RegNone {
		if err := reg(info.SrcB, &in.Rb); err != nil {
			return err
		}
	}
	switch info.Imm {
	case isa.ImmNone:
	case isa.ImmFloat:
		fl, err := next()
		if err != nil {
			return err
		}
		v, err := strconv.ParseFloat(fl, 64)
		if err != nil {
			return fmt.Errorf("%s: bad float %q", mnemonic, fl)
		}
		in.Imm = int64(math.Float64bits(v))
	case isa.ImmTarget:
		fl, err := next()
		if err != nil {
			return err
		}
		f.fixups = append(f.fixups, fixup{instr: len(f.instrs), label: fl})
	case isa.ImmCallee:
		fl, err := next()
		if err != nil {
			return err
		}
		ci, ok := f.callIdx[fl]
		if !ok {
			ci = len(f.calls)
			f.callIdx[fl] = ci
			f.calls = append(f.calls, fl)
		}
		in.Imm = int64(ci)
	default: // ImmInt, ImmSec, ImmOffset
		fl, err := next()
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(fl, 0, 64)
		if err != nil {
			return fmt.Errorf("%s: bad immediate %q", mnemonic, fl)
		}
		in.Imm = v
	}
	if idx != len(fields) {
		return fmt.Errorf("%s: %d extra operand(s)", mnemonic, len(fields)-idx)
	}
	f.instrs = append(f.instrs, in)
	return nil
}

func (f *funcAsm) finish() (*prog.Function, error) {
	for _, fx := range f.fixups {
		target, ok := f.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm: %s: undefined label %q", f.name, fx.label)
		}
		f.instrs[fx.instr].Imm = int64(target)
	}
	return &prog.Function{Name: f.name, Instrs: f.instrs, Calls: f.calls}, nil
}

// Disassemble renders one function in assembler syntax with synthesized
// labels at branch targets.
func Disassemble(fn *prog.Function) string {
	// Collect branch targets in order of appearance in the code.
	targets := map[int]string{}
	order := []int{}
	for _, in := range fn.Instrs {
		if isa.Info(in.Op).Imm == isa.ImmTarget {
			t := int(in.Imm)
			if _, seen := targets[t]; !seen {
				targets[t] = ""
				order = append(order, t)
			}
		}
	}
	// Name labels by target position so output is stable.
	sortInts(order)
	for i, t := range order {
		targets[t] = fmt.Sprintf("L%d", i)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "func %s {\n", fn.Name)
	for i, in := range fn.Instrs {
		if lbl, ok := targets[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		info := isa.Info(in.Op)
		switch info.Imm {
		case isa.ImmTarget:
			base := in
			base.Imm = 0
			text := strings.TrimSuffix(base.String(), ", 0")
			text = strings.TrimSuffix(text, " 0")
			sep := ", "
			if text == info.Name { // jmp has no registers
				sep = " "
			}
			fmt.Fprintf(&b, "    %s%s%s\n", text, sep, targets[int(in.Imm)])
		case isa.ImmCallee:
			callee := "?"
			if int(in.Imm) < len(fn.Calls) {
				callee = fn.Calls[in.Imm]
			}
			fmt.Fprintf(&b, "    call %s\n", callee)
		default:
			fmt.Fprintf(&b, "    %s\n", in.String())
		}
	}
	// A label may point one past the last instruction (loop exits).
	if lbl, ok := targets[len(fn.Instrs)]; ok {
		fmt.Fprintf(&b, "%s:\n", lbl)
	}
	b.WriteString("}\n")
	return b.String()
}

// ModuleOf reconstructs a pre-link module from a linked program: function
// bodies are split at function starts, branch targets are relativized, and
// call targets are resolved back to callee names. It is the inverse of
// Link for programs produced by the prog package, enabling disassembly of
// linked code.
func ModuleOf(l *prog.Linked) (*prog.Program, error) {
	mod := prog.New()
	for i, name := range l.FuncNames {
		start := l.FuncStarts[i]
		end := len(l.Code)
		for _, s := range l.FuncStarts {
			if s > start && s < end {
				end = s
			}
		}
		fn := &prog.Function{Name: name}
		callIdx := map[string]int{}
		for _, in := range l.Code[start:end] {
			switch isa.Info(in.Op).Imm {
			case isa.ImmTarget:
				in.Imm -= int64(start)
			case isa.ImmCallee:
				callee := ""
				for j, s := range l.FuncStarts {
					if int64(s) == in.Imm {
						callee = l.FuncNames[j]
					}
				}
				if callee == "" {
					return nil, fmt.Errorf("asm: call target %d is not a function entry", in.Imm)
				}
				ci, ok := callIdx[callee]
				if !ok {
					ci = len(fn.Calls)
					callIdx[callee] = ci
					fn.Calls = append(fn.Calls, callee)
				}
				in.Imm = int64(ci)
			}
			fn.Instrs = append(fn.Instrs, in)
		}
		if err := mod.Add(fn); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

// DisassembleProgram renders all functions of a module.
func DisassembleProgram(p *prog.Program) string {
	var b strings.Builder
	for i, fn := range p.Funcs() {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(Disassemble(fn))
	}
	return b.String()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
