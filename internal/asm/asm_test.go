package asm

import (
	"strings"
	"testing"

	"fastflip/internal/bench"
	"fastflip/internal/isa"
	"fastflip/internal/vm"
)

const sample = `
; a loop that sums 0..4 into r1 and stores it
func main {
    li r1, 0
    li r2, 0
    li r3, 5
loop:
    add r1, r1, r2
    addi r2, r2, 1
    blt r2, r3, loop
    call store
    halt
}

func store {
    li r4, 0
    st r1, r4, 0
    ret
}
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble(sample)
	if err != nil {
		t.Fatal(err)
	}
	l, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(l.Code, l.Entry, 4)
	if ev := m.Run(); ev.Kind != vm.EvHalt {
		t.Fatalf("run ended with %v", ev.Kind)
	}
	if m.Mem[0] != 10 {
		t.Errorf("mem[0] = %d, want 10", m.Mem[0])
	}
}

func TestAssembleOperandKinds(t *testing.T) {
	p, err := Assemble(`
func f {
    fli f1, 3.25
    fli f2, -0.5
    li r1, 0x10
    li r2, -7
    fadd f3, f1, f2
    fst f3, r1, 2
    secbeg 1
    secend 1
    roibeg
    roiend
    ret
}
`)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.Func("f")
	if fn.Instrs[0].FloatImm() != 3.25 || fn.Instrs[1].FloatImm() != -0.5 {
		t.Errorf("float immediates: %v, %v", fn.Instrs[0].FloatImm(), fn.Instrs[1].FloatImm())
	}
	if fn.Instrs[2].Imm != 16 || fn.Instrs[3].Imm != -7 {
		t.Errorf("int immediates: %d, %d", fn.Instrs[2].Imm, fn.Instrs[3].Imm)
	}
	if fn.Instrs[5].Op != isa.FST || fn.Instrs[5].Ra != 3 || fn.Instrs[5].Rb != 1 || fn.Instrs[5].Imm != 2 {
		t.Errorf("fst = %+v", fn.Instrs[5])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":    "func f {\n frob r1\n}",
		"bad register":        "func f {\n add r1, r99, r2\n}",
		"float reg for int":   "func f {\n add r1, f2, r3\n}",
		"missing operand":     "func f {\n add r1, r2\n}",
		"extra operand":       "func f {\n ret r1\n}",
		"undefined label":     "func f {\n jmp nowhere\n}",
		"duplicate label":     "func f {\nx:\nx:\n ret\n}",
		"instruction outside": "add r1, r2, r3",
		"label outside":       "x:",
		"unterminated func":   "func f {\n ret",
		"nested func":         "func f {\nfunc g {\n}\n}",
		"duplicate func":      "func f {\n ret\n}\nfunc f {\n ret\n}",
		"bad float":           "func f {\n fli f1, abc\n}",
		"bad int":             "func f {\n li r1, zz\n}",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Assemble(src); err == nil {
				t.Errorf("Assemble accepted %q", src)
			}
		})
	}
}

func TestComments(t *testing.T) {
	p, err := Assemble(`
// file comment
func f { ; trailing comment
    ret ; done
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Func("f").Instrs) != 1 {
		t.Errorf("instrs = %d", len(p.Func("f").Instrs))
	}
}

func TestDisassembleLabels(t *testing.T) {
	p, err := Assemble(sample)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p.Func("main"))
	if !strings.Contains(text, "L0:") || !strings.Contains(text, "blt r2, r3, L0") {
		t.Errorf("disassembly:\n%s", text)
	}
	if !strings.Contains(text, "call store") {
		t.Errorf("missing call:\n%s", text)
	}
}

// TestRoundTripBenchmarks disassembles and reassembles every benchmark and
// checks the functions are hash-identical — the assembler and disassembler
// are exact inverses on real programs.
func TestRoundTripBenchmarks(t *testing.T) {
	for _, name := range bench.Names() {
		for _, variant := range bench.Variants {
			t.Run(name+"/"+string(variant), func(t *testing.T) {
				p, err := bench.Build(name, variant)
				if err != nil {
					t.Fatal(err)
				}
				mod, err := ModuleOf(p.Linked)
				if err != nil {
					t.Fatal(err)
				}
				text := DisassembleProgram(mod)
				back, err := Assemble(text)
				if err != nil {
					t.Fatalf("reassembly failed: %v\n%s", err, firstLines(text, 30))
				}
				for _, fn := range mod.Funcs() {
					got := back.Func(fn.Name)
					if got == nil {
						t.Fatalf("function %q lost in round trip", fn.Name)
					}
					if got.Hash() != fn.Hash() {
						t.Errorf("function %q changed in round trip", fn.Name)
					}
				}
			})
		}
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
