package vm

import (
	"math/rand"
	"testing"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
)

// batchProg exercises every detach path: loops (branch divergence), a
// call, integer and float arithmetic, loads/stores with computed
// addresses, and a division whose divisor a flip can zero.
func batchProg(t testing.TB) *prog.Linked {
	main := prog.NewFunc("main")
	main.Li(1, 0) // base
	main.Li(2, 0) // i
	main.Li(3, 6) // n
	main.Li(7, 3) // divisor
	main.Label("loop")
	main.Li(4, 0x9e3779b9)
	main.Add(4, 4, 2)
	main.Div(5, 4, 7)
	main.Call("mix")
	main.St(6, 1, 2)
	main.Ld(8, 1, 2)
	main.Itof(9, 8)
	main.Fsqrt(9, 9)
	main.Fst(9, 1, 3)
	main.Addi(2, 2, 1)
	main.Blt(2, 3, "loop")
	main.Halt()

	mix := prog.NewFunc("mix")
	mix.Rotr32(6, 5, 5)
	mix.Add32(6, 6, 4)
	mix.Andi(6, 6, 0x7fffffff)
	mix.Ret()

	p := prog.New()
	p.MustAdd(main.MustBuild())
	p.MustAdd(mix.MustBuild())
	l, err := p.Link("main")
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return l
}

type flipSpec struct {
	float bool
	reg   int
	bit   uint
}

// scalarGroundTruth runs one flipped replica on a scalar Machine from the
// fork point to termination and returns its final state.
func scalarGroundTruth(fork *Machine, fl flipSpec) *Machine {
	m := fork.Clone()
	if fl.float {
		m.FlipFloat(fl.reg, fl.bit)
	} else {
		m.FlipInt(fl.reg, fl.bit)
	}
	m.Run()
	return m
}

// TestBatchMatchesScalar forks a batch of randomly flipped replicas at
// several dynamic positions and checks every replica, materialized and
// finished on a scalar machine, against an unbatched scalar run:
// identical status, crash kind, dynamic count, registers, and memory.
func TestBatchMatchesScalar(t *testing.T) {
	l := batchProg(t)
	const memWords = 32
	rng := rand.New(rand.NewSource(7))

	clean := New(l.Code, l.Entry, memWords)
	if ev := clean.Run(); ev.Kind != EvHalt {
		t.Fatalf("clean run: %v", ev.Kind)
	}
	total := clean.Dyn

	for _, forkAt := range []uint64{0, 3, 9, 17, total - 2} {
		fork := New(l.Code, l.Entry, memWords)
		fork.MaxDyn = 10 * total
		if ev := fork.RunUntilDyn(forkAt); ev.Kind != EvNone {
			t.Fatalf("fork replay to %d: %v", forkAt, ev.Kind)
		}

		const K = 24
		flips := make([]flipSpec, K)
		for k := range flips {
			flips[k] = flipSpec{
				float: rng.Intn(4) == 0,
				reg:   1 + rng.Intn(9),
				bit:   uint(rng.Intn(64)),
			}
		}

		b := NewBatch(fork, K)
		for k, fl := range flips {
			if fl.float {
				b.FlipFloat(k, fl.reg, fl.bit)
			} else {
				b.FlipInt(k, fl.reg, fl.bit)
			}
		}
		b.Run()

		scratch := fork.Clone()
		for k, fl := range flips {
			want := scalarGroundTruth(fork, fl)

			scratch.BeginJournal()
			b.MaterializeInto(k, scratch)
			got := scratch.Clone()
			got.Run()

			if got.Status != want.Status || got.Crash != want.Crash {
				t.Fatalf("fork %d replica %d (%+v): status %v/%v, want %v/%v",
					forkAt, k, fl, got.Status, got.Crash, want.Status, want.Crash)
			}
			if got.Dyn != want.Dyn {
				t.Fatalf("fork %d replica %d (%+v): dyn %d, want %d", forkAt, k, fl, got.Dyn, want.Dyn)
			}
			if got.R != want.R || got.F != want.F {
				t.Fatalf("fork %d replica %d (%+v): register files differ", forkAt, k, fl)
			}
			for a := range got.Mem {
				if got.Mem[a] != want.Mem[a] {
					t.Fatalf("fork %d replica %d (%+v): mem[%d] = %#x, want %#x",
						forkAt, k, fl, a, got.Mem[a], want.Mem[a])
				}
			}

			// The journal must revert the materialization so the scratch
			// machine can host the next replica.
			if scratch.UndoJournal() {
				scratch.CopyScalarsFrom(fork)
			} else {
				scratch.RestoreFrom(fork)
			}
			for a := range scratch.Mem {
				if scratch.Mem[a] != fork.Mem[a] {
					t.Fatalf("fork %d replica %d: journal revert left mem[%d] dirty", forkAt, k, a)
				}
			}
		}
	}
}

// TestBatchStopsBeforeEvents ensures a batch never consumes SECEND or
// HALT: the scalar finisher must observe those events itself.
func TestBatchStopsBeforeEvents(t *testing.T) {
	b := prog.NewFunc("main")
	b.RoiBeg()
	b.SecBeg(0)
	b.Li(1, 1)
	b.Addi(1, 1, 2)
	b.SecEnd(0)
	b.RoiEnd()
	b.Halt()
	p := prog.New()
	p.MustAdd(b.MustBuild())
	l, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	fork := New(l.Code, l.Entry, 8)
	batch := NewBatch(fork, 3)
	batch.Run()
	if got := l.Code[batch.pc].Op; got != isa.SECEND {
		t.Fatalf("batch stopped at %v, want SECEND", got)
	}
	m := fork.Clone()
	batch.MaterializeInto(0, m)
	if ev := m.Step(); ev.Kind != EvSecEnd {
		t.Fatalf("materialized step = %v, want EvSecEnd", ev.Kind)
	}
}

func BenchmarkBatchStep(b *testing.B) {
	l := batchProg(b)
	const memWords = 32
	fork := New(l.Code, l.Entry, memWords)
	clean := New(l.Code, l.Entry, memWords)
	clean.Run()
	for _, width := range []int{1, 8, 32} {
		name := map[int]string{1: "k1", 8: "k8", 32: "k32"}[width]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			steps := 0
			for i := 0; i < b.N; i++ {
				bt := NewBatch(fork, width)
				for k := 0; k < width; k++ {
					bt.FlipInt(k, 4, uint(k%64))
				}
				bt.Run()
				steps += int(bt.Steps())
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}
