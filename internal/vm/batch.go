// Lockstep batch replay: Tier B of the experiment-elision stack.
//
// A Batch advances K faulty replicas that share one clean prefix. All
// replicas fork from the same positioned machine, so while their control
// flow agrees they share one PC, one dynamic counter, and one call stack;
// only the register files differ (structure-of-arrays, one slice per
// architectural register) plus a per-replica memory write-delta over the
// shared read-only base memory. Each opcode is fetched and decoded once
// per batch and applied to every active replica, amortizing dispatch.
//
// A replica leaves the lockstep set when its execution stops matching the
// group's: a private crash (division by zero, out-of-bounds access from a
// flipped base register) freezes it as Crashed exactly as a scalar Step
// would have, and a branch that decides differently from the group
// detaches it Running at its own target. The batch as a whole stops
// *before* anything the scalar experiment driver must observe itself —
// SECEND and HALT events, a shared PC out of bounds, the MaxDyn timeout,
// call-stack crashes — so a replica materialized out of the batch and
// finished on a scalar Machine passes through the exact same state
// sequence as an unbatched run: batching changes wall-clock, never
// outcomes.
package vm

import (
	"math"

	"fastflip/internal/isa"
)

// Batch is K replicas advancing in lockstep from a shared fork point.
type Batch struct {
	code []isa.Instr
	base *Machine // fork-point machine; its memory is the shared base, never written

	n int
	r [isa.NumRegs][]uint64 // r[reg][replica]
	f [isa.NumRegs][]uint64
	// delta[k] holds replica k's memory writes, overlaying base.Mem.
	delta []map[uint64]uint64

	// Shared state of the lockstep set.
	active []int
	pc     int
	dyn    uint64
	maxDyn uint64
	stack  []int

	// Frozen state of detached replicas.
	detached []bool
	status   []Status
	crashk   []CrashKind
	pcs      []int
	dyns     []uint64
	stacks   [][]int

	steps uint64 // lockstep dispatches executed
}

// NewBatch forks n replicas off the positioned machine base. The base must
// be Running; it is not mutated (reads go through it, writes go to
// per-replica deltas).
func NewBatch(base *Machine, n int) *Batch {
	b := &Batch{
		code:     base.Code,
		base:     base,
		n:        n,
		delta:    make([]map[uint64]uint64, n),
		active:   make([]int, n),
		pc:       base.PC,
		dyn:      base.Dyn,
		maxDyn:   base.MaxDyn,
		stack:    append([]int(nil), base.Stack...),
		detached: make([]bool, n),
		status:   make([]Status, n),
		crashk:   make([]CrashKind, n),
		pcs:      make([]int, n),
		dyns:     make([]uint64, n),
		stacks:   make([][]int, n),
	}
	rBack := make([]uint64, isa.NumRegs*n)
	fBack := make([]uint64, isa.NumRegs*n)
	for reg := 0; reg < isa.NumRegs; reg++ {
		b.r[reg] = rBack[reg*n : (reg+1)*n]
		b.f[reg] = fBack[reg*n : (reg+1)*n]
		for k := 0; k < n; k++ {
			b.r[reg][k] = base.R[reg]
			b.f[reg][k] = base.F[reg]
		}
	}
	for k := range b.active {
		b.active[k] = k
	}
	return b
}

// Replicas returns the batch width K.
func (b *Batch) Replicas() int { return b.n }

// Steps returns the number of lockstep dispatches executed so far — each
// one would have cost len(active) scalar Step calls.
func (b *Batch) Steps() uint64 { return b.steps }

// ActiveCount returns how many replicas are still in the lockstep set.
func (b *Batch) ActiveCount() int { return len(b.active) }

// FlipInt flips one bit of replica k's integer register reg.
func (b *Batch) FlipInt(k, reg int, bit uint) { b.r[reg][k] ^= 1 << bit }

// FlipFloat flips one bit of replica k's float register reg.
func (b *Batch) FlipFloat(k, reg int, bit uint) { b.f[reg][k] ^= 1 << bit }

// load reads replica k's view of memory word addr.
func (b *Batch) load(k int, addr uint64) uint64 {
	if d := b.delta[k]; d != nil {
		if v, ok := d[addr]; ok {
			return v
		}
	}
	return b.base.Mem[addr]
}

// store writes v to replica k's memory overlay.
func (b *Batch) store(k int, addr, v uint64) {
	d := b.delta[k]
	if d == nil {
		d = make(map[uint64]uint64, 8)
		b.delta[k] = d
	}
	d[addr] = v
}

// detach freezes replica k out of the lockstep set at the given pc with
// the current (already advanced) dynamic counter.
func (b *Batch) detach(k, pc int, st Status, ck CrashKind) {
	b.detached[k] = true
	b.status[k] = st
	b.crashk[k] = ck
	b.pcs[k] = pc
	b.dyns[k] = b.dyn
	b.stacks[k] = append([]int(nil), b.stack...)
}

func (b *Batch) fval(k int, reg uint8) float64 {
	return math.Float64frombits(b.f[reg][k])
}

// Step executes one instruction in lockstep across the active set. It
// returns false — leaving all shared state untouched — when the batch must
// stop and hand its replicas to a scalar finisher: the active set is
// empty, or the next instruction is one the experiment driver has to
// observe on a real Machine (SECEND/HALT events, PC out of bounds, the
// MaxDyn timeout, a call-stack crash, an undefined opcode).
func (b *Batch) Step() bool {
	if len(b.active) == 0 {
		return false
	}
	if b.pc < 0 || b.pc >= len(b.code) {
		return false
	}
	if b.maxDyn > 0 && b.dyn >= b.maxDyn {
		return false
	}
	in := b.code[b.pc]
	switch in.Op {
	case isa.SECEND, isa.HALT, isa.TRAP:
		// TRAP stops the batch like HALT so the scalar finisher observes
		// the detector crash on a real Machine.
		return false
	case isa.CALL:
		if len(b.stack) >= maxCallDepth {
			return false
		}
	case isa.RET:
		if len(b.stack) == 0 {
			return false
		}
	}
	if !isa.Valid(in.Op) {
		return false
	}

	b.dyn++
	b.steps++
	next := b.pc + 1

	switch in.Op {
	case isa.NOP, isa.SECBEG, isa.ROIBEG, isa.ROIEND:
		// Markers carry no architectural effect; their events are only
		// meaningful to the scalar driver at batch boundaries (SECEND and
		// HALT stop the batch above).

	case isa.ADD:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] + b.r[in.Rb][k]
		}
	case isa.SUB:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] - b.r[in.Rb][k]
		}
	case isa.MUL:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] * b.r[in.Rb][k]
		}
	case isa.DIV, isa.REM:
		keep := b.active[:0]
		for _, k := range b.active {
			rb := b.r[in.Rb][k]
			if rb == 0 {
				b.detach(k, b.pc, Crashed, CrashDivZero)
				continue
			}
			if in.Op == isa.DIV {
				b.r[in.Rd][k] = uint64(int64(b.r[in.Ra][k]) / int64(rb))
			} else {
				b.r[in.Rd][k] = uint64(int64(b.r[in.Ra][k]) % int64(rb))
			}
			keep = append(keep, k)
		}
		b.active = keep
	case isa.AND:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] & b.r[in.Rb][k]
		}
	case isa.OR:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] | b.r[in.Rb][k]
		}
	case isa.XOR:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] ^ b.r[in.Rb][k]
		}
	case isa.SHL:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] << (b.r[in.Rb][k] & 63)
		}
	case isa.SHR:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] >> (b.r[in.Rb][k] & 63)
		}
	case isa.SRA:
		for _, k := range b.active {
			b.r[in.Rd][k] = uint64(int64(b.r[in.Ra][k]) >> (b.r[in.Rb][k] & 63))
		}
	case isa.SLT:
		for _, k := range b.active {
			b.r[in.Rd][k] = b2u(int64(b.r[in.Ra][k]) < int64(b.r[in.Rb][k]))
		}
	case isa.SLTU:
		for _, k := range b.active {
			b.r[in.Rd][k] = b2u(b.r[in.Ra][k] < b.r[in.Rb][k])
		}

	case isa.ADDI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] + uint64(in.Imm)
		}
	case isa.MULI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] * uint64(in.Imm)
		}
	case isa.ANDI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] & uint64(in.Imm)
		}
	case isa.ORI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] | uint64(in.Imm)
		}
	case isa.XORI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] ^ uint64(in.Imm)
		}
	case isa.SHLI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] << (uint64(in.Imm) & 63)
		}
	case isa.SHRI:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k] >> (uint64(in.Imm) & 63)
		}
	case isa.SRAI:
		for _, k := range b.active {
			b.r[in.Rd][k] = uint64(int64(b.r[in.Ra][k]) >> (uint64(in.Imm) & 63))
		}

	case isa.MOV:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.r[in.Ra][k]
		}
	case isa.NOT:
		for _, k := range b.active {
			b.r[in.Rd][k] = ^b.r[in.Ra][k]
		}
	case isa.NEG:
		for _, k := range b.active {
			b.r[in.Rd][k] = -b.r[in.Ra][k]
		}
	case isa.LI:
		for _, k := range b.active {
			b.r[in.Rd][k] = uint64(in.Imm)
		}

	case isa.ADD32:
		for _, k := range b.active {
			b.r[in.Rd][k] = (b.r[in.Ra][k] + b.r[in.Rb][k]) & 0xffffffff
		}
	case isa.ROTR32:
		s := uint(in.Imm) & 31
		for _, k := range b.active {
			x := uint32(b.r[in.Ra][k])
			b.r[in.Rd][k] = uint64(x>>s | x<<(32-s))
		}
	case isa.NOT32:
		for _, k := range b.active {
			b.r[in.Rd][k] = ^b.r[in.Ra][k] & 0xffffffff
		}

	case isa.FADD:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(b.fval(k, in.Ra) + b.fval(k, in.Rb))
		}
	case isa.FSUB:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(b.fval(k, in.Ra) - b.fval(k, in.Rb))
		}
	case isa.FMUL:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(b.fval(k, in.Ra) * b.fval(k, in.Rb))
		}
	case isa.FDIV:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(b.fval(k, in.Ra) / b.fval(k, in.Rb))
		}
	case isa.FMIN:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(math.Min(b.fval(k, in.Ra), b.fval(k, in.Rb)))
		}
	case isa.FMAX:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(math.Max(b.fval(k, in.Ra), b.fval(k, in.Rb)))
		}

	case isa.FSQRT:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(math.Sqrt(b.fval(k, in.Ra)))
		}
	case isa.FNEG:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(-b.fval(k, in.Ra))
		}
	case isa.FABS:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(math.Abs(b.fval(k, in.Ra)))
		}
	case isa.FEXP:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(math.Exp(b.fval(k, in.Ra)))
		}
	case isa.FLN:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(math.Log(b.fval(k, in.Ra)))
		}
	case isa.FMOV:
		for _, k := range b.active {
			b.f[in.Rd][k] = b.f[in.Ra][k]
		}

	case isa.FLI:
		for _, k := range b.active {
			b.f[in.Rd][k] = uint64(in.Imm)
		}

	case isa.ITOF:
		for _, k := range b.active {
			b.f[in.Rd][k] = math.Float64bits(float64(int64(b.r[in.Ra][k])))
		}
	case isa.FTOI:
		for _, k := range b.active {
			b.r[in.Rd][k] = ftoi(b.fval(k, in.Ra))
		}
	case isa.FBITS:
		for _, k := range b.active {
			b.r[in.Rd][k] = b.f[in.Ra][k]
		}
	case isa.BITSF:
		for _, k := range b.active {
			b.f[in.Rd][k] = b.r[in.Ra][k]
		}

	case isa.LD, isa.FLD:
		keep := b.active[:0]
		memLen := b.base.memLimit()
		for _, k := range b.active {
			addr := b.r[in.Ra][k] + uint64(in.Imm)
			if addr >= memLen {
				b.detach(k, b.pc, Crashed, CrashMemOOB)
				continue
			}
			if in.Op == isa.LD {
				b.r[in.Rd][k] = b.load(k, addr)
			} else {
				b.f[in.Rd][k] = b.load(k, addr)
			}
			keep = append(keep, k)
		}
		b.active = keep
	case isa.ST, isa.FST:
		keep := b.active[:0]
		memLen := b.base.memLimit()
		for _, k := range b.active {
			addr := b.r[in.Rb][k] + uint64(in.Imm)
			if addr >= memLen {
				b.detach(k, b.pc, Crashed, CrashMemOOB)
				continue
			}
			if in.Op == isa.ST {
				b.store(k, addr, b.r[in.Ra][k])
			} else {
				b.store(k, addr, b.f[in.Ra][k])
			}
			keep = append(keep, k)
		}
		b.active = keep

	case isa.LDA, isa.FLDA:
		keep := b.active[:0]
		memLen := uint64(len(b.base.Mem))
		addr := uint64(in.Imm)
		for _, k := range b.active {
			if addr >= memLen {
				b.detach(k, b.pc, Crashed, CrashMemOOB)
				continue
			}
			if in.Op == isa.LDA {
				b.r[in.Rd][k] = b.load(k, addr)
			} else {
				b.f[in.Rd][k] = b.load(k, addr)
			}
			keep = append(keep, k)
		}
		b.active = keep
	case isa.STA, isa.FSTA:
		keep := b.active[:0]
		memLen := uint64(len(b.base.Mem))
		addr := uint64(in.Imm)
		for _, k := range b.active {
			if addr >= memLen {
				b.detach(k, b.pc, Crashed, CrashMemOOB)
				continue
			}
			if in.Op == isa.STA {
				b.store(k, addr, b.r[in.Ra][k])
			} else {
				b.store(k, addr, b.f[in.Ra][k])
			}
			keep = append(keep, k)
		}
		b.active = keep

	case isa.JMP:
		next = int(in.Imm)
	case isa.BEQ, isa.BNE, isa.BLT, isa.BLE, isa.BGT, isa.BGE:
		taken := func(k int) bool {
			a, bb := int64(b.r[in.Ra][k]), int64(b.r[in.Rb][k])
			switch in.Op {
			case isa.BEQ:
				return a == bb
			case isa.BNE:
				return a != bb
			case isa.BLT:
				return a < bb
			case isa.BLE:
				return a <= bb
			case isa.BGT:
				return a > bb
			default:
				return a >= bb
			}
		}
		next = b.branch(in, next, taken)
	case isa.FBEQ, isa.FBNE, isa.FBLT, isa.FBLE:
		taken := func(k int) bool {
			a, bb := b.fval(k, in.Ra), b.fval(k, in.Rb)
			switch in.Op {
			case isa.FBEQ:
				return a == bb
			case isa.FBNE:
				return a != bb
			case isa.FBLT:
				return a < bb
			default:
				return a <= bb
			}
		}
		next = b.branch(in, next, taken)

	case isa.CALL:
		b.stack = append(b.stack, next)
		next = int(in.Imm)
	case isa.RET:
		next = b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
	}

	b.pc = next
	return true
}

// branch partitions the active set by branch decision: the subset agreeing
// with the first active replica stays in lockstep, the rest detach Running
// at their own targets (the branch itself already executed for them).
func (b *Batch) branch(in isa.Instr, fallthru int, taken func(k int) bool) int {
	groupTaken := taken(b.active[0])
	keep := b.active[:0]
	for _, k := range b.active {
		t := groupTaken
		if k != b.active[0] {
			t = taken(k)
		}
		if t == groupTaken {
			keep = append(keep, k)
			continue
		}
		tgt := fallthru
		if t {
			tgt = int(in.Imm)
		}
		b.detach(k, tgt, Running, CrashNone)
	}
	b.active = keep
	if groupTaken {
		return int(in.Imm)
	}
	return fallthru
}

// Run advances the batch until Step refuses — all replicas detached or a
// shared stop condition reached.
func (b *Batch) Run() {
	for b.Step() {
	}
}

// MaterializeInto writes replica k's architectural state onto m, which
// must currently mirror the batch's fork point (same memory as the base
// machine). Memory is patched through the journal when m is journaling, so
// the caller can revert the materialization with UndoJournal exactly like
// a scalar experiment fork.
func (b *Batch) MaterializeInto(k int, m *Machine) {
	for reg := 0; reg < isa.NumRegs; reg++ {
		m.R[reg] = b.r[reg][k]
		m.F[reg] = b.f[reg][k]
	}
	if b.detached[k] {
		m.PC = b.pcs[k]
		m.Dyn = b.dyns[k]
		m.Stack = append(m.Stack[:0], b.stacks[k]...)
		m.Status = b.status[k]
		m.Crash = b.crashk[k]
	} else {
		m.PC = b.pc
		m.Dyn = b.dyn
		m.Stack = append(m.Stack[:0], b.stack...)
		m.Status = Running
		m.Crash = CrashNone
	}
	for addr, v := range b.delta[k] {
		if m.journaling {
			m.recordWrite(addr)
		}
		m.Mem[addr] = v
	}
}
