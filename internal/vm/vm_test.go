package vm

import (
	"math"
	"testing"

	"fastflip/internal/isa"
)

// run executes a fresh machine over the instruction sequence (a HALT is
// appended) and returns it.
func run(t *testing.T, code []isa.Instr, setup func(*Machine)) *Machine {
	t.Helper()
	code = append(append([]isa.Instr(nil), code...), isa.Instr{Op: isa.HALT})
	m := New(code, 0, 64)
	if setup != nil {
		setup(m)
	}
	ev := m.Run()
	if ev.Kind != EvHalt {
		t.Fatalf("terminal event = %v (status %v, crash %v)", ev.Kind, m.Status, m.Crash)
	}
	return m
}

func TestIntegerALU(t *testing.T) {
	tests := []struct {
		name string
		op   isa.Op
		a, b uint64
		want uint64
	}{
		{"add", isa.ADD, 7, 5, 12},
		{"add wraps", isa.ADD, math.MaxUint64, 1, 0},
		{"sub", isa.SUB, 5, 7, ^uint64(1)},
		{"mul", isa.MUL, 6, 7, 42},
		{"div signed", isa.DIV, ^uint64(19), 6, ^uint64(2)},
		{"rem signed", isa.REM, ^uint64(19), 6, ^uint64(1)},
		{"and", isa.AND, 0b1100, 0b1010, 0b1000},
		{"or", isa.OR, 0b1100, 0b1010, 0b1110},
		{"xor", isa.XOR, 0b1100, 0b1010, 0b0110},
		{"shl", isa.SHL, 1, 4, 16},
		{"shl masks amount", isa.SHL, 1, 64, 1},
		{"shr logical", isa.SHR, 1 << 63, 63, 1},
		{"sra keeps sign", isa.SRA, ^uint64(7), 2, ^uint64(1)},
		{"slt true", isa.SLT, ^uint64(0), 0, 1},
		{"slt false", isa.SLT, 1, 0, 0},
		{"sltu unsigned", isa.SLTU, ^uint64(0), 0, 0},
		{"add32 masks", isa.ADD32, 0xffffffff, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := run(t, []isa.Instr{{Op: tt.op, Rd: 3, Ra: 1, Rb: 2}}, func(m *Machine) {
				m.R[1], m.R[2] = tt.a, tt.b
			})
			if m.R[3] != tt.want {
				t.Errorf("%v(%d, %d) = %d, want %d", tt.op, int64(tt.a), int64(tt.b), m.R[3], tt.want)
			}
		})
	}
}

func TestImmediateALU(t *testing.T) {
	tests := []struct {
		op   isa.Op
		a    uint64
		imm  int64
		want uint64
	}{
		{isa.ADDI, 10, -3, 7},
		{isa.MULI, 6, 9, 54},
		{isa.ANDI, 0xff, 0x0f, 0x0f},
		{isa.ORI, 0xf0, 0x0f, 0xff},
		{isa.XORI, 0xff, 0x0f, 0xf0},
		{isa.SHLI, 3, 2, 12},
		{isa.SHRI, 0xf0, 4, 0x0f},
		{isa.SRAI, ^uint64(15), 2, ^uint64(3)}, // -16 >> 2 == -4
	}
	for _, tt := range tests {
		m := run(t, []isa.Instr{{Op: tt.op, Rd: 2, Ra: 1, Imm: tt.imm}}, func(m *Machine) {
			m.R[1] = tt.a
		})
		if m.R[2] != tt.want {
			t.Errorf("%v(%d, %d) = %d, want %d", tt.op, tt.a, tt.imm, m.R[2], tt.want)
		}
	}
}

func TestUnaryAndMoves(t *testing.T) {
	m := run(t, []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 0x0ff0},
		{Op: isa.MOV, Rd: 2, Ra: 1},
		{Op: isa.NOT, Rd: 3, Ra: 1},
		{Op: isa.NEG, Rd: 4, Ra: 1},
		{Op: isa.NOT32, Rd: 5, Ra: 1},
		{Op: isa.ROTR32, Rd: 6, Ra: 1, Imm: 4},
	}, nil)
	if m.R[2] != 0x0ff0 {
		t.Errorf("mov = %x", m.R[2])
	}
	if m.R[3] != ^uint64(0x0ff0) {
		t.Errorf("not = %x", m.R[3])
	}
	if m.R[4] != ^uint64(0x0ff0)+1 {
		t.Errorf("neg = %x", m.R[4])
	}
	if m.R[5] != 0xfffff00f {
		t.Errorf("not32 = %x", m.R[5])
	}
	if m.R[6] != 0x00000ff0>>4 {
		t.Errorf("rotr32 = %x", m.R[6])
	}
}

func TestFloatOps(t *testing.T) {
	tests := []struct {
		name string
		op   isa.Op
		a, b float64
		want float64
	}{
		{"fadd", isa.FADD, 1.5, 2.25, 3.75},
		{"fsub", isa.FSUB, 1.5, 2.25, -0.75},
		{"fmul", isa.FMUL, 1.5, 2.0, 3.0},
		{"fdiv", isa.FDIV, 3.0, 2.0, 1.5},
		{"fmin", isa.FMIN, 3.0, 2.0, 2.0},
		{"fmax", isa.FMAX, 3.0, 2.0, 3.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := run(t, []isa.Instr{{Op: tt.op, Rd: 3, Ra: 1, Rb: 2}}, func(m *Machine) {
				m.SetFl(1, tt.a)
				m.SetFl(2, tt.b)
			})
			if got := m.Fl(3); got != tt.want {
				t.Errorf("%v(%v, %v) = %v, want %v", tt.op, tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestFloatUnary(t *testing.T) {
	tests := []struct {
		op   isa.Op
		a    float64
		want float64
	}{
		{isa.FSQRT, 9, 3},
		{isa.FNEG, 2.5, -2.5},
		{isa.FABS, -2.5, 2.5},
		{isa.FEXP, 0, 1},
		{isa.FLN, 1, 0},
		{isa.FMOV, 7.25, 7.25},
	}
	for _, tt := range tests {
		m := run(t, []isa.Instr{{Op: tt.op, Rd: 2, Ra: 1}}, func(m *Machine) {
			m.SetFl(1, tt.a)
		})
		if got := m.Fl(2); got != tt.want {
			t.Errorf("%v(%v) = %v, want %v", tt.op, tt.a, got, tt.want)
		}
	}
}

func TestFloatDivByZeroIsQuietInf(t *testing.T) {
	// IEEE semantics: float division by zero yields ±Inf, not a crash —
	// the analysis treats Inf in outputs as a *detected* malformed output.
	m := run(t, []isa.Instr{{Op: isa.FDIV, Rd: 2, Ra: 1, Rb: 0}}, func(m *Machine) {
		m.SetFl(1, 1)
		m.SetFl(0, 0)
	})
	if !math.IsInf(m.Fl(2), 1) {
		t.Errorf("1/0 = %v, want +Inf", m.Fl(2))
	}
}

func TestConversions(t *testing.T) {
	m := run(t, []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: -7},
		{Op: isa.ITOF, Rd: 1, Ra: 1},
		{Op: isa.FTOI, Rd: 2, Ra: 1},
		{Op: isa.FBITS, Rd: 3, Ra: 1},
		{Op: isa.BITSF, Rd: 2, Ra: 3},
	}, nil)
	if m.Fl(1) != -7 {
		t.Errorf("itof = %v", m.Fl(1))
	}
	if int64(m.R[2]) != -7 {
		t.Errorf("ftoi = %d", int64(m.R[2]))
	}
	if m.R[3] != math.Float64bits(-7) {
		t.Errorf("fbits = %x", m.R[3])
	}
	if m.Fl(2) != -7 {
		t.Errorf("bitsf = %v", m.Fl(2))
	}
}

func TestFTOITruncatesAndSaturates(t *testing.T) {
	for _, tt := range []struct {
		in   float64
		want uint64
	}{
		{2.9, 2},
		{-2.9, ^uint64(1)},
		{math.NaN(), 1 << 63},
		{math.Inf(1), 1 << 63},
		{1e300, 1 << 63},
	} {
		m := run(t, []isa.Instr{{Op: isa.FTOI, Rd: 1, Ra: 0}}, func(m *Machine) {
			m.SetFl(0, tt.in)
		})
		if m.R[1] != tt.want {
			t.Errorf("ftoi(%v) = %x, want %x", tt.in, m.R[1], tt.want)
		}
	}
}

func TestMemory(t *testing.T) {
	m := run(t, []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 5},  // base
		{Op: isa.LI, Rd: 2, Imm: 99}, // value
		{Op: isa.ST, Ra: 2, Rb: 1, Imm: 3},
		{Op: isa.LD, Rd: 3, Ra: 1, Imm: 3},
	}, nil)
	if m.Mem[8] != 99 || m.R[3] != 99 {
		t.Errorf("mem[8] = %d, loaded %d", m.Mem[8], m.R[3])
	}
}

func TestFloatMemory(t *testing.T) {
	m := run(t, []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 2},
		{Op: isa.FLI, Rd: 0, Imm: int64(math.Float64bits(6.5))},
		{Op: isa.FST, Ra: 0, Rb: 1, Imm: 1},
		{Op: isa.FLD, Rd: 1, Ra: 1, Imm: 1},
	}, nil)
	if m.Fl(1) != 6.5 {
		t.Errorf("fld round-trip = %v", m.Fl(1))
	}
}

func TestBranches(t *testing.T) {
	// Each branch jumps over an instruction that would set r3.
	tests := []struct {
		op    isa.Op
		a, b  int64
		taken bool
	}{
		{isa.BEQ, 4, 4, true},
		{isa.BEQ, 4, 5, false},
		{isa.BNE, 4, 5, true},
		{isa.BLT, -1, 0, true},
		{isa.BLT, 0, -1, false},
		{isa.BLE, 3, 3, true},
		{isa.BGT, 4, 3, true},
		{isa.BGE, 3, 4, false},
	}
	for _, tt := range tests {
		m := run(t, []isa.Instr{
			{Op: tt.op, Ra: 1, Rb: 2, Imm: 2},
			{Op: isa.LI, Rd: 3, Imm: 1},
		}, func(m *Machine) {
			m.R[1], m.R[2] = uint64(tt.a), uint64(tt.b)
		})
		if got := m.R[3] == 0; got != tt.taken {
			t.Errorf("%v(%d, %d) taken = %v, want %v", tt.op, tt.a, tt.b, got, tt.taken)
		}
	}
}

func TestFloatBranchesQuietOnNaN(t *testing.T) {
	nan := math.NaN()
	for _, op := range []isa.Op{isa.FBEQ, isa.FBLT, isa.FBLE} {
		m := run(t, []isa.Instr{
			{Op: op, Ra: 1, Rb: 2, Imm: 2},
			{Op: isa.LI, Rd: 3, Imm: 1},
		}, func(m *Machine) {
			m.SetFl(1, nan)
			m.SetFl(2, 1)
		})
		if m.R[3] != 1 {
			t.Errorf("%v with NaN was taken", op)
		}
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, []isa.Instr{
		{Op: isa.CALL, Imm: 3},
		{Op: isa.LI, Rd: 2, Imm: 2}, // after return
		{Op: isa.HALT},
		{Op: isa.LI, Rd: 1, Imm: 1}, // callee
		{Op: isa.RET},
	}, nil)
	if m.R[1] != 1 || m.R[2] != 2 {
		t.Errorf("call/ret state r1=%d r2=%d", m.R[1], m.R[2])
	}
}

func TestCrashes(t *testing.T) {
	tests := []struct {
		name string
		code []isa.Instr
		want CrashKind
	}{
		{"load out of bounds", []isa.Instr{
			{Op: isa.LI, Rd: 1, Imm: 1 << 40},
			{Op: isa.LD, Rd: 2, Ra: 1},
		}, CrashMemOOB},
		{"store negative address", []isa.Instr{
			{Op: isa.LI, Rd: 1, Imm: -1},
			{Op: isa.ST, Ra: 2, Rb: 1},
		}, CrashMemOOB},
		{"integer division by zero", []isa.Instr{
			{Op: isa.LI, Rd: 1, Imm: 3},
			{Op: isa.DIV, Rd: 2, Ra: 1, Rb: 3},
		}, CrashDivZero},
		{"jump out of program", []isa.Instr{
			{Op: isa.JMP, Imm: 1 << 30},
		}, CrashPCOOB},
		{"return with empty stack", []isa.Instr{
			{Op: isa.RET},
		}, CrashStackUnderflow},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := New(tt.code, 0, 16)
			ev := m.Run()
			if ev.Kind != EvCrash || m.Crash != tt.want {
				t.Errorf("event %v crash %v, want crash %v", ev.Kind, m.Crash, tt.want)
			}
		})
	}
}

func TestCallStackOverflowCrashes(t *testing.T) {
	// A function that calls itself forever must hit the depth limit.
	m := New([]isa.Instr{{Op: isa.CALL, Imm: 0}}, 0, 16)
	ev := m.Run()
	if ev.Kind != EvCrash || m.Crash != CrashStackOverflow {
		t.Errorf("event %v crash %v", ev.Kind, m.Crash)
	}
}

func TestTimeout(t *testing.T) {
	m := New([]isa.Instr{{Op: isa.JMP, Imm: 0}}, 0, 16)
	m.MaxDyn = 100
	ev := m.Run()
	if ev.Kind != EvTimeout || m.Status != TimedOut {
		t.Errorf("event %v status %v", ev.Kind, m.Status)
	}
	if m.Dyn != 100 {
		t.Errorf("executed %d instructions, want 100", m.Dyn)
	}
}

func TestMarkersEmitEvents(t *testing.T) {
	m := New([]isa.Instr{
		{Op: isa.ROIBEG},
		{Op: isa.SECBEG, Imm: 7},
		{Op: isa.SECEND, Imm: 7},
		{Op: isa.ROIEND},
		{Op: isa.HALT},
	}, 0, 16)
	want := []Event{
		{Kind: EvROIBeg},
		{Kind: EvSecBeg, Sec: 7},
		{Kind: EvSecEnd, Sec: 7},
		{Kind: EvROIEnd},
		{Kind: EvHalt},
	}
	for i, w := range want {
		if ev := m.Step(); ev != w {
			t.Errorf("step %d event = %+v, want %+v", i, ev, w)
		}
	}
}

func TestTerminalStepIsSticky(t *testing.T) {
	m := New([]isa.Instr{{Op: isa.HALT}}, 0, 16)
	m.Run()
	dyn := m.Dyn
	for i := 0; i < 3; i++ {
		if ev := m.Step(); ev.Kind != EvHalt {
			t.Fatalf("step after halt = %v", ev.Kind)
		}
	}
	if m.Dyn != dyn {
		t.Error("halted machine kept counting instructions")
	}
}

func TestCloneAndRestoreIsolation(t *testing.T) {
	m := New([]isa.Instr{{Op: isa.HALT}}, 0, 16)
	m.R[1] = 42
	m.Mem[3] = 7
	m.Stack = append(m.Stack, 5)

	c := m.Clone()
	c.R[1] = 1
	c.Mem[3] = 1
	c.Stack[0] = 1
	if m.R[1] != 42 || m.Mem[3] != 7 || m.Stack[0] != 5 {
		t.Error("Clone shares state with the original")
	}

	var dst Machine
	dst.Mem = make([]uint64, 16)
	dst.RestoreFrom(m)
	if dst.R[1] != 42 || dst.Mem[3] != 7 || len(dst.Stack) != 1 || dst.Stack[0] != 5 {
		t.Errorf("RestoreFrom lost state: %+v", dst)
	}
	dst.Mem[3] = 9
	if m.Mem[3] != 7 {
		t.Error("RestoreFrom aliases memory")
	}
}

func TestFlipBits(t *testing.T) {
	m := New(nil, 0, 1)
	m.FlipInt(2, 7)
	if m.R[2] != 1<<7 {
		t.Errorf("FlipInt: %x", m.R[2])
	}
	m.FlipInt(2, 7)
	if m.R[2] != 0 {
		t.Error("FlipInt is not an involution")
	}
	m.SetFl(1, 1.0)
	bits := m.F[1]
	m.FlipFloat(1, 63)
	if m.Fl(1) != -1.0 {
		t.Errorf("sign flip: %v", m.Fl(1))
	}
	m.FlipFloat(1, 63)
	if m.F[1] != bits {
		t.Error("FlipFloat is not an involution")
	}
}

func TestRunUntilDyn(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 1},
		{Op: isa.LI, Rd: 2, Imm: 2},
		{Op: isa.LI, Rd: 3, Imm: 3},
		{Op: isa.HALT},
	}
	m := New(code, 0, 1)
	if ev := m.RunUntilDyn(2); ev.Kind != EvNone {
		t.Fatalf("early termination: %v", ev.Kind)
	}
	if m.R[2] != 2 || m.R[3] != 0 {
		t.Errorf("state after 2 steps: r2=%d r3=%d", m.R[2], m.R[3])
	}
	if ev := m.RunUntilDyn(100); ev.Kind != EvHalt {
		t.Errorf("expected halt, got %v", ev.Kind)
	}
}

func TestStatusAndCrashStrings(t *testing.T) {
	for s := Running; s <= TimedOut; s++ {
		if s.String() == "" {
			t.Errorf("status %d has empty string", s)
		}
	}
	for k := CrashNone; k <= CrashBadInstr; k++ {
		if k.String() == "" {
			t.Errorf("crash %d has empty string", k)
		}
	}
}

func TestJournalUndoRevertsMemory(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 7},
		{Op: isa.ST, Ra: 1, Rb: 0, Imm: 3}, // Mem[3] = 7
		{Op: isa.ST, Ra: 1, Rb: 0, Imm: 5}, // Mem[5] = 7
		{Op: isa.ST, Ra: 0, Rb: 0, Imm: 3}, // Mem[3] = r0 (second write, same word)
		{Op: isa.HALT},
	}
	m := New(code, 0, 16)
	m.Mem[3], m.Mem[5] = 100, 200
	snap := m.Clone()

	m.BeginJournal()
	m.Run()
	if m.Mem[3] != 0 || m.Mem[5] != 7 {
		t.Fatalf("run state: mem[3]=%d mem[5]=%d", m.Mem[3], m.Mem[5])
	}
	if !m.UndoJournal() {
		t.Fatal("UndoJournal reported overflow on a short run")
	}
	m.CopyScalarsFrom(snap)
	for i, want := range snap.Mem {
		if m.Mem[i] != want {
			t.Errorf("mem[%d] = %d after undo, want %d", i, m.Mem[i], want)
		}
	}
	if m.Dyn != snap.Dyn || m.PC != snap.PC || m.Status != snap.Status {
		t.Errorf("scalars not reverted: dyn=%d pc=%d status=%v", m.Dyn, m.PC, m.Status)
	}
}

func TestJournalReplayInto(t *testing.T) {
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 9},
		{Op: isa.ST, Ra: 1, Rb: 0, Imm: 2},
		{Op: isa.ST, Ra: 1, Rb: 0, Imm: 8},
		{Op: isa.HALT},
	}
	m := New(code, 0, 16)
	sibling := m.Clone()
	m.BeginJournal()
	m.Run()
	if !m.ReplayJournalInto(sibling) {
		t.Fatal("ReplayJournalInto reported overflow")
	}
	sibling.CopyScalarsFrom(m)
	for i := range m.Mem {
		if sibling.Mem[i] != m.Mem[i] {
			t.Errorf("mem[%d]: sibling %d, source %d", i, sibling.Mem[i], m.Mem[i])
		}
	}
}

func TestJournalOverflowFallsBack(t *testing.T) {
	// A tight store loop overruns the journal bound (len(Mem)/4 min 64);
	// Undo must refuse and leave memory as the run left it.
	code := []isa.Instr{
		{Op: isa.LI, Rd: 1, Imm: 1},
		{Op: isa.ADD, Rd: 2, Ra: 2, Rb: 1},  // r2++
		{Op: isa.ST, Ra: 2, Rb: 0, Imm: 0},  // Mem[0] = r2
		{Op: isa.BLT, Ra: 2, Rb: 3, Imm: 1}, // loop while r2 < r3
		{Op: isa.HALT},
	}
	m := New(code, 0, 16)
	m.R[3] = 1000
	snap := m.Clone()
	m.BeginJournal()
	m.Run()
	if !m.JournalOverflowed() {
		t.Fatal("journal did not overflow after 1000 stores")
	}
	if m.UndoJournal() {
		t.Fatal("UndoJournal succeeded despite overflow")
	}
	if m.ReplayJournalInto(snap) {
		t.Fatal("ReplayJournalInto succeeded despite overflow")
	}
	m.RestoreFrom(snap) // the documented fallback
	if m.Mem[0] != 0 || m.Dyn != 0 {
		t.Errorf("fallback restore failed: mem[0]=%d dyn=%d", m.Mem[0], m.Dyn)
	}
	// The journal is reusable after the full restore.
	m.BeginJournal()
	if m.JournalOverflowed() {
		t.Error("overflow flag survived BeginJournal")
	}
}

func TestCloneDropsJournal(t *testing.T) {
	m := New([]isa.Instr{{Op: isa.HALT}}, 0, 16)
	m.BeginJournal()
	c := m.Clone()
	if c.journaling || len(c.journal) != 0 {
		t.Error("Clone inherited an active journal")
	}
}

func BenchmarkStepALU(b *testing.B) {
	code := []isa.Instr{
		{Op: isa.ADD, Rd: 1, Ra: 1, Rb: 2},
		{Op: isa.JMP, Imm: 0},
	}
	m := New(code, 0, 1)
	m.R[2] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

func BenchmarkRestoreFrom(b *testing.B) {
	src := New(nil, 0, 4096)
	dst := New(nil, 0, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.RestoreFrom(src)
	}
}
