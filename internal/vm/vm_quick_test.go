package vm

import (
	"testing"
	"testing/quick"

	"fastflip/internal/isa"
	"fastflip/internal/qcheck"
)

// exec1 runs a single instruction on fresh state and returns the machine.
func exec1(in isa.Instr, setup func(*Machine)) *Machine {
	m := New([]isa.Instr{in, {Op: isa.HALT}}, 0, 8)
	if setup != nil {
		setup(m)
	}
	m.Run()
	return m
}

// Property: ADD32 results always fit in 32 bits and equal mod-2^32 sums.
func TestADD32InvariantQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		m := exec1(isa.Instr{Op: isa.ADD32, Rd: 3, Ra: 1, Rb: 2}, func(m *Machine) {
			m.R[1], m.R[2] = a, b
		})
		got := m.R[3]
		return got <= 0xffffffff && uint32(got) == uint32(a)+uint32(b)
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: ROTR32 by n then by 32-n restores a 32-bit value.
func TestROTR32InverseQuick(t *testing.T) {
	f := func(v uint32, nRaw uint8) bool {
		n := int64(nRaw%31 + 1) // 1..31 so the inverse is also 1..31
		m := New([]isa.Instr{
			{Op: isa.ROTR32, Rd: 1, Ra: 1, Imm: n},
			{Op: isa.ROTR32, Rd: 1, Ra: 1, Imm: 32 - n},
			{Op: isa.HALT},
		}, 0, 1)
		m.R[1] = uint64(v)
		m.Run()
		return m.R[1] == uint64(v)
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: MOV/NOT are involutive in the expected ways.
func TestNotInvolutionQuick(t *testing.T) {
	f := func(v uint64) bool {
		m := New([]isa.Instr{
			{Op: isa.NOT, Rd: 1, Ra: 1},
			{Op: isa.NOT, Rd: 1, Ra: 1},
			{Op: isa.HALT},
		}, 0, 1)
		m.R[1] = v
		m.Run()
		return m.R[1] == v
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: a store followed by a load round-trips any word through any
// in-bounds address.
func TestMemRoundTripQuick(t *testing.T) {
	f := func(v uint64, addrRaw uint8) bool {
		addr := int64(addrRaw % 8)
		m := New([]isa.Instr{
			{Op: isa.ST, Ra: 1, Rb: 0, Imm: addr},
			{Op: isa.LD, Rd: 2, Ra: 0, Imm: addr},
			{Op: isa.HALT},
		}, 0, 8)
		m.R[1] = v
		m.Run()
		return m.R[2] == v && m.Mem[addr] == v
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: Clone + RestoreFrom is the identity on architectural state.
func TestCloneRestoreIdentityQuick(t *testing.T) {
	f := func(r1, f1, mem0 uint64, pc uint8) bool {
		src := New(make([]isa.Instr, 16), int(pc%16), 4)
		src.R[1], src.F[1], src.Mem[0] = r1, f1, mem0
		src.Stack = append(src.Stack, int(pc))
		dst := New(nil, 0, 4)
		dst.RestoreFrom(src.Clone())
		return dst.R[1] == r1 && dst.F[1] == f1 && dst.Mem[0] == mem0 &&
			dst.PC == src.PC && len(dst.Stack) == 1 && dst.Stack[0] == int(pc)
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}

// Property: bitflip injection is always an involution on registers.
func TestFlipInvolutionQuick(t *testing.T) {
	f := func(v uint64, reg, bit uint8) bool {
		m := New(nil, 0, 1)
		r := int(reg % isa.NumRegs)
		b := uint(bit % 64)
		m.R[r] = v
		m.FlipInt(r, b)
		changed := m.R[r] != v
		m.FlipInt(r, b)
		return changed && m.R[r] == v
	}
	if err := quick.Check(f, qcheck.Config(t, 0)); err != nil {
		t.Error(err)
	}
}
