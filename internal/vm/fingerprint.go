package vm

import "fastflip/internal/mix"

// Fingerprint hashes the architecturally visible machine state — dynamic
// instruction count, PC, status, register files, call stack, and memory —
// into 64 bits. It is safe to call on a machine in any state, including
// one abandoned mid-experiment by a panic, and is used to tag quarantined
// machines in poison records: two panics that wedge at the same state
// produce the same fingerprint, so repeat offenders are recognizable
// across campaign runs.
func (m *Machine) Fingerprint() uint64 {
	h := mix.Splitmix64(m.Dyn)
	h = mix.Fold(h, uint64(m.PC))
	h = mix.Fold(h, uint64(m.Status))
	h = mix.Fold(h, uint64(m.Crash))
	for _, v := range m.R {
		h = mix.Fold(h, v)
	}
	for _, v := range m.F {
		h = mix.Fold(h, v)
	}
	for _, v := range m.Stack {
		h = mix.Fold(h, uint64(v))
	}
	for _, v := range m.Mem {
		h = mix.Fold(h, v)
	}
	return h
}
