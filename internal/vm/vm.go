// Package vm implements the architectural simulator for the fastflip ISA.
//
// The Machine is a deterministic interpreter with the architectural state
// the error model cares about: integer and floating-point register files,
// word-addressed memory, a call stack, and a dynamic instruction counter.
// It detects the paper's "detected" outcome classes natively: crashes
// (invalid memory access, division error, bad control flow) and timeouts
// (dynamic instruction count exceeding a limit). Checkpoint/restore via
// Clone supports both per-section injection and fast re-execution.
package vm

import (
	"fmt"
	"math"

	"fastflip/internal/isa"
)

// Status is the execution state of a Machine.
type Status uint8

const (
	Running Status = iota
	Halted
	Crashed
	TimedOut
)

func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Halted:
		return "halted"
	case Crashed:
		return "crashed"
	case TimedOut:
		return "timed out"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// CrashKind classifies why a Machine crashed. All crashes are "detected"
// outcomes in the paper's taxonomy: the OS or runtime observes them.
type CrashKind uint8

const (
	CrashNone CrashKind = iota
	CrashMemOOB
	CrashDivZero
	CrashPCOOB
	CrashStackOverflow
	CrashStackUnderflow
	CrashBadInstr
)

func (k CrashKind) String() string {
	switch k {
	case CrashNone:
		return "none"
	case CrashMemOOB:
		return "memory access out of bounds"
	case CrashDivZero:
		return "division by zero"
	case CrashPCOOB:
		return "program counter out of bounds"
	case CrashStackOverflow:
		return "call stack overflow"
	case CrashStackUnderflow:
		return "return with empty call stack"
	case CrashBadInstr:
		return "undefined instruction"
	}
	return fmt.Sprintf("crash(%d)", uint8(k))
}

// EventKind is what Step reports to its driver.
type EventKind uint8

const (
	EvNone EventKind = iota
	EvHalt
	EvCrash
	EvTimeout
	EvSecBeg
	EvSecEnd
	EvROIBeg
	EvROIEnd
)

// Event is the result of executing one instruction.
type Event struct {
	Kind EventKind
	Sec  int // section static ID for EvSecBeg/EvSecEnd
}

// maxCallDepth bounds the call stack; exceeding it is a crash (the
// simulated analogue of a stack overflow caused by a corrupted branch).
const maxCallDepth = 1024

// Machine is one simulated CPU plus memory.
type Machine struct {
	Code []isa.Instr

	R [isa.NumRegs]uint64 // integer registers
	F [isa.NumRegs]uint64 // float registers, stored as raw bits so bitflips are uniform

	Mem   []uint64
	PC    int
	Stack []int // return addresses

	Dyn    uint64 // number of executed instructions
	MaxDyn uint64 // timeout threshold; 0 disables the check

	Status Status
	Crash  CrashKind
}

// New returns a machine for the linked code with memWords words of zeroed
// memory, positioned at the entry point.
func New(code []isa.Instr, entry int, memWords int) *Machine {
	return &Machine{
		Code: code,
		Mem:  make([]uint64, memWords),
		PC:   entry,
	}
}

// Clone returns a deep copy of the machine. The instruction slice is shared
// (it is immutable during execution); memory and the call stack are copied.
func (m *Machine) Clone() *Machine {
	c := *m
	c.Mem = make([]uint64, len(m.Mem))
	copy(c.Mem, m.Mem)
	c.Stack = make([]int, len(m.Stack))
	copy(c.Stack, m.Stack)
	return &c
}

// RestoreFrom overwrites m's state from src without allocating when the
// memory sizes match. Code is shared.
func (m *Machine) RestoreFrom(src *Machine) {
	mem, stack := m.Mem, m.Stack
	*m = *src
	if len(mem) == len(src.Mem) {
		copy(mem, src.Mem)
		m.Mem = mem
	} else {
		m.Mem = make([]uint64, len(src.Mem))
		copy(m.Mem, src.Mem)
	}
	m.Stack = append(stack[:0], src.Stack...)
}

// Fl returns float register f as a float64.
func (m *Machine) Fl(f int) float64 { return math.Float64frombits(m.F[f]) }

// SetFl sets float register f from a float64.
func (m *Machine) SetFl(f int, v float64) { m.F[f] = math.Float64bits(v) }

// FlipInt flips one bit of an integer register.
func (m *Machine) FlipInt(reg int, bit uint) { m.R[reg] ^= 1 << bit }

// FlipFloat flips one bit of a float register.
func (m *Machine) FlipFloat(reg int, bit uint) { m.F[reg] ^= 1 << bit }

func (m *Machine) crash(k CrashKind) Event {
	m.Status = Crashed
	m.Crash = k
	return Event{Kind: EvCrash}
}

// Step executes one instruction and reports the resulting event. Calling
// Step on a non-running machine returns the terminal event again without
// executing anything.
func (m *Machine) Step() Event {
	switch m.Status {
	case Halted:
		return Event{Kind: EvHalt}
	case Crashed:
		return Event{Kind: EvCrash}
	case TimedOut:
		return Event{Kind: EvTimeout}
	}
	if m.PC < 0 || m.PC >= len(m.Code) {
		return m.crash(CrashPCOOB)
	}
	if m.MaxDyn > 0 && m.Dyn >= m.MaxDyn {
		m.Status = TimedOut
		return Event{Kind: EvTimeout}
	}

	in := m.Code[m.PC]
	m.Dyn++
	next := m.PC + 1
	ev := Event{}

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.Status = Halted
		m.PC = next
		return Event{Kind: EvHalt}

	case isa.ADD:
		m.R[in.Rd] = m.R[in.Ra] + m.R[in.Rb]
	case isa.SUB:
		m.R[in.Rd] = m.R[in.Ra] - m.R[in.Rb]
	case isa.MUL:
		m.R[in.Rd] = m.R[in.Ra] * m.R[in.Rb]
	case isa.DIV:
		if m.R[in.Rb] == 0 {
			return m.crash(CrashDivZero)
		}
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) / int64(m.R[in.Rb]))
	case isa.REM:
		if m.R[in.Rb] == 0 {
			return m.crash(CrashDivZero)
		}
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) % int64(m.R[in.Rb]))
	case isa.AND:
		m.R[in.Rd] = m.R[in.Ra] & m.R[in.Rb]
	case isa.OR:
		m.R[in.Rd] = m.R[in.Ra] | m.R[in.Rb]
	case isa.XOR:
		m.R[in.Rd] = m.R[in.Ra] ^ m.R[in.Rb]
	case isa.SHL:
		m.R[in.Rd] = m.R[in.Ra] << (m.R[in.Rb] & 63)
	case isa.SHR:
		m.R[in.Rd] = m.R[in.Ra] >> (m.R[in.Rb] & 63)
	case isa.SRA:
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) >> (m.R[in.Rb] & 63))
	case isa.SLT:
		m.R[in.Rd] = b2u(int64(m.R[in.Ra]) < int64(m.R[in.Rb]))
	case isa.SLTU:
		m.R[in.Rd] = b2u(m.R[in.Ra] < m.R[in.Rb])

	case isa.ADDI:
		m.R[in.Rd] = m.R[in.Ra] + uint64(in.Imm)
	case isa.MULI:
		m.R[in.Rd] = m.R[in.Ra] * uint64(in.Imm)
	case isa.ANDI:
		m.R[in.Rd] = m.R[in.Ra] & uint64(in.Imm)
	case isa.ORI:
		m.R[in.Rd] = m.R[in.Ra] | uint64(in.Imm)
	case isa.XORI:
		m.R[in.Rd] = m.R[in.Ra] ^ uint64(in.Imm)
	case isa.SHLI:
		m.R[in.Rd] = m.R[in.Ra] << (uint64(in.Imm) & 63)
	case isa.SHRI:
		m.R[in.Rd] = m.R[in.Ra] >> (uint64(in.Imm) & 63)
	case isa.SRAI:
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) >> (uint64(in.Imm) & 63))

	case isa.MOV:
		m.R[in.Rd] = m.R[in.Ra]
	case isa.NOT:
		m.R[in.Rd] = ^m.R[in.Ra]
	case isa.NEG:
		m.R[in.Rd] = -m.R[in.Ra]
	case isa.LI:
		m.R[in.Rd] = uint64(in.Imm)

	case isa.ADD32:
		m.R[in.Rd] = (m.R[in.Ra] + m.R[in.Rb]) & 0xffffffff
	case isa.ROTR32:
		x := uint32(m.R[in.Ra])
		s := uint(in.Imm) & 31
		m.R[in.Rd] = uint64(x>>s | x<<(32-s))
	case isa.NOT32:
		m.R[in.Rd] = ^m.R[in.Ra] & 0xffffffff

	case isa.FADD:
		m.setF(in.Rd, m.f(in.Ra)+m.f(in.Rb))
	case isa.FSUB:
		m.setF(in.Rd, m.f(in.Ra)-m.f(in.Rb))
	case isa.FMUL:
		m.setF(in.Rd, m.f(in.Ra)*m.f(in.Rb))
	case isa.FDIV:
		m.setF(in.Rd, m.f(in.Ra)/m.f(in.Rb))
	case isa.FMIN:
		m.setF(in.Rd, math.Min(m.f(in.Ra), m.f(in.Rb)))
	case isa.FMAX:
		m.setF(in.Rd, math.Max(m.f(in.Ra), m.f(in.Rb)))

	case isa.FSQRT:
		m.setF(in.Rd, math.Sqrt(m.f(in.Ra)))
	case isa.FNEG:
		m.setF(in.Rd, -m.f(in.Ra))
	case isa.FABS:
		m.setF(in.Rd, math.Abs(m.f(in.Ra)))
	case isa.FEXP:
		m.setF(in.Rd, math.Exp(m.f(in.Ra)))
	case isa.FLN:
		m.setF(in.Rd, math.Log(m.f(in.Ra)))
	case isa.FMOV:
		m.F[in.Rd] = m.F[in.Ra]

	case isa.FLI:
		m.F[in.Rd] = uint64(in.Imm)

	case isa.ITOF:
		m.setF(in.Rd, float64(int64(m.R[in.Ra])))
	case isa.FTOI:
		m.R[in.Rd] = ftoi(m.f(in.Ra))
	case isa.FBITS:
		m.R[in.Rd] = m.F[in.Ra]
	case isa.BITSF:
		m.F[in.Rd] = m.R[in.Ra]

	case isa.LD:
		addr := m.R[in.Ra] + uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		m.R[in.Rd] = m.Mem[addr]
	case isa.ST:
		addr := m.R[in.Rb] + uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		m.Mem[addr] = m.R[in.Ra]
	case isa.FLD:
		addr := m.R[in.Ra] + uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		m.F[in.Rd] = m.Mem[addr]
	case isa.FST:
		addr := m.R[in.Rb] + uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		m.Mem[addr] = m.F[in.Ra]

	case isa.JMP:
		next = int(in.Imm)
	case isa.BEQ:
		if int64(m.R[in.Ra]) == int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BNE:
		if int64(m.R[in.Ra]) != int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BLT:
		if int64(m.R[in.Ra]) < int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BLE:
		if int64(m.R[in.Ra]) <= int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BGT:
		if int64(m.R[in.Ra]) > int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BGE:
		if int64(m.R[in.Ra]) >= int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.FBEQ:
		if m.f(in.Ra) == m.f(in.Rb) {
			next = int(in.Imm)
		}
	case isa.FBNE:
		if m.f(in.Ra) != m.f(in.Rb) {
			next = int(in.Imm)
		}
	case isa.FBLT:
		if m.f(in.Ra) < m.f(in.Rb) {
			next = int(in.Imm)
		}
	case isa.FBLE:
		if m.f(in.Ra) <= m.f(in.Rb) {
			next = int(in.Imm)
		}

	case isa.CALL:
		if len(m.Stack) >= maxCallDepth {
			return m.crash(CrashStackOverflow)
		}
		m.Stack = append(m.Stack, next)
		next = int(in.Imm)
	case isa.RET:
		if len(m.Stack) == 0 {
			return m.crash(CrashStackUnderflow)
		}
		next = m.Stack[len(m.Stack)-1]
		m.Stack = m.Stack[:len(m.Stack)-1]

	case isa.SECBEG:
		ev = Event{Kind: EvSecBeg, Sec: int(in.Imm)}
	case isa.SECEND:
		ev = Event{Kind: EvSecEnd, Sec: int(in.Imm)}
	case isa.ROIBEG:
		ev = Event{Kind: EvROIBeg}
	case isa.ROIEND:
		ev = Event{Kind: EvROIEnd}

	default:
		return m.crash(CrashBadInstr)
	}

	m.PC = next
	return ev
}

// Run executes until the machine leaves the Running state and returns the
// terminal event.
func (m *Machine) Run() Event {
	for {
		ev := m.Step()
		switch ev.Kind {
		case EvHalt, EvCrash, EvTimeout:
			return ev
		}
	}
}

// RunUntilDyn executes until the dynamic instruction counter reaches n, so
// the next Step would execute dynamic instruction index n. It returns early
// with the terminal event if execution ends first, otherwise an EvNone.
func (m *Machine) RunUntilDyn(n uint64) Event {
	for m.Dyn < n {
		ev := m.Step()
		switch ev.Kind {
		case EvHalt, EvCrash, EvTimeout:
			return ev
		}
	}
	return Event{}
}

func (m *Machine) f(r uint8) float64       { return math.Float64frombits(m.F[r]) }
func (m *Machine) setF(r uint8, v float64) { m.F[r] = math.Float64bits(v) }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ftoi converts like x86 CVTTSD2SI: truncate toward zero; NaN and values
// outside the int64 range produce the "integer indefinite" value minInt64.
func ftoi(v float64) uint64 {
	if math.IsNaN(v) || v >= math.MaxInt64 || v < math.MinInt64 {
		return 1 << 63
	}
	return uint64(int64(v))
}
