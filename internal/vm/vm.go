// Package vm implements the architectural simulator for the fastflip ISA.
//
// The Machine is a deterministic interpreter with the architectural state
// the error model cares about: integer and floating-point register files,
// word-addressed memory, a call stack, and a dynamic instruction counter.
// It detects the paper's "detected" outcome classes natively: crashes
// (invalid memory access, division error, bad control flow) and timeouts
// (dynamic instruction count exceeding a limit). Checkpoint/restore via
// Clone supports both per-section injection and fast re-execution, and an
// optional write journal (BeginJournal) lets a forked execution be
// reverted to its fork point by undoing only the memory words it touched.
package vm

import (
	"fmt"
	"math"

	"fastflip/internal/isa"
)

// Status is the execution state of a Machine.
type Status uint8

const (
	Running Status = iota
	Halted
	Crashed
	TimedOut
)

func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Halted:
		return "halted"
	case Crashed:
		return "crashed"
	case TimedOut:
		return "timed out"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// CrashKind classifies why a Machine crashed. All crashes are "detected"
// outcomes in the paper's taxonomy: the OS or runtime observes them.
type CrashKind uint8

const (
	CrashNone CrashKind = iota
	CrashMemOOB
	CrashDivZero
	CrashPCOOB
	CrashStackOverflow
	CrashStackUnderflow
	CrashBadInstr
	// CrashTrap is a hardening detector firing: a TRAP instruction reached
	// after a duplicate-and-compare mismatch (internal/harden). Appended at
	// the end so earlier kinds keep their encoded values.
	CrashTrap
)

func (k CrashKind) String() string {
	switch k {
	case CrashNone:
		return "none"
	case CrashMemOOB:
		return "memory access out of bounds"
	case CrashDivZero:
		return "division by zero"
	case CrashPCOOB:
		return "program counter out of bounds"
	case CrashStackOverflow:
		return "call stack overflow"
	case CrashStackUnderflow:
		return "return with empty call stack"
	case CrashBadInstr:
		return "undefined instruction"
	case CrashTrap:
		return "detector trap"
	}
	return fmt.Sprintf("crash(%d)", uint8(k))
}

// EventKind is what Step reports to its driver.
type EventKind uint8

const (
	EvNone EventKind = iota
	EvHalt
	EvCrash
	EvTimeout
	EvSecBeg
	EvSecEnd
	EvROIBeg
	EvROIEnd
)

// Event is the result of executing one instruction.
type Event struct {
	Kind EventKind
	Sec  int // section static ID for EvSecBeg/EvSecEnd
}

// maxCallDepth bounds the call stack; exceeding it is a crash (the
// simulated analogue of a stack overflow caused by a corrupted branch).
const maxCallDepth = 1024

// Machine is one simulated CPU plus memory.
type Machine struct {
	Code []isa.Instr

	R [isa.NumRegs]uint64 // integer registers
	F [isa.NumRegs]uint64 // float registers, stored as raw bits so bitflips are uniform

	Mem   []uint64
	PC    int
	Stack []int // return addresses

	Dyn    uint64 // number of executed instructions
	MaxDyn uint64 // timeout threshold; 0 disables the check

	// MemLimit, when nonzero, bounds the register-addressed loads and
	// stores (LD/ST/FLD/FST) below len(Mem); the absolute-addressed
	// detector ops (LDA/STA/FLDA/FSTA) always address all of Mem. Hardened
	// programs carve their spill slots out of the space above the limit so
	// a fault-deflected address crashes exactly where the original program
	// would have, instead of silently landing in a slot.
	MemLimit int

	Status Status
	Crash  CrashKind

	// Write journal (BeginJournal): an undo log of overwritten memory
	// words, so a forked execution can be reverted to its fork point
	// without copying all of Mem.
	journal    []memWrite
	journaling bool
	overflowed bool
}

// memWrite is one journaled memory write: the word's value before the
// write. The pre-images suffice to undo the run in reverse, and the
// addresses alone suffice to redo it into another machine.
type memWrite struct {
	addr uint64
	prev uint64
}

// New returns a machine for the linked code with memWords words of zeroed
// memory, positioned at the entry point.
func New(code []isa.Instr, entry int, memWords int) *Machine {
	return &Machine{
		Code: code,
		Mem:  make([]uint64, memWords),
		PC:   entry,
	}
}

// Clone returns a deep copy of the machine. The instruction slice is shared
// (it is immutable during execution); memory and the call stack are copied.
// The clone starts with no journal regardless of m's journaling state.
func (m *Machine) Clone() *Machine {
	c := *m
	c.Mem = make([]uint64, len(m.Mem))
	copy(c.Mem, m.Mem)
	c.Stack = make([]int, len(m.Stack))
	copy(c.Stack, m.Stack)
	c.journal, c.journaling, c.overflowed = nil, false, false
	return &c
}

// RestoreFrom overwrites m's state from src without allocating when the
// memory sizes match. Code is shared. Any journal m was keeping is reset:
// a full restore supersedes it.
func (m *Machine) RestoreFrom(src *Machine) {
	mem, stack, journal := m.Mem, m.Stack, m.journal
	*m = *src
	if len(mem) == len(src.Mem) {
		copy(mem, src.Mem)
		m.Mem = mem
	} else {
		m.Mem = make([]uint64, len(src.Mem))
		copy(m.Mem, src.Mem)
	}
	m.Stack = append(stack[:0], src.Stack...)
	m.journal, m.journaling, m.overflowed = journal[:0], false, false
}

// CopyScalarsFrom copies every piece of architectural state except memory
// from src: registers, PC, call stack, counters, and status. Combined with
// UndoJournal (or ReplayJournalInto on the source side) it restores a fork
// to its fork point without touching untouched memory.
func (m *Machine) CopyScalarsFrom(src *Machine) {
	m.R = src.R
	m.F = src.F
	m.PC = src.PC
	m.Stack = append(m.Stack[:0], src.Stack...)
	m.Dyn = src.Dyn
	m.MaxDyn = src.MaxDyn
	m.Status = src.Status
	m.Crash = src.Crash
}

// journalCap bounds the journal: past this many entries an undo walk costs
// more than a flat memory copy, so journaling turns itself off and the
// caller falls back to RestoreFrom.
func (m *Machine) journalCap() int {
	if c := len(m.Mem) / 4; c > 64 {
		return c
	}
	return 64
}

// BeginJournal resets the journal and starts recording the pre-image of
// every memory write, so the run from this point can be undone by
// UndoJournal or replayed into a sibling by ReplayJournalInto.
func (m *Machine) BeginJournal() {
	m.journal = m.journal[:0]
	m.journaling = true
	m.overflowed = false
}

// EndJournal stops recording without reverting anything.
func (m *Machine) EndJournal() { m.journaling = false }

// JournalOverflowed reports whether the journal hit its size bound since
// BeginJournal; if so Undo/Replay refuse and the caller must full-restore.
func (m *Machine) JournalOverflowed() bool { return m.overflowed }

// UndoJournal reverts the journaled memory writes newest-first and stops
// journaling, returning false (with memory untouched) if the journal
// overflowed and the undo log is incomplete.
func (m *Machine) UndoJournal() bool {
	m.journaling = false
	if m.overflowed {
		return false
	}
	for i := len(m.journal) - 1; i >= 0; i-- {
		w := m.journal[i]
		m.Mem[w.addr] = w.prev
	}
	m.journal = m.journal[:0]
	return true
}

// ReplayJournalInto copies m's current value of every journaled address
// into dst.Mem, bringing a dst that matched m at BeginJournal up to date
// without a full memory copy. Returns false if the journal overflowed (dst
// is untouched; the caller must full-restore).
func (m *Machine) ReplayJournalInto(dst *Machine) bool {
	if m.overflowed {
		return false
	}
	for _, w := range m.journal {
		dst.Mem[w.addr] = m.Mem[w.addr]
	}
	return true
}

// recordWrite journals the pre-image of Mem[addr], disabling the journal
// at its size bound.
func (m *Machine) recordWrite(addr uint64) {
	if len(m.journal) >= m.journalCap() {
		m.journaling = false
		m.overflowed = true
		return
	}
	m.journal = append(m.journal, memWrite{addr: addr, prev: m.Mem[addr]})
}

// memLimit returns the exclusive address bound of the register-addressed
// memory ops.
func (m *Machine) memLimit() uint64 {
	if m.MemLimit > 0 && m.MemLimit <= len(m.Mem) {
		return uint64(m.MemLimit)
	}
	return uint64(len(m.Mem))
}

// Fl returns float register f as a float64.
func (m *Machine) Fl(f int) float64 { return math.Float64frombits(m.F[f]) }

// SetFl sets float register f from a float64.
func (m *Machine) SetFl(f int, v float64) { m.F[f] = math.Float64bits(v) }

// FlipInt flips one bit of an integer register.
func (m *Machine) FlipInt(reg int, bit uint) { m.R[reg] ^= 1 << bit }

// FlipFloat flips one bit of a float register.
func (m *Machine) FlipFloat(reg int, bit uint) { m.F[reg] ^= 1 << bit }

func (m *Machine) crash(k CrashKind) Event {
	m.Status = Crashed
	m.Crash = k
	return Event{Kind: EvCrash}
}

// Step executes one instruction and reports the resulting event. Calling
// Step on a non-running machine returns the terminal event again without
// executing anything.
func (m *Machine) Step() Event {
	switch m.Status {
	case Halted:
		return Event{Kind: EvHalt}
	case Crashed:
		return Event{Kind: EvCrash}
	case TimedOut:
		return Event{Kind: EvTimeout}
	}
	if m.PC < 0 || m.PC >= len(m.Code) {
		return m.crash(CrashPCOOB)
	}
	if m.MaxDyn > 0 && m.Dyn >= m.MaxDyn {
		m.Status = TimedOut
		return Event{Kind: EvTimeout}
	}

	in := m.Code[m.PC]
	m.Dyn++
	next := m.PC + 1
	ev := Event{}

	switch in.Op {
	case isa.NOP:
	case isa.HALT:
		m.Status = Halted
		m.PC = next
		return Event{Kind: EvHalt}

	case isa.ADD:
		m.R[in.Rd] = m.R[in.Ra] + m.R[in.Rb]
	case isa.SUB:
		m.R[in.Rd] = m.R[in.Ra] - m.R[in.Rb]
	case isa.MUL:
		m.R[in.Rd] = m.R[in.Ra] * m.R[in.Rb]
	case isa.DIV:
		if m.R[in.Rb] == 0 {
			return m.crash(CrashDivZero)
		}
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) / int64(m.R[in.Rb]))
	case isa.REM:
		if m.R[in.Rb] == 0 {
			return m.crash(CrashDivZero)
		}
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) % int64(m.R[in.Rb]))
	case isa.AND:
		m.R[in.Rd] = m.R[in.Ra] & m.R[in.Rb]
	case isa.OR:
		m.R[in.Rd] = m.R[in.Ra] | m.R[in.Rb]
	case isa.XOR:
		m.R[in.Rd] = m.R[in.Ra] ^ m.R[in.Rb]
	case isa.SHL:
		m.R[in.Rd] = m.R[in.Ra] << (m.R[in.Rb] & 63)
	case isa.SHR:
		m.R[in.Rd] = m.R[in.Ra] >> (m.R[in.Rb] & 63)
	case isa.SRA:
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) >> (m.R[in.Rb] & 63))
	case isa.SLT:
		m.R[in.Rd] = b2u(int64(m.R[in.Ra]) < int64(m.R[in.Rb]))
	case isa.SLTU:
		m.R[in.Rd] = b2u(m.R[in.Ra] < m.R[in.Rb])

	case isa.ADDI:
		m.R[in.Rd] = m.R[in.Ra] + uint64(in.Imm)
	case isa.MULI:
		m.R[in.Rd] = m.R[in.Ra] * uint64(in.Imm)
	case isa.ANDI:
		m.R[in.Rd] = m.R[in.Ra] & uint64(in.Imm)
	case isa.ORI:
		m.R[in.Rd] = m.R[in.Ra] | uint64(in.Imm)
	case isa.XORI:
		m.R[in.Rd] = m.R[in.Ra] ^ uint64(in.Imm)
	case isa.SHLI:
		m.R[in.Rd] = m.R[in.Ra] << (uint64(in.Imm) & 63)
	case isa.SHRI:
		m.R[in.Rd] = m.R[in.Ra] >> (uint64(in.Imm) & 63)
	case isa.SRAI:
		m.R[in.Rd] = uint64(int64(m.R[in.Ra]) >> (uint64(in.Imm) & 63))

	case isa.MOV:
		m.R[in.Rd] = m.R[in.Ra]
	case isa.NOT:
		m.R[in.Rd] = ^m.R[in.Ra]
	case isa.NEG:
		m.R[in.Rd] = -m.R[in.Ra]
	case isa.LI:
		m.R[in.Rd] = uint64(in.Imm)

	case isa.ADD32:
		m.R[in.Rd] = (m.R[in.Ra] + m.R[in.Rb]) & 0xffffffff
	case isa.ROTR32:
		x := uint32(m.R[in.Ra])
		s := uint(in.Imm) & 31
		m.R[in.Rd] = uint64(x>>s | x<<(32-s))
	case isa.NOT32:
		m.R[in.Rd] = ^m.R[in.Ra] & 0xffffffff

	case isa.FADD:
		m.setF(in.Rd, m.f(in.Ra)+m.f(in.Rb))
	case isa.FSUB:
		m.setF(in.Rd, m.f(in.Ra)-m.f(in.Rb))
	case isa.FMUL:
		m.setF(in.Rd, m.f(in.Ra)*m.f(in.Rb))
	case isa.FDIV:
		m.setF(in.Rd, m.f(in.Ra)/m.f(in.Rb))
	case isa.FMIN:
		m.setF(in.Rd, math.Min(m.f(in.Ra), m.f(in.Rb)))
	case isa.FMAX:
		m.setF(in.Rd, math.Max(m.f(in.Ra), m.f(in.Rb)))

	case isa.FSQRT:
		m.setF(in.Rd, math.Sqrt(m.f(in.Ra)))
	case isa.FNEG:
		m.setF(in.Rd, -m.f(in.Ra))
	case isa.FABS:
		m.setF(in.Rd, math.Abs(m.f(in.Ra)))
	case isa.FEXP:
		m.setF(in.Rd, math.Exp(m.f(in.Ra)))
	case isa.FLN:
		m.setF(in.Rd, math.Log(m.f(in.Ra)))
	case isa.FMOV:
		m.F[in.Rd] = m.F[in.Ra]

	case isa.FLI:
		m.F[in.Rd] = uint64(in.Imm)

	case isa.ITOF:
		m.setF(in.Rd, float64(int64(m.R[in.Ra])))
	case isa.FTOI:
		m.R[in.Rd] = ftoi(m.f(in.Ra))
	case isa.FBITS:
		m.R[in.Rd] = m.F[in.Ra]
	case isa.BITSF:
		m.F[in.Rd] = m.R[in.Ra]

	case isa.LD:
		addr := m.R[in.Ra] + uint64(in.Imm)
		if addr >= m.memLimit() {
			return m.crash(CrashMemOOB)
		}
		m.R[in.Rd] = m.Mem[addr]
	case isa.ST:
		addr := m.R[in.Rb] + uint64(in.Imm)
		if addr >= m.memLimit() {
			return m.crash(CrashMemOOB)
		}
		if m.journaling {
			m.recordWrite(addr)
		}
		m.Mem[addr] = m.R[in.Ra]
	case isa.FLD:
		addr := m.R[in.Ra] + uint64(in.Imm)
		if addr >= m.memLimit() {
			return m.crash(CrashMemOOB)
		}
		m.F[in.Rd] = m.Mem[addr]
	case isa.FST:
		addr := m.R[in.Rb] + uint64(in.Imm)
		if addr >= m.memLimit() {
			return m.crash(CrashMemOOB)
		}
		if m.journaling {
			m.recordWrite(addr)
		}
		m.Mem[addr] = m.F[in.Ra]

	case isa.JMP:
		next = int(in.Imm)
	case isa.BEQ:
		if int64(m.R[in.Ra]) == int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BNE:
		if int64(m.R[in.Ra]) != int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BLT:
		if int64(m.R[in.Ra]) < int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BLE:
		if int64(m.R[in.Ra]) <= int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BGT:
		if int64(m.R[in.Ra]) > int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.BGE:
		if int64(m.R[in.Ra]) >= int64(m.R[in.Rb]) {
			next = int(in.Imm)
		}
	case isa.FBEQ:
		if m.f(in.Ra) == m.f(in.Rb) {
			next = int(in.Imm)
		}
	case isa.FBNE:
		if m.f(in.Ra) != m.f(in.Rb) {
			next = int(in.Imm)
		}
	case isa.FBLT:
		if m.f(in.Ra) < m.f(in.Rb) {
			next = int(in.Imm)
		}
	case isa.FBLE:
		if m.f(in.Ra) <= m.f(in.Rb) {
			next = int(in.Imm)
		}

	case isa.CALL:
		if len(m.Stack) >= maxCallDepth {
			return m.crash(CrashStackOverflow)
		}
		m.Stack = append(m.Stack, next)
		next = int(in.Imm)
	case isa.RET:
		if len(m.Stack) == 0 {
			return m.crash(CrashStackUnderflow)
		}
		next = m.Stack[len(m.Stack)-1]
		m.Stack = m.Stack[:len(m.Stack)-1]

	case isa.TRAP:
		return m.crash(CrashTrap)
	case isa.LDA:
		addr := uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		m.R[in.Rd] = m.Mem[addr]
	case isa.STA:
		addr := uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		if m.journaling {
			m.recordWrite(addr)
		}
		m.Mem[addr] = m.R[in.Ra]
	case isa.FLDA:
		addr := uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		m.F[in.Rd] = m.Mem[addr]
	case isa.FSTA:
		addr := uint64(in.Imm)
		if addr >= uint64(len(m.Mem)) {
			return m.crash(CrashMemOOB)
		}
		if m.journaling {
			m.recordWrite(addr)
		}
		m.Mem[addr] = m.F[in.Ra]

	case isa.SECBEG:
		ev = Event{Kind: EvSecBeg, Sec: int(in.Imm)}
	case isa.SECEND:
		ev = Event{Kind: EvSecEnd, Sec: int(in.Imm)}
	case isa.ROIBEG:
		ev = Event{Kind: EvROIBeg}
	case isa.ROIEND:
		ev = Event{Kind: EvROIEnd}

	default:
		return m.crash(CrashBadInstr)
	}

	m.PC = next
	return ev
}

// Run executes until the machine leaves the Running state and returns the
// terminal event.
func (m *Machine) Run() Event {
	for {
		ev := m.Step()
		switch ev.Kind {
		case EvHalt, EvCrash, EvTimeout:
			return ev
		}
	}
}

// RunUntilDyn executes until the dynamic instruction counter reaches n, so
// the next Step would execute dynamic instruction index n. It returns early
// with the terminal event if execution ends first, otherwise an EvNone.
func (m *Machine) RunUntilDyn(n uint64) Event {
	for m.Dyn < n {
		ev := m.Step()
		switch ev.Kind {
		case EvHalt, EvCrash, EvTimeout:
			return ev
		}
	}
	return Event{}
}

func (m *Machine) f(r uint8) float64       { return math.Float64frombits(m.F[r]) }
func (m *Machine) setF(r uint8, v float64) { m.F[r] = math.Float64bits(v) }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ftoi converts like x86 CVTTSD2SI: truncate toward zero; NaN and values
// outside the int64 range produce the "integer indefinite" value minInt64.
func ftoi(v float64) uint64 {
	if math.IsNaN(v) || v >= math.MaxInt64 || v < math.MinInt64 {
		return 1 << 63
	}
	return uint64(int64(v))
}
