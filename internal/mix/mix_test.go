package mix

import (
	"math/bits"
	"testing"
)

// TestSplitmix64KnownAnswers pins the function to Vigna's reference
// splitmix64.c: Splitmix64(x) equals the first next() output of a
// generator seeded with x. The 0 and 1 vectors are the classic published
// values; the rest freeze the implementation against accidental constant
// or shift edits (every downstream stream seed would silently change).
func TestSplitmix64KnownAnswers(t *testing.T) {
	vectors := []struct{ in, want uint64 }{
		{0, 0xe220a8397b1dcdaf},
		{1, 0x910a2dec89025cc1},
		{2, 0x975835de1c9756ce},
		{0x9e3779b97f4a7c15, 0x6e789e6aa1b965f4},
		{0xdeadbeef, 0x4adfb90f68c9eb9b},
	}
	for _, v := range vectors {
		if got := Splitmix64(v.in); got != v.want {
			t.Errorf("Splitmix64(%#x) = %#016x, want %#016x", v.in, got, v.want)
		}
	}
}

// TestSplitmix64Avalanche: flipping any single input bit must flip close
// to half the output bits. The bound is loose (16..48 of 64) — it catches
// a broken mixer, not a subtle bias.
func TestSplitmix64Avalanche(t *testing.T) {
	inputs := []uint64{0, 1, 42, 0x123456789abcdef0, ^uint64(0)}
	for _, x := range inputs {
		base := Splitmix64(x)
		for bit := 0; bit < 64; bit++ {
			diff := bits.OnesCount64(base ^ Splitmix64(x^(1<<bit)))
			if diff < 16 || diff > 48 {
				t.Errorf("Splitmix64(%#x) bit %d: avalanche flipped %d/64 output bits", x, bit, diff)
			}
		}
	}
}

// TestSplitmix64InjectiveSample: splitmix64 is a bijection on uint64;
// sample a dense range plus a sparse one and require no collisions.
func TestSplitmix64InjectiveSample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<17)
	check := func(x uint64) {
		h := Splitmix64(x)
		if prev, dup := seen[h]; dup && prev != x {
			t.Fatalf("collision: Splitmix64(%#x) == Splitmix64(%#x) == %#x", prev, x, h)
		}
		seen[h] = x
	}
	for x := uint64(0); x < 1<<16; x++ {
		check(x)
	}
	for x := uint64(0); x < 1<<16; x++ {
		check(x << 32)
	}
}

// TestFoldOrderSensitive: Fold must distinguish both the values and their
// order — it seeds RNG streams from (seed, section, occurrence, position)
// tuples, so commuting or telescoping would alias distinct instances.
func TestFoldOrderSensitive(t *testing.T) {
	if Fold(1, 2) == Fold(2, 1) {
		t.Error("Fold(1,2) == Fold(2,1): order-insensitive")
	}
	if Fold(0, 0) == 0 {
		t.Error("Fold(0,0) == 0: zero fixed point")
	}
	if Fold(Fold(1, 2), 3) == Fold(1, Fold(2, 3)) {
		t.Error("Fold associates: chained tuples can telescope")
	}
}

// TestFoldStreamSeedCollisionRegression mirrors the sensitivity stage's
// stream-seed derivation Fold(Fold(Fold(seed, sec), occur), dyn). The
// historical bug this pins: deriving with seed^dyn gave two instances at
// the same dynamic position identical perturbation streams. Chained Fold
// must separate every coordinate, including at shared positions.
func TestFoldStreamSeedCollisionRegression(t *testing.T) {
	derive := func(seed, sec, occur, dyn uint64) uint64 {
		return Fold(Fold(Fold(seed, sec), occur), dyn)
	}
	type inst struct{ sec, occur, dyn uint64 }
	insts := []inst{
		{0, 0, 1000}, {1, 0, 1000}, {0, 1, 1000}, // shared BegDyn
		{0, 0, 0}, {0, 1, 0}, {1, 0, 0}, // degenerate zeros
		{2, 3, 4}, {3, 2, 4}, {4, 3, 2}, // permuted coordinates
	}
	seen := make(map[uint64]inst)
	for _, in := range insts {
		s := derive(1, in.sec, in.occur, in.dyn)
		if prev, dup := seen[s]; dup {
			t.Fatalf("instances %+v and %+v share stream seed %#x", prev, in, s)
		}
		seen[s] = in
	}
}
