// Package mix provides splitmix64, a small finalizer-quality 64-bit hash
// used wherever the analysis needs to derive well-separated values from
// structured inputs: sensitivity RNG seeds (distinct streams per section
// instance) and campaign fingerprints (trace and config identity for
// WAL resume validation). It is deterministic across runs and platforms,
// which resume correctness depends on.
package mix

// Splitmix64 is the finalizer of the splitmix64 generator (Steele et al.,
// "Fast splittable pseudorandom number generators"). It avalanche-mixes
// its input: any single-bit change flips about half the output bits.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fold chains acc with v through Splitmix64, for hashing a sequence of
// words into one fingerprint.
func Fold(acc, v uint64) uint64 {
	return Splitmix64(acc ^ Splitmix64(v))
}
