// Package sites enumerates error-injection sites and groups them into
// equivalence classes.
//
// A site is one bit of one register operand of one dynamic instruction in
// the region of interest — the paper's single-event-upset model over
// architectural registers (§5.2). Exhaustively injecting every site is what
// makes instruction-level analyses expensive, so Approxilyzer prunes:
// sites expected to behave alike form an equivalence class, a single
// *pilot* member is injected, and the pilot's outcome is ascribed to the
// whole class (§5.1).
//
// The class key here is (static instruction, operand role, bit), optionally
// restricted to one section instance. The monolithic baseline prunes
// globally (dynamic instances across the whole trace share a pilot);
// FastFlip prunes only within a section instance, because each instance is
// a separate experiment with its own output comparison. This asymmetry
// reproduces the paper's observation that FastFlip cannot prune across
// sections (FFT in Table 3).
package sites

import (
	"sort"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
	"fastflip/internal/trace"
)

// BitsPerOperand is the number of injectable bits per register operand.
const BitsPerOperand = 64

// SitesPerOperand returns the number of injection sites one register
// operand contributes under a w-bit burst model: one site per starting bit
// such that the whole burst stays inside the register. Width 1 is the
// paper's single-event-upset model; wider bursts model multi-bit upsets in
// physically adjacent cells (§4.8 allows multi-bit error models).
func SitesPerOperand(width int) int {
	if width < 1 {
		width = 1
	}
	if width > BitsPerOperand {
		width = BitsPerOperand
	}
	return BitsPerOperand - width + 1
}

// Site is a single injection site: a burst of Width adjacent bits starting
// at Bit within one register operand of one dynamic instruction.
type Site struct {
	Dyn     uint64
	Operand isa.Operand
	Bit     uint8
	Width   uint8 // 0 and 1 both mean a single-bit flip
}

// ClassKey identifies an equivalence class. Static identity (function name
// + local index) is stable across program versions, so recorded outcomes
// can be reused after unrelated code changes.
type ClassKey struct {
	Static prog.StaticID
	Role   isa.OperandRole
	Bit    uint8
}

// Class is one equivalence class: all dynamic occurrences of a static
// instruction's operand bit within the enumerated range.
type Class struct {
	Key     ClassKey
	Class   isa.RegClass // register file of the operand
	Reg     uint8        // architectural register number
	Width   uint8        // burst width of the class's sites
	Members []uint64     // dynamic indices, ascending
	// Elided marks a class whose burst the static masking analysis proved
	// dead at its instruction: the flipped bits are never observed by any
	// subsequent instruction, so every member site is architecturally
	// Masked and the experiment engine records the clean outcome without
	// simulating. Static liveness is a property of the pc, and a class's
	// members all share one pc, so elision is decided per class.
	Elided bool
}

// Pilot returns the dynamic index of the class pilot: the median member.
// The median makes the pilot representative of a "typical" occurrence; the
// first iteration of a loop is often atypical.
func (c *Class) Pilot() uint64 { return c.Members[len(c.Members)/2] }

// Size returns the number of sites in the class.
func (c *Class) Size() int { return len(c.Members) }

// Masks is the static bit-liveness oracle consumed during classification
// (satisfied by maskelide.Masks). SiteElidable reports whether flipping the
// width-bit burst at bit of the given operand of the instruction at pc is
// provably invisible to the architectural outcome.
type Masks interface {
	SiteElidable(pc int, op isa.Operand, bit, width uint8) bool
}

// Options configures site enumeration.
type Options struct {
	// Prune enables equivalence-class grouping; false yields singletons.
	Prune bool
	// Width is the burst width in bits (0/1 = single-bit upsets).
	Width int
	// Masks, when non-nil, marks classes whose burst is provably dead
	// (Class.Elided) so the experiment engine can skip them with the clean
	// outcome. Nil disables the elision tier.
	Masks Masks
}

func (o Options) width() int {
	if o.Width < 1 {
		return 1
	}
	if o.Width > BitsPerOperand {
		return BitsPerOperand
	}
	return o.Width
}

// Count returns |J|: the total number of error sites in the region of
// interest of t (Table 1's "# Error Sites" column).
func Count(t *trace.Trace, opts Options) int {
	return CountRange(t, t.ROIBeg+1, t.ROIEnd, opts)
}

// CountRange returns the number of error sites with dynamic index in
// [lo, hi).
func CountRange(t *trace.Trace, lo, hi uint64, opts Options) int {
	total := 0
	per := SitesPerOperand(opts.width())
	var ops []isa.Operand
	for d := lo; d < hi; d++ {
		in := t.Prog.Linked.Code[t.PCs[d]]
		ops = in.Operands(ops[:0])
		total += len(ops) * per
	}
	return total
}

// classify groups the sites of dynamic range [lo, hi) into equivalence
// classes. Without pruning every site becomes a singleton class (used by
// the pruning ablation).
func classify(t *trace.Trace, lo, hi uint64, opts Options) []*Class {
	prune := opts.Prune
	width := opts.width()
	per := SitesPerOperand(width)
	byKey := make(map[ClassKey]*Class)
	var classes []*Class
	var ops []isa.Operand
	// Static identity is a function of the pc alone; resolving it does a
	// binary search over function bounds, so cache it per pc instead of
	// recomputing per dynamic instruction.
	statics := make([]prog.StaticID, len(t.Prog.Linked.Code))
	haveStatic := make([]bool, len(statics))
	for d := lo; d < hi; d++ {
		pc := int(t.PCs[d])
		in := t.Prog.Linked.Code[pc]
		ops = in.Operands(ops[:0])
		if len(ops) == 0 {
			continue
		}
		if !haveStatic[pc] {
			statics[pc] = t.Prog.Linked.StaticIDOf(pc)
			haveStatic[pc] = true
		}
		static := statics[pc]
		for _, op := range ops {
			for bit := 0; bit < per; bit++ {
				key := ClassKey{Static: static, Role: op.Role, Bit: uint8(bit)}
				if !prune {
					classes = append(classes, &Class{
						Key: key, Class: op.Class, Reg: op.Reg, Width: uint8(width), Members: []uint64{d},
						Elided: opts.Masks != nil && opts.Masks.SiteElidable(pc, op, uint8(bit), uint8(width)),
					})
					continue
				}
				c := byKey[key]
				if c == nil {
					c = &Class{Key: key, Class: op.Class, Reg: op.Reg, Width: uint8(width)}
					c.Elided = opts.Masks != nil && opts.Masks.SiteElidable(pc, op, uint8(bit), uint8(width))
					byKey[key] = c
					classes = append(classes, c)
				}
				c.Members = append(c.Members, d)
			}
		}
	}
	sortClasses(classes)
	return classes
}

// Global enumerates equivalence classes over the whole region of interest:
// the monolithic baseline's pruning scope.
func Global(t *trace.Trace, opts Options) []*Class {
	return classify(t, t.ROIBeg+1, t.ROIEnd, opts)
}

// ForInstance enumerates equivalence classes restricted to one section
// instance: FastFlip's pruning scope.
func ForInstance(t *trace.Trace, inst *trace.Instance, opts Options) []*Class {
	return classify(t, inst.BegDyn+1, inst.EndDyn, opts)
}

// Untested returns the dynamic indices in the region of interest that fall
// outside every section instance, paired with their per-instruction site
// counts. FastFlip never injects there; it conservatively assumes SDC-Bad
// (§4.9's s⊥ section).
func Untested(t *trace.Trace, opts Options) (dyns []uint64, siteCount int) {
	per := SitesPerOperand(opts.width())
	var ops []isa.Operand
	for d := t.ROIBeg + 1; d < t.ROIEnd; d++ {
		if t.InstanceAt(d) != nil {
			continue
		}
		in := t.Prog.Linked.Code[t.PCs[d]]
		ops = in.Operands(ops[:0])
		if len(ops) == 0 {
			continue
		}
		dyns = append(dyns, d)
		siteCount += len(ops) * per
	}
	return dyns, siteCount
}

func sortClasses(classes []*Class) {
	sort.Slice(classes, func(i, j int) bool {
		a, b := classes[i].Key, classes[j].Key
		if a.Static.Func != b.Static.Func {
			return a.Static.Func < b.Static.Func
		}
		if a.Static.Local != b.Static.Local {
			return a.Static.Local < b.Static.Local
		}
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		if a.Bit != b.Bit {
			return a.Bit < b.Bit
		}
		// Singleton classes (pruning disabled) tie-break on the member.
		return classes[i].Members[0] < classes[j].Members[0]
	})
}
