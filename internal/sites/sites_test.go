package sites

import (
	"testing"

	"fastflip/internal/testprog"
	"fastflip/internal/trace"
)

func recorded(t *testing.T) *trace.Trace {
	t.Helper()
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCountMatchesManualEnumeration(t *testing.T) {
	tr := recorded(t)
	want := 0
	for d := tr.ROIBeg + 1; d < tr.ROIEnd; d++ {
		in := tr.Prog.Linked.Code[tr.PCs[d]]
		want += len(in.Operands(nil)) * BitsPerOperand
	}
	if got := Count(tr, Options{}); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got := CountRange(tr, tr.ROIBeg+1, tr.ROIEnd, Options{}); got != want {
		t.Errorf("CountRange over ROI = %d, want %d", got, want)
	}
}

func TestGlobalClassesPartitionSites(t *testing.T) {
	tr := recorded(t)
	classes := Global(tr, Options{Prune: true})
	covered := 0
	seen := map[ClassKey]bool{}
	for _, c := range classes {
		if seen[c.Key] {
			t.Errorf("duplicate class key %v", c.Key)
		}
		seen[c.Key] = true
		covered += c.Size()
		for i := 1; i < len(c.Members); i++ {
			if c.Members[i] <= c.Members[i-1] {
				t.Errorf("members of %v not ascending", c.Key)
			}
		}
	}
	// Classes group (static, role, bit); the member count times one bit
	// each must cover every site exactly once.
	if covered != Count(tr, Options{}) {
		t.Errorf("classes cover %d sites, want %d", covered, Count(tr, Options{}))
	}
}

func TestNoPruningGivesSingletons(t *testing.T) {
	tr := recorded(t)
	classes := Global(tr, Options{})
	if len(classes) != Count(tr, Options{}) {
		t.Errorf("unpruned classes = %d, want %d", len(classes), Count(tr, Options{}))
	}
	for _, c := range classes {
		if c.Size() != 1 {
			t.Fatalf("class %v has %d members", c.Key, c.Size())
		}
	}
}

func TestForInstanceStaysInside(t *testing.T) {
	tr := recorded(t)
	for _, inst := range tr.Instances {
		for _, c := range ForInstance(tr, inst, Options{Prune: true}) {
			for _, d := range c.Members {
				if !inst.Contains(d) {
					t.Errorf("class %v member %d outside instance [%d,%d]",
						c.Key, d, inst.BegDyn, inst.EndDyn)
				}
			}
		}
	}
}

func TestSectionSitesPlusUntestedEqualTotal(t *testing.T) {
	tr := recorded(t)
	inSections := 0
	for _, inst := range tr.Instances {
		inSections += CountRange(tr, inst.BegDyn+1, inst.EndDyn, Options{})
	}
	_, untested := Untested(tr, Options{})
	if inSections+untested != Count(tr, Options{}) {
		t.Errorf("%d in sections + %d untested != %d total", inSections, untested, Count(tr, Options{}))
	}
	// The fixture's main contains only markers and CALLs between sections,
	// none of which carry register operands, so nothing is untested here.
	// (Benchmarks with outer loops, e.g. LUD, do have untested sites.)
	if untested != 0 {
		t.Errorf("fixture has %d untested sites, want 0", untested)
	}
}

func TestPilotIsAMember(t *testing.T) {
	tr := recorded(t)
	for _, c := range Global(tr, Options{Prune: true}) {
		pilot := c.Pilot()
		found := false
		for _, d := range c.Members {
			if d == pilot {
				found = true
			}
		}
		if !found {
			t.Fatalf("pilot %d not in members of %v", pilot, c.Key)
		}
	}
}

func TestClassOrderingDeterministic(t *testing.T) {
	tr := recorded(t)
	a := Global(tr, Options{Prune: true})
	b := Global(tr, Options{Prune: true})
	if len(a) != len(b) {
		t.Fatal("nondeterministic class count")
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("class %d differs between enumerations", i)
		}
	}
}

func TestMarkersHaveNoSites(t *testing.T) {
	tr := recorded(t)
	for _, c := range Global(tr, Options{Prune: true}) {
		for _, d := range c.Members {
			op := tr.Prog.Linked.Code[tr.PCs[d]].Op
			if op.String() == "secbeg" || op.String() == "secend" ||
				op.String() == "roibeg" || op.String() == "roiend" {
				t.Fatalf("marker instruction %v has error sites", op)
			}
		}
	}
}

func BenchmarkClassify(b *testing.B) {
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		classes := Global(tr, Options{Prune: true})
		if len(classes) == 0 {
			b.Fatal("no classes")
		}
	}
}
