package coord

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(clk *fakeClock) *breaker {
	// Fixed mid-range jitter makes every backoff exactly its nominal value.
	return newBreaker(3, time.Second, 8*time.Second, clk.now, func() float64 { return 0.5 })
}

// TestBreakerStateMachine drives the full circuit: consecutive failures
// open it, the backoff gates the half-open probe, a probe failure
// re-opens with doubled backoff, and a probe success closes it again.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newTestBreaker(clk)

	if b.state != breakerClosed || !b.allow() {
		t.Fatalf("new breaker not closed/allowing: %v", b.state)
	}

	// Two failures: still closed (threshold is 3), isolated faults absorbed.
	b.failure()
	if got := b.failure(); got {
		t.Error("second failure reported an open transition")
	}
	if b.state != breakerClosed || !b.allow() {
		t.Fatalf("breaker opened below threshold: %v", b.state)
	}

	// Third consecutive failure trips it.
	if !b.failure() {
		t.Error("threshold failure did not report the open transition")
	}
	if b.state != breakerOpen {
		t.Fatalf("state after threshold failures: %v", b.state)
	}
	if b.allow() || b.canAttempt() {
		t.Error("open breaker allowed a dispatch before the backoff")
	}

	// Backoff elapses: exactly one half-open probe is admitted.
	clk.advance(time.Second + time.Millisecond)
	if !b.canAttempt() {
		t.Error("due breaker refuses the probe peek")
	}
	if !b.allow() {
		t.Fatal("due breaker refused the half-open probe")
	}
	if b.state != breakerHalfOpen {
		t.Fatalf("state after probe admission: %v", b.state)
	}
	if b.allow() {
		t.Error("half-open breaker admitted a second concurrent probe")
	}

	// The probe fails: re-open immediately, backoff doubled (2s).
	if !b.failure() {
		t.Error("half-open probe failure did not report re-open")
	}
	if b.state != breakerOpen {
		t.Fatalf("state after failed probe: %v", b.state)
	}
	clk.advance(time.Second)
	if b.allow() {
		t.Error("re-opened breaker ignored its doubled backoff")
	}
	clk.advance(time.Second + time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker refused the probe after the doubled backoff")
	}

	// This probe succeeds: closed, backoff reset, full service resumed.
	b.success()
	if b.state != breakerClosed || !b.allow() || b.probing {
		t.Fatalf("breaker not closed after successful probe: %+v", b)
	}

	// The reset backoff: a fresh open waits the base interval again.
	b.failure()
	b.failure()
	b.failure()
	clk.advance(time.Second + time.Millisecond)
	if !b.allow() {
		t.Error("backoff did not reset after the circuit closed")
	}
}

// TestBreakerBackoffCap: backoff growth is capped at maxBackoff no matter
// how many consecutive opens accumulate.
func TestBreakerBackoffCap(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	b := newTestBreaker(clk)
	for i := 0; i < 12; i++ {
		b.failure()
		b.failure()
		b.failure()
		wait := b.until.Sub(clk.now())
		if wait > 8*time.Second {
			t.Fatalf("open %d backoff %v exceeds cap", i, wait)
		}
		clk.advance(wait + time.Millisecond)
		if !b.allow() {
			t.Fatalf("open %d: probe refused after backoff", i)
		}
	}
}

// TestBreakerJitterBounds: the jittered interval stays within ±25% of
// nominal, so an open worker is never benched longer than 1.25× the cap.
func TestBreakerJitterBounds(t *testing.T) {
	for _, j := range []float64{0, 0.999} {
		clk := &fakeClock{t: time.Unix(3000, 0)}
		b := newBreaker(1, time.Second, 8*time.Second, clk.now, func() float64 { return j })
		b.failure()
		wait := b.until.Sub(clk.now())
		if wait < 750*time.Millisecond || wait > 1250*time.Millisecond {
			t.Errorf("jitter %v: backoff %v outside [0.75s, 1.25s]", j, wait)
		}
	}
}

// TestBreakerHealthScore: the health EWMA decays under failures and
// recovers under successes, staying in [0,1].
func TestBreakerHealthScore(t *testing.T) {
	clk := &fakeClock{t: time.Unix(4000, 0)}
	b := newTestBreaker(clk)
	if b.health != 1 {
		t.Fatalf("initial health %v", b.health)
	}
	b.failure()
	b.failure()
	afterFail := b.health
	if afterFail >= 1 || afterFail < 0 {
		t.Fatalf("health after failures out of range: %v", afterFail)
	}
	b.success()
	if b.health <= afterFail || b.health > 1 {
		t.Fatalf("health did not recover: %v -> %v", afterFail, b.health)
	}
}
