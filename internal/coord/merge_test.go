package coord

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastflip/internal/core"
	"fastflip/internal/inject"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/qcheck"
	"fastflip/internal/sites"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
)

func classKey(local int) sites.ClassKey {
	return sites.ClassKey{Static: prog.StaticID{Func: "f", Local: local}}
}

func mergeClasses(n int) []*sites.Class {
	classes := make([]*sites.Class, n)
	for i := range classes {
		classes[i] = &sites.Class{Key: classKey(i), Members: []uint64{uint64(n - i)}}
	}
	return classes
}

func TestMergerDedupe(t *testing.T) {
	classes := mergeClasses(3)
	m := newMerger(classes, nil)
	if m.done() {
		t.Fatal("fresh merger reports done")
	}
	if i, fresh := m.resolve(classes[1].Key); i != 1 || !fresh {
		t.Fatalf("first delivery: (%d, %v)", i, fresh)
	}
	if i, fresh := m.resolve(classes[1].Key); i != 1 || fresh {
		t.Fatalf("duplicate delivery: (%d, %v), want counted as stale", i, fresh)
	}
	if i, fresh := m.resolve(classKey(99)); i != -1 || fresh {
		t.Fatalf("foreign key: (%d, %v), want rejected", i, fresh)
	}
	m.resolve(classes[0].Key)
	m.resolve(classes[2].Key)
	if !m.done() {
		t.Fatal("all classes delivered but merger not done")
	}
}

func TestMergerSkipSeedsResolved(t *testing.T) {
	classes := mergeClasses(4)
	m := newMerger(classes, []bool{false, true, false, true})
	if got := m.resolvedIndices(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("resolvedIndices = %v", got)
	}
	// Pilots descend with the index, so the dyn order is reversed.
	order := inject.DynOrder(classes)
	if got := m.pendingPositions(order); len(got) != 2 {
		t.Fatalf("pendingPositions = %v", got)
	} else {
		for _, p := range got {
			if ci := order[p]; ci != 0 && ci != 2 {
				t.Fatalf("pending position %d names resolved class %d", p, ci)
			}
		}
	}
	// A WAL-recovered class delivered again by a shard is a duplicate.
	if _, fresh := m.resolve(classes[1].Key); fresh {
		t.Fatal("recovered class accepted as fresh")
	}
}

// TestMergerShuffledOverlappingSegments is the merge-invariant property
// test: however a set of shard segments overlaps, duplicates, and
// interleaves, exactly the union of delivered classes resolves, each
// exactly once, and pending positions are precisely the complement.
func TestMergerShuffledOverlappingSegments(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(24)
		classes := mergeClasses(n)
		order := inject.DynOrder(classes)

		// A few segments over overlapping [lo,hi) ranges of the dyn order,
		// some delivered twice, all record deliveries shuffled together.
		var deliveries []int // class indices, with repeats
		covered := make([]bool, n)
		for s := 0; s < 1+rng.Intn(4); s++ {
			lo := rng.Intn(n)
			hi := lo + 1 + rng.Intn(n-lo)
			copies := 1 + rng.Intn(2)
			for c := 0; c < copies; c++ {
				for _, p := range order[lo:hi] {
					deliveries = append(deliveries, p)
				}
			}
			for _, p := range order[lo:hi] {
				covered[p] = true
			}
		}
		rng.Shuffle(len(deliveries), func(i, j int) {
			deliveries[i], deliveries[j] = deliveries[j], deliveries[i]
		})

		m := newMerger(classes, nil)
		fresh, dup := 0, 0
		seen := make([]int, n)
		for _, ci := range deliveries {
			i, ok := m.resolve(classes[ci].Key)
			if i != ci {
				return false
			}
			if ok {
				fresh++
				seen[ci]++
			} else {
				dup++
			}
		}
		want := 0
		for _, c := range covered {
			if c {
				want++
			}
		}
		if fresh != want || dup != len(deliveries)-want {
			return false
		}
		for ci, times := range seen {
			if covered[ci] != (times == 1) || times > 1 {
				return false
			}
		}
		if m.done() != (want == n) {
			return false
		}
		for _, p := range m.pendingPositions(order) {
			if covered[order[p]] {
				return false
			}
		}
		return len(m.pendingPositions(order)) == n-want
	}
	if err := quick.Check(property, qcheck.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

// TestMergeShardOutOfOrderStreams drives the real record merge with
// overlapping shard streams arriving in reverse range order: every class
// keeps its first-delivered outcome, costs are counted once, and shard
// provenance reports only the fresh records of each stream.
func TestMergeShardOutOfOrderStreams(t *testing.T) {
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	inst := tr.Instances[0]
	classes := sites.ForInstance(tr, inst, sites.Options{Prune: true})
	if len(classes) < 4 {
		t.Fatalf("need a few classes, got %d", len(classes))
	}
	order := inject.DynOrder(classes)

	c := NewCoordinator(Options{Heartbeat: -1})
	defer c.Close()

	outcomeFor := func(ci int) metrics.Outcome {
		return metrics.Outcome{Kind: metrics.SDC, Magnitudes: []float64{float64(ci) + 1}}
	}
	stream := func(lo, hi int) []inject.StreamRecord {
		var recs []inject.StreamRecord
		for _, ci := range order[lo:hi] {
			recs = append(recs, inject.StreamRecord{Type: inject.StreamExperiment, Experiment: inject.WALRecord{
				Key: classes[ci].Key, Out: outcomeFor(ci), Cost: inject.Stats{Experiments: 1, SimInstrs: 7},
			}})
		}
		return recs
	}

	mid := len(order) / 2

	res := core.SectionResult{Outcomes: make([]metrics.Outcome, len(classes))}
	job := core.SectionJob{Trace: tr, Instance: 0, Classes: classes, Config: core.DefaultConfig()}
	var shards []inject.WALShard
	job.Hooks.Shard = func(s inject.WALShard) { shards = append(shards, s) }
	mg := newMerger(classes, nil)
	s := &sectionRun{c: c, job: job, inst: inst, mg: mg, res: &res}

	deliver := func(worker string, epoch uint64, lo, hi int) {
		d := &dispatch{workerID: worker, sealed: true}
		d.req.Epoch, d.req.Lo, d.req.Hi = epoch, lo, hi
		for _, rec := range stream(lo, hi) {
			d.records++
			s.mergeRecord(d, rec)
		}
		s.finishStream(d)
	}

	// Overlap of one position around mid; the late stream arrives first.
	deliver("w2", 2, mid-1, len(order))
	deliver("w1", 1, 0, mid+1)

	if !mg.done() {
		t.Fatal("overlapping streams left classes unresolved")
	}
	if res.Stats.Experiments != len(classes) || res.Stats.SimInstrs != uint64(7*len(classes)) {
		t.Errorf("stats %+v: overlap double-counted", res.Stats)
	}
	for i := range classes {
		if got := res.Outcomes[i]; got.Kind != metrics.SDC || got.Magnitudes[0] != float64(i)+1 {
			t.Errorf("class %d outcome %+v", i, got)
		}
	}
	if len(shards) != 2 {
		t.Fatalf("shard provenance entries: %d, want 2", len(shards))
	}
	// The late stream delivered all its records fresh; the early one lost
	// the two overlapping positions to it.
	if shards[0].Worker != "w2" || shards[0].Records != len(order)-(mid-1) {
		t.Errorf("late shard provenance %+v", shards[0])
	}
	if shards[1].Worker != "w1" || shards[1].Records != mid-1 {
		t.Errorf("early shard provenance %+v", shards[1])
	}
	met := c.Metrics()
	if met.DuplicateRecords != 2 {
		t.Errorf("DuplicateRecords = %d, want 2", met.DuplicateRecords)
	}
	if met.RemoteExperiments != uint64(len(classes)) {
		t.Errorf("RemoteExperiments = %d, want %d", met.RemoteExperiments, len(classes))
	}
}
