// Package coord distributes injection campaigns across machines. A
// Coordinator plugs into the analysis pipeline through core.Config's
// SectionInjector seam: for every section it leases contiguous ranges of
// the canonical dyn-sorted experiment order to remote Workers over HTTP,
// merges the framed WAL records streamed back as they arrive, and falls
// back to an in-process engine for anything the fleet could not deliver —
// so a distributed campaign always converges to the exact result of a
// local one.
//
// Scheduling is completion-driven, not round-driven: pending positions
// form a work queue, each usable worker pulls a lease sized by its health
// score the moment it goes idle, every dispatch carries a deadline budget
// derived from observed shard throughput (capped by Options.ShardTimeout),
// and a dispatch that outlives the adaptive straggler threshold (p95 of
// recent shard durations, floored by Options.StragglerFloor) has its
// unresolved remainder hedged to an idle worker while the original keeps
// streaming — first delivery wins. A stalled worker therefore delays only
// its own lease, never the section.
//
// The robustness model composes existing mechanisms rather than
// inventing new ones:
//
//   - Identity: every lease carries the campaign fingerprint (trace ⊕
//     config) and the section content key; a worker recomputes both from
//     its own build and refuses a mismatch, the same gate WAL resume
//     applies to on-disk segments.
//   - Loss: a worker that dies mid-range leaves a partial stream (framed
//     records, no seal). The records already merged stay merged, and the
//     remainder returns to the work queue for immediate re-lease via the
//     skip-vector resume path (the lease's Done list).
//   - Duplication: shard ranges may overlap, streams may be delivered
//     twice, and a hedge races its straggling original; the merger
//     deduplicates by experiment identity (equivalence class key), first
//     delivery wins, so nothing is double-counted.
//   - Failure: each worker sits behind a circuit breaker — consecutive
//     failures open it with capped jittered backoff, a half-open probe
//     (dispatch or heartbeat) re-admits it — and its health score shrinks
//     the ranges a slow-but-alive worker is handed instead of dropping it.
//
// Leases carry monotonically increasing epochs, recorded as WAL shard
// provenance so `fasm -wal-info` can attribute a merged segment's records
// to the fleet that produced them.
package coord

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fastflip/internal/core"
	"fastflip/internal/inject"
	"fastflip/internal/metrics"
	"fastflip/internal/trace"
)

// Options configure a Coordinator. The zero value gets sensible defaults.
type Options struct {
	// Client performs shard and health requests (default: a client with
	// no overall timeout — shard streams are long-lived; every dispatch
	// is instead bounded by its own deadline budget, see ShardTimeout).
	Client *http.Client
	// Heartbeat is the worker liveness probe interval (default 5s;
	// negative disables probing — breakers then open and close only on
	// dispatch outcomes).
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive failed probes count as one
	// breaker failure for a closed worker (default 2). For an open worker
	// whose backoff elapsed, the heartbeat doubles as the half-open probe:
	// one answered probe closes the breaker again.
	HeartbeatMisses int
	// ProbeTimeout bounds each health probe (default 3s).
	ProbeTimeout time.Duration
	// ShardTimeout caps one dispatch's deadline budget (default 2m). The
	// effective budget is derived from observed shard throughput and the
	// lease size, clamped to this — so a hung worker can never hold a
	// lease longer than ShardTimeout, and usually far shorter.
	ShardTimeout time.Duration
	// StragglerFloor is the minimum straggler threshold (default 250ms):
	// a dispatch is hedge-eligible once it has been in flight longer than
	// max(StragglerFloor, 2×p95 of recently completed shard durations).
	StragglerFloor time.Duration
	// MaxRounds bounds lease attempts per experiment position (hedges
	// included) before the coordinator stops re-leasing it and leaves it
	// to the local fallback (default 5).
	MaxRounds int
	// BreakerThreshold is how many consecutive dispatch failures open a
	// worker's circuit (default 3).
	BreakerThreshold int
	// BreakerBackoff is the first open interval (default 1s); consecutive
	// opens double it, capped at BreakerMaxBackoff (default 30s), with
	// ±25% jitter.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	// WorkerToken, when non-empty, is sent as a bearer token on every
	// shard dispatch and health probe; workers started with a token
	// refuse mismatched leases with 401.
	WorkerToken string
	// Fault, when non-nil, injects network faults into dispatch attempts
	// (chaos tests only).
	Fault FaultPlan
	// Logf, when non-nil, receives coordinator diagnostics.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 5 * time.Second
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 2
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 3 * time.Second
	}
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 2 * time.Minute
	}
	if o.StragglerFloor <= 0 {
		o.StragglerFloor = 250 * time.Millisecond
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 5
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerBackoff <= 0 {
		o.BreakerBackoff = time.Second
	}
	if o.BreakerMaxBackoff <= 0 {
		o.BreakerMaxBackoff = 30 * time.Second
	}
	return o
}

// WorkerView is a snapshot of one registered worker.
type WorkerView struct {
	URL string `json:"url"`
	ID  string `json:"id"`
	// Live is false while the worker's circuit is open.
	Live bool `json:"live"`
	// State is the circuit position: "closed", "open", or "half-open".
	State string `json:"state"`
	// Health is the worker's dispatch-success EWMA in [0,1]; it weights
	// how large a range the scheduler leases to the worker.
	Health float64 `json:"health"`
}

type remoteWorker struct {
	url string
	id  string
	br  *breaker
	// probeFails counts consecutive failed heartbeat probes of a closed
	// worker; HeartbeatMisses of them feed one breaker failure.
	probeFails int
	// perRecNanos is an EWMA of observed nanoseconds per streamed record,
	// the worker's throughput signal for health-weighted partition sizing.
	perRecNanos float64
}

// throughputAlpha is the EWMA weight of the newest throughput sample.
const throughputAlpha = 0.3

// leaseBudgetSlack multiplies the throughput-estimated shard duration to
// form the dispatch deadline budget.
const leaseBudgetSlack = 8

// hedgeSlack multiplies the p95 shard duration to form the adaptive
// straggler threshold.
const hedgeSlack = 2

// durWindow is the sliding window of completed shard durations behind
// the straggler percentiles.
const durWindow = 64

// Coordinator owns the worker registry and runs distributed section
// campaigns. Safe for concurrent use by multiple jobs.
type Coordinator struct {
	opts  Options
	epoch atomic.Uint64

	mu      sync.Mutex
	workers []*remoteWorker
	met     Metrics
	rng     *rand.Rand
	// durs is a ring of the most recent completed shard durations.
	durs   []int64
	durIdx int
	perRec float64 // fleet-wide ns-per-record EWMA, drives lease budgets

	stopOnce sync.Once
	stop     chan struct{}
	hbDone   chan struct{}
}

// NewCoordinator returns a coordinator and starts its heartbeat loop.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:   opts.withDefaults(),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		stop:   make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	if c.opts.Heartbeat > 0 {
		go c.heartbeatLoop()
	} else {
		close(c.hbDone)
	}
	return c
}

// Close stops the heartbeat loop. Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.hbDone
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// newBreakerLocked builds a worker breaker wired to the coordinator's
// jitter source; c.mu must be held (as for every breaker method).
func (c *Coordinator) newBreakerLocked() *breaker {
	return newBreaker(c.opts.BreakerThreshold, c.opts.BreakerBackoff, c.opts.BreakerMaxBackoff,
		nil, func() float64 { return c.rng.Float64() })
}

// AddWorker probes url's health endpoint and registers the worker,
// returning its self-reported ID. Re-adding a known URL resets its
// breaker closed.
func (c *Coordinator) AddWorker(url string) (string, error) {
	id, err := c.probe(url)
	if err != nil {
		return "", fmt.Errorf("coord: worker %s: %w", url, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			w.id, w.probeFails = id, 0
			w.br = c.newBreakerLocked()
			return id, nil
		}
	}
	c.workers = append(c.workers, &remoteWorker{url: url, id: id, br: c.newBreakerLocked()})
	return id, nil
}

// Workers snapshots the registry.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerView{
			URL:    w.url,
			ID:     w.id,
			Live:   w.br.state != breakerOpen,
			State:  w.br.state.String(),
			Health: w.br.health,
		})
	}
	return out
}

// Metrics snapshots the coordinator's counters and gauges.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.met
	m.WorkersRegistered = len(c.workers)
	for _, w := range c.workers {
		if w.br.state != breakerOpen {
			m.WorkersLive++
		}
	}
	m.ShardP50Nanos = c.shardPercentileLocked(0.50)
	m.ShardP95Nanos = c.shardPercentileLocked(0.95)
	return m
}

// pushDurLocked records one completed shard duration in the sliding
// window; c.mu must be held.
func (c *Coordinator) pushDurLocked(d time.Duration) {
	if len(c.durs) < durWindow {
		c.durs = append(c.durs, int64(d))
		return
	}
	c.durs[c.durIdx] = int64(d)
	c.durIdx = (c.durIdx + 1) % durWindow
}

// shardPercentileLocked computes the q-th percentile (nearest-rank) of
// the duration window; c.mu must be held. Zero with no samples.
func (c *Coordinator) shardPercentileLocked(q float64) int64 {
	if len(c.durs) == 0 {
		return 0
	}
	vals := append([]int64(nil), c.durs...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	return vals[idx]
}

// stragglerThreshold is the in-flight age past which a dispatch is
// hedge-eligible: hedgeSlack × p95 of recent shard durations, floored.
func (c *Coordinator) stragglerThreshold() time.Duration {
	c.mu.Lock()
	p95 := c.shardPercentileLocked(0.95)
	c.mu.Unlock()
	thr := time.Duration(hedgeSlack * p95)
	if thr < c.opts.StragglerFloor {
		thr = c.opts.StragglerFloor
	}
	return thr
}

// leaseBudget derives one dispatch's deadline budget from the fleet's
// observed per-record throughput and the lease size, clamped to
// ShardTimeout. With no throughput history the full ShardTimeout
// applies — generous, but still a hard bound a hung worker cannot evade.
//
// Per-record cost varies across sections (the EWMA mixes cheap and heavy
// ones), so the estimate is floored at leaseBudgetSlack × the p95 of
// whole-shard durations: a shard no slower than recent completions must
// never trip its deadline on a healthy fleet — stragglers are hedging's
// job, the budget exists only to unstick hung workers.
func (c *Coordinator) leaseBudget(expected int) time.Duration {
	c.mu.Lock()
	per := c.perRec
	p95 := c.shardPercentileLocked(0.95)
	c.mu.Unlock()
	if per <= 0 {
		return c.opts.ShardTimeout
	}
	est := time.Duration(per * float64(expected) * leaseBudgetSlack)
	if floor := time.Duration(leaseBudgetSlack * p95); est < floor {
		est = floor
	}
	if est < time.Second {
		est = time.Second
	}
	if est > c.opts.ShardTimeout {
		est = c.opts.ShardTimeout
	}
	return est
}

// probe fetches url's health endpoint and returns the worker ID.
func (c *Coordinator) probe(url string) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+healthPath, nil)
	if err != nil {
		return "", err
	}
	if c.opts.WorkerToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.opts.WorkerToken)
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("health probe: status %d", resp.StatusCode)
	}
	var body struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", fmt.Errorf("health probe: %w", err)
	}
	return body.Worker, nil
}

// heartbeatLoop probes registered workers at the configured interval and
// feeds the results to their breakers: for a closed worker,
// HeartbeatMisses consecutive failed probes count as one breaker
// failure; for an open worker whose backoff elapsed, the probe is the
// half-open trial and one success closes the circuit again. Open workers
// still inside their backoff are left alone.
func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		snapshot := append([]*remoteWorker(nil), c.workers...)
		c.mu.Unlock()
		for _, w := range snapshot {
			c.mu.Lock()
			probeSlot := false
			if w.br.state != breakerClosed {
				if !w.br.allow() {
					c.mu.Unlock()
					continue // open, backoff still running
				}
				probeSlot = true
			}
			c.mu.Unlock()

			_, err := c.probe(w.url)

			c.mu.Lock()
			if err != nil {
				if probeSlot {
					if w.br.failure() {
						c.logf("coord: worker %s (%s) probe failed, circuit re-opened: %v", w.url, w.id, err)
						c.met.BreakerOpen++
					}
				} else {
					w.probeFails++
					if w.probeFails >= c.opts.HeartbeatMisses {
						w.probeFails = 0
						if w.br.failure() {
							c.logf("coord: worker %s (%s) circuit opened after failed probes: %v", w.url, w.id, err)
							c.met.BreakerOpen++
						}
					}
				}
			} else {
				w.probeFails = 0
				if w.br.state != breakerClosed {
					c.logf("coord: worker %s (%s) revived", w.url, w.id)
				}
				w.br.success()
			}
			c.mu.Unlock()
		}
	}
}

// SectionInjector adapts the coordinator to core's distribution seam for
// one benchmark version: install the result as core.Config.SectionInjector
// and every section of that analysis is sharded across the fleet.
func (c *Coordinator) SectionInjector(benchName, variant string) core.SectionInjector {
	return &sectionInjector{c: c, bench: benchName, variant: variant}
}

type sectionInjector struct {
	c              *Coordinator
	bench, variant string
}

func (s *sectionInjector) InjectSection(ctx context.Context, job core.SectionJob) (core.SectionResult, error) {
	return s.c.injectSection(ctx, s.bench, s.variant, job)
}

// dispatch is one lease attempt: its request, the dyn positions it was
// expected to resolve, and the outcome of its stream.
type dispatch struct {
	w         *remoteWorker
	req       ShardRequest
	positions []int
	round     int  // prior lease attempts of its positions (fault-plan Round)
	hedge     bool // this dispatch is a straggler hedge
	hedges    int  // hedges spawned against this dispatch
	start     time.Time
	cancel    context.CancelFunc

	workerID string
	recs     []inject.StreamRecord
	records  int // records delivered (fresh + duplicate)
	fresh    int // records that resolved a class
	sealed   bool
	rejected bool // HTTP-level lease rejection: worker healthy, lease invalid
	canceled bool // section completed or job cancelled mid-stream: neutral
	dur      time.Duration
}

// sectionRun is one section campaign's scheduler state. The run loop
// goroutine owns the scheduling fields (covered/attempts/busy/inflight);
// dispatch goroutines share only the merge state, under mu.
type sectionRun struct {
	c      *Coordinator
	job    core.SectionJob
	inst   *trace.Instance
	req    ShardRequest // template: range, done list, and epoch vary per lease
	order  []int        // dyn position → class index
	maxAtt int

	parent context.Context
	ctx    context.Context // section context: cancelled once the merge completes
	cancel context.CancelFunc

	covered  []int // per position: in-flight leases covering it
	attempts []int // per position: lease attempts spent
	busy     map[*remoteWorker]bool
	inflight map[*dispatch]struct{}
	comp     chan *dispatch

	mu  sync.Mutex // guards mg and res against concurrent stream merges
	mg  *merger
	res *core.SectionResult
}

// injectSection runs one section campaign across the fleet through the
// completion-driven lease scheduler, then finishes any remainder with
// the in-process fallback, so the campaign converges unconditionally.
func (c *Coordinator) injectSection(ctx context.Context, benchName, variant string, job core.SectionJob) (core.SectionResult, error) {
	classes := job.Classes
	inst := job.Trace.Instances[job.Instance]
	res := core.SectionResult{Outcomes: make([]metrics.Outcome, len(classes))}
	if job.CoRun {
		res.Fins = make([]metrics.Outcome, len(classes))
	}
	mg := newMerger(classes, job.Hooks.Skip)
	order := inject.DynOrder(classes)

	req := ShardRequest{
		Bench:       benchName,
		Variant:     variant,
		Instance:    job.Instance,
		SectionKey:  hex.EncodeToString(job.Key[:]),
		Fingerprint: core.CampaignFingerprint(job.Trace.Fingerprint(), job.Config),
		Config:      shardConfig(job.Config),
	}

	if !mg.done() && ctx.Err() == nil {
		sctx, cancel := context.WithCancel(ctx)
		s := &sectionRun{
			c:        c,
			job:      job,
			inst:     inst,
			req:      req,
			order:    order,
			maxAtt:   c.opts.MaxRounds,
			parent:   ctx,
			ctx:      sctx,
			cancel:   cancel,
			covered:  make([]int, len(order)),
			attempts: make([]int, len(order)),
			busy:     make(map[*remoteWorker]bool),
			inflight: make(map[*dispatch]struct{}),
			comp:     make(chan *dispatch),
			mg:       mg,
			res:      &res,
		}
		s.run()
	}

	// Whatever the fleet could not deliver runs in-process — including
	// the whole section when no workers are registered. The skip vector
	// holds everything already merged, so only the true remainder runs.
	if !mg.done() && ctx.Err() == nil {
		skip := mg.skipVector()
		hooks := job.Hooks
		hooks.Skip = skip
		hooks.Range = nil
		inj := &inject.Injector{T: job.Trace, Workers: job.Config.Workers, Legacy: job.Config.LegacyReplay, NoBatch: job.Config.NoBatch}
		var outs, fins []metrics.Outcome
		var stats inject.Stats
		if job.CoRun {
			outs, fins, stats = inj.RunSectionCoRunResume(ctx, inst, classes, hooks)
		} else {
			outs, stats = inj.RunSectionResume(ctx, inst, classes, hooks)
		}
		for i := range classes {
			if !(i < len(skip) && skip[i]) {
				res.Outcomes[i] = outs[i]
				if res.Fins != nil {
					res.Fins[i] = fins[i]
				}
			}
		}
		res.Stats.Add(stats)
		res.Poisoned = append(res.Poisoned, inj.Poisoned()...)
		c.mu.Lock()
		c.met.LocalFallbackExperiments += uint64(stats.Experiments)
		c.mu.Unlock()
	}
	return res, nil
}

// run is the scheduler loop: lease to every idle usable worker, hedge
// stragglers, fold in completions as they arrive, stop the moment the
// merge is complete (cancelling whatever is still in flight) or no
// further dispatch can make progress.
func (s *sectionRun) run() {
	defer s.cancel()
	for s.parent.Err() == nil && !s.done() {
		s.launchLeases()
		s.launchHedges()
		if len(s.inflight) == 0 {
			break // nothing running, nothing launchable: fallback's turn
		}
		var hedgeC <-chan time.Time
		if at, ok := s.nextHedgeAt(); ok {
			hedgeC = time.After(time.Until(at))
		}
		select {
		case d := <-s.comp:
			s.finalize(d)
		case <-hedgeC:
		case <-s.parent.Done():
		}
	}
	// Drain: cancel in-flight dispatches and absorb their completions so
	// no stream goroutine touches the merge state after we return.
	s.cancel()
	for len(s.inflight) > 0 {
		s.finalize(<-s.comp)
	}
}

func (s *sectionRun) done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mg.done()
}

// candidates returns the dyn positions eligible for a fresh lease:
// unresolved, not covered by an in-flight lease, attempts left.
func (s *sectionRun) candidates() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for p, ci := range s.order {
		if !s.mg.resolved[ci] && s.covered[p] == 0 && s.attempts[p] < s.maxAtt {
			out = append(out, p)
		}
	}
	return out
}

// unresolvedIn filters positions down to those still unresolved.
func (s *sectionRun) unresolvedIn(positions []int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for _, p := range positions {
		if !s.mg.resolved[s.order[p]] {
			out = append(out, p)
		}
	}
	return out
}

// launchLeases hands fresh leases to idle usable workers until either
// runs out. Each lease is a contiguous dyn-order range sized by the
// worker's health-weighted share of the remaining work.
func (s *sectionRun) launchLeases() {
	for {
		cands := s.candidates()
		if len(cands) == 0 {
			return
		}
		w, share := s.c.pickWorker(s.busy, nil)
		if w == nil {
			return
		}
		target := int(math.Ceil(float64(len(cands)) * share))
		if target < 1 {
			target = 1
		}
		chunk := s.chunk(cands, target)
		s.launch(w, chunk, chunk[0], chunk[len(chunk)-1]+1, false)
	}
}

// chunk takes up to target leading candidates, stopping early at any gap
// that contains a position another in-flight lease is still working on —
// a fresh lease must not silently re-run someone else's range.
func (s *sectionRun) chunk(cands []int, target int) []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	chunk := cands[:1]
	for i := 1; i < len(cands) && len(chunk) < target; i++ {
		crossesInflight := false
		for p := cands[i-1] + 1; p < cands[i]; p++ {
			if s.covered[p] > 0 && !s.mg.resolved[s.order[p]] {
				crossesInflight = true
				break
			}
		}
		if crossesInflight {
			break
		}
		chunk = cands[:i+1]
	}
	return chunk
}

// launchHedges re-leases the unresolved remainder of every straggling
// dispatch — in flight longer than the adaptive threshold, nothing
// hedged against it yet — to an idle worker, racing the original.
func (s *sectionRun) launchHedges() {
	threshold := s.c.stragglerThreshold()
	now := time.Now()
	for d := range s.inflight {
		if d.hedge || d.hedges > 0 || now.Sub(d.start) <= threshold {
			continue
		}
		rem := s.unresolvedIn(d.positions)
		if len(rem) == 0 {
			continue
		}
		w, _ := s.c.pickWorker(s.busy, d.w)
		if w == nil {
			return
		}
		d.hedges++
		s.c.mu.Lock()
		s.c.met.HedgedDispatches++
		s.c.mu.Unlock()
		s.mu.Lock()
		s.res.HedgedDispatches++
		s.mu.Unlock()
		s.c.logf("coord: hedging straggler lease %d (%s, %v in flight) to %s: %d unresolved",
			d.req.Epoch, d.w.url, now.Sub(d.start).Round(time.Millisecond), w.url, len(rem))
		s.launch(w, rem, d.req.Lo, d.req.Hi, true)
	}
}

// nextHedgeAt returns the earliest future instant an in-flight dispatch
// becomes hedge-eligible, provided an idle worker could take the hedge.
func (s *sectionRun) nextHedgeAt() (time.Time, bool) {
	if !s.c.idleUsableExists(s.busy) {
		return time.Time{}, false
	}
	threshold := s.c.stragglerThreshold()
	var at time.Time
	now := time.Now()
	for d := range s.inflight {
		if d.hedge || d.hedges > 0 {
			continue
		}
		due := d.start.Add(threshold)
		if !due.After(now) {
			continue // already eligible; launchHedges had no worker for it
		}
		if at.IsZero() || due.Before(at) {
			at = due
		}
	}
	return at, !at.IsZero()
}

// launch dispatches one lease and tracks it. positions are the pending
// dyn positions the lease is expected to resolve; [lo, hi) is the wire
// range spanning them.
func (s *sectionRun) launch(w *remoteWorker, positions []int, lo, hi int, hedge bool) {
	r := s.req
	r.Lo, r.Hi = lo, hi
	s.mu.Lock()
	r.Done = s.mg.resolvedIndices()
	s.mu.Unlock()
	r.Epoch = s.c.epoch.Add(1)
	round := 0
	for _, p := range positions {
		if s.attempts[p] > round {
			round = s.attempts[p]
		}
		s.attempts[p]++
		s.covered[p]++
	}
	d := &dispatch{w: w, req: r, positions: positions, round: round, hedge: hedge, workerID: w.id, start: time.Now()}
	dctx, cancel := context.WithTimeout(s.ctx, s.c.leaseBudget(len(positions)))
	d.cancel = cancel
	s.busy[w] = true
	s.inflight[d] = struct{}{}
	go func() {
		s.c.fetchShard(dctx, s, d)
		cancel()
		s.comp <- d
	}()
}

// finalize folds one finished dispatch back into the scheduler: frees
// its worker and positions, feeds the breaker and throughput EWMAs, and
// counts a release when an unresolved remainder returns to the queue.
func (s *sectionRun) finalize(d *dispatch) {
	delete(s.inflight, d)
	s.busy[d.w] = false
	for _, p := range d.positions {
		s.covered[p]--
	}

	c := s.c
	c.mu.Lock()
	switch {
	case d.rejected, d.canceled:
		// A rejection means the lease was invalid, not the worker
		// unhealthy; a cancellation means the section no longer needs the
		// stream. Neither moves the breaker.
	case d.sealed:
		d.w.br.success()
		if d.records > 0 {
			sample := float64(d.dur) / float64(d.records)
			d.w.perRecNanos = ewma(d.w.perRecNanos, sample)
			c.perRec = ewma(c.perRec, sample)
		}
	default:
		if d.w.br.failure() {
			c.logf("coord: worker %s (%s) circuit opened after lease %d failed", d.w.url, d.w.id, d.req.Epoch)
			c.met.BreakerOpen++
		}
	}
	c.mu.Unlock()

	if !d.sealed && !d.rejected && len(s.unresolvedIn(d.positions)) > 0 && s.parent.Err() == nil && !s.done() {
		c.mu.Lock()
		c.met.Releases++
		c.mu.Unlock()
		s.mu.Lock()
		s.res.Releases++
		s.mu.Unlock()
	}
}

func ewma(prev, sample float64) float64 {
	if prev <= 0 {
		return sample
	}
	return prev*(1-throughputAlpha) + sample*throughputAlpha
}

// pickWorker selects the idle usable worker with the best health-
// weighted throughput and claims its breaker slot, returning the worker
// and its weight share of all usable workers (busy ones included, so an
// idle worker leaves room in the queue for the rest of the fleet).
func (c *Coordinator) pickWorker(busy map[*remoteWorker]bool, exclude *remoteWorker) (*remoteWorker, float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	skipped := map[*remoteWorker]bool{}
	for {
		var best *remoteWorker
		bestWeight, total := 0.0, 0.0
		for _, w := range c.workers {
			if !w.br.canAttempt() {
				continue
			}
			weight := c.weightLocked(w)
			total += weight
			if w == exclude || busy[w] || skipped[w] {
				continue
			}
			if best == nil || weight > bestWeight {
				best, bestWeight = w, weight
			}
		}
		if best == nil {
			return nil, 0
		}
		if !best.br.allow() {
			// A concurrent probe claimed the half-open slot; try the rest.
			skipped[best] = true
			continue
		}
		if total <= 0 {
			return best, 1
		}
		return best, bestWeight / total
	}
}

// idleUsableExists reports whether any non-busy worker could accept a
// dispatch right now, without claiming a breaker slot.
func (c *Coordinator) idleUsableExists(busy map[*remoteWorker]bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if !busy[w] && w.br.canAttempt() {
			return true
		}
	}
	return false
}

// weightLocked scores a worker for partition sizing: its health EWMA
// scaled by relative throughput, clamped so one outlier cannot starve or
// monopolize the queue; c.mu must be held.
func (c *Coordinator) weightLocked(w *remoteWorker) float64 {
	weight := w.br.health
	if w.perRecNanos > 0 && c.perRec > 0 {
		speed := c.perRec / w.perRecNanos
		if speed < 0.05 {
			speed = 0.05
		}
		if speed > 20 {
			speed = 20
		}
		weight *= speed
	}
	if weight < 0.01 {
		weight = 0.01
	}
	return weight
}

// fetchShard dispatches one lease and streams its records straight into
// the section merge, applying any injected network fault. A transport
// failure, deadline, or cut stream leaves the dispatch unsealed; the
// records that framed cleanly before the failure are already merged.
func (c *Coordinator) fetchShard(ctx context.Context, s *sectionRun, d *dispatch) {
	c.mu.Lock()
	c.met.ShardsDispatched++
	c.met.InflightLeases++
	c.mu.Unlock()
	start := time.Now()
	defer func() {
		d.dur = time.Since(start)
		threshold := c.stragglerThreshold()
		c.mu.Lock()
		c.met.InflightLeases--
		c.met.ShardNanos += int64(d.dur)
		if d.dur > threshold {
			c.met.StragglerNanos += int64(d.dur - threshold)
		}
		if d.sealed {
			c.met.ShardsCompleted++
			c.pushDurLocked(d.dur)
		} else {
			c.met.ShardsFailed++
			c.met.Reassignments++
		}
		c.mu.Unlock()
		s.finishStream(d)
	}()

	var fault ShardFault
	if c.opts.Fault != nil {
		fault = c.opts.Fault(ShardAttempt{Worker: d.w.url, Epoch: d.req.Epoch, Lo: d.req.Lo, Hi: d.req.Hi, Round: d.round, Hedge: d.hedge})
	}
	if fault.Drop {
		c.logf("coord: injected drop of lease %d to %s", d.req.Epoch, d.w.url)
		return
	}
	if fault.Delay > 0 {
		select {
		case <-time.After(fault.Delay):
		case <-ctx.Done():
			d.canceled = s.ctx.Err() != nil
			return
		}
	}

	body, err := json.Marshal(d.req)
	if err != nil {
		c.logf("coord: encoding lease %d: %v", d.req.Epoch, err)
		return
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, d.w.url+shardPath, bytes.NewReader(body))
	if err != nil {
		c.logf("coord: lease %d: %v", d.req.Epoch, err)
		return
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.opts.WorkerToken != "" {
		httpReq.Header.Set("Authorization", "Bearer "+c.opts.WorkerToken)
	}
	resp, err := c.opts.Client.Do(httpReq)
	if err != nil {
		d.canceled = s.ctx.Err() != nil
		if !d.canceled {
			c.logf("coord: lease %d to %s: %v", d.req.Epoch, d.w.url, err)
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A rejection (fingerprint or key mismatch, bad request, bad
		// token) is the worker telling us the lease is invalid, not that
		// the worker is unhealthy: log it and leave the breaker alone.
		d.rejected = true
		if resp.StatusCode == http.StatusUnauthorized {
			c.mu.Lock()
			c.met.AuthFailures++
			c.mu.Unlock()
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		c.logf("coord: worker %s rejected lease %d: status %d: %s", d.w.url, d.req.Epoch, resp.StatusCode, bytes.TrimSpace(msg))
		return
	}
	if id := resp.Header.Get(workerHeader); id != "" {
		d.workerID = id
	}

	reader := inject.NewStreamReader(resp.Body)
	for {
		rec, rerr := reader.Next()
		if rerr == io.EOF {
			break // stream ended without a seal: partial
		}
		if rerr != nil {
			d.canceled = s.ctx.Err() != nil
			if !d.canceled {
				c.logf("coord: lease %d stream from %s: %v", d.req.Epoch, d.w.url, rerr)
			}
			break
		}
		if rec.Type == inject.StreamSeal {
			d.sealed = true
			break
		}
		if fault.RecordDelay > 0 {
			select {
			case <-time.After(fault.RecordDelay):
			case <-ctx.Done():
				d.canceled = s.ctx.Err() != nil
				resp.Body.Close()
				return
			}
		}
		d.recs = append(d.recs, rec)
		d.records++
		s.mergeRecord(d, rec)
		if fault.TruncateAfterRecords > 0 && d.records >= fault.TruncateAfterRecords {
			c.logf("coord: injected cut of lease %d after %d records", d.req.Epoch, d.records)
			resp.Body.Close()
			break
		}
		if fault.StallAfterRecords > 0 && d.records >= fault.StallAfterRecords {
			c.logf("coord: injected stall of lease %d after %d records", d.req.Epoch, d.records)
			<-ctx.Done()
			d.canceled = s.ctx.Err() != nil
			resp.Body.Close()
			return
		}
	}
	if fault.Duplicate {
		for _, rec := range d.recs {
			d.records++
			s.mergeRecord(d, rec)
		}
	}
}

// mergeRecord folds one streamed record into the section result the
// moment it arrives: a fresh record resolves its class (and flows to the
// campaign's Record/Poison hooks, i.e. the WAL); a duplicate — from an
// overlapping range, a replayed delivery, or a hedge racing its
// original — is counted and dropped.
func (s *sectionRun) mergeRecord(d *dispatch, rec inject.StreamRecord) {
	c := s.c
	s.mu.Lock()
	defer s.mu.Unlock()
	switch rec.Type {
	case inject.StreamExperiment:
		c.mu.Lock()
		c.met.RecordsStreamed++
		c.mu.Unlock()
		i, ok := s.mg.resolve(rec.Experiment.Key)
		if !ok {
			c.mu.Lock()
			c.met.DuplicateRecords++
			c.mu.Unlock()
			return
		}
		s.res.Outcomes[i] = rec.Experiment.Out
		if s.res.Fins != nil && rec.Experiment.Fin != nil {
			s.res.Fins[i] = *rec.Experiment.Fin
		}
		s.res.Stats.Add(rec.Experiment.Cost)
		s.res.Remote++
		d.fresh++
		c.mu.Lock()
		c.met.RemoteExperiments++
		c.mu.Unlock()
		if s.job.Hooks.Record != nil {
			s.job.Hooks.Record(i, rec.Experiment.Out, rec.Experiment.Fin, rec.Experiment.Cost)
		}
	case inject.StreamPoison:
		i, ok := s.mg.resolve(rec.Poison.Key)
		if !ok {
			c.mu.Lock()
			c.met.DuplicateRecords++
			c.mu.Unlock()
			return
		}
		// Same conservative semantics as the local supervisor: the
		// class's outcome slots get the +Inf SDC fill, the poison is
		// logged, and the experiment is counted without cost.
		s.res.Outcomes[i] = inject.ConservativeSDC(len(s.inst.IO.Outputs))
		if s.res.Fins != nil {
			s.res.Fins[i] = inject.ConservativeSDC(len(s.job.Trace.Prog.FinalOutputs))
		}
		s.res.Stats.Add(inject.Stats{Experiments: 1})
		d.fresh++
		p := inject.Poison{Class: i, Key: rec.Poison.Key, Attempts: rec.Poison.Attempts, MachineFP: rec.Poison.MachineFP, Stack: rec.Poison.Stack}
		s.res.Poisoned = append(s.res.Poisoned, p)
		if s.job.Hooks.Poison != nil {
			s.job.Hooks.Poison(p)
		}
	}
}

// finishStream records shard provenance for a dispatch that delivered
// anything, under its lease epoch.
func (s *sectionRun) finishStream(d *dispatch) {
	if d.records == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res.Shards++
	if s.job.Hooks.Shard != nil {
		s.job.Hooks.Shard(inject.WALShard{Worker: d.workerID, Epoch: d.req.Epoch, Lo: d.req.Lo, Hi: d.req.Hi, Records: d.fresh})
	}
}
