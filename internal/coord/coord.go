// Package coord distributes injection campaigns across machines. A
// Coordinator plugs into the analysis pipeline through core.Config's
// SectionInjector seam: for every section it shards the canonical
// dyn-sorted experiment order into contiguous ranges, leases each range
// to a remote Worker over HTTP, merges the framed WAL records streamed
// back, and falls back to an in-process engine for anything the fleet
// could not deliver — so a distributed campaign always converges to the
// exact result of a local one.
//
// The robustness model composes three existing mechanisms rather than
// inventing new ones:
//
//   - Identity: every lease carries the campaign fingerprint (trace ⊕
//     config) and the section content key; a worker recomputes both from
//     its own build and refuses a mismatch, the same gate WAL resume
//     applies to on-disk segments.
//   - Loss: a worker that dies mid-range leaves a partial stream (framed
//     records, no seal). The coordinator keeps the good prefix — records
//     it already merged and logged — and re-leases only the remainder via
//     the skip-vector resume path (the lease's Done list).
//   - Duplication: shard ranges may overlap and streams may be delivered
//     twice; the merger deduplicates by experiment identity (equivalence
//     class key), first delivery wins, so nothing is double-counted.
//
// Leases carry monotonically increasing epochs, recorded as WAL shard
// provenance so `fasm -wal-info` can attribute a merged segment's records
// to the fleet that produced them.
package coord

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"fastflip/internal/core"
	"fastflip/internal/inject"
	"fastflip/internal/metrics"
	"fastflip/internal/trace"
)

// Options configure a Coordinator. The zero value gets sensible defaults.
type Options struct {
	// Client performs shard and health requests (default: a client with
	// no overall timeout — shard streams are long-lived).
	Client *http.Client
	// Heartbeat is the worker liveness probe interval (default 5s;
	// negative disables probing — workers are then only marked down by
	// failed shard fetches).
	Heartbeat time.Duration
	// HeartbeatMisses is how many consecutive failed probes mark a worker
	// down (default 2). A down worker that answers a later probe revives.
	HeartbeatMisses int
	// MaxRounds bounds dispatch rounds per section before the coordinator
	// stops re-leasing and finishes locally (default 5).
	MaxRounds int
	// Fault, when non-nil, injects network faults into dispatch attempts
	// (chaos tests only).
	Fault FaultPlan
	// Logf, when non-nil, receives coordinator diagnostics.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 5 * time.Second
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = 2
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 5
	}
	return o
}

// WorkerView is a snapshot of one registered worker.
type WorkerView struct {
	URL  string `json:"url"`
	ID   string `json:"id"`
	Live bool   `json:"live"`
}

type remoteWorker struct {
	url   string
	id    string
	down  bool
	fails int // consecutive failed health probes
}

// Coordinator owns the worker registry and runs distributed section
// campaigns. Safe for concurrent use by multiple jobs.
type Coordinator struct {
	opts  Options
	epoch atomic.Uint64

	mu      sync.Mutex
	workers []*remoteWorker
	met     Metrics

	stopOnce sync.Once
	stop     chan struct{}
	hbDone   chan struct{}
}

// NewCoordinator returns a coordinator and starts its heartbeat loop.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:   opts.withDefaults(),
		stop:   make(chan struct{}),
		hbDone: make(chan struct{}),
	}
	if c.opts.Heartbeat > 0 {
		go c.heartbeatLoop()
	} else {
		close(c.hbDone)
	}
	return c
}

// Close stops the heartbeat loop. Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.hbDone
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// AddWorker probes url's health endpoint and registers the worker,
// returning its self-reported ID. Re-adding a known URL revives it.
func (c *Coordinator) AddWorker(url string) (string, error) {
	id, err := c.probe(url)
	if err != nil {
		return "", fmt.Errorf("coord: worker %s: %w", url, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			w.id, w.down, w.fails = id, false, 0
			return id, nil
		}
	}
	c.workers = append(c.workers, &remoteWorker{url: url, id: id})
	return id, nil
}

// Workers snapshots the registry.
func (c *Coordinator) Workers() []WorkerView {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerView, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerView{URL: w.url, ID: w.id, Live: !w.down})
	}
	return out
}

// Metrics snapshots the coordinator's counters and gauges.
func (c *Coordinator) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.met
	m.WorkersRegistered = len(c.workers)
	for _, w := range c.workers {
		if !w.down {
			m.WorkersLive++
		}
	}
	return m
}

// probe fetches url's health endpoint and returns the worker ID.
func (c *Coordinator) probe(url string) (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+healthPath, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("health probe: status %d", resp.StatusCode)
	}
	var body struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", fmt.Errorf("health probe: %w", err)
	}
	return body.Worker, nil
}

// heartbeatLoop probes every registered worker at the configured
// interval: HeartbeatMisses consecutive failures mark a worker down, a
// success revives it. Shard fetch failures mark a worker down
// immediately; the heartbeat is what brings a recovered worker back.
func (c *Coordinator) heartbeatLoop() {
	defer close(c.hbDone)
	ticker := time.NewTicker(c.opts.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
		}
		c.mu.Lock()
		snapshot := append([]*remoteWorker(nil), c.workers...)
		c.mu.Unlock()
		for _, w := range snapshot {
			_, err := c.probe(w.url)
			c.mu.Lock()
			if err != nil {
				w.fails++
				if w.fails >= c.opts.HeartbeatMisses && !w.down {
					w.down = true
					c.logf("coord: worker %s (%s) down after %d failed probes", w.url, w.id, w.fails)
				}
			} else {
				if w.down {
					c.logf("coord: worker %s (%s) revived", w.url, w.id)
				}
				w.fails, w.down = 0, false
			}
			c.mu.Unlock()
		}
	}
}

func (c *Coordinator) liveWorkers() []*remoteWorker {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*remoteWorker
	for _, w := range c.workers {
		if !w.down {
			out = append(out, w)
		}
	}
	return out
}

// markDown takes a worker out of rotation after a failed shard fetch.
func (c *Coordinator) markDown(w *remoteWorker, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !w.down {
		w.down = true
		c.logf("coord: worker %s (%s) down: %v", w.url, w.id, cause)
	}
}

// SectionInjector adapts the coordinator to core's distribution seam for
// one benchmark version: install the result as core.Config.SectionInjector
// and every section of that analysis is sharded across the fleet.
func (c *Coordinator) SectionInjector(benchName, variant string) core.SectionInjector {
	return &sectionInjector{c: c, bench: benchName, variant: variant}
}

type sectionInjector struct {
	c              *Coordinator
	bench, variant string
}

func (s *sectionInjector) InjectSection(ctx context.Context, job core.SectionJob) (core.SectionResult, error) {
	return s.c.injectSection(ctx, s.bench, s.variant, job)
}

// shardResult is one dispatch attempt's outcome: the records that framed
// cleanly before the stream ended, and whether a seal arrived.
type shardResult struct {
	workerID string
	epoch    uint64
	lo, hi   int
	records  []inject.StreamRecord
	sealed   bool
	dur      time.Duration
}

// injectSection runs one section campaign across the fleet. Every round
// it partitions the still-pending positions of the canonical dyn order
// into contiguous ranges, one per live worker, dispatches them in
// parallel, and merges whatever streams back (deduplicated by experiment
// identity). Rounds repeat until the section is resolved, no workers
// remain, or the round budget is spent; the in-process fallback then
// finishes the remainder, so the campaign converges unconditionally.
func (c *Coordinator) injectSection(ctx context.Context, benchName, variant string, job core.SectionJob) (core.SectionResult, error) {
	classes := job.Classes
	inst := job.Trace.Instances[job.Instance]
	res := core.SectionResult{Outcomes: make([]metrics.Outcome, len(classes))}
	if job.CoRun {
		res.Fins = make([]metrics.Outcome, len(classes))
	}
	mg := newMerger(classes, job.Hooks.Skip)
	order := inject.DynOrder(classes)

	req := ShardRequest{
		Bench:       benchName,
		Variant:     variant,
		Instance:    job.Instance,
		SectionKey:  hex.EncodeToString(job.Key[:]),
		Fingerprint: core.CampaignFingerprint(job.Trace.Fingerprint(), job.Config),
		Config:      shardConfig(job.Config),
	}

	for round := 0; round < c.opts.MaxRounds && !mg.done() && ctx.Err() == nil; round++ {
		pending := mg.pendingPositions(order)
		live := c.liveWorkers()
		if len(live) == 0 {
			break
		}
		n := len(live)
		if n > len(pending) {
			n = len(pending)
		}
		done := mg.resolvedIndices()
		results := make([]*shardResult, n)
		var wg sync.WaitGroup
		for k := 0; k < n; k++ {
			r := req
			// The chunk's range spans its first to last pending position;
			// already-resolved positions inside are excluded by Done.
			chunk := pending[k*len(pending)/n : (k+1)*len(pending)/n]
			r.Lo, r.Hi = chunk[0], chunk[len(chunk)-1]+1
			r.Done = done
			r.Epoch = c.epoch.Add(1)
			wg.Add(1)
			go func(k int, w *remoteWorker, r ShardRequest) {
				defer wg.Done()
				results[k] = c.fetchShard(ctx, w, r, round)
			}(k, live[k], r)
		}
		wg.Wait()

		var minDur, maxDur time.Duration = -1, 0
		for _, sr := range results {
			if sr == nil {
				continue
			}
			c.mergeShard(&res, job, inst, mg, sr)
			if sr.dur > 0 {
				if minDur < 0 || sr.dur < minDur {
					minDur = sr.dur
				}
				if sr.dur > maxDur {
					maxDur = sr.dur
				}
			}
		}
		if minDur >= 0 {
			c.mu.Lock()
			c.met.StragglerNanos += int64(maxDur - minDur)
			c.mu.Unlock()
		}
	}

	// Whatever the fleet could not deliver runs in-process — including
	// the whole section when no workers are registered. The skip vector
	// holds everything already merged, so only the true remainder runs.
	if !mg.done() && ctx.Err() == nil {
		skip := mg.skipVector()
		hooks := job.Hooks
		hooks.Skip = skip
		hooks.Range = nil
		inj := &inject.Injector{T: job.Trace, Workers: job.Config.Workers, Legacy: job.Config.LegacyReplay, NoBatch: job.Config.NoBatch}
		var outs, fins []metrics.Outcome
		var stats inject.Stats
		if job.CoRun {
			outs, fins, stats = inj.RunSectionCoRunResume(ctx, inst, classes, hooks)
		} else {
			outs, stats = inj.RunSectionResume(ctx, inst, classes, hooks)
		}
		for i := range classes {
			if !(i < len(skip) && skip[i]) {
				res.Outcomes[i] = outs[i]
				if res.Fins != nil {
					res.Fins[i] = fins[i]
				}
			}
		}
		res.Stats.Add(stats)
		res.Poisoned = append(res.Poisoned, inj.Poisoned()...)
		c.mu.Lock()
		c.met.LocalFallbackExperiments += uint64(stats.Experiments)
		c.mu.Unlock()
	}
	return res, nil
}

// fetchShard dispatches one lease and reads its stream, applying any
// injected network fault. A transport failure or a cut stream marks the
// worker down and leaves the result unsealed; the records that framed
// cleanly before the failure are kept.
func (c *Coordinator) fetchShard(ctx context.Context, w *remoteWorker, req ShardRequest, round int) *shardResult {
	c.mu.Lock()
	c.met.ShardsDispatched++
	c.met.InflightLeases++
	c.mu.Unlock()
	start := time.Now()
	sr := &shardResult{workerID: w.id, epoch: req.Epoch, lo: req.Lo, hi: req.Hi}
	defer func() {
		sr.dur = time.Since(start)
		c.mu.Lock()
		c.met.InflightLeases--
		c.met.ShardNanos += int64(sr.dur)
		if sr.sealed {
			c.met.ShardsCompleted++
		} else {
			c.met.ShardsFailed++
			c.met.Reassignments++
		}
		c.mu.Unlock()
	}()

	var fault ShardFault
	if c.opts.Fault != nil {
		fault = c.opts.Fault(ShardAttempt{Worker: w.url, Epoch: req.Epoch, Lo: req.Lo, Hi: req.Hi, Round: round})
	}
	if fault.Drop {
		c.logf("coord: injected drop of lease %d to %s", req.Epoch, w.url)
		return sr
	}

	body, err := json.Marshal(req)
	if err != nil {
		c.logf("coord: encoding lease %d: %v", req.Epoch, err)
		return sr
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+shardPath, bytes.NewReader(body))
	if err != nil {
		c.logf("coord: lease %d: %v", req.Epoch, err)
		return sr
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(httpReq)
	if err != nil {
		c.markDown(w, err)
		return sr
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A rejection (fingerprint or key mismatch, bad request) is the
		// worker telling us the lease is invalid, not that the worker is
		// unhealthy: log it and leave the worker in rotation.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		c.logf("coord: worker %s rejected lease %d: status %d: %s", w.url, req.Epoch, resp.StatusCode, bytes.TrimSpace(msg))
		return sr
	}
	if id := resp.Header.Get(workerHeader); id != "" {
		sr.workerID = id
	}

	reader := inject.NewStreamReader(resp.Body)
	for {
		rec, rerr := reader.Next()
		if rerr == io.EOF {
			break // stream ended without a seal: partial
		}
		if rerr != nil {
			c.markDown(w, rerr)
			break
		}
		if rec.Type == inject.StreamSeal {
			sr.sealed = true
			break
		}
		sr.records = append(sr.records, rec)
		if fault.TruncateAfterRecords > 0 && len(sr.records) >= fault.TruncateAfterRecords {
			c.logf("coord: injected cut of lease %d after %d records", req.Epoch, len(sr.records))
			resp.Body.Close()
			break
		}
	}
	if fault.Duplicate {
		sr.records = append(sr.records, sr.records...)
	}
	return sr
}

// mergeShard folds one shard stream into the section result: fresh
// records resolve their class (and flow to the campaign's Record/Poison
// hooks, i.e. the WAL); duplicates are counted and dropped. A stream that
// contributed anything is recorded as shard provenance under its lease
// epoch.
func (c *Coordinator) mergeShard(res *core.SectionResult, job core.SectionJob, inst *trace.Instance, mg *merger, sr *shardResult) {
	fresh := 0
	for _, rec := range sr.records {
		switch rec.Type {
		case inject.StreamExperiment:
			c.mu.Lock()
			c.met.RecordsStreamed++
			c.mu.Unlock()
			i, ok := mg.resolve(rec.Experiment.Key)
			if !ok {
				c.mu.Lock()
				c.met.DuplicateRecords++
				c.mu.Unlock()
				continue
			}
			res.Outcomes[i] = rec.Experiment.Out
			if res.Fins != nil && rec.Experiment.Fin != nil {
				res.Fins[i] = *rec.Experiment.Fin
			}
			res.Stats.Add(rec.Experiment.Cost)
			res.Remote++
			fresh++
			c.mu.Lock()
			c.met.RemoteExperiments++
			c.mu.Unlock()
			if job.Hooks.Record != nil {
				job.Hooks.Record(i, rec.Experiment.Out, rec.Experiment.Fin, rec.Experiment.Cost)
			}
		case inject.StreamPoison:
			i, ok := mg.resolve(rec.Poison.Key)
			if !ok {
				c.mu.Lock()
				c.met.DuplicateRecords++
				c.mu.Unlock()
				continue
			}
			// Same conservative semantics as the local supervisor: the
			// class's outcome slots get the +Inf SDC fill, the poison is
			// logged, and the experiment is counted without cost.
			res.Outcomes[i] = inject.ConservativeSDC(len(inst.IO.Outputs))
			if res.Fins != nil {
				res.Fins[i] = inject.ConservativeSDC(len(job.Trace.Prog.FinalOutputs))
			}
			res.Stats.Add(inject.Stats{Experiments: 1})
			p := inject.Poison{Class: i, Key: rec.Poison.Key, Attempts: rec.Poison.Attempts, MachineFP: rec.Poison.MachineFP, Stack: rec.Poison.Stack}
			res.Poisoned = append(res.Poisoned, p)
			if job.Hooks.Poison != nil {
				job.Hooks.Poison(p)
			}
		}
	}
	if len(sr.records) > 0 {
		res.Shards++
		if job.Hooks.Shard != nil {
			job.Hooks.Shard(inject.WALShard{Worker: sr.workerID, Epoch: sr.epoch, Lo: sr.lo, Hi: sr.hi, Records: fresh})
		}
	}
}
