package coord

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fastflip/internal/core"
)

// TestDistributedStallHedged: one worker freezes mid-stream and never
// recovers; the completion-driven scheduler must hedge the straggler's
// remainder to the idle worker and converge to the exact local summary —
// with the hedge's duplicated delivery counted, not double-merged.
func TestDistributedStallHedged(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	want := runLocal(t, cfg)

	var mu sync.Mutex
	stalled := false
	plan := func(a ShardAttempt) ShardFault {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case a.Hedge:
			// Every hedge is delivered twice: dedupe must absorb the race
			// between the hedge and whatever the original already merged.
			return ShardFault{Duplicate: true}
		case !stalled:
			// The campaign's first lease freezes after two records, forever.
			stalled = true
			return ShardFault{StallAfterRecords: 2}
		}
		return ShardFault{}
	}

	c := NewCoordinator(Options{
		Heartbeat:      -1,
		Fault:          plan,
		StragglerFloor: 50 * time.Millisecond,
		Logf:           t.Logf,
	})
	defer c.Close()
	for _, srv := range []*httptest.Server{startWorker(t, "stall"), startWorker(t, "rescue")} {
		if _, err := c.AddWorker(srv.URL); err != nil {
			t.Fatal(err)
		}
	}

	got, r := runDistributed(t, cfg, c)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("stall summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
	}
	met := c.Metrics()
	if met.HedgedDispatches == 0 {
		t.Errorf("stalled stream produced no hedge: %+v", met)
	}
	if r.HedgedDispatches == 0 {
		t.Errorf("hedges not surfaced in the analysis result: %+v", r.HedgedDispatches)
	}
	if met.DuplicateRecords == 0 {
		t.Errorf("duplicated hedge delivery produced no counted duplicates: %+v", met)
	}
}

// TestHungWorkerDeadlineBudget: a worker that accepts leases and then
// never sends a byte must not wedge the campaign. Every dispatch carries
// a deadline budget capped by ShardTimeout, the timeouts feed the hung
// worker's circuit breaker until it opens, and the healthy worker
// finishes the campaign byte-identical to local.
func TestHungWorkerDeadlineBudget(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	want := runLocal(t, cfg)

	// The hung worker answers health probes (so registration succeeds)
	// but blocks forever on every shard lease, holding the connection
	// open without writing — the worst-case wedge a default http.Client
	// with no timeout would wait on indefinitely.
	healthy := NewWorker(WorkerOptions{ID: "hung", Build: pipelineBuild, Workers: 1})
	block := make(chan struct{})
	hung := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, healthPath) {
			healthy.ServeHTTP(rw, r)
			return
		}
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	// Release the blocked handlers before Close waits on them.
	defer func() {
		close(block)
		hung.Close()
	}()

	// ShardTimeout below the straggler floor pins the failure mode: a
	// hung lease always hits its deadline (feeding the breaker) before a
	// hedge or section completion can cancel it neutrally. Two timeouts
	// open the circuit, and the long backoff keeps it open through the
	// end of the campaign.
	c := NewCoordinator(Options{
		Heartbeat:        -1,
		ShardTimeout:     150 * time.Millisecond,
		StragglerFloor:   500 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerBackoff:   time.Minute,
		Logf:             t.Logf,
	})
	defer c.Close()
	for _, url := range []string{hung.URL, startWorker(t, "good").URL} {
		if _, err := c.AddWorker(url); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	got, _ := runDistributed(t, cfg, c)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("hung-worker summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
	}
	met := c.Metrics()
	if met.ShardsFailed == 0 {
		t.Errorf("hung worker's dispatches never timed out: %+v", met)
	}
	if met.BreakerOpen == 0 {
		t.Errorf("repeated timeouts never opened the hung worker's circuit: %+v", met)
	}
	if met.Releases == 0 {
		t.Errorf("timed-out leases returned no work to the queue: %+v", met)
	}
	hungLive := false
	for _, w := range c.Workers() {
		if w.ID == "hung" && w.Live {
			hungLive = true
		}
	}
	if hungLive {
		t.Error("hung worker still live after its circuit opened")
	}
	t.Logf("hung-worker campaign finished in %v (failed=%d breaker_open=%d)",
		time.Since(start).Round(time.Millisecond), met.ShardsFailed, met.BreakerOpen)
}

// TestWorkerAuth covers the shared-secret bearer-token gate end to end:
// the worker refuses untokened and mistokened leases with 401 (keeping
// its health endpoint open for liveness), a mismatched coordinator
// counts the rejections and converges through the local fallback, and a
// matched coordinator runs the campaign remotely.
func TestWorkerAuth(t *testing.T) {
	srv := httptest.NewServer(NewWorker(WorkerOptions{ID: "gated", Build: pipelineBuild, Workers: 1, Token: "s3cret"}))
	defer srv.Close()

	// Raw surface: healthz open, shard gated.
	resp, err := srv.Client().Get(srv.URL + healthPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with no token: %d, want open", resp.StatusCode)
	}
	for _, tc := range []struct{ name, header string }{
		{"noToken", ""},
		{"wrongToken", "Bearer nope"},
		{"malformed", "s3cret"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPost, srv.URL+shardPath, strings.NewReader("{}"))
			if tc.header != "" {
				req.Header.Set("Authorization", tc.header)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("shard with %q: %d, want 401", tc.header, resp.StatusCode)
			}
		})
	}

	cfg := core.DefaultConfig()
	cfg.Workers = 1
	want := runLocal(t, cfg)

	t.Run("mismatch", func(t *testing.T) {
		c := NewCoordinator(Options{Heartbeat: -1, WorkerToken: "wrong", MaxRounds: 2, Logf: t.Logf})
		defer c.Close()
		if _, err := c.AddWorker(srv.URL); err != nil {
			t.Fatal(err)
		}
		got, r := runDistributed(t, cfg, c)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("mistokened summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
		}
		if r.RemoteExperiments != 0 {
			t.Errorf("mistokened coordinator ran %d experiments remotely", r.RemoteExperiments)
		}
		met := c.Metrics()
		if met.AuthFailures == 0 {
			t.Errorf("401 rejections not counted: %+v", met)
		}
		// A credential mismatch is an operator error, not worker sickness:
		// the worker stays live and its breaker closed.
		for _, w := range c.Workers() {
			if !w.Live || w.State != "closed" {
				t.Errorf("auth rejection changed worker state: %+v", w)
			}
		}
	})

	t.Run("match", func(t *testing.T) {
		c := NewCoordinator(Options{Heartbeat: -1, WorkerToken: "s3cret", Logf: t.Logf})
		defer c.Close()
		if _, err := c.AddWorker(srv.URL); err != nil {
			t.Fatal(err)
		}
		got, r := runDistributed(t, cfg, c)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("tokened summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
		}
		if r.RemoteExperiments == 0 {
			t.Error("tokened coordinator ran nothing remotely")
		}
		if met := c.Metrics(); met.AuthFailures != 0 {
			t.Errorf("matched token produced auth failures: %+v", met)
		}
	})
}
