package coord

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fastflip/internal/bench"
	"fastflip/internal/core"
)

// Environment plumbing for the worker subprocess: the file it writes its
// listen URL to, and its worker identity.
const (
	workerEnvAddrFile = "FASTFLIP_DIST_WORKER_ADDRFILE"
	workerEnvID       = "FASTFLIP_DIST_WORKER_ID"
)

// TestDistWorkerProcess is the subprocess body of the kill e2e: a real
// ffserved-style worker process serving shards until the parent kills
// it. Skipped in normal runs.
func TestDistWorkerProcess(t *testing.T) {
	addrFile := os.Getenv(workerEnvAddrFile)
	if addrFile == "" {
		t.Skip("subprocess helper")
	}
	w := NewWorker(WorkerOptions{ID: os.Getenv(workerEnvID), Workers: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The URL is written atomically (rename) so the parent never reads a
	// half-written address.
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		t.Fatal(err)
	}
	_ = http.Serve(ln, w) // runs until SIGKILL
}

// spawnWorker launches one worker subprocess and returns its base URL and
// process handle.
func spawnWorker(t *testing.T, dir, id string) (*exec.Cmd, string) {
	t.Helper()
	addrFile := filepath.Join(dir, id+".addr")
	child := exec.Command(os.Args[0], "-test.run", "^TestDistWorkerProcess$", "-test.v")
	child.Env = append(os.Environ(), workerEnvAddrFile+"="+addrFile, workerEnvID+"="+id)
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		child.Process.Kill()
		child.Wait()
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if url, err := os.ReadFile(addrFile); err == nil {
			return child, string(url)
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %s never published its address", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDistributedFFTSmallWorkerKilled is the distributed kill e2e on
// fft-small: two real worker processes run the campaign, one is SIGKILLed
// mid-shard, and the reassigned campaign's summary must be byte-identical
// to an uninterrupted single-process run.
func TestDistributedFFTSmallWorkerKilled(t *testing.T) {
	if testing.Short() {
		t.Skip("full injection campaign across processes")
	}

	cfg := core.DefaultConfig()
	p := bench.MustBuild("fft", bench.Small)

	// Reference: uninterrupted, local, no fleet.
	rRef, err := core.NewAnalyzer(cfg).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)
	neutralize(sumRef)

	dir := t.TempDir()
	victim, url1 := spawnWorker(t, dir, "victim")
	_, url2 := spawnWorker(t, dir, "survivor")

	c := NewCoordinator(Options{Heartbeat: -1, Logf: t.Logf})
	defer c.Close()
	for _, url := range []string{url1, url2} {
		if _, err := c.AddWorker(url); err != nil {
			t.Fatal(err)
		}
	}

	type outcome struct {
		r   *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		cfg := cfg
		cfg.SectionInjector = c.SectionInjector("fft", string(bench.Small))
		r, err := core.NewAnalyzer(cfg).Analyze(p)
		done <- outcome{r, err}
	}()

	// SIGKILL the victim once records are flowing — mid-shard, with leases
	// in flight. No deferred cleanup runs in the child.
	killDeadline := time.Now().Add(120 * time.Second)
	for c.Metrics().RecordsStreamed < 8 {
		select {
		case o := <-done:
			t.Fatalf("campaign finished before the kill (records=%d, err=%v)", c.Metrics().RecordsStreamed, o.err)
		default:
		}
		if time.Now().After(killDeadline) {
			t.Fatal("no records streamed within the deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim.Process.Kill()
	victim.Wait()

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	sum := o.r.Summarize(cfg.Epsilon, nil)
	neutralize(sum)
	if !reflect.DeepEqual(sumRef, sum) {
		t.Errorf("summary after worker kill differs from uninterrupted local run:\nlocal: %+v\ndist:  %+v", sumRef, sum)
	}

	met := c.Metrics()
	if o.r.RemoteExperiments == 0 || met.RecordsStreamed == 0 || met.ShardsDispatched == 0 {
		t.Errorf("shard metrics empty: %+v", met)
	}
	if met.Reassignments == 0 {
		t.Errorf("killed worker produced no reassignment: %+v", met)
	}
	live := 0
	for _, w := range c.Workers() {
		if w.Live {
			live++
		}
	}
	if live != 1 {
		t.Errorf("%d live workers after the kill, want 1", live)
	}
	t.Logf("kill e2e: remote=%d fallback=%d reassignments=%d duplicates=%d straggler=%s",
		met.RemoteExperiments, met.LocalFallbackExperiments, met.Reassignments, met.DuplicateRecords,
		time.Duration(met.StragglerNanos))
}

// TestDistributedFFTSmallWorkerStalled is the straggler-chaos e2e on
// fft-small: two workers run the campaign, one freezes mid-stream on its
// first lease and never recovers, and the scheduler must hedge the
// stalled remainder to the healthy worker and finish — byte-identical to
// an uninterrupted local run, with the hedge's duplicated delivery
// counted instead of double-merged, and without waiting out the stall.
func TestDistributedFFTSmallWorkerStalled(t *testing.T) {
	if testing.Short() {
		t.Skip("full injection campaign")
	}

	cfg := core.DefaultConfig()
	p := bench.MustBuild("fft", bench.Small)

	rRef, err := core.NewAnalyzer(cfg).Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)
	neutralize(sumRef)

	var mu sync.Mutex
	stalled := false
	plan := func(a ShardAttempt) ShardFault {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case a.Hedge:
			return ShardFault{Duplicate: true}
		case !stalled:
			stalled = true
			return ShardFault{StallAfterRecords: 8}
		}
		return ShardFault{}
	}

	c := NewCoordinator(Options{
		Heartbeat:      -1,
		Fault:          plan,
		StragglerFloor: 100 * time.Millisecond,
		Logf:           t.Logf,
	})
	defer c.Close()
	for _, id := range []string{"stall", "rescue"} {
		srv := httptest.NewServer(NewWorker(WorkerOptions{ID: id, Workers: 1}))
		t.Cleanup(srv.Close)
		if _, err := c.AddWorker(srv.URL); err != nil {
			t.Fatal(err)
		}
	}

	// The stalled stream never ends on its own: the campaign finishing at
	// all (under the suite deadline) is the hedging claim. A generous
	// watchdog turns a wedged scheduler into a failure, not a timeout.
	type outcome struct {
		r   *core.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		cfg := cfg
		cfg.SectionInjector = c.SectionInjector("fft", string(bench.Small))
		r, err := core.NewAnalyzer(cfg).Analyze(p)
		done <- outcome{r, err}
	}()
	var o outcome
	select {
	case o = <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("campaign did not complete while a worker was stalled")
	}
	if o.err != nil {
		t.Fatal(o.err)
	}

	sum := o.r.Summarize(cfg.Epsilon, nil)
	neutralize(sum)
	if !reflect.DeepEqual(sumRef, sum) {
		t.Errorf("summary with stalled worker differs from uninterrupted local run:\nlocal: %+v\ndist:  %+v", sumRef, sum)
	}
	met := c.Metrics()
	if met.HedgedDispatches == 0 || o.r.HedgedDispatches == 0 {
		t.Errorf("stalled worker produced no hedge: met=%d result=%d", met.HedgedDispatches, o.r.HedgedDispatches)
	}
	if met.DuplicateRecords == 0 {
		t.Errorf("duplicated hedge delivery produced no counted duplicates: %+v", met)
	}
	t.Logf("stall e2e: remote=%d fallback=%d hedged=%d releases=%d duplicates=%d p95=%s",
		met.RemoteExperiments, met.LocalFallbackExperiments, met.HedgedDispatches, met.Releases,
		met.DuplicateRecords, time.Duration(met.ShardP95Nanos))
}

// TestWorkerHTTPSurface drives the worker handler exactly as a remote
// coordinator's HTTP client would: health probe, malformed lease, and an
// out-of-range instance.
func TestWorkerHTTPSurface(t *testing.T) {
	srv := startWorker(t, "w-api")
	client := srv.Client()

	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"malformed", "{", http.StatusBadRequest},
		{"badInstance", `{"bench":"pipe","variant":"none","instance":99}`, http.StatusBadRequest},
		{"staleFingerprint", `{"bench":"pipe","variant":"none","instance":0,"fingerprint":12345}`, http.StatusConflict},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := client.Post(srv.URL+"/v1/shard", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}
