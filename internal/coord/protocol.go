package coord

import (
	"fastflip/internal/core"
	"fastflip/internal/sens"
)

// Wire protocol paths and headers shared by coordinator and worker.
const (
	// shardPath accepts a ShardRequest and streams framed WAL records back.
	shardPath = "/v1/shard"
	// healthPath answers worker liveness probes with the worker's ID.
	healthPath = "/healthz"

	// workerHeader and epochHeader echo the shard's provenance on the
	// response so the coordinator can attribute a stream even when the
	// request's expectations were stale.
	workerHeader = "X-Fastflip-Worker"
	epochHeader  = "X-Fastflip-Epoch"
)

// ShardConfig is the wire form of exactly the analysis knobs a WAL
// campaign fingerprint covers (plus trace-shaping ones): everything that
// changes experiment outcomes, class enumeration, or the section content
// key. A worker reconstructs a core.Config from it, recomputes the
// campaign fingerprint against its own independently recorded trace, and
// refuses shards whose fingerprint disagrees — the network analogue of
// resume rejecting a stale or wrong-config segment.
type ShardConfig struct {
	Prune              bool    `json:"prune"`
	BurstWidth         int     `json:"burst_width"`
	CoRun              bool    `json:"co_run"`
	LegacyReplay       bool    `json:"legacy_replay"`
	Elide              bool    `json:"elide"`
	NoBatch            bool    `json:"no_batch"`
	StrictReuseKeys    bool    `json:"strict_reuse_keys"`
	CheckpointInterval int64   `json:"checkpoint_interval"`
	SensSamples        int     `json:"sens_samples"`
	SensPhiMax         float64 `json:"sens_phi_max"`
	SensSeed           int64   `json:"sens_seed"`
}

// shardConfig extracts the wire knobs from a full analysis config.
func shardConfig(cfg core.Config) ShardConfig {
	return ShardConfig{
		Prune:              cfg.Prune,
		BurstWidth:         cfg.BurstWidth,
		CoRun:              cfg.CoRunBaseline,
		LegacyReplay:       cfg.LegacyReplay,
		Elide:              cfg.Elide,
		NoBatch:            cfg.NoBatch,
		StrictReuseKeys:    cfg.StrictReuseKeys,
		CheckpointInterval: cfg.CheckpointInterval,
		SensSamples:        cfg.Sens.Samples,
		SensPhiMax:         cfg.Sens.PhiMax,
		SensSeed:           cfg.Sens.Seed,
	}
}

// analysisConfig reconstructs the worker-side core.Config. Only the
// fingerprint-covered knobs are populated — scheduling knobs (Workers)
// are the worker's own business.
func (sc ShardConfig) analysisConfig(workers int) core.Config {
	return core.Config{
		Prune:              sc.Prune,
		BurstWidth:         sc.BurstWidth,
		CoRunBaseline:      sc.CoRun,
		LegacyReplay:       sc.LegacyReplay,
		Elide:              sc.Elide,
		NoBatch:            sc.NoBatch,
		StrictReuseKeys:    sc.StrictReuseKeys,
		CheckpointInterval: sc.CheckpointInterval,
		Sens:               sens.Config{Samples: sc.SensSamples, PhiMax: sc.SensPhiMax, Seed: sc.SensSeed},
		Workers:            workers,
	}
}

// ShardRequest leases one contiguous range of a section campaign's
// canonical dyn-sorted experiment order to a worker. The worker rebuilds
// the benchmark, records its own trace, enumerates the same classes, and
// runs positions [Lo, Hi) of inject.DynOrder minus the Done classes,
// streaming each completed experiment back as a framed WAL record.
type ShardRequest struct {
	Bench   string `json:"bench"`
	Variant string `json:"variant"`
	// Instance indexes the trace's section instances.
	Instance int `json:"instance"`
	// SectionKey is the hex section content key; the worker recomputes it
	// and rejects a mismatch (its build of the benchmark differs).
	SectionKey string `json:"section_key"`
	// Fingerprint is the campaign fingerprint (trace ⊕ config); the
	// worker recomputes and rejects stale or wrong-config shards.
	Fingerprint uint64 `json:"fingerprint"`
	// Lo, Hi bound the leased dyn-order positions [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Done lists class indices already resolved (recovered from the WAL
	// or merged from earlier shards); the worker skips them, which is how
	// a re-lease after a worker loss runs only the unlogged remainder.
	Done []int `json:"done,omitempty"`
	// Epoch is the lease epoch, for provenance records.
	Epoch  uint64      `json:"epoch"`
	Config ShardConfig `json:"config"`
}
