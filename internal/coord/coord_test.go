package coord

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"fastflip/internal/core"
	"fastflip/internal/inject"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
)

// pipelineBuild serves the two-section testprog pipeline under any name,
// so coordinator and workers agree on the program without the benchmark
// registry.
func pipelineBuild(string, string) (*spec.Program, error) {
	return testprog.Pipeline(), nil
}

// startWorker serves one in-process shard worker over a real listener.
func startWorker(t *testing.T, id string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewWorker(WorkerOptions{ID: id, Build: pipelineBuild, Workers: 1}))
	t.Cleanup(srv.Close)
	return srv
}

// neutralize zeroes the summary fields that legitimately differ between a
// distributed and a local run: wall time, the engine-work split, resume
// and distribution bookkeeping. Outcome counts and accounted costs must
// survive untouched — they are what "byte-identical" means.
func neutralize(s *core.Summary) {
	s.FFWall = 0
	s.FFCleanInstrs, s.FFFaultyInstrs = 0, 0
	// Batch telemetry describes how the engine executed, not what it
	// found (the same exclusion resume equivalence applies): lease
	// boundaries under the completion-driven scheduler depend on shard
	// timing, and a range cut mid-group regroups the remainder into
	// different batch dispatches. Outcomes and accounted costs are
	// boundary-invariant and must survive untouched.
	s.BatchedExperiments, s.BatchReplicasAvg = 0, 0
	s.ResumedExperiments = 0
	s.WALNotes = nil
	s.RemoteExperiments = 0
	s.ShardsMerged = 0
	s.HedgedDispatches = 0
	s.Releases = 0
	if s.Baseline != nil {
		s.Baseline.Wall = 0
		s.Baseline.CleanInstrs, s.Baseline.FaultyInstrs = 0, 0
	}
}

// runLocal is the reference: the same analysis with no fleet.
func runLocal(t *testing.T, cfg core.Config) *core.Summary {
	t.Helper()
	r, err := core.NewAnalyzer(cfg).Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summarize(cfg.Epsilon, nil)
	neutralize(s)
	return s
}

func runDistributed(t *testing.T, cfg core.Config, c *Coordinator) (*core.Summary, *core.Result) {
	t.Helper()
	cfg.SectionInjector = c.SectionInjector("pipe", "none")
	r, err := core.NewAnalyzer(cfg).Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summarize(cfg.Epsilon, nil)
	neutralize(s)
	return s, r
}

// TestDistributedMatchesLocal: a clean two-worker fleet produces a
// summary byte-identical to the single-process run, with every experiment
// executed remotely.
func TestDistributedMatchesLocal(t *testing.T) {
	for _, coRun := range []bool{false, true} {
		t.Run(fmt.Sprintf("coRun=%v", coRun), func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.Workers = 1
			cfg.CoRunBaseline = coRun
			want := runLocal(t, cfg)

			c := NewCoordinator(Options{Heartbeat: -1, Logf: t.Logf})
			defer c.Close()
			for i, srv := range []*httptest.Server{startWorker(t, "w1"), startWorker(t, "w2")} {
				id, err := c.AddWorker(srv.URL)
				if err != nil {
					t.Fatal(err)
				}
				if want := fmt.Sprintf("w%d", i+1); id != want {
					t.Fatalf("worker id %q, want %q", id, want)
				}
			}

			got, r := runDistributed(t, cfg, c)
			if r.RemoteExperiments == 0 || r.ShardsMerged == 0 {
				t.Fatalf("nothing ran remotely: remote=%d shards=%d", r.RemoteExperiments, r.ShardsMerged)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("distributed summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
			}
			met := c.Metrics()
			if met.ShardsCompleted == 0 || met.RecordsStreamed == 0 || met.ShardNanos == 0 {
				t.Errorf("shard metrics empty: %+v", met)
			}
			if met.LocalFallbackExperiments != 0 {
				t.Errorf("clean fleet fell back locally: %+v", met)
			}
			if met.RemoteExperiments != uint64(r.RemoteExperiments) {
				t.Errorf("metrics/result disagree on remote experiments: %d vs %d", met.RemoteExperiments, r.RemoteExperiments)
			}
		})
	}
}

// TestDistributedChaosConverges: dropped leases, streams cut mid-shard,
// and duplicate delivery on every retry — the campaign must still
// converge to the exact local summary with nothing double-counted.
func TestDistributedChaosConverges(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	want := runLocal(t, cfg)

	var mu sync.Mutex
	cut := map[string]bool{}
	plan := func(a ShardAttempt) ShardFault {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case a.Round == 0 && !cut["drop"]:
			// First lease of the campaign vanishes entirely.
			cut["drop"] = true
			return ShardFault{Drop: true}
		case a.Round == 0:
			// The other first-round stream is cut after one record.
			return ShardFault{TruncateAfterRecords: 1}
		default:
			// Every retry is delivered twice: the dedupe must hold.
			return ShardFault{Duplicate: true}
		}
	}

	c := NewCoordinator(Options{Heartbeat: -1, Fault: plan, Logf: t.Logf})
	defer c.Close()
	for _, srv := range []*httptest.Server{startWorker(t, "w1"), startWorker(t, "w2")} {
		if _, err := c.AddWorker(srv.URL); err != nil {
			t.Fatal(err)
		}
	}

	got, _ := runDistributed(t, cfg, c)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("chaos summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
	}
	met := c.Metrics()
	if met.Reassignments == 0 {
		t.Errorf("dropped and cut leases produced no reassignments: %+v", met)
	}
	if met.DuplicateRecords == 0 {
		t.Errorf("duplicated streams produced no counted duplicates: %+v", met)
	}
}

// TestNoWorkersFallsBackLocal: a coordinator with an empty fleet is just
// a slow way to spell a local run.
func TestNoWorkersFallsBackLocal(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	want := runLocal(t, cfg)

	c := NewCoordinator(Options{Heartbeat: -1, Logf: t.Logf})
	defer c.Close()
	got, r := runDistributed(t, cfg, c)
	if r.RemoteExperiments != 0 || r.ShardsMerged != 0 {
		t.Fatalf("empty fleet ran remote work: %+v", r)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fallback summary differs from local:\nlocal: %+v\ndist:  %+v", want, got)
	}
	if met := c.Metrics(); met.LocalFallbackExperiments == 0 {
		t.Errorf("fallback ran but was not counted: %+v", met)
	}
}

// TestWrongProgramWorkerRejected: a worker serving a different program
// computes a different campaign fingerprint, refuses every lease with a
// 409, and the campaign converges through the local fallback — a stale
// fleet can slow an analysis down but never corrupt it.
func TestWrongProgramWorkerRejected(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	want := runLocal(t, cfg)

	wrong := httptest.NewServer(NewWorker(WorkerOptions{ID: "stale", Workers: 1,
		Build: func(string, string) (*spec.Program, error) { return testprog.PipelineModified(), nil }}))
	defer wrong.Close()

	c := NewCoordinator(Options{Heartbeat: -1, MaxRounds: 2, Logf: t.Logf})
	defer c.Close()
	if _, err := c.AddWorker(wrong.URL); err != nil {
		t.Fatal(err)
	}

	got, r := runDistributed(t, cfg, c)
	if r.RemoteExperiments != 0 {
		t.Fatalf("stale worker's results were merged: %+v", r)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("summary with stale fleet differs from local:\nlocal: %+v\ndist:  %+v", want, got)
	}
	met := c.Metrics()
	if met.ShardsFailed == 0 {
		t.Errorf("rejected leases not counted as failed: %+v", met)
	}
	// Rejection is not unhealthiness: the worker must still be live.
	if ws := c.Workers(); len(ws) != 1 || !ws[0].Live {
		t.Errorf("rejected worker fell out of rotation: %+v", ws)
	}
}

// TestDistributedWALShardProvenance: a WAL-backed distributed campaign
// records which worker and lease delivered each merged shard, and the
// segments carry it for fasm -wal-info.
func TestDistributedWALShardProvenance(t *testing.T) {
	dir := t.TempDir()
	cfg := core.DefaultConfig()
	cfg.Workers = 1
	cfg.WALDir = dir

	c := NewCoordinator(Options{Heartbeat: -1, Logf: t.Logf})
	defer c.Close()
	if _, err := c.AddWorker(startWorker(t, "w1").URL); err != nil {
		t.Fatal(err)
	}
	_, r := runDistributed(t, cfg, c)
	if r.ShardsMerged == 0 {
		t.Fatal("no shards merged")
	}

	segs, err := filepath.Glob(filepath.Join(dir, "*", "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (err=%v)", err)
	}
	shards := 0
	for _, seg := range segs {
		info, err := inject.InspectSegment(seg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range info.Shards {
			shards++
			if s.Worker != "w1" || s.Epoch == 0 || s.Records == 0 || s.Hi <= s.Lo {
				t.Errorf("segment %s: implausible shard provenance %+v", seg, s)
			}
		}
	}
	if shards != r.ShardsMerged {
		t.Errorf("segments hold %d shard records, result says %d", shards, r.ShardsMerged)
	}
}
