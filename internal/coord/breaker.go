package coord

import (
	"time"
)

// breakerState is the circuit position of one worker's breaker.
type breakerState int

const (
	// breakerClosed: the worker is healthy; dispatches flow.
	breakerClosed breakerState = iota
	// breakerOpen: the worker failed too often; dispatches are refused
	// until the backoff elapses.
	breakerOpen
	// breakerHalfOpen: the backoff elapsed; exactly one probe dispatch is
	// allowed through, and its outcome snaps the breaker closed or open.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is a per-worker circuit breaker: closed while the worker
// behaves, opened by consecutive failures with exponentially growing,
// capped, jittered backoff, half-open for a single probe once the
// backoff elapses. It replaces the old binary down/heartbeat-revival
// worker state: instead of one failed fetch evicting a worker until the
// next probe, the breaker absorbs isolated failures, takes a repeatedly
// failing worker out of rotation for bounded, growing intervals, and
// lets one trial dispatch (or heartbeat probe) re-admit it.
//
// The breaker also keeps a health score — an EWMA of dispatch success —
// that the scheduler folds into partition sizing, so a slow-but-alive
// worker is handed smaller ranges rather than dropped.
//
// Not self-locking: the Coordinator serializes access under its own
// mutex. The clock and jitter source are injectable for tests.
type breaker struct {
	threshold   int           // consecutive failures that open the circuit
	baseBackoff time.Duration // first open interval
	maxBackoff  time.Duration // backoff growth cap
	now         func() time.Time
	jitter      func() float64 // uniform [0,1)

	state   breakerState
	fails   int       // consecutive failures in the closed state
	opens   int       // consecutive opens, drives exponential backoff
	until   time.Time // earliest half-open probe while open
	probing bool      // a half-open probe is outstanding
	health  float64   // EWMA of dispatch success in [0,1]
}

// healthAlpha is the EWMA weight of the newest dispatch outcome.
const healthAlpha = 0.25

func newBreaker(threshold int, base, max time.Duration, now func() time.Time, jitter func() float64) *breaker {
	if now == nil {
		now = time.Now
	}
	if jitter == nil {
		jitter = func() float64 { return 0.5 }
	}
	return &breaker{
		threshold:   threshold,
		baseBackoff: base,
		maxBackoff:  max,
		now:         now,
		jitter:      jitter,
		health:      1,
	}
}

// allow reports whether a dispatch (or probe) may go to this worker now,
// and claims the half-open probe slot when it does: a caller that gets
// true must follow with success or failure.
func (b *breaker) allow() bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// canAttempt is allow without the state transition or probe claim — the
// scheduler's peek for "is it worth waiting on this worker".
func (b *breaker) canAttempt() bool {
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		return !b.now().Before(b.until)
	case breakerHalfOpen:
		return !b.probing
	}
	return false
}

// success records a sealed dispatch or an answered probe: any state
// snaps closed and the backoff resets.
func (b *breaker) success() {
	b.state = breakerClosed
	b.fails, b.opens = 0, 0
	b.probing = false
	b.health = b.health*(1-healthAlpha) + healthAlpha
}

// failure records a failed dispatch or probe. It returns true when this
// failure opened the circuit (for the breaker_open transition counter).
// A half-open probe failure re-opens immediately with a doubled backoff;
// closed-state failures open only at the consecutive threshold.
func (b *breaker) failure() bool {
	b.probing = false
	b.health = b.health * (1 - healthAlpha)
	switch b.state {
	case breakerHalfOpen:
		b.open()
		return true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.open()
			return true
		}
	}
	return false
}

// open trips the circuit with the next backoff interval: exponential in
// the number of consecutive opens, capped at maxBackoff, with ±25%
// jitter so a fleet of breakers does not probe in lockstep.
func (b *breaker) open() {
	b.state = breakerOpen
	b.fails = 0
	b.opens++
	d := b.baseBackoff << (b.opens - 1)
	if b.opens > 30 || d > b.maxBackoff || d <= 0 {
		d = b.maxBackoff
	}
	d = time.Duration(float64(d) * (0.75 + 0.5*b.jitter()))
	b.until = b.now().Add(d)
}
