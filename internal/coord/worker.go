package coord

import (
	"context"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"

	"fastflip/internal/bench"
	"fastflip/internal/core"
	"fastflip/internal/inject"
	"fastflip/internal/maskelide"
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/store"
	"fastflip/internal/trace"
)

// BuildFunc constructs the program for one benchmark version (the same
// shape as the service's builder; redeclared here so coord does not
// depend on service).
type BuildFunc func(benchName, variant string) (*spec.Program, error)

// WorkerOptions configure a shard worker.
type WorkerOptions struct {
	// ID is the worker's self-reported identity, echoed on health probes
	// and shard streams and recorded in merged segments' provenance.
	// Default "worker-<pid>".
	ID string
	// Build constructs programs (default bench.Build).
	Build BuildFunc
	// Workers bounds the worker's injection parallelism (0 = GOMAXPROCS).
	Workers int
	// Token, when non-empty, is the shared secret the worker demands as a
	// bearer token on shard leases: a request without `Authorization:
	// Bearer <token>` is refused with 401. The health endpoint stays open
	// so liveness probes work regardless of credential state.
	Token string
}

// Worker executes leased shards of remote injection campaigns: it serves
// POST /v1/shard (run a range, stream framed WAL records back) and
// GET /healthz (liveness, reporting the worker ID). Both ffserved's
// -worker mode and in-test workers are this handler behind a listener.
//
// A worker holds no campaign state between shards beyond a trace cache:
// every lease names its benchmark, instance, and range, and the worker's
// determinism guarantee — same benchmark build, same recorded trace, same
// class enumeration — is checked per shard through the section key and
// campaign fingerprint rather than assumed.
type Worker struct {
	opts WorkerOptions
	mux  *http.ServeMux

	mu     sync.Mutex
	traces map[traceKey]*trace.Trace
}

type traceKey struct {
	bench, variant     string
	checkpointInterval int64
}

// NewWorker returns a worker handler.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.ID == "" {
		opts.ID = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if opts.Build == nil {
		opts.Build = func(name, variant string) (*spec.Program, error) {
			return bench.Build(name, bench.Variant(variant))
		}
	}
	w := &Worker{opts: opts, mux: http.NewServeMux(), traces: make(map[traceKey]*trace.Trace)}
	w.mux.HandleFunc("POST "+shardPath, w.shard)
	w.mux.HandleFunc("GET "+healthPath, w.healthz)
	return w
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.opts.ID }

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

func (w *Worker) healthz(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(map[string]string{"status": "ok", "worker": w.opts.ID})
}

// traceFor records (or reuses) the trace of one benchmark version. The
// cache is keyed by checkpoint interval too: different intervals change
// replay granularity, and a lease must run against exactly the trace
// shape its fingerprint was computed over.
func (w *Worker) traceFor(benchName, variant string, interval int64) (*trace.Trace, error) {
	key := traceKey{benchName, variant, interval}
	w.mu.Lock()
	t := w.traces[key]
	w.mu.Unlock()
	if t != nil {
		return t, nil
	}
	p, err := w.opts.Build(benchName, variant)
	if err != nil {
		return nil, err
	}
	t, err = trace.RecordWith(p, trace.Options{CheckpointInterval: interval})
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.traces[key] = t
	w.mu.Unlock()
	return t, nil
}

// maxShardBody bounds a lease request; the Done list dominates and stays
// far below this for any realistic section.
const maxShardBody = 8 << 20

// shard runs one leased range and streams the results back. Validation
// failures answer with JSON errors (400 malformed/unbuildable, 409 stale
// or wrong-config); past the header the response is a framed record
// stream terminated by a seal, and any failure mid-stream simply ends the
// stream unsealed — the coordinator treats it as partial, exactly like a
// torn WAL tail.
func (w *Worker) shard(rw http.ResponseWriter, r *http.Request) {
	if w.opts.Token != "" {
		got := r.Header.Get("Authorization")
		want := "Bearer " + w.opts.Token
		if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			httpError(rw, http.StatusUnauthorized, fmt.Errorf("missing or invalid worker token"))
			return
		}
	}
	var req ShardRequest
	if err := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxShardBody)).Decode(&req); err != nil {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("decoding shard request: %w", err))
		return
	}
	t, err := w.traceFor(req.Bench, req.Variant, req.Config.CheckpointInterval)
	if err != nil {
		httpError(rw, http.StatusBadRequest, err)
		return
	}
	if req.Instance < 0 || req.Instance >= len(t.Instances) {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("instance %d out of range (%d instances)", req.Instance, len(t.Instances)))
		return
	}
	inst := t.Instances[req.Instance]

	cfg := req.Config.analysisConfig(w.opts.Workers)
	if fp := core.CampaignFingerprint(t.Fingerprint(), cfg); fp != req.Fingerprint {
		httpError(rw, http.StatusConflict, fmt.Errorf("campaign fingerprint mismatch: lease has %016x, worker computes %016x (stale or wrong-config shard)", req.Fingerprint, fp))
		return
	}
	var key store.Key
	var keyErr error
	if cfg.StrictReuseKeys {
		key, keyErr = store.KeyForStrict(t, inst)
	} else {
		key, keyErr = store.KeyFor(t, inst)
	}
	if keyErr != nil {
		httpError(rw, http.StatusBadRequest, fmt.Errorf("computing section key: %w", keyErr))
		return
	}
	if got := hex.EncodeToString(key[:]); got != req.SectionKey {
		httpError(rw, http.StatusConflict, fmt.Errorf("section key mismatch: lease names %s, worker computes %s", req.SectionKey, got))
		return
	}

	// The site options must reproduce the coordinator's class enumeration
	// exactly, elision flags included: an elided class streams back with
	// elision cost accounting, and a mismatch there would make the merged
	// summary differ from a local run.
	siteOpts := sites.Options{Prune: cfg.Prune, Width: cfg.BurstWidth}
	if cfg.Elide {
		siteOpts.Masks = maskelide.Analyze(t.Prog.Linked)
	}
	classes := sites.ForInstance(t, inst, siteOpts)
	skip := make([]bool, len(classes))
	for _, ci := range req.Done {
		if ci >= 0 && ci < len(skip) {
			skip[ci] = true
		}
	}

	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set(workerHeader, w.opts.ID)
	rw.Header().Set(epochHeader, fmt.Sprintf("%d", req.Epoch))
	rw.WriteHeader(http.StatusOK)

	// Record/Poison are called concurrently by injection workers; the
	// stream is serialized under streamMu. A write failure (coordinator
	// went away) latches and cancels the campaign — there is nobody left
	// to stream to.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	sw := inject.NewStreamWriter(rw)
	var streamMu sync.Mutex
	var streamErr error
	count := 0
	hooks := inject.CampaignHooks{
		Skip:  skip,
		Range: &inject.ShardRange{Lo: req.Lo, Hi: req.Hi},
		Record: func(i int, out metrics.Outcome, fin *metrics.Outcome, cost inject.Stats) {
			streamMu.Lock()
			defer streamMu.Unlock()
			if streamErr != nil {
				return
			}
			if err := sw.WriteExperiment(inject.WALRecord{Key: classes[i].Key, Out: out, Fin: fin, Cost: cost}); err != nil {
				streamErr = err
				cancel()
				return
			}
			count++
		},
		Poison: func(p inject.Poison) {
			streamMu.Lock()
			defer streamMu.Unlock()
			if streamErr != nil {
				return
			}
			if err := sw.WritePoison(inject.WALPoison{Key: p.Key, Attempts: p.Attempts, MachineFP: p.MachineFP, Stack: p.Stack}); err != nil {
				streamErr = err
				cancel()
			}
		},
	}

	inj := &inject.Injector{T: t, Workers: cfg.Workers, Legacy: cfg.LegacyReplay, NoBatch: cfg.NoBatch}
	if cfg.CoRunBaseline {
		_, _, _ = inj.RunSectionCoRunResume(ctx, inst, classes, hooks)
	} else {
		_, _ = inj.RunSectionResume(ctx, inst, classes, hooks)
	}

	streamMu.Lock()
	defer streamMu.Unlock()
	if ctx.Err() == nil && streamErr == nil {
		// A complete shard is sealed with its record count; a cancelled or
		// broken one ends unsealed and the coordinator re-leases the rest.
		_ = sw.WriteSeal(count)
	}
}

func httpError(rw http.ResponseWriter, status int, err error) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(map[string]string{"error": err.Error()})
}
