package coord

import (
	"fastflip/internal/sites"
)

// merger is the shard-segment merge accumulator: it tracks which classes
// of a section campaign are resolved and deduplicates incoming records by
// experiment identity (the equivalence-class key). Shard streams may
// arrive out of order, with overlapping ranges, or delivered more than
// once — a re-leased range races its lost original, an at-least-once
// transport replays a stream — and exactly one record per class must win.
// First delivery wins; every later one is a counted duplicate. The engine
// produces identical outcomes for identical experiments, so first-wins is
// also value-deterministic.
type merger struct {
	idx      map[sites.ClassKey]int
	resolved []bool
	nPending int
}

// newMerger indexes the section's classes; entries marked in skip
// (recovered from the WAL before dispatch) start resolved.
func newMerger(classes []*sites.Class, skip []bool) *merger {
	m := &merger{
		idx:      make(map[sites.ClassKey]int, len(classes)),
		resolved: make([]bool, len(classes)),
		nPending: len(classes),
	}
	for i, c := range classes {
		m.idx[c.Key] = i
	}
	for i := range m.resolved {
		if i < len(skip) && skip[i] {
			m.resolved[i] = true
			m.nPending--
		}
	}
	return m
}

// resolve marks the class with the given key resolved. It returns the
// class index and whether this delivery was fresh; (-1, false) for a key
// outside the section's enumeration, (i, false) for a duplicate.
func (m *merger) resolve(key sites.ClassKey) (int, bool) {
	i, ok := m.idx[key]
	if !ok {
		return -1, false
	}
	if m.resolved[i] {
		return i, false
	}
	m.resolved[i] = true
	m.nPending--
	return i, true
}

// done reports whether every class is resolved.
func (m *merger) done() bool { return m.nPending == 0 }

// pendingPositions returns the positions of the canonical dyn order whose
// classes are still unresolved, in order.
func (m *merger) pendingPositions(order []int) []int {
	var out []int
	for p, ci := range order {
		if !m.resolved[ci] {
			out = append(out, p)
		}
	}
	return out
}

// resolvedIndices returns the class indices already resolved — the Done
// list shipped with a lease so the worker skips them.
func (m *merger) resolvedIndices() []int {
	var out []int
	for i, r := range m.resolved {
		if r {
			out = append(out, i)
		}
	}
	return out
}

// skipVector returns the resolved set as a Skip vector for the local
// fallback engine.
func (m *merger) skipVector() []bool {
	return append([]bool(nil), m.resolved...)
}
