package coord

// Metrics are the coordinator's cumulative counters and gauges, exposed
// through service /metrics as the "dist" block. Counters only ever grow;
// WorkersRegistered/WorkersLive/InflightLeases and the shard duration
// percentiles are gauges computed at snapshot time.
type Metrics struct {
	WorkersRegistered int `json:"workers_registered"`
	WorkersLive       int `json:"workers_live"`
	// InflightLeases counts shard dispatches currently awaiting a stream.
	InflightLeases int `json:"inflight_leases"`

	// ShardsDispatched counts lease attempts; Completed the streams that
	// arrived sealed; Failed the dropped, rejected, timed-out, or cut ones.
	ShardsDispatched uint64 `json:"shards_dispatched"`
	ShardsCompleted  uint64 `json:"shards_completed"`
	ShardsFailed     uint64 `json:"shards_failed"`
	// Reassignments counts leases whose unlogged remainder had to be
	// re-leased after a worker loss or a partial stream.
	Reassignments uint64 `json:"reassignments"`
	// Releases counts finished dispatches that returned unresolved
	// positions to the work queue for intra-section re-lease — the
	// completion-driven scheduler's unit of "work handed back".
	Releases uint64 `json:"releases"`
	// HedgedDispatches counts straggler hedges: leases re-dispatched to an
	// idle worker while the original — slower than the adaptive straggler
	// threshold — was still streaming. First delivery wins per experiment.
	HedgedDispatches uint64 `json:"hedged_dispatches"`

	// BreakerOpen counts circuit-open transitions across all workers: a
	// worker crossed its consecutive-failure threshold (or failed its
	// half-open probe) and left dispatch rotation for a backoff interval.
	BreakerOpen uint64 `json:"breaker_open"`
	// AuthFailures counts leases a worker refused with 401: the
	// coordinator's bearer token did not match the worker's.
	AuthFailures uint64 `json:"auth_failures"`

	// RecordsStreamed counts experiment records received from workers;
	// DuplicateRecords the subset discarded by the merger's
	// dedupe-by-experiment-identity (overlapping ranges, duplicate
	// delivery, or a hedged or re-leased range racing its original).
	RecordsStreamed  uint64 `json:"records_streamed"`
	DuplicateRecords uint64 `json:"duplicate_records"`

	// RemoteExperiments counts experiments resolved from worker streams;
	// LocalFallbackExperiments those the coordinator ran in-process after
	// the fleet could not finish a section (no usable workers or the lease
	// budget exhausted) — the convergence guarantee of last resort.
	RemoteExperiments        uint64 `json:"remote_experiments"`
	LocalFallbackExperiments uint64 `json:"local_fallback_experiments"`

	// ShardNanos sums wall time of all shard fetches; StragglerNanos sums
	// the in-flight time dispatches spent beyond the straggler threshold —
	// the latency the hedging scheduler is reclaiming.
	ShardNanos     int64 `json:"shard_nanos"`
	StragglerNanos int64 `json:"straggler_nanos"`
	// ShardP50Nanos/ShardP95Nanos are percentiles over the most recent
	// completed shard durations (a sliding window); the p95 — with a
	// configurable floor — is the adaptive straggler threshold hedging
	// decisions are made against.
	ShardP50Nanos int64 `json:"shard_p50_nanos"`
	ShardP95Nanos int64 `json:"shard_p95_nanos"`
}
