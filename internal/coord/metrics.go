package coord

// Metrics are the coordinator's cumulative counters and gauges, exposed
// through service /metrics as the "dist" block. Counters only ever grow;
// WorkersRegistered/WorkersLive/InflightLeases are gauges computed at
// snapshot time.
type Metrics struct {
	WorkersRegistered int `json:"workers_registered"`
	WorkersLive       int `json:"workers_live"`
	// InflightLeases counts shard dispatches currently awaiting a stream.
	InflightLeases int `json:"inflight_leases"`

	// ShardsDispatched counts lease attempts; Completed the streams that
	// arrived sealed; Failed the dropped, rejected, or cut ones.
	ShardsDispatched uint64 `json:"shards_dispatched"`
	ShardsCompleted  uint64 `json:"shards_completed"`
	ShardsFailed     uint64 `json:"shards_failed"`
	// Reassignments counts leases whose unlogged remainder had to be
	// re-leased after a worker loss or a partial stream.
	Reassignments uint64 `json:"reassignments"`

	// RecordsStreamed counts experiment records received from workers;
	// DuplicateRecords the subset discarded by the merger's
	// dedupe-by-experiment-identity (overlapping ranges, duplicate
	// delivery, or a re-leased prefix racing its original).
	RecordsStreamed  uint64 `json:"records_streamed"`
	DuplicateRecords uint64 `json:"duplicate_records"`

	// RemoteExperiments counts experiments resolved from worker streams;
	// LocalFallbackExperiments those the coordinator ran in-process after
	// the fleet could not finish a section (no live workers or the round
	// budget exhausted) — the convergence guarantee of last resort.
	RemoteExperiments        uint64 `json:"remote_experiments"`
	LocalFallbackExperiments uint64 `json:"local_fallback_experiments"`

	// ShardNanos sums wall time of all shard fetches; StragglerNanos sums,
	// per dispatch round, the gap between the fastest and slowest shard —
	// the straggler latency a range-rebalancing scheduler would reclaim.
	ShardNanos     int64 `json:"shard_nanos"`
	StragglerNanos int64 `json:"straggler_nanos"`
}
