package coord

import "time"

// Injectable network faults, the errfs idiom applied to the shard wire:
// chaos tests hand the coordinator a FaultPlan and break chosen dispatch
// attempts — a dropped request, a stream cut mid-delivery, a duplicated
// delivery, added latency, a slow drip-fed stream, or a stream that
// stalls forever — to prove the campaign still converges without losing
// or double-counting experiments, and that the lease scheduler hedges
// stragglers instead of waiting on them.

// ShardAttempt identifies one dispatch for fault-plan decisions.
type ShardAttempt struct {
	// Worker is the target worker's URL.
	Worker string
	// Epoch is the attempt's lease epoch.
	Epoch uint64
	// Lo, Hi bound the leased dyn-order positions.
	Lo, Hi int
	// Round is the attempt ordinal of the lease's positions (0-based):
	// 0 for a first lease, 1 for its first re-lease, and so on.
	Round int
	// Hedge marks a hedged dispatch — a straggler's remainder re-leased
	// to an idle worker while the original keeps streaming.
	Hedge bool
}

// ShardFault is the injected failure for one dispatch attempt. The zero
// value is "no fault".
type ShardFault struct {
	// Drop fails the request before it is sent: the worker never sees the
	// lease and no records arrive.
	Drop bool
	// Delay postpones the dispatch by the given duration before the
	// request is sent, simulating network or queueing latency. The
	// dispatch's deadline budget keeps running while it waits.
	Delay time.Duration
	// TruncateAfterRecords, when > 0, cuts the response stream after that
	// many records, simulating a connection lost mid-delivery. The records
	// before the cut are kept (the stream has no seal, so the coordinator
	// treats it as partial and re-leases the remainder).
	TruncateAfterRecords int
	// StallAfterRecords, when > 0, freezes the response stream after that
	// many records: no further bytes arrive and the connection never
	// closes, simulating a worker hung mid-stream. The dispatch blocks
	// until its deadline budget expires or the section completes without
	// it; the records before the stall are kept and merged.
	StallAfterRecords int
	// RecordDelay inserts the given pause before each record is consumed,
	// simulating a slow-streaming worker: the shard keeps delivering, just
	// far below fleet throughput, which is what the straggler hedge
	// exists to outrun.
	RecordDelay time.Duration
	// Duplicate delivers the shard's record list twice to the merger,
	// simulating an at-least-once transport. The merger's dedupe-by-class
	// must absorb it without double-counting.
	Duplicate bool
}

// FaultPlan decides the fault for each dispatch attempt; nil means no
// faults. It is called from dispatch goroutines and must be safe for
// concurrent use.
type FaultPlan func(ShardAttempt) ShardFault
