package coord

// Injectable network faults, the errfs idiom applied to the shard wire:
// chaos tests hand the coordinator a FaultPlan and break chosen dispatch
// attempts — a dropped request, a stream cut mid-delivery, a duplicated
// delivery — to prove the campaign still converges without losing or
// double-counting experiments.

// ShardAttempt identifies one dispatch for fault-plan decisions.
type ShardAttempt struct {
	// Worker is the target worker's URL.
	Worker string
	// Epoch is the attempt's lease epoch.
	Epoch uint64
	// Lo, Hi bound the leased dyn-order positions.
	Lo, Hi int
	// Round is the dispatch round within the section (0-based).
	Round int
}

// ShardFault is the injected failure for one dispatch attempt. The zero
// value is "no fault".
type ShardFault struct {
	// Drop fails the request before it is sent: the worker never sees the
	// lease and no records arrive.
	Drop bool
	// TruncateAfterRecords, when > 0, cuts the response stream after that
	// many records, simulating a connection lost mid-delivery. The records
	// before the cut are kept (the stream has no seal, so the coordinator
	// treats it as partial and re-leases the remainder).
	TruncateAfterRecords int
	// Duplicate delivers the shard's record list twice to the merger,
	// simulating an at-least-once transport. The merger's dedupe-by-class
	// must absorb it without double-counting.
	Duplicate bool
}

// FaultPlan decides the fault for each dispatch attempt; nil means no
// faults. It is called from dispatch goroutines and must be safe for
// concurrent use.
type FaultPlan func(ShardAttempt) ShardFault
