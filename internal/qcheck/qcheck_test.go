package qcheck

import (
	"testing"
)

// TestEnvSeedHonored: with the env var set, configs draw identical value
// streams; a different seed diverges.
func TestEnvSeedHonored(t *testing.T) {
	t.Setenv(EnvSeed, "12345")
	a := Config(t, 10)
	b := Config(t, 10)
	var first [16]uint64
	for i := range first {
		first[i] = a.Rand.Uint64()
		if y := b.Rand.Uint64(); first[i] != y {
			t.Fatalf("draw %d: same seed produced %d and %d", i, first[i], y)
		}
	}
	t.Setenv(EnvSeed, "54321")
	c := Config(t, 10)
	same := true
	for i := range first {
		if c.Rand.Uint64() != first[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

// TestHexSeedAccepted: ParseInt base-0 syntax works, matching the seeds
// fffuzz and the fuzz targets print in hex.
func TestHexSeedAccepted(t *testing.T) {
	t.Setenv(EnvSeed, "0x3039") // 12345
	a := Config(t, 10)
	t.Setenv(EnvSeed, "12345")
	b := Config(t, 10)
	for i := 0; i < 8; i++ {
		if x, y := a.Rand.Uint64(), b.Rand.Uint64(); x != y {
			t.Fatalf("hex and decimal forms of the same seed diverge at draw %d", i)
		}
	}
}

// TestMaxCount: 0 keeps the quick default, positive values are applied.
func TestMaxCount(t *testing.T) {
	t.Setenv(EnvSeed, "1")
	if got := Config(t, 0).MaxCount; got != 0 {
		t.Errorf("MaxCount with 0 = %d, want 0 (quick default)", got)
	}
	if got := Config(t, 75).MaxCount; got != 75 {
		t.Errorf("MaxCount = %d, want 75", got)
	}
}

// TestClockSeedFallback: without the env var a clock seed is used and the
// config is still usable.
func TestClockSeedFallback(t *testing.T) {
	t.Setenv(EnvSeed, "")
	if cfg := Config(t, 5); cfg.Rand == nil {
		t.Fatal("clock-seeded config has no Rand")
	}
}
