// Package qcheck centralizes testing/quick configuration so every
// property test in the repository draws its random values from a seed
// that is (a) printed when the property fails and (b) overridable via the
// FASTFLIP_QUICK_SEED environment variable — making quick failures
// reproducible instead of vanishing with the process.
package qcheck

import (
	"math/rand"
	"os"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

// EnvSeed is the environment variable holding a fixed generator seed.
const EnvSeed = "FASTFLIP_QUICK_SEED"

// Config returns a quick.Config seeded from FASTFLIP_QUICK_SEED when set
// (any base accepted by strconv.ParseInt, e.g. decimal or 0x-hex) and
// from the clock otherwise. maxCount > 0 bounds the iteration count;
// 0 keeps testing/quick's default. If the test fails, the seed is logged
// with the exact reproduction incantation.
func Config(t *testing.T, maxCount int) *quick.Config {
	t.Helper()
	var seed int64
	if env := os.Getenv(EnvSeed); env != "" {
		v, err := strconv.ParseInt(env, 0, 64)
		if err != nil {
			t.Fatalf("qcheck: invalid %s=%q: %v", EnvSeed, env, err)
		}
		seed = v
	} else {
		seed = time.Now().UnixNano()
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("qcheck: property failed; reproduce with %s=%d go test -run '^%s$'", EnvSeed, seed, t.Name())
		}
	})
	cfg := &quick.Config{Rand: rand.New(rand.NewSource(seed))}
	if maxCount > 0 {
		cfg.MaxCount = maxCount
	}
	return cfg
}
