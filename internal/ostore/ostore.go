// Package ostore is the shared, disk-backed, content-addressed outcome
// tier: the §4.7 reuse economy generalized across users, processes, and
// program versions. A section's analysis is named by its content key
// (store.KeyFor), so *any* tenant submitting *any* variant of *any*
// benchmark reuses every section anyone has ever analyzed — the
// per-benchmark in-memory cache inside one ffserved process becomes a
// tier in front of a store the whole fleet shares.
//
// On-disk layout (one directory, shared by any number of processes):
//
//	seg-*.ffo   immutable segment files: a header followed by
//	            length-prefixed, CRC-32C-checksummed records, each a
//	            gob-encoded store.Section with its key and publishing
//	            tenant. Segments are published atomically (written to a
//	            temp file, synced, renamed), so a reader never observes
//	            a half-written segment under normal operation.
//	index.ffi   checkpoint of the in-memory index (key → segment/offset
//	            plus the byte size of every segment it accounts for),
//	            CRC-framed and atomically replaced. Purely an
//	            accelerator: a missing or corrupt checkpoint falls back
//	            to scanning every segment, so a flipped index byte can
//	            cost reuse, never correctness.
//
// Writers never append to a published segment: each Flush seals the
// sections staged since the last one into a fresh segment file with a
// unique name, which is what makes concurrent publishes from independent
// Manager processes safe — the only shared mutable file is the index
// checkpoint, and that is advisory. Readers pick up other writers'
// segments lazily: a lookup that misses the in-memory index rescans the
// directory for new or regrown segment files before reporting a miss.
//
// All file content I/O flows through the errfs seam so chaos tests can
// break any step of the publish protocol; directory listing is not a
// fault point and uses the real filesystem.
package ostore

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"fastflip/internal/errfs"
	"fastflip/internal/store"
)

// segMagic identifies a segment file and its format version; bump the
// version byte on any incompatible change so old files are skipped, not
// misparsed.
var segMagic = [8]byte{'F', 'F', 'O', 'S', 'G', 0, 0, 1}

// indexMagic identifies the index checkpoint file.
var indexMagic = [8]byte{'F', 'F', 'O', 'I', 'X', 0, 0, 1}

// maxRecordBytes bounds one record so a corrupt length prefix cannot
// trigger a huge allocation during a scan.
const maxRecordBytes = 1 << 26

// crcTable is the Castagnoli polynomial, as used by the WAL.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("ostore: store closed")

// Options configure a shared outcome store. The zero value of everything
// but Dir gets sensible defaults.
type Options struct {
	// Dir is the shared directory (required; created if missing).
	Dir string
	// FS routes all file content I/O; nil uses the real filesystem.
	// Chaos tests inject publish faults through it.
	FS errfs.FS
	// MaxCacheBytes bounds the in-memory LRU of decoded sections,
	// measured in encoded payload bytes (default 64 MiB; negative
	// disables caching).
	MaxCacheBytes int64
	// TenantQuotaBytes bounds the live on-disk bytes attributed to any
	// one publishing tenant; beyond it, that tenant's oldest sections
	// are evicted (ref-counted: a segment whose records are all dead is
	// deleted). 0 means unlimited.
	TenantQuotaBytes int64
	// MaxSegmentBytes caps the staged payload bytes before Put flushes
	// automatically (default 8 MiB).
	MaxSegmentBytes int64
}

// TenantStats are the per-tenant counters surfaced through /metrics.
type TenantStats struct {
	// Hits counts lookups this tenant resolved from the shared tier;
	// Misses those that fell through to injection.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Publishes counts sections this tenant published; Bytes is its
	// live on-disk footprint; Evictions counts its sections evicted to
	// enforce the quota.
	Publishes uint64 `json:"publishes"`
	Bytes     int64  `json:"bytes"`
	Evictions uint64 `json:"evictions"`
}

// Stats is a point-in-time snapshot of the store's counters and gauges.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Publishes  uint64 `json:"publishes"`
	Evictions  uint64 `json:"evictions"`
	FlushErrs  uint64 `json:"flush_errors"`
	Corrupt    uint64 `json:"corrupt_records"`
	Bytes      int64  `json:"bytes"`       // live on-disk payload bytes
	CacheBytes int64  `json:"cache_bytes"` // decoded-LRU footprint
	Sections   int    `json:"sections"`
	Segments   int    `json:"segments"`
	// Tenants maps tenant names to their counters; tenants appear on
	// their first lookup or publish.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// loc locates one live record inside a segment.
type loc struct {
	Seg    string // segment file base name
	Off    int64  // record frame offset
	Len    int64  // frame length (header + payload)
	Tenant string // publishing tenant
	Seq    uint64 // in-memory insertion order, for quota eviction
}

// segInfo tracks one segment's liveness for ref-counted compaction.
type segInfo struct {
	size int64 // bytes accounted (scanned prefix)
	live int   // index entries pointing into the segment
}

// checkpoint is the gob payload of the index file.
type checkpoint struct {
	Locs     map[store.Key]loc
	Segments map[string]int64 // segment name → accounted size
}

// cacheEntry is one decoded section in the LRU.
type cacheEntry struct {
	key   store.Key
	sec   *store.Section
	bytes int64
}

// Store is a shared outcome store over one directory. All methods are
// safe for concurrent use; several Store instances (in one process or
// many) may share a directory.
type Store struct {
	opts Options
	fs   errfs.FS

	mu      sync.Mutex
	closed  bool
	nextSeq uint64
	index   map[store.Key]loc
	segs    map[string]segInfo
	pending map[store.Key]*pendingRec
	pendOrd []store.Key // staging order, for deterministic segments
	pendSz  int64

	lru     *list.List // front = most recent
	lruByK  map[store.Key]*list.Element
	lruSize int64

	stats   Stats
	tenants map[string]*TenantStats
	// tenantOrder tracks each tenant's live keys in publish order, the
	// eviction queue behind the per-tenant quota.
	tenantOrder map[string][]store.Key
}

// pendingRec is a staged, not-yet-flushed publish.
type pendingRec struct {
	tenant string
	sec    *store.Section
	enc    []byte // gob payload, encoded at Put time
}

// Open opens (creating if necessary) the shared store in opts.Dir and
// loads its index: the checkpoint when present and intact, plus a scan of
// every segment the checkpoint does not fully account for.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("ostore: Dir is required")
	}
	if opts.FS == nil {
		opts.FS = errfs.OS()
	}
	if opts.MaxCacheBytes == 0 {
		opts.MaxCacheBytes = 64 << 20
	}
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 8 << 20
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ostore: %w", err)
	}
	s := &Store{
		opts:        opts,
		fs:          opts.FS,
		index:       make(map[store.Key]loc),
		segs:        make(map[string]segInfo),
		pending:     make(map[store.Key]*pendingRec),
		lru:         list.New(),
		lruByK:      make(map[store.Key]*list.Element),
		tenants:     make(map[string]*TenantStats),
		tenantOrder: make(map[string][]store.Key),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadCheckpointLocked()
	if err := s.refreshLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// tenantLocked returns (creating) the counters for tenant.
func (s *Store) tenantLocked(tenant string) *TenantStats {
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &TenantStats{}
		s.tenants[tenant] = ts
	}
	return ts
}

// Get returns the stored section for key, or nil. tenant attributes the
// hit or miss; it does not scope the lookup — content addressing makes
// every tenant's sections reusable by every other. A miss first rescans
// the directory so sections published by other processes since the last
// lookup become visible.
func (s *Store) Get(tenant string, key store.Key) *store.Section {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	ts := s.tenantLocked(tenant)
	if p, ok := s.pending[key]; ok {
		s.stats.Hits++
		ts.Hits++
		return p.sec
	}
	if el, ok := s.lruByK[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		ts.Hits++
		return el.Value.(*cacheEntry).sec
	}
	if _, ok := s.index[key]; !ok {
		// Another process may have published since we last looked.
		_ = s.refreshLocked()
	}
	if l, ok := s.index[key]; ok {
		if sec := s.loadLocked(l); sec != nil {
			s.stats.Hits++
			ts.Hits++
			return sec
		}
		// The segment vanished or is corrupt at that offset: drop the
		// stale entry so callers fall back to injecting.
		s.dropLocked(key)
	}
	s.stats.Misses++
	ts.Misses++
	return nil
}

// Contains reports whether key is resolvable without counting a hit or a
// miss (no refresh).
func (s *Store) Contains(key store.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pending[key]; ok {
		return true
	}
	if _, ok := s.lruByK[key]; ok {
		return true
	}
	_, ok := s.index[key]
	return ok
}

// Put stages sec for publication under key, attributed to tenant.
// Publication is first-write-wins: a key already live (or staged) is left
// untouched — section payloads are immutable, so the copies are
// interchangeable and the earlier one keeps its attribution. The staged
// batch is published by the next Flush (or automatically once it exceeds
// MaxSegmentBytes).
func (s *Store) Put(tenant string, key store.Key, sec *store.Section) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.pending[key]; ok {
		return nil
	}
	if _, ok := s.index[key]; ok {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(segRecord{Key: key, Tenant: tenant, Sec: sec}); err != nil {
		return fmt.Errorf("ostore: encoding section %s: %w", key, err)
	}
	s.pending[key] = &pendingRec{tenant: tenant, sec: sec, enc: buf.Bytes()}
	s.pendOrd = append(s.pendOrd, key)
	s.pendSz += int64(buf.Len())
	s.stats.Publishes++
	s.tenantLocked(tenant).Publishes++
	if s.pendSz >= s.opts.MaxSegmentBytes {
		return s.flushLocked()
	}
	return nil
}

// Flush publishes the staged sections as one new segment file: encode
// into a temp file in the store directory, sync, close, rename — the
// same atomic-replace discipline as store.Save, through the same errfs
// seam. On failure the staged batch is retained for the next attempt.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

// Close flushes staged sections, writes a final index checkpoint, and
// marks the store closed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	return err
}

// Stats returns a snapshot of the counters and gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Sections = len(s.index) + len(s.pending)
	st.Segments = len(s.segs)
	st.CacheBytes = s.lruSize
	st.Tenants = make(map[string]TenantStats, len(s.tenants))
	for name, ts := range s.tenants {
		st.Tenants[name] = *ts
	}
	return st
}

// segRecord is the gob payload of one record.
type segRecord struct {
	Key    store.Key
	Tenant string
	Sec    *store.Section
}

// frameHeaderSize is the per-record frame: u32 payload length, u32
// CRC-32C over key-independent payload bytes.
const frameHeaderSize = 8

// flushLocked publishes the pending batch; no-op when it is empty.
func (s *Store) flushLocked() error {
	if len(s.pendOrd) == 0 {
		return nil
	}
	f, err := s.fs.CreateTemp(s.opts.Dir, ".seg-*.tmp")
	if err != nil {
		s.stats.FlushErrs++
		return fmt.Errorf("ostore: publish: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		s.fs.Remove(tmp)
		s.stats.FlushErrs++
		return fmt.Errorf("ostore: publish: %w", err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		return fail(err)
	}
	type placed struct {
		key store.Key
		off int64
		n   int64
	}
	offsets := make([]placed, 0, len(s.pendOrd))
	off := int64(len(segMagic))
	var hdr [frameHeaderSize]byte
	for _, key := range s.pendOrd {
		p := s.pending[key]
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p.enc)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p.enc, crcTable))
		if _, err := f.Write(hdr[:]); err != nil {
			return fail(err)
		}
		if _, err := f.Write(p.enc); err != nil {
			return fail(err)
		}
		n := int64(frameHeaderSize + len(p.enc))
		offsets = append(offsets, placed{key: key, off: off, n: n})
		off += n
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		f = nil
		s.fs.Remove(tmp)
		s.stats.FlushErrs++
		return fmt.Errorf("ostore: publish: %w", err)
	}
	// The temp name's random suffix makes the published name unique
	// across concurrent writers sharing the directory.
	segName := "seg-" + sanitizeSuffix(filepath.Base(tmp)) + ".ffo"
	if err := s.fs.Rename(tmp, filepath.Join(s.opts.Dir, segName)); err != nil {
		s.fs.Remove(tmp)
		s.stats.FlushErrs++
		return fmt.Errorf("ostore: publish: %w", err)
	}

	// Register the segment before inserting so dropLocked can ref it;
	// only records that actually entered the index count live (a
	// concurrent refresh may have brought a key in from another writer's
	// segment between Put and Flush).
	live := 0
	s.segs[segName] = segInfo{size: off}
	for _, pl := range offsets {
		p := s.pending[pl.key]
		if s.indexInsertLocked(pl.key, loc{Seg: segName, Off: pl.off, Len: pl.n, Tenant: p.tenant}) {
			live++
		}
		s.cacheInsertLocked(pl.key, p.sec, pl.n-frameHeaderSize)
	}
	if live == 0 {
		// Every record lost the first-write race: the segment holds only
		// duplicates, so drop the file immediately.
		delete(s.segs, segName)
		_ = s.fs.Remove(filepath.Join(s.opts.Dir, segName))
	} else {
		si := s.segs[segName]
		si.live = live
		s.segs[segName] = si
	}
	s.pending = make(map[store.Key]*pendingRec)
	s.pendOrd = nil
	s.pendSz = 0
	s.enforceQuotasLocked()
	s.writeCheckpointLocked()
	return nil
}

// sanitizeSuffix turns a temp-file base name into a safe segment-name
// suffix (the random portion is what matters).
func sanitizeSuffix(base string) string {
	base = strings.TrimPrefix(base, ".seg-")
	base = strings.TrimSuffix(base, ".tmp")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		}
		return '_'
	}, base)
}

// indexInsertLocked records a live entry, first-write-wins: a key that is
// already live keeps its existing location (section payloads are
// immutable, so the copies are interchangeable) and the new record is
// simply not counted live. Reports whether the entry was inserted.
func (s *Store) indexInsertLocked(key store.Key, l loc) bool {
	if _, ok := s.index[key]; ok {
		return false
	}
	s.nextSeq++
	l.Seq = s.nextSeq
	s.index[key] = l
	s.stats.Bytes += l.Len - frameHeaderSize
	ts := s.tenantLocked(l.Tenant)
	ts.Bytes += l.Len - frameHeaderSize
	s.tenantOrder[l.Tenant] = append(s.tenantOrder[l.Tenant], key)
	return true
}

// deadLocked decrements a segment's live count and deletes the file once
// nothing references it (ref-counted compaction).
func (s *Store) deadLocked(segName string) {
	si, ok := s.segs[segName]
	if !ok {
		return
	}
	si.live--
	if si.live > 0 {
		s.segs[segName] = si
		return
	}
	delete(s.segs, segName)
	_ = s.fs.Remove(filepath.Join(s.opts.Dir, segName))
}

// dropLocked removes key from the index and every cache, adjusting
// tenant accounting and segment liveness.
func (s *Store) dropLocked(key store.Key) {
	l, ok := s.index[key]
	if !ok {
		return
	}
	delete(s.index, key)
	s.stats.Bytes -= l.Len - frameHeaderSize
	if ts := s.tenants[l.Tenant]; ts != nil {
		ts.Bytes -= l.Len - frameHeaderSize
	}
	if el, ok := s.lruByK[key]; ok {
		s.lruRemoveLocked(el)
	}
	s.deadLocked(l.Seg)
}

// enforceQuotasLocked evicts each over-quota tenant's oldest sections
// until it is back under TenantQuotaBytes.
func (s *Store) enforceQuotasLocked() {
	quota := s.opts.TenantQuotaBytes
	if quota <= 0 {
		return
	}
	for tenant, ts := range s.tenants {
		if ts.Bytes <= quota {
			continue
		}
		order := s.tenantOrder[tenant]
		kept := order[:0]
		for _, key := range order {
			l, ok := s.index[key]
			if !ok || l.Tenant != tenant {
				continue // already dropped or re-attributed
			}
			if ts.Bytes <= quota {
				kept = append(kept, key)
				continue
			}
			s.dropLocked(key)
			s.stats.Evictions++
			ts.Evictions++
		}
		s.tenantOrder[tenant] = append([]store.Key(nil), kept...)
	}
}

// cacheInsertLocked adds a decoded section to the LRU (front) and evicts
// from the back beyond MaxCacheBytes. LRU eviction only forgets decoded
// bytes; the section stays on disk.
func (s *Store) cacheInsertLocked(key store.Key, sec *store.Section, size int64) {
	if s.opts.MaxCacheBytes < 0 {
		return
	}
	if el, ok := s.lruByK[key]; ok {
		s.lru.MoveToFront(el)
		return
	}
	el := s.lru.PushFront(&cacheEntry{key: key, sec: sec, bytes: size})
	s.lruByK[key] = el
	s.lruSize += size
	for s.lruSize > s.opts.MaxCacheBytes && s.lru.Len() > 1 {
		s.lruRemoveLocked(s.lru.Back())
	}
}

func (s *Store) lruRemoveLocked(el *list.Element) {
	ce := el.Value.(*cacheEntry)
	s.lru.Remove(el)
	delete(s.lruByK, ce.key)
	s.lruSize -= ce.bytes
}

// loadLocked reads a record's section from its segment, decoding and
// caching every record of that segment on the way (a job that reuses one
// of a segment's sections usually wants the rest too).
func (s *Store) loadLocked(l loc) *store.Section {
	data, err := s.fs.ReadFile(filepath.Join(s.opts.Dir, l.Seg))
	if err != nil {
		return nil
	}
	var want *store.Section
	s.scanRecords(data, func(key store.Key, tenant string, sec *store.Section, off, n int64) {
		s.cacheInsertLocked(key, sec, n-frameHeaderSize)
		if off == l.Off {
			want = sec
		}
	})
	if want == nil {
		s.stats.Corrupt++
	}
	return want
}

// scanRecords walks a segment image, invoking fn for every record whose
// frame and checksum validate, and stops at the first torn or corrupt
// frame (everything after an undetected flip cannot be trusted to be
// framed correctly).
func (s *Store) scanRecords(data []byte, fn func(key store.Key, tenant string, sec *store.Section, off, n int64)) {
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], segMagic[:]) {
		s.stats.Corrupt++
		return
	}
	off := int64(len(segMagic))
	for int(off)+frameHeaderSize <= len(data) {
		plen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen <= 0 || plen > maxRecordBytes || off+frameHeaderSize+plen > int64(len(data)) {
			s.stats.Corrupt++ // torn tail or corrupt length
			return
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+plen]
		if crc32.Checksum(payload, crcTable) != want {
			s.stats.Corrupt++
			return
		}
		var rec segRecord
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil || rec.Sec == nil {
			s.stats.Corrupt++
			return
		}
		fn(rec.Key, rec.Tenant, rec.Sec, off, frameHeaderSize+plen)
		off += frameHeaderSize + plen
	}
}

// refreshLocked reconciles the in-memory index with the directory:
// segments that appeared (other writers) are scanned in name order,
// segments that vanished (compacted elsewhere) are dropped.
func (s *Store) refreshLocked() error {
	entries, err := os.ReadDir(s.opts.Dir)
	if err != nil {
		return fmt.Errorf("ostore: %w", err)
	}
	onDisk := make(map[string]int64)
	var fresh []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".ffo") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		onDisk[name] = info.Size()
		if known, ok := s.segs[name]; !ok || known.size != info.Size() {
			fresh = append(fresh, name)
		}
	}
	// Drop entries whose segment vanished (another process compacted or
	// evicted it); content addressing makes the drop safe — at worst the
	// section is re-injected.
	for key, l := range s.index {
		if _, ok := onDisk[l.Seg]; !ok {
			s.dropLocked(key)
		}
	}
	for name := range s.segs {
		if _, ok := onDisk[name]; !ok {
			delete(s.segs, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		data, err := s.fs.ReadFile(filepath.Join(s.opts.Dir, name))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // raced a concurrent compaction
			}
			return fmt.Errorf("ostore: %w", err)
		}
		// Re-scanning a known segment (size changed — should not happen
		// for immutable segments, but a torn rename or manual tampering
		// can): rebuild its liveness from scratch. Unregister the segment
		// *before* dropping its keys, or the last drop would ref-count the
		// file to death and delete the surviving records we are about to
		// re-index from it.
		if old, ok := s.segs[name]; ok && old.size != int64(len(data)) {
			delete(s.segs, name)
			for key, l := range s.index {
				if l.Seg == name {
					s.dropLocked(key)
				}
			}
		}
		live := 0
		s.segs[name] = segInfo{size: int64(len(data))} // registered first so liveness can attach
		s.scanRecords(data, func(key store.Key, tenant string, sec *store.Section, off, n int64) {
			if s.indexInsertLocked(key, loc{Seg: name, Off: off, Len: n, Tenant: tenant}) {
				live++
			}
		})
		if live == 0 {
			// Nothing entered the index: the segment is empty, corrupt
			// from the start, or holds only duplicates of entries another
			// segment already serves. Forget it but leave the file —
			// other processes' indexes may still point into it.
			delete(s.segs, name)
		} else {
			si := s.segs[name]
			si.live = live
			s.segs[name] = si
		}
	}
	return nil
}

// loadCheckpointLocked reads the index checkpoint if present and intact.
// Any failure — missing file, bad magic, CRC mismatch, undecodable gob —
// degrades to an empty index, which refreshLocked then rebuilds by
// scanning every segment. Entries whose segment is gone are dropped.
func (s *Store) loadCheckpointLocked() {
	data, err := s.fs.ReadFile(s.checkpointPath())
	if err != nil {
		return
	}
	if len(data) < len(indexMagic)+frameHeaderSize || !bytes.Equal(data[:len(indexMagic)], indexMagic[:]) {
		s.stats.Corrupt++
		return
	}
	body := data[len(indexMagic):]
	plen := int64(binary.LittleEndian.Uint32(body[0:4]))
	want := binary.LittleEndian.Uint32(body[4:8])
	if plen <= 0 || plen > maxRecordBytes || int64(len(body)) < frameHeaderSize+plen {
		s.stats.Corrupt++
		return
	}
	payload := body[frameHeaderSize : frameHeaderSize+plen]
	if crc32.Checksum(payload, crcTable) != want {
		s.stats.Corrupt++
		return
	}
	var cp checkpoint
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&cp); err != nil {
		s.stats.Corrupt++
		return
	}
	for name, size := range cp.Segments {
		s.segs[name] = segInfo{size: size}
	}
	// Replay entries in their original insertion order so per-tenant
	// eviction order survives a restart.
	keys := make([]store.Key, 0, len(cp.Locs))
	for key := range cp.Locs {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return cp.Locs[keys[i]].Seq < cp.Locs[keys[j]].Seq })
	for _, key := range keys {
		l := cp.Locs[key]
		if _, ok := s.segs[l.Seg]; !ok {
			continue
		}
		if s.indexInsertLocked(key, l) {
			si := s.segs[l.Seg]
			si.live++
			s.segs[l.Seg] = si
		}
	}
}

// writeCheckpointLocked atomically replaces the index checkpoint.
// Best-effort: segments are the source of truth, so a failed checkpoint
// only costs the next Open a scan.
func (s *Store) writeCheckpointLocked() {
	cp := checkpoint{
		Locs:     make(map[store.Key]loc, len(s.index)),
		Segments: make(map[string]int64, len(s.segs)),
	}
	for k, l := range s.index {
		cp.Locs[k] = l
	}
	for name, si := range s.segs {
		cp.Segments[name] = si.size
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return
	}
	var buf bytes.Buffer
	buf.Write(indexMagic[:])
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload.Bytes(), crcTable))
	buf.Write(hdr[:])
	buf.Write(payload.Bytes())

	f, err := s.fs.CreateTemp(s.opts.Dir, ".index-*.tmp")
	if err != nil {
		return
	}
	tmp := f.Name()
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		s.fs.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		s.fs.Remove(tmp)
		return
	}
	if err := s.fs.Rename(tmp, s.checkpointPath()); err != nil {
		s.fs.Remove(tmp)
	}
}

func (s *Store) checkpointPath() string { return filepath.Join(s.opts.Dir, "index.ffi") }

// tierAdapter presents a Store as a store.Tier attributed to one tenant.
type tierAdapter struct {
	s      *Store
	tenant string
}

func (t tierAdapter) TierLookup(key store.Key) *store.Section { return t.s.Get(t.tenant, key) }
func (t tierAdapter) TierPublish(key store.Key, sec *store.Section) {
	_ = t.s.Put(t.tenant, key, sec)
}

// AsTier returns a store.Tier view of s whose traffic is attributed to
// tenant — the hook store.Store.WithTier expects.
func (s *Store) AsTier(tenant string) store.Tier { return tierAdapter{s: s, tenant: tenant} }
