package ostore

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"fastflip/internal/errfs"
	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/qcheck"
	"fastflip/internal/sites"
	"fastflip/internal/store"
)

// testKey derives a distinct, deterministic key.
func testKey(i int) store.Key {
	var k store.Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	k[31] = 0xa5
	return k
}

// testSection builds a small but non-trivial section whose content
// depends on i, so a wrong-section bug cannot pass equality by accident.
func testSection(i int) *store.Section {
	return &store.Section{
		Outcomes: map[sites.ClassKey]store.Outcome{
			{Static: prog.StaticID{Func: "k", Local: i}, Role: isa.OperandDst, Bit: 3}: {
				Kind:       metrics.SDC,
				Magnitudes: []float64{float64(i), 0.5},
			},
			{Static: prog.StaticID{Func: "k", Local: i}, Role: isa.OperandSrcA, Bit: 7}: {
				Kind:   metrics.Detected,
				Reason: metrics.DetectCrash,
			},
		},
		Amp:       [][]float64{{1, float64(i)}, {0, 2}},
		SimInstrs: uint64(1000 + i),
	}
}

// equalSections compares two sections structurally, treating nil and
// empty maps/slices as equal (gob erases that distinction) and comparing
// floats bitwise so ±Inf, NaN payloads, and signed zeros must survive the
// round trip exactly.
func equalSections(a, b *store.Section) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.SimInstrs != b.SimInstrs {
		return false
	}
	eqOut := func(x, y map[sites.ClassKey]store.Outcome) bool {
		if len(x) != len(y) {
			return false
		}
		for k, ox := range x {
			oy, ok := y[k]
			if !ok || ox.Kind != oy.Kind || ox.Reason != oy.Reason || len(ox.Magnitudes) != len(oy.Magnitudes) {
				return false
			}
			for i := range ox.Magnitudes {
				if math.Float64bits(ox.Magnitudes[i]) != math.Float64bits(oy.Magnitudes[i]) {
					return false
				}
			}
		}
		return true
	}
	if !eqOut(a.Outcomes, b.Outcomes) || !eqOut(a.Final, b.Final) {
		return false
	}
	if len(a.Amp) != len(b.Amp) {
		return false
	}
	for i := range a.Amp {
		if len(a.Amp[i]) != len(b.Amp[i]) {
			return false
		}
		for j := range a.Amp[i] {
			if math.Float64bits(a.Amp[i][j]) != math.Float64bits(b.Amp[i][j]) {
				return false
			}
		}
	}
	return true
}

func mustOpen(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutFlushReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := s.Put("t1", testKey(i), testSection(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Staged sections are visible before any flush.
	if got := s.Get("t1", testKey(1)); !equalSections(got, testSection(1)) {
		t.Fatalf("pending lookup: got %+v", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("t1", testKey(9), testSection(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if got := s.Get("t1", testKey(0)); got != nil {
		t.Fatalf("Get after Close returned %+v", got)
	}

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	for i := 0; i < 3; i++ {
		if got := r.Get("t2", testKey(i)); !equalSections(got, testSection(i)) {
			t.Fatalf("reopened lookup %d: got %+v", i, got)
		}
	}
	if got := r.Get("t2", testKey(99)); got != nil {
		t.Fatalf("unknown key returned %+v", got)
	}
	st := r.Stats()
	if st.Sections != 3 || st.Segments != 1 {
		t.Fatalf("stats: %d sections in %d segments, want 3 in 1", st.Sections, st.Segments)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats: %d hits / %d misses, want 3/1", st.Hits, st.Misses)
	}
	if st.Bytes <= 0 {
		t.Fatalf("stats: %d live bytes, want > 0", st.Bytes)
	}
	ts := st.Tenants["t2"]
	if ts.Hits != 3 || ts.Misses != 1 {
		t.Fatalf("tenant t2 stats: %+v", ts)
	}
}

// TestGobRoundTripProperty drives randomized sections — ±Inf and NaN
// magnitudes, signed zeros, empty-but-non-nil Final maps, ragged Amp
// matrices — through Put/Flush and back in through a fresh handle, and
// requires the decoded section to match the original bit for bit.
func TestGobRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	defer w.Close()

	n := 0
	prop := func(seed uint64) bool {
		n++
		rng := rand.New(rand.NewSource(int64(seed)))
		var key store.Key
		rng.Read(key[:])
		key[0] = byte(n) // unique per iteration even if quick repeats a seed
		sec := randSection(rng)

		if err := w.Put("prop", key, sec); err != nil {
			t.Logf("Put: %v", err)
			return false
		}
		if err := w.Flush(); err != nil {
			t.Logf("Flush: %v", err)
			return false
		}
		r, err := Open(Options{Dir: dir})
		if err != nil {
			t.Logf("Open: %v", err)
			return false
		}
		defer r.Close()
		got := r.Get("prop", key)
		if !equalSections(got, sec) {
			t.Logf("round trip diverged:\n put %+v\n got %+v", sec, got)
			return false
		}
		return true
	}
	max := 24
	if testing.Short() {
		max = 6
	}
	if err := quick.Check(prop, qcheck.Config(t, max)); err != nil {
		t.Fatal(err)
	}
}

// randSection generates a section exercising the encoding's edge cases.
func randSection(rng *rand.Rand) *store.Section {
	specials := []float64{
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Copysign(0, -1), 0, math.MaxFloat64, math.SmallestNonzeroFloat64,
	}
	randFloat := func() float64 {
		if rng.Intn(3) == 0 {
			return specials[rng.Intn(len(specials))]
		}
		return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
	}
	randOutcomes := func(minClasses int) map[sites.ClassKey]store.Outcome {
		m := make(map[sites.ClassKey]store.Outcome)
		for i := 0; i < minClasses+rng.Intn(4); i++ {
			var mags []float64
			for j := rng.Intn(4); j > 0; j-- {
				mags = append(mags, randFloat())
			}
			m[sites.ClassKey{
				Static: prog.StaticID{Func: "f" + string(rune('a'+rng.Intn(3))), Local: rng.Intn(8)},
				Role:   isa.OperandRole(rng.Intn(3)),
				Bit:    uint8(rng.Intn(64)),
			}] = store.Outcome{
				Kind:       metrics.OutcomeKind(rng.Intn(3)),
				Reason:     metrics.DetectReason(rng.Intn(4)),
				Magnitudes: mags,
			}
		}
		return m
	}
	sec := &store.Section{
		Outcomes:  randOutcomes(1),
		SimInstrs: rng.Uint64(),
	}
	switch rng.Intn(3) {
	case 0: // nil Final
	case 1: // empty but non-nil: must read back equal (gob erases non-nil-ness)
		sec.Final = map[sites.ClassKey]store.Outcome{}
	case 2:
		sec.Final = randOutcomes(0)
	}
	for i := rng.Intn(4); i > 0; i-- {
		var row []float64
		for j := rng.Intn(4); j > 0; j-- {
			row = append(row, randFloat())
		}
		sec.Amp = append(sec.Amp, row)
	}
	return sec
}

// segFiles lists the published segment base names in dir.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".ffo") {
			segs = append(segs, e.Name())
		}
	}
	return segs
}

// publishThree seals sections 0..2 into a single segment and closes.
func publishThree(t *testing.T, dir string) string {
	t.Helper()
	s := mustOpen(t, Options{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := s.Put("pub", testKey(i), testSection(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("published %d segments, want 1: %v", len(segs), segs)
	}
	return filepath.Join(dir, segs[0])
}

// TestTruncatedSegmentTail cuts a segment mid-record, as a crashed or
// torn write would. The records before the tear must still load; the torn
// one must read as a miss, never as a wrong section.
func TestTruncatedSegmentTail(t *testing.T) {
	dir := t.TempDir()
	seg := publishThree(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	for i := 0; i < 2; i++ {
		if got := r.Get("x", testKey(i)); !equalSections(got, testSection(i)) {
			t.Fatalf("pre-tear record %d: got %+v", i, got)
		}
	}
	if got := r.Get("x", testKey(2)); got != nil {
		t.Fatalf("torn record resolved to %+v, want miss", got)
	}
	st := r.Stats()
	if st.Corrupt == 0 {
		t.Fatal("truncation not counted in Corrupt")
	}
	if st.Sections != 2 {
		t.Fatalf("%d sections survive the tear, want 2", st.Sections)
	}
}

// TestFlippedIndexByte corrupts the checkpoint. The index is advisory:
// the store must fall back to scanning segments and lose nothing.
func TestFlippedIndexByte(t *testing.T) {
	dir := t.TempDir()
	publishThree(t, dir)
	idx := filepath.Join(dir, "index.ffi")
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(idx, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	st := r.Stats()
	if st.Corrupt == 0 {
		t.Fatal("checkpoint corruption not counted")
	}
	if st.Sections != 3 {
		t.Fatalf("%d sections after checkpoint loss, want 3 (rescan fallback)", st.Sections)
	}
	for i := 0; i < 3; i++ {
		if got := r.Get("x", testKey(i)); !equalSections(got, testSection(i)) {
			t.Fatalf("record %d after checkpoint loss: got %+v", i, got)
		}
	}
}

// TestFlippedSegmentByte flips one payload byte in the middle record.
// The CRC must catch it: records at and after the flip read as misses,
// records before it stay intact, and no lookup ever returns a section
// other than the one its key names.
func TestFlippedSegmentByte(t *testing.T) {
	dir := t.TempDir()
	seg := publishThree(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Roughly the middle of the file lands inside record 1 of 3.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, Options{Dir: dir, MaxCacheBytes: -1})
	defer r.Close()
	if got := r.Get("x", testKey(0)); !equalSections(got, testSection(0)) {
		t.Fatalf("record before flip: got %+v", got)
	}
	for i := 1; i < 3; i++ {
		if got := r.Get("x", testKey(i)); got != nil {
			if equalSections(got, testSection(i)) {
				t.Fatalf("record %d read back intact through a flipped byte", i)
			}
			t.Fatalf("record %d resolved to a WRONG section: %+v", i, got)
		}
	}
	if st := r.Stats(); st.Corrupt == 0 {
		t.Fatal("segment corruption not counted")
	}
}

// TestCrossProcessVisibility publishes through one handle and reads
// through another opened before the publish — the lazy directory rescan
// that stands in for cross-process cache coherence.
func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, Options{Dir: dir})
	defer a.Close()
	b := mustOpen(t, Options{Dir: dir})
	defer b.Close()

	if err := a.Put("writer", testKey(7), testSection(7)); err != nil {
		t.Fatal(err)
	}
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := b.Get("reader", testKey(7)); !equalSections(got, testSection(7)) {
		t.Fatalf("cross-handle lookup: got %+v", got)
	}
	if st := b.Stats(); st.Hits != 1 || st.Tenants["reader"].Hits != 1 {
		t.Fatalf("cross-handle hit not counted: %+v", st)
	}
}

// TestConcurrentPublish runs two independent handles over one directory
// publishing overlapping key ranges concurrently (the two-Manager
// scenario), then verifies every key resolves to exactly its own
// content from both original handles and a fresh one.
func TestConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, Options{Dir: dir})
	defer a.Close()
	b := mustOpen(t, Options{Dir: dir})
	defer b.Close()

	const n = 24 // keys 0..n-1 from a, n/2..n+n/2-1 from b: middle half contested
	var wg sync.WaitGroup
	pub := func(s *Store, tenant string, lo, hi int) {
		defer wg.Done()
		for i := lo; i < hi; i++ {
			if err := s.Put(tenant, testKey(i), testSection(i)); err != nil {
				t.Error(err)
				return
			}
			if i%5 == 0 {
				if err := s.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}
		if err := s.Flush(); err != nil {
			t.Error(err)
		}
	}
	wg.Add(2)
	go pub(a, "a", 0, n)
	go pub(b, "b", n/2, n+n/2)
	wg.Wait()

	c := mustOpen(t, Options{Dir: dir})
	defer c.Close()
	for _, s := range []*Store{a, b, c} {
		for i := 0; i < n+n/2; i++ {
			if got := s.Get("check", testKey(i)); !equalSections(got, testSection(i)) {
				t.Fatalf("key %d after concurrent publish: got %+v", i, got)
			}
		}
	}
	if st := c.Stats(); st.Sections != n+n/2 {
		t.Fatalf("%d sections, want %d", st.Sections, n+n/2)
	}
}

// TestFirstWriteWins has two handles publish the same key without seeing
// each other. Both segments land on disk, but a fresh index must count
// the section once and keep serving it correctly.
func TestFirstWriteWins(t *testing.T) {
	dir := t.TempDir()
	a := mustOpen(t, Options{Dir: dir})
	b := mustOpen(t, Options{Dir: dir})
	for _, s := range []*Store{a, b} {
		if err := s.Put("dup", testKey(1), testSection(1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if segs := segFiles(t, dir); len(segs) != 2 {
		t.Fatalf("expected both duplicate segments on disk, found %v", segs)
	}
	c := mustOpen(t, Options{Dir: dir})
	defer c.Close()
	st := c.Stats()
	if st.Sections != 1 {
		t.Fatalf("duplicate publish counted %d sections, want 1", st.Sections)
	}
	if got := c.Get("x", testKey(1)); !equalSections(got, testSection(1)) {
		t.Fatalf("deduplicated key: got %+v", got)
	}
}

// TestAutoFlush verifies Put seals a segment on its own once the staged
// batch passes MaxSegmentBytes.
func TestAutoFlush(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, MaxSegmentBytes: 1})
	defer s.Close()
	for i := 0; i < 3; i++ {
		if err := s.Put("t", testKey(i), testSection(i)); err != nil {
			t.Fatal(err)
		}
	}
	if segs := segFiles(t, dir); len(segs) != 3 {
		t.Fatalf("auto-flush produced %d segments, want 3", len(segs))
	}
	r := mustOpen(t, Options{Dir: dir})
	defer r.Close()
	for i := 0; i < 3; i++ {
		if got := r.Get("t", testKey(i)); !equalSections(got, testSection(i)) {
			t.Fatalf("auto-flushed key %d: got %+v", i, got)
		}
	}
}

// TestTenantQuotaEviction publishes far past one tenant's quota and
// checks that its oldest sections are evicted (and their all-dead
// segments deleted) while another tenant's section survives.
func TestTenantQuotaEviction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Options{Dir: dir, TenantQuotaBytes: 2048, MaxSegmentBytes: 1})
	defer s.Close()

	if err := s.Put("small", testKey(1000), testSection(1000)); err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		if err := s.Put("big", testKey(i), testSection(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 || st.Tenants["big"].Evictions == 0 {
		t.Fatalf("quota produced no evictions: %+v", st)
	}
	if b := st.Tenants["big"].Bytes; b > 2048 {
		t.Fatalf("tenant big still holds %d live bytes, quota 2048", b)
	}
	if st.Tenants["small"].Bytes <= 0 {
		t.Fatalf("unrelated tenant was evicted: %+v", st.Tenants["small"])
	}
	// Eviction is oldest-first: the first key is gone, the last survives.
	if got := s.Get("x", testKey(0)); got != nil {
		t.Fatalf("oldest section survived quota eviction: %+v", got)
	}
	if got := s.Get("x", testKey(n-1)); !equalSections(got, testSection(n-1)) {
		t.Fatalf("newest section evicted: got %+v", got)
	}
	if got := s.Get("x", testKey(1000)); !equalSections(got, testSection(1000)) {
		t.Fatalf("other tenant's section evicted: got %+v", got)
	}
	// All-dead segments are compacted away: far fewer files than publishes.
	if segs := segFiles(t, dir); len(segs) >= n {
		t.Fatalf("%d segment files remain after eviction, want < %d", len(segs), n)
	}
}

// TestPublishFaults breaks each step of the publish protocol through the
// errfs seam. Every failure must be reported, counted, and leave the
// staged batch intact so the next attempt succeeds; a failed publish must
// never become visible to other handles.
func TestPublishFaults(t *testing.T) {
	eio := errors.New("injected: EIO")
	steps := []struct {
		name string
		plan errfs.Plan
	}{
		{"createtemp", errfs.FailNth(errfs.OpCreateTemp, 1, eio)},
		{"write", errfs.FailNth(errfs.OpWrite, 1, eio)},
		{"shortwrite", errfs.ShortWriteNth(2, 3, eio)},
		{"sync", errfs.FailNth(errfs.OpSync, 1, eio)},
		{"rename", errfs.FailNth(errfs.OpRename, 1, eio)},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := errfs.Wrap(nil, nil)
			s := mustOpen(t, Options{Dir: dir, FS: ffs})
			defer s.Close()

			if err := s.Put("t", testKey(1), testSection(1)); err != nil {
				t.Fatal(err)
			}
			ffs.SetPlan(step.plan)
			if err := s.Flush(); err == nil {
				t.Fatal("Flush succeeded through an injected fault")
			}
			if st := s.Stats(); st.FlushErrs != 1 {
				t.Fatalf("FlushErrs = %d, want 1", st.FlushErrs)
			}
			// The failed publish is invisible to a fresh handle...
			ffs.SetPlan(nil)
			r := mustOpen(t, Options{Dir: dir})
			if got := r.Get("x", testKey(1)); got != nil {
				t.Fatalf("failed publish visible to fresh handle: %+v", got)
			}
			r.Close()
			// ...but the batch is retained: still a pending hit here, and
			// the next flush publishes it for real.
			if got := s.Get("t", testKey(1)); !equalSections(got, testSection(1)) {
				t.Fatalf("staged batch lost after failed flush: %+v", got)
			}
			if err := s.Flush(); err != nil {
				t.Fatalf("retry flush: %v", err)
			}
			r = mustOpen(t, Options{Dir: dir})
			defer r.Close()
			if got := r.Get("x", testKey(1)); !equalSections(got, testSection(1)) {
				t.Fatalf("retried publish unreadable: %+v", got)
			}
			// The aborted attempt must not leak temp files.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".tmp") {
					t.Fatalf("temp file leaked: %s", e.Name())
				}
			}
		})
	}
}
