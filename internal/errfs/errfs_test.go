package errfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	f, err := OS().OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS().ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if err := OS().Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	if err := OS().Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	if err := OS().Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
}

func TestFailNthWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(nil, FailNth(OpWrite, 2, syscall.ENOSPC))
	f, err := ffs.OpenFile(filepath.Join(dir, "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("aa")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if n, err := f.Write([]byte("bb")); !errors.Is(err, syscall.ENOSPC) || n != 0 {
		t.Fatalf("second write = %d, %v; want 0, ENOSPC", n, err)
	}
	if _, err := f.Write([]byte("cc")); err != nil {
		t.Fatalf("third write: %v", err)
	}
	data, _ := os.ReadFile(f.Name())
	if string(data) != "aacc" {
		t.Fatalf("file = %q, want aacc (faulted write must not land)", data)
	}
	if seen, faulted := ffs.Counts(OpWrite); seen != 3 || faulted != 1 {
		t.Fatalf("write counts = %d seen, %d faulted", seen, faulted)
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(nil, ShortWriteNth(1, 3, syscall.EIO))
	f, err := ffs.OpenFile(filepath.Join(dir, "s"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.Write([]byte("abcdef")); !errors.Is(err, syscall.EIO) || n != 3 {
		t.Fatalf("short write = %d, %v; want 3, EIO", n, err)
	}
	data, _ := os.ReadFile(f.Name())
	if string(data) != "abc" {
		t.Fatalf("file = %q, want the 3 short bytes", data)
	}
}

func TestSyncAndMetaFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := Wrap(nil, func(op Op, _ string, _ int) *Fault {
		switch op {
		case OpSync, OpRename, OpTruncate, OpMkdir, OpOpen, OpCreateTemp, OpRead, OpRemove:
			return &Fault{Err: syscall.EIO}
		}
		return nil
	})
	if _, err := ffs.OpenFile(filepath.Join(dir, "x"), os.O_CREATE, 0o644); !errors.Is(err, syscall.EIO) {
		t.Errorf("open = %v", err)
	}
	if _, err := ffs.CreateTemp(dir, "t-*"); !errors.Is(err, syscall.EIO) {
		t.Errorf("createtemp = %v", err)
	}
	if _, err := ffs.ReadFile(filepath.Join(dir, "x")); !errors.Is(err, syscall.EIO) {
		t.Errorf("read = %v", err)
	}
	if err := ffs.Rename("a", "b"); !errors.Is(err, syscall.EIO) {
		t.Errorf("rename = %v", err)
	}
	if err := ffs.Truncate("a", 0); !errors.Is(err, syscall.EIO) {
		t.Errorf("truncate = %v", err)
	}
	if err := ffs.Remove("a"); !errors.Is(err, syscall.EIO) {
		t.Errorf("remove = %v", err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "d"), 0o755); !errors.Is(err, syscall.EIO) {
		t.Errorf("mkdir = %v", err)
	}

	// Sync faults are delivered through files opened before the plan, too.
	ffs.SetPlan(FailNth(OpSync, 1, syscall.EIO))
	f, err := ffs.OpenFile(filepath.Join(dir, "y"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Errorf("sync = %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Errorf("second sync = %v", err)
	}
}

func TestSetPlanResetsCounts(t *testing.T) {
	ffs := Wrap(nil, nil)
	ffs.MkdirAll(t.TempDir(), 0o755)
	if seen, _ := ffs.Counts(OpMkdir); seen != 1 {
		t.Fatalf("mkdir count = %d", seen)
	}
	ffs.SetPlan(nil)
	if seen, _ := ffs.Counts(OpMkdir); seen != 0 {
		t.Fatalf("mkdir count after SetPlan = %d", seen)
	}
}
