// Package errfs is the filesystem seam under the write-ahead campaign
// log and the store's atomic writes. Production code runs against the
// real filesystem (OS); chaos tests wrap it in a FaultFS whose fault
// plan injects EIO, ENOSPC, short writes, and failed fsyncs at chosen
// operations — so the resilience of the fault-analysis tooling can be
// tested with the same determinism it demands of its subjects.
//
// The interface is deliberately narrow: exactly the operations the WAL
// and the gob stores perform (open/write/sync plus the rename-based
// atomic-replace protocol and recovery's read/truncate). Anything the
// persistence layer does not do has no seam, so a fault plan cannot
// describe an impossible failure.
package errfs

import (
	"io/fs"
	"os"
	"sync"
)

// File is the writable-file surface the persistence layer uses.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS abstracts the filesystem operations behind WAL segments, campaign
// manifests, and store snapshots.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Truncate(name string, size int64) error
	Remove(name string) error
	MkdirAll(path string, perm fs.FileMode) error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the real filesystem. The zero cost of the indirection is
// checked by the WAL benchmarks: every call forwards straight to os.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Op classifies a filesystem operation for fault planning.
type Op uint8

// The plannable operation classes. OpWrite and OpSync are per-File
// operations; the rest are FS-level.
const (
	OpOpen Op = iota
	OpCreateTemp
	OpRead
	OpWrite
	OpSync
	OpRename
	OpTruncate
	OpRemove
	OpMkdir
	numOps
)

var opNames = [numOps]string{"open", "createtemp", "read", "write", "sync", "rename", "truncate", "remove", "mkdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// Fault is one injected failure. Err is returned to the caller; for
// OpWrite, Short bytes are first written through to the underlying file,
// modeling a partial write (ENOSPC mid-record, torn append).
type Fault struct {
	Err   error
	Short int
}

// Plan decides, per operation, whether to inject a fault. It receives
// the operation class, the file path, and the 1-based count of calls to
// that class so far (faulted or not). Returning nil lets the operation
// through. Plans are invoked under the FaultFS mutex, so they may keep
// unsynchronized state, but must not call back into the FaultFS.
type Plan func(op Op, name string, count int) *Fault

// FailNth fails the n-th invocation of op (counting from 1) with err,
// once; every other operation passes through.
func FailNth(op Op, n int, err error) Plan {
	return func(o Op, _ string, count int) *Fault {
		if o == op && count == n {
			return &Fault{Err: err}
		}
		return nil
	}
}

// FailFrom fails every invocation of op from the n-th on — a disk that
// breaks and stays broken.
func FailFrom(op Op, n int, err error) Plan {
	return func(o Op, _ string, count int) *Fault {
		if o == op && count >= n {
			return &Fault{Err: err}
		}
		return nil
	}
}

// ShortWriteNth makes the n-th write a short write: short bytes land in
// the file, then err is returned. Subsequent writes pass through.
func ShortWriteNth(n, short int, err error) Plan {
	return func(o Op, _ string, count int) *Fault {
		if o == OpWrite && count == n {
			return &Fault{Err: err, Short: short}
		}
		return nil
	}
}

// FaultFS wraps an FS and injects faults according to a plan.
type FaultFS struct {
	base FS

	mu     sync.Mutex
	plan   Plan
	counts [numOps]int
	faults [numOps]int
}

// Wrap returns a FaultFS over base driven by plan. A nil base wraps the
// real filesystem; a nil plan injects nothing.
func Wrap(base FS, plan Plan) *FaultFS {
	if base == nil {
		base = OS()
	}
	return &FaultFS{base: base, plan: plan}
}

// SetPlan swaps the fault plan and resets the operation counters, so a
// test can re-arm the same FS for the next scenario.
func (f *FaultFS) SetPlan(plan Plan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
	f.counts = [numOps]int{}
	f.faults = [numOps]int{}
}

// Counts returns how many invocations of op were seen and how many of
// them faulted.
func (f *FaultFS) Counts(op Op) (seen, faulted int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op], f.faults[op]
}

// check counts the invocation and consults the plan.
func (f *FaultFS) check(op Op, name string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.plan == nil {
		return nil
	}
	ft := f.plan(op, name, f.counts[op])
	if ft != nil {
		f.faults[op]++
	}
	return ft
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if ft := f.check(OpOpen, name); ft != nil {
		return nil, &fs.PathError{Op: "open", Path: name, Err: ft.Err}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if ft := f.check(OpCreateTemp, dir); ft != nil {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: ft.Err}
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if ft := f.check(OpRead, name); ft != nil {
		return nil, &fs.PathError{Op: "read", Path: name, Err: ft.Err}
	}
	return f.base.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if ft := f.check(OpRename, oldpath); ft != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: ft.Err}
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if ft := f.check(OpTruncate, name); ft != nil {
		return &fs.PathError{Op: "truncate", Path: name, Err: ft.Err}
	}
	return f.base.Truncate(name, size)
}

func (f *FaultFS) Remove(name string) error {
	if ft := f.check(OpRemove, name); ft != nil {
		return &fs.PathError{Op: "remove", Path: name, Err: ft.Err}
	}
	return f.base.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if ft := f.check(OpMkdir, path); ft != nil {
		return &fs.PathError{Op: "mkdir", Path: path, Err: ft.Err}
	}
	return f.base.MkdirAll(path, perm)
}

// faultFile routes Write and Sync back through the plan; Close and Name
// always pass through (a close that fails would leak the descriptor in
// the wrapped layer, and no caller branches on it).
type faultFile struct {
	fs *FaultFS
	f  File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ft := ff.fs.check(OpWrite, ff.f.Name()); ft != nil {
		n := 0
		if ft.Short > 0 {
			short := ft.Short
			if short > len(p) {
				short = len(p)
			}
			n, _ = ff.f.Write(p[:short])
		}
		return n, &fs.PathError{Op: "write", Path: ff.f.Name(), Err: ft.Err}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if ft := ff.fs.check(OpSync, ff.f.Name()); ft != nil {
		return &fs.PathError{Op: "sync", Path: ff.f.Name(), Err: ft.Err}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
func (ff *faultFile) Name() string { return ff.f.Name() }
