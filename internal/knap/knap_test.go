package knap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fastflip/internal/prog"
	"fastflip/internal/qcheck"
)

func id(i int) prog.StaticID { return prog.StaticID{Func: "f", Local: i} }

func TestMinCostSimple(t *testing.T) {
	items := []Item{
		{ID: id(0), Value: 0.5, Cost: 10},
		{ID: id(1), Value: 0.3, Cost: 2},
		{ID: id(2), Value: 0.2, Cost: 50},
	}
	s := New(items)
	sel, err := s.MinCostFor(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost != 2 || !sel.Has(id(1)) {
		t.Errorf("selection = %+v, want just item 1", sel)
	}
	sel, err = s.MinCostFor(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost != 12 {
		t.Errorf("cost = %d, want 12 (items 0+1)", sel.Cost)
	}
}

func TestMinCostFullAndOverflow(t *testing.T) {
	items := []Item{
		{ID: id(0), Value: 0.6, Cost: 1},
		{ID: id(1), Value: 0.4, Cost: 1},
	}
	s := New(items)
	if s.MaxValue() != 1.0 || s.TotalCost() != 2 {
		t.Fatalf("max value %v, total cost %d", s.MaxValue(), s.TotalCost())
	}
	sel, err := s.MinCostFor(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.IDs) != 2 {
		t.Errorf("full target selected %d items", len(sel.IDs))
	}
	if _, err := s.MinCostFor(1.5); err == nil {
		t.Error("unreachable target did not error")
	}
}

func TestZeroValueItemsNeverSelected(t *testing.T) {
	items := []Item{
		{ID: id(0), Value: 0.0, Cost: 0}, // free but worthless
		{ID: id(1), Value: 1.0, Cost: 5},
	}
	sel, err := New(items).MinCostFor(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Has(id(0)) {
		t.Error("selected a zero-value item")
	}
}

func TestZeroCostItems(t *testing.T) {
	items := []Item{
		{ID: id(0), Value: 0.5, Cost: 0},
		{ID: id(1), Value: 0.5, Cost: 7},
	}
	sel, err := New(items).MinCostFor(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Cost != 0 {
		t.Errorf("cost = %d, want 0 (free item suffices)", sel.Cost)
	}
}

func TestSelectionConsistency(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(7)), 40)
	s := New(items)
	for _, target := range []float64{0.1, 0.5, 0.9, s.MaxValue()} {
		sel, err := s.MinCostFor(target)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute value/cost from IDs: the reconstruction must agree
		// with its own bookkeeping.
		var v float64
		var c int
		for _, selID := range sel.IDs {
			for _, it := range items {
				if it.ID == selID {
					v += it.Value
					c += it.Cost
				}
			}
		}
		if v != sel.Value || c != sel.Cost {
			t.Errorf("target %v: recomputed (%v,%d) != recorded (%v,%d)", target, v, c, sel.Value, sel.Cost)
		}
		if sel.Value < target-valueSlack {
			t.Errorf("target %v: value %v below target", target, sel.Value)
		}
	}
}

func TestSweepMonotone(t *testing.T) {
	items := randomItems(rand.New(rand.NewSource(3)), 60)
	s := New(items)
	targets := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99}
	sels, err := s.Sweep(targets)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sels); i++ {
		if sels[i].Cost < sels[i-1].Cost {
			t.Errorf("cost not monotone: %d at %v then %d at %v",
				sels[i-1].Cost, targets[i-1], sels[i].Cost, targets[i])
		}
	}
}

// TestDPOptimalVsBruteForce checks the DP against exhaustive enumeration
// on small instances.
func TestDPOptimalVsBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		items := randomItems(r, 10)
		s := New(items)
		target := r.Float64() * s.MaxValue()
		sel, err := s.MinCostFor(target)
		if err != nil {
			t.Fatal(err)
		}
		best := 1 << 30
		for mask := 0; mask < 1<<len(items); mask++ {
			var v float64
			var c int
			for i, it := range items {
				if mask&(1<<i) != 0 {
					v += it.Value
					c += it.Cost
				}
			}
			if v >= target-valueSlack && c < best {
				best = c
			}
		}
		if sel.Cost != best {
			t.Fatalf("trial %d: DP cost %d, brute force %d (target %v)", trial, sel.Cost, best, target)
		}
	}
}

// TestGreedyNeverBeatsDP is the ablation's soundness property: the DP is
// optimal, so greedy can only match or exceed its cost.
func TestGreedyNeverBeatsDP(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randomItems(r, 25)
		s := New(items)
		target := 0.2 + 0.7*r.Float64()*s.MaxValue()
		sel, err := s.MinCostFor(target)
		if err != nil {
			return true
		}
		g := Greedy(items, target)
		return g.Cost >= sel.Cost && g.Value >= target-valueSlack
	}
	if err := quick.Check(f, qcheck.Config(t, 40)); err != nil {
		t.Error(err)
	}
}

// TestGreedyMatchesDPOnUniformCosts pins the parity half of the ablation:
// with uniform per-item cost the density order degrades to plain value
// order, which is optimal, so greedy must match the DP's minimum cost
// exactly — not merely bound it — on every random instance.
func TestGreedyMatchesDPOnUniformCosts(t *testing.T) {
	f := func(seed int64, cost uint8) bool {
		c := int(cost%9) + 1
		r := rand.New(rand.NewSource(seed))
		items := randomItems(r, 30)
		for i := range items {
			items[i].Cost = c
		}
		s := New(items)
		target := 0.2 + 0.7*r.Float64()*s.MaxValue()
		sel, err := s.MinCostFor(target)
		if err != nil {
			return true
		}
		g := Greedy(items, target)
		return g.Cost == sel.Cost && g.Value >= target-valueSlack
	}
	if err := quick.Check(f, qcheck.Config(t, 40)); err != nil {
		t.Error(err)
	}
}

func TestNegativeInputsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative cost did not panic")
		}
	}()
	New([]Item{{ID: id(0), Value: 0.1, Cost: -1}})
}

func randomItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	total := 0.0
	for i := range items {
		items[i] = Item{ID: id(i), Value: r.Float64(), Cost: r.Intn(20)}
		total += items[i].Value
	}
	for i := range items {
		items[i].Value /= total
	}
	return items
}
