// Package knap solves the instruction-selection problem of §4.6: choose a
// set of static instructions that meets a target total protection value
// while minimizing total protection cost. This is a 0-1 knapsack problem
// solved with the standard dynamic program over cost, which also yields the
// whole value/cost Pareto frontier in one pass (the ε-constraint sweep the
// paper uses for Figure 1).
package knap

import (
	"fmt"
	"math"
	"sort"

	"fastflip/internal/prog"
)

// Item is one static instruction with its protection value and cost.
type Item struct {
	ID    prog.StaticID
	Value float64 // fraction of SDC-Bad errors detected by protecting it
	Cost  int     // dynamic instances of the instruction (runtime overhead)
}

// valueSlack absorbs float accumulation error when comparing sums of
// per-item values against a target. Item values are normalized fractions
// that sum to 1, so 1e-6 is far below any meaningful value difference.
const valueSlack = 1e-6

// Solver holds the DP table for one item set.
type Solver struct {
	items     []Item
	totalCost int
	best      []float64 // best[c] = max value achievable with cost ≤ c
	take      [][]uint64
}

// lessID orders static IDs canonically (function name, then local index).
func lessID(a, b prog.StaticID) bool {
	if a.Func != b.Func {
		return a.Func < b.Func
	}
	return a.Local < b.Local
}

// New builds the DP table: O(len(items) × total cost) time.
//
// Items are canonicalized by static ID first (the caller's slice is left
// untouched): the DP breaks value ties by item order, so without a fixed
// order two runs fed the same items from differently-ordered maps would
// emit different — equally optimal — protection sets, and resumed runs
// could not be compared byte-for-byte against fresh ones.
func New(items []Item) *Solver {
	items = append([]Item(nil), items...)
	sort.SliceStable(items, func(a, b int) bool { return lessID(items[a].ID, items[b].ID) })
	s := &Solver{items: items}
	for _, it := range items {
		if it.Cost < 0 || it.Value < 0 {
			panic(fmt.Sprintf("knap: negative cost or value for %v", it.ID))
		}
		s.totalCost += it.Cost
	}
	width := s.totalCost + 1
	s.best = make([]float64, width)
	s.take = make([][]uint64, len(items))
	words := (width + 63) / 64
	for i, it := range items {
		row := make([]uint64, words)
		s.take[i] = row
		if it.Value == 0 {
			continue // never worth protecting; skipping keeps cost minimal
		}
		for c := s.totalCost; c >= it.Cost; c-- {
			if v := s.best[c-it.Cost] + it.Value; v > s.best[c] {
				s.best[c] = v
				row[c/64] |= 1 << (c % 64)
			}
		}
	}
	return s
}

// TotalCost returns the cost of protecting every item.
func (s *Solver) TotalCost() int { return s.totalCost }

// MaxValue returns the total value of protecting every item.
func (s *Solver) MaxValue() float64 { return s.best[s.totalCost] }

// Selection is a chosen set of instructions.
type Selection struct {
	IDs   []prog.StaticID
	Value float64
	Cost  int
}

// Has reports whether the selection contains id.
func (sel *Selection) Has(id prog.StaticID) bool {
	for _, x := range sel.IDs {
		if x == id {
			return true
		}
	}
	return false
}

// Set returns the selection as a lookup map.
func (sel *Selection) Set() map[prog.StaticID]bool {
	m := make(map[prog.StaticID]bool, len(sel.IDs))
	for _, id := range sel.IDs {
		m[id] = true
	}
	return m
}

// MinCostFor returns the minimum-cost selection whose value is at least
// target. It returns an error if the target exceeds the achievable value.
func (s *Solver) MinCostFor(target float64) (*Selection, error) {
	if target > s.MaxValue()+valueSlack {
		return nil, fmt.Errorf("knap: target value %.4f exceeds achievable %.4f", target, s.MaxValue())
	}
	cost := sort.Search(s.totalCost+1, func(c int) bool {
		return s.best[c] >= target-valueSlack
	})
	return s.reconstruct(cost), nil
}

// reconstruct walks the take bits backward from cost. The selection is
// rendered in canonical ID order, with value and cost accumulated in that
// same order so the recorded sums are bit-reproducible from the IDs.
func (s *Solver) reconstruct(cost int) *Selection {
	var chosen []Item
	c := cost
	for i := len(s.items) - 1; i >= 0; i-- {
		if s.take[i][c/64]&(1<<(c%64)) != 0 {
			chosen = append(chosen, s.items[i])
			c -= s.items[i].Cost
		}
	}
	sort.Slice(chosen, func(a, b int) bool { return lessID(chosen[a].ID, chosen[b].ID) })
	sel := &Selection{}
	for _, it := range chosen {
		sel.IDs = append(sel.IDs, it.ID)
		sel.Value += it.Value
		sel.Cost += it.Cost
	}
	return sel
}

// Sweep returns the minimum-cost selection for each target, resolving all
// targets against the single DP table (the ε-constraint sweep).
func (s *Solver) Sweep(targets []float64) ([]*Selection, error) {
	sels := make([]*Selection, len(targets))
	for i, t := range targets {
		sel, err := s.MinCostFor(t)
		if err != nil {
			return nil, err
		}
		sels[i] = sel
	}
	return sels, nil
}

// Greedy returns the selection produced by the value-density heuristic
// (take items by descending value/cost until the target is met). It exists
// as an ablation baseline for the DP solver.
func Greedy(items []Item, target float64) *Selection {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		da := density(ia)
		db := density(ib)
		if da != db {
			return da > db
		}
		if ia.Cost != ib.Cost {
			return ia.Cost < ib.Cost
		}
		// Full tie: order by static ID so the heuristic, like the DP, is
		// independent of the caller's item ordering.
		return lessID(ia.ID, ib.ID)
	})
	sel := &Selection{}
	for _, i := range order {
		if sel.Value >= target-valueSlack {
			break
		}
		it := items[i]
		if it.Value == 0 {
			continue
		}
		sel.IDs = append(sel.IDs, it.ID)
		sel.Value += it.Value
		sel.Cost += it.Cost
	}
	sort.Slice(sel.IDs, func(a, b int) bool { return lessID(sel.IDs[a], sel.IDs[b]) })
	return sel
}

func density(it Item) float64 {
	if it.Cost == 0 {
		return math.Inf(1)
	}
	return it.Value / float64(it.Cost)
}
