package knap

import (
	"math/rand"
	"reflect"
	"testing"

	"fastflip/internal/prog"
)

// permutations to feed each case through: the solver must emit the same
// selection no matter how the caller ordered the items (map iteration
// order is the usual source of shuffling).
func permuted(items []Item, seed int64) []Item {
	out := append([]Item(nil), items...)
	rand.New(rand.NewSource(seed)).Shuffle(len(out), func(i, j int) {
		out[i], out[j] = out[j], out[i]
	})
	return out
}

// TestSelectionDeterministicUnderPermutation is the regression test for
// knapsack tie-breaking: zero-cost items and exact value ties must resolve
// stably by static ID, so a resumed run and a fresh run — which may
// enumerate protectable instructions in different orders — emit identical
// protection sets.
func TestSelectionDeterministicUnderPermutation(t *testing.T) {
	cases := []struct {
		name     string
		items    []Item
		target   float64
		wantIDs  []prog.StaticID
		wantCost int
	}{
		{
			name: "value tie picks smallest ID",
			items: []Item{
				{ID: id(3), Value: 0.5, Cost: 2},
				{ID: id(1), Value: 0.5, Cost: 2},
				{ID: id(2), Value: 0.5, Cost: 2},
			},
			target:   0.5,
			wantIDs:  []prog.StaticID{id(1)},
			wantCost: 2,
		},
		{
			name: "zero-cost items always taken",
			items: []Item{
				{ID: id(2), Value: 0.2, Cost: 0},
				{ID: id(0), Value: 0.5, Cost: 4},
				{ID: id(1), Value: 0.3, Cost: 0},
			},
			target:   0.5,
			wantIDs:  []prog.StaticID{id(1), id(2)},
			wantCost: 0,
		},
		{
			name: "tie across functions orders by name",
			items: []Item{
				{ID: prog.StaticID{Func: "zz", Local: 0}, Value: 0.5, Cost: 3},
				{ID: prog.StaticID{Func: "aa", Local: 9}, Value: 0.5, Cost: 3},
			},
			target:   0.5,
			wantIDs:  []prog.StaticID{{Func: "aa", Local: 9}},
			wantCost: 3,
		},
		{
			name: "mixed ties and zero cost",
			items: []Item{
				{ID: id(5), Value: 0.25, Cost: 1},
				{ID: id(4), Value: 0.25, Cost: 1},
				{ID: id(9), Value: 0.1, Cost: 0},
				{ID: id(0), Value: 0.4, Cost: 6},
			},
			target:   0.35,
			wantIDs:  []prog.StaticID{id(4), id(9)},
			wantCost: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				items := permuted(tc.items, seed)
				sel, err := New(items).MinCostFor(tc.target)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sel.IDs, tc.wantIDs) || sel.Cost != tc.wantCost {
					t.Fatalf("permutation %d: selected %v (cost %d), want %v (cost %d)",
						seed, sel.IDs, sel.Cost, tc.wantIDs, tc.wantCost)
				}
			}
		})
	}
}

// TestSolverDoesNotMutateCallerItems guards the copy-then-sort contract:
// callers may hold their item slice in a meaningful order.
func TestSolverDoesNotMutateCallerItems(t *testing.T) {
	items := []Item{
		{ID: id(2), Value: 0.3, Cost: 1},
		{ID: id(0), Value: 0.3, Cost: 1},
		{ID: id(1), Value: 0.4, Cost: 2},
	}
	orig := append([]Item(nil), items...)
	if _, err := New(items).MinCostFor(0.3); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, orig) {
		t.Errorf("New reordered the caller's slice: %v", items)
	}
}

// TestGreedyDeterministicUnderPermutation covers the ablation heuristic's
// tie-breaking the same way: equal density and cost resolve by static ID.
func TestGreedyDeterministicUnderPermutation(t *testing.T) {
	items := []Item{
		{ID: id(7), Value: 0.25, Cost: 5},
		{ID: id(3), Value: 0.25, Cost: 5},
		{ID: id(5), Value: 0.5, Cost: 20},
	}
	want := Greedy(items, 0.25)
	if !reflect.DeepEqual(want.IDs, []prog.StaticID{id(3)}) {
		t.Fatalf("greedy picked %v, want the smallest tied ID", want.IDs)
	}
	for seed := int64(0); seed < 6; seed++ {
		got := Greedy(permuted(items, seed), 0.25)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("permutation %d: greedy %+v, want %+v", seed, got, want)
		}
	}
}
