package spec

import (
	"testing"

	"fastflip/internal/prog"
)

var dummyLinked prog.Linked

func TestBufferOverlaps(t *testing.T) {
	a := Buffer{Addr: 10, Len: 5}
	tests := []struct {
		b    Buffer
		want bool
	}{
		{Buffer{Addr: 10, Len: 5}, true},
		{Buffer{Addr: 14, Len: 1}, true},
		{Buffer{Addr: 15, Len: 3}, false},
		{Buffer{Addr: 0, Len: 10}, false},
		{Buffer{Addr: 0, Len: 11}, true},
		{Buffer{Addr: 12, Len: 0}, false},
	}
	for _, tt := range tests {
		if got := a.Overlaps(tt.b); got != tt.want {
			t.Errorf("%v overlaps %v = %v, want %v", a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(a); got != tt.want {
			t.Errorf("overlap not symmetric for %v", tt.b)
		}
	}
}

func TestBufferString(t *testing.T) {
	b := Buffer{Name: "blk", Addr: 64, Len: 16}
	if got := b.String(); got != "blk[64:80]" {
		t.Errorf("String = %q", got)
	}
}

func validProgram() *Program {
	return &Program{
		Name:     "p",
		Linked:   &dummyLinked,
		MemWords: 16,
		Sections: []Section{
			{ID: 0, Name: "s0", Instances: []InstanceIO{{
				Inputs:  []Buffer{{Name: "in", Addr: 0, Len: 4}},
				Outputs: []Buffer{{Name: "out", Addr: 4, Len: 4}},
			}}},
		},
		FinalOutputs: []Buffer{{Name: "out", Addr: 4, Len: 4}},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Program)
	}{
		{"nil linked", func(p *Program) { p.Linked = nil }},
		{"zero memory", func(p *Program) { p.MemWords = 0 }},
		{"section id mismatch", func(p *Program) { p.Sections[0].ID = 3 }},
		{"no instances", func(p *Program) { p.Sections[0].Instances = nil }},
		{"buffer outside memory", func(p *Program) {
			p.Sections[0].Instances[0].Inputs[0].Len = 100
		}},
		{"no final outputs", func(p *Program) { p.FinalOutputs = nil }},
		{"final output outside memory", func(p *Program) {
			p.FinalOutputs[0].Addr = 15
			p.FinalOutputs[0].Len = 5
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := validProgram()
			tt.mutate(p)
			if err := p.Validate(); err == nil {
				t.Error("Validate accepted a broken program")
			}
		})
	}
}
