// Package spec declares the analysis-facing description of a program: its
// linked code, how memory is initialized, how the execution is partitioned
// into sections, and which memory buffers are each section's inputs,
// outputs, and live state.
//
// In the paper these are the developer-provided analysis inputs (§4.1):
// the partition into sections and the specification of how data flows
// between them. Dataflow is derived from buffer identity: an output buffer
// of one section instance that overlaps an input buffer of a later instance
// is an edge.
package spec

import (
	"fmt"

	"fastflip/internal/prog"
	"fastflip/internal/vm"
)

// BufKind says how a buffer's words are interpreted when computing SDC
// magnitudes.
type BufKind uint8

const (
	Float BufKind = iota // words are float64 bits
	Int                  // words are integers; any difference is magnitude-relevant
)

// Buffer is a named, contiguous range of memory words.
type Buffer struct {
	Name string
	Addr int
	Len  int
	Kind BufKind
}

// Overlaps reports whether the two buffers share any word. A zero-length
// buffer overlaps nothing.
func (b Buffer) Overlaps(o Buffer) bool {
	if b.Len <= 0 || o.Len <= 0 {
		return false
	}
	return b.Addr < o.Addr+o.Len && o.Addr < b.Addr+b.Len
}

func (b Buffer) String() string {
	return fmt.Sprintf("%s[%d:%d]", b.Name, b.Addr, b.Addr+b.Len)
}

// InstanceIO is the input/output/live declaration for one dynamic instance
// of a section. Sections that iterate over different data per instance
// (e.g. the LUD blocks touched in outer iteration k) declare one InstanceIO
// per occurrence.
type InstanceIO struct {
	Inputs  []Buffer
	Outputs []Buffer
	// Live is additional live-at-end state beyond Outputs that the analysis
	// checks for error-induced side effects (§4.9): corruption here does not
	// flow through the declared dataflow, so it is conservatively SDC-Bad.
	Live []Buffer
}

// Section is one static program section.
type Section struct {
	ID   int
	Name string
	// Discrete marks integer/bitwise sections (e.g. a hash round) for which
	// a local sensitivity analysis is meaningless: any input SDC may flip
	// the output arbitrarily, so the propagation analysis uses a worst-case
	// amplification factor.
	Discrete  bool
	Instances []InstanceIO
}

// Program is everything the analyses need to run one benchmark version.
type Program struct {
	Name     string
	Version  string // "none", "small", "large", ...
	Linked   *prog.Linked
	MemWords int
	// MemLimit, when nonzero, bounds the register-addressed loads/stores
	// below MemWords (vm.Machine.MemLimit). Hardened programs reserve
	// [MemLimit, MemWords) as detector-private spill slots reachable only
	// through the absolute-addressed detector ops.
	MemLimit int
	// Init populates input data in memory before execution starts.
	Init func(m *vm.Machine)
	// Sections lists the static sections; Sections[i].ID must equal i.
	Sections []Section
	// FinalOutputs are the outputs of the whole execution T, compared by the
	// monolithic baseline and bounded by the composed SDC specification.
	FinalOutputs []Buffer
}

// Validate checks internal consistency of the specification.
func (p *Program) Validate() error {
	if p.Linked == nil {
		return fmt.Errorf("spec %s: nil linked program", p.Name)
	}
	if p.MemWords <= 0 {
		return fmt.Errorf("spec %s: MemWords must be positive", p.Name)
	}
	for i, s := range p.Sections {
		if s.ID != i {
			return fmt.Errorf("spec %s: section %q has ID %d at index %d", p.Name, s.Name, s.ID, i)
		}
		if len(s.Instances) == 0 {
			return fmt.Errorf("spec %s: section %q declares no instances", p.Name, s.Name)
		}
		for j, io := range s.Instances {
			for _, b := range append(append(append([]Buffer{}, io.Inputs...), io.Outputs...), io.Live...) {
				// b.Len > p.MemWords-b.Addr rather than b.Addr+b.Len >
				// p.MemWords: the sum overflows for adversarial
				// declarations and would wrap past the check.
				if b.Addr < 0 || b.Len < 0 || b.Addr > p.MemWords || b.Len > p.MemWords-b.Addr {
					return fmt.Errorf("spec %s: section %q instance %d: buffer %v outside memory [0:%d)", p.Name, s.Name, j, b, p.MemWords)
				}
			}
		}
	}
	if len(p.FinalOutputs) == 0 {
		return fmt.Errorf("spec %s: no final outputs declared", p.Name)
	}
	for _, b := range p.FinalOutputs {
		if b.Addr < 0 || b.Len < 0 || b.Addr > p.MemWords || b.Len > p.MemWords-b.Addr {
			return fmt.Errorf("spec %s: final output %v outside memory [0:%d)", p.Name, b, p.MemWords)
		}
	}
	return nil
}

// NewMachine builds an initialized machine positioned at the program entry.
func (p *Program) NewMachine() *vm.Machine {
	m := vm.New(p.Linked.Code, p.Linked.Entry, p.MemWords)
	m.MemLimit = p.MemLimit
	if p.Init != nil {
		p.Init(m)
	}
	return m
}
