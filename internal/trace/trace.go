// Package trace records the error-free execution of a program: the dynamic
// instruction stream, the region of interest, and every section instance
// with entry/exit checkpoints. The trace is the substrate both injection
// analyses replay against.
package trace

import (
	"fmt"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// safetyCap aborts clean runs that appear to loop forever; it is far above
// any benchmark's nominal length.
const safetyCap = 200_000_000

// Instance is one dynamic execution of a static section.
type Instance struct {
	Sec   int // static section ID
	Occur int // occurrence index among instances of the same section
	IO    spec.InstanceIO

	BegDyn uint64 // dynamic index of the SECBEG instruction
	EndDyn uint64 // dynamic index of the SECEND instruction

	// Entry is the machine state just after SECBEG executed (Dyn == BegDyn+1);
	// Exit is the state just after SECEND executed (Dyn == EndDyn+1).
	Entry *vm.Machine
	Exit  *vm.Machine

	// Funcs is the set of function indices whose instructions executed
	// inside the instance; it determines the instance's code identity for
	// incremental reuse.
	Funcs map[int]bool
}

// Len returns the number of dynamic instructions strictly inside the
// instance (markers excluded).
func (i *Instance) Len() uint64 { return i.EndDyn - i.BegDyn - 1 }

// Contains reports whether dynamic index d is strictly inside the instance.
func (i *Instance) Contains(d uint64) bool { return d > i.BegDyn && d < i.EndDyn }

// Trace is a recorded clean execution.
type Trace struct {
	Prog *spec.Program

	// PCs[d] is the static PC of dynamic instruction d.
	PCs []int32

	ROIBeg, ROIEnd uint64 // dynamic indices of the ROIBEG/ROIEND markers

	Instances []*Instance

	Start *vm.Machine // initialized state before the first instruction
	Final *vm.Machine // halted state

	TotalDyn uint64
}

// Record executes p cleanly and captures the trace. The clean run must halt
// normally; a crash, timeout, or malformed marker nesting is an error in
// the benchmark itself.
func Record(p *spec.Program) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := p.NewMachine()
	m.MaxDyn = safetyCap

	t := &Trace{Prog: p, Start: m.Clone()}
	occur := make([]int, len(p.Sections))
	var open *Instance
	roiOpen, roiSeen := false, false

	for m.Status == vm.Running {
		pc := m.PC
		dyn := m.Dyn
		ev := m.Step()
		if m.Status == vm.Crashed {
			return nil, fmt.Errorf("trace %s: clean run crashed at pc %d: %v", p.Name, pc, m.Crash)
		}
		if m.Status == vm.TimedOut {
			return nil, fmt.Errorf("trace %s: clean run exceeded %d instructions", p.Name, uint64(safetyCap))
		}
		t.PCs = append(t.PCs, int32(pc))

		switch ev.Kind {
		case vm.EvROIBeg:
			if roiOpen || roiSeen {
				return nil, fmt.Errorf("trace %s: multiple or nested ROIBEG", p.Name)
			}
			roiOpen, roiSeen = true, true
			t.ROIBeg = dyn
		case vm.EvROIEnd:
			if !roiOpen {
				return nil, fmt.Errorf("trace %s: ROIEND without ROIBEG", p.Name)
			}
			roiOpen = false
			t.ROIEnd = dyn
		case vm.EvSecBeg:
			if open != nil {
				return nil, fmt.Errorf("trace %s: nested SECBEG %d inside section %d", p.Name, ev.Sec, open.Sec)
			}
			if ev.Sec < 0 || ev.Sec >= len(p.Sections) {
				return nil, fmt.Errorf("trace %s: SECBEG with undeclared section ID %d", p.Name, ev.Sec)
			}
			sec := &p.Sections[ev.Sec]
			occ := occur[ev.Sec]
			if occ >= len(sec.Instances) {
				return nil, fmt.Errorf("trace %s: section %q executed %d times but declares %d instances",
					p.Name, sec.Name, occ+1, len(sec.Instances))
			}
			open = &Instance{
				Sec:    ev.Sec,
				Occur:  occ,
				IO:     sec.Instances[occ],
				BegDyn: dyn,
				Entry:  m.Clone(),
				Funcs:  make(map[int]bool),
			}
			occur[ev.Sec]++
		case vm.EvSecEnd:
			if open == nil || open.Sec != ev.Sec {
				return nil, fmt.Errorf("trace %s: SECEND %d does not match open section", p.Name, ev.Sec)
			}
			open.EndDyn = dyn
			open.Exit = m.Clone()
			t.Instances = append(t.Instances, open)
			open = nil
		default:
			if open != nil {
				fi, _ := p.Linked.FuncOf(pc)
				open.Funcs[fi] = true
			}
		}
	}
	if open != nil {
		return nil, fmt.Errorf("trace %s: section %d never closed", p.Name, open.Sec)
	}
	if roiOpen || !roiSeen {
		return nil, fmt.Errorf("trace %s: missing or unclosed region of interest", p.Name)
	}

	t.Final = m
	t.TotalDyn = m.Dyn

	for _, inst := range t.Instances {
		if inst.BegDyn < t.ROIBeg || inst.EndDyn > t.ROIEnd {
			return nil, fmt.Errorf("trace %s: section %d instance %d extends outside the region of interest",
				p.Name, inst.Sec, inst.Occur)
		}
	}
	return t, nil
}

// InstanceAt returns the section instance containing dynamic index d, or
// nil if d falls outside every section (an untested site in §4.9 terms).
func (t *Trace) InstanceAt(d uint64) *Instance {
	for _, inst := range t.Instances {
		if inst.Contains(d) {
			return inst
		}
	}
	return nil
}

// NearestCheckpoint returns the latest recorded machine state at or before
// dynamic index d, to seed a replay. It is the program start or a section
// entry/exit checkpoint.
func (t *Trace) NearestCheckpoint(d uint64) *vm.Machine {
	m, _ := t.nearest(d)
	return m
}

// NearestCheckpointDyn returns the dynamic index of the checkpoint that
// NearestCheckpoint(d) would return, for cost accounting.
func (t *Trace) NearestCheckpointDyn(d uint64) uint64 {
	_, dyn := t.nearest(d)
	return dyn
}

func (t *Trace) nearest(d uint64) (*vm.Machine, uint64) {
	best := t.Start
	bestDyn := uint64(0)
	for _, inst := range t.Instances {
		if e := inst.BegDyn + 1; e <= d && e >= bestDyn {
			best, bestDyn = inst.Entry, e
		}
		if e := inst.EndDyn + 1; e <= d && e >= bestDyn {
			best, bestDyn = inst.Exit, e
		}
	}
	return best, bestDyn
}

// StaticIDOfDyn returns the stable static identity of dynamic instruction d.
func (t *Trace) StaticIDOfDyn(d uint64) prog.StaticID {
	return t.Prog.Linked.StaticIDOf(int(t.PCs[d]))
}

// DynCounts returns, for every static instruction that executes in the ROI,
// the number of its dynamic instances. This is the protection cost model
// c(pc) of §5.3.
func (t *Trace) DynCounts() map[prog.StaticID]int {
	counts := make(map[prog.StaticID]int)
	for d := t.ROIBeg + 1; d < t.ROIEnd; d++ {
		counts[t.StaticIDOfDyn(d)]++
	}
	return counts
}

// Coverage reports how many of the program's static instructions of
// interest (those with at least one register operand) execute within the
// region of interest. The paper's inputs are minimized by Minotaur under
// the constraint that program counter coverage is preserved (§5.4); this
// lets a user check that condition for their own inputs.
func (t *Trace) Coverage() (executed, total int) {
	seen := make(map[int32]bool)
	for d := t.ROIBeg + 1; d < t.ROIEnd; d++ {
		seen[t.PCs[d]] = true
	}
	for pc, in := range t.Prog.Linked.Code {
		if len(in.Operands(nil)) == 0 {
			continue
		}
		total++
		if seen[int32(pc)] {
			executed++
		}
	}
	return executed, total
}

// CodeKey identifies the code executed by a section instance across program
// versions: the XOR-fold of the hashes of every function executed inside
// it. If any of those function bodies changes, the key changes.
func (t *Trace) CodeKey(inst *Instance) [32]byte {
	var key [32]byte
	for fi := range inst.Funcs {
		h := t.Prog.Linked.FuncHashes[fi]
		for i := range key {
			key[i] ^= h[i]
		}
	}
	return key
}
