// Package trace records the error-free execution of a program: the dynamic
// instruction stream, the region of interest, and every section instance
// with entry/exit checkpoints, plus an optional dense checkpoint stream
// inside the ROI (every K dynamic instructions, memory-bounded). All
// checkpoints live in one sorted index, so finding the replay seed for an
// injection site is a binary search. The trace is the substrate both
// injection analyses replay against.
package trace

import (
	"encoding/binary"
	"fmt"
	"sort"

	"fastflip/internal/mix"
	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// safetyCap aborts clean runs that appear to loop forever; it is far above
// any benchmark's nominal length.
const safetyCap = 200_000_000

// Dense checkpointing defaults (see Options).
const (
	// DefaultCheckpointInterval is the dense-checkpoint spacing in dynamic
	// instructions when Options.CheckpointInterval is 0.
	DefaultCheckpointInterval = 1024
	// DefaultMaxCheckpoints bounds the dense checkpoints held in memory
	// when Options.MaxCheckpoints is 0.
	DefaultMaxCheckpoints = 256
)

// Options configure trace recording.
type Options struct {
	// CheckpointInterval is the dense-checkpoint spacing inside the region
	// of interest, in dynamic instructions: 0 uses
	// DefaultCheckpointInterval, negative disables dense checkpointing
	// (the section entry/exit checkpoints remain). Denser checkpoints cut
	// replay distance at the price of one memory image per checkpoint.
	CheckpointInterval int64
	// MaxCheckpoints bounds how many dense checkpoints are held
	// (0 = DefaultMaxCheckpoints). When the cap is hit, every other
	// checkpoint is dropped and the interval doubles, so memory stays
	// bounded however long the trace runs.
	MaxCheckpoints int
}

// Instance is one dynamic execution of a static section.
type Instance struct {
	Sec   int // static section ID
	Occur int // occurrence index among instances of the same section
	IO    spec.InstanceIO

	BegDyn uint64 // dynamic index of the SECBEG instruction
	EndDyn uint64 // dynamic index of the SECEND instruction

	// Entry is the machine state just after SECBEG executed (Dyn == BegDyn+1);
	// Exit is the state just after SECEND executed (Dyn == EndDyn+1).
	Entry *vm.Machine
	Exit  *vm.Machine

	// Funcs is the set of function indices whose instructions executed
	// inside the instance; it determines the instance's code identity for
	// incremental reuse.
	Funcs map[int]bool
}

// Len returns the number of dynamic instructions strictly inside the
// instance (markers excluded).
func (i *Instance) Len() uint64 { return i.EndDyn - i.BegDyn - 1 }

// Contains reports whether dynamic index d is strictly inside the instance.
func (i *Instance) Contains(d uint64) bool { return d > i.BegDyn && d < i.EndDyn }

// Trace is a recorded clean execution.
type Trace struct {
	Prog *spec.Program

	// PCs[d] is the static PC of dynamic instruction d.
	PCs []int32

	ROIBeg, ROIEnd uint64 // dynamic indices of the ROIBEG/ROIEND markers

	Instances []*Instance

	Start *vm.Machine // initialized state before the first instruction
	Final *vm.Machine // halted state

	TotalDyn uint64

	// cps is the full checkpoint index — program start, section
	// entry/exit states, and dense ROI snapshots — sorted by dynamic
	// index, for O(log n) replay seeding.
	cps []checkpoint
	// anchorDyns are the dynamic indices of the section checkpoints only
	// (start, entries, exits), sorted. They anchor the paper's per-
	// experiment cost model, which dense engine checkpoints must not
	// move (see NearestCheckpointDyn).
	anchorDyns []uint64
}

// checkpoint is one recorded clean state: the machine just after dynamic
// instruction dyn-1 executed (machine.Dyn == dyn).
type checkpoint struct {
	dyn uint64
	m   *vm.Machine
}

// Record executes p cleanly and captures the trace with default Options.
func Record(p *spec.Program) (*Trace, error) {
	return RecordWith(p, Options{})
}

// RecordWith executes p cleanly and captures the trace. The clean run must
// halt normally; a crash, timeout, or malformed marker nesting is an error
// in the benchmark itself.
func RecordWith(p *spec.Program, opts Options) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	interval := opts.CheckpointInterval
	if interval == 0 {
		interval = DefaultCheckpointInterval
	}
	maxDense := opts.MaxCheckpoints
	if maxDense <= 0 {
		maxDense = DefaultMaxCheckpoints
	}
	m := p.NewMachine()
	m.MaxDyn = safetyCap

	t := &Trace{Prog: p, Start: m.Clone()}
	var dense []checkpoint
	occur := make([]int, len(p.Sections))
	var open *Instance
	roiOpen, roiSeen := false, false

	for m.Status == vm.Running {
		pc := m.PC
		dyn := m.Dyn
		ev := m.Step()
		if m.Status == vm.Crashed {
			return nil, fmt.Errorf("trace %s: clean run crashed at pc %d: %v", p.Name, pc, m.Crash)
		}
		if m.Status == vm.TimedOut {
			return nil, fmt.Errorf("trace %s: clean run exceeded %d instructions", p.Name, uint64(safetyCap))
		}
		t.PCs = append(t.PCs, int32(pc))

		switch ev.Kind {
		case vm.EvROIBeg:
			if roiOpen || roiSeen {
				return nil, fmt.Errorf("trace %s: multiple or nested ROIBEG", p.Name)
			}
			roiOpen, roiSeen = true, true
			t.ROIBeg = dyn
		case vm.EvROIEnd:
			if !roiOpen {
				return nil, fmt.Errorf("trace %s: ROIEND without ROIBEG", p.Name)
			}
			roiOpen = false
			t.ROIEnd = dyn
		case vm.EvSecBeg:
			if open != nil {
				return nil, fmt.Errorf("trace %s: nested SECBEG %d inside section %d", p.Name, ev.Sec, open.Sec)
			}
			if ev.Sec < 0 || ev.Sec >= len(p.Sections) {
				return nil, fmt.Errorf("trace %s: SECBEG with undeclared section ID %d", p.Name, ev.Sec)
			}
			sec := &p.Sections[ev.Sec]
			occ := occur[ev.Sec]
			if occ >= len(sec.Instances) {
				return nil, fmt.Errorf("trace %s: section %q executed %d times but declares %d instances",
					p.Name, sec.Name, occ+1, len(sec.Instances))
			}
			open = &Instance{
				Sec:    ev.Sec,
				Occur:  occ,
				IO:     sec.Instances[occ],
				BegDyn: dyn,
				Entry:  m.Clone(),
				Funcs:  make(map[int]bool),
			}
			occur[ev.Sec]++
		case vm.EvSecEnd:
			if open == nil || open.Sec != ev.Sec {
				return nil, fmt.Errorf("trace %s: SECEND %d does not match open section", p.Name, ev.Sec)
			}
			open.EndDyn = dyn
			open.Exit = m.Clone()
			t.Instances = append(t.Instances, open)
			open = nil
		default:
			if open != nil {
				fi, _ := p.Linked.FuncOf(pc)
				open.Funcs[fi] = true
			}
		}

		// Dense checkpointing: snapshot the clean state every interval
		// dynamic instructions inside the ROI. When the cap is hit, thin
		// to every other snapshot and double the interval.
		if roiOpen && interval > 0 && m.Dyn%uint64(interval) == 0 {
			dense = append(dense, checkpoint{dyn: m.Dyn, m: m.Clone()})
			if len(dense) > maxDense {
				interval *= 2
				kept := dense[:0]
				for _, cp := range dense {
					if cp.dyn%uint64(interval) == 0 {
						kept = append(kept, cp)
					}
				}
				dense = kept
			}
		}
	}
	if open != nil {
		return nil, fmt.Errorf("trace %s: section %d never closed", p.Name, open.Sec)
	}
	if roiOpen || !roiSeen {
		return nil, fmt.Errorf("trace %s: missing or unclosed region of interest", p.Name)
	}

	t.Final = m
	t.TotalDyn = m.Dyn

	for _, inst := range t.Instances {
		if inst.BegDyn < t.ROIBeg || inst.EndDyn > t.ROIEnd {
			return nil, fmt.Errorf("trace %s: section %d instance %d extends outside the region of interest",
				p.Name, inst.Sec, inst.Occur)
		}
	}
	t.buildIndex(dense)
	return t, nil
}

// buildIndex assembles the sorted checkpoint index and the cost-model
// anchor list from the section checkpoints plus the dense snapshots.
func (t *Trace) buildIndex(dense []checkpoint) {
	t.cps = make([]checkpoint, 0, 1+2*len(t.Instances)+len(dense))
	t.cps = append(t.cps, checkpoint{dyn: 0, m: t.Start})
	for _, inst := range t.Instances {
		t.cps = append(t.cps,
			checkpoint{dyn: inst.BegDyn + 1, m: inst.Entry},
			checkpoint{dyn: inst.EndDyn + 1, m: inst.Exit})
	}
	t.anchorDyns = make([]uint64, len(t.cps))
	for i, cp := range t.cps {
		t.anchorDyns[i] = cp.dyn
	}
	t.cps = append(t.cps, dense...)
	sort.Slice(t.cps, func(i, j int) bool { return t.cps[i].dyn < t.cps[j].dyn })
}

// InstanceAt returns the section instance containing dynamic index d, or
// nil if d falls outside every section (an untested site in §4.9 terms).
// Instances are disjoint and sorted by BegDyn (sections cannot nest), so
// this is a binary search.
func (t *Trace) InstanceAt(d uint64) *Instance {
	i := sort.Search(len(t.Instances), func(i int) bool { return t.Instances[i].BegDyn >= d }) - 1
	if i >= 0 && t.Instances[i].Contains(d) {
		return t.Instances[i]
	}
	return nil
}

// NearestCheckpoint returns the latest recorded machine state at or before
// dynamic index d, to seed a replay: the program start, a section
// entry/exit checkpoint, or a dense ROI snapshot.
func (t *Trace) NearestCheckpoint(d uint64) *vm.Machine {
	m, _ := t.ReplaySeed(d)
	return m
}

// ReplaySeed returns NearestCheckpoint(d) together with its dynamic index,
// so replay engines can account the clean instructions they actually
// simulate.
func (t *Trace) ReplaySeed(d uint64) (*vm.Machine, uint64) {
	i := sort.Search(len(t.cps), func(i int) bool { return t.cps[i].dyn > d }) - 1
	cp := t.cps[i]
	return cp.m, cp.dyn
}

// NearestCheckpointDyn returns the dynamic index of the nearest *section*
// checkpoint (program start or section entry/exit) at or before d. This is
// the per-experiment cost anchor of the paper's checkpoint model: dense
// engine checkpoints deliberately do not move it, so accounted analysis
// costs stay comparable across replay-engine versions.
func (t *Trace) NearestCheckpointDyn(d uint64) uint64 {
	i := sort.Search(len(t.anchorDyns), func(i int) bool { return t.anchorDyns[i] > d }) - 1
	return t.anchorDyns[i]
}

// StaticIDOfDyn returns the stable static identity of dynamic instruction d.
func (t *Trace) StaticIDOfDyn(d uint64) prog.StaticID {
	return t.Prog.Linked.StaticIDOf(int(t.PCs[d]))
}

// DynCounts returns, for every static instruction that executes in the ROI,
// the number of its dynamic instances. This is the protection cost model
// c(pc) of §5.3.
func (t *Trace) DynCounts() map[prog.StaticID]int {
	counts := make(map[prog.StaticID]int)
	for d := t.ROIBeg + 1; d < t.ROIEnd; d++ {
		counts[t.StaticIDOfDyn(d)]++
	}
	return counts
}

// Coverage reports how many of the program's static instructions of
// interest (those with at least one register operand) execute within the
// region of interest. The paper's inputs are minimized by Minotaur under
// the constraint that program counter coverage is preserved (§5.4); this
// lets a user check that condition for their own inputs.
func (t *Trace) Coverage() (executed, total int) {
	seen := make(map[int32]bool)
	for d := t.ROIBeg + 1; d < t.ROIEnd; d++ {
		seen[t.PCs[d]] = true
	}
	for pc, in := range t.Prog.Linked.Code {
		if len(in.Operands(nil)) == 0 {
			continue
		}
		total++
		if seen[int32(pc)] {
			executed++
		}
	}
	return executed, total
}

// Fingerprint summarizes the recorded clean execution in one 64-bit hash:
// the full program code identity plus the shape of the section schedule
// (ROI bounds, total length, and every instance's identity and extent).
// Two traces with the same fingerprint ran the same code over the same
// section schedule, which is the precondition for resuming a write-ahead
// campaign log recorded against one of them.
func (t *Trace) Fingerprint() uint64 {
	acc := mix.Splitmix64(0xFA57F11F)
	for _, h := range t.Prog.Linked.FuncHashes {
		for i := 0; i+8 <= len(h); i += 8 {
			acc = mix.Fold(acc, binary.LittleEndian.Uint64(h[i:]))
		}
	}
	acc = mix.Fold(acc, t.ROIBeg)
	acc = mix.Fold(acc, t.ROIEnd)
	acc = mix.Fold(acc, t.TotalDyn)
	acc = mix.Fold(acc, uint64(len(t.Instances)))
	for _, inst := range t.Instances {
		acc = mix.Fold(acc, uint64(inst.Sec))
		acc = mix.Fold(acc, uint64(inst.Occur))
		acc = mix.Fold(acc, inst.BegDyn)
		acc = mix.Fold(acc, inst.EndDyn)
	}
	return acc
}

// CodeKey identifies the code executed by a section instance across program
// versions: the XOR-fold of the hashes of every function executed inside
// it. If any of those function bodies changes, the key changes.
func (t *Trace) CodeKey(inst *Instance) [32]byte {
	var key [32]byte
	for fi := range inst.Funcs {
		h := t.Prog.Linked.FuncHashes[fi]
		for i := range key {
			key[i] ^= h[i]
		}
	}
	return key
}
