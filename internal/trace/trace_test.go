package trace

import (
	"math"
	"testing"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
)

func record(t *testing.T) *Trace {
	t.Helper()
	tr, err := Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRecordBasics(t *testing.T) {
	tr := record(t)
	if got := math.Float64frombits(tr.Final.Mem[testprog.AddrZ]); got != testprog.WantZ() {
		t.Errorf("z = %v, want %v", got, testprog.WantZ())
	}
	if len(tr.Instances) != 2 {
		t.Fatalf("instances = %d", len(tr.Instances))
	}
	if uint64(len(tr.PCs)) != tr.TotalDyn {
		t.Errorf("PCs length %d != TotalDyn %d", len(tr.PCs), tr.TotalDyn)
	}
	if tr.ROIBeg != 0 || tr.ROIEnd != tr.TotalDyn-2 {
		t.Errorf("ROI = [%d, %d] of %d", tr.ROIBeg, tr.ROIEnd, tr.TotalDyn)
	}
}

func TestInstanceGeometry(t *testing.T) {
	tr := record(t)
	s0, s1 := tr.Instances[0], tr.Instances[1]
	if s0.Sec != 0 || s1.Sec != 1 || s0.Occur != 0 || s1.Occur != 0 {
		t.Fatalf("instance identities: %+v %+v", s0, s1)
	}
	if s0.EndDyn <= s0.BegDyn || s1.BegDyn <= s0.EndDyn {
		t.Errorf("instances out of order: s0 [%d,%d] s1 [%d,%d]", s0.BegDyn, s0.EndDyn, s1.BegDyn, s1.EndDyn)
	}
	// The entry checkpoint is positioned right after SECBEG.
	if s0.Entry.Dyn != s0.BegDyn+1 {
		t.Errorf("entry checkpoint at dyn %d, want %d", s0.Entry.Dyn, s0.BegDyn+1)
	}
	if s0.Exit.Dyn != s0.EndDyn+1 {
		t.Errorf("exit checkpoint at dyn %d, want %d", s0.Exit.Dyn, s0.EndDyn+1)
	}
	// Exit state of scale holds y.
	if got := math.Float64frombits(s0.Exit.Mem[testprog.AddrY]); got != testprog.WantY() {
		t.Errorf("y at s0 exit = %v, want %v", got, testprog.WantY())
	}
	// Contains matches the open interval.
	if s0.Contains(s0.BegDyn) || s0.Contains(s0.EndDyn) {
		t.Error("Contains includes the markers")
	}
	if !s0.Contains(s0.BegDyn + 1) {
		t.Error("Contains excludes the first interior instruction")
	}
}

func TestInstanceFuncs(t *testing.T) {
	tr := record(t)
	name := func(inst *Instance) map[string]bool {
		names := map[string]bool{}
		for fi := range inst.Funcs {
			names[tr.Prog.Linked.FuncNames[fi]] = true
		}
		return names
	}
	if n := name(tr.Instances[0]); !n["scale"] || n["square"] {
		t.Errorf("s0 funcs = %v", n)
	}
	if n := name(tr.Instances[1]); !n["square"] || n["scale"] {
		t.Errorf("s1 funcs = %v", n)
	}
	// Both contain main (the CALL instruction lives there).
	if n := name(tr.Instances[0]); !n["main"] {
		t.Errorf("s0 misses main: %v", n)
	}
}

func TestInstanceAtAndUntested(t *testing.T) {
	tr := record(t)
	inside := tr.Instances[0].BegDyn + 1
	if got := tr.InstanceAt(inside); got != tr.Instances[0] {
		t.Errorf("InstanceAt(%d) = %v", inside, got)
	}
	if got := tr.InstanceAt(tr.Instances[0].EndDyn); got != nil {
		t.Error("InstanceAt on a marker returned an instance")
	}
}

func TestNearestCheckpoint(t *testing.T) {
	tr := record(t)
	s1 := tr.Instances[1]
	m := tr.NearestCheckpoint(s1.BegDyn + 2)
	if m != s1.Entry {
		t.Errorf("nearest checkpoint for inside s1 = dyn %d, want entry %d", m.Dyn, s1.Entry.Dyn)
	}
	if got := tr.NearestCheckpointDyn(s1.BegDyn + 2); got != s1.BegDyn+1 {
		t.Errorf("NearestCheckpointDyn = %d", got)
	}
	if m := tr.NearestCheckpoint(0); m != tr.Start {
		t.Error("checkpoint before any section should be Start")
	}
}

func TestInstanceAtBoundaries(t *testing.T) {
	tr := record(t)
	// Marker indices and instance edges.
	for _, inst := range tr.Instances {
		if got := tr.InstanceAt(inst.BegDyn); got != nil {
			t.Errorf("InstanceAt(BegDyn %d) = section %d, want nil", inst.BegDyn, got.Sec)
		}
		if got := tr.InstanceAt(inst.EndDyn); got != nil {
			t.Errorf("InstanceAt(EndDyn %d) = section %d, want nil", inst.EndDyn, got.Sec)
		}
		if got := tr.InstanceAt(inst.BegDyn + 1); got != inst {
			t.Errorf("InstanceAt(%d) missed its instance", inst.BegDyn+1)
		}
		if got := tr.InstanceAt(inst.EndDyn - 1); got != inst {
			t.Errorf("InstanceAt(%d) missed its instance", inst.EndDyn-1)
		}
	}
	// The gap between the two instances belongs to no section.
	s0, s1 := tr.Instances[0], tr.Instances[1]
	for d := s0.EndDyn; d <= s1.BegDyn; d++ {
		if got := tr.InstanceAt(d); got != nil {
			t.Errorf("InstanceAt(%d) in the gap = section %d", d, got.Sec)
		}
	}
	// Exhaustive agreement with the linear scan it replaced.
	linear := func(d uint64) *Instance {
		for _, inst := range tr.Instances {
			if inst.Contains(d) {
				return inst
			}
		}
		return nil
	}
	for d := uint64(0); d <= tr.TotalDyn; d++ {
		if got, want := tr.InstanceAt(d), linear(d); got != want {
			t.Fatalf("InstanceAt(%d) = %v, linear scan = %v", d, got, want)
		}
	}
}

func TestDenseCheckpointsSeedReplay(t *testing.T) {
	tr, err := RecordWith(testprog.Pipeline(), Options{CheckpointInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.cps) <= 1+2*len(tr.Instances) {
		t.Fatal("no dense checkpoints recorded at interval 2")
	}
	for d := tr.ROIBeg; d < tr.ROIEnd; d++ {
		seed, dyn := tr.ReplaySeed(d)
		if dyn > d || seed.Dyn != dyn {
			t.Fatalf("ReplaySeed(%d) = dyn %d (machine at %d)", d, dyn, seed.Dyn)
		}
		// Replaying the seed forward must reproduce the clean state.
		got := seed.Clone()
		got.RunUntilDyn(d)
		want := tr.Start.Clone()
		want.RunUntilDyn(d)
		if got.PC != want.PC || got.R != want.R || got.F != want.F {
			t.Fatalf("replay from seed diverged at dyn %d", d)
		}
		for i := range want.Mem {
			if got.Mem[i] != want.Mem[i] {
				t.Fatalf("replay from seed: mem[%d] differs at dyn %d", i, d)
			}
		}
	}
}

func TestDenseCheckpointCompaction(t *testing.T) {
	tr, err := RecordWith(testprog.Pipeline(), Options{CheckpointInterval: 1, MaxCheckpoints: 4})
	if err != nil {
		t.Fatal(err)
	}
	denseCount := len(tr.cps) - 1 - 2*len(tr.Instances)
	if denseCount > 4 {
		t.Errorf("compaction kept %d dense checkpoints, cap 4", denseCount)
	}
	if denseCount == 0 {
		t.Error("compaction dropped every dense checkpoint")
	}
}

func TestCostAnchorIgnoresDenseCheckpoints(t *testing.T) {
	sparse, err := RecordWith(testprog.Pipeline(), Options{CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := RecordWith(testprog.Pipeline(), Options{CheckpointInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	for d := uint64(0); d < sparse.TotalDyn; d++ {
		if s, g := sparse.NearestCheckpointDyn(d), dense.NearestCheckpointDyn(d); s != g {
			t.Fatalf("cost anchor moved with checkpoint density at dyn %d: %d vs %d", d, s, g)
		}
	}
	// But the replay seed does get closer.
	mid := (sparse.Instances[1].BegDyn + sparse.Instances[1].EndDyn) / 2
	if _, dyn := dense.ReplaySeed(mid); dyn != mid {
		t.Errorf("interval-1 replay seed for dyn %d is %d", mid, dyn)
	}
}

func TestDynCounts(t *testing.T) {
	tr := record(t)
	counts := tr.DynCounts()
	total := 0
	for id, n := range counts {
		if n <= 0 {
			t.Errorf("count %d for %v", n, id)
		}
		total += n
	}
	// Each instruction of interest in the ROI executes exactly once here.
	if total == 0 || uint64(total) >= tr.TotalDyn {
		t.Errorf("total counted = %d of %d", total, tr.TotalDyn)
	}
}

func TestCodeKeyChangesWithBody(t *testing.T) {
	tr1 := record(t)
	tr2, err := Record(testprog.PipelineModified())
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CodeKey(tr1.Instances[0]) != tr2.CodeKey(tr2.Instances[0]) {
		t.Error("scale section's code key changed although scale did not")
	}
	if tr1.CodeKey(tr1.Instances[1]) == tr2.CodeKey(tr2.Instances[1]) {
		t.Error("square section's code key did not change")
	}
}

func TestRecordRejectsBadMarkers(t *testing.T) {
	build := func(emit func(f *prog.B)) *spec.Program {
		p := prog.New()
		f := prog.NewFunc("main")
		emit(f)
		f.Halt()
		p.MustAdd(f.MustBuild())
		linked, err := p.Link("main")
		if err != nil {
			t.Fatal(err)
		}
		io := spec.InstanceIO{}
		return &spec.Program{
			Name: "bad", Linked: linked, MemWords: 4,
			Sections:     []spec.Section{{ID: 0, Name: "s", Instances: []spec.InstanceIO{io}}},
			FinalOutputs: []spec.Buffer{{Name: "o", Addr: 0, Len: 1}},
		}
	}
	cases := map[string]func(f *prog.B){
		"missing ROI": func(f *prog.B) {
			f.SecBeg(0)
			f.SecEnd(0)
		},
		"nested sections": func(f *prog.B) {
			f.RoiBeg()
			f.SecBeg(0)
			f.SecBeg(0)
			f.SecEnd(0)
			f.SecEnd(0)
			f.RoiEnd()
		},
		"unclosed section": func(f *prog.B) {
			f.RoiBeg()
			f.SecBeg(0)
			f.RoiEnd()
		},
		"mismatched end": func(f *prog.B) {
			f.RoiBeg()
			f.SecBeg(0)
			f.SecEnd(1)
			f.RoiEnd()
		},
		"undeclared section id": func(f *prog.B) {
			f.RoiBeg()
			f.SecBeg(7)
			f.SecEnd(7)
			f.RoiEnd()
		},
		"too many instances": func(f *prog.B) {
			f.RoiBeg()
			f.SecBeg(0)
			f.SecEnd(0)
			f.SecBeg(0)
			f.SecEnd(0)
			f.RoiEnd()
		},
	}
	for name, emit := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Record(build(emit)); err == nil {
				t.Error("Record accepted a malformed program")
			}
		})
	}
}

func TestRecordRejectsCrashingProgram(t *testing.T) {
	p := prog.New()
	f := prog.NewFunc("main")
	f.RoiBeg()
	f.Li(1, 1000)
	f.Ld(2, 1, 0) // out of bounds for MemWords = 4
	f.RoiEnd()
	f.Halt()
	p.MustAdd(f.MustBuild())
	linked, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Program{
		Name: "crash", Linked: linked, MemWords: 4,
		Sections:     []spec.Section{{ID: 0, Name: "s", Instances: []spec.InstanceIO{{}}}},
		FinalOutputs: []spec.Buffer{{Name: "o", Addr: 0, Len: 1}},
	}
	if _, err := Record(sp); err == nil {
		t.Error("Record accepted a crashing clean run")
	}
}
