package isa

import "testing"

func TestInfoCoversAllOpcodes(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if !Valid(op) {
			t.Errorf("opcode %d has no metadata", op)
			continue
		}
		info := Info(op)
		if info.Name == "" {
			t.Errorf("opcode %d has empty name", op)
		}
	}
}

func TestOpNamesUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		name := Info(op).Name
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q used by both %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("no-such-op"); ok {
		t.Error("OpByName accepted an unknown mnemonic")
	}
}

func TestValidRejectsOutOfRange(t *testing.T) {
	if Valid(Op(255)) {
		t.Error("Valid(255) = true")
	}
	defer func() {
		if recover() == nil {
			t.Error("Info on invalid opcode did not panic")
		}
	}()
	Info(Op(255))
}

func TestOperandsByShape(t *testing.T) {
	tests := []struct {
		name  string
		in    Instr
		roles []OperandRole
	}{
		{"three-operand ALU", Instr{Op: ADD, Rd: 1, Ra: 2, Rb: 3},
			[]OperandRole{OperandSrcA, OperandSrcB, OperandDst}},
		{"immediate ALU", Instr{Op: ADDI, Rd: 1, Ra: 2},
			[]OperandRole{OperandSrcA, OperandDst}},
		{"load immediate", Instr{Op: LI, Rd: 1},
			[]OperandRole{OperandDst}},
		{"store has two sources, no destination", Instr{Op: ST, Ra: 1, Rb: 2},
			[]OperandRole{OperandSrcA, OperandSrcB}},
		{"branch has two sources", Instr{Op: BLT, Ra: 1, Rb: 2},
			[]OperandRole{OperandSrcA, OperandSrcB}},
		{"jump has none", Instr{Op: JMP}, nil},
		{"call has none", Instr{Op: CALL}, nil},
		{"markers have none", Instr{Op: SECBEG}, nil},
		{"halt has none", Instr{Op: HALT}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ops := tt.in.Operands(nil)
			if len(ops) != len(tt.roles) {
				t.Fatalf("got %d operands, want %d", len(ops), len(tt.roles))
			}
			for i, role := range tt.roles {
				if ops[i].Role != role {
					t.Errorf("operand %d role = %v, want %v", i, ops[i].Role, role)
				}
			}
		})
	}
}

func TestOperandClasses(t *testing.T) {
	fadd := Instr{Op: FADD, Rd: 1, Ra: 2, Rb: 3}
	for _, op := range fadd.Operands(nil) {
		if op.Class != RegFloat {
			t.Errorf("fadd operand %v class = %v, want float", op.Role, op.Class)
		}
	}
	// Conversions span both files.
	itof := Instr{Op: ITOF, Rd: 1, Ra: 2}.Operands(nil)
	if itof[0].Class != RegInt || itof[1].Class != RegFloat {
		t.Errorf("itof operand classes = %v, %v", itof[0].Class, itof[1].Class)
	}
	// A float store's value is float, its base address integer.
	fst := Instr{Op: FST, Ra: 1, Rb: 2}.Operands(nil)
	if fst[0].Class != RegFloat || fst[1].Class != RegInt {
		t.Errorf("fst operand classes = %v, %v", fst[0].Class, fst[1].Class)
	}
}

func TestOperandsAppends(t *testing.T) {
	buf := make([]Operand, 0, 8)
	buf = Instr{Op: ADD}.Operands(buf)
	n := len(buf)
	buf = Instr{Op: MUL}.Operands(buf)
	if len(buf) != 2*n {
		t.Errorf("Operands did not append: %d then %d", n, len(buf))
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADD, Rd: 1, Ra: 2, Rb: 3}, "add r1, r2, r3"},
		{Instr{Op: FADD, Rd: 0, Ra: 7, Rb: 15}, "fadd f0, f7, f15"},
		{Instr{Op: LD, Rd: 4, Ra: 2, Imm: 16}, "ld r4, r2, 16"},
		{Instr{Op: ST, Ra: 3, Rb: 1, Imm: -2}, "st r3, r1, -2"},
		{Instr{Op: LI, Rd: 9, Imm: 42}, "li r9, 42"},
		{Instr{Op: BEQ, Ra: 1, Rb: 2, Imm: 7}, "beq r1, r2, 7"},
		{Instr{Op: RET}, "ret"},
		{Instr{Op: SECBEG, Imm: 3}, "secbeg 3"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.in.Op, got, tt.want)
		}
	}
}

func TestFloatImm(t *testing.T) {
	in := Instr{Op: FLI, Rd: 1, Imm: 4614256656552045848} // bits of 3.141592653589793
	if got := in.FloatImm(); got != 3.141592653589793 {
		t.Errorf("FloatImm = %v", got)
	}
	if got := in.String(); got != "fli f1, 3.141592653589793" {
		t.Errorf("String = %q", got)
	}
}
