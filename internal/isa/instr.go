package isa

import (
	"fmt"
	"math"
	"strings"
)

// Instr is one instruction. The interpretation of the register fields and
// the immediate is given by Info(Op). Instructions are plain values; a
// program is a []Instr.
type Instr struct {
	Op  Op
	Rd  uint8 // destination register (see Info(Op).Dst)
	Ra  uint8 // first source register
	Rb  uint8 // second source register
	Imm int64 // immediate; float64 bits when Info(Op).Imm == ImmFloat
}

// FloatImm returns the immediate interpreted as a float64.
func (in Instr) FloatImm() float64 { return math.Float64frombits(uint64(in.Imm)) }

// OperandRole identifies one register operand of an instruction for error
// injection: the paper's model flips a bit in a source register just before
// the instruction reads it, or in the destination register just after the
// instruction writes it.
type OperandRole uint8

const (
	OperandDst OperandRole = iota
	OperandSrcA
	OperandSrcB
)

func (r OperandRole) String() string {
	switch r {
	case OperandDst:
		return "dst"
	case OperandSrcA:
		return "srcA"
	case OperandSrcB:
		return "srcB"
	}
	return fmt.Sprintf("operand(%d)", uint8(r))
}

// Operand describes one injectable register operand of an instruction.
type Operand struct {
	Role  OperandRole
	Class RegClass
	Reg   uint8
}

// Operands appends the injectable register operands of in to dst and
// returns the extended slice. Marker and control metadata instructions have
// none; a store has two source operands (value and base address) and no
// destination.
func (in Instr) Operands(dst []Operand) []Operand {
	info := Info(in.Op)
	if info.SrcA != RegNone {
		dst = append(dst, Operand{Role: OperandSrcA, Class: info.SrcA, Reg: in.Ra})
	}
	if info.SrcB != RegNone {
		dst = append(dst, Operand{Role: OperandSrcB, Class: info.SrcB, Reg: in.Rb})
	}
	if info.Dst != RegNone {
		dst = append(dst, Operand{Role: OperandDst, Class: info.Dst, Reg: in.Rd})
	}
	return dst
}

// String renders the instruction in assembler syntax, e.g.
// "fadd f1, f2, f3" or "ld r4, r2, 16". Branch targets print as raw
// immediates; the disassembler in internal/asm prints symbolic labels.
func (in Instr) String() string {
	info := Info(in.Op)
	var b strings.Builder
	b.WriteString(info.Name)
	sep := " "
	reg := func(class RegClass, n uint8) {
		b.WriteString(sep)
		sep = ", "
		if class == RegFloat {
			fmt.Fprintf(&b, "f%d", n)
		} else {
			fmt.Fprintf(&b, "r%d", n)
		}
	}
	if info.Dst != RegNone {
		reg(info.Dst, in.Rd)
	}
	if info.SrcA != RegNone {
		reg(info.SrcA, in.Ra)
	}
	if info.SrcB != RegNone {
		reg(info.SrcB, in.Rb)
	}
	switch info.Imm {
	case ImmNone:
	case ImmFloat:
		b.WriteString(sep)
		fmt.Fprintf(&b, "%g", in.FloatImm())
	default:
		b.WriteString(sep)
		fmt.Fprintf(&b, "%d", in.Imm)
	}
	return b.String()
}
