// Package isa defines the instruction set of the fastflip architectural
// simulator: a 64-bit, register-based ISA with sixteen integer and sixteen
// floating-point architectural registers and word-addressed memory.
//
// The ISA plays the role that x86-64 plays for gem5-Approxilyzer in the
// FastFlip paper: it is the level of abstraction at which single-event-upset
// bitflips are injected. Every instruction names at most one destination
// register and two source registers; the per-opcode metadata in Info reports
// which operands exist and in which register file they live, which is what
// the error-site enumerator uses to find injectable bits.
package isa

import "fmt"

// NumRegs is the number of registers in each register file (integer and
// float). Register operands are always in [0, NumRegs).
const NumRegs = 16

// Op is an opcode of the simulated ISA.
type Op uint8

// Opcodes. The set is deliberately RISC-like: three-operand ALU ops,
// immediate forms, explicit loads/stores, compare-and-branch, and direct
// calls. FEXP/FLN/FSQRT stand in for libm calls made by the original
// benchmarks (see DESIGN.md).
const (
	NOP Op = iota
	HALT

	// Integer ALU, register forms: Rd <- Ra op Rb.
	ADD
	SUB
	MUL
	DIV // signed; Rb == 0 crashes (division error)
	REM // signed; Rb == 0 crashes (division error)
	AND
	OR
	XOR
	SHL // shift amount masked to 6 bits
	SHR // logical
	SRA // arithmetic
	SLT // Rd <- (int64(Ra) < int64(Rb)) ? 1 : 0
	SLTU

	// Integer ALU, immediate forms: Rd <- Ra op Imm.
	ADDI
	MULI
	ANDI
	ORI
	XORI
	SHLI
	SHRI
	SRAI

	// Register moves and unary ops.
	MOV // Rd <- Ra
	NOT // Rd <- ^Ra
	NEG // Rd <- -Ra
	LI  // Rd <- Imm

	// 32-bit arithmetic for hash/codec kernels. Results are masked to the
	// low 32 bits; sources are assumed to carry 32-bit values.
	ADD32  // Rd <- (Ra + Rb) & 0xffffffff
	ROTR32 // Rd <- rotate-right-32(Ra, Imm)
	NOT32  // Rd <- ^Ra & 0xffffffff

	// Floating point, register forms: Fd <- Fa op Fb.
	FADD
	FSUB
	FMUL
	FDIV
	FMIN
	FMAX

	// Floating point, unary: Fd <- op Fa.
	FSQRT
	FNEG
	FABS
	FEXP // e**Fa; stands in for a libm call
	FLN  // natural log; stands in for a libm call
	FMOV

	FLI // Fd <- float64frombits(Imm)

	// Conversions and raw bit moves between register files.
	ITOF  // Fd <- float64(int64(Ra))
	FTOI  // Rd <- int64(trunc(Fa)); NaN/overflow yields minInt64 like x86
	FBITS // Rd <- bits(Fa)
	BITSF // Fd <- frombits(Ra)

	// Memory. Addresses are word indices: addr = Ra (base) + Imm.
	LD  // Rd <- Mem[Ra+Imm]
	ST  // Mem[Rb+Imm] <- Ra (Ra is the value, Rb the base)
	FLD // Fd <- frombits(Mem[Ra+Imm])
	FST // Mem[Rb+Imm] <- bits(Fa)

	// Control flow. In an unlinked function, Imm is a function-local
	// instruction index for branches/jumps and a callee index for CALL;
	// the linker rewrites both to absolute PCs.
	JMP
	BEQ // branch if int64(Ra) == int64(Rb)
	BNE
	BLT // signed
	BLE
	BGT
	BGE
	FBEQ // branch if Fa == Fb (quiet on NaN: comparison is simply false)
	FBNE
	FBLT
	FBLE
	CALL
	RET

	// Analysis markers. These are metadata for the resiliency analysis and
	// carry no architectural state; they are never error sites.
	SECBEG // Imm = static section ID
	SECEND // Imm = static section ID
	ROIBEG // start of the region of interest
	ROIEND // end of the region of interest

	// Hardening support (internal/harden). TRAP is the detector's mismatch
	// sink: it halts the machine with a distinguishable crash kind so a
	// fired detector is classified as Detected rather than SDC. The
	// absolute-address memory ops move register bits to/from the reserved
	// scratch slots the hardener appends beyond the program's declared
	// memory, where no base register can be assumed intact.
	TRAP
	LDA  // Rd <- Mem[Imm]
	STA  // Mem[Imm] <- Ra
	FLDA // Fd <- frombits(Mem[Imm])
	FSTA // Mem[Imm] <- bits(Fa)

	numOps // sentinel; keep last
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// RegClass says which register file an operand lives in.
type RegClass uint8

const (
	RegNone RegClass = iota // operand absent
	RegInt
	RegFloat
)

// ImmKind says how an instruction's immediate is interpreted.
type ImmKind uint8

const (
	ImmNone   ImmKind = iota
	ImmInt            // plain integer immediate
	ImmFloat          // float64 bits
	ImmTarget         // branch/jump target (local index, then absolute PC)
	ImmCallee         // callee (function index, then absolute entry PC)
	ImmSec            // static section ID
	ImmOffset         // memory word offset
)

// OpInfo is static metadata about an opcode, used by the printer, the
// assembler, the interpreter's operand decoding, and — most importantly —
// the error-site enumerator, which derives injectable register operands
// from Dst/SrcA/SrcB.
type OpInfo struct {
	Name string
	Dst  RegClass // class of the Rd field, RegNone if unused
	SrcA RegClass // class of the Ra field
	SrcB RegClass // class of the Rb field
	Imm  ImmKind
}

var infos = [numOps]OpInfo{
	NOP:  {Name: "nop"},
	HALT: {Name: "halt"},

	ADD:  {Name: "add", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	SUB:  {Name: "sub", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	MUL:  {Name: "mul", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	DIV:  {Name: "div", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	REM:  {Name: "rem", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	AND:  {Name: "and", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	OR:   {Name: "or", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	XOR:  {Name: "xor", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	SHL:  {Name: "shl", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	SHR:  {Name: "shr", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	SRA:  {Name: "sra", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	SLT:  {Name: "slt", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	SLTU: {Name: "sltu", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},

	ADDI: {Name: "addi", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	MULI: {Name: "muli", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	ANDI: {Name: "andi", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	ORI:  {Name: "ori", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	XORI: {Name: "xori", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	SHLI: {Name: "shli", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	SHRI: {Name: "shri", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	SRAI: {Name: "srai", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},

	MOV: {Name: "mov", Dst: RegInt, SrcA: RegInt},
	NOT: {Name: "not", Dst: RegInt, SrcA: RegInt},
	NEG: {Name: "neg", Dst: RegInt, SrcA: RegInt},
	LI:  {Name: "li", Dst: RegInt, Imm: ImmInt},

	ADD32:  {Name: "add32", Dst: RegInt, SrcA: RegInt, SrcB: RegInt},
	ROTR32: {Name: "rotr32", Dst: RegInt, SrcA: RegInt, Imm: ImmInt},
	NOT32:  {Name: "not32", Dst: RegInt, SrcA: RegInt},

	FADD: {Name: "fadd", Dst: RegFloat, SrcA: RegFloat, SrcB: RegFloat},
	FSUB: {Name: "fsub", Dst: RegFloat, SrcA: RegFloat, SrcB: RegFloat},
	FMUL: {Name: "fmul", Dst: RegFloat, SrcA: RegFloat, SrcB: RegFloat},
	FDIV: {Name: "fdiv", Dst: RegFloat, SrcA: RegFloat, SrcB: RegFloat},
	FMIN: {Name: "fmin", Dst: RegFloat, SrcA: RegFloat, SrcB: RegFloat},
	FMAX: {Name: "fmax", Dst: RegFloat, SrcA: RegFloat, SrcB: RegFloat},

	FSQRT: {Name: "fsqrt", Dst: RegFloat, SrcA: RegFloat},
	FNEG:  {Name: "fneg", Dst: RegFloat, SrcA: RegFloat},
	FABS:  {Name: "fabs", Dst: RegFloat, SrcA: RegFloat},
	FEXP:  {Name: "fexp", Dst: RegFloat, SrcA: RegFloat},
	FLN:   {Name: "fln", Dst: RegFloat, SrcA: RegFloat},
	FMOV:  {Name: "fmov", Dst: RegFloat, SrcA: RegFloat},

	FLI: {Name: "fli", Dst: RegFloat, Imm: ImmFloat},

	ITOF:  {Name: "itof", Dst: RegFloat, SrcA: RegInt},
	FTOI:  {Name: "ftoi", Dst: RegInt, SrcA: RegFloat},
	FBITS: {Name: "fbits", Dst: RegInt, SrcA: RegFloat},
	BITSF: {Name: "bitsf", Dst: RegFloat, SrcA: RegInt},

	LD:  {Name: "ld", Dst: RegInt, SrcA: RegInt, Imm: ImmOffset},
	ST:  {Name: "st", SrcA: RegInt, SrcB: RegInt, Imm: ImmOffset},
	FLD: {Name: "fld", Dst: RegFloat, SrcA: RegInt, Imm: ImmOffset},
	FST: {Name: "fst", SrcA: RegFloat, SrcB: RegInt, Imm: ImmOffset},

	JMP:  {Name: "jmp", Imm: ImmTarget},
	BEQ:  {Name: "beq", SrcA: RegInt, SrcB: RegInt, Imm: ImmTarget},
	BNE:  {Name: "bne", SrcA: RegInt, SrcB: RegInt, Imm: ImmTarget},
	BLT:  {Name: "blt", SrcA: RegInt, SrcB: RegInt, Imm: ImmTarget},
	BLE:  {Name: "ble", SrcA: RegInt, SrcB: RegInt, Imm: ImmTarget},
	BGT:  {Name: "bgt", SrcA: RegInt, SrcB: RegInt, Imm: ImmTarget},
	BGE:  {Name: "bge", SrcA: RegInt, SrcB: RegInt, Imm: ImmTarget},
	FBEQ: {Name: "fbeq", SrcA: RegFloat, SrcB: RegFloat, Imm: ImmTarget},
	FBNE: {Name: "fbne", SrcA: RegFloat, SrcB: RegFloat, Imm: ImmTarget},
	FBLT: {Name: "fblt", SrcA: RegFloat, SrcB: RegFloat, Imm: ImmTarget},
	FBLE: {Name: "fble", SrcA: RegFloat, SrcB: RegFloat, Imm: ImmTarget},
	CALL: {Name: "call", Imm: ImmCallee},
	RET:  {Name: "ret"},

	SECBEG: {Name: "secbeg", Imm: ImmSec},
	SECEND: {Name: "secend", Imm: ImmSec},
	ROIBEG: {Name: "roibeg"},
	ROIEND: {Name: "roiend"},

	TRAP: {Name: "trap"},
	LDA:  {Name: "lda", Dst: RegInt, Imm: ImmOffset},
	STA:  {Name: "sta", SrcA: RegInt, Imm: ImmOffset},
	FLDA: {Name: "flda", Dst: RegFloat, Imm: ImmOffset},
	FSTA: {Name: "fsta", SrcA: RegFloat, Imm: ImmOffset},
}

// Info returns the static metadata for op. It panics on an undefined opcode,
// which indicates a corrupted instruction stream rather than a recoverable
// condition.
func Info(op Op) OpInfo {
	if int(op) >= NumOps || infos[op].Name == "" {
		panic(fmt.Sprintf("isa: undefined opcode %d", op))
	}
	return infos[op]
}

// Valid reports whether op is a defined opcode.
func Valid(op Op) bool {
	return int(op) < NumOps && infos[op].Name != ""
}

func (op Op) String() string {
	if !Valid(op) {
		return fmt.Sprintf("op(%d)", op)
	}
	return infos[op].Name
}

// OpByName returns the opcode with the given mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := byName[name]
	return op, ok
}

var byName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < numOps; op++ {
		if infos[op].Name != "" {
			m[infos[op].Name] = op
		}
	}
	return m
}()
