package core

import (
	"context"
	"fmt"

	"fastflip/internal/asm"
	"fastflip/internal/harden"
	"fastflip/internal/isa"
	"fastflip/internal/knap"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
)

// HardenEval closes the protection loop: it carries the knapsack selection
// that was applied as duplication-and-compare detectors, the hardened
// program, its full re-analysis, and the measured residual figures the
// paper's model only predicts.
type HardenEval struct {
	// Target is the protection value the selection was solved for.
	Target    float64
	Selection *knap.Selection

	// Protected/Skipped are the transform's effective and ineligible
	// subsets of the selection; Map relates static identities across the
	// transform (see harden.Result).
	Protected   []prog.StaticID
	Skipped     []prog.StaticID
	Map         harden.Map
	AddedInstrs int
	Spills      int

	// PredictedResidual is the mechanism-aware bound on the hardened
	// program's SDC-Bad site count, computed from the original campaign
	// alone: duplication-and-compare removes the destination-operand bad
	// sites of every protected instruction (a source flip is re-exposed
	// verbatim at the duplicate, so source sites cancel out), while
	// detector code outside any section and spill save/restore pairs add
	// conservatively-bad exposure back.
	PredictedResidual int
	// ResidualSDC is the measured SDC-Bad site count of the hardened
	// program's own injection campaign.
	ResidualSDC int
	// DetectorCoverage is the fraction of the original tested SDC-Bad
	// sites at protected instructions that no longer measure SDC-Bad in
	// the hardened campaign (1 when nothing bad was protected).
	DetectorCoverage float64
	// DetectorTriggers counts hardened-campaign sites whose injection was
	// caught by a detector trap (outcome Detected/DetectTrap).
	DetectorTriggers int
	// ProtectionOverhead is the hardened program's dynamic instruction
	// overhead relative to the original: (hardened − original)/original.
	ProtectionOverhead float64

	// Prog is the hardened program; Hardened its full analysis result.
	Prog     *spec.Program
	Hardened *Result
}

// Harden applies the protection loop to an analyzed program: solve the
// knapsack for target, apply the selection as duplication-and-compare
// detectors (internal/harden), re-run the full per-section injection
// campaign on the hardened program, and measure the residual SDC against
// the predicted bound. The hardened program's name carries a "+hardened"
// suffix, so its campaign state (store keys, WAL directories) never
// collides with the original's.
func (a *Analyzer) Harden(ctx context.Context, r *Result, eps, target float64) (*HardenEval, error) {
	ffBC := r.FFBadCounts(eps)
	solver := knap.New(r.Items(ffBC))
	sel, err := solver.MinCostFor(target)
	if err != nil {
		// Target beyond what the labeling can reach: protect everything.
		if sel, err = solver.MinCostFor(solver.MaxValue()); err != nil {
			return nil, fmt.Errorf("core: harden: %w", err)
		}
	}

	hp, hres, err := harden.Program(r.Prog, sel.Set(), harden.Options{})
	if err != nil {
		return nil, err
	}

	// Re-analyze the hardened program with the same campaign discipline
	// (pruning, elision, WAL/resume, distribution) but no baseline work:
	// the hardened run only needs its own labeling.
	sub := &Analyzer{Cfg: a.Cfg, Store: a.Store, Progress: a.Progress}
	sub.Cfg.Targets = nil
	sub.Cfg.AdjustTargets = false
	sub.Cfg.CoRunBaseline = false
	hr, err := sub.AnalyzeContext(ctx, hp)
	if err != nil {
		return nil, err
	}
	hardBC := hr.FFBadCounts(eps)

	h := &HardenEval{
		Target:      target,
		Selection:   sel,
		Protected:   hres.Protected,
		Skipped:     hres.Skipped,
		Map:         hres.Map,
		AddedInstrs: hres.AddedInstrs,
		Spills:      hres.Spills,
		ResidualSDC: hardBC.Total,
		Prog:        hp,
		Hardened:    hr,
	}

	eff := make(map[prog.StaticID]bool, len(hres.Protected))
	for _, id := range hres.Protected {
		eff[id] = true
	}

	// The predicted bound subtracts only the destination-operand bad sites
	// of the effective protected set: a compare after the original catches
	// every destination flip, while a source flip at the duplicate escapes
	// exactly as often as the original's (now-detected) source flip did.
	badDst := make(map[prog.StaticID]int)
	epsVec := r.epsVec(eps)
	for _, rec := range r.ffClasses {
		if rec.class.Key.Role != isa.OperandDst || rec.out.Kind != metrics.SDC {
			continue
		}
		if r.Spec.Bad(rec.inst, rec.out.Magnitudes, epsVec) {
			badDst[rec.class.Key.Static] += rec.class.Size()
		}
	}
	predicted := ffBC.Total
	for id := range eff {
		predicted -= badDst[id]
	}
	// Detector code emitted outside every section is never injected and
	// therefore conservatively SDC-Bad (§4.9 s⊥): add the growth back.
	if d := hr.UntestedSites - r.UntestedSites; d > 0 {
		predicted += d
	}
	// Spill save/restore pairs are the one detector component whose own
	// faults are not self-detecting: a flip on the saved value or on the
	// restore destination lands back in a live register. Bound each pair
	// by all of its sites going bad.
	if len(hres.SpillsAt) > 0 {
		per := sites.SitesPerOperand(a.Cfg.BurstWidth)
		dynCounts := make(map[prog.StaticID]int)
		for d := r.Trace.ROIBeg + 1; d < r.Trace.ROIEnd; d++ {
			dynCounts[r.Trace.StaticIDOfDyn(d)]++
		}
		for id, n := range hres.SpillsAt {
			predicted += 2 * per * n * dynCounts[id]
		}
	}
	h.PredictedResidual = predicted

	// Coverage over the protected set: tested bad sites at protected
	// instructions that the hardened campaign no longer measures as bad.
	protBad, residProt := 0, 0
	for id := range eff {
		protBad += ffBC.PerStatic[id] - r.untestedBad[id]
		hid := hres.Map.OrigToHard[id]
		residProt += hardBC.PerStatic[hid] - hr.untestedBad[hid]
	}
	h.DetectorCoverage = 1
	if protBad > 0 {
		h.DetectorCoverage = 1 - float64(residProt)/float64(protBad)
		if h.DetectorCoverage < 0 {
			h.DetectorCoverage = 0
		}
	}

	for _, rec := range hr.ffClasses {
		if rec.out.Kind == metrics.Detected && rec.out.Reason == metrics.DetectTrap {
			h.DetectorTriggers += rec.class.Size()
		}
	}

	if r.Trace.TotalDyn > 0 {
		h.ProtectionOverhead = (float64(hr.Trace.TotalDyn) - float64(r.Trace.TotalDyn)) / float64(r.Trace.TotalDyn)
	}
	return h, nil
}

// Asm disassembles the hardened program back to module source — the text
// clients retrieve through Summary.HardenedAsm and feed to fasm.
func (h *HardenEval) Asm() (string, error) {
	mod, err := asm.ModuleOf(h.Prog.Linked)
	if err != nil {
		return "", err
	}
	return asm.DisassembleProgram(mod), nil
}

// ApplyTo copies the measured protection-loop figures onto a summary.
func (h *HardenEval) ApplyTo(s *Summary) {
	s.ResidualSDC = h.ResidualSDC
	s.PredictedResidual = h.PredictedResidual
	s.DetectorCoverage = h.DetectorCoverage
	s.DetectorTriggers = h.DetectorTriggers
	s.ProtectionOverhead = h.ProtectionOverhead
	s.HardenedTarget = h.Target
}
