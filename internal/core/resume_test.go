package core

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"fastflip/internal/bench"
	"fastflip/internal/inject"
	"fastflip/internal/mix"
	"fastflip/internal/store"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
)

// neutralizeEngineWork zeroes the summary fields that legitimately differ
// between a resumed and an uninterrupted run: wall time, the engine-work
// split (partition-dependent), and the resume bookkeeping itself. All
// outcome counts and accounted costs must survive untouched.
func neutralizeEngineWork(s *Summary) {
	s.FFWall = 0
	s.FFCleanInstrs, s.FFFaultyInstrs = 0, 0
	// Batch telemetry describes how the engine executed, not what it
	// found: chaos-instrumented runs fall back to scalar forks and resumed
	// runs regroup only the remainder.
	s.BatchedExperiments, s.BatchReplicasAvg = 0, 0
	s.ResumedExperiments = 0
	s.WALNotes = nil
	if s.Baseline != nil {
		s.Baseline.Wall = 0
		s.Baseline.CleanInstrs, s.Baseline.FaultyInstrs = 0, 0
		s.Baseline.BatchedExperiments = 0
	}
}

// TestResumeAfterCrashedCampaign interrupts a WAL-backed analysis at a
// deterministic point (after the first section instance seals), discards
// all in-memory state as a crash would, resumes from the WAL with a fresh
// analyzer, and requires the merged summary to be byte-identical to an
// uninterrupted run (modulo wall time and engine-work split).
func TestResumeAfterCrashedCampaign(t *testing.T) {
	for _, coRun := range []bool{false, true} {
		t.Run(fmt.Sprintf("coRun=%v", coRun), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Workers = 1
			cfg.CoRunBaseline = coRun
			p := testprog.Pipeline()

			// Reference: uninterrupted, no WAL.
			ref := NewAnalyzer(cfg)
			rRef, err := ref.Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			sumRef := rRef.Summarize(cfg.Epsilon, nil)

			// Phase 1: crash after the first injected instance.
			dir := t.TempDir()
			cfg1 := cfg
			cfg1.WALDir = dir
			a1 := NewAnalyzer(cfg1)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			a1.Progress = func(pr Progress) {
				if pr.Injected >= 1 {
					cancel()
				}
			}
			if _, err := a1.AnalyzeContext(ctx, p); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted analysis returned %v, want context.Canceled", err)
			}

			// Phase 2: fresh analyzer (the crash lost the store), resume.
			cfg2 := cfg
			cfg2.WALDir = dir
			cfg2.Resume = true
			a2 := NewAnalyzer(cfg2)
			r2, err := a2.Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			if r2.ResumedExperiments() == 0 {
				t.Fatal("resume recovered nothing from the WAL")
			}
			newWork := r2.FFInject.Experiments - r2.FFRecovered.Experiments
			if want := rRef.FFInject.Experiments - r2.FFRecovered.Experiments; newWork != want {
				t.Errorf("resume re-executed %d experiments, want exactly the remainder %d", newWork, want)
			}
			sum2 := r2.Summarize(cfg.Epsilon, nil)
			if sum2.ResumedExperiments != r2.FFRecovered.Experiments {
				t.Errorf("summary resumed_experiments = %d, want %d", sum2.ResumedExperiments, r2.FFRecovered.Experiments)
			}
			neutralizeEngineWork(sumRef)
			neutralizeEngineWork(sum2)
			if !reflect.DeepEqual(sumRef, sum2) {
				t.Errorf("resumed summary differs from uninterrupted run:\nref:     %+v\nresumed: %+v", sumRef, sum2)
			}

			// Phase 3: resuming the completed campaign re-executes nothing.
			a3 := NewAnalyzer(cfg2)
			r3, err := a3.Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			if got := r3.FFInject.Experiments - r3.FFRecovered.Experiments; got != 0 {
				t.Errorf("resume of a sealed campaign re-executed %d experiments", got)
			}
			sum3 := r3.Summarize(cfg.Epsilon, nil)
			neutralizeEngineWork(sum3)
			if !reflect.DeepEqual(sumRef, sum3) {
				t.Error("fully recovered summary differs from uninterrupted run")
			}
		})
	}
}

// TestResumeTornTailTruncatedWithWarning corrupts the tail of a crashed
// campaign's segment and verifies resume truncates it with a note — and
// still converges to the uninterrupted summary by re-executing the
// dropped experiments.
func TestResumeTornTailTruncatedWithWarning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	p := testprog.Pipeline()

	ref := NewAnalyzer(cfg)
	rRef, err := ref.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)

	dir := t.TempDir()
	cfg1 := cfg
	cfg1.WALDir = dir
	a1 := NewAnalyzer(cfg1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a1.Progress = func(pr Progress) {
		if pr.Injected >= 1 {
			cancel()
		}
	}
	if _, err := a1.AnalyzeContext(ctx, p); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted analysis returned %v", err)
	}

	// Tear the tail of every segment, as a crash mid-write would.
	segs, err := filepath.Glob(filepath.Join(dir, sanitizeName(p.Name), "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments written (err=%v)", err)
	}
	for _, seg := range segs {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cfg2 := cfg
	cfg2.WALDir = dir
	cfg2.Resume = true
	a2 := NewAnalyzer(cfg2)
	r2, err := a2.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range r2.WALNotes {
		if strings.Contains(n, "torn wal tail") {
			found = true
		}
	}
	if !found {
		t.Errorf("torn tail left no warning note; notes: %v", r2.WALNotes)
	}
	sum2 := r2.Summarize(cfg.Epsilon, nil)
	neutralizeEngineWork(sumRef)
	neutralizeEngineWork(sum2)
	if !reflect.DeepEqual(sumRef, sum2) {
		t.Error("summary after torn-tail recovery differs from uninterrupted run")
	}
}

// childEnvDir is how the SIGKILL e2e passes the WAL directory to the
// re-executed test binary.
const childEnvDir = "FASTFLIP_RESUME_CHILD_DIR"

// TestResumeChildProcess is the subprocess body of the SIGKILL e2e: it
// runs the fft-small campaign against the WAL directory from the
// environment until the parent kills it. It is skipped in normal runs.
func TestResumeChildProcess(t *testing.T) {
	dir := os.Getenv(childEnvDir)
	if dir == "" {
		t.Skip("subprocess helper")
	}
	cfg := DefaultConfig()
	cfg.WALDir = dir
	cfg.Resume = true
	a := NewAnalyzer(cfg)
	if _, err := a.Analyze(bench.MustBuild("fft", bench.Small)); err != nil {
		t.Fatal(err)
	}
}

// TestResumeFFTSmallAfterSIGKILL is the crash/resume e2e on fft-small: a
// real child process is SIGKILLed mid-campaign, the parent counts what the
// WAL durably holds, resumes, and requires (a) a summary byte-identical to
// an uninterrupted run and (b) that exactly the not-yet-logged experiments
// were re-executed.
func TestResumeFFTSmallAfterSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("full injection campaign")
	}

	cfg := DefaultConfig()
	p := bench.MustBuild("fft", bench.Small)

	// Reference: uninterrupted, no WAL.
	ref := NewAnalyzer(cfg)
	rRef, err := ref.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)

	dir := t.TempDir()
	camDir := filepath.Join(dir, sanitizeName(p.Name))

	// Launch the child campaign and SIGKILL it once experiments are
	// durably on disk.
	child := exec.Command(os.Args[0], "-test.run", "^TestResumeChildProcess$", "-test.v")
	child.Env = append(os.Environ(), childEnvDir+"="+dir)
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			child.Process.Kill()
			child.Wait()
			t.Fatal("child produced no WAL records within the deadline")
		}
		segs, _ := filepath.Glob(filepath.Join(camDir, "*.wal"))
		var bytes int64
		for _, seg := range segs {
			if fi, err := os.Stat(seg); err == nil {
				bytes += fi.Size()
			}
		}
		if bytes > 4096 { // well past headers: real experiment records
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	child.Process.Kill() // SIGKILL: no deferred cleanup runs in the child
	child.Wait()

	// Count what the log durably holds, exactly as resume will see it.
	tr, err := trace.RecordWith(p, trace.Options{CheckpointInterval: cfg.CheckpointInterval})
	if err != nil {
		t.Fatal(err)
	}
	walFP := mix.Fold(tr.Fingerprint(), configFingerprint(cfg))
	segs, err := filepath.Glob(filepath.Join(camDir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments after kill (err=%v)", err)
	}
	logged := 0
	for _, seg := range segs {
		raw, err := hex.DecodeString(strings.TrimSuffix(filepath.Base(seg), ".wal"))
		if err != nil || len(raw) != 32 {
			t.Fatalf("segment name %q is not a section key", seg)
		}
		var key store.Key
		copy(key[:], raw)
		w, rec, err := inject.OpenSectionWAL(camDir, key, walFP, true)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		logged += len(rec.Records)
	}
	if logged == 0 {
		t.Fatal("child was killed before logging any experiment")
	}
	t.Logf("child killed with %d/%d experiments logged", logged, rRef.FFInject.Experiments)

	// Resume with a fresh analyzer (the kill lost all in-memory state).
	cfg2 := cfg
	cfg2.WALDir = dir
	cfg2.Resume = true
	a2 := NewAnalyzer(cfg2)
	r2, err := a2.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FFRecovered.Experiments != logged {
		t.Errorf("resume recovered %d experiments, the log held %d", r2.FFRecovered.Experiments, logged)
	}
	redone := r2.FFInject.Experiments - r2.FFRecovered.Experiments
	if want := rRef.FFInject.Experiments - logged; redone != want {
		t.Errorf("resume re-executed %d experiments, want exactly the %d not yet logged", redone, want)
	}

	sum2 := r2.Summarize(cfg.Epsilon, nil)
	neutralizeEngineWork(sumRef)
	neutralizeEngineWork(sum2)
	if !reflect.DeepEqual(sumRef, sum2) {
		t.Errorf("resumed summary differs from uninterrupted run:\nref:     %+v\nresumed: %+v", sumRef, sum2)
	}
}
