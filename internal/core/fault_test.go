package core

import (
	"encoding/hex"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"fastflip/internal/errfs"
	"fastflip/internal/inject"
	"fastflip/internal/mix"
	"fastflip/internal/store"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
)

// faultRetry keeps campaign retry loops fast under test: real attempts,
// no real sleeping.
func faultRetry() inject.RetryPolicy {
	return inject.RetryPolicy{Attempts: 2, Base: time.Microsecond, Max: time.Microsecond, Sleep: func(time.Duration) {}}
}

// countLogged opens every segment in dir's campaign directory the way
// resume will and sums the durably logged experiments.
func countLogged(t *testing.T, dir string, p string, cfg Config) int {
	t.Helper()
	prog := testprog.Pipeline()
	tr, err := trace.RecordWith(prog, trace.Options{CheckpointInterval: cfg.CheckpointInterval})
	if err != nil {
		t.Fatal(err)
	}
	walFP := mix.Fold(tr.Fingerprint(), configFingerprint(cfg))
	camDir := filepath.Join(dir, sanitizeName(p))
	segs, err := filepath.Glob(filepath.Join(camDir, "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	logged := 0
	for _, seg := range segs {
		raw, err := hex.DecodeString(strings.TrimSuffix(filepath.Base(seg), ".wal"))
		if err != nil || len(raw) != 32 {
			t.Fatalf("segment name %q is not a section key", seg)
		}
		var key store.Key
		copy(key[:], raw)
		w, rec, err := inject.OpenSectionWAL(camDir, key, walFP, true)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		logged += len(rec.Records)
	}
	return logged
}

// TestAnalyzeCompletesOnDegradedWAL fills the disk mid-campaign and
// requires the analysis to finish memory-only with identical results —
// degradation costs durability, never correctness.
func TestAnalyzeCompletesOnDegradedWAL(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	p := testprog.Pipeline()

	ref := NewAnalyzer(cfg)
	rRef, err := ref.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)

	cfgF := cfg
	cfgF.WALDir = t.TempDir()
	cfgF.FaultFS = errfs.Wrap(nil, errfs.FailFrom(errfs.OpWrite, 8, syscall.ENOSPC))
	cfgF.WALRetry = faultRetry()
	a := NewAnalyzer(cfgF)
	var sawDegraded bool
	a.Progress = func(pr Progress) {
		if pr.WALDegraded {
			sawDegraded = true
		}
	}
	r, err := a.Analyze(p)
	if err != nil {
		t.Fatalf("analysis on a full disk failed instead of degrading: %v", err)
	}
	if !r.WALDegraded {
		t.Fatal("persistent write failures did not set Result.WALDegraded")
	}
	if !sawDegraded {
		t.Error("degradation never surfaced through Progress")
	}
	found := false
	for _, n := range r.WALNotes {
		if strings.Contains(n, "degraded") {
			found = true
		}
	}
	if !found {
		t.Errorf("no degradation note recorded; notes: %v", r.WALNotes)
	}

	sum := r.Summarize(cfg.Epsilon, nil)
	if !sum.WALDegraded {
		t.Error("summary does not carry wal_degraded")
	}
	neutralizeEngineWork(sumRef)
	neutralizeEngineWork(sum)
	sum.WALDegraded = false
	if !reflect.DeepEqual(sumRef, sum) {
		t.Errorf("degraded-mode summary differs from clean run:\nref:      %+v\ndegraded: %+v", sumRef, sum)
	}
}

// TestResumeAfterDegradedRun degrades the WAL mid-campaign, then resumes
// on a healthy disk: the resume must recover exactly what was durably
// logged before the fault, re-execute only the remainder, and converge to
// the uninterrupted summary.
func TestResumeAfterDegradedRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	p := testprog.Pipeline()

	ref := NewAnalyzer(cfg)
	rRef, err := ref.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)

	dir := t.TempDir()
	cfg1 := cfg
	cfg1.WALDir = dir
	cfg1.FaultFS = errfs.Wrap(nil, errfs.FailFrom(errfs.OpWrite, 10, syscall.ENOSPC))
	cfg1.WALRetry = faultRetry()
	a1 := NewAnalyzer(cfg1)
	r1, err := a1.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.WALDegraded {
		t.Fatal("fault plan did not degrade the first run")
	}
	logged := countLogged(t, dir, p.Name, cfg)
	if logged >= rRef.FFInject.Experiments {
		t.Fatalf("fault plan logged all %d experiments; degrade never bit", logged)
	}

	cfg2 := cfg
	cfg2.WALDir = dir
	cfg2.Resume = true
	a2 := NewAnalyzer(cfg2)
	r2, err := a2.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if r2.WALDegraded {
		t.Error("resume on a healthy disk still reports WALDegraded")
	}
	if r2.FFRecovered.Experiments != logged {
		t.Errorf("resume recovered %d experiments, the log held %d", r2.FFRecovered.Experiments, logged)
	}
	redone := r2.FFInject.Experiments - r2.FFRecovered.Experiments
	if want := rRef.FFInject.Experiments - logged; redone != want {
		t.Errorf("resume re-executed %d experiments, want exactly the %d that were never logged", redone, want)
	}
	sum2 := r2.Summarize(cfg.Epsilon, nil)
	neutralizeEngineWork(sumRef)
	neutralizeEngineWork(sum2)
	if !reflect.DeepEqual(sumRef, sum2) {
		t.Errorf("post-degrade resume differs from uninterrupted run:\nref:     %+v\nresumed: %+v", sumRef, sum2)
	}
}

// TestPanicRetryIsByteNeutral panics one experiment once via the
// test-only hook. The supervisor retries it on a fresh machine; the
// summary must be byte-identical to a panic-free run except for the
// panic_retries counter itself.
func TestPanicRetryIsByteNeutral(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	p := testprog.Pipeline()

	ref := NewAnalyzer(cfg)
	rRef, err := ref.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)

	cfgP := cfg
	fired := false
	cfgP.ExperimentPanicHook = func(class, attempt int) {
		if !fired && attempt == 1 {
			fired = true
			panic("test-injected transient panic")
		}
	}
	a := NewAnalyzer(cfgP)
	r, err := a.Analyze(p)
	if err != nil {
		t.Fatalf("one transient panic failed the analysis: %v", err)
	}
	if r.PanicRetries != 1 {
		t.Fatalf("PanicRetries = %d, want 1", r.PanicRetries)
	}
	if len(r.Poisoned) != 0 {
		t.Fatalf("a single panic quarantined %d experiments", len(r.Poisoned))
	}
	sum := r.Summarize(cfg.Epsilon, nil)
	if sum.PanicRetries != 1 {
		t.Fatalf("summary panic_retries = %d, want 1", sum.PanicRetries)
	}
	sum.PanicRetries = 0
	neutralizeEngineWork(sumRef)
	neutralizeEngineWork(sum)
	if !reflect.DeepEqual(sumRef, sum) {
		t.Errorf("retried run differs from panic-free run:\nref:     %+v\nretried: %+v", sumRef, sum)
	}
}

// TestRepeatedPanicQuarantines panics one class on every attempt: the
// supervisor must quarantine it with diagnostics (in the result, the
// summary, and the WAL segment), fill its outcome conservatively, and
// still complete the analysis. A clean resume then re-executes the
// quarantined classes and converges to the uninterrupted summary.
func TestRepeatedPanicQuarantines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 1
	p := testprog.Pipeline()

	ref := NewAnalyzer(cfg)
	rRef, err := ref.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	sumRef := rRef.Summarize(cfg.Epsilon, nil)

	dir := t.TempDir()
	cfg1 := cfg
	cfg1.WALDir = dir
	cfg1.ExperimentPanicHook = func(class, attempt int) {
		if class == 0 {
			panic("test-poison boom")
		}
	}
	a1 := NewAnalyzer(cfg1)
	var sawPoisoned bool
	a1.Progress = func(pr Progress) {
		if pr.Poisoned > 0 {
			sawPoisoned = true
		}
	}
	r1, err := a1.Analyze(p)
	if err != nil {
		t.Fatalf("quarantine failed the analysis: %v", err)
	}
	if len(r1.Poisoned) == 0 {
		t.Fatal("repeated panics produced no poison records")
	}
	if !sawPoisoned {
		t.Error("quarantine never surfaced through Progress")
	}
	for _, ps := range r1.Poisoned {
		if ps.Attempts != 2 {
			t.Errorf("poison record attempts = %d, want 2 (one retry on a fresh machine)", ps.Attempts)
		}
		if !strings.Contains(ps.Stack, "test-poison boom") {
			t.Errorf("poison stack does not carry the panic value:\n%s", ps.Stack)
		}
		if ps.MachineFP == 0 {
			t.Error("poison record has no machine fingerprint")
		}
	}
	sum1 := r1.Summarize(cfg.Epsilon, nil)
	if len(sum1.Poisoned) != len(r1.Poisoned) {
		t.Errorf("summary carries %d poison records, result %d", len(sum1.Poisoned), len(r1.Poisoned))
	}
	for _, ps := range sum1.Poisoned {
		if !strings.Contains(ps.Stack, "test-poison boom") || ps.MachineFP == "" || ps.Class == "" {
			t.Errorf("summary poison record incomplete: %+v", ps)
		}
	}

	// The quarantine diagnostics must be durable in the segment files.
	segs, err := filepath.Glob(filepath.Join(dir, sanitizeName(p.Name), "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments written (err=%v)", err)
	}
	walPoisoned := 0
	for _, seg := range segs {
		info, err := inject.InspectSegment(seg)
		if err != nil {
			t.Fatal(err)
		}
		walPoisoned += info.Poisoned
	}
	if walPoisoned != len(r1.Poisoned) {
		t.Errorf("segments hold %d poison records, result has %d", walPoisoned, len(r1.Poisoned))
	}

	// Resume without the panic hook: quarantined classes were never
	// Record-logged, so they re-execute and the summary converges.
	cfg2 := cfg
	cfg2.WALDir = dir
	cfg2.Resume = true
	a2 := NewAnalyzer(cfg2)
	r2, err := a2.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Poisoned) != 0 || r2.PanicRetries != 0 {
		t.Errorf("clean resume still reports poison state: %d poisoned, %d retries", len(r2.Poisoned), r2.PanicRetries)
	}
	sum2 := r2.Summarize(cfg.Epsilon, nil)
	neutralizeEngineWork(sumRef)
	neutralizeEngineWork(sum2)
	if !reflect.DeepEqual(sumRef, sum2) {
		t.Errorf("resume after quarantine differs from uninterrupted run:\nref:     %+v\nresumed: %+v", sumRef, sum2)
	}
}
