package core_test

import (
	"testing"

	"fastflip/internal/bench"
	"fastflip/internal/core"
)

// TestLUDPipeline runs the full FastFlip + baseline pipeline on all three
// LUD versions and checks the paper's headline properties: targets are met
// within the error range, costs track the baseline, and the modified
// versions are much cheaper to analyze than the baseline re-analysis.
func TestLUDPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full injection campaign")
	}
	cfg := core.DefaultConfig()
	cfg.PilotInaccuracy = 0.04
	a := core.NewAnalyzer(cfg)

	type versionResult struct {
		r     *core.Result
		evals []core.TargetEval
	}
	run := func(variant bench.Variant, modified bool) versionResult {
		p := bench.MustBuild("lud", variant)
		if modified {
			a.NoteModification()
		}
		r, err := a.Analyze(p)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		a.RunBaseline(r)
		evals, err := a.Evaluate(r, cfg.Epsilon, modified)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		t.Logf("%s: sites=%d ffPilots=%d ffCost=%d basePilots=%d baseCost=%d reused=%d injected=%d",
			variant, r.SiteCount, r.FFInject.Experiments, r.FFCost(),
			r.BaseInject.Experiments, r.BaseCost(), r.ReusedInstances, r.InjectedInstances)
		for _, ev := range evals {
			t.Logf("  target=%.2f adj=%.4f achieved=%.4f ffCost=%.3f baseCost=%.3f diff=%+.4f within=%v",
				ev.Target, ev.Adjusted, ev.Achieved, ev.FFCostFrac, ev.BaseCostFrac, ev.CostDiff, ev.WithinRange)
		}
		return versionResult{r, evals}
	}

	none := run(bench.None, false)
	if none.r.ReusedInstances != 0 {
		t.Errorf("none: reused %d instances, want 0", none.r.ReusedInstances)
	}
	for _, ev := range none.evals {
		if !ev.WithinRange {
			t.Errorf("none: target %.2f achieved %.4f outside error range", ev.Target, ev.Achieved)
		}
	}

	small := run(bench.Small, true)
	if small.r.ReusedInstances < 6 {
		t.Errorf("small: reused %d instances, want >= 6 (only BMOD changed)", small.r.ReusedInstances)
	}
	if small.r.FFCost() >= small.r.BaseCost() {
		t.Errorf("small: FastFlip cost %d not below baseline %d", small.r.FFCost(), small.r.BaseCost())
	}
	for _, ev := range small.evals {
		if !ev.WithinRange {
			t.Errorf("small: target %.2f achieved %.4f outside error range", ev.Target, ev.Achieved)
		}
	}

	large := run(bench.Large, true)
	if large.r.ReusedInstances < 6 {
		t.Errorf("large: reused %d instances, want >= 6 (only LU0 changed)", large.r.ReusedInstances)
	}
	if large.r.FFCost() >= large.r.BaseCost() {
		t.Errorf("large: FastFlip cost %d not below baseline %d", large.r.FFCost(), large.r.BaseCost())
	}

	// The composed end-to-end spec should amplify early sections more than
	// late ones (Equation 2's decreasing coefficients).
	t.Logf("eq2: %s", none.r.FormatSpec(0))
}
