package core_test

import (
	"testing"

	"fastflip/internal/core"
	"fastflip/internal/testprog"
)

func TestCoRunProvidesGroundTruth(t *testing.T) {
	cfg := fixtureConfig()
	cfg.CoRunBaseline = true
	a := core.NewAnalyzer(cfg)
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCoRun() {
		t.Fatal("co-run labels missing")
	}
	// Evaluate works without RunBaseline.
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evals {
		if ev.Achieved < ev.Target-ev.ErrRange-0.05 {
			t.Errorf("co-run target %.2f achieved only %.4f", ev.Target, ev.Achieved)
		}
	}
}

func TestCoRunLabelsMatchMonolithic(t *testing.T) {
	cfg := fixtureConfig()
	cfg.CoRunBaseline = true
	a := core.NewAnalyzer(cfg)
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)

	co := r.CoRunBadCounts(0)
	base := r.BaseBadCounts(0)
	// The co-run uses FastFlip's per-section pilots while the baseline
	// picks its own global pilots, so small disagreements are expected —
	// but the totals must be close on a program where every static
	// instruction executes once per section (identical pilots here).
	if co.Total == 0 || base.Total == 0 {
		t.Fatalf("empty counts: co %d base %d", co.Total, base.Total)
	}
	diff := co.Total - base.Total
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.05*float64(base.Total) {
		t.Errorf("co-run bad total %d deviates from baseline %d by more than 5%%", co.Total, base.Total)
	}
}

func TestCoRunCostsMoreThanSectionOnly(t *testing.T) {
	plain := core.NewAnalyzer(fixtureConfig())
	rp, err := plain.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	cfg.CoRunBaseline = true
	co := core.NewAnalyzer(cfg)
	rc, err := co.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if rc.FFInject.SimInstrs <= rp.FFInject.SimInstrs {
		t.Errorf("co-run cost %d not above section-only %d",
			rc.FFInject.SimInstrs, rp.FFInject.SimInstrs)
	}
}

func TestCoRunReuseRoundTrip(t *testing.T) {
	cfg := fixtureConfig()
	cfg.CoRunBaseline = true
	a := core.NewAnalyzer(cfg)
	if _, err := a.Analyze(testprog.Pipeline()); err != nil {
		t.Fatal(err)
	}
	r2, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedInstances != 2 {
		t.Fatalf("reused %d", r2.ReusedInstances)
	}
	if !r2.HasCoRun() {
		t.Error("co-run labels lost through the store")
	}
	if _, err := a.Evaluate(r2, 0, true); err != nil {
		t.Errorf("Evaluate on reused co-run results: %v", err)
	}
}

func TestSectionOnlyStoreNotReusedForCoRun(t *testing.T) {
	// A store populated without co-run labels cannot satisfy a co-run
	// analysis; the analyzer must re-inject rather than return results
	// missing the end-to-end outcomes.
	plain := core.NewAnalyzer(fixtureConfig())
	if _, err := plain.Analyze(testprog.Pipeline()); err != nil {
		t.Fatal(err)
	}
	cfg := fixtureConfig()
	cfg.CoRunBaseline = true
	co := &core.Analyzer{Cfg: cfg, Store: plain.Store}
	r, err := co.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReusedInstances != 0 {
		t.Errorf("reused %d section-only entries for a co-run analysis", r.ReusedInstances)
	}
}
