package core

import (
	"fmt"
	"math"
	"sort"

	"fastflip/internal/knap"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/store"
)

// BadCounts is the number of SDC-Bad sites attributed to each static
// instruction, plus the total. With uniform p(j), normalizing a static's
// count by Total gives the protection value v(pc) of Algorithm 2.
type BadCounts struct {
	PerStatic map[prog.StaticID]int
	Total     int
}

// FFBadCounts labels every site with FastFlip's pipeline: per-section
// outcomes propagated through the composed specification (Algorithm 2),
// plus the conservative s⊥ handling of untested sites.
func (r *Result) FFBadCounts(eps float64) BadCounts {
	bc := BadCounts{PerStatic: make(map[prog.StaticID]int)}
	epsVec := r.epsVec(eps)
	for _, rec := range r.ffClasses {
		if rec.out.Kind != metrics.SDC {
			continue // detected or masked: not an SDC-Bad site
		}
		if r.Spec.Bad(rec.inst, rec.out.Magnitudes, epsVec) {
			bc.PerStatic[rec.class.Key.Static] += rec.class.Size()
			bc.Total += rec.class.Size()
		}
	}
	for id, n := range r.untestedBad {
		bc.PerStatic[id] += n
		bc.Total += n
	}
	return bc
}

// BaseBadCounts labels every site with the monolithic baseline: the final
// outputs' observed SDC magnitude against ε. RunBaseline must have run.
func (r *Result) BaseBadCounts(eps float64) BadCounts {
	bc := BadCounts{PerStatic: make(map[prog.StaticID]int)}
	for _, rec := range r.baseClasses {
		if rec.out.Kind != metrics.SDC {
			continue
		}
		if rec.out.MaxMagnitude() > eps {
			bc.PerStatic[rec.class.Key.Static] += rec.class.Size()
			bc.Total += rec.class.Size()
		}
	}
	return bc
}

// HasCoRun reports whether end-to-end co-run labels are available.
func (r *Result) HasCoRun() bool {
	for _, rec := range r.ffClasses {
		if rec.fin == nil {
			return false
		}
	}
	return len(r.ffClasses) > 0
}

// CoRunBadCounts labels every site with the end-to-end outcomes observed
// by the simultaneous baseline co-run (Config.CoRunBaseline). It plays the
// same ground-truth role as BaseBadCounts but uses FastFlip's per-section
// pilots and adds the conservative s⊥ sites (which the co-run, unlike the
// true monolithic baseline, never injects).
func (r *Result) CoRunBadCounts(eps float64) BadCounts {
	bc := BadCounts{PerStatic: make(map[prog.StaticID]int)}
	for _, rec := range r.ffClasses {
		if rec.fin == nil || rec.fin.Kind != metrics.SDC {
			continue
		}
		if rec.fin.MaxMagnitude() > eps {
			bc.PerStatic[rec.class.Key.Static] += rec.class.Size()
			bc.Total += rec.class.Size()
		}
	}
	for id, n := range r.untestedBad {
		bc.PerStatic[id] += n
		bc.Total += n
	}
	return bc
}

// epsVec expands the uniform ε to one entry per final output.
func (r *Result) epsVec(eps float64) []float64 {
	v := make([]float64, len(r.Prog.FinalOutputs))
	for i := range v {
		v[i] = eps
	}
	return v
}

// Items builds the knapsack items for a labeling: every static instruction
// of interest, with value = its normalized share of SDC-Bad sites and cost
// = its dynamic instance count.
func (r *Result) Items(bc BadCounts) []knap.Item {
	ids := make([]prog.StaticID, 0, len(r.Costs))
	for id := range r.Costs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Func != ids[j].Func {
			return ids[i].Func < ids[j].Func
		}
		return ids[i].Local < ids[j].Local
	})
	items := make([]knap.Item, len(ids))
	for i, id := range ids {
		v := 0.0
		if bc.Total > 0 {
			v = float64(bc.PerStatic[id]) / float64(bc.Total)
		}
		items[i] = knap.Item{ID: id, Value: v, Cost: r.Costs[id]}
	}
	return items
}

// achieved computes a selection's protection value under ground-truth
// labels: the fraction of truth-bad sites whose static instruction is
// protected (§4.10, v_achv).
func achieved(sel *knap.Selection, truth BadCounts) float64 {
	if truth.Total == 0 {
		return 1
	}
	covered := 0
	set := sel.Set()
	for id, n := range truth.PerStatic {
		if set[id] {
			covered += n
		}
	}
	return float64(covered) / float64(truth.Total)
}

// TargetEval is the utility comparison for one v_trgt (one cell group of
// Table 2).
type TargetEval struct {
	Target   float64 // original v_trgt
	Adjusted float64 // v'_trgt actually used for FastFlip's selection

	FF   *knap.Selection // FastFlip's instructions to protect
	Base *knap.Selection // the monolithic baseline's selection

	// Achieved is v_achv: FF's value under the baseline's labels.
	Achieved float64
	// FFCostFrac and BaseCostFrac are the protection costs as fractions of
	// all dynamic instructions of interest; CostDiff is c_exc normalized.
	FFCostFrac   float64
	BaseCostFrac float64
	CostDiff     float64

	// ErrRange is the value error range induced by pilot misprediction;
	// WithinRange reports Achieved ≥ Target − ErrRange.
	ErrRange    float64
	WithinRange bool
}

// Evaluate produces the per-target utility comparison. modified says
// whether p is a modified version analyzed with reuse, in which case the
// stored adjusted targets are used while m_adj < P_adj (§4.10).
// RunBaseline must have been called on r (the baseline labels are the
// ground truth of the comparison and the source of fresh adjustments).
func (a *Analyzer) Evaluate(r *Result, eps float64, modified bool) ([]TargetEval, error) {
	var baseBC BadCounts
	switch {
	case len(r.baseClasses) > 0:
		baseBC = r.BaseBadCounts(eps)
	case r.HasCoRun():
		// Ground truth from the simultaneous co-run (§4.10): no separate
		// monolithic campaign was needed.
		baseBC = r.CoRunBadCounts(eps)
	default:
		return nil, fmt.Errorf("core: Evaluate needs RunBaseline results or co-run labels")
	}
	ffBC := r.FFBadCounts(eps)
	ffSolver := knap.New(r.Items(ffBC))
	baseSolver := knap.New(r.Items(baseBC))

	evals := make([]TargetEval, 0, len(a.Cfg.Targets))
	for _, target := range a.Cfg.Targets {
		baseSel, err := baseSolver.MinCostFor(target)
		if err != nil {
			return nil, err
		}

		adjusted := target
		if a.Cfg.AdjustTargets {
			tk := store.TargetKey{Epsilon: eps, Target: target}
			useStored := modified && a.Store != nil && a.Store.ModsSinceAdjust < a.Cfg.PAdj
			if stored, ok := a.storedTarget(tk); useStored && ok {
				adjusted = stored
			} else {
				adjusted = adjustTarget(ffSolver, baseBC, target)
				if a.Store != nil {
					a.Store.AdjustedTargets[tk] = adjusted
				}
			}
		}

		ffSel, err := ffSolver.MinCostFor(adjusted)
		if err != nil {
			// The adjusted target can exceed what the modified version's
			// labeling can reach; fall back to everything protectable.
			ffSel, err = ffSolver.MinCostFor(ffSolver.MaxValue())
			if err != nil {
				return nil, err
			}
		}

		achv := achieved(ffSel, baseBC)
		ev := TargetEval{
			Target:       target,
			Adjusted:     adjusted,
			FF:           ffSel,
			Base:         baseSel,
			Achieved:     achv,
			FFCostFrac:   float64(ffSel.Cost) / float64(r.TotalCost),
			BaseCostFrac: float64(baseSel.Cost) / float64(r.TotalCost),
			ErrRange:     a.Cfg.PilotInaccuracy * achv,
		}
		ev.CostDiff = ev.FFCostFrac - ev.BaseCostFrac
		ev.WithinRange = achv >= target-ev.ErrRange
		evals = append(evals, ev)
	}
	return evals, nil
}

func (a *Analyzer) storedTarget(tk store.TargetKey) (float64, bool) {
	if a.Store == nil {
		return 0, false
	}
	v, ok := a.Store.AdjustedTargets[tk]
	return v, ok
}

// adjustTarget finds the minimal v'_trgt whose selection achieves at least
// target under the ground-truth labels (§4.10). It scans the candidate
// targets on a fine grid; each probe is one cheap DP query.
func adjustTarget(ffSolver *knap.Solver, truth BadCounts, target float64) float64 {
	const step = 0.0005
	maxV := ffSolver.MaxValue()
	lo := target - 0.30
	if lo < 0 {
		lo = 0
	}
	for v := lo; v <= maxV+step; v += step {
		probe := math.Min(v, maxV)
		sel, err := ffSolver.MinCostFor(probe)
		if err != nil {
			break
		}
		if achieved(sel, truth) >= target {
			return probe
		}
		if probe == maxV {
			break
		}
	}
	// Even protecting everything undershoots (pilot mispredictions):
	// return the maximum achievable target.
	return maxV
}

// Frontier returns the (target, achieved, ffCostFrac, baseCostFrac) series
// for a sweep of targets — the data behind Figure 1. Target adjustment is
// applied the same way Evaluate does for an unmodified version.
func (a *Analyzer) Frontier(r *Result, eps float64, targets []float64) ([]TargetEval, error) {
	saved := a.Cfg.Targets
	a.Cfg.Targets = targets
	defer func() { a.Cfg.Targets = saved }()
	return a.Evaluate(r, eps, false)
}
