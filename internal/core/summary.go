package core

import (
	"fmt"
	"sort"
	"time"

	"fastflip/internal/prog"
)

// Summary is the machine-readable digest of one analysis — the shape
// returned by the ffserved JSON API and by `fastflip -json`, so CLI and
// service outputs are interchangeable. All cost figures are in simulated
// instructions; magnitudes beyond ε classify as SDC-Bad.
type Summary struct {
	Bench   string  `json:"bench,omitempty"`
	Variant string  `json:"variant,omitempty"`
	Program string  `json:"program"`
	Epsilon float64 `json:"epsilon"`

	SiteCount int    `json:"site_count"`
	DynInstrs uint64 `json:"dyn_instrs"`
	Instances int    `json:"instances"`
	Reused    int    `json:"reused_instances"`
	Injected  int    `json:"injected_instances"`

	StaticExecuted int `json:"static_executed"`
	StaticTotal    int `json:"static_total"`

	FFExperiments int           `json:"ff_experiments"`
	FFSimInstrs   uint64        `json:"ff_sim_instrs"`
	FFWall        time.Duration `json:"ff_wall_ns"`
	// FFCleanInstrs/FFFaultyInstrs split the injection engine's actual
	// simulated work into clean-prefix replay and post-flip execution.
	// FFSimInstrs above remains the paper's accounted cost model (per
	// experiment, section checkpoint to experiment end), so the two clean
	// figures differ under the cursor replay engine.
	FFCleanInstrs  uint64 `json:"ff_clean_instrs"`
	FFFaultyInstrs uint64 `json:"ff_faulty_instrs"`

	// ElidedExperiments counts experiments the static masking tier proved
	// Masked and recorded without simulating (included in FFExperiments);
	// ElidedSimInstrs is their accounted share of FFSimInstrs. Executed
	// experiments = FFExperiments − ElidedExperiments.
	ElidedExperiments int    `json:"elided_experiments,omitempty"`
	ElidedSimInstrs   uint64 `json:"elided_sim_instrs,omitempty"`
	// BatchedExperiments counts experiments whose faulty suffix ran inside
	// a lockstep batch replica (included in FFExperiments); outcomes and
	// accounted costs are identical to scalar runs. BatchReplicasAvg is the
	// mean batch width of this process's batch dispatches; unlike the
	// counters above it is engine telemetry, not WAL-persisted, so a
	// resumed campaign reports only its own batches.
	BatchedExperiments int     `json:"batched_experiments,omitempty"`
	BatchReplicasAvg   float64 `json:"batch_replicas_avg,omitempty"`

	// ResumedExperiments counts experiments recovered from a write-ahead
	// campaign log instead of re-executed (included in FFExperiments).
	// WALNotes records non-fatal WAL anomalies (torn tails truncated,
	// lock conflicts).
	ResumedExperiments int      `json:"resumed_experiments,omitempty"`
	WALNotes           []string `json:"wal_notes,omitempty"`
	// WALDegraded marks a campaign whose write-ahead log hit a persistent
	// write failure: the analysis completed, but at least one section's
	// results are memory-only and a resume will re-inject that section.
	WALDegraded bool `json:"wal_degraded,omitempty"`
	// Poisoned lists experiments quarantined by the panic supervisor
	// (panicked twice on fresh machines); their outcomes are the
	// conservative SDC-Bad fill, so protection analysis stays sound.
	Poisoned []PoisonSummary `json:"poisoned,omitempty"`
	// PanicRetries counts experiment attempts that panicked once and
	// succeeded on retry. Retries are cost-neutral: the accounted figures
	// above match a panic-free run exactly.
	PanicRetries int `json:"panic_retries,omitempty"`
	// RemoteExperiments counts experiments executed by remote shard
	// workers under a distributed coordinator (included in FFExperiments);
	// ShardsMerged counts the shard streams merged. Both are zero for a
	// purely local campaign — distribution changes where experiments ran,
	// never the outcome fields above.
	RemoteExperiments int `json:"remote_experiments,omitempty"`
	ShardsMerged      int `json:"shards_merged,omitempty"`
	// HedgedDispatches counts straggler shard leases the coordinator
	// re-dispatched to an idle worker while the original kept streaming;
	// Releases counts finished dispatches that handed unresolved work back
	// to the lease queue. Resilience accounting only — like the fields
	// above they never change the outcome fields.
	HedgedDispatches int `json:"hedged_dispatches,omitempty"`
	Releases         int `json:"releases,omitempty"`

	// SharedHits counts section lookups this job resolved from the shared
	// cross-process outcome tier, SharedMisses those the tier could not
	// serve (both zero without a shared tier; included in Reused/Injected
	// respectively). Like the wall-clock and work-split fields, they
	// describe where this run's results came from, not what they are.
	SharedHits   int `json:"shared_hits,omitempty"`
	SharedMisses int `json:"shared_misses,omitempty"`

	// Protection-loop figures (Analyzer.Harden), present only when the job
	// asked for hardening: the knapsack selection was applied as
	// duplication-and-compare detectors and the hardened program was
	// re-injected. ResidualSDC is its measured SDC-Bad site count,
	// PredictedResidual the mechanism-aware bound derived from the original
	// campaign, DetectorCoverage the fraction of tested bad sites at
	// protected instructions the detectors removed, DetectorTriggers the
	// hardened sites caught by a detector trap, and ProtectionOverhead the
	// dynamic instruction overhead of the detectors. HardenedAsm carries
	// the hardened program's disassembly when the caller requested it.
	HardenedTarget     float64 `json:"hardened_target,omitempty"`
	ResidualSDC        int     `json:"residual_sdc,omitempty"`
	PredictedResidual  int     `json:"predicted_residual,omitempty"`
	DetectorCoverage   float64 `json:"detector_coverage,omitempty"`
	DetectorTriggers   int     `json:"detector_triggers,omitempty"`
	ProtectionOverhead float64 `json:"protection_overhead,omitempty"`
	HardenedAsm        string  `json:"hardened_asm,omitempty"`

	Outcomes OutcomeStats `json:"outcomes"`

	Baseline *BaselineSummary `json:"baseline,omitempty"`
	Targets  []TargetSummary  `json:"targets,omitempty"`
}

// PoisonSummary is the serializable digest of one quarantined experiment:
// which class panicked twice, a fingerprint of the machine the second
// panic left behind, and the captured stack for post-mortem debugging.
type PoisonSummary struct {
	Class     string `json:"class"`
	Attempts  int    `json:"attempts"`
	MachineFP string `json:"machine_fp"`
	Stack     string `json:"stack"`
}

// BaselineSummary digests the monolithic baseline campaign.
type BaselineSummary struct {
	Experiments  int           `json:"experiments"`
	SimInstrs    uint64        `json:"sim_instrs"`
	CleanInstrs  uint64        `json:"clean_instrs"`
	FaultyInstrs uint64        `json:"faulty_instrs"`
	Wall         time.Duration `json:"wall_ns"`
	// Elision/batching telemetry, as in the FastFlip figures above.
	ElidedExperiments  int    `json:"elided_experiments,omitempty"`
	ElidedSimInstrs    uint64 `json:"elided_sim_instrs,omitempty"`
	BatchedExperiments int    `json:"batched_experiments,omitempty"`
	// Speedup is baseline cost over FastFlip cost (the paper's headline
	// ratio).
	Speedup float64 `json:"speedup"`
}

// TargetSummary digests one TargetEval for serialization, with the
// selected instructions rendered as stable strings.
type TargetSummary struct {
	Target       float64  `json:"target"`
	Adjusted     float64  `json:"adjusted"`
	Achieved     float64  `json:"achieved"`
	FFCostFrac   float64  `json:"ff_cost_frac"`
	BaseCostFrac float64  `json:"base_cost_frac"`
	CostDiff     float64  `json:"cost_diff"`
	ErrRange     float64  `json:"err_range"`
	WithinRange  bool     `json:"within_range"`
	Selected     []string `json:"selected"`
	SelectedCost int      `json:"selected_cost"`
}

// Summarize renders r (and, when non-nil, its target evaluations) as a
// Summary. evals may be nil when no baseline comparison ran.
func (r *Result) Summarize(eps float64, evals []TargetEval) *Summary {
	exec, total := r.Trace.Coverage()
	s := &Summary{
		Program:        r.Prog.Name,
		Epsilon:        eps,
		SiteCount:      r.SiteCount,
		DynInstrs:      r.Trace.TotalDyn,
		Instances:      len(r.Trace.Instances),
		Reused:         r.ReusedInstances,
		Injected:       r.InjectedInstances,
		StaticExecuted: exec,
		StaticTotal:    total,
		FFExperiments:  r.FFInject.Experiments,
		FFSimInstrs:    r.FFCost(),
		FFCleanInstrs:  r.FFInject.CleanInstrs,
		FFFaultyInstrs: r.FFInject.FaultyInstrs,
		FFWall:         r.FFWall,
		Outcomes:       r.FFOutcomeStats(eps),
	}
	s.ElidedExperiments = r.FFInject.ElidedExperiments
	s.ElidedSimInstrs = r.FFInject.ElidedInstrs
	s.BatchedExperiments = r.FFInject.BatchExperiments
	if r.FFInject.Batches > 0 {
		s.BatchReplicasAvg = float64(r.FFInject.BatchExperiments) / float64(r.FFInject.Batches)
	}
	s.ResumedExperiments = r.FFRecovered.Experiments
	s.WALNotes = append([]string(nil), r.WALNotes...)
	s.WALDegraded = r.WALDegraded
	s.PanicRetries = r.PanicRetries
	s.RemoteExperiments = r.RemoteExperiments
	s.ShardsMerged = r.ShardsMerged
	s.HedgedDispatches = r.HedgedDispatches
	s.Releases = r.Releases
	for _, p := range r.Poisoned {
		s.Poisoned = append(s.Poisoned, PoisonSummary{
			Class:     fmt.Sprintf("%v/%v.bit%d", p.Key.Static, p.Key.Role, p.Key.Bit),
			Attempts:  p.Attempts,
			MachineFP: fmt.Sprintf("%016x", p.MachineFP),
			Stack:     p.Stack,
		})
	}
	if len(r.baseClasses) > 0 {
		b := &BaselineSummary{
			Experiments:        r.BaseInject.Experiments,
			SimInstrs:          r.BaseCost(),
			CleanInstrs:        r.BaseInject.CleanInstrs,
			FaultyInstrs:       r.BaseInject.FaultyInstrs,
			Wall:               r.BaseWall,
			ElidedExperiments:  r.BaseInject.ElidedExperiments,
			ElidedSimInstrs:    r.BaseInject.ElidedInstrs,
			BatchedExperiments: r.BaseInject.BatchExperiments,
		}
		if ff := r.FFCost(); ff > 0 {
			b.Speedup = float64(r.BaseCost()) / float64(ff)
		}
		s.Baseline = b
	}
	for _, ev := range evals {
		ts := TargetSummary{
			Target:       ev.Target,
			Adjusted:     ev.Adjusted,
			Achieved:     ev.Achieved,
			FFCostFrac:   ev.FFCostFrac,
			BaseCostFrac: ev.BaseCostFrac,
			CostDiff:     ev.CostDiff,
			ErrRange:     ev.ErrRange,
			WithinRange:  ev.WithinRange,
			SelectedCost: ev.FF.Cost,
			Selected:     staticIDStrings(ev.FF.IDs),
		}
		s.Targets = append(s.Targets, ts)
	}
	return s
}

func staticIDStrings(ids []prog.StaticID) []string {
	sorted := append([]prog.StaticID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Func != sorted[j].Func {
			return sorted[i].Func < sorted[j].Func
		}
		return sorted[i].Local < sorted[j].Local
	})
	out := make([]string, len(sorted))
	for i, id := range sorted {
		out[i] = id.String()
	}
	return out
}
