package core

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"fastflip/internal/prog"
)

// WriteReport writes a per-instruction vulnerability report: for every
// static instruction of interest, its protection cost c(pc), the number of
// SDC-Bad sites FastFlip attributes to it, the baseline's count (when
// RunBaseline has run), and the normalized protection value v(pc). Rows
// are ordered by descending FastFlip value — the protection priority
// order.
func (r *Result) WriteReport(w io.Writer, eps float64) error {
	ffBC := r.FFBadCounts(eps)
	var baseBC BadCounts
	haveBase := len(r.baseClasses) > 0
	if haveBase {
		baseBC = r.BaseBadCounts(eps)
	}

	ids := make([]prog.StaticID, 0, len(r.Costs))
	for id := range r.Costs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		bi, bj := ffBC.PerStatic[ids[i]], ffBC.PerStatic[ids[j]]
		if bi != bj {
			return bi > bj
		}
		if ids[i].Func != ids[j].Func {
			return ids[i].Func < ids[j].Func
		}
		return ids[i].Local < ids[j].Local
	})

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	if haveBase {
		fmt.Fprintln(tw, "instruction\tcost c(pc)\tff bad sites\tbase bad sites\tv(pc)")
	} else {
		fmt.Fprintln(tw, "instruction\tcost c(pc)\tff bad sites\tv(pc)")
	}
	for _, id := range ids {
		v := 0.0
		if ffBC.Total > 0 {
			v = float64(ffBC.PerStatic[id]) / float64(ffBC.Total)
		}
		if haveBase {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.6f\n",
				id, r.Costs[id], ffBC.PerStatic[id], baseBC.PerStatic[id], v)
		} else {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%.6f\n", id, r.Costs[id], ffBC.PerStatic[id], v)
		}
	}
	return tw.Flush()
}
