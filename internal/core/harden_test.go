package core

import (
	"context"
	"testing"

	"fastflip/internal/bench"
	"fastflip/internal/prog"
	"fastflip/internal/testprog"
)

// TestHardenPipeline closes the protection loop on the two-section fixture:
// solve, transform, re-inject, and check the measured residual against the
// predicted bound.
func TestHardenPipeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Targets = nil
	cfg.AdjustTargets = false
	a := NewAnalyzer(cfg)
	p := testprog.Pipeline()
	r, err := a.Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := a.Harden(context.Background(), r, cfg.Epsilon, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Protected) == 0 {
		t.Fatal("nothing protected")
	}
	if h.ResidualSDC > h.PredictedResidual {
		t.Errorf("residual SDC %d exceeds predicted bound %d", h.ResidualSDC, h.PredictedResidual)
	}
	orig := r.FFBadCounts(cfg.Epsilon).Total
	if h.ResidualSDC >= orig {
		t.Errorf("residual SDC %d not below unprotected %d", h.ResidualSDC, orig)
	}
	if h.DetectorCoverage < 0 || h.DetectorCoverage > 1 {
		t.Errorf("detector coverage %v outside [0,1]", h.DetectorCoverage)
	}
	if h.DetectorTriggers == 0 {
		t.Error("no hardened site was caught by a detector trap")
	}
	if h.ProtectionOverhead <= 0 {
		t.Errorf("protection overhead %v not positive", h.ProtectionOverhead)
	}
	if h.Prog.Name != p.Name+"+hardened" {
		t.Errorf("hardened program name %q", h.Prog.Name)
	}

	s := r.Summarize(cfg.Epsilon, nil)
	h.ApplyTo(s)
	if s.ResidualSDC != h.ResidualSDC || s.PredictedResidual != h.PredictedResidual ||
		s.DetectorCoverage != h.DetectorCoverage || s.DetectorTriggers != h.DetectorTriggers ||
		s.ProtectionOverhead != h.ProtectionOverhead || s.HardenedTarget != h.Target {
		t.Errorf("ApplyTo dropped fields: %+v vs %+v", s, h)
	}
}

// TestHardenResidualWithinBound is the protection loop's correctness claim
// on real benchmarks: for fft-small and lud, the hardened program's
// measured residual SDC must stay within the knapsack-predicted bound, and
// the SDC-Bad counts at unprotected instructions must be byte-identical to
// the unhardened campaign — hardening may only remove badness where it
// placed detectors. Runs under the same WAL/resume discipline as a
// production campaign. CI runs this under -race as the harden-e2e gate.
func TestHardenResidualWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("two full injection campaigns per benchmark")
	}
	for _, name := range []string{"fft", "lud"} {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Targets = nil
			cfg.AdjustTargets = false
			cfg.WALDir = t.TempDir()
			cfg.Resume = true
			a := NewAnalyzer(cfg)
			p := bench.MustBuild(name, bench.Small)
			r, err := a.Analyze(p)
			if err != nil {
				t.Fatal(err)
			}
			h, err := a.Harden(context.Background(), r, cfg.Epsilon, 0.95)
			if err != nil {
				t.Fatal(err)
			}

			ffBC := r.FFBadCounts(cfg.Epsilon)
			hardBC := h.Hardened.FFBadCounts(cfg.Epsilon)

			if h.ResidualSDC > h.PredictedResidual {
				t.Errorf("residual SDC %d exceeds predicted bound %d", h.ResidualSDC, h.PredictedResidual)
			}
			if h.ResidualSDC >= ffBC.Total {
				t.Errorf("residual SDC %d not below unprotected %d", h.ResidualSDC, ffBC.Total)
			}
			if h.DetectorTriggers == 0 {
				t.Error("no hardened site was caught by a detector trap")
			}

			// Unprotected instructions must measure exactly as before:
			// detectors only see flips at the instruction they duplicate.
			eff := make(map[prog.StaticID]bool, len(h.Protected))
			for _, id := range h.Protected {
				eff[id] = true
			}
			for id, n := range ffBC.PerStatic {
				if eff[id] {
					continue
				}
				hid, ok := h.Map.OrigToHard[id]
				if !ok {
					t.Fatalf("map missing unprotected %v", id)
				}
				if got := hardBC.PerStatic[hid]; got != n {
					t.Errorf("unprotected %v: hardened bad count %d, unhardened %d", id, got, n)
				}
			}
		})
	}
}
