package core_test

import (
	"strings"
	"testing"

	"fastflip/internal/core"
	"fastflip/internal/testprog"
)

func TestWriteReport(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}

	var withoutBase strings.Builder
	if err := r.WriteReport(&withoutBase, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(withoutBase.String(), "base bad sites") {
		t.Error("report includes baseline column without baseline results")
	}

	a.RunBaseline(r)
	var withBase strings.Builder
	if err := r.WriteReport(&withBase, 0); err != nil {
		t.Fatal(err)
	}
	out := withBase.String()
	if !strings.Contains(out, "base bad sites") {
		t.Error("report missing baseline column")
	}
	// Every static instruction of interest appears exactly once.
	for id := range r.Costs {
		if n := strings.Count(out, id.String()+" "); n != 1 {
			t.Errorf("instruction %v appears %d times", id, n)
		}
	}
	// Rows are ordered by descending FastFlip bad-site count.
	bad := r.FFBadCounts(0)
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	prev := 1 << 30
	for _, line := range lines {
		id := strings.Fields(line)[0]
		n := -1
		for sid, c := range bad.PerStatic {
			if sid.String() == id {
				n = c
			}
		}
		if n < 0 {
			n = 0
		}
		if n > prev {
			t.Fatalf("report not sorted: %q has %d bad sites after %d", id, n, prev)
		}
		prev = n
	}
}
