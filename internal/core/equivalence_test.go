package core

import (
	"reflect"
	"testing"

	"fastflip/internal/bench"
)

// TestCursorEngineMatchesLegacy runs fft-small through the legacy replay
// engine (full checkpoint restore per experiment, section-boundary
// checkpoints only — the pre-cursor engine exactly) and through the default
// cursor/delta engine, and asserts the two are observationally identical:
// the same per-class outcomes for both the FastFlip and baseline campaigns,
// and the same SDC numbers and accounted costs in the Summary. Only the
// engine-work split (clean/faulty instructions) and wall times may differ.
func TestCursorEngineMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full injection campaign")
	}

	run := func(legacy bool) (*Result, *Summary) {
		cfg := DefaultConfig()
		cfg.LegacyReplay = legacy
		if legacy {
			// The historical engine had no dense checkpoints.
			cfg.CheckpointInterval = -1
		}
		a := NewAnalyzer(cfg)
		p := bench.MustBuild("fft", bench.Small)
		r, err := a.Analyze(p)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		a.RunBaseline(r)
		evals, err := a.Evaluate(r, cfg.Epsilon, false)
		if err != nil {
			t.Fatalf("legacy=%v: %v", legacy, err)
		}
		return r, r.Summarize(cfg.Epsilon, evals)
	}

	oldR, oldSum := run(true)
	newR, newSum := run(false)

	if len(oldR.ffClasses) != len(newR.ffClasses) {
		t.Fatalf("ff class count: legacy %d, cursor %d", len(oldR.ffClasses), len(newR.ffClasses))
	}
	for i := range oldR.ffClasses {
		o, n := oldR.ffClasses[i], newR.ffClasses[i]
		if o.class.Key != n.class.Key || o.inst != n.inst {
			t.Fatalf("ff class %d identity differs: %+v vs %+v", i, o.class.Key, n.class.Key)
		}
		if !reflect.DeepEqual(o.out, n.out) {
			t.Errorf("ff class %d (%v inst %d): legacy outcome %+v, cursor outcome %+v",
				i, o.class.Key, o.inst, o.out, n.out)
		}
	}
	if len(oldR.baseClasses) != len(newR.baseClasses) {
		t.Fatalf("baseline class count: legacy %d, cursor %d", len(oldR.baseClasses), len(newR.baseClasses))
	}
	for i := range oldR.baseClasses {
		o, n := oldR.baseClasses[i], newR.baseClasses[i]
		if !reflect.DeepEqual(o.out, n.out) {
			t.Errorf("baseline class %d (%v): legacy outcome %+v, cursor outcome %+v",
				i, o.class.Key, o.out, n.out)
		}
	}

	// The accounted cost model is engine-independent; the work split and
	// wall times are not. Neutralize the latter and the whole summaries
	// must match, SDC numbers included.
	for _, s := range []*Summary{oldSum, newSum} {
		s.FFWall = 0
		s.FFCleanInstrs, s.FFFaultyInstrs = 0, 0
		s.BatchedExperiments, s.BatchReplicasAvg = 0, 0 // legacy has no batch tier
		if s.Baseline != nil {
			s.Baseline.Wall = 0
			s.Baseline.CleanInstrs, s.Baseline.FaultyInstrs = 0, 0
			s.Baseline.BatchedExperiments = 0
		}
	}
	if !reflect.DeepEqual(oldSum, newSum) {
		t.Errorf("summaries differ:\nlegacy: %+v\ncursor: %+v", oldSum, newSum)
	}

	// Sanity: the cursor engine must actually replay less clean prefix
	// than it bills for (that is the point of the rebuild).
	if newR.FFInject.CleanInstrs+newR.FFInject.FaultyInstrs >= newR.FFInject.SimInstrs {
		t.Errorf("cursor engine work %d+%d not below accounted cost %d",
			newR.FFInject.CleanInstrs, newR.FFInject.FaultyInstrs, newR.FFInject.SimInstrs)
	}
}

// TestElisionMatchesExhaustive is the elision tiers' correctness claim on
// a real benchmark: fft-small with static masking and lockstep batching
// (the default) must be byte-identical — every per-class outcome and the
// aggregate outcome statistics — to the exhaustive scalar configuration
// that simulates every experiment individually. Only the accounted-cost
// fields shift: an elided experiment is charged its clean prefix alone.
// CI runs this under -race as the elide-vs-exhaustive equivalence gate.
func TestElisionMatchesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("two full injection campaigns")
	}

	run := func(elide bool) (*Result, *Summary) {
		cfg := DefaultConfig()
		cfg.Elide = elide
		cfg.NoBatch = !elide // exhaustive = scalar forks, no tiers at all
		a := NewAnalyzer(cfg)
		r, err := a.Analyze(bench.MustBuild("fft", bench.Small))
		if err != nil {
			t.Fatalf("elide=%v: %v", elide, err)
		}
		return r, r.Summarize(cfg.Epsilon, nil)
	}

	tiered, tieredSum := run(true)
	exhaustive, exhaustiveSum := run(false)

	if tieredSum.ElidedExperiments == 0 {
		t.Fatal("masking tier elided nothing on fft-small; the comparison is vacuous")
	}
	if tieredSum.BatchedExperiments == 0 {
		t.Fatal("no experiments ran in lockstep batches; the comparison is vacuous")
	}

	if len(tiered.ffClasses) != len(exhaustive.ffClasses) {
		t.Fatalf("class count: tiered %d, exhaustive %d", len(tiered.ffClasses), len(exhaustive.ffClasses))
	}
	for i := range tiered.ffClasses {
		a, b := tiered.ffClasses[i], exhaustive.ffClasses[i]
		if a.class.Key != b.class.Key || a.inst != b.inst {
			t.Fatalf("class %d identity differs: %+v vs %+v", i, a.class.Key, b.class.Key)
		}
		if !reflect.DeepEqual(a.out, b.out) {
			t.Errorf("class %d (%v inst %d): tiered outcome %+v, exhaustive outcome %+v",
				i, a.class.Key, a.inst, a.out, b.out)
		}
	}
	if tieredSum.Outcomes != exhaustiveSum.Outcomes {
		t.Errorf("outcome stats differ:\ntiered:     %+v\nexhaustive: %+v",
			tieredSum.Outcomes, exhaustiveSum.Outcomes)
	}

	for _, s := range []*Summary{tieredSum, exhaustiveSum} {
		s.FFWall = 0
		s.FFCleanInstrs, s.FFFaultyInstrs = 0, 0
		s.BatchedExperiments, s.BatchReplicasAvg = 0, 0
		// Accounted cost legitimately differs: elided experiments are
		// charged cleanEnd − checkpoint, executed ones add the faulty
		// suffix. Everything outcome-shaped must still match.
		s.FFSimInstrs = 0
		s.ElidedExperiments, s.ElidedSimInstrs = 0, 0
	}
	if !reflect.DeepEqual(tieredSum, exhaustiveSum) {
		t.Errorf("summaries differ:\ntiered:     %+v\nexhaustive: %+v", tieredSum, exhaustiveSum)
	}
}
