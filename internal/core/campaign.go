package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"fastflip/internal/errfs"
	"fastflip/internal/inject"
	"fastflip/internal/mix"
	"fastflip/internal/spec"
	"fastflip/internal/store"
	"fastflip/internal/trace"
)

// manifestName and lockName are the fixed files inside a campaign
// directory; everything else in it is a per-section WAL segment.
const (
	manifestName = "campaign.manifest"
	lockName     = "campaign.lock"
)

// campaign is the write-ahead state of one Analyze run: a directory of
// per-section WAL segments plus a versioned manifest, exclusively locked
// for the duration of the analysis. A nil *campaign (or one that failed to
// acquire its lock) degrades every method to a no-op, so AnalyzeContext
// can call through unconditionally.
type campaign struct {
	dir          string
	manifestPath string
	manifest     *store.Manifest
	lock         *os.File
	walFP        uint64 // per-segment header fingerprint (trace ⊕ config)
	resume       bool
	disabled     bool
	fs           errfs.FS           // seam for all WAL/manifest writes
	retry        inject.RetryPolicy // backoff for transient write failures

	mu       sync.Mutex
	notes    []string
	degraded bool // latched when any section's segment degraded
}

// openCampaign prepares the campaign directory for p under walDir. With
// resume set, a matching manifest keeps its section segments; a missing or
// mismatched manifest (different trace, config, or format version) wipes
// them. Without resume, the directory is always wiped. A held lock —
// another process or job is running the same campaign — disables the WAL
// for this run instead of failing the analysis.
func openCampaign(walDir string, p *spec.Program, t *trace.Trace, cfg Config) (*campaign, error) {
	fsys := cfg.FaultFS
	if fsys == nil {
		fsys = errfs.OS()
	}
	dir := filepath.Join(walDir, sanitizeName(p.Name))
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: wal campaign: %w", err)
	}
	traceFP := t.Fingerprint()
	configFP := configFingerprint(cfg)
	c := &campaign{
		dir:          dir,
		manifestPath: filepath.Join(dir, manifestName),
		walFP:        mix.Fold(traceFP, configFP),
		resume:       cfg.Resume,
		fs:           fsys,
		retry:        cfg.WALRetry,
	}

	// The lock is flock-based so it dies with the process: a SIGKILLed
	// campaign never wedges its successor.
	lf, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("core: wal campaign: %w", err)
	}
	if err := syscall.Flock(int(lf.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lf.Close()
		c.disabled = true
		c.note(fmt.Sprintf("campaign %s is locked by another run; continuing without WAL", dir))
		return c, nil
	}
	c.lock = lf

	if cfg.Resume {
		switch m, err := store.LoadManifest(c.manifestPath); {
		case err == nil && m.Matches(traceFP, configFP):
			c.manifest = m
		case err == nil:
			c.note(fmt.Sprintf("campaign %s: manifest belongs to a different trace or config; starting fresh", dir))
		case !errors.Is(err, os.ErrNotExist):
			c.note(fmt.Sprintf("campaign %s: discarding unreadable manifest (%v)", dir, err))
		}
	}
	if c.manifest == nil {
		// Fresh campaign: stale segments from any previous identity must
		// not be picked up by per-section opens.
		if err := c.wipeSegments(); err != nil {
			c.closeCampaign()
			return nil, err
		}
		c.manifest = store.NewManifest(p.Name, traceFP, configFP)
		if err := c.manifest.SaveFS(c.fs, c.manifestPath); err != nil {
			c.closeCampaign()
			return nil, err
		}
	}
	return c, nil
}

// openSection opens (or recovers) the WAL segment of one section. Errors
// and torn-tail truncations are demoted to notes: a broken segment costs
// re-injection, never the analysis.
func (c *campaign) openSection(key store.Key) (*inject.SectionWAL, *inject.Recovered) {
	if c == nil || c.disabled {
		return nil, nil
	}
	w, rec, err := inject.OpenSectionWALOpts(c.dir, key, c.walFP, c.resume, inject.WALOptions{FS: c.fs, Retry: c.retry})
	if err != nil {
		c.note(fmt.Sprintf("section %s: wal disabled: %v", key, err))
		return nil, nil
	}
	if rec.TruncatedBytes > 0 {
		c.note(fmt.Sprintf("section %s: truncated %d bytes of torn wal tail, %d experiments recovered", key, rec.TruncatedBytes, len(rec.Records)))
	}
	if n := len(rec.Poisoned); n > 0 {
		c.note(fmt.Sprintf("section %s: %d poison record(s) from a previous run; their classes will be re-executed", key, n))
	}
	c.setStatus(key, store.SectionStatus{Experiments: len(rec.Records), Sealed: rec.Sealed})
	return w, rec
}

// markSealed records a finished section in the manifest.
func (c *campaign) markSealed(key store.Key, experiments int) {
	if c == nil || c.disabled {
		return
	}
	c.setStatus(key, store.SectionStatus{Experiments: experiments, Sealed: true})
}

// markPartial records an interrupted section in the manifest.
func (c *campaign) markPartial(key store.Key, experiments int) {
	if c == nil || c.disabled {
		return
	}
	c.setStatus(key, store.SectionStatus{Experiments: experiments, Sealed: false})
}

func (c *campaign) setStatus(key store.Key, st store.SectionStatus) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.manifest.Sections[key] = st
	if err := c.manifest.SaveFS(c.fs, c.manifestPath); err != nil {
		c.notes = append(c.notes, fmt.Sprintf("campaign manifest: %v", err))
	}
}

// setDegraded latches the campaign's degraded flag after key's segment
// hit a persistent write failure. The analysis continues memory-only for
// that section; the flag surfaces as Result.WALDegraded so callers know a
// resume will re-inject it.
func (c *campaign) setDegraded(key store.Key) {
	if c == nil || c.disabled {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degraded = true
	c.notes = append(c.notes, fmt.Sprintf("section %s: wal degraded after persistent write failure; section results are memory-only", key))
}

// wasDegraded reports whether any section's segment degraded this run.
func (c *campaign) wasDegraded() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// note appends a non-fatal WAL anomaly for Result.WALNotes.
func (c *campaign) note(s string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.notes = append(c.notes, s)
}

// takeNotes returns the accumulated notes.
func (c *campaign) takeNotes() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.notes...)
}

// closeCampaign releases the campaign lock.
func (c *campaign) closeCampaign() {
	if c == nil || c.lock == nil {
		return
	}
	syscall.Flock(int(c.lock.Fd()), syscall.LOCK_UN)
	c.lock.Close()
	c.lock = nil
}

// wipeSegments removes every WAL segment and the manifest from the
// campaign directory (the lock file stays: it is held).
func (c *campaign) wipeSegments() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("core: wal campaign: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == lockName {
			continue
		}
		if name == manifestName || strings.HasSuffix(name, ".wal") {
			if err := os.Remove(filepath.Join(c.dir, name)); err != nil {
				return fmt.Errorf("core: wal campaign: %w", err)
			}
		}
	}
	return nil
}

// configFingerprint hashes the configuration knobs that change experiment
// outcomes, class enumeration, or cost accounting — the parts a WAL
// segment's contents depend on. Knobs that only change scheduling
// (Workers) or downstream evaluation (Targets, Epsilon) are deliberately
// excluded so they do not invalidate a resumable campaign.
func configFingerprint(cfg Config) uint64 {
	b := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	acc := mix.Splitmix64(uint64(store.ManifestVersion))
	acc = mix.Fold(acc, b(cfg.Prune))
	acc = mix.Fold(acc, uint64(cfg.BurstWidth))
	acc = mix.Fold(acc, b(cfg.CoRunBaseline))
	acc = mix.Fold(acc, b(cfg.LegacyReplay))
	acc = mix.Fold(acc, b(cfg.Elide))
	acc = mix.Fold(acc, uint64(cfg.Sens.Samples))
	acc = mix.Fold(acc, math.Float64bits(cfg.Sens.PhiMax))
	acc = mix.Fold(acc, uint64(cfg.Sens.Seed))
	return acc
}

// sanitizeName maps a program name onto a safe directory name.
func sanitizeName(name string) string {
	if name == "" {
		return "program"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		default:
			return '-'
		}
	}, name)
}
