package core

import (
	"context"

	"fastflip/internal/inject"
	"fastflip/internal/metrics"
	"fastflip/internal/mix"
	"fastflip/internal/sites"
	"fastflip/internal/store"
	"fastflip/internal/trace"
)

// SectionInjector is the seam a distributed coordinator plugs into the
// analysis pipeline: when Config.SectionInjector is set, AnalyzeContext
// hands every section campaign to it instead of the in-process engine.
// The implementation must deliver outcomes equivalent to
// inject.Injector.RunSectionResume (or the co-run variant) under the same
// hooks contract: Record for every fresh experiment, Poison for every
// quarantine, Skip honored, and full-length outcome slices with the
// skipped slots left zero for the caller to fill from recovery.
//
// The interface lives in core (not coord) so coord can depend on core's
// Config and Result types without an import cycle.
type SectionInjector interface {
	InjectSection(ctx context.Context, job SectionJob) (SectionResult, error)
}

// SectionJob is one section campaign delegated through the
// SectionInjector seam.
type SectionJob struct {
	// Trace is the recorded trace the campaign runs against.
	Trace *trace.Trace
	// Instance indexes Trace.Instances at the section instance to inject.
	Instance int
	// Key is the section's content key (WAL segment identity).
	Key store.Key
	// Classes is the section's equivalence-class enumeration, in class
	// order (not dyn order — implementations derive the schedule with
	// inject.DynOrder).
	Classes []*sites.Class
	// Hooks carries the campaign's Skip vector and Record/Poison/Shard
	// callbacks. Implementations must invoke Record exactly once per fresh
	// experiment and Shard once per merged remote stream.
	Hooks inject.CampaignHooks
	// CoRun requests co-run end-to-end outcomes (§4.10).
	CoRun bool
	// Config is the full analysis configuration, for fingerprint
	// validation and engine knobs (BurstWidth, Prune, LegacyReplay, ...).
	Config Config
}

// SectionResult is what a SectionInjector delivers for one section.
type SectionResult struct {
	// Outcomes has one entry per job class (class order). Slots whose
	// Skip bit was set are zero; the caller fills them from WAL recovery.
	Outcomes []metrics.Outcome
	// Fins are the co-run end-to-end outcomes, nil unless job.CoRun.
	Fins []metrics.Outcome
	// Stats accounts the fresh (non-skipped) experiments, wherever they
	// ran.
	Stats inject.Stats
	// Remote counts the experiments executed by remote workers (the rest
	// ran in a local fallback).
	Remote int
	// Shards counts the remote shard streams merged into the section.
	Shards int
	// HedgedDispatches counts straggler hedges issued while resolving the
	// section; Releases counts finished dispatches that handed unresolved
	// positions back to the work queue for re-lease.
	HedgedDispatches int
	Releases         int
	// Poisoned lists experiments quarantined during the campaign,
	// local or remote.
	Poisoned []inject.Poison
}

// CampaignFingerprint returns the WAL segment header fingerprint of a
// campaign: the trace fingerprint folded with the configuration knobs
// that change experiment outcomes or schedules. A distributed worker
// recomputes it from its own trace and the coordinator's shipped config
// and refuses shards whose fingerprint disagrees — the same stale-state
// gate resume applies to on-disk segments.
func CampaignFingerprint(traceFP uint64, cfg Config) uint64 {
	return mix.Fold(traceFP, configFingerprint(cfg))
}
