package core_test

import (
	"testing"

	"fastflip/internal/core"
	"fastflip/internal/prog"
	"fastflip/internal/testprog"
)

func TestBurstWidthModel(t *testing.T) {
	single := fixtureConfig()
	burst := fixtureConfig()
	burst.BurstWidth = 4

	a1 := core.NewAnalyzer(single)
	r1, err := a1.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a2 := core.NewAnalyzer(burst)
	r2, err := a2.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	// A w-bit burst model has 64-w+1 sites per operand instead of 64.
	if r2.SiteCount >= r1.SiteCount {
		t.Errorf("burst sites %d not below single-bit sites %d", r2.SiteCount, r1.SiteCount)
	}
	ratio := float64(r2.SiteCount) / float64(r1.SiteCount)
	want := 61.0 / 64.0
	if ratio < want-0.001 || ratio > want+0.001 {
		t.Errorf("site ratio = %v, want %v", ratio, want)
	}
	// Wider bursts corrupt more: the SDC-bad fraction must not shrink much.
	bad1 := float64(r1.FFBadCounts(0).Total) / float64(r1.SiteCount)
	bad2 := float64(r2.FFBadCounts(0).Total) / float64(r2.SiteCount)
	if bad2 < bad1*0.8 {
		t.Errorf("burst bad fraction %v collapsed vs single-bit %v", bad2, bad1)
	}
	t.Logf("bad fraction: single=%.3f burst4=%.3f", bad1, bad2)
}

func TestBurstWidthSeparatesStoreEntries(t *testing.T) {
	// Results from different error models must not be confused: the store
	// is keyed by content, not model, so one analyzer must not mix widths.
	// (Using separate analyzers, as here, is the supported pattern.)
	a := core.NewAnalyzer(fixtureConfig())
	if _, err := a.Analyze(testprog.Pipeline()); err != nil {
		t.Fatal(err)
	}
	wide := fixtureConfig()
	wide.BurstWidth = 2
	b := core.NewAnalyzer(wide)
	r, err := b.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReusedInstances != 0 {
		t.Skip("fresh analyzer cannot reuse anything; nothing to check")
	}
}

func TestCustomCostModel(t *testing.T) {
	// A task-level detector cost model: every instruction costs 1
	// regardless of its dynamic count (cheap end-of-block detectors).
	cfg := fixtureConfig()
	cfg.CostModel = func(id prog.StaticID, dyn int) int { return 1 }
	a := core.NewAnalyzer(cfg)
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range r.Costs {
		if c != 1 {
			t.Errorf("cost of %v = %d, want 1", id, c)
		}
	}
	if r.TotalCost != len(r.Costs) {
		t.Errorf("total cost %d != item count %d", r.TotalCost, len(r.Costs))
	}

	// The selection under a flat cost model minimizes the *number* of
	// protected instructions.
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].FF.Cost != len(evals[0].FF.IDs) {
		t.Errorf("selection cost %d != instruction count %d", evals[0].FF.Cost, len(evals[0].FF.IDs))
	}
}

func TestCostModelNegativeClamped(t *testing.T) {
	cfg := fixtureConfig()
	cfg.CostModel = func(id prog.StaticID, dyn int) int { return -5 }
	a := core.NewAnalyzer(cfg)
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalCost != 0 {
		t.Errorf("negative costs not clamped: total %d", r.TotalCost)
	}
}

func TestOutcomeStats(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)

	ff := r.FFOutcomeStats(0)
	if ff.Total() != r.SiteCount {
		t.Errorf("FF stats cover %d sites of %d", ff.Total(), r.SiteCount)
	}
	if ff.SDCBad == 0 || ff.Masked == 0 || ff.Detected == 0 {
		t.Errorf("degenerate distribution: %+v", ff)
	}
	if ff.SDCGood != 0 {
		t.Errorf("eps = 0 cannot have SDC-Good sites: %+v", ff)
	}

	base := r.BaseOutcomeStats(0)
	if base.Total() != r.SiteCount {
		t.Errorf("baseline stats cover %d sites of %d", base.Total(), r.SiteCount)
	}
	if base.Untested != 0 {
		t.Error("baseline has no untested sites by construction")
	}

	// Raising ε converts some SDC-Bad into SDC-Good, never the reverse.
	relaxed := r.FFOutcomeStats(1e6)
	if relaxed.SDCBad+relaxed.Untested > ff.SDCBad+ff.Untested {
		t.Errorf("relaxing eps increased bad sites: %+v vs %+v", relaxed, ff)
	}
	if relaxed.SDCGood == 0 {
		t.Error("huge eps should classify some SDCs as good")
	}
}

func TestCoverage(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	executed, total := r.Trace.Coverage()
	if executed != total {
		t.Errorf("fixture coverage %d/%d, want full (no dead code)", executed, total)
	}
	if total == 0 {
		t.Error("no static instructions of interest")
	}
}
