package core

import (
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
)

// ClassOutcome is the externally comparable record of one injected (or
// reused) error class: which class, in which instance, its per-section
// outcome, and — when a co-run baseline ran — the end-to-end ground-truth
// outcome of the same experiment.
type ClassOutcome struct {
	Key  sites.ClassKey
	Inst int
	Size int
	Out  metrics.Outcome
	// Fin is the co-run end-to-end outcome; nil unless CoRunBaseline.
	Fin *metrics.Outcome
}

// ClassOutcomes returns every per-section class outcome in the analyzer's
// deterministic order. Differential oracles compare these across runs
// (incremental vs scratch, resumed vs uninterrupted, legacy vs cursor
// replay); equality here means the analyses agree experiment by
// experiment, not merely in aggregate.
func (r *Result) ClassOutcomes() []ClassOutcome {
	out := make([]ClassOutcome, 0, len(r.ffClasses))
	for _, rec := range r.ffClasses {
		co := ClassOutcome{
			Key:  rec.class.Key,
			Inst: rec.inst,
			Size: rec.class.Size(),
			Out:  rec.out,
		}
		if rec.fin != nil {
			fin := *rec.fin
			co.Fin = &fin
		}
		out = append(out, co)
	}
	return out
}
