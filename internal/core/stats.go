package core

import "fastflip/internal/metrics"

// OutcomeStats aggregates the injection outcome distribution over all
// error sites — the classic resiliency breakdown (masked / detected /
// SDC-Good / SDC-Bad, §2.1). Counts are in sites, with each equivalence
// class's pilot outcome ascribed to all of its members.
type OutcomeStats struct {
	Masked   int `json:"masked"`
	Detected int `json:"detected"`
	SDCGood  int `json:"sdc_good"` // silent corruption within the ε tolerance
	SDCBad   int `json:"sdc_bad"`  // silent corruption beyond ε
	Untested int `json:"untested"` // sites outside every section, assumed SDC-Bad (FastFlip only)
}

// Total returns the number of classified sites.
func (o OutcomeStats) Total() int {
	return o.Masked + o.Detected + o.SDCGood + o.SDCBad + o.Untested
}

// FFOutcomeStats classifies every site with FastFlip's pipeline: the
// per-section outcome propagated through the composed specification.
func (r *Result) FFOutcomeStats(eps float64) OutcomeStats {
	var o OutcomeStats
	epsVec := r.epsVec(eps)
	for _, rec := range r.ffClasses {
		n := rec.class.Size()
		switch rec.out.Kind {
		case metrics.Masked:
			o.Masked += n
		case metrics.Detected:
			o.Detected += n
		case metrics.SDC:
			if r.Spec.Bad(rec.inst, rec.out.Magnitudes, epsVec) {
				o.SDCBad += n
			} else {
				o.SDCGood += n
			}
		}
	}
	for _, n := range r.untestedBad {
		o.Untested += n
	}
	return o
}

// BaseOutcomeStats classifies every site with the monolithic baseline's
// end-to-end outcomes. RunBaseline must have run.
func (r *Result) BaseOutcomeStats(eps float64) OutcomeStats {
	var o OutcomeStats
	for _, rec := range r.baseClasses {
		n := rec.class.Size()
		switch rec.out.Kind {
		case metrics.Masked:
			o.Masked += n
		case metrics.Detected:
			o.Detected += n
		case metrics.SDC:
			if rec.out.MaxMagnitude() > eps {
				o.SDCBad += n
			} else {
				o.SDCGood += n
			}
		}
	}
	return o
}
