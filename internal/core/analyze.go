// Package core implements the FastFlip analysis pipeline (§4, Figure 2):
//
//  1. per-section error injection + local sensitivity analysis, with
//     store-backed reuse of unmodified sections (§4.2, §4.3, §4.7),
//  2. symbolic end-to-end SDC propagation (§4.4),
//  3. per-instruction protection value computation (Algorithm 2),
//  4. knapsack selection of instructions to protect (§4.6), with adaptive
//     target adjustment against a monolithic baseline (§4.10).
//
// The monolithic Approxilyzer-only baseline the paper compares against is
// implemented alongside (RunBaseline), sharing the trace and injector.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fastflip/internal/chisel"
	"fastflip/internal/errfs"
	"fastflip/internal/inject"
	"fastflip/internal/maskelide"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sens"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/store"
	"fastflip/internal/trace"
)

// Config are the developer-provided analysis parameters (§4.1, §5.6).
type Config struct {
	// Targets are the v_trgt protection values to evaluate.
	Targets []float64
	// Epsilon is the SDC-Bad threshold ε, uniform over final outputs
	// (0 means every SDC is unacceptable).
	Epsilon float64
	// Prune enables Approxilyzer-style equivalence-class pruning. The
	// baseline prunes across the whole trace; FastFlip can only prune
	// within a section instance (§6.2) — that asymmetry is structural,
	// not configurable.
	Prune bool
	// Sens configures the local sensitivity analysis.
	Sens sens.Config
	// Workers bounds injection parallelism (0 = GOMAXPROCS).
	Workers int
	// PilotInaccuracy is the benchmark-specific pilot misprediction rate
	// used for the value error range (§5.6 "Pruning error range").
	PilotInaccuracy float64
	// BurstWidth is the error model's burst width in bits: 1 is the
	// paper's single-event-upset model, larger values flip that many
	// adjacent bits per injection (§4.8's multi-bit error models).
	BurstWidth int
	// CostModel, when non-nil, overrides the protection cost of a static
	// instruction given its dynamic instance count. The default models
	// instruction duplication (cost = dynamic instances, §5.3); externally
	// supplied models can price task-level detectors instead (§4.8).
	CostModel func(id prog.StaticID, dynCount int) int
	// StrictReuseKeys keys section reuse on the entry contents of output
	// and live buffers in addition to the declared inputs
	// (store.KeyForStrict). Under strict keys an incremental re-analysis
	// reproduces a from-scratch analysis experiment for experiment, even
	// when a fault-deflected load observes state outside the declared
	// inputs; the default (paper) keys reuse more aggressively and accept
	// that divergence (see DESIGN.md §10).
	StrictReuseKeys bool
	// CoRunBaseline lets every per-section experiment continue to program
	// termination and records the end-to-end outcome too (§4.10's
	// simultaneous monolithic analysis). Evaluate can then use the co-run
	// labels as ground truth without a separate RunBaseline campaign.
	CoRunBaseline bool
	// AdjustTargets enables adaptive target adjustment (§4.10).
	AdjustTargets bool
	// PAdj is the number of accumulated modifications after which the
	// adjusted targets are recomputed from a fresh baseline.
	PAdj int
	// CheckpointInterval is the dense replay-checkpoint spacing in dynamic
	// instructions passed to trace recording: 0 uses the trace package
	// default, negative disables dense checkpoints (section boundaries
	// only). Denser checkpoints trade recording memory for shorter clean
	// replays.
	CheckpointInterval int64
	// LegacyReplay selects the pre-cursor injection engine (full checkpoint
	// restore + per-experiment clean replay). Outcomes are identical; this
	// exists for equivalence testing and engine comparisons.
	LegacyReplay bool
	// Elide enables the static masking tier: a backward bit-liveness
	// analysis over the linked program proves some operand bursts dead
	// (never observed by any later instruction), and the campaign records
	// those classes as Masked at their accounted cost without simulating
	// them. Outcomes are identical with or without elision; only executed
	// work shrinks. Part of the campaign fingerprint because recovered
	// records carry elision cost shares.
	Elide bool
	// NoBatch disables the lockstep batch replay tier: same-dyn experiment
	// groups then fork one scalar machine each. Outcomes and accounted
	// costs are identical either way (the escape hatch / equivalence seam);
	// excluded from the campaign fingerprint.
	NoBatch bool
	// WALDir, when non-empty, enables the write-ahead campaign log: every
	// completed experiment is appended to a per-section segment under
	// <WALDir>/<program>/ before the campaign proceeds, so a crashed
	// analysis can resume at experiment granularity.
	WALDir string
	// Resume makes Analyze recover a matching campaign from WALDir —
	// logged experiments are merged instead of re-executed and only the
	// remainder is scheduled. Without Resume, existing campaign state for
	// the program is wiped and the log starts fresh. Ignored when WALDir
	// is empty.
	Resume bool
	// FaultFS, when non-nil, routes all campaign WAL and manifest I/O
	// through the given filesystem seam so chaos tests can inject write
	// faults; nil uses the real filesystem. Excluded from the campaign
	// fingerprint: it changes durability, never outcomes.
	FaultFS errfs.FS
	// WALRetry overrides the backoff policy applied to transient WAL write
	// failures (zero value = package defaults). Excluded from the campaign
	// fingerprint.
	WALRetry inject.RetryPolicy
	// ExperimentPanicHook is installed as inject.Injector.PanicHook: a test
	// seam invoked at the start of every experiment attempt, used to force
	// panics and exercise the supervision path. Production leaves it nil.
	// Excluded from the campaign fingerprint.
	ExperimentPanicHook func(class, attempt int)
	// SectionInjector, when non-nil, delegates every section campaign to a
	// distributed coordinator instead of the in-process engine. Excluded
	// from the campaign fingerprint: sharding changes where experiments
	// run, never their outcomes, so local and distributed campaigns share
	// WAL segments and resume into each other.
	SectionInjector SectionInjector
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		Targets:         []float64{0.90, 0.95, 0.99},
		Epsilon:         0,
		Prune:           true,
		BurstWidth:      1,
		Sens:            sens.DefaultConfig(),
		PilotInaccuracy: 0.04,
		AdjustTargets:   true,
		PAdj:            10,
		Elide:           true,
	}
}

// classRecord pairs an equivalence class of the current trace with its
// (possibly reused) injection outcome.
type classRecord struct {
	class *sites.Class
	out   metrics.Outcome
	// fin is the co-run end-to-end outcome (CoRunBaseline only).
	fin  *metrics.Outcome
	inst int // instance index for per-section records; -1 for monolithic
}

// Result is the analysis of one program version.
type Result struct {
	Cfg   Config
	Prog  *spec.Program
	Trace *trace.Trace

	// SiteCount is |J|, the number of error sites in the ROI.
	SiteCount int
	// Spec is the composed end-to-end SDC propagation specification.
	Spec *chisel.Spec
	// Amps holds the per-instance sensitivity matrices (indexed like
	// Trace.Instances).
	Amps []*sens.Amplification

	ffClasses []classRecord
	// untestedBad counts, per static instruction, the sites outside every
	// section, which FastFlip conservatively labels SDC-Bad (§4.9 s⊥).
	untestedBad   map[prog.StaticID]int
	UntestedSites int

	baseClasses []classRecord

	// Costs is c(pc): dynamic instances per static instruction of interest.
	Costs     map[prog.StaticID]int
	TotalCost int

	// Cost accounting (the paper's core-hours proxy).
	FFInject   inject.Stats
	FFSens     sens.Stats
	BaseInject inject.Stats
	FFWall     time.Duration
	BaseWall   time.Duration

	// FFRecovered is the portion of FFInject merged from a write-ahead log
	// instead of re-executed; newly simulated work is FFInject minus
	// FFRecovered. Zero unless Cfg.WALDir and Cfg.Resume are set.
	FFRecovered inject.Stats
	// WALNotes records non-fatal write-ahead-log anomalies: torn tails
	// truncated during recovery, lock conflicts, discarded stale state.
	WALNotes []string
	// WALDegraded reports that at least one section's WAL segment hit a
	// persistent write failure: the analysis completed, but that section's
	// results are memory-only and a resume will re-inject it.
	WALDegraded bool
	// Poisoned lists the experiments quarantined after panicking twice;
	// their outcome slots carry the conservative SDC-Bad fill.
	Poisoned []inject.Poison
	// RemoteExperiments counts experiments executed by remote shard
	// workers through Cfg.SectionInjector (included in FFInject); zero for
	// a purely local campaign.
	RemoteExperiments int
	// ShardsMerged counts the remote shard streams merged into this
	// campaign.
	ShardsMerged int
	// HedgedDispatches counts straggler shard leases re-dispatched to an
	// idle worker while the original was still streaming; Releases counts
	// finished dispatches that returned unresolved work to the lease
	// queue. Zero for a purely local campaign.
	HedgedDispatches int
	Releases         int
	// PanicRetries counts experiment attempts that panicked and were
	// retried on fresh machines (the retried runs are indistinguishable in
	// cost accounting from panic-free ones).
	PanicRetries int

	ReusedInstances   int
	InjectedInstances int
}

// ResumedExperiments returns the number of experiments recovered from the
// write-ahead log rather than re-executed.
func (r *Result) ResumedExperiments() int { return r.FFRecovered.Experiments }

// FFCost returns FastFlip's total analysis cost in simulated instructions.
func (r *Result) FFCost() uint64 { return r.FFInject.SimInstrs + r.FFSens.SimInstrs }

// BaseCost returns the monolithic baseline's analysis cost.
func (r *Result) BaseCost() uint64 { return r.BaseInject.SimInstrs }

// Progress is a live snapshot of an Analyze campaign, reported through
// Analyzer.Progress after each section instance completes. Instances is
// the total number of section instances in the trace; Done = Reused +
// Injected counts the instances resolved so far.
type Progress struct {
	Instances   int    `json:"instances"`
	Done        int    `json:"done"`
	Reused      int    `json:"reused"`
	Injected    int    `json:"injected"`
	Experiments int    `json:"experiments"`
	SimInstrs   uint64 `json:"sim_instrs"`
	// CleanInstrs/FaultyInstrs split the injection engine's actual work:
	// clean-prefix replay vs post-flip execution. SimInstrs above stays the
	// paper's accounted cost model.
	CleanInstrs  uint64 `json:"clean_instrs"`
	FaultyInstrs uint64 `json:"faulty_instrs"`
	// ResumedExperiments counts experiments recovered from a write-ahead
	// log instead of re-executed (included in Experiments).
	ResumedExperiments int `json:"resumed_experiments"`
	// ElidedExperiments counts experiments resolved by the static masking
	// tier without simulation (included in Experiments); ElidedInstrs is
	// their accounted-but-never-simulated cost (included in SimInstrs).
	ElidedExperiments int    `json:"elided_experiments"`
	ElidedInstrs      uint64 `json:"elided_sim_instrs"`
	// Batches/BatchExperiments describe the lockstep replay tier: how many
	// batch dispatch groups ran and how many experiments they covered.
	Batches          int `json:"batches"`
	BatchExperiments int `json:"batch_experiments"`
	// WALDegraded reports that the campaign's write-ahead log latched off
	// after a persistent write failure; the analysis continues memory-only.
	WALDegraded bool `json:"wal_degraded,omitempty"`
	// Poisoned counts experiments quarantined by the panic supervisor.
	Poisoned int `json:"poisoned,omitempty"`
}

// Analyzer runs FastFlip over successive versions of a program, reusing
// per-section results through its Store.
type Analyzer struct {
	Cfg   Config
	Store *store.Store
	// Progress, when non-nil, is called from the analyzing goroutine once
	// before the first section instance and once after each instance
	// completes (reused or injected). It must be fast and must not call
	// back into the Analyzer.
	Progress func(Progress)
}

// NewAnalyzer returns an analyzer with a fresh store.
func NewAnalyzer(cfg Config) *Analyzer {
	return &Analyzer{Cfg: cfg, Store: store.New()}
}

// Analyze runs the FastFlip per-section analysis of p: trace, per-section
// injection (with reuse), sensitivity, and symbolic composition.
func (a *Analyzer) Analyze(p *spec.Program) (*Result, error) {
	return a.AnalyzeContext(context.Background(), p)
}

// AnalyzeContext is Analyze with cancellation: when ctx is cancelled the
// in-flight injection campaign stops between experiments and the call
// returns ctx.Err(). Sections fully analyzed before the cancellation have
// already been stored, so a later retry reuses them.
func (a *Analyzer) AnalyzeContext(ctx context.Context, p *spec.Program) (*Result, error) {
	started := time.Now()
	t, err := trace.RecordWith(p, trace.Options{CheckpointInterval: a.Cfg.CheckpointInterval})
	if err != nil {
		return nil, err
	}
	siteOpts := sites.Options{Prune: a.Cfg.Prune, Width: a.Cfg.BurstWidth}
	if a.Cfg.Elide {
		siteOpts.Masks = maskelide.Analyze(t.Prog.Linked)
	}
	r := &Result{
		Cfg:         a.Cfg,
		Prog:        p,
		Trace:       t,
		SiteCount:   sites.Count(t, siteOpts),
		untestedBad: make(map[prog.StaticID]int),
	}
	inj := &inject.Injector{T: t, Workers: a.Cfg.Workers, Legacy: a.Cfg.LegacyReplay, NoBatch: a.Cfg.NoBatch, PanicHook: a.Cfg.ExperimentPanicHook}

	var cam *campaign
	if a.Cfg.WALDir != "" {
		if cam, err = openCampaign(a.Cfg.WALDir, p, t, a.Cfg); err != nil {
			return nil, err
		}
		defer func() {
			r.WALNotes = cam.takeNotes()
			r.WALDegraded = cam.wasDegraded()
			cam.closeCampaign()
		}()
	}
	var remotePoisoned []inject.Poison
	defer func() {
		r.Poisoned = append(inj.Poisoned(), remotePoisoned...)
		r.PanicRetries = inj.PanicRetries()
	}()

	report := func() {
		if a.Progress != nil {
			a.Progress(Progress{
				Instances:          len(t.Instances),
				Done:               r.ReusedInstances + r.InjectedInstances,
				Reused:             r.ReusedInstances,
				Injected:           r.InjectedInstances,
				Experiments:        r.FFInject.Experiments,
				SimInstrs:          r.FFCost(),
				CleanInstrs:        r.FFInject.CleanInstrs,
				FaultyInstrs:       r.FFInject.FaultyInstrs,
				ResumedExperiments: r.FFRecovered.Experiments,
				ElidedExperiments:  r.FFInject.ElidedExperiments,
				ElidedInstrs:       r.FFInject.ElidedInstrs,
				Batches:            r.FFInject.Batches,
				BatchExperiments:   r.FFInject.BatchExperiments,
				WALDegraded:        cam.wasDegraded(),
				Poisoned:           len(inj.Poisoned()),
			})
		}
	}
	report()

	r.Amps = make([]*sens.Amplification, len(t.Instances))
	for idx, inst := range t.Instances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		classes := sites.ForInstance(t, inst, siteOpts)
		var key store.Key
		var keyErr error
		if a.Cfg.StrictReuseKeys {
			key, keyErr = store.KeyForStrict(t, inst)
		} else {
			key, keyErr = store.KeyFor(t, inst)
		}
		if keyErr != nil {
			// A buffer declaration outside the machine's memory: the spec
			// is malformed, and an unkeyable section can neither reuse nor
			// publish results. Fail the job instead of panicking it.
			return nil, fmt.Errorf("core: computing reuse key for instance %d: %w", idx, keyErr)
		}
		if st := a.storeLookup(key, classes); st != nil {
			for _, c := range classes {
				rec := classRecord{class: c, out: st.Outcomes[c.Key].ToMetrics(), inst: idx}
				if st.Final != nil {
					fin := st.Final[c.Key].ToMetrics()
					rec.fin = &fin
				}
				r.ffClasses = append(r.ffClasses, rec)
			}
			r.Amps[idx] = &sens.Amplification{K: st.Amp}
			r.ReusedInstances++
			report()
			continue
		}

		// Open this section's write-ahead segment. Experiments recovered
		// from it are marked in skip and merged instead of re-executed;
		// everything the engine runs is appended through the record hook
		// before the campaign moves on.
		wal, recovered := cam.openSection(key)
		var skip []bool
		var recStats inject.Stats
		nRecovered := 0
		if wal != nil && len(recovered.Records) > 0 {
			skip = make([]bool, len(classes))
			for i, c := range classes {
				if rec, ok := recovered.Records[c.Key]; ok && (!a.Cfg.CoRunBaseline || rec.Fin != nil) {
					skip[i] = true
					nRecovered++
					recStats.Add(rec.Cost)
				}
			}
		}
		hooks := inject.CampaignHooks{Skip: skip}
		if wal != nil {
			var appendErr sync.Once
			hooks.Record = func(i int, out metrics.Outcome, fin *metrics.Outcome, cost inject.Stats) {
				if err := wal.Append(inject.WALRecord{Key: classes[i].Key, Out: out, Fin: fin, Cost: cost}); err != nil {
					appendErr.Do(func() { cam.note(fmt.Sprintf("section %s: wal append: %v", key, err)) })
				}
			}
			hooks.Poison = func(p inject.Poison) {
				if err := wal.AppendPoison(inject.WALPoison{Key: p.Key, Attempts: p.Attempts, MachineFP: p.MachineFP, Stack: p.Stack}); err != nil {
					cam.note(fmt.Sprintf("section %s: wal poison append: %v", key, err))
				}
			}
			hooks.Shard = func(s inject.WALShard) {
				if err := wal.AppendShard(s); err != nil {
					cam.note(fmt.Sprintf("section %s: wal shard append: %v", key, err))
				}
			}
		}

		var outcomes, fins []metrics.Outcome
		var stats inject.Stats
		if a.Cfg.SectionInjector != nil {
			res, derr := a.Cfg.SectionInjector.InjectSection(ctx, SectionJob{
				Trace:    t,
				Instance: idx,
				Key:      key,
				Classes:  classes,
				Hooks:    hooks,
				CoRun:    a.Cfg.CoRunBaseline,
				Config:   a.Cfg,
			})
			if derr != nil {
				if wal != nil {
					cam.markPartial(key, wal.Count())
					wal.Close()
				}
				return nil, derr
			}
			outcomes, fins, stats = res.Outcomes, res.Fins, res.Stats
			r.RemoteExperiments += res.Remote
			r.ShardsMerged += res.Shards
			r.HedgedDispatches += res.HedgedDispatches
			r.Releases += res.Releases
			remotePoisoned = append(remotePoisoned, res.Poisoned...)
		} else if a.Cfg.CoRunBaseline {
			outcomes, fins, stats = inj.RunSectionCoRunResume(ctx, inst, classes, hooks)
		} else {
			outcomes, stats = inj.RunSectionResume(ctx, inst, classes, hooks)
		}
		r.FFInject.Add(stats)
		if err := ctx.Err(); err != nil {
			// The campaign was cut short: the outcome slices are partial
			// and must not be recorded or stored. The WAL keeps every
			// completed experiment for the retry.
			if wal != nil {
				cam.markPartial(key, wal.Count())
				wal.Close()
			}
			return nil, err
		}
		// Fill the skipped slots from the recovered records so the merged
		// section is indistinguishable from an uninterrupted campaign.
		for i := range classes {
			if i < len(skip) && skip[i] {
				rec := recovered.Records[classes[i].Key]
				outcomes[i] = rec.Out
				if fins != nil && rec.Fin != nil {
					fins[i] = *rec.Fin
				}
			}
		}
		r.FFInject.Add(recStats)
		r.FFRecovered.Add(recStats)

		// A fully recovered, sealed section reuses its logged sensitivity
		// matrix; otherwise the (deterministic) estimation reruns and the
		// segment is sealed behind it.
		var amp *sens.Amplification
		if nRecovered == len(classes) && recovered.Amp != nil {
			amp = &sens.Amplification{K: recovered.Amp.K}
			r.FFSens.Runs += recovered.Amp.Runs
			r.FFSens.SimInstrs += recovered.Amp.SimInstrs
		} else {
			var sstats sens.Stats
			amp, sstats = sens.Analyze(t, inst, a.Cfg.Sens)
			r.FFSens.Runs += sstats.Runs
			r.FFSens.SimInstrs += sstats.SimInstrs
			if wal != nil {
				if err := wal.AppendAmp(inject.WALAmp{K: amp.K, Runs: sstats.Runs, SimInstrs: sstats.SimInstrs}); err != nil {
					cam.note(fmt.Sprintf("section %s: wal amp append: %v", key, err))
				}
			}
		}
		if wal != nil {
			if !recovered.Sealed && !wal.Degraded() {
				if err := wal.Seal(); err != nil {
					cam.note(fmt.Sprintf("section %s: wal seal: %v", key, err))
				}
			}
			if wal.Degraded() {
				// The segment latched off after a persistent write failure.
				// This section's results live only in memory — the manifest
				// keeps it partial so a resume re-injects the unlogged
				// remainder — and the next section re-arms the log with a
				// fresh segment.
				cam.setDegraded(key)
				cam.markPartial(key, wal.Count())
			} else {
				cam.markSealed(key, wal.Count())
			}
			wal.Close()
		}
		r.Amps[idx] = amp
		r.InjectedInstances++

		secStats := recStats
		secStats.Add(stats)
		stored := &store.Section{
			Outcomes:  make(map[sites.ClassKey]store.Outcome, len(classes)),
			Amp:       amp.K,
			SimInstrs: secStats.SimInstrs,
		}
		if fins != nil {
			stored.Final = make(map[sites.ClassKey]store.Outcome, len(classes))
		}
		for i, c := range classes {
			rec := classRecord{class: c, out: outcomes[i], inst: idx}
			if fins != nil {
				rec.fin = &fins[i]
				stored.Final[c.Key] = store.FromMetrics(fins[i])
			}
			r.ffClasses = append(r.ffClasses, rec)
			stored.Outcomes[c.Key] = store.FromMetrics(outcomes[i])
		}
		if a.Store != nil {
			a.Store.Put(key, stored)
		}
		report()
	}

	// Untested sites: conservatively SDC-Bad, no injection cost.
	dyns, count := sites.Untested(t, siteOpts)
	r.UntestedSites = count
	per := sites.SitesPerOperand(a.Cfg.BurstWidth)
	for _, d := range dyns {
		in := t.Prog.Linked.Code[t.PCs[d]]
		n := len(in.Operands(nil)) * per
		r.untestedBad[t.StaticIDOfDyn(d)] += n
	}

	if r.Spec, err = chisel.Compose(t, r.Amps); err != nil {
		return nil, err
	}

	r.Costs, r.TotalCost = costModel(t, a.Cfg.CostModel)
	r.FFWall = time.Since(started)
	return r, nil
}

// storeLookup returns the stored section for key only if it covers every
// class of the current enumeration; a partial entry is unusable.
func (a *Analyzer) storeLookup(key store.Key, classes []*sites.Class) *store.Section {
	if a.Store == nil {
		return nil
	}
	st := a.Store.Lookup(key)
	if st == nil {
		return nil
	}
	if a.Cfg.CoRunBaseline && st.Final == nil {
		return nil // stored without co-run labels; re-analyze to get them
	}
	for _, c := range classes {
		if _, ok := st.Outcomes[c.Key]; !ok {
			return nil
		}
	}
	return st
}

// RunBaseline runs the monolithic Approxilyzer-only analysis on the same
// trace: inject every (pruned) site and compare final outputs.
func (a *Analyzer) RunBaseline(r *Result) {
	// The background context never cancels, so the campaign always
	// completes and the error can be ignored.
	_ = a.RunBaselineContext(context.Background(), r)
}

// RunBaselineContext is RunBaseline with cancellation: when ctx is
// cancelled the campaign stops between experiments, r is left without
// baseline results, and ctx.Err() is returned.
func (a *Analyzer) RunBaselineContext(ctx context.Context, r *Result) error {
	started := time.Now()
	inj := &inject.Injector{T: r.Trace, Workers: a.Cfg.Workers, Legacy: a.Cfg.LegacyReplay, NoBatch: a.Cfg.NoBatch}
	siteOpts := sites.Options{Prune: a.Cfg.Prune, Width: a.Cfg.BurstWidth}
	if a.Cfg.Elide {
		siteOpts.Masks = maskelide.Analyze(r.Trace.Prog.Linked)
	}
	classes := sites.Global(r.Trace, siteOpts)
	outcomes, stats := inj.RunMonolithic(ctx, classes)
	if err := ctx.Err(); err != nil {
		return err
	}
	r.BaseInject = stats
	r.baseClasses = r.baseClasses[:0]
	for i, c := range classes {
		r.baseClasses = append(r.baseClasses, classRecord{class: c, out: outcomes[i], inst: -1})
	}
	r.BaseWall = time.Since(started)
	return nil
}

// NoteModification tells the analyzer that the next Analyze call is for a
// modified program version; it advances the m_adj counter of §4.10.
func (a *Analyzer) NoteModification() {
	if a.Store != nil {
		a.Store.ModsSinceAdjust++
	}
}

// costModel computes c(pc) for every static instruction of interest (those
// with at least one register operand) in the region of interest. The
// default prices instruction duplication: cost = dynamic instances. An
// external model maps (instruction, dynamic count) to a custom cost.
func costModel(t *trace.Trace, custom func(prog.StaticID, int) int) (map[prog.StaticID]int, int) {
	counts := make(map[prog.StaticID]int)
	for d := t.ROIBeg + 1; d < t.ROIEnd; d++ {
		in := t.Prog.Linked.Code[t.PCs[d]]
		if len(in.Operands(nil)) == 0 {
			continue
		}
		counts[t.StaticIDOfDyn(d)]++
	}
	total := 0
	costs := make(map[prog.StaticID]int, len(counts))
	for id, n := range counts {
		c := n
		if custom != nil {
			c = custom(id, n)
			if c < 0 {
				c = 0
			}
		}
		costs[id] = c
		total += c
	}
	return costs, total
}

// FormatSpec renders the end-to-end specification for final output λ in
// the style of the paper's Equation 2, with φ variables named by section
// and occurrence, e.g. "4174.8·phi[LU0.1,out0]".
func (r *Result) FormatSpec(λ int) string {
	e := r.Spec.Final[λ]
	out := ""
	for i, v := range e.Vars() {
		if i > 0 {
			out += " + "
		}
		inst := r.Trace.Instances[v.Inst]
		name := r.Prog.Sections[inst.Sec].Name
		coef := e.Coef(v)
		if coef == 1 {
			out += fmt.Sprintf("phi[%s#%d.%d]", name, inst.Occur, v.Out)
		} else {
			out += fmt.Sprintf("%.4g*phi[%s#%d.%d]", coef, name, inst.Occur, v.Out)
		}
	}
	if out == "" {
		out = "0"
	}
	return out
}
