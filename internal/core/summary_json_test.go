package core

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// fullSummary populates every field, including the omitempty degraded/
// poisoned/resumed bookkeeping introduced by the WAL and fault-containment
// work — the fields the ffserved API and fastflip -json must not drop.
func fullSummary() *Summary {
	return &Summary{
		Bench:              "lud",
		Variant:            "small",
		Program:            "lud",
		Epsilon:            0.125,
		SiteCount:          4096,
		DynInstrs:          123456,
		Instances:          8,
		Reused:             6,
		Injected:           2,
		StaticExecuted:     40,
		StaticTotal:        44,
		FFExperiments:      2048,
		FFSimInstrs:        999999,
		FFWall:             1500 * time.Millisecond,
		FFCleanInstrs:      1111,
		FFFaultyInstrs:     2222,
		ElidedExperiments:  96,
		ElidedSimInstrs:    48000,
		BatchedExperiments: 1800,
		BatchReplicasAvg:   112.5,
		ResumedExperiments: 512,
		WALNotes:           []string{"torn tail truncated (17 bytes)", "lock conflict on k3"},
		WALDegraded:        true,
		Poisoned: []PoisonSummary{{
			Class:     "k1+3/dst.bit7",
			Attempts:  2,
			MachineFP: "00000000deadbeef",
			Stack:     "goroutine 1 [running]:\nexample",
		}},
		PanicRetries:       3,
		RemoteExperiments:  1024,
		ShardsMerged:       12,
		HedgedDispatches:   2,
		Releases:           5,
		HardenedTarget:     0.95,
		ResidualSDC:        120,
		PredictedResidual:  150,
		DetectorCoverage:   0.93,
		DetectorTriggers:   640,
		ProtectionOverhead: 0.42,
		HardenedAsm:        "func main {\n    halt\n}\n",
		Outcomes:           OutcomeStats{Masked: 1000, Detected: 500, SDCGood: 300, SDCBad: 200, Untested: 48},
		Baseline: &BaselineSummary{
			Experiments:        4096,
			SimInstrs:          5000000,
			CleanInstrs:        4000,
			FaultyInstrs:       5000,
			Wall:               9 * time.Second,
			ElidedExperiments:  128,
			ElidedSimInstrs:    64000,
			BatchedExperiments: 3900,
			Speedup:            3.2,
		},
		Targets: []TargetSummary{{
			Target:       0.95,
			Adjusted:     0.97,
			Achieved:     0.961,
			FFCostFrac:   0.4,
			BaseCostFrac: 0.45,
			CostDiff:     -0.05,
			ErrRange:     0.02,
			WithinRange:  true,
			Selected:     []string{"k1+0", "k1+3"},
			SelectedCost: 77,
		}},
	}
}

// TestSummaryJSONRoundTrip: encode/decode must preserve every field,
// in particular the degraded/poisoned/resumed bookkeeping.
func TestSummaryJSONRoundTrip(t *testing.T) {
	want := fullSummary()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("round trip changed the summary:\nwant %+v\ngot  %+v", want, &got)
	}
}

// TestSummaryOmitEmpty: a summary without WAL/poison/baseline state keeps
// those keys out of the wire format entirely (clients feature-detect by
// key presence), while always-on keys stay.
func TestSummaryOmitEmpty(t *testing.T) {
	s := &Summary{Program: "p", Outcomes: OutcomeStats{Masked: 1}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, absent := range []string{
		"resumed_experiments", "wal_notes", "wal_degraded",
		"poisoned", "panic_retries", "baseline", "targets", "bench", "variant",
		"elided_experiments", "elided_sim_instrs",
		"batched_experiments", "batch_replicas_avg",
		"remote_experiments", "shards_merged",
		"hedged_dispatches", "releases",
		"hardened_target", "residual_sdc", "predicted_residual",
		"detector_coverage", "detector_triggers", "protection_overhead",
		"hardened_asm",
	} {
		if strings.Contains(text, `"`+absent+`"`) {
			t.Errorf("zero-value summary serializes %q: %s", absent, text)
		}
	}
	for _, present := range []string{"program", "epsilon", "outcomes", "ff_experiments"} {
		if !strings.Contains(text, `"`+present+`"`) {
			t.Errorf("summary missing always-on key %q: %s", present, text)
		}
	}
}

// TestSummaryDegradedFieldsSurviveIndirection: a full summary pushed
// through generic JSON (map[string]any, as proxies and the service's job
// store do) and re-marshalled still decodes to an equal summary — no
// field relies on Go-only types.
func TestSummaryDegradedFieldsSurviveIndirection(t *testing.T) {
	want := fullSummary()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(generic)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(data2, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("generic indirection changed the summary:\nwant %+v\ngot  %+v", want, &got)
	}
}
