package core_test

import (
	"path/filepath"
	"strings"
	"testing"

	"fastflip/internal/core"
	"fastflip/internal/store"
	"fastflip/internal/testprog"
)

func fixtureConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Workers = 2
	return cfg
}

func TestAnalyzeFixture(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r.InjectedInstances != 2 || r.ReusedInstances != 0 {
		t.Errorf("first analysis: injected %d reused %d", r.InjectedInstances, r.ReusedInstances)
	}
	if r.SiteCount == 0 || r.FFInject.Experiments == 0 {
		t.Errorf("no work recorded: %+v", r.FFInject)
	}
	if r.TotalCost == 0 || len(r.Costs) == 0 {
		t.Error("empty cost model")
	}
	if len(r.Spec.Final) != 1 {
		t.Fatalf("spec outputs = %d", len(r.Spec.Final))
	}
	spec := r.FormatSpec(0)
	if !strings.Contains(spec, "scale") || !strings.Contains(spec, "square") {
		t.Errorf("FormatSpec = %q", spec)
	}
}

func TestAnalyzeReusesIdenticalProgram(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	if _, err := a.Analyze(testprog.Pipeline()); err != nil {
		t.Fatal(err)
	}
	r2, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedInstances != 2 || r2.InjectedInstances != 0 {
		t.Errorf("identical re-analysis: reused %d injected %d", r2.ReusedInstances, r2.InjectedInstances)
	}
	if r2.FFInject.SimInstrs != 0 {
		t.Errorf("reused analysis still simulated %d instructions", r2.FFInject.SimInstrs)
	}
}

func TestAnalyzeReusesAcrossModification(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r1, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.NoteModification()
	r2, err := a.Analyze(testprog.PipelineModified())
	if err != nil {
		t.Fatal(err)
	}
	if r2.ReusedInstances != 1 || r2.InjectedInstances != 1 {
		t.Errorf("modified analysis: reused %d injected %d, want 1/1", r2.ReusedInstances, r2.InjectedInstances)
	}
	if r2.FFInject.SimInstrs >= r1.FFInject.SimInstrs {
		t.Errorf("modified analysis cost %d not below original %d", r2.FFInject.SimInstrs, r1.FFInject.SimInstrs)
	}
	if a.Store.ModsSinceAdjust != 1 {
		t.Errorf("m_adj = %d, want 1", a.Store.ModsSinceAdjust)
	}
}

func TestStorePersistenceAcrossAnalyzers(t *testing.T) {
	a1 := core.NewAnalyzer(fixtureConfig())
	if _, err := a1.Analyze(testprog.Pipeline()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sections.gob")
	if err := a1.Store.Save(path); err != nil {
		t.Fatal(err)
	}
	st, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a2 := &core.Analyzer{Cfg: fixtureConfig(), Store: st}
	r, err := a2.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReusedInstances != 2 {
		t.Errorf("reused %d instances from a loaded store, want 2", r.ReusedInstances)
	}
}

func TestEvaluateFixture(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Evaluate(r, 0, false); err == nil {
		t.Fatal("Evaluate without baseline results did not fail")
	}
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != len(a.Cfg.Targets) {
		t.Fatalf("evals = %d", len(evals))
	}
	for _, ev := range evals {
		if ev.Achieved < ev.Target-ev.ErrRange-0.05 {
			t.Errorf("target %.2f achieved only %.4f", ev.Target, ev.Achieved)
		}
		if ev.FF == nil || ev.Base == nil {
			t.Fatal("missing selections")
		}
		if ev.FFCostFrac < 0 || ev.FFCostFrac > 1 || ev.BaseCostFrac < 0 || ev.BaseCostFrac > 1 {
			t.Errorf("cost fractions out of range: %+v", ev)
		}
	}
	// Higher targets cannot get cheaper.
	for i := 1; i < len(evals); i++ {
		if evals[i].FFCostFrac < evals[i-1].FFCostFrac {
			t.Errorf("cost decreased from target %.2f to %.2f", evals[i-1].Target, evals[i].Target)
		}
	}
}

func TestEvaluateStoresAndReusesAdjustedTargets(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evals {
		key := store.TargetKey{Epsilon: 0, Target: ev.Target}
		stored, ok := a.Store.AdjustedTargets[key]
		if !ok {
			t.Fatalf("no stored adjusted target for %.2f", ev.Target)
		}
		if stored != ev.Adjusted {
			t.Errorf("stored %v != evaluated %v", stored, ev.Adjusted)
		}
	}

	// A modified version within P_adj must reuse the stored adjustment.
	a.NoteModification()
	r2, err := a.Analyze(testprog.PipelineModified())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r2)
	evals2, err := a.Evaluate(r2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evals2 {
		if ev.Adjusted != evals[i].Adjusted {
			t.Errorf("modified version recomputed adjustment: %v vs %v", ev.Adjusted, evals[i].Adjusted)
		}
	}
}

func TestEvaluatePAdjForcesReadjustment(t *testing.T) {
	cfg := fixtureConfig()
	cfg.PAdj = 1 // re-adjust after every modification
	a := core.NewAnalyzer(cfg)
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)
	if _, err := a.Evaluate(r, 0, false); err != nil {
		t.Fatal(err)
	}
	a.NoteModification()
	r2, err := a.Analyze(testprog.PipelineModified())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r2)
	// With m_adj >= P_adj the stored targets are stale; Evaluate must
	// recompute them from the fresh baseline (no error, fresh values).
	if _, err := a.Evaluate(r2, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestBadCountsConsistency(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)
	ff0 := r.FFBadCounts(0)
	ffBig := r.FFBadCounts(1e18)
	if ff0.Total == 0 {
		t.Error("no SDC-bad sites at eps = 0")
	}
	if ffBig.Total > ff0.Total {
		t.Error("raising eps increased the bad count")
	}
	base0 := r.BaseBadCounts(0)
	if base0.Total == 0 {
		t.Error("baseline found no SDC-bad sites")
	}
	for id, n := range ff0.PerStatic {
		if n < 0 {
			t.Errorf("negative count for %v", id)
		}
		if _, ok := r.Costs[id]; !ok {
			t.Errorf("bad static %v missing from the cost model", id)
		}
	}
}

func TestItemsNormalized(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	items := r.Items(r.FFBadCounts(0))
	sum := 0.0
	cost := 0
	for _, it := range items {
		sum += it.Value
		cost += it.Cost
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("item values sum to %v, want 1", sum)
	}
	if cost != r.TotalCost {
		t.Errorf("item costs sum to %d, want %d", cost, r.TotalCost)
	}
}

func TestAdjustTargetsDisabled(t *testing.T) {
	cfg := fixtureConfig()
	cfg.AdjustTargets = false
	a := core.NewAnalyzer(cfg)
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)
	evals, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evals {
		if ev.Adjusted != ev.Target {
			t.Errorf("adjustment applied although disabled: %v vs %v", ev.Adjusted, ev.Target)
		}
	}
	if len(a.Store.AdjustedTargets) != 0 {
		t.Error("disabled adjustment still wrote to the store")
	}
}
