package core_test

import (
	"testing"

	"fastflip/internal/core"
	"fastflip/internal/prog"
	"fastflip/internal/testprog"
)

// TestAnalysisDeterministicAcrossWorkers: the parallel injection executor
// must produce identical labels regardless of worker count — the store and
// the evaluation depend on it.
func TestAnalysisDeterministicAcrossWorkers(t *testing.T) {
	counts := make([]map[prog.StaticID]int, 0, 3)
	for _, workers := range []int{1, 2, 7} {
		cfg := fixtureConfig()
		cfg.Workers = workers
		a := core.NewAnalyzer(cfg)
		r, err := a.Analyze(testprog.Pipeline())
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, r.FFBadCounts(0).PerStatic)
	}
	for i := 1; i < len(counts); i++ {
		if len(counts[i]) != len(counts[0]) {
			t.Fatalf("worker variant %d: %d bad statics vs %d", i, len(counts[i]), len(counts[0]))
		}
		for id, n := range counts[0] {
			if counts[i][id] != n {
				t.Errorf("worker variant %d: %v has %d bad sites, want %d", i, id, counts[i][id], n)
			}
		}
	}
}

// TestEvaluationDeterministic: repeated evaluation of the same result
// yields byte-identical selections.
func TestEvaluationDeterministic(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	a.RunBaseline(r)
	e1, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := a.Evaluate(r, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if e1[i].Achieved != e2[i].Achieved || e1[i].FFCostFrac != e2[i].FFCostFrac ||
			e1[i].Adjusted != e2[i].Adjusted || len(e1[i].FF.IDs) != len(e2[i].FF.IDs) {
			t.Errorf("evaluation %d differs between runs: %+v vs %+v", i, e1[i], e2[i])
		}
		for j := range e1[i].FF.IDs {
			if e1[i].FF.IDs[j] != e2[i].FF.IDs[j] {
				t.Fatalf("selection order differs at %d", j)
			}
		}
	}
}

// TestFormatSpecDeterministic: the Equation 2 rendering must be stable
// (map iteration order must not leak into the output).
func TestFormatSpecDeterministic(t *testing.T) {
	a := core.NewAnalyzer(fixtureConfig())
	r, err := a.Analyze(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	first := r.FormatSpec(0)
	for i := 0; i < 10; i++ {
		if got := r.FormatSpec(0); got != first {
			t.Fatalf("FormatSpec unstable: %q vs %q", got, first)
		}
	}
}
