// Package testprog provides tiny sectioned programs used by the analysis
// packages' tests. The flagship fixture is a two-section float pipeline
// with a known amplification structure:
//
//	section 0 "scale":  y = 3·x      (x at addr 0, y at addr 1)
//	section 1 "square": z = y·y + c  (z at addr 2; c at addr 3 is a
//	                                   constant input)
//
// so an SDC of δ in y becomes ≈ 2·y·δ in z, and the final output is z.
package testprog

import (
	"math"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// Addresses of the pipeline's buffers.
const (
	AddrX = 0
	AddrY = 1
	AddrZ = 2
	AddrC = 3
	// AddrScratch is untouched memory the pipeline never writes.
	AddrScratch = 4
)

// X and C are the concrete inputs.
const (
	X = 1.5
	C = 0.25
)

// Pipeline builds the two-section fixture. Every buffer is declared live so
// stray writes are caught.
func Pipeline() *spec.Program { return build(false) }

// PipelineModified is Pipeline with a semantics-preserving extra
// instruction in the "square" section, for testing section reuse: scale's
// identity is unchanged, square's is not.
func PipelineModified() *spec.Program { return build(true) }

func build(modifySquare bool) *spec.Program {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Call("scale")
	main.SecEnd(0)
	main.SecBeg(1)
	main.Call("square")
	main.SecEnd(1)
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	scale := prog.NewFunc("scale")
	scale.Li(1, 0)
	scale.Fld(0, 1, AddrX)
	scale.Fli(1, 3)
	scale.Fmul(0, 0, 1)
	scale.Li(1, 0)
	scale.Fst(0, 1, AddrY)
	scale.Ret()
	p.MustAdd(scale.MustBuild())

	square := prog.NewFunc("square")
	square.Li(1, 0)
	square.Fld(0, 1, AddrY)
	square.Fmul(0, 0, 0)
	square.Fld(1, 1, AddrC)
	square.Fadd(0, 0, 1)
	if modifySquare {
		square.Fmov(2, 0) // dead move: preserves semantics, changes the hash
	}
	square.Li(1, 0)
	square.Fst(0, 1, AddrZ)
	square.Ret()
	p.MustAdd(square.MustBuild())

	linked, err := p.Link("main")
	if err != nil {
		panic(err)
	}

	x := spec.Buffer{Name: "x", Addr: AddrX, Len: 1, Kind: spec.Float}
	y := spec.Buffer{Name: "y", Addr: AddrY, Len: 1, Kind: spec.Float}
	z := spec.Buffer{Name: "z", Addr: AddrZ, Len: 1, Kind: spec.Float}
	c := spec.Buffer{Name: "c", Addr: AddrC, Len: 1, Kind: spec.Float}
	live := []spec.Buffer{x, y, z, c}

	return &spec.Program{
		Name:     "testpipe",
		Version:  "none",
		Linked:   linked,
		MemWords: 8,
		Init: func(m *vm.Machine) {
			m.Mem[AddrX] = math.Float64bits(X)
			m.Mem[AddrC] = math.Float64bits(C)
		},
		Sections: []spec.Section{
			{ID: 0, Name: "scale", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{x}, Outputs: []spec.Buffer{y}, Live: live},
			}},
			{ID: 1, Name: "square", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{y, c}, Outputs: []spec.Buffer{z}, Live: live},
			}},
		},
		FinalOutputs: []spec.Buffer{z},
	}
}

// WantY and WantZ are the clean outputs of the pipeline.
func WantY() float64 { return 3 * X }
func WantZ() float64 { return WantY()*WantY() + C }
