package testprog

import (
	"math"
	"testing"

	"fastflip/internal/vm"
)

func execute(t *testing.T, modified bool) *vm.Machine {
	t.Helper()
	p := Pipeline()
	if modified {
		p = PipelineModified()
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	m := vm.New(p.Linked.Code, p.Linked.Entry, p.MemWords)
	p.Init(m)
	m.Run()
	if m.Status != vm.Halted {
		t.Fatalf("pipeline did not halt: status %v", m.Status)
	}
	return m
}

// TestPipelineComputes: the canonical two-section fixture produces its
// documented outputs and leaves the scratch word untouched.
func TestPipelineComputes(t *testing.T) {
	m := execute(t, false)
	if y := math.Float64frombits(m.Mem[AddrY]); y != WantY() {
		t.Errorf("y = %v, want %v", y, WantY())
	}
	if z := math.Float64frombits(m.Mem[AddrZ]); z != WantZ() {
		t.Errorf("z = %v, want %v", z, WantZ())
	}
	if m.Mem[AddrScratch] != 0 {
		t.Errorf("scratch word written: %#x", m.Mem[AddrScratch])
	}
}

// TestModifiedPipelineSameOutputs: the modification is a dead instruction
// in square — outputs must be bit-identical to the unmodified pipeline.
func TestModifiedPipelineSameOutputs(t *testing.T) {
	a := execute(t, false)
	b := execute(t, true)
	for _, addr := range []int{AddrX, AddrY, AddrZ, AddrC} {
		if a.Mem[addr] != b.Mem[addr] {
			t.Errorf("mem[%d]: unmodified %#x, modified %#x", addr, a.Mem[addr], b.Mem[addr])
		}
	}
}

// TestModificationChangesOnlySquare: the incremental-analysis fixture's
// contract is that exactly one section's code identity changes — scale's
// function hash is stable, square's is not.
func TestModificationChangesOnlySquare(t *testing.T) {
	base := Pipeline()
	mod := PipelineModified()
	for _, fn := range []string{"main", "scale"} {
		ha, oka := base.Linked.HashOfFunc(fn)
		hb, okb := mod.Linked.HashOfFunc(fn)
		if !oka || !okb {
			t.Fatalf("function %q missing from a pipeline", fn)
		}
		if ha != hb {
			t.Errorf("function %q hash changed across the modification", fn)
		}
	}
	ha, oka := base.Linked.HashOfFunc("square")
	hb, okb := mod.Linked.HashOfFunc("square")
	if !oka || !okb {
		t.Fatal("square missing from a pipeline")
	}
	if ha == hb {
		t.Error("square hash identical: the modification is not visible in code identity")
	}
}

// TestSpecShape: sections, buffers, and final outputs match the fixture's
// documented layout (the analysis tests lean on these invariants).
func TestSpecShape(t *testing.T) {
	p := Pipeline()
	if len(p.Sections) != 2 {
		t.Fatalf("sections = %d, want 2", len(p.Sections))
	}
	if p.Sections[0].Name != "scale" || p.Sections[1].Name != "square" {
		t.Errorf("section names %q/%q", p.Sections[0].Name, p.Sections[1].Name)
	}
	if len(p.FinalOutputs) != 1 || p.FinalOutputs[0].Addr != AddrZ {
		t.Errorf("final outputs %+v, want z at %d", p.FinalOutputs, AddrZ)
	}
	if p.Version == "" {
		t.Error("pipeline declares no version")
	}
}
