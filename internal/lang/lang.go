// Package lang implements minilang, a small imperative kernel language
// that compiles to the fastflip ISA. It exists so program sections can be
// written as readable source instead of hand-assembled builder calls:
//
//	kernel sumsq(v: float[4], s: float[1]) {
//	    var acc: float = 0.0;
//	    for i = 0 to 4 {
//	        acc = acc + v[i] * v[i];
//	    }
//	    s[0] = acc;
//	}
//
// The language has int and float scalars, fixed-size float/int buffer
// parameters (bound to memory addresses at compile time), arithmetic,
// comparisons, if/else, counted for loops, and float intrinsics
// (sqrt, exp, ln, abs, min, max) plus explicit float()/int() conversions.
//
// This file contains the lexer, the AST, and the recursive descent parser;
// compile.go contains the type checker and the code generator.
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Type is a scalar type.
type Type uint8

const (
	TInt Type = iota
	TFloat
)

func (t Type) String() string {
	if t == TInt {
		return "int"
	}
	return "float"
}

// --- AST ---

// Kernel is one compiled unit; it becomes a single ISA function.
type Kernel struct {
	Name   string
	Params []Param
	Body   []Stmt
}

// Param is a buffer parameter: a typed, fixed-length memory region.
type Param struct {
	Name string
	Elem Type
	Len  int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// VarDecl declares and initializes a scalar local.
type VarDecl struct {
	Name string
	Type Type
	Init Expr
}

// Assign stores a value into a scalar or a buffer element.
type Assign struct {
	Target LValue
	Value  Expr
}

// If is a two-armed conditional.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For is a counted loop: for i = From to To runs while i < To.
type For struct {
	Var  string
	From Expr
	To   Expr
	Body []Stmt
}

func (VarDecl) stmt() {}
func (Assign) stmt()  {}
func (If) stmt()      {}
func (For) stmt()     {}

// LValue is an assignable location.
type LValue interface{ lvalue() }

// Expr is an expression node.
type Expr interface{ expr() }

// Num is a numeric literal; IsInt distinguishes 3 from 3.0.
type Num struct {
	Value float64
	IsInt bool
}

// VarRef reads a scalar variable.
type VarRef struct{ Name string }

// Index reads or writes a buffer element.
type Index struct {
	Buf string
	Idx Expr
}

// Binary applies an arithmetic, bitwise, or comparison operator. The
// bitwise family (& | ^ << >>) is int-only.
type Binary struct {
	Op   string // + - * / % & | ^ << >> < <= > >= == !=
	L, R Expr
}

// Call invokes an intrinsic: sqrt, exp, ln, abs, min, max, float, int.
type Call struct {
	Fn   string
	Args []Expr
}

func (Num) expr()    {}
func (VarRef) expr() {}
func (Index) expr()  {}
func (Binary) expr() {}
func (Call) expr()   {}

func (VarRef) lvalue() {}
func (Index) lvalue()  {}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct // single/double character punctuation and operators
)

type token struct {
	kind tokKind
	text string
	line int
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil

scan:
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		for lx.pos < len(lx.src) && (isIdentChar(lx.src[lx.pos])) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	case unicode.IsDigit(rune(c)):
		for lx.pos < len(lx.src) && (unicode.IsDigit(rune(lx.src[lx.pos])) || lx.src[lx.pos] == '.' ||
			lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E' ||
			((lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') && (lx.src[lx.pos-1] == 'e' || lx.src[lx.pos-1] == 'E'))) {
			lx.pos++
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: lx.line}, nil
	case strings.ContainsRune("+-*/%(){}[]=<>!,:;&|^", rune(c)):
		lx.pos++
		text := string(c)
		// Two-character operators.
		if lx.pos < len(lx.src) {
			two := text + string(lx.src[lx.pos])
			switch two {
			case "<=", ">=", "==", "!=", "<<", ">>":
				lx.pos++
				text = two
			}
		}
		return token{kind: tokPunct, text: text, line: lx.line}, nil
	}
	return token{}, fmt.Errorf("lang:%d: unexpected character %q", lx.line, c)
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

// Parse parses minilang source into kernels.
func Parse(src string) ([]*Kernel, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	p := &parser{toks: toks}
	var kernels []*Kernel
	for p.peek().kind != tokEOF {
		k, err := p.kernel()
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, k)
	}
	if len(kernels) == 0 {
		return nil, fmt.Errorf("lang: no kernels in source")
	}
	return kernels, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("lang:%d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if p.peek().text != text {
		return p.errf("expected %q, found %q", text, p.peek().text)
	}
	p.advance()
	return nil
}

func (p *parser) ident() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.peek().text)
	}
	return p.advance().text, nil
}

func (p *parser) kernel() (*Kernel, error) {
	if p.peek().text != "kernel" {
		return nil, p.errf("expected 'kernel', found %q", p.peek().text)
	}
	p.advance()
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	k := &Kernel{Name: name}
	for p.peek().text != ")" {
		if len(k.Params) > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		prm, err := p.param()
		if err != nil {
			return nil, err
		}
		k.Params = append(k.Params, prm)
	}
	p.advance() // ")"
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	k.Body = body
	return k, nil
}

func (p *parser) param() (Param, error) {
	name, err := p.ident()
	if err != nil {
		return Param{}, err
	}
	if err := p.expect(":"); err != nil {
		return Param{}, err
	}
	elem, err := p.typeName()
	if err != nil {
		return Param{}, err
	}
	if err := p.expect("["); err != nil {
		return Param{}, err
	}
	if p.peek().kind != tokNumber {
		return Param{}, p.errf("expected buffer length, found %q", p.peek().text)
	}
	n, err := strconv.Atoi(p.advance().text)
	if err != nil || n <= 0 {
		return Param{}, p.errf("bad buffer length")
	}
	if err := p.expect("]"); err != nil {
		return Param{}, err
	}
	return Param{Name: name, Elem: elem, Len: n}, nil
}

func (p *parser) typeName() (Type, error) {
	switch p.peek().text {
	case "int":
		p.advance()
		return TInt, nil
	case "float":
		p.advance()
		return TFloat, nil
	}
	return 0, p.errf("expected type, found %q", p.peek().text)
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for p.peek().text != "}" {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.advance() // "}"
	return stmts, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.peek().text {
	case "var":
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		ty, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return VarDecl{Name: name, Type: ty, Init: init}, nil

	case "if":
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.peek().text == "else" {
			p.advance()
			if els, err = p.block(); err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: then, Else: els}, nil

	case "for":
		p.advance()
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		from, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.peek().text != "to" {
			return nil, p.errf("expected 'to', found %q", p.peek().text)
		}
		p.advance()
		to, err := p.expr()
		if err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return For{Var: name, From: from, To: to, Body: body}, nil
	}

	// Assignment: lvalue "=" expr ";"
	lv, err := p.lvalue()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return Assign{Target: lv, Value: val}, nil
}

func (p *parser) lvalue() (LValue, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.peek().text == "[" {
		p.advance()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return Index{Buf: name, Idx: idx}, nil
	}
	return VarRef{Name: name}, nil
}

// Expression grammar, loosest-binding first: comparison, then the
// bitwise chain | ^ &, shifts, additive, multiplicative, unary, primary
// (C's relative order for the bitwise family).

func (p *parser) expr() (Expr, error) {
	l, err := p.bitOr()
	if err != nil {
		return nil, err
	}
	switch op := p.peek().text; op {
	case "<", "<=", ">", ">=", "==", "!=":
		p.advance()
		r, err := p.bitOr()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) bitOr() (Expr, error) {
	l, err := p.bitXor()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "|" {
		p.advance()
		r, err := p.bitXor()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "|", L: l, R: r}
	}
	return l, nil
}

func (p *parser) bitXor() (Expr, error) {
	l, err := p.bitAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "^" {
		p.advance()
		r, err := p.bitAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "^", L: l, R: r}
	}
	return l, nil
}

func (p *parser) bitAnd() (Expr, error) {
	l, err := p.shift()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "&" {
		p.advance()
		r, err := p.shift()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) shift() (Expr, error) {
	l, err := p.additive()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "<<" || p.peek().text == ">>" {
		op := p.advance().text
		r, err := p.additive()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) additive() (Expr, error) {
	l, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "+" || p.peek().text == "-" {
		op := p.advance().text
		r, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) multiplicative() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%" {
		op := p.advance().text
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Expr, error) {
	if p.peek().text == "-" {
		p.advance()
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		// -x desugars to 0-x with a literal matching x's eventual type;
		// the checker patches the literal type.
		return Binary{Op: "-", L: Num{Value: 0}, R: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return Num{Value: v, IsInt: !strings.ContainsAny(t.text, ".eE")}, nil
	case t.kind == tokIdent:
		p.advance()
		name := t.text
		switch p.peek().text {
		case "(":
			p.advance()
			call := Call{Fn: name}
			for p.peek().text != ")" {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			p.advance() // ")"
			return call, nil
		case "[":
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			return Index{Buf: name, Idx: idx}, nil
		}
		return VarRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token %q", t.text)
}
