package lang

import (
	"strings"
	"testing"
)

func TestTooManyFloatVariables(t *testing.T) {
	var b strings.Builder
	b.WriteString("kernel k(v: float[1]) {\n")
	for i := 0; i < 12; i++ {
		b.WriteString("    var x")
		b.WriteByte(byte('a' + i))
		b.WriteString(": float = 1.0;\n")
	}
	b.WriteString("}\n")
	_, err := Compile(b.String(), Bindings{"v": 0})
	if err == nil || !strings.Contains(err.Error(), "too many float variables") {
		t.Errorf("expected variable exhaustion error, got %v", err)
	}
}

func TestTooManyIntVariables(t *testing.T) {
	var b strings.Builder
	b.WriteString("kernel k(v: float[1]) {\n")
	for i := 0; i < 10; i++ {
		b.WriteString("    var n")
		b.WriteByte(byte('a' + i))
		b.WriteString(": int = 1;\n")
	}
	b.WriteString("}\n")
	_, err := Compile(b.String(), Bindings{"v": 0})
	if err == nil || !strings.Contains(err.Error(), "too many int variables") {
		t.Errorf("expected variable exhaustion error, got %v", err)
	}
}

func TestExpressionTooDeep(t *testing.T) {
	// Variable reads cost no temporaries, but buffer loads do. A
	// right-nested chain of loads holds one temp per level; with six int
	// temporaries the seventh simultaneous load must fail with a clear
	// error.
	src := `
kernel k(o: int[1]) {
    o[0] = o[0] + (o[0] + (o[0] + (o[0] + (o[0] + (o[0] + o[0])))));
}`
	_, err := Compile(src, Bindings{"o": 0})
	if err == nil || !strings.Contains(err.Error(), "expression too deep") {
		t.Errorf("expected temp exhaustion error, got %v", err)
	}
	// The same chain over a variable is fine: no temps are held.
	src = `
kernel k(o: int[1]) {
    var a: int = 1;
    o[0] = a + (a + (a + (a + a)));
}`
	if _, err := Compile(src, Bindings{"o": 0}); err != nil {
		t.Errorf("variable chain should compile, got %v", err)
	}
}

func TestLeftNestedExpressionsUnbounded(t *testing.T) {
	// Left-associative chains reuse temporaries, so arbitrarily long sums
	// compile fine.
	var b strings.Builder
	b.WriteString("kernel k(o: float[1]) {\n    var a: float = 1.0;\n    o[0] = a")
	for i := 0; i < 40; i++ {
		b.WriteString(" + a")
	}
	b.WriteString(";\n}\n")
	if _, err := Compile(b.String(), Bindings{"o": 0}); err != nil {
		t.Errorf("long left-nested sum failed: %v", err)
	}
}

func TestLoopVariableScoping(t *testing.T) {
	// The loop variable is gone after the loop; reusing the name is fine.
	src := `
kernel k(o: float[1]) {
    var acc: float = 0.0;
    for i = 0 to 3 { acc = acc + 1.0; }
    for i = 0 to 2 { acc = acc + 1.0; }
    o[0] = acc;
}`
	if _, err := Compile(src, Bindings{"o": 0}); err != nil {
		t.Errorf("sequential loops with the same variable failed: %v", err)
	}
	// But the loop variable is not visible after the loop ends.
	src = `
kernel k(o: int[1]) {
    for i = 0 to 3 { }
    o[0] = i;
}`
	if _, err := Compile(src, Bindings{"o": 0}); err == nil {
		t.Error("loop variable visible after loop end")
	}
}

func TestKernelFunctionHashStable(t *testing.T) {
	src := `kernel k(v: float[2]) { v[1] = v[0] * 2.0; }`
	f1, err := Compile(src, Bindings{"v": 0})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Compile(src, Bindings{"v": 0})
	if err != nil {
		t.Fatal(err)
	}
	if f1[0].Hash() != f2[0].Hash() {
		t.Error("identical kernels compile to different hashes")
	}
	f3, err := Compile(src, Bindings{"v": 8})
	if err != nil {
		t.Fatal(err)
	}
	if f1[0].Hash() == f3[0].Hash() {
		t.Error("different bindings compile to identical code")
	}
}
