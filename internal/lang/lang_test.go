package lang

import (
	"math"
	"strings"
	"testing"

	"fastflip/internal/prog"
	"fastflip/internal/vm"
)

// runKernel compiles src with the given bindings, runs the named kernel on
// a fresh machine with initialized memory, and returns the machine.
func runKernel(t *testing.T, src string, binds Bindings, kernel string, init map[int]float64) *vm.Machine {
	t.Helper()
	fns, err := Compile(src, binds)
	if err != nil {
		t.Fatal(err)
	}
	mod := prog.New()
	main := prog.NewFunc("main")
	main.Call(kernel)
	main.Halt()
	mod.MustAdd(main.MustBuild())
	for _, fn := range fns {
		mod.MustAdd(fn)
	}
	linked, err := mod.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(linked.Code, linked.Entry, 64)
	for addr, v := range init {
		m.Mem[addr] = math.Float64bits(v)
	}
	if ev := m.Run(); ev.Kind != vm.EvHalt {
		t.Fatalf("kernel %s ended with %v (crash %v)", kernel, ev.Kind, m.Crash)
	}
	return m
}

func fl(m *vm.Machine, addr int) float64 { return math.Float64frombits(m.Mem[addr]) }

func TestSumOfSquares(t *testing.T) {
	src := `
kernel sumsq(v: float[4], s: float[1]) {
    var acc: float = 0.0;
    for i = 0 to 4 {
        acc = acc + v[i] * v[i];
    }
    s[0] = acc;
}`
	m := runKernel(t, src, Bindings{"v": 0, "s": 8}, "sumsq",
		map[int]float64{0: 1, 1: 2, 2: 3, 3: 4})
	if got := fl(m, 8); got != 30 {
		t.Errorf("sumsq = %v, want 30", got)
	}
}

func TestIfElseAndComparisons(t *testing.T) {
	src := `
kernel clamp(x: float[1], out: float[1]) {
    var v: float = x[0];
    if v < 0.0 {
        v = 0.0 - v;
    } else {
        v = v * 2.0;
    }
    out[0] = v;
}`
	binds := Bindings{"x": 0, "out": 1}
	m := runKernel(t, src, binds, "clamp", map[int]float64{0: -3})
	if got := fl(m, 1); got != 3 {
		t.Errorf("clamp(-3) = %v, want 3", got)
	}
	m = runKernel(t, src, binds, "clamp", map[int]float64{0: 5})
	if got := fl(m, 1); got != 10 {
		t.Errorf("clamp(5) = %v, want 10", got)
	}
}

func TestIntrinsics(t *testing.T) {
	src := `
kernel f(x: float[1], out: float[4]) {
    out[0] = sqrt(x[0]);
    out[1] = exp(ln(x[0]));
    out[2] = min(x[0], 2.0);
    out[3] = abs(0.0 - x[0]);
}`
	m := runKernel(t, src, Bindings{"x": 0, "out": 1}, "f", map[int]float64{0: 9})
	if got := fl(m, 1); got != 3 {
		t.Errorf("sqrt(9) = %v", got)
	}
	if got := fl(m, 2); math.Abs(got-9) > 1e-12 {
		t.Errorf("exp(ln(9)) = %v", got)
	}
	if got := fl(m, 3); got != 2 {
		t.Errorf("min(9,2) = %v", got)
	}
	if got := fl(m, 4); got != 9 {
		t.Errorf("abs(-9) = %v", got)
	}
}

func TestIntArithmeticAndConversions(t *testing.T) {
	src := `
kernel g(out: float[2], iout: int[2]) {
    var n: int = 17;
    var q: int = n / 5;
    var r: int = n % 5;
    iout[0] = q;
    iout[1] = r;
    out[0] = float(q) + 0.5;
    out[1] = float(int(3.9));
}`
	m := runKernel(t, src, Bindings{"out": 0, "iout": 4}, "g", nil)
	if m.Mem[4] != 3 || m.Mem[5] != 2 {
		t.Errorf("int results = %d, %d, want 3, 2", m.Mem[4], m.Mem[5])
	}
	if got := fl(m, 0); got != 3.5 {
		t.Errorf("float(q)+0.5 = %v", got)
	}
	if got := fl(m, 1); got != 3 {
		t.Errorf("float(int(3.9)) = %v", got)
	}
}

func TestNestedLoops(t *testing.T) {
	src := `
kernel matvec(a: float[9], x: float[3], y: float[3]) {
    for i = 0 to 3 {
        var acc: float = 0.0;
        for j = 0 to 3 {
            acc = acc + a[i * 3 + j] * x[j];
        }
        y[i] = acc;
    }
}`
	init := map[int]float64{}
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for i, v := range a {
		init[i] = v
	}
	init[9], init[10], init[11] = 1, 0, -1
	m := runKernel(t, src, Bindings{"a": 0, "x": 9, "y": 12}, "matvec", init)
	want := []float64{1 - 3, 4 - 6, 7 - 9}
	for i, w := range want {
		if got := fl(m, 12+i); got != w {
			t.Errorf("y[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestVarDeclInLoopBodyReleased(t *testing.T) {
	// A var declared inside a loop body is redeclared every iteration;
	// that is a compile error (no shadowing/scoping of locals), unless it
	// is the first iteration. Verify the error message is clear.
	src := `
kernel h(out: float[1]) {
    var a: float = 1.0;
    var a: float = 2.0;
    out[0] = a;
}`
	if _, err := Compile(src, Bindings{"out": 0}); err == nil ||
		!strings.Contains(err.Error(), "redeclared") {
		t.Errorf("redeclaration error missing, got %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"unbound buffer":      `kernel k(v: float[1]) { v[0] = 1.0; }`,
		"undefined variable":  `kernel k(v: float[1]) { v[0] = x; }`,
		"undefined buffer":    `kernel k(v: float[1]) { w[0] = 1.0; }`,
		"type mismatch":       `kernel k(v: float[1]) { var i: int = 0; v[0] = i; }`,
		"float index":         `kernel k(v: float[2]) { v[1.5] = 1.0; }`,
		"float modulo":        `kernel k(v: float[1]) { v[0] = v[0] % 2.0; }`,
		"unknown function":    `kernel k(v: float[1]) { v[0] = frob(v[0]); }`,
		"bad arity":           `kernel k(v: float[1]) { v[0] = sqrt(v[0], v[0]); }`,
		"loop var shadows":    `kernel k(v: float[1]) { var i: int = 0; for i = 0 to 3 { } v[0] = 1.0; }`,
		"assign to buffer id": `kernel k(v: float[1]) { var v: float = 1.0; }`,
	}
	binds := Bindings{"v": 0}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			b := binds
			if name == "unbound buffer" {
				b = Bindings{}
			}
			if _, err := Compile(src, b); err == nil {
				t.Errorf("compile accepted %q", src)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`kernel {`,
		`kernel k(v float[1]) { }`,
		`kernel k(v: float[0]) { }`,
		`kernel k(v: float[1]) { v[0] = ; }`,
		`kernel k(v: float[1]) { for i = 0 { } }`,
		`kernel k(v: float[1]) { v[0] = 1.0 }`,
		`kernel k(v: float[1]) { if { } }`,
		"kernel k(v: float[1]) { v[0] = 1.0; ",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parser accepted %q", src)
		}
	}
}

func TestComparisonAsValue(t *testing.T) {
	src := `
kernel cmp(v: float[2], iout: int[2]) {
    iout[0] = v[0] < v[1];
    iout[1] = v[0] >= v[1];
}`
	m := runKernel(t, src, Bindings{"v": 0, "iout": 2}, "cmp", map[int]float64{0: 1, 1: 2})
	if m.Mem[2] != 1 || m.Mem[3] != 0 {
		t.Errorf("comparison values = %d, %d, want 1, 0", m.Mem[2], m.Mem[3])
	}
}

func TestLiteralExpressionAdoptsContext(t *testing.T) {
	src := `
kernel lit(out: float[1]) {
    out[0] = 2 * 3 + 1;
}`
	m := runKernel(t, src, Bindings{"out": 0}, "lit", nil)
	if got := fl(m, 0); got != 7 {
		t.Errorf("literal expression = %v, want 7", got)
	}
}

func TestMultipleKernels(t *testing.T) {
	src := `
kernel first(v: float[1]) { v[0] = 1.0; }
kernel second(v: float[1]) { v[0] = v[0] + 1.0; }
`
	fns, err := Compile(src, Bindings{"v": 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 2 || fns[0].Name != "first" || fns[1].Name != "second" {
		t.Fatalf("kernels = %v", fns)
	}
}
