package lang

import (
	"fmt"

	"fastflip/internal/prog"
)

// Bindings maps buffer parameter names to memory base addresses. Kernels
// are compiled against concrete placements, like the analysis's buffer
// declarations.
type Bindings map[string]int

// Compile type-checks and compiles source text into one ISA function per
// kernel. Every buffer parameter of every kernel must be bound.
func Compile(src string, binds Bindings) ([]*prog.Function, error) {
	kernels, err := Parse(src)
	if err != nil {
		return nil, err
	}
	fns := make([]*prog.Function, 0, len(kernels))
	for _, k := range kernels {
		fn, err := CompileKernel(k, binds)
		if err != nil {
			return nil, err
		}
		fns = append(fns, fn)
	}
	return fns, nil
}

// CompileKernel compiles a single parsed kernel.
func CompileKernel(k *Kernel, binds Bindings) (*prog.Function, error) {
	cg := &codegen{
		b:     prog.NewFunc(k.Name),
		kname: k.Name,
		vars:  map[string]varInfo{},
		bufs:  map[string]bufInfo{},
		// r0 stays zero-initialized scratch, r1/r2 are address scratch;
		// persistent int variables live in r3..r9, int temps in r10..r15.
		intVars:    []int{3, 4, 5, 6, 7, 8, 9},
		intTemps:   []int{10, 11, 12, 13, 14, 15},
		floatVars:  []int{8, 9, 10, 11, 12, 13, 14, 15},
		floatTemps: []int{0, 1, 2, 3, 4, 5, 6, 7},
	}
	for _, prm := range k.Params {
		base, ok := binds[prm.Name]
		if !ok {
			return nil, fmt.Errorf("lang: %s: unbound buffer parameter %q", k.Name, prm.Name)
		}
		if _, dup := cg.bufs[prm.Name]; dup {
			return nil, fmt.Errorf("lang: %s: duplicate parameter %q", k.Name, prm.Name)
		}
		cg.bufs[prm.Name] = bufInfo{base: base, elem: prm.Elem, length: prm.Len}
	}
	if err := cg.stmts(k.Body); err != nil {
		return nil, err
	}
	cg.b.Ret()
	return cg.b.Build()
}

type varInfo struct {
	reg int
	ty  Type
}

type bufInfo struct {
	base   int
	elem   Type
	length int
}

type codegen struct {
	b     *prog.B
	kname string
	vars  map[string]varInfo
	bufs  map[string]bufInfo

	intVars, intTemps     []int
	floatVars, floatTemps []int

	labels int
}

func (cg *codegen) errf(format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", cg.kname, fmt.Sprintf(format, args...))
}

func (cg *codegen) label(prefix string) string {
	cg.labels++
	return fmt.Sprintf("%s%d", prefix, cg.labels)
}

// Register pools. Persistent registers hold named variables for their
// scope; temps hold expression intermediates and are released immediately.

func (cg *codegen) allocVarReg(ty Type) (int, error) {
	pool := &cg.intVars
	if ty == TFloat {
		pool = &cg.floatVars
	}
	if len(*pool) == 0 {
		return 0, cg.errf("too many %s variables live at once", ty)
	}
	r := (*pool)[0]
	*pool = (*pool)[1:]
	return r, nil
}

func (cg *codegen) freeVarReg(ty Type, r int) {
	if ty == TFloat {
		cg.floatVars = append([]int{r}, cg.floatVars...)
	} else {
		cg.intVars = append([]int{r}, cg.intVars...)
	}
}

func (cg *codegen) allocTemp(ty Type) (int, error) {
	pool := &cg.intTemps
	if ty == TFloat {
		pool = &cg.floatTemps
	}
	if len(*pool) == 0 {
		return 0, cg.errf("expression too deep (out of %s temporaries)", ty)
	}
	r := (*pool)[0]
	*pool = (*pool)[1:]
	return r, nil
}

func (cg *codegen) freeTemp(ty Type, r int) {
	if ty == TFloat {
		cg.floatTemps = append([]int{r}, cg.floatTemps...)
	} else {
		cg.intTemps = append([]int{r}, cg.intTemps...)
	}
}

// releaseIfTemp frees r when it came from the temp pool (variable reads
// return the variable's own register, which must not be freed).
func (cg *codegen) releaseIfTemp(ty Type, r int, isTemp bool) {
	if isTemp {
		cg.freeTemp(ty, r)
	}
}

// --- type resolution ---

// typeOf computes an expression's type; literal says the type is still
// flexible (an undecorated numeric literal adapts to its context).
func (cg *codegen) typeOf(e Expr) (ty Type, literal bool, err error) {
	switch e := e.(type) {
	case Num:
		if e.IsInt {
			return TInt, true, nil
		}
		return TFloat, false, nil
	case VarRef:
		v, ok := cg.vars[e.Name]
		if !ok {
			return 0, false, cg.errf("undefined variable %q", e.Name)
		}
		return v.ty, false, nil
	case Index:
		b, ok := cg.bufs[e.Buf]
		if !ok {
			return 0, false, cg.errf("undefined buffer %q", e.Buf)
		}
		if ity, _, err := cg.typeOf(e.Idx); err != nil {
			return 0, false, err
		} else if ity != TInt {
			return 0, false, cg.errf("buffer %q indexed with a %s", e.Buf, ity)
		}
		return b.elem, false, nil
	case Binary:
		// Each child is typed exactly once; recursing again through
		// operandType would be exponential on nested chains.
		tL, lL, err := cg.typeOf(e.L)
		if err != nil {
			return 0, false, err
		}
		tR, lR, err := cg.typeOf(e.R)
		if err != nil {
			return 0, false, err
		}
		t, err := cg.commonType(tL, lL, tR, lR, e.Op)
		if err != nil {
			return 0, false, err
		}
		switch e.Op {
		case "<", "<=", ">", ">=", "==", "!=":
			return TInt, false, nil // comparisons yield int 0/1
		}
		switch e.Op {
		case "%", "&", "|", "^", "<<", ">>":
			if t != TInt {
				return 0, false, cg.errf("%s requires int operands", e.Op)
			}
			// Int-only results never adapt to a float context, even when
			// both operands are literals.
			return TInt, false, nil
		}
		return t, lL && lR, nil
	case Call:
		switch e.Fn {
		case "sqrt", "exp", "ln", "abs":
			if len(e.Args) != 1 {
				return 0, false, cg.errf("%s takes one argument", e.Fn)
			}
			return TFloat, false, nil
		case "min", "max":
			if len(e.Args) != 2 {
				return 0, false, cg.errf("%s takes two arguments", e.Fn)
			}
			return TFloat, false, nil
		case "float":
			if len(e.Args) != 1 {
				return 0, false, cg.errf("float() takes one argument")
			}
			return TFloat, false, nil
		case "int":
			if len(e.Args) != 1 {
				return 0, false, cg.errf("int() takes one argument")
			}
			return TInt, false, nil
		}
		return 0, false, cg.errf("unknown function %q", e.Fn)
	}
	return 0, false, cg.errf("unsupported expression %T", e)
}

// operandType resolves the common operand type of a binary expression,
// letting flexible literals adopt the other side's type.
func (cg *codegen) operandType(e Binary) (Type, error) {
	tL, lL, err := cg.typeOf(e.L)
	if err != nil {
		return 0, err
	}
	tR, lR, err := cg.typeOf(e.R)
	if err != nil {
		return 0, err
	}
	return cg.commonType(tL, lL, tR, lR, e.Op)
}

func (cg *codegen) commonType(tL Type, lL bool, tR Type, lR bool, op string) (Type, error) {
	switch {
	case tL == tR:
		return tL, nil
	case lL && !lR:
		return tR, nil
	case lR && !lL:
		return tL, nil
	}
	return 0, cg.errf("type mismatch: %s %s %s", tL, op, tR)
}

// --- code generation ---

func (cg *codegen) stmts(body []Stmt) error {
	for _, s := range body {
		if err := cg.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (cg *codegen) stmt(s Stmt) error {
	switch s := s.(type) {
	case VarDecl:
		if _, dup := cg.vars[s.Name]; dup {
			return cg.errf("variable %q redeclared", s.Name)
		}
		if _, isBuf := cg.bufs[s.Name]; isBuf {
			return cg.errf("%q is a buffer parameter", s.Name)
		}
		reg, err := cg.allocVarReg(s.Type)
		if err != nil {
			return err
		}
		r, isTemp, err := cg.genExpr(s.Init, s.Type)
		if err != nil {
			return err
		}
		cg.move(s.Type, reg, r)
		cg.releaseIfTemp(s.Type, r, isTemp)
		cg.vars[s.Name] = varInfo{reg: reg, ty: s.Type}
		return nil

	case Assign:
		switch tgt := s.Target.(type) {
		case VarRef:
			v, ok := cg.vars[tgt.Name]
			if !ok {
				return cg.errf("assignment to undefined variable %q", tgt.Name)
			}
			r, isTemp, err := cg.genExpr(s.Value, v.ty)
			if err != nil {
				return err
			}
			cg.move(v.ty, v.reg, r)
			cg.releaseIfTemp(v.ty, r, isTemp)
			return nil
		case Index:
			b, ok := cg.bufs[tgt.Buf]
			if !ok {
				return cg.errf("assignment to undefined buffer %q", tgt.Buf)
			}
			vr, vTemp, err := cg.genExpr(s.Value, b.elem)
			if err != nil {
				return err
			}
			ir, iTemp, err := cg.genExpr(tgt.Idx, TInt)
			if err != nil {
				return err
			}
			// r1 is the address scratch register.
			cg.b.Addi(1, ir, int64(b.base))
			if b.elem == TFloat {
				cg.b.Fst(vr, 1, 0)
			} else {
				cg.b.St(vr, 1, 0)
			}
			cg.releaseIfTemp(TInt, ir, iTemp)
			cg.releaseIfTemp(b.elem, vr, vTemp)
			return nil
		}
		return cg.errf("unsupported assignment target %T", s.Target)

	case If:
		elseL, endL := cg.label("else"), cg.label("endif")
		if err := cg.genBranchIfFalse(s.Cond, elseL); err != nil {
			return err
		}
		if err := cg.stmts(s.Then); err != nil {
			return err
		}
		cg.b.Jmp(endL)
		cg.b.Label(elseL)
		if err := cg.stmts(s.Else); err != nil {
			return err
		}
		cg.b.Label(endL)
		return nil

	case For:
		if _, dup := cg.vars[s.Var]; dup {
			return cg.errf("loop variable %q shadows an existing variable", s.Var)
		}
		ivar, err := cg.allocVarReg(TInt)
		if err != nil {
			return err
		}
		bound, err := cg.allocVarReg(TInt) // persists across the body
		if err != nil {
			return err
		}
		fr, fTemp, err := cg.genExpr(s.From, TInt)
		if err != nil {
			return err
		}
		cg.move(TInt, ivar, fr)
		cg.releaseIfTemp(TInt, fr, fTemp)
		tr, tTemp, err := cg.genExpr(s.To, TInt)
		if err != nil {
			return err
		}
		cg.move(TInt, bound, tr)
		cg.releaseIfTemp(TInt, tr, tTemp)

		top, end := cg.label("for"), cg.label("endfor")
		cg.b.Label(top)
		cg.b.Bge(ivar, bound, end)
		cg.vars[s.Var] = varInfo{reg: ivar, ty: TInt}
		if err := cg.stmts(s.Body); err != nil {
			return err
		}
		delete(cg.vars, s.Var)
		cg.b.Addi(ivar, ivar, 1)
		cg.b.Jmp(top)
		cg.b.Label(end)
		cg.freeVarReg(TInt, bound)
		cg.freeVarReg(TInt, ivar)
		return nil
	}
	return cg.errf("unsupported statement %T", s)
}

// isBitOp reports whether op is one of the int-only bitwise operators.
func isBitOp(op string) bool {
	switch op {
	case "&", "|", "^", "<<", ">>":
		return true
	}
	return false
}

// move emits a register move when src and dst differ.
func (cg *codegen) move(ty Type, dst, src int) {
	if dst == src {
		return
	}
	if ty == TFloat {
		cg.b.Fmov(dst, src)
	} else {
		cg.b.Mov(dst, src)
	}
}

// genExpr generates code computing e as type want, returning the register
// holding the result and whether that register is a releasable temp.
func (cg *codegen) genExpr(e Expr, want Type) (reg int, isTemp bool, err error) {
	ty, literal, err := cg.typeOf(e)
	if err != nil {
		return 0, false, err
	}
	if ty != want && !literal {
		return 0, false, cg.errf("expected %s expression, found %s", want, ty)
	}

	switch e := e.(type) {
	case Num:
		r, err := cg.allocTemp(want)
		if err != nil {
			return 0, false, err
		}
		if want == TFloat {
			cg.b.Fli(r, e.Value)
		} else {
			cg.b.Li(r, int64(e.Value))
		}
		return r, true, nil

	case VarRef:
		return cg.vars[e.Name].reg, false, nil

	case Index:
		b := cg.bufs[e.Buf]
		ir, iTemp, err := cg.genExpr(e.Idx, TInt)
		if err != nil {
			return 0, false, err
		}
		r, err := cg.allocTemp(want)
		if err != nil {
			return 0, false, err
		}
		cg.b.Addi(1, ir, int64(b.base))
		if want == TFloat {
			cg.b.Fld(r, 1, 0)
		} else {
			cg.b.Ld(r, 1, 0)
		}
		cg.releaseIfTemp(TInt, ir, iTemp)
		return r, true, nil

	case Binary:
		switch e.Op {
		case "<", "<=", ">", ">=", "==", "!=":
			return cg.genComparisonValue(e)
		}
		opTy, err := cg.operandType(e)
		if err != nil {
			return 0, false, err
		}
		if literal {
			// An all-literal expression adopts the context's type
			// (e.g. 2*3 used where a float is expected).
			opTy = want
		}
		// A bitwise op with a literal right operand compiles to the
		// immediate form, so the constant mask is visible in the
		// instruction stream (the static masking analysis depends on it).
		if n, ok := e.R.(Num); ok && n.IsInt && isBitOp(e.Op) {
			lr, lTemp, err := cg.genExpr(e.L, TInt)
			if err != nil {
				return 0, false, err
			}
			dst, err := cg.allocTemp(TInt)
			if err != nil {
				return 0, false, err
			}
			imm := int64(n.Value)
			switch e.Op {
			case "&":
				cg.b.Andi(dst, lr, imm)
			case "|":
				cg.b.Ori(dst, lr, imm)
			case "^":
				cg.b.Xori(dst, lr, imm)
			case "<<":
				cg.b.Shli(dst, lr, imm)
			case ">>":
				cg.b.Shri(dst, lr, imm)
			}
			cg.releaseIfTemp(TInt, lr, lTemp)
			return dst, true, nil
		}
		lr, lTemp, err := cg.genExpr(e.L, opTy)
		if err != nil {
			return 0, false, err
		}
		rr, rTemp, err := cg.genExpr(e.R, opTy)
		if err != nil {
			return 0, false, err
		}
		dst, err := cg.allocTemp(opTy)
		if err != nil {
			return 0, false, err
		}
		if opTy == TFloat {
			switch e.Op {
			case "+":
				cg.b.Fadd(dst, lr, rr)
			case "-":
				cg.b.Fsub(dst, lr, rr)
			case "*":
				cg.b.Fmul(dst, lr, rr)
			case "/":
				cg.b.Fdiv(dst, lr, rr)
			}
		} else {
			switch e.Op {
			case "+":
				cg.b.Add(dst, lr, rr)
			case "-":
				cg.b.Sub(dst, lr, rr)
			case "*":
				cg.b.Mul(dst, lr, rr)
			case "/":
				cg.b.Div(dst, lr, rr)
			case "%":
				cg.b.Rem(dst, lr, rr)
			case "&":
				cg.b.And(dst, lr, rr)
			case "|":
				cg.b.Or(dst, lr, rr)
			case "^":
				cg.b.Xor(dst, lr, rr)
			case "<<":
				cg.b.Shl(dst, lr, rr)
			case ">>":
				cg.b.Shr(dst, lr, rr)
			}
		}
		cg.releaseIfTemp(opTy, rr, rTemp)
		cg.releaseIfTemp(opTy, lr, lTemp)
		return dst, true, nil

	case Call:
		switch e.Fn {
		case "sqrt", "exp", "ln", "abs":
			ar, aTemp, err := cg.genExpr(e.Args[0], TFloat)
			if err != nil {
				return 0, false, err
			}
			dst, err := cg.allocTemp(TFloat)
			if err != nil {
				return 0, false, err
			}
			switch e.Fn {
			case "sqrt":
				cg.b.Fsqrt(dst, ar)
			case "exp":
				cg.b.Fexp(dst, ar)
			case "ln":
				cg.b.Fln(dst, ar)
			case "abs":
				cg.b.Fabs(dst, ar)
			}
			cg.releaseIfTemp(TFloat, ar, aTemp)
			return dst, true, nil
		case "min", "max":
			lr, lTemp, err := cg.genExpr(e.Args[0], TFloat)
			if err != nil {
				return 0, false, err
			}
			rr, rTemp, err := cg.genExpr(e.Args[1], TFloat)
			if err != nil {
				return 0, false, err
			}
			dst, err := cg.allocTemp(TFloat)
			if err != nil {
				return 0, false, err
			}
			if e.Fn == "min" {
				cg.b.Fmin(dst, lr, rr)
			} else {
				cg.b.Fmax(dst, lr, rr)
			}
			cg.releaseIfTemp(TFloat, rr, rTemp)
			cg.releaseIfTemp(TFloat, lr, lTemp)
			return dst, true, nil
		case "float":
			ar, aTemp, err := cg.genExpr(e.Args[0], TInt)
			if err != nil {
				return 0, false, err
			}
			dst, err := cg.allocTemp(TFloat)
			if err != nil {
				return 0, false, err
			}
			cg.b.Itof(dst, ar)
			cg.releaseIfTemp(TInt, ar, aTemp)
			return dst, true, nil
		case "int":
			ar, aTemp, err := cg.genExpr(e.Args[0], TFloat)
			if err != nil {
				return 0, false, err
			}
			dst, err := cg.allocTemp(TInt)
			if err != nil {
				return 0, false, err
			}
			cg.b.Ftoi(dst, ar)
			cg.releaseIfTemp(TFloat, ar, aTemp)
			return dst, true, nil
		}
		return 0, false, cg.errf("unknown function %q", e.Fn)
	}
	return 0, false, cg.errf("unsupported expression %T", e)
}

// genComparisonValue materializes a comparison as an int 0/1 value.
func (cg *codegen) genComparisonValue(e Binary) (int, bool, error) {
	dst, err := cg.allocTemp(TInt)
	if err != nil {
		return 0, false, err
	}
	falseL, endL := cg.label("cfalse"), cg.label("cend")
	if err := cg.genBranchIfFalse(e, falseL); err != nil {
		return 0, false, err
	}
	cg.b.Li(dst, 1)
	cg.b.Jmp(endL)
	cg.b.Label(falseL)
	cg.b.Li(dst, 0)
	cg.b.Label(endL)
	return dst, true, nil
}

// genBranchIfFalse emits code jumping to target when cond is false.
func (cg *codegen) genBranchIfFalse(cond Expr, target string) error {
	if b, ok := cond.(Binary); ok {
		switch b.Op {
		case "<", "<=", ">", ">=", "==", "!=":
			opTy, err := cg.operandType(b)
			if err != nil {
				return err
			}
			lr, lTemp, err := cg.genExpr(b.L, opTy)
			if err != nil {
				return err
			}
			rr, rTemp, err := cg.genExpr(b.R, opTy)
			if err != nil {
				return err
			}
			// Branch on the *negated* condition.
			if opTy == TFloat {
				switch b.Op {
				case "<":
					cg.b.Fble(rr, lr, target) // !(l<r) == r<=l
				case "<=":
					cg.b.Fblt(rr, lr, target)
				case ">":
					cg.b.Fble(lr, rr, target)
				case ">=":
					cg.b.Fblt(lr, rr, target)
				case "==":
					cg.b.Fbne(lr, rr, target)
				case "!=":
					cg.b.Fbeq(lr, rr, target)
				}
			} else {
				switch b.Op {
				case "<":
					cg.b.Bge(lr, rr, target)
				case "<=":
					cg.b.Bgt(lr, rr, target)
				case ">":
					cg.b.Ble(lr, rr, target)
				case ">=":
					cg.b.Blt(lr, rr, target)
				case "==":
					cg.b.Bne(lr, rr, target)
				case "!=":
					cg.b.Beq(lr, rr, target)
				}
			}
			cg.releaseIfTemp(opTy, rr, rTemp)
			cg.releaseIfTemp(opTy, lr, lTemp)
			return nil
		}
	}
	// Any other int expression: false when zero.
	r, isTemp, err := cg.genExpr(cond, TInt)
	if err != nil {
		return err
	}
	z, err := cg.allocTemp(TInt)
	if err != nil {
		return err
	}
	cg.b.Li(z, 0)
	cg.b.Beq(r, z, target)
	cg.freeTemp(TInt, z)
	cg.releaseIfTemp(TInt, r, isTemp)
	return nil
}
