package lang

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fastflip/internal/isa"
	"fastflip/internal/prog"
	"fastflip/internal/qcheck"
	"fastflip/internal/vm"
)

// randExpr builds a random float expression tree over variable "a" and
// literals, alongside a host-side evaluator. Division is avoided so the
// host and VM never disagree about exceptional values, and right-depth is
// bounded so the expression always fits the temp pool.
func randExpr(r *rand.Rand, depth int, a float64) (src string, val float64) {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return "a", a
		}
		lit := float64(r.Intn(17)) / 4
		return fmt.Sprintf("%g", lit), lit
	}
	ls, lv := randExpr(r, depth-1, a)
	rs, rv := randExpr(r, 0, a) // literals/vars only on the right: bounded temps
	switch r.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	default:
		return fmt.Sprintf("(%s * %s)", ls, rs), float64(lv * rv)
	}
}

// TestCompiledExpressionsMatchHostQuick: compiling a random arithmetic
// expression and executing it on the VM yields exactly the host-evaluated
// value. This ties the whole stack together: parser, type checker,
// codegen, linker, and interpreter.
func TestCompiledExpressionsMatchHostQuick(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		a := float64(aRaw)/16 - 8
		src, want := randExpr(r, 6, a)
		kernel := fmt.Sprintf(`
kernel k(in: float[1], out: float[1]) {
    var a: float = in[0];
    out[0] = %s;
}`, src)
		fns, err := Compile(kernel, Bindings{"in": 0, "out": 1})
		if err != nil {
			t.Logf("compile failed for %s: %v", src, err)
			return false
		}
		mod := prog.New()
		main := prog.NewFunc("main")
		main.Call("k")
		main.Halt()
		mod.MustAdd(main.MustBuild())
		mod.MustAdd(fns[0])
		linked, err := mod.Link("main")
		if err != nil {
			return false
		}
		m := vm.New(linked.Code, linked.Entry, 4)
		m.Mem[0] = math.Float64bits(a)
		if ev := m.Run(); ev.Kind != vm.EvHalt {
			return false
		}
		got := math.Float64frombits(m.Mem[1])
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Logf("expr %s with a=%v: vm %v, host %v", src, a, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, qcheck.Config(t, 200)); err != nil {
		t.Error(err)
	}
}

// TestCompiledKernelsRespectRegisterConventions: generated code must never
// touch the registers reserved for benchmark mains (r14, r15) or section
// drivers (r12, r13), which the analysis's section discipline depends on.
func TestCompiledKernelsRespectRegisterConventions(t *testing.T) {
	src := `
kernel busy(v: float[8], o: float[8]) {
    var s: float = 0.0;
    var p: float = 1.0;
    var q: float = 2.0;
    for i = 0 to 8 {
        for j = 0 to 4 {
            s = s + v[i] * p + q;
        }
        o[i] = min(s, 100.0) + sqrt(abs(s));
    }
}`
	fns, err := Compile(src, Bindings{"v": 0, "o": 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range fns[0].Instrs {
		for _, op := range in.Operands(nil) {
			if op.Class == isa.RegInt && op.Reg >= 12 {
				t.Fatalf("generated instruction %v touches reserved integer register r%d", in, op.Reg)
			}
		}
	}
}

// TestCompileRejectsGiantBufferIndexGracefully: an out-of-bounds constant
// index is a runtime matter (the VM crashes, a detected outcome), not a
// compile error — but compilation must still succeed and the VM must trap.
func TestOutOfBoundsIndexTrapsAtRuntime(t *testing.T) {
	src := `
kernel k(o: float[1]) {
    o[1000] = 1.0;
}`
	fns, err := Compile(src, Bindings{"o": 0})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	mod := prog.New()
	main := prog.NewFunc("main")
	main.Call("k")
	main.Halt()
	mod.MustAdd(main.MustBuild())
	mod.MustAdd(fns[0])
	linked, err := mod.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(linked.Code, linked.Entry, 4)
	if ev := m.Run(); ev.Kind != vm.EvCrash {
		t.Errorf("wild store ended with %v, want crash", ev.Kind)
	}
}

// TestDeepLeftChainsCompileFast guards the typeOf fix: typing a long
// left-nested chain must be (near) linear, not exponential.
func TestDeepLeftChainsCompileFast(t *testing.T) {
	var b strings.Builder
	b.WriteString("kernel k(o: float[1]) {\n    var a: float = 1.0;\n    o[0] = a")
	for i := 0; i < 2000; i++ {
		b.WriteString(" + a")
	}
	b.WriteString(";\n}\n")
	if _, err := Compile(b.String(), Bindings{"o": 0}); err != nil {
		t.Fatalf("2000-term chain: %v", err)
	}
}
