package lang

import (
	"strings"
	"testing"

	"fastflip/internal/isa"
)

func TestBitwiseOps(t *testing.T) {
	src := `
kernel bits(v: int[1], out: int[8]) {
    var x: int = 202;            // 0b11001010
    out[0] = x & 15;             // 10
    out[1] = x | 5;              // 207
    out[2] = x ^ 255;            // 53
    out[3] = x << 2;             // 808
    out[4] = x >> 3;             // 25
    var m: int = 12;
    out[5] = x & m;              // reg-reg form: 8
    out[6] = 1 | x & 12;         // & binds tighter than |: 9
    out[7] = x >> 1 + 1;         // additive binds tighter than shift: 50
}`
	m := runKernel(t, src, Bindings{"v": 0, "out": 1}, "bits", nil)
	want := []int64{10, 207, 53, 808, 25, 8, 9, 50}
	for i, w := range want {
		if got := int64(m.Mem[1+i]); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

// TestBitwiseLiteralUsesImmediateForm: a literal right operand must compile
// to the immediate opcode — the static masking analysis can only prove
// absorption against constants that appear in the instruction stream.
func TestBitwiseLiteralUsesImmediateForm(t *testing.T) {
	src := `
kernel f(out: int[1]) {
    var x: int = 77;
    out[0] = (((x & 240) | 7) ^ 12) << 4 >> 2;
}`
	fns, err := Compile(src, Bindings{"out": 0})
	if err != nil {
		t.Fatal(err)
	}
	got := map[isa.Op]bool{}
	for _, in := range fns[0].Instrs {
		got[in.Op] = true
	}
	for _, op := range []isa.Op{isa.ANDI, isa.ORI, isa.XORI, isa.SHLI, isa.SHRI} {
		if !got[op] {
			t.Errorf("compiled kernel is missing immediate form %v", op)
		}
	}
	for _, op := range []isa.Op{isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR} {
		if got[op] {
			t.Errorf("literal operands compiled to register form %v", op)
		}
	}
}

func TestBitwiseTypeErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"float operand", `
kernel f(x: float[1], out: int[1]) {
    out[0] = int(x[0]) & 3;
    var y: float = x[0];
    out[0] = y & 3;
}`, "& requires int operands"},
		{"float context", `
kernel f(out: float[1]) {
    out[0] = 2 & 3;
}`, "expected float expression, found int"},
		{"float shift", `
kernel f(out: float[1]) {
    var v: float = 1.0;
    out[0] = v << 1;
}`, "<< requires int operands"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, Bindings{"x": 0, "out": 1})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Compile error = %v, want it to contain %q", err, tc.wantErr)
			}
		})
	}
}
