// Shard record streaming: the wire format a remote injection worker uses
// to deliver its results back to a distributed coordinator.
//
// The stream reuses the WAL's record framing and payload encodings
// verbatim — u32 payload length, u32 CRC-32C, payload with a leading type
// byte — so a shard stream is literally a headerless WAL segment tail.
// A worker emits one experiment or poison frame per completed class,
// flushed eagerly so the coordinator can merge (and durably log)
// incrementally, and terminates a *complete* shard with a seal frame
// carrying the record count. A stream that ends without a seal is
// partial: the coordinator keeps whatever records framed cleanly and
// re-leases the remainder, exactly like WAL torn-tail recovery.
package inject

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Stream record types, aliased from the WAL record types they share the
// encoding with.
const (
	StreamExperiment = walRecExperiment
	StreamPoison     = walRecPoison
	StreamSeal       = walRecSeal
)

// StreamRecord is one decoded shard-stream frame. Type selects which
// field is meaningful.
type StreamRecord struct {
	Type byte
	// Experiment is set for StreamExperiment frames.
	Experiment WALRecord
	// Poison is set for StreamPoison frames.
	Poison WALPoison
	// Seal is the worker's record count, set for StreamSeal frames.
	Seal int
}

// StreamWriter frames experiment, poison, and seal records onto an
// io.Writer. If the writer exposes a Flush method (http.Flusher or
// bufio.Writer style) each record is flushed as written, so a consumer
// on the other end of a network stream sees records as they complete.
// Not safe for concurrent use; shard workers serialize through it.
type StreamWriter struct {
	w io.Writer
}

// NewStreamWriter returns a writer framing records onto w.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: w}
}

// WriteExperiment frames one completed experiment.
func (s *StreamWriter) WriteExperiment(rec WALRecord) error {
	return s.writeFrame(appendExperimentPayload(nil, rec))
}

// WritePoison frames one quarantined experiment.
func (s *StreamWriter) WritePoison(p WALPoison) error {
	return s.writeFrame(appendPoisonPayload(nil, p))
}

// WriteSeal terminates a complete shard stream with the count of
// experiment records that preceded it. A reader treats a stream ending
// without a seal as partial.
func (s *StreamWriter) WriteSeal(count int) error {
	payload := []byte{walRecSeal}
	payload = binary.LittleEndian.AppendUint32(payload, uint32(count))
	return s.writeFrame(payload)
}

func (s *StreamWriter) writeFrame(payload []byte) error {
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	if _, err := s.w.Write(buf); err != nil {
		return fmt.Errorf("inject: stream: %w", err)
	}
	switch f := s.w.(type) {
	case interface{ Flush() }:
		f.Flush()
	case interface{ Flush() error }:
		if err := f.Flush(); err != nil {
			return fmt.Errorf("inject: stream: %w", err)
		}
	}
	return nil
}

// StreamReader decodes shard-stream frames from an io.Reader
// incrementally: each Next blocks until one full frame is available.
type StreamReader struct {
	r   io.Reader
	hdr [8]byte
}

// NewStreamReader returns a reader decoding frames from r.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{r: r}
}

// Next decodes the next frame. It returns io.EOF at a clean frame
// boundary; a connection cut mid-frame surfaces as io.ErrUnexpectedEOF,
// and a corrupt frame (overlong length, checksum mismatch, short or
// unknown payload) as a descriptive error. Either way the caller treats
// the stream as partial from that point: records already returned remain
// valid — the same keep-the-good-prefix discipline as WAL recovery.
func (s *StreamReader) Next() (StreamRecord, error) {
	var rec StreamRecord
	if _, err := io.ReadFull(s.r, s.hdr[:]); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, io.ErrUnexpectedEOF
	}
	n := int(binary.LittleEndian.Uint32(s.hdr[:4]))
	sum := binary.LittleEndian.Uint32(s.hdr[4:])
	if n == 0 || n > maxWALPayload {
		return rec, fmt.Errorf("inject: stream: bad frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(s.r, payload); err != nil {
		return rec, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return rec, fmt.Errorf("inject: stream: frame checksum mismatch")
	}
	rec.Type = payload[0]
	body := payload[1:]
	switch rec.Type {
	case StreamExperiment:
		r, err := parseExperimentPayload(body)
		if err != nil {
			return rec, fmt.Errorf("inject: stream: experiment frame: %w", err)
		}
		rec.Experiment = r
	case StreamPoison:
		p, err := parsePoisonPayload(body)
		if err != nil {
			return rec, fmt.Errorf("inject: stream: poison frame: %w", err)
		}
		rec.Poison = p
	case StreamSeal:
		if len(body) != 4 {
			return rec, fmt.Errorf("inject: stream: malformed seal frame")
		}
		rec.Seal = int(binary.LittleEndian.Uint32(body))
	default:
		return rec, fmt.Errorf("inject: stream: unknown frame type %d", rec.Type)
	}
	return rec, nil
}
