// Write-ahead campaign log: crash-safe persistence of per-section
// injection campaigns at experiment granularity.
//
// Each section instance gets one append-only segment file. Every completed
// experiment is appended as a length-prefixed, checksummed record before
// the campaign moves on, so a crash (OOM, eviction, kill -9) loses at most
// the experiments still in flight. When the section's campaign finishes,
// the sensitivity result and a seal record are appended and the segment is
// fsynced — a sealed segment is a complete substitute for re-injecting the
// section.
//
// Segment layout:
//
//	header   magic "FFWAL" + format version, section content key (32 bytes),
//	         campaign config fingerprint (8 bytes)
//	records  u32 payload length, u32 CRC-32C of payload, payload
//
// Record payloads start with a one-byte type: experiment (class key,
// outcome, optional co-run final outcome, per-experiment cost counters),
// amplification (the section's sensitivity matrix and its cost), and seal
// (the total experiment count, for validation).
//
// Recovery reads records until the first torn or corrupt one — a length
// that overruns the file, or a checksum mismatch — and truncates the file
// there, reporting how many bytes were dropped. A torn tail is therefore
// detected and discarded, never silently merged. A header that fails
// validation (unknown version, different section key or fingerprint)
// invalidates the whole segment: the file is recreated fresh.
//
// All segment I/O flows through the errfs seam, so chaos tests can
// inject EIO/ENOSPC/short writes/failed fsyncs at chosen records.
// Transient write failures are retried under a capped jittered backoff
// (RetryPolicy); a partial append is truncated back to the last good
// record before the retry so the file never accumulates a mid-stream
// tear. A persistent failure latches the segment into a degraded state
// (ErrWALDegraded): further appends are refused immediately, the
// campaign finishes memory-only for this section, and the next section
// re-arms the log by opening a fresh segment.
package inject

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"fastflip/internal/errfs"
	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
)

// walMagic identifies a WAL segment and its format version. Bump the
// version byte on any incompatible format change; old segments are then
// discarded rather than misparsed.
var walMagic = [8]byte{'F', 'F', 'W', 'A', 'L', 0, 0, 2}

// walHeaderSize is the fixed segment header: magic, section key,
// campaign fingerprint.
const walHeaderSize = len(walMagic) + 32 + 8

// Record payload types.
const (
	walRecExperiment = byte(1)
	walRecAmp        = byte(2)
	walRecSeal       = byte(3)
	walRecPoison     = byte(4)
	walRecShard      = byte(5)
)

// maxPoisonStack bounds the stack trace stored in a poison record.
const maxPoisonStack = 8 << 10

// ErrWALDegraded marks a section WAL that hit a persistent write failure
// and latched itself off. Appends return it immediately; the analysis
// continues memory-only for the section and the campaign reports
// Summary.WALDegraded instead of aborting.
var ErrWALDegraded = errors.New("inject: wal degraded")

// maxWALPayload bounds a single record so a corrupt length prefix cannot
// trigger a huge allocation during recovery.
const maxWALPayload = 1 << 24

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms we run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALRecord is one logged experiment: the equivalence class injected, its
// outcome(s), and the cost the engine accounted for it.
type WALRecord struct {
	Key sites.ClassKey
	Out metrics.Outcome
	// Fin is the co-run end-to-end outcome; nil outside co-run campaigns.
	Fin *metrics.Outcome
	// Cost is this experiment's share of the campaign stats
	// (Cost.Experiments is always 1).
	Cost Stats
}

// WALAmp is the logged sensitivity result of a completed section.
type WALAmp struct {
	K         [][]float64
	Runs      int
	SimInstrs uint64
}

// WALPoison is the logged quarantine of an experiment that panicked on
// both attempts: its class, how often it was tried, a fingerprint of the
// experiment machine at the second panic, and the captured stack.
type WALPoison struct {
	Key       sites.ClassKey
	Attempts  int
	MachineFP uint64
	Stack     string
}

// WALShard is the provenance of one merged shard: which worker executed a
// range of the campaign's dyn-sorted experiment order, under which lease
// epoch, and how many records it delivered. Coordinators append one per
// merged shard stream so `fasm -wal-info` can attribute a campaign's
// records to the fleet that produced them.
type WALShard struct {
	// Worker is the self-reported ID of the remote injector.
	Worker string
	// Epoch is the lease epoch the shard ran under; a range re-leased
	// after a worker loss carries a higher epoch than the lost lease.
	Epoch uint64
	// Lo, Hi bound the shard's dyn-order positions [Lo, Hi).
	Lo, Hi int
	// Records is the number of experiment records merged from the shard.
	Records int
}

// Recovered is what OpenSectionWAL salvaged from an existing segment.
type Recovered struct {
	// Records maps class keys to their logged experiments.
	Records map[sites.ClassKey]WALRecord
	// Amp is the logged sensitivity result, nil if the crash preceded it.
	Amp *WALAmp
	// Poisoned holds the quarantine diagnostics of experiments that
	// panicked twice in a previous run. They carry no outcome: resume
	// re-executes their classes.
	Poisoned []WALPoison
	// Shards holds the provenance records of shards merged by a
	// distributed coordinator in a previous run (informational; they gate
	// nothing on resume).
	Shards []WALShard
	// Sealed reports a complete section campaign: outcomes, amplification,
	// and the seal record all present and consistent.
	Sealed bool
	// TruncatedBytes counts the torn/corrupt tail bytes dropped during
	// recovery (0 for a clean segment).
	TruncatedBytes int64

	// validSize is the byte length of the well-formed prefix, where
	// appends continue.
	validSize int64
}

// SectionWAL is an open append handle for one section's segment. Append,
// AppendAmp, AppendPoison, and Seal are safe for concurrent use by
// injection workers.
type SectionWAL struct {
	mu     sync.Mutex
	fs     errfs.FS
	retry  RetryPolicy
	f      errfs.File
	path   string
	off    int64 // end of the last well-formed record on disk
	count  int   // experiment records in the file
	sealed bool
	cause  error // non-nil once the segment degraded; latches
}

// WALOptions configure a section WAL's I/O behavior: the filesystem seam
// chaos tests inject faults through, and the retry policy for transient
// write failures. The zero value uses the real filesystem and default
// backoff.
type WALOptions struct {
	FS    errfs.FS
	Retry RetryPolicy
}

// SegmentPath returns the segment file path for a section content key.
func SegmentPath(dir string, key [32]byte) string {
	return filepath.Join(dir, fmt.Sprintf("%x.wal", key))
}

// OpenSectionWAL opens (or creates) the WAL segment for the section with
// the given content key. With resume set, an existing valid segment is
// recovered first and appends continue behind the recovered records; the
// returned Recovered reports what was salvaged and whether a torn tail was
// truncated. Without resume, or when the existing segment's header does
// not match (different format version, section key, or campaign
// fingerprint), the segment is recreated empty.
func OpenSectionWAL(dir string, key [32]byte, fingerprint uint64, resume bool) (*SectionWAL, *Recovered, error) {
	return OpenSectionWALOpts(dir, key, fingerprint, resume, WALOptions{})
}

// OpenSectionWALOpts is OpenSectionWAL with explicit I/O options.
func OpenSectionWALOpts(dir string, key [32]byte, fingerprint uint64, resume bool, opts WALOptions) (*SectionWAL, *Recovered, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = errfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("inject: wal: %w", err)
	}
	path := SegmentPath(dir, key)
	var rec *Recovered
	if resume {
		r, err := recoverSegment(fsys, path, key, fingerprint)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, nil, err
		}
		rec = r
	}
	if rec == nil {
		if err := writeSegmentHeader(fsys, path, key, fingerprint); err != nil {
			return nil, nil, err
		}
		rec = &Recovered{Records: map[sites.ClassKey]WALRecord{}, validSize: int64(walHeaderSize)}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("inject: wal: %w", err)
	}
	w := &SectionWAL{
		fs:     fsys,
		retry:  opts.Retry,
		f:      f,
		path:   path,
		off:    rec.validSize,
		count:  len(rec.Records),
		sealed: rec.Sealed,
	}
	return w, rec, nil
}

// writeSegmentHeader (re)creates the segment with just a synced header.
func writeSegmentHeader(fsys errfs.FS, path string, key [32]byte, fingerprint uint64) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("inject: wal: %w", err)
	}
	hdr := make([]byte, 0, walHeaderSize)
	hdr = append(hdr, walMagic[:]...)
	hdr = append(hdr, key[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, fingerprint)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("inject: wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("inject: wal: %w", err)
	}
	return f.Close()
}

// Append logs one completed experiment. The record is durable against
// process death as soon as Append returns (it is written with a single
// write syscall); durability against machine crash is established by the
// fsync in Seal.
func (w *SectionWAL) Append(rec WALRecord) error {
	payload := appendExperimentPayload(nil, rec)
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.writeRecord(payload); err != nil {
		return err
	}
	w.count++
	return nil
}

// AppendAmp logs the section's sensitivity result.
func (w *SectionWAL) AppendAmp(a WALAmp) error {
	payload := appendAmpPayload(nil, a)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeRecord(payload)
}

// AppendPoison logs the quarantine diagnostics of an experiment that
// panicked twice. The record carries no outcome — a resume re-executes
// the class — it preserves the stack and machine fingerprint for
// post-mortem inspection via `fasm -wal-info`.
func (w *SectionWAL) AppendPoison(p WALPoison) error {
	payload := appendPoisonPayload(nil, p)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeRecord(payload)
}

// AppendShard logs the provenance of a merged shard stream: which worker
// delivered which range of the campaign under which lease epoch. Purely
// informational — recovery collects but never validates these.
func (w *SectionWAL) AppendShard(s WALShard) error {
	payload := appendShardPayload(nil, s)
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeRecord(payload)
}

// Seal marks the section campaign complete and fsyncs the segment — the
// "segment roll": after Seal returns, the section's results survive a
// machine crash, and resume will reconstruct the section without
// re-injecting anything.
func (w *SectionWAL) Seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := []byte{walRecSeal}
	payload = binary.LittleEndian.AppendUint32(payload, uint32(w.count))
	before := w.off
	if err := w.writeRecord(payload); err != nil {
		return err
	}
	if err := w.retry.Do(w.f.Sync); err != nil {
		// The seal record landed in the file but never reached the disk.
		// Cut it back off (best effort) so recovery sees an honest
		// unsealed segment rather than a seal with no durability behind
		// it.
		if w.fs.Truncate(w.path, before) == nil {
			w.off = before
		}
		return w.degrade(fmt.Errorf("inject: wal %s: seal sync: %w", w.path, err))
	}
	w.sealed = true
	return nil
}

// Count returns the number of experiment records in the segment
// (recovered plus appended).
func (w *SectionWAL) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Degraded reports whether the segment latched off after a persistent
// write failure.
func (w *SectionWAL) Degraded() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cause != nil
}

// Close fsyncs the durable prefix and releases the file handle without
// sealing. The sync makes an interrupted campaign's records survive a
// machine crash too, and guarantees a drained service leaves no segment
// with an unflushed tail. Sync errors are swallowed: the handle is being
// released, there is nothing left to degrade.
func (w *SectionWAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cause == nil {
		_ = w.f.Sync()
	}
	return w.f.Close()
}

// degrade latches the segment off and returns the wrapped sentinel.
func (w *SectionWAL) degrade(cause error) error {
	if w.cause == nil {
		w.cause = cause
	}
	return fmt.Errorf("%w: %v", ErrWALDegraded, w.cause)
}

// writeRecord frames and writes one payload under w.mu, retrying
// transient failures with backoff. A partial append is truncated back to
// the last good record before the retry, so the segment never carries a
// mid-stream tear; if that truncation itself fails, the failure is
// permanent. Once the retries are exhausted the segment degrades: the
// error is latched and every further write is refused immediately with
// ErrWALDegraded.
func (w *SectionWAL) writeRecord(payload []byte) error {
	if w.cause != nil {
		return fmt.Errorf("%w: %v", ErrWALDegraded, w.cause)
	}
	buf := make([]byte, 0, 8+len(payload))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	err := w.retry.Do(func() error {
		n, werr := w.f.Write(buf)
		if werr == nil && n != len(buf) {
			werr = io.ErrShortWrite
		}
		if werr == nil {
			return nil
		}
		if n > 0 {
			// The failed write left partial bytes behind. Cut the file
			// back to the last good record so the retry appends at a
			// clean boundary; a recovery that races in meanwhile would
			// discard the fragment as a torn tail either way.
			if terr := w.fs.Truncate(w.path, w.off); terr != nil {
				return permanent(fmt.Errorf("%v (truncating partial append: %v)", werr, terr))
			}
		}
		return werr
	})
	if err != nil {
		return w.degrade(fmt.Errorf("inject: wal %s: %w", w.path, err))
	}
	w.off += int64(len(buf))
	return nil
}

// recoverSegment reads an existing segment. It returns nil (no error) when
// the header is invalid or mismatched — the segment belongs to a different
// format, section, or campaign and must be recreated. A torn or corrupt
// record tail is truncated off the file and counted in TruncatedBytes.
func recoverSegment(fsys errfs.FS, path string, key [32]byte, fingerprint uint64) (*Recovered, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < walHeaderSize {
		return nil, nil
	}
	hdr := data[:walHeaderSize]
	if string(hdr[:len(walMagic)]) != string(walMagic[:]) {
		return nil, nil
	}
	if string(hdr[len(walMagic):len(walMagic)+32]) != string(key[:]) {
		return nil, nil
	}
	if binary.LittleEndian.Uint64(hdr[len(walMagic)+32:]) != fingerprint {
		return nil, nil
	}

	rec := &Recovered{Records: map[sites.ClassKey]WALRecord{}}
	off := walHeaderSize
	valid := off // end of the last well-formed record
	sealCount := -1
	truncate := func() (*Recovered, error) {
		rec.TruncatedBytes = int64(len(data) - valid)
		rec.validSize = int64(valid)
		return rec, truncateTo(fsys, path, valid)
	}
	for {
		payload, next, ok := nextRecord(data, off)
		if !ok {
			break
		}
		typ := payload[0]
		body := payload[1:]
		switch typ {
		case walRecExperiment:
			r, perr := parseExperimentPayload(body)
			if perr != nil {
				// Structurally corrupt despite a matching checksum: stop
				// here and drop the rest of the file.
				return truncate()
			}
			rec.Records[r.Key] = r
		case walRecAmp:
			a, perr := parseAmpPayload(body)
			if perr != nil {
				return truncate()
			}
			rec.Amp = a
		case walRecPoison:
			p, perr := parsePoisonPayload(body)
			if perr != nil {
				return truncate()
			}
			rec.Poisoned = append(rec.Poisoned, p)
		case walRecShard:
			s, perr := parseShardPayload(body)
			if perr != nil {
				return truncate()
			}
			rec.Shards = append(rec.Shards, s)
		case walRecSeal:
			if len(body) == 4 {
				sealCount = int(binary.LittleEndian.Uint32(body))
			}
		}
		off = next
		valid = next
	}
	if valid < len(data) {
		return truncate()
	}
	rec.validSize = int64(valid)
	rec.Sealed = sealCount >= 0 && sealCount == len(rec.Records) && rec.Amp != nil
	return rec, nil
}

// SegmentInfo is a read-only description of one WAL segment, taken without
// validating it against any campaign (no key or fingerprint check) — the
// view `fasm -wal-info` prints when debugging a crashed campaign.
type SegmentInfo struct {
	Key         [32]byte
	Version     byte
	Fingerprint uint64
	Experiments int
	HasAmp      bool
	Sealed      bool
	// Poisoned counts quarantined-experiment records: injections that
	// panicked twice and were logged with diagnostics instead of an
	// outcome.
	Poisoned int
	// Shards holds the provenance of shard streams a distributed
	// coordinator merged into this segment: originating worker ID, lease
	// epoch, dyn-order range, and record count.
	Shards []WALShard
	// TailBytes counts trailing bytes that do not frame as complete,
	// checksummed records — the torn tail a resume would truncate.
	TailBytes int64
}

// InspectSegment reads a segment's header and record stream without
// modifying the file. Unlike recovery it accepts any section key and
// fingerprint, but still requires the magic and format version.
func InspectSegment(path string) (SegmentInfo, error) {
	var info SegmentInfo
	data, err := os.ReadFile(path)
	if err != nil {
		return info, err
	}
	if len(data) < walHeaderSize || string(data[:len(walMagic)-1]) != string(walMagic[:len(walMagic)-1]) {
		return info, fmt.Errorf("inject: wal %s: not a WAL segment", path)
	}
	info.Version = data[len(walMagic)-1]
	copy(info.Key[:], data[len(walMagic):])
	info.Fingerprint = binary.LittleEndian.Uint64(data[len(walMagic)+32:])
	if info.Version != walMagic[len(walMagic)-1] {
		return info, fmt.Errorf("inject: wal %s: unknown format version %d", path, info.Version)
	}
	off := walHeaderSize
	sealCount := -1
	for {
		payload, next, ok := nextRecord(data, off)
		if !ok {
			break
		}
		switch payload[0] {
		case walRecExperiment:
			info.Experiments++
		case walRecAmp:
			info.HasAmp = true
		case walRecPoison:
			info.Poisoned++
		case walRecShard:
			if s, perr := parseShardPayload(payload[1:]); perr == nil {
				info.Shards = append(info.Shards, s)
			}
		case walRecSeal:
			if len(payload) == 5 {
				sealCount = int(binary.LittleEndian.Uint32(payload[1:]))
			}
		}
		off = next
	}
	info.TailBytes = int64(len(data) - off)
	info.Sealed = sealCount >= 0 && sealCount == info.Experiments && info.HasAmp
	return info, nil
}

// nextRecord frames the record at off, verifying length and checksum.
func nextRecord(data []byte, off int) (payload []byte, next int, ok bool) {
	if off+8 > len(data) {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxWALPayload || off+8+n > len(data) {
		return nil, 0, false
	}
	payload = data[off+8 : off+8+n]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, false
	}
	return payload, off + 8 + n, true
}

// truncateTo cuts the segment file back to its last well-formed record.
func truncateTo(fsys errfs.FS, path string, size int) error {
	if err := fsys.Truncate(path, int64(size)); err != nil {
		return fmt.Errorf("inject: wal %s: truncating torn tail: %w", path, err)
	}
	return nil
}

// --- payload encoding -------------------------------------------------

// appendClassKey encodes an equivalence-class key (the shared prefix of
// experiment and poison payloads).
func appendClassKey(buf []byte, key sites.ClassKey) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key.Static.Func)))
	buf = append(buf, key.Static.Func...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(key.Static.Local))
	buf = append(buf, byte(key.Role), key.Bit)
	return buf
}

func parseClassKey(r *walReader) (sites.ClassKey, error) {
	var key sites.ClassKey
	n, err := r.u32()
	if err != nil {
		return key, err
	}
	fn, err := r.bytes(int(n))
	if err != nil {
		return key, err
	}
	key.Static.Func = string(fn)
	local, err := r.u32()
	if err != nil {
		return key, err
	}
	key.Static.Local = int(int32(local))
	role, err := r.u8()
	if err != nil {
		return key, err
	}
	bit, err := r.u8()
	if err != nil {
		return key, err
	}
	key.Role, key.Bit = isa.OperandRole(role), bit
	return key, nil
}

func appendExperimentPayload(buf []byte, rec WALRecord) []byte {
	buf = append(buf, walRecExperiment)
	buf = appendClassKey(buf, rec.Key)
	buf = appendOutcome(buf, rec.Out)
	if rec.Fin != nil {
		buf = append(buf, 1)
		buf = appendOutcome(buf, *rec.Fin)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint64(buf, rec.Cost.SimInstrs)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Cost.CleanInstrs)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Cost.FaultyInstrs)
	// v2: how the experiment was executed. Elision and batching are
	// outcome-neutral, but a resumed campaign must re-account recovered
	// records at their original cost shares so merged summaries stay
	// identical to an uninterrupted run.
	var flags byte
	if rec.Cost.ElidedExperiments > 0 {
		flags |= walFlagElided
	}
	if rec.Cost.BatchExperiments > 0 {
		flags |= walFlagBatched
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Cost.ElidedInstrs)
	return buf
}

// Experiment-record execution flags (WAL format v2).
const (
	walFlagElided  = byte(1 << 0)
	walFlagBatched = byte(1 << 1)
)

func appendOutcome(buf []byte, o metrics.Outcome) []byte {
	buf = append(buf, byte(o.Kind), byte(o.Reason))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(o.Magnitudes)))
	for _, m := range o.Magnitudes {
		// Raw bits round-trip the ±Inf conservative magnitudes exactly.
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m))
	}
	return buf
}

var errWALShort = errors.New("inject: wal: short record payload")

type walReader struct {
	b []byte
}

func (r *walReader) bytes(n int) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, errWALShort
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *walReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *walReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *walReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func parseExperimentPayload(body []byte) (WALRecord, error) {
	r := &walReader{b: body}
	var rec WALRecord
	var err error
	if rec.Key, err = parseClassKey(r); err != nil {
		return rec, err
	}
	if rec.Out, err = parseOutcome(r); err != nil {
		return rec, err
	}
	hasFin, err := r.u8()
	if err != nil {
		return rec, err
	}
	if hasFin != 0 {
		fin, err := parseOutcome(r)
		if err != nil {
			return rec, err
		}
		rec.Fin = &fin
	}
	rec.Cost.Experiments = 1
	if rec.Cost.SimInstrs, err = r.u64(); err != nil {
		return rec, err
	}
	if rec.Cost.CleanInstrs, err = r.u64(); err != nil {
		return rec, err
	}
	if rec.Cost.FaultyInstrs, err = r.u64(); err != nil {
		return rec, err
	}
	flags, err := r.u8()
	if err != nil {
		return rec, err
	}
	if rec.Cost.ElidedInstrs, err = r.u64(); err != nil {
		return rec, err
	}
	if flags&walFlagElided != 0 {
		rec.Cost.ElidedExperiments = 1
	}
	if flags&walFlagBatched != 0 {
		rec.Cost.BatchExperiments = 1
	}
	if len(r.b) != 0 {
		return rec, errWALShort
	}
	return rec, nil
}

func parseOutcome(r *walReader) (metrics.Outcome, error) {
	var o metrics.Outcome
	kind, err := r.u8()
	if err != nil {
		return o, err
	}
	reason, err := r.u8()
	if err != nil {
		return o, err
	}
	o.Kind, o.Reason = metrics.OutcomeKind(kind), metrics.DetectReason(reason)
	n, err := r.u32()
	if err != nil {
		return o, err
	}
	if n > maxWALPayload/8 {
		return o, errWALShort
	}
	if n > 0 {
		o.Magnitudes = make([]float64, n)
		for i := range o.Magnitudes {
			bits, err := r.u64()
			if err != nil {
				return o, err
			}
			o.Magnitudes[i] = math.Float64frombits(bits)
		}
	}
	return o, nil
}

func appendAmpPayload(buf []byte, a WALAmp) []byte {
	buf = append(buf, walRecAmp)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a.K)))
	cols := 0
	if len(a.K) > 0 {
		cols = len(a.K[0])
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cols))
	for _, row := range a.K {
		for _, v := range row {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.Runs))
	buf = binary.LittleEndian.AppendUint64(buf, a.SimInstrs)
	return buf
}

func appendPoisonPayload(buf []byte, p WALPoison) []byte {
	buf = append(buf, walRecPoison)
	buf = appendClassKey(buf, p.Key)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Attempts))
	buf = binary.LittleEndian.AppendUint64(buf, p.MachineFP)
	stack := p.Stack
	if len(stack) > maxPoisonStack {
		stack = stack[:maxPoisonStack]
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stack)))
	buf = append(buf, stack...)
	return buf
}

func parsePoisonPayload(body []byte) (WALPoison, error) {
	r := &walReader{b: body}
	var p WALPoison
	var err error
	if p.Key, err = parseClassKey(r); err != nil {
		return p, err
	}
	attempts, err := r.u32()
	if err != nil {
		return p, err
	}
	p.Attempts = int(attempts)
	if p.MachineFP, err = r.u64(); err != nil {
		return p, err
	}
	n, err := r.u32()
	if err != nil {
		return p, err
	}
	stack, err := r.bytes(int(n))
	if err != nil {
		return p, err
	}
	p.Stack = string(stack)
	if len(r.b) != 0 {
		return p, errWALShort
	}
	return p, nil
}

func appendShardPayload(buf []byte, s WALShard) []byte {
	buf = append(buf, walRecShard)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Worker)))
	buf = append(buf, s.Worker...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Epoch)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Lo))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Hi))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Records))
	return buf
}

func parseShardPayload(body []byte) (WALShard, error) {
	r := &walReader{b: body}
	var s WALShard
	n, err := r.u32()
	if err != nil {
		return s, err
	}
	worker, err := r.bytes(int(n))
	if err != nil {
		return s, err
	}
	s.Worker = string(worker)
	if s.Epoch, err = r.u64(); err != nil {
		return s, err
	}
	lo, err := r.u32()
	if err != nil {
		return s, err
	}
	hi, err := r.u32()
	if err != nil {
		return s, err
	}
	recs, err := r.u32()
	if err != nil {
		return s, err
	}
	s.Lo, s.Hi, s.Records = int(lo), int(hi), int(recs)
	if len(r.b) != 0 {
		return s, errWALShort
	}
	return s, nil
}

func parseAmpPayload(body []byte) (*WALAmp, error) {
	r := &walReader{b: body}
	rows, err := r.u32()
	if err != nil {
		return nil, err
	}
	cols, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint64(rows)*uint64(cols) > maxWALPayload/8 {
		return nil, errWALShort
	}
	a := &WALAmp{K: make([][]float64, rows)}
	for i := range a.K {
		a.K[i] = make([]float64, cols)
		for j := range a.K[i] {
			bits, err := r.u64()
			if err != nil {
				return nil, err
			}
			a.K[i][j] = math.Float64frombits(bits)
		}
	}
	runs, err := r.u64()
	if err != nil {
		return nil, err
	}
	a.Runs = int(runs)
	if a.SimInstrs, err = r.u64(); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, errWALShort
	}
	return a, nil
}
