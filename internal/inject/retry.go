package inject

import (
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy bounds the retries applied to transient WAL and store
// write failures: a capped, jittered exponential backoff. The zero value
// means "use the defaults"; campaigns override it through
// core.Config.WALRetry (tests shrink the delays and stub Sleep).
type RetryPolicy struct {
	// Attempts is the total number of tries per operation, first included
	// (default 4).
	Attempts int
	// Base is the backoff before the first retry (default 2ms); each
	// subsequent retry doubles it up to Max (default 100ms). The actual
	// sleep is jittered uniformly over [d/2, d] so retries from parallel
	// workers do not synchronize against a recovering disk.
	Base time.Duration
	Max  time.Duration
	// Sleep replaces time.Sleep, for tests. Nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.Base <= 0 {
		p.Base = 2 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// permanentError marks a failure the retry loop must surface immediately
// — retrying cannot help (e.g. the segment could not be truncated back
// to a clean record boundary, so further appends would corrupt it).
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// permanent wraps err so RetryPolicy.Do gives up on it at once.
func permanent(err error) error { return &permanentError{err: err} }

// Do runs op under the policy: up to Attempts tries with capped jittered
// backoff between them. It returns nil on the first success, the
// unwrapped error as soon as op reports a permanent failure, and op's
// last error once the attempts are exhausted.
func (p RetryPolicy) Do(op func() error) error {
	p = p.withDefaults()
	delay := p.Base
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if attempt == p.Attempts-1 {
			break
		}
		p.Sleep(jitter(delay))
		if delay *= 2; delay > p.Max {
			delay = p.Max
		}
	}
	return err
}

// jitter picks a uniform duration in [d/2, d].
func jitter(d time.Duration) time.Duration {
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}
