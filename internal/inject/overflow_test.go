package inject

import (
	"context"
	"reflect"
	"testing"

	"fastflip/internal/prog"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

// overflowProg builds a program whose single section runs a store loop:
// every iteration writes memory, so a bit flip that inflates the loop
// bound makes the faulty run journal far more writes than the journal cap
// before the section timeout trips. The nominal iteration count is sized
// so the clean section stays well under the cap but the 5x timeout budget
// allows hundreds of faulty iterations.
func overflowProg(iters int64) *spec.Program {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Call("fill")
	main.SecEnd(0)
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	fill := prog.NewFunc("fill")
	fill.Li(1, 0)
	fill.Fld(0, 1, 0) // f0 = x
	fill.Li(1, 2)     // scratch pointer
	fill.Li(2, 0)     // i
	fill.Li(3, iters) // loop bound: the adversarial flip target
	fill.Label("loop")
	fill.Fst(0, 1, 0) // one journaled write per iteration
	fill.Addi(2, 2, 1)
	fill.Blt(2, 3, "loop")
	fill.Li(1, 1)
	fill.Fst(0, 1, 0) // y = f0
	fill.Ret()
	p.MustAdd(fill.MustBuild())

	linked, err := p.Link("main")
	if err != nil {
		panic(err)
	}
	x := spec.Buffer{Name: "x", Addr: 0, Len: 1, Kind: spec.Float}
	y := spec.Buffer{Name: "y", Addr: 1, Len: 1, Kind: spec.Float}
	return &spec.Program{
		Name: "overflow", Linked: linked, MemWords: 4,
		Init: func(m *vm.Machine) { m.Mem[0] = 0x3FF0000000000000 }, // x = 1.0
		Sections: []spec.Section{{ID: 0, Name: "fill", Instances: []spec.InstanceIO{
			{Inputs: []spec.Buffer{x}, Outputs: []spec.Buffer{y}, Live: []spec.Buffer{x, y}},
		}}},
		FinalOutputs: []spec.Buffer{y},
	}
}

// TestJournalOverflowMidRangeDoesNotPoisonCursor is the regression test
// for journal-overflow poisoning: when a flip inflates the loop bound and
// the faulty run overflows the write journal, UndoJournal refuses and the
// engine must full-restore the experiment machine from the clean cursor —
// not leave it carrying faulty memory into the rest of the worker's range.
// The cursor engine's outcomes over the whole campaign must therefore be
// bit-identical to the legacy engine, which rebuilds every experiment from
// a checkpoint copy and cannot be poisoned by construction.
func TestJournalOverflowMidRangeDoesNotPoisonCursor(t *testing.T) {
	p := overflowProg(64)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	inst := tr.Instances[0]
	classes := sites.ForInstance(tr, inst, sites.Options{Prune: true, Width: 1})
	if len(classes) < 8 {
		t.Fatalf("fixture too small: %d classes", len(classes))
	}

	// The test is vacuous unless some experiment actually overflows the
	// journal mid-range. Replicate the engine's fork (clean replay, then
	// flip and run under a journal) to prove the fixture forces it.
	overflowAt := -1
	for i, c := range classes {
		site := siteOf(c)
		seed, _ := tr.ReplaySeed(site.Dyn)
		m := seed.Clone()
		m.MaxDyn = sectionLimit(inst)
		if ev := m.RunUntilDyn(site.Dyn); ev.Kind != vm.EvNone {
			t.Fatalf("clean replay to dyn %d ended with %v", site.Dyn, ev.Kind)
		}
		m.BeginJournal()
		if _, err := applyFlip(m, site); err != nil {
			t.Fatal(err)
		}
	run:
		for {
			switch ev := m.Step(); ev.Kind {
			case vm.EvSecEnd, vm.EvHalt, vm.EvCrash, vm.EvTimeout:
				break run
			}
		}
		if m.JournalOverflowed() {
			overflowAt = i
			break
		}
		m.EndJournal()
	}
	if overflowAt < 0 {
		t.Fatal("no experiment overflows the journal; the fixture lost its adversarial flip")
	}
	if overflowAt == len(classes)-1 {
		t.Fatal("the overflowing experiment is the last one; nothing after it can detect poisoning")
	}

	inj := &Injector{T: tr, Workers: 1}
	got, gotStats := inj.RunSection(context.Background(), inst, classes)
	legacy := &Injector{T: tr, Workers: 1, Legacy: true}
	want, wantStats := legacy.RunSection(context.Background(), inst, classes)

	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("class %d: cursor engine %+v, legacy %+v", i, got[i], want[i])
			}
		}
	}
	if gotStats.Experiments != wantStats.Experiments || gotStats.SimInstrs != wantStats.SimInstrs {
		t.Errorf("accounted cost diverged: cursor {exp %d, sim %d}, legacy {exp %d, sim %d}",
			gotStats.Experiments, gotStats.SimInstrs, wantStats.Experiments, wantStats.SimInstrs)
	}
}
