package inject

import (
	"context"
	"math"
	"testing"

	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sites"
	"fastflip/internal/spec"
	"fastflip/internal/testprog"
	"fastflip/internal/trace"
)

func recorded(t *testing.T) (*trace.Trace, *Injector) {
	t.Helper()
	tr, err := trace.Record(testprog.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return tr, &Injector{T: tr, Workers: 1}
}

// siteAt finds the dynamic index of the n-th ROI occurrence of op and
// returns a site on the requested operand role and bit.
func siteAt(t *testing.T, tr *trace.Trace, op isa.Op, occur int, role isa.OperandRole, bit uint8) sites.Site {
	t.Helper()
	seen := 0
	for d := tr.ROIBeg + 1; d < tr.ROIEnd; d++ {
		in := tr.Prog.Linked.Code[tr.PCs[d]]
		if in.Op != op {
			continue
		}
		if seen != occur {
			seen++
			continue
		}
		for _, o := range in.Operands(nil) {
			if o.Role == role {
				return sites.Site{Dyn: d, Operand: o, Bit: bit}
			}
		}
		t.Fatalf("instruction %v has no operand with role %v", op, role)
	}
	t.Fatalf("no occurrence %d of %v in ROI", occur, op)
	return sites.Site{}
}

func TestMonolithicSDCMagnitude(t *testing.T) {
	tr, inj := recorded(t)
	// Flip the sign bit of scale's multiply result: y becomes -4.5, so
	// z = y² + c is unchanged (squaring masks the sign!).
	site := siteAt(t, tr, isa.FMUL, 0, isa.OperandDst, 63)
	m := tr.Start.Clone()
	out, cost := inj.Monolithic(m, site)
	if out.Kind != metrics.Masked {
		t.Errorf("sign flip before squaring: %+v, want masked", out)
	}
	if cost == 0 {
		t.Error("experiment reported zero cost")
	}

	// Flip a mantissa bit instead: z must silently change.
	site.Bit = 40
	out, _ = inj.Monolithic(m, site)
	if out.Kind != metrics.SDC || out.MaxMagnitude() == 0 {
		t.Errorf("mantissa flip: %+v, want SDC", out)
	}
}

func TestMonolithicCrashDetected(t *testing.T) {
	tr, inj := recorded(t)
	// Flip a high bit of the store's base register: wild address, OOB.
	site := siteAt(t, tr, isa.FST, 0, isa.OperandSrcB, 40)
	m := tr.Start.Clone()
	out, _ := inj.Monolithic(m, site)
	if out.Kind != metrics.Detected || out.Reason != metrics.DetectCrash {
		t.Errorf("wild store: %+v, want detected crash", out)
	}
}

func TestSectionExperimentSeesLocalSDC(t *testing.T) {
	tr, inj := recorded(t)
	inst := tr.Instances[0] // scale
	site := siteAt(t, tr, isa.FMUL, 0, isa.OperandDst, 40)
	if !inst.Contains(site.Dyn) {
		t.Fatal("site not inside the scale section")
	}
	m := tr.Start.Clone()
	out, _ := inj.Section(m, inst, site)
	if out.Kind != metrics.SDC {
		t.Fatalf("section outcome: %+v", out)
	}
	// The magnitude is the flip's effect on y itself (bit 40 of 4.5).
	want := math.Abs(flipBit(testprog.WantY(), 40) - testprog.WantY())
	if math.Abs(out.Magnitudes[0]-want) > 1e-12 {
		t.Errorf("magnitude = %v, want %v", out.Magnitudes[0], want)
	}
}

func TestSectionSideEffectIsConservative(t *testing.T) {
	tr, inj := recorded(t)
	inst := tr.Instances[0]
	// Flip bit 1 of the store base register (r1 = 0 -> 2): scale writes y
	// into z's address — a live side effect outside its declared outputs.
	site := siteAt(t, tr, isa.FST, 0, isa.OperandSrcB, 1)
	m := tr.Start.Clone()
	out, _ := inj.Section(m, inst, site)
	if out.Kind != metrics.SDC || !math.IsInf(out.MaxMagnitude(), 1) {
		t.Errorf("side effect outcome: %+v, want conservative +Inf SDC", out)
	}
}

func TestSectionTimeoutDetected(t *testing.T) {
	// A looping section: corrupting the loop counter extends the section
	// beyond 5x nominal.
	p := prog.New()
	main := prog.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Li(1, 0)
	main.Li(2, 4)
	main.Label("loop")
	main.Addi(1, 1, 1)
	main.Blt(1, 2, "loop")
	main.SecEnd(0)
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())
	linked, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	sp := &spec.Program{
		Name: "loopy", Linked: linked, MemWords: 4,
		Sections:     []spec.Section{{ID: 0, Name: "s", Instances: []spec.InstanceIO{{}}}},
		FinalOutputs: []spec.Buffer{{Name: "o", Addr: 0, Len: 1, Kind: spec.Int}},
	}
	tr, err := trace.Record(sp)
	if err != nil {
		t.Fatal(err)
	}
	inj := &Injector{T: tr, Workers: 1}
	// Flip a high bit of the loop bound register r2 right as the branch
	// reads it: the loop now runs ~2^40 iterations.
	site := siteAt(t, tr, isa.BLT, 0, isa.OperandSrcB, 40)
	m := tr.Start.Clone()
	out, _ := inj.Section(m, tr.Instances[0], site)
	if out.Kind != metrics.Detected || out.Reason != metrics.DetectTimeout {
		t.Errorf("runaway loop: %+v, want detected timeout", out)
	}
}

func TestSourceFlipPersists(t *testing.T) {
	// A source-operand flip corrupts the architectural register, not just
	// the instruction's view: later readers of the same register see it.
	p := prog.New()
	main := prog.NewFunc("main")
	main.RoiBeg()
	main.SecBeg(0)
	main.Li(1, 1)
	main.Li(2, 0)
	main.Add(3, 1, 1) // first read of r1
	main.St(3, 2, 0)
	main.St(1, 2, 1) // second read of r1
	main.SecEnd(0)
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())
	linked, err := p.Link("main")
	if err != nil {
		t.Fatal(err)
	}
	out1 := spec.Buffer{Name: "sum", Addr: 0, Len: 1, Kind: spec.Int}
	out2 := spec.Buffer{Name: "copy", Addr: 1, Len: 1, Kind: spec.Int}
	sp := &spec.Program{
		Name: "persist", Linked: linked, MemWords: 4,
		Sections: []spec.Section{{ID: 0, Name: "s", Instances: []spec.InstanceIO{
			{Outputs: []spec.Buffer{out1, out2}},
		}}},
		FinalOutputs: []spec.Buffer{out1, out2},
	}
	tr, err := trace.Record(sp)
	if err != nil {
		t.Fatal(err)
	}
	inj := &Injector{T: tr, Workers: 1}
	site := siteAt(t, tr, isa.ADD, 0, isa.OperandSrcA, 4) // r1: 1 -> 17
	m := tr.Start.Clone()
	out, _ := inj.Monolithic(m, site)
	if out.Kind != metrics.SDC {
		t.Fatalf("outcome: %+v", out)
	}
	if out.Magnitudes[0] != 32 { // sum: 2 -> 34
		t.Errorf("sum magnitude = %v, want 32", out.Magnitudes[0])
	}
	if out.Magnitudes[1] != 16 { // copy: 1 -> 17 (the corruption persisted)
		t.Errorf("copy magnitude = %v, want 16 (source flip must persist)", out.Magnitudes[1])
	}
}

func TestRunMonolithicParallelMatchesSerial(t *testing.T) {
	tr, _ := recorded(t)
	classes := sites.Global(tr, sites.Options{Prune: true})
	serial := &Injector{T: tr, Workers: 1}
	parallel := &Injector{T: tr, Workers: 4}
	outS, statsS := serial.RunMonolithic(context.Background(), classes)
	outP, statsP := parallel.RunMonolithic(context.Background(), classes)
	if statsS.Experiments != len(classes) || statsP.Experiments != len(classes) {
		t.Fatalf("experiment counts: %d, %d, want %d", statsS.Experiments, statsP.Experiments, len(classes))
	}
	if statsS.SimInstrs != statsP.SimInstrs {
		t.Errorf("cost differs: %d vs %d", statsS.SimInstrs, statsP.SimInstrs)
	}
	for i := range outS {
		if outS[i].Kind != outP[i].Kind || outS[i].MaxMagnitude() != outP[i].MaxMagnitude() {
			t.Fatalf("class %d: serial %+v, parallel %+v", i, outS[i], outP[i])
		}
	}
}

func TestRunSectionCoversAllClasses(t *testing.T) {
	tr, inj := recorded(t)
	for _, inst := range tr.Instances {
		classes := sites.ForInstance(tr, inst, sites.Options{Prune: true})
		outs, stats := inj.RunSection(context.Background(), inst, classes)
		if len(outs) != len(classes) || stats.Experiments != len(classes) {
			t.Fatalf("instance %d: %d outcomes for %d classes", inst.Sec, len(outs), len(classes))
		}
	}
}

func TestRunMonolithicCancelled(t *testing.T) {
	tr, inj := recorded(t)
	classes := sites.Global(tr, sites.Options{Prune: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the campaign must run zero experiments
	outs, stats := inj.RunMonolithic(ctx, classes)
	if len(outs) != len(classes) {
		t.Fatalf("outcome slice length %d, want %d", len(outs), len(classes))
	}
	if stats.Experiments != 0 || stats.SimInstrs != 0 {
		t.Errorf("cancelled campaign ran %d experiments (%d instrs), want none",
			stats.Experiments, stats.SimInstrs)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Experiments: 2, SimInstrs: 100}
	a.Add(Stats{Experiments: 3, SimInstrs: 50})
	if a.Experiments != 5 || a.SimInstrs != 150 {
		t.Errorf("Add = %+v", a)
	}
}

func flipBit(v float64, bit uint) float64 {
	return math.Float64frombits(math.Float64bits(v) ^ (1 << bit))
}
