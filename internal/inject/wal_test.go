package inject

import (
	"math"
	"os"
	"testing"

	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sites"
)

func walKey(b byte) (k [32]byte) {
	for i := range k {
		k[i] = b
	}
	return k
}

func sampleRecords() []WALRecord {
	return []WALRecord{
		{
			Key:  sites.ClassKey{Static: prog.StaticID{Func: "scale", Local: 3}, Role: isa.OperandDst, Bit: 17},
			Out:  metrics.Outcome{Kind: metrics.SDC, Magnitudes: []float64{0.25, math.Inf(1)}},
			Cost: Stats{Experiments: 1, SimInstrs: 120, CleanInstrs: 30, FaultyInstrs: 90},
		},
		{
			Key:  sites.ClassKey{Static: prog.StaticID{Func: "square", Local: 0}, Role: isa.OperandSrcA, Bit: 63},
			Out:  metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectCrash},
			Fin:  &metrics.Outcome{Kind: metrics.Masked},
			Cost: Stats{Experiments: 1, SimInstrs: 7, CleanInstrs: 7},
		},
		{
			Key:  sites.ClassKey{Static: prog.StaticID{Func: "square", Local: 2}, Role: isa.OperandSrcB, Bit: 0},
			Out:  metrics.Outcome{Kind: metrics.Masked, Magnitudes: []float64{0}},
			Cost: Stats{Experiments: 1, SimInstrs: 55, FaultyInstrs: 55},
		},
	}
}

func outcomeEqual(a, b metrics.Outcome) bool {
	if a.Kind != b.Kind || a.Reason != b.Reason || len(a.Magnitudes) != len(b.Magnitudes) {
		return false
	}
	for i := range a.Magnitudes {
		if math.Float64bits(a.Magnitudes[i]) != math.Float64bits(b.Magnitudes[i]) {
			return false
		}
	}
	return true
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := walKey(0xAB)
	w, rec, err := OpenSectionWAL(dir, key, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.Sealed {
		t.Fatalf("fresh segment not empty: %+v", rec)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	amp := WALAmp{K: [][]float64{{1, 0.5}, {math.Inf(1), 0}}, Runs: 64, SimInstrs: 999}
	if err := w.AppendAmp(amp); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rec2, err := OpenSectionWAL(dir, key, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean segment reported %d truncated bytes", rec2.TruncatedBytes)
	}
	if !rec2.Sealed {
		t.Fatal("sealed segment not recognised as sealed")
	}
	if len(rec2.Records) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(want))
	}
	for _, r := range want {
		got, ok := rec2.Records[r.Key]
		if !ok {
			t.Fatalf("record %v missing", r.Key)
		}
		if !outcomeEqual(got.Out, r.Out) {
			t.Errorf("record %v outcome = %+v, want %+v", r.Key, got.Out, r.Out)
		}
		if (got.Fin == nil) != (r.Fin == nil) || (got.Fin != nil && !outcomeEqual(*got.Fin, *r.Fin)) {
			t.Errorf("record %v fin mismatch", r.Key)
		}
		if got.Cost != r.Cost {
			t.Errorf("record %v cost = %+v, want %+v", r.Key, got.Cost, r.Cost)
		}
	}
	if rec2.Amp == nil || rec2.Amp.Runs != amp.Runs || rec2.Amp.SimInstrs != amp.SimInstrs {
		t.Fatalf("amp not recovered: %+v", rec2.Amp)
	}
	for i := range amp.K {
		for j := range amp.K[i] {
			if math.Float64bits(rec2.Amp.K[i][j]) != math.Float64bits(amp.K[i][j]) {
				t.Errorf("amp K[%d][%d] = %v, want %v", i, j, rec2.Amp.K[i][j], amp.K[i][j])
			}
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	key := walKey(1)
	w, _, err := OpenSectionWAL(dir, key, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	path := SegmentPath(dir, key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop bytes off the last record.
	torn := data[:len(data)-5]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, rec, err := OpenSectionWAL(dir, key, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(rec.Records) != len(want)-1 {
		t.Fatalf("recovered %d records from torn segment, want %d", len(rec.Records), len(want)-1)
	}
	if rec.Sealed {
		t.Fatal("torn segment reported sealed")
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The file must have been truncated back to its last whole record, so a
	// subsequent append produces a fully valid segment again.
	if err := w2.Append(want[len(want)-1]); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, rec3, err := OpenSectionWAL(dir, key, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TruncatedBytes != 0 || len(rec3.Records) != len(want) {
		t.Fatalf("segment not clean after repair: truncated=%d records=%d", rec3.TruncatedBytes, len(rec3.Records))
	}
}

func TestWALChecksumCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	key := walKey(2)
	w, _, err := OpenSectionWAL(dir, key, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	path := SegmentPath(dir, key)
	data, _ := os.ReadFile(path)
	// Flip one payload byte in the middle of the file (not the tail):
	// recovery must stop at the corrupt record and drop it plus everything
	// after, never merging data that fails its checksum.
	data[walHeaderSize+8+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenSectionWAL(dir, key, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("recovered %d records past a corrupt one, want 0", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
}

func TestWALHeaderMismatchRecreates(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenSectionWAL(dir, walKey(3), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Same key, different campaign fingerprint: segment must be recreated.
	_, rec, err := OpenSectionWAL(dir, walKey(3), 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fingerprint-mismatched segment was not recreated: %+v", rec)
	}
	fi, err := os.Stat(SegmentPath(dir, walKey(3)))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(walHeaderSize) {
		t.Fatalf("recreated segment size = %d, want bare header %d", fi.Size(), walHeaderSize)
	}
}

func TestWALNoResumeWipes(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenSectionWAL(dir, walKey(4), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, rec, err := OpenSectionWAL(dir, walKey(4), 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatal("resume=false must start a fresh segment")
	}
}

func TestWALSealWithoutAmpNotSealed(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenSectionWAL(dir, walKey(5), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec, err := OpenSectionWAL(dir, walKey(5), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Sealed {
		t.Fatal("segment without an amp record must not count as sealed")
	}
	if len(rec.Records) != 1 {
		t.Fatalf("records = %d, want 1", len(rec.Records))
	}
}
