package inject

import (
	"context"
	"reflect"
	"testing"

	"fastflip/internal/metrics"
	"fastflip/internal/sites"
	"fastflip/internal/store"
)

// TestResumeMidSectionCampaign kills a per-section campaign at a
// deterministic experiment count (the WAL record hook cancels the context
// after K appends, with a single worker), reopens the segment, and resumes
// with the recovered records marked as skipped. The merged outcomes and
// accounted cost must be identical to an uninterrupted campaign, and the
// resumed run must execute exactly the remainder.
func TestResumeMidSectionCampaign(t *testing.T) {
	tr, inj := recorded(t)
	inst := tr.Instances[0]
	classes := sites.ForInstance(tr, inst, sites.Options{Prune: true, Width: 1})
	if len(classes) < 4 {
		t.Fatalf("fixture too small: %d classes", len(classes))
	}
	key, err := store.KeyFor(tr, inst)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Reference: uninterrupted campaign.
	wantOut, wantStats := inj.RunSection(context.Background(), inst, classes)

	// Phase 1: run with a WAL, cancel after K logged experiments.
	const fp = 99
	w, _, err := OpenSectionWAL(dir, key, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	kill := len(classes) / 2
	ctx, cancel := context.WithCancel(context.Background())
	logged := 0
	_, stats1 := inj.RunSectionResume(ctx, inst, classes, CampaignHooks{
		Record: func(i int, out metrics.Outcome, fin *metrics.Outcome, cost Stats) {
			if err := w.Append(WALRecord{Key: classes[i].Key, Out: out, Fin: fin, Cost: cost}); err != nil {
				t.Errorf("append: %v", err)
			}
			logged++
			if logged == kill {
				cancel()
			}
		},
	})
	cancel()
	w.Close() // no Seal: the "process" died here
	if stats1.Experiments != kill {
		t.Fatalf("interrupted campaign ran %d experiments, want exactly %d (single worker, cancel on K-th append)", stats1.Experiments, kill)
	}

	// Phase 2: recover and run only the remainder.
	w2, rec, err := OpenSectionWAL(dir, key, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(rec.Records) != kill {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), kill)
	}
	if rec.Sealed {
		t.Fatal("unsealed segment reported sealed")
	}
	skip := make([]bool, len(classes))
	var recStats Stats
	outcomes := make([]metrics.Outcome, len(classes))
	for i, c := range classes {
		if r, ok := rec.Records[c.Key]; ok {
			skip[i] = true
			recStats.Add(r.Cost)
			outcomes[i] = r.Out
		}
	}
	resumedOut, stats2 := inj.RunSectionResume(context.Background(), inst, classes, CampaignHooks{
		Skip: skip,
		Record: func(i int, out metrics.Outcome, fin *metrics.Outcome, cost Stats) {
			if err := w2.Append(WALRecord{Key: classes[i].Key, Out: out, Fin: fin, Cost: cost}); err != nil {
				t.Errorf("append: %v", err)
			}
		},
	})
	if stats2.Experiments != len(classes)-kill {
		t.Fatalf("resumed campaign ran %d experiments, want the remainder %d", stats2.Experiments, len(classes)-kill)
	}
	for i := range classes {
		if !skip[i] {
			outcomes[i] = resumedOut[i]
		}
	}

	// Merged outcomes and accounted cost must match the uninterrupted run.
	if !reflect.DeepEqual(outcomes, wantOut) {
		t.Error("merged outcomes differ from uninterrupted campaign")
	}
	var merged Stats
	merged.Add(recStats)
	merged.Add(stats2)
	if merged.Experiments != wantStats.Experiments || merged.SimInstrs != wantStats.SimInstrs {
		t.Errorf("merged accounted cost {exp %d, sim %d} differs from uninterrupted {exp %d, sim %d}",
			merged.Experiments, merged.SimInstrs, wantStats.Experiments, wantStats.SimInstrs)
	}

	// A third open must now see the complete section.
	w2.Close()
	_, rec3, err := OpenSectionWAL(dir, key, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != len(classes) {
		t.Fatalf("final segment holds %d records, want %d", len(rec3.Records), len(classes))
	}
}

// TestResumeSkipPreservesContiguity checks the scheduling invariant behind
// resume: with an arbitrary skip pattern the filtered experiment list is
// still dyn-sorted per worker, so the clean cursor never has to move
// backwards (a violation panics inside the engine).
func TestResumeSkipPreservesContiguity(t *testing.T) {
	tr, _ := recorded(t)
	inst := tr.Instances[1]
	classes := sites.ForInstance(tr, inst, sites.Options{Prune: true, Width: 1})
	inj := &Injector{T: tr, Workers: 3}
	skip := make([]bool, len(classes))
	for i := range skip {
		skip[i] = i%3 == 0
	}
	full, _ := inj.RunSection(context.Background(), inst, classes)
	part, stats := inj.RunSectionResume(context.Background(), inst, classes, CampaignHooks{Skip: skip})
	want := 0
	for i := range classes {
		if skip[i] {
			continue
		}
		want++
		if !reflect.DeepEqual(part[i], full[i]) {
			t.Errorf("class %d outcome differs under skip-filtered scheduling", i)
		}
	}
	if stats.Experiments != want {
		t.Errorf("ran %d experiments, want %d", stats.Experiments, want)
	}
}
