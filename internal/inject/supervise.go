package inject

import (
	"fmt"
	"runtime/debug"
	"sort"

	"fastflip/internal/sites"
	"fastflip/internal/vm"
)

// Poison is a quarantined equivalence class: its experiment panicked on a
// fresh machine twice in a row, so the campaign recorded the evidence and
// moved on instead of taking the process down. The class's outcome slot
// is filled with the conservative SDC-Bad classification, which keeps the
// downstream protection analysis sound (it can only over-protect).
type Poison struct {
	// Class is the index of the quarantined class in the campaign's class
	// slice.
	Class int
	// Key is the class's stable identity, usable across campaign runs.
	Key sites.ClassKey
	// Attempts is how many experiment attempts panicked (always 2: the
	// original run plus one retry on rebuilt machines).
	Attempts int
	// MachineFP fingerprints the experiment machine as the second panic
	// left it (vm.Machine.Fingerprint), so identical wedged states are
	// recognizable across runs.
	MachineFP uint64
	// Stack is the second panic's value and stack trace, truncated to
	// maxPoisonStack bytes.
	Stack string
}

// panicRecord is what the supervision wrapper salvages from a panicking
// experiment attempt.
type panicRecord struct {
	stack string
	fp    uint64
}

// runSupervised invokes run under panic recovery. On a panic it captures
// the truncated stack plus the fingerprint of the experiment machine
// (fetched through machine, since the caller rebinds it between attempts)
// and reports the attempt as failed instead of unwinding the worker.
func runSupervised(machine func() *vm.Machine, run func() Stats) (st Stats, rec *panicRecord) {
	defer func() {
		if r := recover(); r != nil {
			stack := fmt.Sprintf("panic: %v\n\n%s", r, debug.Stack())
			if len(stack) > maxPoisonStack {
				stack = stack[:maxPoisonStack]
			}
			rec = &panicRecord{stack: stack, fp: machine().Fingerprint()}
		}
	}()
	return run(), nil
}

// notePanicRetry counts a panicked attempt that will be retried.
func (inj *Injector) notePanicRetry() {
	inj.mu.Lock()
	inj.panicRetries++
	inj.mu.Unlock()
}

// notePoison records a quarantined class.
func (inj *Injector) notePoison(p Poison) {
	inj.mu.Lock()
	inj.poisoned = append(inj.poisoned, p)
	inj.mu.Unlock()
}

// Poisoned returns the classes quarantined so far across this injector's
// campaigns, sorted by class index for determinism (workers append them in
// scheduling order, which is nondeterministic).
func (inj *Injector) Poisoned() []Poison {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := append([]Poison(nil), inj.poisoned...)
	sort.Slice(out, func(a, b int) bool { return out[a].Class < out[b].Class })
	return out
}

// PanicRetries returns how many experiment attempts panicked and were
// retried on fresh machines (whether or not the retry then succeeded).
func (inj *Injector) PanicRetries() int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.panicRetries
}
