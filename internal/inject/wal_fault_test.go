package inject

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"fastflip/internal/errfs"
)

// fastRetry is a test policy: real attempts, no real sleeping.
func fastRetry() RetryPolicy {
	return RetryPolicy{Attempts: 3, Base: time.Microsecond, Max: time.Microsecond, Sleep: func(time.Duration) {}}
}

// openFaultWAL opens a fresh segment through a FaultFS armed with plan.
func openFaultWAL(t *testing.T, dir string, plan errfs.Plan) (*SectionWAL, *errfs.FaultFS) {
	t.Helper()
	ffs := errfs.Wrap(nil, plan)
	w, _, err := OpenSectionWALOpts(dir, walKey(0xEE), 7, true, WALOptions{FS: ffs, Retry: fastRetry()})
	if err != nil {
		t.Fatal(err)
	}
	return w, ffs
}

// TestWALTransientWriteRetried: a single EIO on one append is absorbed by
// the retry loop; the segment stays fully intact.
func TestWALTransientWriteRetried(t *testing.T) {
	dir := t.TempDir()
	// Writes: 1 = header. Fail the 3rd write (the 2nd record) once.
	w, ffs := openFaultWAL(t, dir, errfs.FailNth(errfs.OpWrite, 3, syscall.EIO))
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatalf("append with transient fault: %v", err)
		}
	}
	if w.Degraded() {
		t.Fatal("transient fault degraded the segment")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, faulted := ffs.Counts(errfs.OpWrite); faulted != 1 {
		t.Fatalf("faulted writes = %d, want 1", faulted)
	}
	_, rec, err := OpenSectionWAL(dir, walKey(0xEE), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != len(sampleRecords()) || rec.TruncatedBytes != 0 {
		t.Fatalf("recovered %d records, %d truncated bytes; want %d, 0", len(rec.Records), rec.TruncatedBytes, len(sampleRecords()))
	}
}

// TestWALShortWriteTruncatedAndRetried: a short write (torn append) leaves
// partial bytes; the writer truncates back to the record boundary and the
// retry lands the full record. The segment never shows a mid-stream tear.
func TestWALShortWriteTruncatedAndRetried(t *testing.T) {
	dir := t.TempDir()
	w, ffs := openFaultWAL(t, dir, errfs.ShortWriteNth(2, 5, syscall.EIO))
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatalf("append with short-write fault: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if seen, _ := ffs.Counts(errfs.OpTruncate); seen == 0 {
		t.Fatal("short write did not trigger the partial-append truncation")
	}
	_, rec, err := OpenSectionWAL(dir, walKey(0xEE), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != len(sampleRecords()) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(sampleRecords()))
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("segment carries %d torn bytes after in-line truncation", rec.TruncatedBytes)
	}
}

// TestWALPersistentENOSPCDegrades: a disk that stays full degrades the
// segment after the retries; every earlier record remains recoverable and
// resume re-runs exactly the unlogged remainder.
func TestWALPersistentENOSPCDegrades(t *testing.T) {
	dir := t.TempDir()
	// Header is write 1; records are writes 2..4. Break the disk from the
	// 3rd write on: exactly one record lands.
	w, _ := openFaultWAL(t, dir, errfs.FailFrom(errfs.OpWrite, 3, syscall.ENOSPC))
	recs := sampleRecords()
	if err := w.Append(recs[0]); err != nil {
		t.Fatalf("append before fault: %v", err)
	}
	err := w.Append(recs[1])
	if !errors.Is(err, ErrWALDegraded) {
		t.Fatalf("append on full disk = %v, want ErrWALDegraded", err)
	}
	if !w.Degraded() {
		t.Fatal("segment not degraded after exhausted retries")
	}
	// Latched: the next append fails immediately without touching the disk.
	if err := w.Append(recs[2]); !errors.Is(err, ErrWALDegraded) {
		t.Fatalf("append after degrade = %v, want ErrWALDegraded", err)
	}
	if err := w.Seal(); !errors.Is(err, ErrWALDegraded) {
		t.Fatalf("seal after degrade = %v, want ErrWALDegraded", err)
	}
	w.Close()

	_, rec, err := OpenSectionWAL(dir, walKey(0xEE), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, want the 1 logged before the fault", len(rec.Records))
	}
	if _, ok := rec.Records[recs[0].Key]; !ok {
		t.Fatal("the surviving record is not the one logged before the fault")
	}
	if rec.Sealed {
		t.Fatal("degraded segment recovered as sealed")
	}
}

// TestWALSealSyncFailureDegrades: a failed fsync in Seal must not report
// the section durable — the seal degrades and the recovered segment is
// unsealed, so resume re-validates it.
func TestWALSealSyncFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	// Sync 1 is the header write; fail every later fsync.
	w, _ := openFaultWAL(t, dir, errfs.FailFrom(errfs.OpSync, 2, syscall.EIO))
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendAmp(WALAmp{K: [][]float64{{1}}, Runs: 1, SimInstrs: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Seal(); !errors.Is(err, ErrWALDegraded) {
		t.Fatalf("seal with failing fsync = %v, want ErrWALDegraded", err)
	}
	if !w.Degraded() {
		t.Fatal("segment not degraded after seal sync failure")
	}
	w.Close()

	_, rec, err := OpenSectionWAL(dir, walKey(0xEE), 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Sealed {
		t.Fatal("segment whose seal never fsynced recovered as sealed")
	}
	if len(rec.Records) != len(sampleRecords()) {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), len(sampleRecords()))
	}
}

// TestWALPoisonRoundTrip: poison records survive recovery with their
// diagnostics and are counted by InspectSegment.
func TestWALPoisonRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := walKey(0xCD)
	w, _, err := OpenSectionWAL(dir, key, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	p := WALPoison{Key: sampleRecords()[0].Key, Attempts: 2, MachineFP: 0xDEADBEEF, Stack: "panic: boom\n\ngoroutine 1 [running]:\n..."}
	if err := w.AppendPoison(p); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(sampleRecords()[1]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenSectionWAL(dir, key, 11, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Poisoned) != 1 {
		t.Fatalf("recovered %d poison records, want 1", len(rec.Poisoned))
	}
	got := rec.Poisoned[0]
	if got.Key != p.Key || got.Attempts != p.Attempts || got.MachineFP != p.MachineFP || got.Stack != p.Stack {
		t.Fatalf("poison round trip: got %+v, want %+v", got, p)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("experiment record alongside poison not recovered")
	}

	info, err := InspectSegment(SegmentPath(dir, key))
	if err != nil {
		t.Fatal(err)
	}
	if info.Poisoned != 1 || info.Experiments != 1 {
		t.Fatalf("InspectSegment: %d poisoned, %d experiments; want 1, 1", info.Poisoned, info.Experiments)
	}
}

// TestRetryPolicyPermanent: a permanent error escapes the retry loop
// unwrapped on the first attempt.
func TestRetryPolicyPermanent(t *testing.T) {
	calls := 0
	base := errors.New("broken")
	err := fastRetry().Do(func() error {
		calls++
		return permanent(base)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want the wrapped cause", err)
	}
}

// TestRetryPolicyExhaustion: the last error surfaces after Attempts tries.
func TestRetryPolicyExhaustion(t *testing.T) {
	calls := 0
	err := fastRetry().Do(func() error {
		calls++
		return syscall.EIO
	})
	if calls != 3 {
		t.Fatalf("op called %d times, want 3", calls)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
}
