package inject

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"fastflip/internal/metrics"
	"fastflip/internal/prog"
	"fastflip/internal/sites"
)

func streamKey(local int, bit uint8) sites.ClassKey {
	return sites.ClassKey{Static: prog.StaticID{Func: "f", Local: local}, Bit: bit}
}

// TestStreamRoundTrip: experiment (with and without a co-run final
// outcome), poison, and seal frames survive the wire intact and the
// stream ends with a clean io.EOF.
func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)

	fin := metrics.Outcome{Kind: metrics.SDC, Magnitudes: []float64{2.5}}
	recs := []WALRecord{
		{Key: streamKey(1, 3), Out: metrics.Outcome{Kind: metrics.Masked}, Cost: Stats{Experiments: 1, SimInstrs: 10}},
		{Key: streamKey(2, 7), Out: metrics.Outcome{Kind: metrics.SDC, Magnitudes: []float64{1.5}}, Fin: &fin, Cost: Stats{Experiments: 1, SimInstrs: 20}},
	}
	for _, rec := range recs {
		if err := w.WriteExperiment(rec); err != nil {
			t.Fatal(err)
		}
	}
	poison := WALPoison{Key: streamKey(3, 0), Attempts: 2, MachineFP: 0xbeef, Stack: "stack"}
	if err := w.WritePoison(poison); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSeal(2); err != nil {
		t.Fatal(err)
	}

	r := NewStreamReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != StreamExperiment {
			t.Fatalf("frame %d type %d, want experiment", i, got.Type)
		}
		if got.Experiment.Key != want.Key || got.Experiment.Out.Kind != want.Out.Kind {
			t.Errorf("frame %d: %+v, want %+v", i, got.Experiment, want)
		}
		if got.Experiment.Cost != want.Cost {
			t.Errorf("frame %d cost %+v, want %+v", i, got.Experiment.Cost, want.Cost)
		}
		if (got.Experiment.Fin == nil) != (want.Fin == nil) {
			t.Errorf("frame %d fin presence: got %v, want %v", i, got.Experiment.Fin, want.Fin)
		}
	}
	got, err := r.Next()
	if err != nil || got.Type != StreamPoison {
		t.Fatalf("poison frame: %+v, %v", got, err)
	}
	if got.Poison.Key != poison.Key || got.Poison.Attempts != 2 || got.Poison.MachineFP != 0xbeef || got.Poison.Stack != "stack" {
		t.Errorf("poison round trip: %+v", got.Poison)
	}
	got, err = r.Next()
	if err != nil || got.Type != StreamSeal || got.Seal != 2 {
		t.Fatalf("seal frame: %+v, %v", got, err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("past the seal: %v, want io.EOF", err)
	}
}

// TestStreamCutMidFrame: a connection dropped inside a frame surfaces as
// io.ErrUnexpectedEOF — partial, not clean end-of-stream.
func TestStreamCutMidFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewStreamWriter(&buf)
	if err := w.WriteExperiment(WALRecord{Key: streamKey(1, 0), Cost: Stats{Experiments: 1}}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{3, 9, len(whole) - 1} {
		r := NewStreamReader(bytes.NewReader(whole[:cut]))
		if _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestStreamCorruption: a flipped payload byte fails the checksum, and a
// hostile frame length is rejected before allocation.
func TestStreamCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := NewStreamWriter(&buf).WriteSeal(1); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-1] ^= 0xff
	if _, err := NewStreamReader(bytes.NewReader(data)).Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("corrupt payload: %v, want checksum error", err)
	}

	huge := binary.LittleEndian.AppendUint32(nil, uint32(maxWALPayload+1))
	huge = append(huge, 0, 0, 0, 0)
	if _, err := NewStreamReader(bytes.NewReader(huge)).Next(); err == nil {
		t.Error("overlong frame length accepted")
	}
}

// syntheticClasses builds classes whose pilots are deliberately NOT in
// class-index order, so ordering bugs cannot hide.
func syntheticClasses(pilots ...uint64) []*sites.Class {
	classes := make([]*sites.Class, len(pilots))
	for i, p := range pilots {
		classes[i] = &sites.Class{Key: streamKey(i, 0), Members: []uint64{p}}
	}
	return classes
}

func TestDynOrderSortedStable(t *testing.T) {
	classes := syntheticClasses(30, 10, 20, 10, 40)
	order := DynOrder(classes)
	want := []int{1, 3, 2, 0, 4} // pilots 10,10 (tie by index), 20, 30, 40
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestScheduledRangeAndSkip: the shard range selects positions of the
// canonical order, the skip vector then filters class indices, and
// out-of-bounds ranges clamp instead of panicking.
func TestScheduledRangeAndSkip(t *testing.T) {
	classes := syntheticClasses(30, 10, 20, 10, 40) // order: 1,3,2,0,4
	cases := []struct {
		name  string
		hooks CampaignHooks
		want  []int
	}{
		{"all", CampaignHooks{}, []int{1, 3, 2, 0, 4}},
		{"range", CampaignHooks{Range: &ShardRange{Lo: 1, Hi: 4}}, []int{3, 2, 0}},
		{"rangeAndSkip", CampaignHooks{Range: &ShardRange{Lo: 1, Hi: 4}, Skip: []bool{false, false, true, false, false}}, []int{3, 0}},
		{"clampLow", CampaignHooks{Range: &ShardRange{Lo: -5, Hi: 2}}, []int{1, 3}},
		{"clampHigh", CampaignHooks{Range: &ShardRange{Lo: 3, Hi: 99}}, []int{0, 4}},
		{"inverted", CampaignHooks{Range: &ShardRange{Lo: 4, Hi: 2}}, nil},
		{"skipAll", CampaignHooks{Skip: []bool{true, true, true, true, true}}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.hooks.scheduled(classes)
			if len(got) != len(tc.want) {
				t.Fatalf("scheduled %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("scheduled %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestRunSectionResumeRangePartition: running a section as disjoint shard
// ranges on separate injectors reproduces the whole-section campaign
// exactly — the invariant distributed campaigns rest on.
func TestRunSectionResumeRangePartition(t *testing.T) {
	tr, inj := recorded(t)
	inst := tr.Instances[0]
	classes := sites.ForInstance(tr, inst, sites.Options{Prune: true})
	whole, wholeStats := inj.RunSection(context.Background(), inst, classes)

	mid := len(classes) / 2
	got := make([]metrics.Outcome, len(classes))
	var stats Stats
	for _, rng := range []ShardRange{{Lo: 0, Hi: mid}, {Lo: mid, Hi: len(classes)}} {
		rng := rng
		hooks := CampaignHooks{Range: &rng, Record: func(i int, out metrics.Outcome, _ *metrics.Outcome, _ Stats) {
			got[i] = out
		}}
		shard := &Injector{T: tr, Workers: 2}
		_, s := shard.RunSectionResume(context.Background(), inst, classes, hooks)
		stats.Add(s)
	}
	if stats.Experiments != wholeStats.Experiments || stats.SimInstrs != wholeStats.SimInstrs {
		t.Errorf("sharded stats %+v, whole %+v", stats, wholeStats)
	}
	for i := range classes {
		if got[i].Kind != whole[i].Kind || got[i].MaxMagnitude() != whole[i].MaxMagnitude() {
			t.Errorf("class %d: sharded %+v, whole %+v", i, got[i], whole[i])
		}
	}
}
