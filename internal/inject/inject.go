// Package inject runs error-injection experiments: it replays the traced
// execution up to a site, flips one register bit, resumes execution, and
// classifies the outcome.
//
// Two experiment shapes exist, mirroring the paper. The *monolithic*
// experiment (the Approxilyzer-only baseline) resumes until the program
// terminates and compares the final outputs. The *per-section* experiment
// (FastFlip) resumes until the injected section instance ends and compares
// that section's outputs plus its live state.
//
// Analysis cost is accounted in simulated instructions, the dominant and
// parallelizable part of the paper's core-hours (§6.2). Stats.SimInstrs is
// the paper's per-experiment cost model (checkpoint to experiment end);
// Stats.CleanInstrs/FaultyInstrs split what the replay engine *actually*
// simulates. The default engine schedules a campaign's experiments in
// dynamic-index order, advances one rolling clean-cursor machine per
// worker, and forks each experiment off the cursor with a journal-based
// delta restore — so a shared clean prefix is simulated once per worker
// range instead of once per experiment, and restoring a fork undoes only
// the memory words the faulty run touched. Outcomes are bit-identical to
// the legacy checkpoint-replay engine (Injector.Legacy), which is kept for
// equivalence testing.
package inject

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

// TimeoutFactor is the paper's rule (§5.6): an execution whose length
// exceeds 5x the nominal runtime counts as a detected timeout.
const TimeoutFactor = 5

// Stats accumulates analysis cost.
type Stats struct {
	Experiments int
	// SimInstrs is the accounted analysis cost under the paper's model:
	// each experiment costs section-checkpoint-to-end, whatever the engine
	// actually replayed. Tables and speedups are computed from this, so
	// they stay comparable across engine versions.
	SimInstrs uint64
	// CleanInstrs counts the clean-prefix instructions the engine actually
	// simulated (cursor advances, checkpoint-to-site replays); FaultyInstrs
	// counts the instructions executed after a flip. Their sum is the real
	// engine work, ≤ SimInstrs under the cursor scheduler.
	CleanInstrs  uint64
	FaultyInstrs uint64
	// ElidedExperiments counts the experiments resolved by the static
	// masking tier without any simulation (included in Experiments): the
	// flip was proven dead, so the clean outcome was recorded at the exact
	// SimInstrs cost a scalar run would have accounted. ElidedInstrs is
	// that accounted-but-never-simulated cost (included in SimInstrs);
	// elided experiments contribute zero CleanInstrs/FaultyInstrs.
	ElidedExperiments int
	ElidedInstrs      uint64
	// BatchExperiments counts experiments whose faulty suffix ran inside a
	// lockstep vm.Batch (included in Experiments; outcomes and accounted
	// costs are identical to scalar runs). Batches counts the batch
	// dispatch groups; BatchExperiments/Batches is the mean batch width.
	// Batches is engine telemetry attributed at group granularity, so it is
	// the one Stats field per-experiment cost shares do not sum to.
	BatchExperiments int
	Batches          int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Experiments += other.Experiments
	s.SimInstrs += other.SimInstrs
	s.CleanInstrs += other.CleanInstrs
	s.FaultyInstrs += other.FaultyInstrs
	s.ElidedExperiments += other.ElidedExperiments
	s.ElidedInstrs += other.ElidedInstrs
	s.BatchExperiments += other.BatchExperiments
	s.Batches += other.Batches
}

// Injector runs experiments against one recorded trace.
type Injector struct {
	T *trace.Trace
	// Workers is the number of parallel experiment goroutines;
	// 0 means GOMAXPROCS.
	Workers int
	// Legacy selects the pre-cursor replay engine: every experiment
	// restores a full checkpoint copy and replays the clean prefix itself.
	// Outcomes are identical; only the engine cost differs. Kept for
	// equivalence tests and engine benchmarks.
	Legacy bool
	// NoBatch disables the lockstep batch tier: dense same-dyn experiment
	// groups then run one scalar fork each instead of sharing a vm.Batch.
	// Outcomes and accounted costs are identical either way; this is the
	// escape hatch and equivalence-testing seam.
	NoBatch bool
	// PanicHook, when non-nil, is invoked at the start of every experiment
	// attempt with the class index and the 1-based attempt number. It is a
	// test seam: chaos tests panic from it to exercise the supervision
	// path. Production leaves it nil.
	PanicHook func(class, attempt int)

	mu           sync.Mutex
	poisoned     []Poison
	panicRetries int
}

func (inj *Injector) workers() int {
	if inj.Workers > 0 {
		return inj.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// prepare replays m to just before dynamic instruction dyn and applies the
// flip dictated by the site (the legacy per-experiment path).
func (inj *Injector) prepare(m *vm.Machine, site sites.Site, maxDyn uint64) error {
	seed, _ := inj.T.ReplaySeed(site.Dyn)
	m.RestoreFrom(seed)
	m.MaxDyn = maxDyn
	if ev := m.RunUntilDyn(site.Dyn); ev.Kind != vm.EvNone {
		return fmt.Errorf("inject: clean prefix to dyn %d ended with %v", site.Dyn, ev.Kind)
	}
	_, err := applyFlip(m, site)
	return err
}

// applyFlip injects the site's burst into the positioned machine m (which
// must sit just before dynamic instruction site.Dyn): source operands flip
// before the instruction reads them, destination operands flip after it
// writes. It returns the dynamic index at which faulty execution begins.
func applyFlip(m *vm.Machine, site sites.Site) (uint64, error) {
	width := int(site.Width)
	if width < 1 {
		width = 1
	}
	flip := func() {
		for b := 0; b < width; b++ {
			bit := uint(site.Bit) + uint(b)
			if bit >= 64 {
				break
			}
			if site.Operand.Class == isa.RegFloat {
				m.FlipFloat(int(site.Operand.Reg), bit)
			} else {
				m.FlipInt(int(site.Operand.Reg), bit)
			}
		}
	}
	if site.Operand.Role == isa.OperandDst {
		if ev := m.Step(); ev.Kind != vm.EvNone {
			return m.Dyn, fmt.Errorf("inject: instruction at dyn %d raised %v in clean flow", site.Dyn, ev.Kind)
		}
	}
	flip()
	return m.Dyn, nil
}

// sectionLimit is the per-section timeout rule: the section may run up to
// 5x its nominal length (§5.6) plus slack for the epilogue.
func sectionLimit(inst *trace.Instance) uint64 {
	return inst.BegDyn + 1 + TimeoutFactor*inst.Len() + 64
}

// Monolithic runs one whole-program experiment for site and classifies the
// effect on the program's final outputs. The returned cost is the accounted
// SimInstrs of the experiment.
func (inj *Injector) Monolithic(m *vm.Machine, site sites.Site) (metrics.Outcome, uint64) {
	t := inj.T
	if err := inj.prepare(m, site, TimeoutFactor*t.TotalDyn); err != nil {
		panic(err) // clean replay cannot fail; a failure is a harness bug
	}
	out := inj.monolithicFinish(m)
	return out, m.Dyn - t.NearestCheckpointDyn(site.Dyn)
}

// crashOutcome classifies a crashed machine: a vm.CrashTrap is a hardening
// detector firing (DetectTrap), every other crash kind is an ordinary
// detected crash. Both are Detected in the paper's taxonomy; the reason
// split lets the hardening remeasure report detector coverage.
func crashOutcome(m *vm.Machine) metrics.Outcome {
	reason := metrics.DetectCrash
	if m.Crash == vm.CrashTrap {
		reason = metrics.DetectTrap
	}
	return metrics.Outcome{Kind: metrics.Detected, Reason: reason}
}

// monolithicFinish resumes a prepared machine to termination and classifies
// the effect on the final outputs.
func (inj *Injector) monolithicFinish(m *vm.Machine) metrics.Outcome {
	switch ev := m.Run(); ev.Kind {
	case vm.EvCrash:
		return crashOutcome(m)
	case vm.EvTimeout:
		return metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectTimeout}
	}
	return metrics.Compare(inj.T.Prog.FinalOutputs, inj.T.Final, m)
}

// Section runs one per-section experiment for a site inside inst and
// classifies the effect on the instance's outputs and live state.
func (inj *Injector) Section(m *vm.Machine, inst *trace.Instance, site sites.Site) (metrics.Outcome, uint64) {
	if err := inj.prepare(m, site, sectionLimit(inst)); err != nil {
		panic(err)
	}
	out := inj.sectionFinish(m, inst)
	return out, m.Dyn - inj.T.NearestCheckpointDyn(site.Dyn)
}

// sectionFinish resumes a prepared machine until the injected instance ends
// and classifies the section-level outcome.
func (inj *Injector) sectionFinish(m *vm.Machine, inst *trace.Instance) metrics.Outcome {
	for {
		ev := m.Step()
		switch ev.Kind {
		case vm.EvSecEnd:
			if ev.Sec != inst.Sec {
				// Control flow escaped into a different section: the
				// instance never produced its outputs. Conservatively
				// SDC-Bad (§4.9, side effects).
				return conservativeSDC(len(inst.IO.Outputs))
			}
			out := metrics.Compare(inst.IO.Outputs, inst.Exit, m)
			if out.Kind != metrics.Detected && liveSideEffect(inst, m) {
				return conservativeSDC(len(inst.IO.Outputs))
			}
			return out
		case vm.EvHalt:
			// The program terminated before the section completed:
			// corrupted control flow skipped the section's remainder.
			return conservativeSDC(len(inst.IO.Outputs))
		case vm.EvCrash:
			return crashOutcome(m)
		case vm.EvTimeout:
			return metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectTimeout}
		}
	}
}

// SectionCoRun runs one per-section experiment and then lets execution
// continue to program termination, classifying both the section-level
// outcome and the end-to-end outcome in a single simulation. This is the
// paper's simultaneous baseline co-run (§4.10): it gives FastFlip
// ground-truth labels for target adjustment without a separate monolithic
// campaign, at the cost of longer experiments.
func (inj *Injector) SectionCoRun(m *vm.Machine, inst *trace.Instance, site sites.Site) (sec, fin metrics.Outcome, cost uint64) {
	if err := inj.prepare(m, site, sectionLimit(inst)); err != nil {
		panic(err)
	}
	sec, fin = inj.coRunFinish(m, inst)
	return sec, fin, m.Dyn - inj.T.NearestCheckpointDyn(site.Dyn)
}

// coRunFinish resumes a prepared machine through the injected instance and
// on to program termination, classifying both levels.
func (inj *Injector) coRunFinish(m *vm.Machine, inst *trace.Instance) (sec, fin metrics.Outcome) {
	t := inj.T
	secDone := false
	for {
		ev := m.Step()
		switch ev.Kind {
		case vm.EvSecEnd:
			if secDone {
				continue
			}
			if ev.Sec != inst.Sec {
				sec = conservativeSDC(len(inst.IO.Outputs))
			} else {
				sec = metrics.Compare(inst.IO.Outputs, inst.Exit, m)
				if sec.Kind != metrics.Detected && liveSideEffect(inst, m) {
					sec = conservativeSDC(len(inst.IO.Outputs))
				}
			}
			secDone = true
			// Past the section, the whole-program timeout rule applies.
			m.MaxDyn = TimeoutFactor * t.TotalDyn
		case vm.EvHalt:
			if !secDone {
				sec = conservativeSDC(len(inst.IO.Outputs))
			}
			fin = metrics.Compare(t.Prog.FinalOutputs, t.Final, m)
			return sec, fin
		case vm.EvCrash:
			det := crashOutcome(m)
			if !secDone {
				sec = det
			}
			return sec, det
		case vm.EvTimeout:
			det := metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectTimeout}
			if !secDone {
				sec = det
			}
			return sec, det
		}
	}
}

// RunSectionCoRun injects every class pilot within inst with the co-run
// experiment shape, returning parallel slices of section-level and
// end-to-end outcomes. Cancelling ctx stops the campaign between
// experiments; the returned outcomes are then partial and must be
// discarded (check ctx.Err after the call).
func (inj *Injector) RunSectionCoRun(ctx context.Context, inst *trace.Instance, classes []*sites.Class) (secs, fins []metrics.Outcome, stats Stats) {
	return inj.RunSectionCoRunResume(ctx, inst, classes, CampaignHooks{})
}

// RunSectionCoRunResume is RunSectionCoRun with resume hooks: classes
// marked in hooks.Skip are not injected (their outcome slots stay zero for
// the caller to fill from recovered records) and hooks.Record observes
// each completed experiment for write-ahead logging.
func (inj *Injector) RunSectionCoRunResume(ctx context.Context, inst *trace.Instance, classes []*sites.Class, hooks CampaignHooks) (secs, fins []metrics.Outcome, stats Stats) {
	fins = make([]metrics.Outcome, len(classes))
	if rec := hooks.Record; rec != nil {
		// Attach the co-run end-to-end outcome: fins[i] is written by the
		// same worker in finish before the engine invokes Record.
		hooks.Record = func(i int, out metrics.Outcome, _ *metrics.Outcome, cost Stats) {
			rec(i, out, &fins[i], cost)
		}
	}
	secs, stats = inj.runAll(ctx, classes, experiment{
		limit: func(sites.Site) uint64 { return sectionLimit(inst) },
		finish: func(m *vm.Machine, i int, _ sites.Site) metrics.Outcome {
			sec, fin := inj.coRunFinish(m, inst)
			fins[i] = fin
			return sec
		},
		conserv: func(i int) metrics.Outcome {
			fins[i] = conservativeSDC(len(inj.T.Prog.FinalOutputs))
			return conservativeSDC(len(inst.IO.Outputs))
		},
		masked: func(i int) metrics.Outcome {
			fins[i] = metrics.Outcome{Kind: metrics.Masked}
			return metrics.Outcome{Kind: metrics.Masked}
		},
		cleanEnd: inj.T.Final.Dyn,
		hooks:    hooks,
	})
	return secs, fins, stats
}

// conservativeSDC is the +Inf-magnitude outcome used when a section-level
// side effect prevents bounding the corruption: it is SDC-Bad for any ε.
func conservativeSDC(outputs int) metrics.Outcome {
	mags := make([]float64, outputs)
	for i := range mags {
		mags[i] = math.Inf(1)
	}
	return metrics.Outcome{Kind: metrics.SDC, Magnitudes: mags}
}

// liveSideEffect reports whether any live-declared word outside the
// instance's declared outputs differs from the clean exit state.
func liveSideEffect(inst *trace.Instance, m *vm.Machine) bool {
	for _, lb := range inst.IO.Live {
	word:
		for i := 0; i < lb.Len; i++ {
			addr := lb.Addr + i
			for _, ob := range inst.IO.Outputs {
				if addr >= ob.Addr && addr < ob.Addr+ob.Len {
					continue word
				}
			}
			if m.Mem[addr] != inst.Exit.Mem[addr] {
				return true
			}
		}
	}
	return false
}

// RunMonolithic injects the pilot of every class and returns per-class
// outcomes (indexed like classes) plus cost statistics. Cancelling ctx
// stops the campaign between experiments; the returned outcomes are then
// partial and must be discarded (check ctx.Err after the call).
func (inj *Injector) RunMonolithic(ctx context.Context, classes []*sites.Class) ([]metrics.Outcome, Stats) {
	return inj.runAll(ctx, classes, experiment{
		limit:    func(sites.Site) uint64 { return TimeoutFactor * inj.T.TotalDyn },
		finish:   func(m *vm.Machine, _ int, _ sites.Site) metrics.Outcome { return inj.monolithicFinish(m) },
		conserv:  func(int) metrics.Outcome { return conservativeSDC(len(inj.T.Prog.FinalOutputs)) },
		masked:   func(int) metrics.Outcome { return metrics.Outcome{Kind: metrics.Masked} },
		cleanEnd: inj.T.Final.Dyn,
	})
}

// RunSection injects the pilot of every class within inst and returns
// per-class outcomes plus cost statistics. Cancellation behaves as in
// RunMonolithic.
func (inj *Injector) RunSection(ctx context.Context, inst *trace.Instance, classes []*sites.Class) ([]metrics.Outcome, Stats) {
	return inj.RunSectionResume(ctx, inst, classes, CampaignHooks{})
}

// RunSectionResume is RunSection with resume hooks; see
// RunSectionCoRunResume for their semantics.
func (inj *Injector) RunSectionResume(ctx context.Context, inst *trace.Instance, classes []*sites.Class, hooks CampaignHooks) ([]metrics.Outcome, Stats) {
	return inj.runAll(ctx, classes, experiment{
		limit:    func(sites.Site) uint64 { return sectionLimit(inst) },
		finish:   func(m *vm.Machine, _ int, _ sites.Site) metrics.Outcome { return inj.sectionFinish(m, inst) },
		conserv:  func(int) metrics.Outcome { return conservativeSDC(len(inst.IO.Outputs)) },
		masked:   func(int) metrics.Outcome { return metrics.Outcome{Kind: metrics.Masked} },
		cleanEnd: inst.Exit.Dyn,
		hooks:    hooks,
	})
}

// experiment is the campaign-specific half of an injection: the timeout
// limit for a site and the classification of a machine that is already
// positioned at the site with the flip applied.
type experiment struct {
	limit  func(site sites.Site) uint64
	finish func(m *vm.Machine, i int, site sites.Site) metrics.Outcome
	// conserv yields the conservative worst-case outcome for class i, used
	// to fill the slot of a quarantined (twice-panicked) experiment so the
	// downstream analysis stays sound. Nil means conservativeSDC(0).
	conserv func(i int) metrics.Outcome
	// masked yields the outcome of a statically-proven-dead flip for class
	// i — by construction the clean outcome of this experiment shape. Nil
	// disables the elision tier for this campaign shape.
	masked func(i int) metrics.Outcome
	// cleanEnd is the clean dynamic count at which this experiment shape
	// terminates (section exit or program end); an elided experiment is
	// accounted SimInstrs = cleanEnd − its checkpoint, exactly what a
	// scalar run of the proven-masked flip would have cost.
	cleanEnd uint64
	hooks    CampaignHooks
}

// conservative returns the quarantine outcome for class i.
func (e *experiment) conservative(i int) metrics.Outcome {
	if e.conserv == nil {
		return conservativeSDC(0)
	}
	return e.conserv(i)
}

// ShardRange restricts a campaign to a contiguous slice of the canonical
// dyn-sorted experiment order (see DynOrder): positions [Lo, Hi). It is
// the scheduling seam distributed campaigns shard on — a coordinator
// hands each remote worker one range, and because the order is derived
// deterministically from the class enumeration, coordinator and workers
// agree on what every position means without exchanging class lists.
type ShardRange struct {
	Lo, Hi int
}

// CampaignHooks carries the optional resume/WAL hooks of a campaign.
type CampaignHooks struct {
	// Skip marks classes whose outcome is already known (recovered from a
	// write-ahead log); they are excluded from scheduling. The filtered
	// experiment list is still dyn-sorted and contiguously partitioned, so
	// the clean-cursor invariant (each worker's cursor only moves forward)
	// holds unchanged. Nil or shorter-than-classes entries mean "run".
	Skip []bool
	// Range, when non-nil, restricts the campaign to the classes at
	// positions [Lo, Hi) of the canonical dyn-sorted order. Skip applies
	// on top of the range, so a shard re-lease can exclude the experiments
	// an earlier lease already delivered. Positions outside the range are
	// never scheduled and their outcome slots stay zero.
	Range *ShardRange
	// Record, when non-nil, observes each completed experiment: the class
	// index, its outcome(s) (fin is the co-run end-to-end outcome, nil
	// otherwise), and the experiment's accounted cost share (cursor advance
	// plus flip plus faulty suffix; cost.Experiments is 1). Workers call it
	// concurrently and before the campaign returns, which is exactly what a
	// write-ahead append needs. Per-experiment costs sum to the campaign
	// Stats.
	Record func(i int, out metrics.Outcome, fin *metrics.Outcome, cost Stats)
	// Poison, when non-nil, observes each quarantined class (an experiment
	// that panicked twice on fresh machines) so the campaign can log it
	// durably. A poisoned class is NOT delivered to Record: its outcome is
	// the conservative fill, not a measured one, and a resumed campaign
	// must re-execute the class rather than trust it.
	Poison func(p Poison)
	// Shard, when non-nil, observes the provenance of every remote shard
	// stream a distributed coordinator merged into the campaign (worker
	// ID, lease epoch, dyn-order range, record count). The local engine
	// never invokes it; campaigns with a WAL append a provenance record
	// per call so merged segments stay attributable.
	Shard func(s WALShard)
}

// skips reports whether class index i is marked done.
func (h *CampaignHooks) skips(i int) bool {
	return i < len(h.Skip) && h.Skip[i]
}

// scheduled returns the class indices this campaign actually runs, in the
// canonical dyn-sorted order: the shard range restricts by position first,
// then the skip vector drops already-resolved classes.
func (h *CampaignHooks) scheduled(classes []*sites.Class) []int {
	full := DynOrder(classes)
	lo, hi := 0, len(full)
	if h.Range != nil {
		if lo = h.Range.Lo; lo < 0 {
			lo = 0
		}
		if hi = h.Range.Hi; hi > len(full) {
			hi = len(full)
		}
		if lo > hi {
			lo = hi
		}
	}
	order := make([]int, 0, hi-lo)
	for _, ci := range full[lo:hi] {
		if !h.skips(ci) {
			order = append(order, ci)
		}
	}
	return order
}

// DynOrder returns the canonical experiment order of a campaign: the
// class indices sorted by pilot dynamic index, ties broken by class
// index. It depends only on the class enumeration, so a coordinator and
// its remote workers — each enumerating classes from an independently
// recorded (deterministic) trace — compute identical orders and can name
// shard ranges by position alone.
func DynOrder(classes []*sites.Class) []int {
	order := make([]int, len(classes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := classes[order[a]].Pilot(), classes[order[b]].Pilot()
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	return order
}

// ConservativeSDC returns the +Inf-magnitude SDC outcome over the given
// number of output buffers — the fill used for quarantined experiments.
// Exported so a distributed coordinator can apply the same conservative
// semantics to a poison record streamed back from a remote worker.
func ConservativeSDC(outputs int) metrics.Outcome {
	return conservativeSDC(outputs)
}

// siteOf builds the pilot injection site of a class.
func siteOf(c *sites.Class) sites.Site {
	return sites.Site{
		Dyn:     c.Pilot(),
		Operand: isa.Operand{Role: c.Key.Role, Class: c.Class, Reg: c.Reg},
		Bit:     c.Key.Bit,
		Width:   c.Width,
	}
}

// batchFlip injects site's burst into replica k of a batch, the replica
// counterpart of applyFlip's bit loop.
func batchFlip(b *vm.Batch, k int, site sites.Site) {
	width := int(site.Width)
	if width < 1 {
		width = 1
	}
	for off := 0; off < width; off++ {
		bit := uint(site.Bit) + uint(off)
		if bit >= 64 {
			break
		}
		if site.Operand.Class == isa.RegFloat {
			b.FlipFloat(k, int(site.Operand.Reg), bit)
		} else {
			b.FlipInt(k, int(site.Operand.Reg), bit)
		}
	}
}

// elidePass resolves the classes whose pilot flip the static masking tier
// proved dead (sites.Class.Elided) without simulating anything: the faulty
// architectural state is bit-identical to the clean run by construction, so
// the clean outcome of the experiment shape is recorded at the exact
// SimInstrs cost a scalar experiment would have accounted. It returns the
// surviving schedule (filtered in place) plus the stats of the elided
// population. Running before the worker split keeps each worker's chunk
// contiguous in dyn order, so elision composes with sharding and resume.
func (inj *Injector) elidePass(classes []*sites.Class, order []int, exp *experiment, outcomes []metrics.Outcome) ([]int, Stats) {
	if exp.masked == nil {
		return order, Stats{}
	}
	var stats Stats
	rest := order[:0]
	for _, i := range order {
		if !classes[i].Elided {
			rest = append(rest, i)
			continue
		}
		outcomes[i] = exp.masked(i)
		acct := exp.cleanEnd - inj.T.NearestCheckpointDyn(classes[i].Pilot())
		cost := Stats{Experiments: 1, ElidedExperiments: 1, SimInstrs: acct, ElidedInstrs: acct}
		stats.Add(cost)
		if exp.hooks.Record != nil {
			exp.hooks.Record(i, outcomes[i], nil, cost)
		}
	}
	return rest, stats
}

// runAll distributes one experiment per class over the worker pool. Each
// worker checks ctx between experiments, so a cancelled campaign stops
// within one in-flight experiment per worker. Stats count only the
// experiments actually run.
//
// The default engine sorts the pilots by dynamic index, hands each worker
// one contiguous dyn range, and replays the clean execution once per range
// behind a rolling cursor; Legacy replays checkpoint-to-site per
// experiment. Both engines produce identical outcomes.
func (inj *Injector) runAll(ctx context.Context, classes []*sites.Class, exp experiment) ([]metrics.Outcome, Stats) {
	if inj.Legacy {
		return inj.runAllLegacy(ctx, classes, exp)
	}
	outcomes := make([]metrics.Outcome, len(classes))
	if len(classes) == 0 {
		return outcomes, Stats{}
	}

	// Dyn-sorted experiment order, contiguously partitioned so each
	// worker's cursor only ever moves forward. The shard range (if any)
	// selects positions of the canonical order first; classes recovered
	// from a WAL are then filtered out: the remainder is still dyn-sorted,
	// so the contiguous-range invariant survives both sharding and resume.
	order := exp.hooks.scheduled(classes)
	order, elided := inj.elidePass(classes, order, &exp, outcomes)
	if len(order) == 0 {
		return outcomes, elided
	}

	nw := inj.workers()
	if nw > len(order) {
		nw = len(order)
	}
	statsPer := make([]Stats, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * len(order) / nw
		hi := (w + 1) * len(order) / nw
		wg.Add(1)
		go func(w int, chunk []int) {
			defer wg.Done()
			statsPer[w] = inj.runRange(ctx, classes, chunk, exp, outcomes)
		}(w, order[lo:hi])
	}
	wg.Wait()

	stats := elided
	for _, s := range statsPer {
		stats.Add(s)
	}
	return outcomes, stats
}

// runRange runs one worker's contiguous dyn-sorted chunk of experiments.
// The cursor machine advances through the clean execution exactly once;
// every experiment forks off it with a journal and is reverted by undoing
// the words it wrote.
//
// Each experiment attempt runs under panic supervision: a panic discards
// the (possibly wedged) cursor and fork machines, rebuilds both from the
// replay seed, and retries the experiment once. A second panic
// quarantines the class as a Poison with the conservative outcome and the
// chunk moves on. The accounted cost shares are captured against the
// cursor position before the first attempt, so a retried-but-successful
// experiment reports exactly the Stats a panic-free run would — retries
// change real engine work, never the accounting.
func (inj *Injector) runRange(ctx context.Context, classes []*sites.Class, chunk []int, exp experiment, outcomes []metrics.Outcome) Stats {
	t := inj.T
	var stats Stats

	seed, _ := t.ReplaySeed(classes[chunk[0]].Pilot())
	cur := seed.Clone() // rolling clean cursor, only ever advances
	em := cur.Clone()   // experiment machine, forked from the cursor

	// runScalar runs one experiment on a scalar fork of the cursor,
	// including supervision, retry, and record delivery.
	runScalar := func(i int) {
		site := siteOf(classes[i])

		// Per-experiment cost share; the cursor advance is attributed to the
		// experiment that triggered it so shares sum to the campaign Stats.
		// Captured before the first attempt for panic-retry neutrality.
		var cleanShare uint64
		if site.Dyn > cur.Dyn {
			cleanShare = site.Dyn - cur.Dyn
		}

		run := func(attempt int) Stats {
			if inj.PanicHook != nil {
				inj.PanicHook(i, attempt)
			}
			// Advance the shared clean prefix once, mirroring the delta
			// into the experiment machine.
			if site.Dyn > cur.Dyn {
				cur.BeginJournal()
				if ev := cur.RunUntilDyn(site.Dyn); ev.Kind != vm.EvNone {
					panic(fmt.Errorf("inject: clean cursor to dyn %d ended with %v", site.Dyn, ev.Kind))
				}
				if cur.ReplayJournalInto(em) {
					em.CopyScalarsFrom(cur)
				} else {
					em.RestoreFrom(cur)
				}
				cur.EndJournal()
			}

			// Fork: em mirrors the clean state at site.Dyn. Run the faulty
			// suffix under a journal, classify, then undo only what it
			// wrote.
			em.MaxDyn = exp.limit(site)
			em.BeginJournal()
			flipDyn, err := applyFlip(em, site)
			if err != nil {
				panic(err)
			}
			outcomes[i] = exp.finish(em, i, site)

			expStats := Stats{Experiments: 1}
			expStats.SimInstrs += em.Dyn - t.NearestCheckpointDyn(site.Dyn)
			expStats.CleanInstrs += cleanShare + (flipDyn - site.Dyn)
			expStats.FaultyInstrs += em.Dyn - flipDyn

			if em.UndoJournal() {
				em.CopyScalarsFrom(cur)
			} else {
				em.RestoreFrom(cur)
			}
			return expStats
		}

		var expStats Stats
		poisoned := false
		for attempt := 1; ; attempt++ {
			st, rec := runSupervised(func() *vm.Machine { return em }, func() Stats { return run(attempt) })
			if rec == nil {
				expStats = st
				break
			}
			// The panic may have left either machine mid-journal or
			// half-restored; both are rebuilt from the seed before any
			// further use.
			seed, _ := t.ReplaySeed(site.Dyn)
			cur = seed.Clone()
			em = cur.Clone()
			if attempt == 1 {
				inj.notePanicRetry()
				continue
			}
			p := Poison{Class: i, Key: classes[i].Key, Attempts: attempt, MachineFP: rec.fp, Stack: rec.stack}
			inj.notePoison(p)
			outcomes[i] = exp.conservative(i)
			expStats = Stats{Experiments: 1}
			if exp.hooks.Poison != nil {
				exp.hooks.Poison(p)
			}
			poisoned = true
			break
		}
		stats.Add(expStats)
		if !poisoned && exp.hooks.Record != nil {
			exp.hooks.Record(i, outcomes[i], nil, expStats)
		}
	}

	// runBatch advances a same-dyn group of experiments in one lockstep
	// vm.Batch: the clean prefix is advanced once, each replica gets its
	// flip, and one dispatch per opcode drives every faulty suffix until
	// it detaches (crash, control divergence) or the batch reaches a
	// stop-before boundary; each replica is then materialized onto the
	// fork machine and classified by the exact scalar epilogue. Outcomes
	// and accounted costs are identical to forking the group one by one —
	// batching changes wall clock only.
	//
	// Each replica is accounted and recorded as it materializes, with a
	// cancellation check in between, so the campaign keeps the scalar
	// engine's per-experiment delivery granularity. A panic anywhere
	// inside rebuilds the machines and re-runs only the not-yet-delivered
	// members under the scalar path's per-class supervision, so the WAL
	// sees each member exactly once.
	runBatch := func(group []int) {
		pilotDyn := classes[group[0]].Pilot()
		var cleanShare uint64
		if pilotDyn > cur.Dyn {
			cleanShare = pilotDyn - cur.Dyn
		}
		delivered := 0
		_, rec := runSupervised(func() *vm.Machine { return em }, func() Stats {
			if pilotDyn > cur.Dyn {
				cur.BeginJournal()
				if ev := cur.RunUntilDyn(pilotDyn); ev.Kind != vm.EvNone {
					panic(fmt.Errorf("inject: clean cursor to dyn %d ended with %v", pilotDyn, ev.Kind))
				}
				if cur.ReplayJournalInto(em) {
					em.CopyScalarsFrom(cur)
				} else {
					em.RestoreFrom(cur)
				}
				cur.EndJournal()
			}

			// Source flips land before the site instruction. If any
			// replica flips a destination, the batch executes the site
			// instruction once — clean for those replicas, already faulty
			// for source-flipped ones — and the destination flips land
			// after it, the same order applyFlip imposes.
			em.MaxDyn = exp.limit(siteOf(classes[group[0]]))
			b := vm.NewBatch(em, len(group))
			hasDst := false
			for j, i := range group {
				site := siteOf(classes[i])
				if site.Operand.Role == isa.OperandDst {
					hasDst = true
					continue
				}
				batchFlip(b, j, site)
			}
			if hasDst {
				if !b.Step() {
					panic(fmt.Errorf("inject: batch at dyn %d stopped before the site instruction", pilotDyn))
				}
				for j, i := range group {
					site := siteOf(classes[i])
					if site.Operand.Role == isa.OperandDst {
						batchFlip(b, j, site)
					}
				}
			}
			b.Run()
			stats.Batches++

			for j, i := range group {
				if ctx.Err() != nil {
					break
				}
				site := siteOf(classes[i])
				em.MaxDyn = exp.limit(site)
				em.BeginJournal()
				b.MaterializeInto(j, em)
				out := exp.finish(em, i, site)
				flipDyn := site.Dyn
				if site.Operand.Role == isa.OperandDst {
					flipDyn++
				}
				cost := Stats{Experiments: 1, BatchExperiments: 1}
				cost.SimInstrs = em.Dyn - t.NearestCheckpointDyn(site.Dyn)
				if j == 0 {
					cost.CleanInstrs = cleanShare
				}
				cost.CleanInstrs += flipDyn - site.Dyn
				cost.FaultyInstrs = em.Dyn - flipDyn
				if em.UndoJournal() {
					em.CopyScalarsFrom(cur)
				} else {
					em.RestoreFrom(cur)
				}
				outcomes[i] = out
				stats.Add(cost)
				delivered = j + 1
				if exp.hooks.Record != nil {
					exp.hooks.Record(i, out, nil, cost)
				}
			}
			return Stats{}
		})
		if rec == nil {
			return
		}
		seed, _ := t.ReplaySeed(pilotDyn)
		cur = seed.Clone()
		em = cur.Clone()
		inj.notePanicRetry()
		for _, i := range group[delivered:] {
			if ctx.Err() != nil {
				break
			}
			runScalar(i)
		}
	}

	// The chunk is dyn-sorted, so experiments sharing a pilot dynamic
	// index — the dense same-range groups the batch tier targets — are
	// consecutive. PanicHook (the chaos-test seam) forces the scalar path
	// so attempt-targeted panics keep their per-class semantics.
	for gi := 0; gi < len(chunk); {
		ge := gi + 1
		for ge < len(chunk) && classes[chunk[ge]].Pilot() == classes[chunk[gi]].Pilot() {
			ge++
		}
		group := chunk[gi:ge]
		gi = ge
		if ctx.Err() != nil {
			break
		}
		if len(group) >= 2 && !inj.NoBatch && inj.PanicHook == nil {
			runBatch(group)
			continue
		}
		for _, i := range group {
			if ctx.Err() != nil {
				break
			}
			runScalar(i)
		}
	}
	return stats
}

// runAllLegacy is the pre-cursor engine: every experiment restores a full
// checkpoint copy and replays its own clean prefix.
func (inj *Injector) runAllLegacy(ctx context.Context, classes []*sites.Class, exp experiment) ([]metrics.Outcome, Stats) {
	t := inj.T
	outcomes := make([]metrics.Outcome, len(classes))
	order := exp.hooks.scheduled(classes)
	order, stats := inj.elidePass(classes, order, &exp, outcomes)
	var next atomic.Uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	nw := inj.workers()
	if nw > len(order) {
		nw = len(order)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := t.Start.Clone()
			var local Stats
			for {
				if ctx.Err() != nil {
					break
				}
				pos := next.Add(1) - 1
				if pos >= uint64(len(order)) {
					break
				}
				i := uint64(order[pos])
				site := siteOf(classes[i])
				_, replayDyn := t.ReplaySeed(site.Dyn)

				// Same supervision contract as runRange: one retry on a
				// fresh machine, then quarantine. prepare restores the
				// checkpoint itself, so the rebuild only matters when the
				// panic corrupted the machine's buffers.
				var expStats Stats
				poisoned := false
				for attempt := 1; ; attempt++ {
					st, rec := runSupervised(func() *vm.Machine { return m }, func() Stats {
						if inj.PanicHook != nil {
							inj.PanicHook(int(i), attempt)
						}
						if err := inj.prepare(m, site, exp.limit(site)); err != nil {
							panic(err)
						}
						flipDyn := m.Dyn
						outcomes[i] = exp.finish(m, int(i), site)
						return Stats{
							Experiments:  1,
							SimInstrs:    m.Dyn - t.NearestCheckpointDyn(site.Dyn),
							CleanInstrs:  flipDyn - replayDyn,
							FaultyInstrs: m.Dyn - flipDyn,
						}
					})
					if rec == nil {
						expStats = st
						break
					}
					m = t.Start.Clone()
					if attempt == 1 {
						inj.notePanicRetry()
						continue
					}
					p := Poison{Class: int(i), Key: classes[i].Key, Attempts: attempt, MachineFP: rec.fp, Stack: rec.stack}
					inj.notePoison(p)
					outcomes[i] = exp.conservative(int(i))
					expStats = Stats{Experiments: 1}
					if exp.hooks.Poison != nil {
						exp.hooks.Poison(p)
					}
					poisoned = true
					break
				}
				local.Add(expStats)
				if !poisoned && exp.hooks.Record != nil {
					exp.hooks.Record(int(i), outcomes[i], nil, expStats)
				}
			}
			mu.Lock()
			stats.Add(local)
			mu.Unlock()
		}()
	}
	wg.Wait()
	return outcomes, stats
}
