// Package inject runs error-injection experiments: it replays the traced
// execution up to a site, flips one register bit, resumes execution, and
// classifies the outcome.
//
// Two experiment shapes exist, mirroring the paper. The *monolithic*
// experiment (the Approxilyzer-only baseline) resumes until the program
// terminates and compares the final outputs. The *per-section* experiment
// (FastFlip) resumes until the injected section instance ends and compares
// that section's outputs plus its live state.
//
// Analysis cost is accounted in simulated instructions, the dominant and
// parallelizable part of the paper's core-hours (§6.2).
package inject

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"fastflip/internal/isa"
	"fastflip/internal/metrics"
	"fastflip/internal/sites"
	"fastflip/internal/trace"
	"fastflip/internal/vm"
)

// TimeoutFactor is the paper's rule (§5.6): an execution whose length
// exceeds 5x the nominal runtime counts as a detected timeout.
const TimeoutFactor = 5

// Stats accumulates analysis cost.
type Stats struct {
	Experiments int
	SimInstrs   uint64 // total simulated instructions across experiments
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Experiments += other.Experiments
	s.SimInstrs += other.SimInstrs
}

// Injector runs experiments against one recorded trace.
type Injector struct {
	T *trace.Trace
	// Workers is the number of parallel experiment goroutines;
	// 0 means GOMAXPROCS.
	Workers int
}

func (inj *Injector) workers() int {
	if inj.Workers > 0 {
		return inj.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// prepare replays m to just before dynamic instruction dyn and applies the
// flip dictated by the site: source operands flip before the instruction
// reads them, destination operands flip after it writes.
func (inj *Injector) prepare(m *vm.Machine, site sites.Site, maxDyn uint64) error {
	m.RestoreFrom(inj.T.NearestCheckpoint(site.Dyn))
	m.MaxDyn = maxDyn
	if ev := m.RunUntilDyn(site.Dyn); ev.Kind != vm.EvNone {
		return fmt.Errorf("inject: clean prefix to dyn %d ended with %v", site.Dyn, ev.Kind)
	}
	width := int(site.Width)
	if width < 1 {
		width = 1
	}
	flip := func() {
		for b := 0; b < width; b++ {
			bit := uint(site.Bit) + uint(b)
			if bit >= 64 {
				break
			}
			if site.Operand.Class == isa.RegFloat {
				m.FlipFloat(int(site.Operand.Reg), bit)
			} else {
				m.FlipInt(int(site.Operand.Reg), bit)
			}
		}
	}
	if site.Operand.Role == isa.OperandDst {
		if ev := m.Step(); ev.Kind != vm.EvNone {
			return fmt.Errorf("inject: instruction at dyn %d raised %v in clean flow", site.Dyn, ev.Kind)
		}
		flip()
	} else {
		flip()
	}
	return nil
}

// Monolithic runs one whole-program experiment for site and classifies the
// effect on the program's final outputs.
func (inj *Injector) Monolithic(m *vm.Machine, site sites.Site) (metrics.Outcome, uint64) {
	t := inj.T
	if err := inj.prepare(m, site, TimeoutFactor*t.TotalDyn); err != nil {
		panic(err) // clean replay cannot fail; a failure is a harness bug
	}
	start := t.NearestCheckpointDyn(site.Dyn)
	ev := m.Run()
	cost := m.Dyn - start
	switch ev.Kind {
	case vm.EvCrash:
		return metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectCrash}, cost
	case vm.EvTimeout:
		return metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectTimeout}, cost
	}
	return metrics.Compare(t.Prog.FinalOutputs, t.Final, m), cost
}

// Section runs one per-section experiment for a site inside inst and
// classifies the effect on the instance's outputs and live state.
func (inj *Injector) Section(m *vm.Machine, inst *trace.Instance, site sites.Site) (metrics.Outcome, uint64) {
	t := inj.T
	// Timeout when the section runs more than 5x its nominal length.
	limit := inst.BegDyn + 1 + TimeoutFactor*inst.Len() + 64
	if err := inj.prepare(m, site, limit); err != nil {
		panic(err)
	}
	start := t.NearestCheckpointDyn(site.Dyn)
	for {
		ev := m.Step()
		switch ev.Kind {
		case vm.EvSecEnd:
			if ev.Sec != inst.Sec {
				// Control flow escaped into a different section: the
				// instance never produced its outputs. Conservatively
				// SDC-Bad (§4.9, side effects).
				return conservativeSDC(len(inst.IO.Outputs)), m.Dyn - start
			}
			out := metrics.Compare(inst.IO.Outputs, inst.Exit, m)
			if out.Kind != metrics.Detected && liveSideEffect(inst, m) {
				return conservativeSDC(len(inst.IO.Outputs)), m.Dyn - start
			}
			return out, m.Dyn - start
		case vm.EvHalt:
			// The program terminated before the section completed:
			// corrupted control flow skipped the section's remainder.
			return conservativeSDC(len(inst.IO.Outputs)), m.Dyn - start
		case vm.EvCrash:
			return metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectCrash}, m.Dyn - start
		case vm.EvTimeout:
			return metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectTimeout}, m.Dyn - start
		}
	}
}

// SectionCoRun runs one per-section experiment and then lets execution
// continue to program termination, classifying both the section-level
// outcome and the end-to-end outcome in a single simulation. This is the
// paper's simultaneous baseline co-run (§4.10): it gives FastFlip
// ground-truth labels for target adjustment without a separate monolithic
// campaign, at the cost of longer experiments.
func (inj *Injector) SectionCoRun(m *vm.Machine, inst *trace.Instance, site sites.Site) (sec, fin metrics.Outcome, cost uint64) {
	t := inj.T
	limit := inst.BegDyn + 1 + TimeoutFactor*inst.Len() + 64
	if err := inj.prepare(m, site, limit); err != nil {
		panic(err)
	}
	start := t.NearestCheckpointDyn(site.Dyn)
	secDone := false
	for {
		ev := m.Step()
		switch ev.Kind {
		case vm.EvSecEnd:
			if secDone {
				continue
			}
			if ev.Sec != inst.Sec {
				sec = conservativeSDC(len(inst.IO.Outputs))
			} else {
				sec = metrics.Compare(inst.IO.Outputs, inst.Exit, m)
				if sec.Kind != metrics.Detected && liveSideEffect(inst, m) {
					sec = conservativeSDC(len(inst.IO.Outputs))
				}
			}
			secDone = true
			// Past the section, the whole-program timeout rule applies.
			m.MaxDyn = TimeoutFactor * t.TotalDyn
		case vm.EvHalt:
			if !secDone {
				sec = conservativeSDC(len(inst.IO.Outputs))
			}
			fin = metrics.Compare(t.Prog.FinalOutputs, t.Final, m)
			return sec, fin, m.Dyn - start
		case vm.EvCrash:
			det := metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectCrash}
			if !secDone {
				sec = det
			}
			return sec, det, m.Dyn - start
		case vm.EvTimeout:
			det := metrics.Outcome{Kind: metrics.Detected, Reason: metrics.DetectTimeout}
			if !secDone {
				sec = det
			}
			return sec, det, m.Dyn - start
		}
	}
}

// RunSectionCoRun injects every class pilot within inst with the co-run
// experiment shape, returning parallel slices of section-level and
// end-to-end outcomes. Cancelling ctx stops the campaign between
// experiments; the returned outcomes are then partial and must be
// discarded (check ctx.Err after the call).
func (inj *Injector) RunSectionCoRun(ctx context.Context, inst *trace.Instance, classes []*sites.Class) (secs, fins []metrics.Outcome, stats Stats) {
	fins = make([]metrics.Outcome, len(classes))
	secs, stats = inj.runAll(ctx, classes, func(m *vm.Machine, i int, s sites.Site) (metrics.Outcome, uint64) {
		sec, fin, cost := inj.SectionCoRun(m, inst, s)
		fins[i] = fin
		return sec, cost
	})
	return secs, fins, stats
}

// conservativeSDC is the +Inf-magnitude outcome used when a section-level
// side effect prevents bounding the corruption: it is SDC-Bad for any ε.
func conservativeSDC(outputs int) metrics.Outcome {
	mags := make([]float64, outputs)
	for i := range mags {
		mags[i] = math.Inf(1)
	}
	return metrics.Outcome{Kind: metrics.SDC, Magnitudes: mags}
}

// liveSideEffect reports whether any live-declared word outside the
// instance's declared outputs differs from the clean exit state.
func liveSideEffect(inst *trace.Instance, m *vm.Machine) bool {
	for _, lb := range inst.IO.Live {
	word:
		for i := 0; i < lb.Len; i++ {
			addr := lb.Addr + i
			for _, ob := range inst.IO.Outputs {
				if addr >= ob.Addr && addr < ob.Addr+ob.Len {
					continue word
				}
			}
			if m.Mem[addr] != inst.Exit.Mem[addr] {
				return true
			}
		}
	}
	return false
}

// RunMonolithic injects the pilot of every class and returns per-class
// outcomes (indexed like classes) plus cost statistics. Cancelling ctx
// stops the campaign between experiments; the returned outcomes are then
// partial and must be discarded (check ctx.Err after the call).
func (inj *Injector) RunMonolithic(ctx context.Context, classes []*sites.Class) ([]metrics.Outcome, Stats) {
	return inj.runAll(ctx, classes, func(m *vm.Machine, _ int, s sites.Site) (metrics.Outcome, uint64) {
		return inj.Monolithic(m, s)
	})
}

// RunSection injects the pilot of every class within inst and returns
// per-class outcomes plus cost statistics. Cancellation behaves as in
// RunMonolithic.
func (inj *Injector) RunSection(ctx context.Context, inst *trace.Instance, classes []*sites.Class) ([]metrics.Outcome, Stats) {
	return inj.runAll(ctx, classes, func(m *vm.Machine, _ int, s sites.Site) (metrics.Outcome, uint64) {
		return inj.Section(m, inst, s)
	})
}

// runAll distributes one experiment per class over the worker pool. Each
// worker checks ctx between experiments, so a cancelled campaign stops
// within one in-flight experiment per worker. Stats count only the
// experiments actually run.
func (inj *Injector) runAll(ctx context.Context, classes []*sites.Class, exp func(*vm.Machine, int, sites.Site) (metrics.Outcome, uint64)) ([]metrics.Outcome, Stats) {
	outcomes := make([]metrics.Outcome, len(classes))
	var next, simInstrs, ran atomic.Uint64
	var wg sync.WaitGroup
	nw := inj.workers()
	if nw > len(classes) {
		nw = len(classes)
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := inj.T.Start.Clone()
			for {
				if ctx.Err() != nil {
					return
				}
				i := next.Add(1) - 1
				if i >= uint64(len(classes)) {
					return
				}
				c := classes[i]
				site := sites.Site{
					Dyn:     c.Pilot(),
					Operand: isa.Operand{Role: c.Key.Role, Class: c.Class, Reg: c.Reg},
					Bit:     c.Key.Bit,
					Width:   c.Width,
				}
				out, cost := exp(m, int(i), site)
				outcomes[i] = out
				simInstrs.Add(cost)
				ran.Add(1)
			}
		}()
	}
	wg.Wait()
	return outcomes, Stats{Experiments: int(ran.Load()), SimInstrs: simInstrs.Load()}
}
