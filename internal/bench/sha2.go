package bench

import (
	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// SHA2: the SHA-256 hash of a 32-byte message (a common key size, §5.4),
// in three sections:
//
//	s0 pad      — split the packed message into W[0..15] and pad
//	s1 schedule — expand the message schedule W[16..63]
//	s2 compress — 64 compression rounds plus digest finalization
//
// All sections are Discrete: a bitwise kernel has no meaningful local
// sensitivity, so the propagation analysis uses the worst-case
// amplification factor (any propagated corruption is SDC-Bad).
//
// Small modification: the compression rounds derive ROTR(e,25) and
// ROTR(a,22) with two chained rotations; the specialized version uses one
// (the paper's "eliminate a redundant shift operation").
// Large modification: the compress section is replaced by a lookup table
// keyed on the whole message schedule.

const (
	shaMsg     = 0 // 4 words, 8 message bytes each, big-endian packed
	shaMsgW    = 4
	shaW       = 16 // W[t] at shaW + t
	shaWW      = 64
	shaK       = 96 // round constants
	shaKW      = 64
	shaDigest  = 192
	shaDigestW = 8
	shaIV      = 208
	shaIVW     = 8
	shaScratch = 220 // compress spills t1 here
	shaTab     = 256 // large-variant table: 64 key words + 8 value words
	shaTabW    = shaWW + shaDigestW
	shaMemW    = 512
)

func init() { register("sha2", buildSHA2) }

// shaKConst are the SHA-256 round constants (fractional parts of the cube
// roots of the first 64 primes).
var shaKConst = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// shaIVConst is the SHA-256 initial hash value.
var shaIVConst = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// ShaMessage is the deterministic 32-byte input message.
func ShaMessage() []byte {
	msg := make([]byte, 32)
	r := rng(0x5a2)
	for i := range msg {
		msg[i] = byte(r.Intn(256))
	}
	return msg
}

// shaPackMsg packs the message into 4 big-endian 64-bit words.
func shaPackMsg(msg []byte) []uint64 {
	words := make([]uint64, shaMsgW)
	for i := range words {
		for b := 0; b < 8; b++ {
			words[i] = words[i]<<8 | uint64(msg[i*8+b])
		}
	}
	return words
}

// --- host reference ---

func rotr32(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// RefSHA2 computes the message schedule and the digest words for the input
// message; used for the lookup table and by tests.
func RefSHA2(msg []byte) (w [64]uint32, digest [8]uint32) {
	packed := shaPackMsg(msg)
	for i := 0; i < shaMsgW; i++ {
		w[2*i] = uint32(packed[i] >> 32)
		w[2*i+1] = uint32(packed[i])
	}
	w[8] = 0x80000000
	w[15] = 256 // message length in bits
	for t := 16; t < 64; t++ {
		s0 := rotr32(w[t-15], 7) ^ rotr32(w[t-15], 18) ^ (w[t-15] >> 3)
		s1 := rotr32(w[t-2], 17) ^ rotr32(w[t-2], 19) ^ (w[t-2] >> 10)
		w[t] = w[t-16] + s0 + w[t-7] + s1
	}
	a, b, c, d, e, f, g, h := shaIVConst[0], shaIVConst[1], shaIVConst[2], shaIVConst[3],
		shaIVConst[4], shaIVConst[5], shaIVConst[6], shaIVConst[7]
	for t := 0; t < 64; t++ {
		S1 := rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25)
		ch := (e & f) ^ (^e & g)
		t1 := h + S1 + ch + shaKConst[t] + w[t]
		S0 := rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := S0 + maj
		h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}
	st := [8]uint32{a, b, c, d, e, f, g, h}
	for i := range digest {
		digest[i] = shaIVConst[i] + st[i]
	}
	return w, digest
}

// --- ISA kernels ---

func shaPad() *prog.Function {
	f := prog.NewFunc("sha.pad")
	f.Li(1, 0)
	for i := 0; i < shaMsgW; i++ {
		f.Ld(2, 1, int64(shaMsg+i))
		f.Shri(3, 2, 32)
		f.St(3, 1, int64(shaW+2*i))
		f.Li(4, 0xffffffff)
		f.And(3, 2, 4)
		f.St(3, 1, int64(shaW+2*i+1))
	}
	f.Li(2, 0x80000000)
	f.St(2, 1, shaW+8)
	f.Li(2, 0)
	for t := 9; t < 15; t++ {
		f.St(2, 1, int64(shaW+t))
	}
	f.Li(2, 256)
	f.St(2, 1, shaW+15)
	f.Ret()
	return f.MustBuild()
}

func shaSchedule() *prog.Function {
	f := prog.NewFunc("sha.schedule")
	f.Li(9, 16) // t; W[x] lives at address x + shaW = x + 16, so &W[t-16] == r9
	f.Label("loop")
	f.Li(0, 64)
	f.Bge(9, 0, "end")
	f.Ld(1, 9, 1) // W[t-15]
	f.Rotr32(2, 1, 7)
	f.Rotr32(3, 1, 18)
	f.Xor(2, 2, 3)
	f.Shri(3, 1, 3)
	f.Xor(2, 2, 3) // σ0
	f.Ld(1, 9, 14) // W[t-2]
	f.Rotr32(4, 1, 17)
	f.Rotr32(3, 1, 19)
	f.Xor(4, 4, 3)
	f.Shri(3, 1, 10)
	f.Xor(4, 4, 3) // σ1
	f.Ld(1, 9, 0)  // W[t-16]
	f.Add32(1, 1, 2)
	f.Ld(3, 9, 9) // W[t-7]
	f.Add32(1, 1, 3)
	f.Add32(1, 1, 4)
	f.St(1, 9, 16) // W[t]
	f.Addi(9, 9, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// shaCompressBody emits the 64-round compression; a..h live in r1..r8,
// the round counter in r9, t1 spills to shaScratch. When small is true the
// wide rotations are single instructions; otherwise they chain two.
func shaCompressBody(name string, small bool) *prog.Function {
	f := prog.NewFunc(name)
	rotr := func(rd, ra int, n int64) {
		if small || n < 16 {
			f.Rotr32(rd, ra, n)
			return
		}
		// The redundant split rotation removed by the small modification.
		f.Rotr32(rd, ra, n-13)
		f.Rotr32(rd, rd, 13)
	}
	f.Li(11, 0)
	for i := 0; i < 8; i++ {
		f.Ld(1+i, 11, int64(shaIV+i)) // a..h from the IV
	}
	f.Li(9, 0)
	f.Label("round")
	// S1 and t1.
	rotr(10, 5, 6)
	f.Rotr32(11, 5, 11)
	f.Xor(10, 10, 11)
	rotr(11, 5, 25)
	f.Xor(10, 10, 11)
	f.Add32(10, 8, 10) // h + S1
	f.And(11, 5, 6)
	f.Not32(0, 5)
	f.And(0, 0, 7)
	f.Xor(11, 11, 0) // ch
	f.Add32(10, 10, 11)
	f.Ld(11, 9, shaK) // K[t]
	f.Add32(10, 10, 11)
	f.Ld(11, 9, shaW)   // W[t]
	f.Add32(10, 10, 11) // t1
	f.Li(11, 0)
	f.St(10, 11, shaScratch)
	// maj and S0.
	f.And(11, 1, 2)
	f.And(0, 1, 3)
	f.Xor(11, 11, 0)
	f.And(0, 2, 3)
	f.Xor(11, 11, 0) // maj
	rotr(0, 1, 2)
	f.Rotr32(10, 1, 13)
	f.Xor(0, 0, 10)
	rotr(10, 1, 22)
	f.Xor(0, 0, 10)   // S0
	f.Add32(0, 0, 11) // t2
	f.Li(11, 0)
	f.Ld(10, 11, shaScratch) // t1
	// Rotate the working variables.
	f.Mov(8, 7)
	f.Mov(7, 6)
	f.Mov(6, 5)
	f.Add32(5, 4, 10) // e = d + t1
	f.Mov(4, 3)
	f.Mov(3, 2)
	f.Mov(2, 1)
	f.Add32(1, 10, 0) // a = t1 + t2
	f.Addi(9, 9, 1)
	f.Li(0, 64)
	f.Blt(9, 0, "round")
	// Digest = IV + state.
	f.Li(11, 0)
	for i := 0; i < 8; i++ {
		f.Ld(10, 11, int64(shaIV+i))
		f.Add32(10, 10, 1+i)
		f.St(10, 11, int64(shaDigest+i))
	}
	f.Ret()
	return f.MustBuild()
}

// shaCompressLookup is the large-variant compress: match the schedule
// against the stored key, copy the digest on a hit, else fall back.
func shaCompressLookup() *prog.Function {
	f := prog.NewFunc("sha.compress")
	f.Li(1, 0) // word index; W[i] at shaW+i, key at shaTab+i
	f.Li(2, shaWW)
	f.Label("wloop")
	f.Bge(1, 2, "hit")
	f.Ld(3, 1, shaW)
	f.Ld(4, 1, shaTab)
	f.Bne(3, 4, "miss")
	f.Addi(1, 1, 1)
	f.Jmp("wloop")
	f.Label("hit")
	f.Li(1, 0)
	f.Li(2, shaDigestW)
	f.Label("cloop")
	f.Bge(1, 2, "done")
	f.Ld(3, 1, shaTab+shaWW)
	f.St(3, 1, shaDigest)
	f.Addi(1, 1, 1)
	f.Jmp("cloop")
	f.Label("done")
	f.Ret()
	f.Label("miss")
	f.Call("sha.compress.slow")
	f.Ret()
	return f.MustBuild()
}

func buildSHA2(v Variant) (*spec.Program, error) {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	for sec, name := range []string{"sha.pad", "sha.schedule", "sha.compress"} {
		main.SecBeg(sec)
		main.Call(name)
		main.SecEnd(sec)
	}
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	p.MustAdd(shaPad())
	p.MustAdd(shaSchedule())
	switch v {
	case Large:
		p.MustAdd(shaCompressLookup())
		p.MustAdd(shaCompressBody("sha.compress.slow", false))
	case Small:
		p.MustAdd(shaCompressBody("sha.compress", true))
	default:
		p.MustAdd(shaCompressBody("sha.compress", false))
	}

	linked, err := p.Link("main")
	if err != nil {
		return nil, err
	}

	msg := ShaMessage()
	packed := shaPackMsg(msg)
	kWords := make([]uint64, shaKW)
	for i, k := range shaKConst {
		kWords[i] = uint64(k)
	}
	ivWords := make([]uint64, shaIVW)
	for i, x := range shaIVConst {
		ivWords[i] = uint64(x)
	}
	var tab []uint64
	if v == Large {
		w, digest := RefSHA2(msg)
		for _, x := range w {
			tab = append(tab, uint64(x))
		}
		for _, x := range digest {
			tab = append(tab, uint64(x))
		}
	}

	msgBuf := ibuf("msg", shaMsg, shaMsgW)
	w015 := ibuf("w0-15", shaW, 16)
	w1663 := ibuf("w16-63", shaW+16, 48)
	wAll := ibuf("w", shaW, shaWW)
	kBuf := ibuf("k", shaK, shaKW)
	ivBuf := ibuf("iv", shaIV, shaIVW)
	digBuf := ibuf("digest", shaDigest, shaDigestW)
	tabBuf := ibuf("ctab", shaTab, shaTabW)

	live := []spec.Buffer{msgBuf, wAll, kBuf, ivBuf, digBuf, tabBuf}

	compressIn := []spec.Buffer{wAll, kBuf, ivBuf}
	if v == Large {
		compressIn = append(compressIn, tabBuf)
	}

	sp := &spec.Program{
		Name:     "sha2",
		Version:  string(v),
		Linked:   linked,
		MemWords: shaMemW,
		Init: func(m *vm.Machine) {
			writeWords(m, shaMsg, packed)
			writeWords(m, shaK, kWords)
			writeWords(m, shaIV, ivWords)
			if len(tab) > 0 {
				writeWords(m, shaTab, tab)
			}
		},
		Sections: []spec.Section{
			{ID: 0, Name: "pad", Discrete: true, Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{msgBuf}, Outputs: []spec.Buffer{w015}, Live: live},
			}},
			{ID: 1, Name: "schedule", Discrete: true, Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{w015}, Outputs: []spec.Buffer{w1663}, Live: live},
			}},
			{ID: 2, Name: "compress", Discrete: true, Instances: []spec.InstanceIO{
				{Inputs: compressIn, Outputs: []spec.Buffer{digBuf}, Live: live},
			}},
		},
		FinalOutputs: []spec.Buffer{digBuf},
	}
	return sp, nil
}
