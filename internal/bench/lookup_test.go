package bench

import (
	"testing"

	"fastflip/internal/trace"
)

// slowFns names each benchmark's large-variant fallback kernel. On the
// benchmark's own input the lookup must hit, so the fallback never runs.
var slowFns = map[string]string{
	"lud":      "lud.lu0.slow",
	"bscholes": "bs.dparams.slow",
	"fft":      "fft.bitrev.slow",
	"sha2":     "sha.compress.slow",
	"campipe":  "cp.demosaic.slow",
}

// TestLargeVariantLookupHits confirms the paper's large-modification
// semantics: the lookup table maps the concrete section input to its
// output, so the replaced section's original code is dead on this input.
func TestLargeVariantLookupHits(t *testing.T) {
	for name, slow := range slowFns {
		t.Run(name, func(t *testing.T) {
			p := MustBuild(name, Large)
			tr, err := trace.Record(p)
			if err != nil {
				t.Fatal(err)
			}
			slowIdx := -1
			for i, fn := range p.Linked.FuncNames {
				if fn == slow {
					slowIdx = i
				}
			}
			if slowIdx < 0 {
				t.Fatalf("large variant lacks fallback kernel %q", slow)
			}
			for _, inst := range tr.Instances {
				if inst.Funcs[slowIdx] {
					t.Errorf("fallback %q executed in section %d: lookup missed", slow, inst.Sec)
				}
			}
		})
	}
}

// TestLargeVariantShortensOrKeepsReplacedSection sanity-checks that the
// lookup rewrite targets the intended section: that section's dynamic
// length changes versus the base version.
func TestLargeVariantChangesSectionLength(t *testing.T) {
	replacedSection := map[string]int{
		"lud": 0, "bscholes": 0, "fft": 0, "sha2": 2, "campipe": 0,
	}
	for name, sec := range replacedSection {
		t.Run(name, func(t *testing.T) {
			base, err := trace.Record(MustBuild(name, None))
			if err != nil {
				t.Fatal(err)
			}
			large, err := trace.Record(MustBuild(name, Large))
			if err != nil {
				t.Fatal(err)
			}
			var baseLen, largeLen uint64
			for _, inst := range base.Instances {
				if inst.Sec == sec {
					baseLen += inst.Len()
				}
			}
			for _, inst := range large.Instances {
				if inst.Sec == sec {
					largeLen += inst.Len()
				}
			}
			if baseLen == largeLen {
				t.Errorf("section %d length unchanged (%d) by the large variant", sec, baseLen)
			}
			t.Logf("%s section %d: %d -> %d dynamic instructions", name, sec, baseLen, largeLen)
		})
	}
}

// TestDeterministicBuilds: building the same version twice yields
// hash-identical functions and identical inputs — the analyses depend on
// full determinism.
func TestDeterministicBuilds(t *testing.T) {
	for _, name := range Names() {
		p1 := MustBuild(name, None)
		p2 := MustBuild(name, None)
		if len(p1.Linked.Code) != len(p2.Linked.Code) {
			t.Fatalf("%s: code lengths differ", name)
		}
		for i := range p1.Linked.FuncHashes {
			if p1.Linked.FuncHashes[i] != p2.Linked.FuncHashes[i] {
				t.Errorf("%s: function %s hash differs between builds", name, p1.Linked.FuncNames[i])
			}
		}
		m1, m2 := p1.NewMachine(), p2.NewMachine()
		for a := range m1.Mem {
			if m1.Mem[a] != m2.Mem[a] {
				t.Fatalf("%s: initial memory differs at %d", name, a)
			}
		}
	}
}

// TestSmallVariantsShrinkOrKeepTrace: the small modifications remove
// redundant work, so the trace never grows.
func TestSmallVariantsShrinkTrace(t *testing.T) {
	for _, name := range Names() {
		base, err := trace.Record(MustBuild(name, None))
		if err != nil {
			t.Fatal(err)
		}
		small, err := trace.Record(MustBuild(name, Small))
		if err != nil {
			t.Fatal(err)
		}
		if small.TotalDyn > base.TotalDyn {
			t.Errorf("%s: small variant grew the trace: %d -> %d", name, base.TotalDyn, small.TotalDyn)
		}
		if small.TotalDyn == base.TotalDyn {
			t.Errorf("%s: small variant did not change the trace length", name)
		}
	}
}
