package bench

import (
	"fmt"
	"math"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// BScholes: the Black-Scholes option pricing kernel from PARSEC, reduced to
// two options (§5.4). Four static sections per option (x2 dynamic):
//
//	s0 dparams — d1, d2 from (S, X, T, r, v)
//	s1 cndf1   — N(d1) via the Abramowitz-Stegun polynomial
//	s2 cndf2   — N(d2)
//	s3 price   — S·N(d1) − X·e^(−rT)·N(d2)
//
// Small modification: the CNDF kernel normally derives 1/√(2π) with a
// division at run time; the specialized version folds the constant
// (bit-identical, computed the same way on the host).
// Large modification: the dparams section is replaced by a lookup table
// keyed on the option parameters.

const (
	bsOpts   = 2
	bsOptW   = 5 // S, X, T, r, v
	bsIn     = 0
	bsInW    = bsOpts * bsOptW
	bsD      = 16 // d1, d2 per option
	bsDW     = bsOpts * 2
	bsND     = 24 // N(d1), N(d2) per option
	bsNDW    = bsOpts * 2
	bsPrice  = 32
	bsPriceW = bsOpts
	bsTab    = 40 // large-variant lookup table: (5 key + 2 value) x 2
	bsTabW   = bsOpts * (bsOptW + 2)
	bsMemW   = 128
)

func init() { register("bscholes", buildBScholes) }

// Abramowitz & Stegun 26.2.17 coefficients.
const (
	bsA1 = 0.319381530
	bsA2 = -0.356563782
	bsA3 = 1.781477937
	bsA4 = -1.821255978
	bsA5 = 1.330274429
	bsK0 = 0.2316419
	// bsRoot2Pi is √(2π); the base CNDF divides by it at run time, the
	// small variant preloads bsInvRoot2Pi.
	bsRoot2Pi = 2.5066282746310002
)

// bsInvRoot2Pi is computed with a runtime float64 division so it is
// bit-identical to what the base variant's FDIV produces.
var bsInvRoot2Pi = func() float64 {
	one, root := 1.0, bsRoot2Pi
	return one / root
}()

// bsOptions returns the two option parameter sets (S, X, T, r, v).
func bsOptions() [][bsOptW]float64 {
	return [][bsOptW]float64{
		{42, 40, 0.5, 0.1, 0.2},
		{100, 110, 1.0, 0.05, 0.3},
	}
}

// --- host reference ---

func refCNDF(x float64) float64 {
	ax := math.Abs(x)
	one := 1.0
	k := one / (one + float64(bsK0*ax))
	poly := bsA5
	poly = float64(poly*k) + bsA4
	poly = float64(poly*k) + bsA3
	poly = float64(poly*k) + bsA2
	poly = float64(poly*k) + bsA1
	poly = poly * k
	e := math.Exp(float64(x*x) * -0.5)
	n := one - float64(float64(bsInvRoot2Pi*e)*poly)
	if x < 0 {
		n = one - n
	}
	return n
}

func refDParams(opt [bsOptW]float64) (d1, d2 float64) {
	s, x, t, r, v := opt[0], opt[1], opt[2], opt[3], opt[4]
	// float64 conversions force per-operation rounding (no FMA), keeping
	// the host bit-identical to the VM.
	lg := math.Log(s / x)
	hv := float64(v*v) * 0.5
	num := lg + float64((r+hv)*t)
	vsqrt := float64(v * math.Sqrt(t))
	d1 = num / vsqrt
	d2 = d1 - vsqrt
	return d1, d2
}

// RefBScholes prices both options, returning per-option d-params and prices
// (used to build the large variant's lookup table and by tests).
func RefBScholes() (d [][2]float64, prices []float64) {
	for _, opt := range bsOptions() {
		d1, d2 := refDParams(opt)
		nd1, nd2 := refCNDF(d1), refCNDF(d2)
		s, x, t, r := opt[0], opt[1], opt[2], opt[3]
		disc := math.Exp(-float64(r * t))
		price := float64(s*nd1) - float64(float64(x*disc)*nd2)
		d = append(d, [2]float64{d1, d2})
		prices = append(prices, price)
	}
	return d, prices
}

// --- ISA kernels ---

// bsDParamsBody computes d1, d2: r1 = &opt, r2 = &d.
func bsDParamsBody(name string) *prog.Function {
	f := prog.NewFunc(name)
	f.Fld(0, 1, 0) // S
	f.Fld(1, 1, 1) // X
	f.Fld(2, 1, 2) // T
	f.Fld(3, 1, 3) // r
	f.Fld(4, 1, 4) // v
	f.Fdiv(5, 0, 1)
	f.Fln(5, 5) // ln(S/X)
	f.Fmul(6, 4, 4)
	f.Fli(7, 0.5)
	f.Fmul(6, 6, 7)
	f.Fadd(6, 3, 6) // r + v²/2
	f.Fmul(6, 6, 2) // ·T
	f.Fadd(5, 5, 6) // numerator
	f.Fsqrt(8, 2)
	f.Fmul(8, 4, 8)  // v·√T
	f.Fdiv(9, 5, 8)  // d1
	f.Fsub(10, 9, 8) // d2
	f.Fst(9, 2, 0)
	f.Fst(10, 2, 1)
	f.Ret()
	return f.MustBuild()
}

// bsDParamsLookup is the large-variant dparams: probe the table on the five
// input words, copy the two result words on a hit, else fall back.
func bsDParamsLookup() *prog.Function {
	f := prog.NewFunc("bs.dparams")
	f.Li(3, bsTab)  // entry cursor
	f.Li(4, bsOpts) // entries left
	f.Label("eloop")
	f.Li(5, 0)
	f.Beq(4, 5, "miss")
	f.Li(6, 0) // word index
	f.Li(7, bsOptW)
	f.Label("wloop")
	f.Bge(6, 7, "hit")
	f.Add(8, 3, 6)
	f.Ld(9, 8, 0)
	f.Add(8, 1, 6)
	f.Ld(10, 8, 0)
	f.Bne(9, 10, "next")
	f.Addi(6, 6, 1)
	f.Jmp("wloop")
	f.Label("hit")
	f.Ld(9, 3, bsOptW) // d1 bits
	f.St(9, 2, 0)
	f.Ld(9, 3, bsOptW+1) // d2 bits
	f.St(9, 2, 1)
	f.Ret()
	f.Label("next")
	f.Addi(3, 3, bsOptW+2)
	f.Addi(4, 4, -1)
	f.Jmp("eloop")
	f.Label("miss")
	f.Call("bs.dparams.slow")
	f.Ret()
	return f.MustBuild()
}

// bsCNDF computes N(x): r1 = &x, r2 = &out. The small variant skips the
// runtime derivation of 1/√(2π).
func bsCNDF(small bool) *prog.Function {
	f := prog.NewFunc("bs.cndf")
	f.Fld(0, 1, 0) // x
	f.Fabs(1, 0)
	f.Fli(2, bsK0)
	f.Fmul(2, 2, 1)
	f.Fli(3, 1.0)
	f.Fadd(2, 3, 2)
	f.Fdiv(2, 3, 2) // k = 1/(1+k0·|x|)
	f.Fli(4, bsA5)
	f.Fmul(4, 4, 2)
	f.Fli(5, bsA4)
	f.Fadd(4, 4, 5)
	f.Fmul(4, 4, 2)
	f.Fli(5, bsA3)
	f.Fadd(4, 4, 5)
	f.Fmul(4, 4, 2)
	f.Fli(5, bsA2)
	f.Fadd(4, 4, 5)
	f.Fmul(4, 4, 2)
	f.Fli(5, bsA1)
	f.Fadd(4, 4, 5)
	f.Fmul(4, 4, 2) // poly
	f.Fmul(5, 0, 0)
	f.Fli(6, -0.5)
	f.Fmul(5, 5, 6)
	f.Fexp(5, 5) // e^(−x²/2)
	if small {
		f.Fli(6, bsInvRoot2Pi)
	} else {
		// Redundant runtime division the small modification removes.
		f.Fli(6, bsRoot2Pi)
		f.Fli(7, 1.0)
		f.Fdiv(6, 7, 6)
	}
	f.Fmul(7, 6, 5)
	f.Fmul(7, 7, 4)
	f.Fli(8, 1.0)
	f.Fsub(7, 8, 7) // n = 1 − inv·e·poly
	f.Fli(9, 0.0)
	f.Fblt(0, 9, "neg")
	f.Fst(7, 2, 0)
	f.Ret()
	f.Label("neg")
	f.Fsub(7, 8, 7)
	f.Fst(7, 2, 0)
	f.Ret()
	return f.MustBuild()
}

// bsPriceFn prices one option: r1 = &opt, r2 = &nd, r3 = &price.
func bsPriceFn() *prog.Function {
	f := prog.NewFunc("bs.price")
	f.Fld(0, 1, 0) // S
	f.Fld(1, 1, 1) // X
	f.Fld(2, 1, 2) // T
	f.Fld(3, 1, 3) // r
	f.Fld(4, 2, 0) // N(d1)
	f.Fld(5, 2, 1) // N(d2)
	f.Fmul(6, 3, 2)
	f.Fneg(6, 6)
	f.Fexp(6, 6) // e^(−rT)
	f.Fmul(7, 1, 6)
	f.Fmul(7, 7, 5) // X·e^(−rT)·N(d2)
	f.Fmul(8, 0, 4) // S·N(d1)
	f.Fsub(8, 8, 7)
	f.Fst(8, 3, 0)
	f.Ret()
	return f.MustBuild()
}

// Section drivers: r1 = option index.

func bsSec(name string, emit func(f *prog.B)) *prog.Function {
	f := prog.NewFunc(name)
	emit(f)
	f.Ret()
	return f.MustBuild()
}

// bsAddrs emits r2 = base2 + o*stride2 style address computations; o is in
// r1 on entry and preserved in r12.
func buildBScholes(v Variant) (*spec.Program, error) {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	main.Li(15, bsOpts)
	main.Li(14, 0)
	main.Label("oloop")
	for sec, name := range []string{"bs.sec1", "bs.sec2", "bs.sec3", "bs.sec4"} {
		main.SecBeg(sec)
		main.Mov(1, 14)
		main.Call(name)
		main.SecEnd(sec)
	}
	main.Addi(14, 14, 1)
	main.Blt(14, 15, "oloop")
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	p.MustAdd(bsSec("bs.sec1", func(f *prog.B) {
		f.Muli(2, 1, bsOptW)
		f.Addi(2, 2, bsIn) // &opt
		f.Shli(3, 1, 1)
		f.Addi(3, 3, bsD) // &d
		f.Mov(1, 2)
		f.Mov(2, 3)
		f.Call("bs.dparams")
	}))
	p.MustAdd(bsSec("bs.sec2", func(f *prog.B) {
		f.Shli(2, 1, 1)
		f.Addi(3, 2, bsD)  // &d1
		f.Addi(2, 2, bsND) // &nd1
		f.Mov(1, 3)
		f.Call("bs.cndf")
	}))
	p.MustAdd(bsSec("bs.sec3", func(f *prog.B) {
		f.Shli(2, 1, 1)
		f.Addi(3, 2, bsD+1)  // &d2
		f.Addi(2, 2, bsND+1) // &nd2
		f.Mov(1, 3)
		f.Call("bs.cndf")
	}))
	p.MustAdd(bsSec("bs.sec4", func(f *prog.B) {
		f.Muli(2, 1, bsOptW)
		f.Addi(2, 2, bsIn) // &opt
		f.Shli(3, 1, 1)
		f.Addi(3, 3, bsND)    // &nd
		f.Addi(4, 1, bsPrice) // &price (stride 1)
		f.Mov(1, 2)
		f.Mov(2, 3)
		f.Mov(3, 4)
		f.Call("bs.price")
	}))

	if v == Large {
		p.MustAdd(bsDParamsLookup())
		p.MustAdd(bsDParamsBody("bs.dparams.slow"))
	} else {
		p.MustAdd(bsDParamsBody("bs.dparams"))
	}
	p.MustAdd(bsCNDF(v == Small))
	p.MustAdd(bsPriceFn())

	linked, err := p.Link("main")
	if err != nil {
		return nil, err
	}

	opts := bsOptions()
	var tab []uint64
	if v == Large {
		d, _ := RefBScholes()
		for o, opt := range opts {
			for _, x := range opt {
				tab = append(tab, math.Float64bits(x))
			}
			tab = append(tab, math.Float64bits(d[o][0]), math.Float64bits(d[o][1]))
		}
	}

	optBuf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("opt%d", o), bsIn+o*bsOptW, bsOptW) }
	d1Buf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("d1_%d", o), bsD+o*2, 1) }
	d2Buf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("d2_%d", o), bsD+o*2+1, 1) }
	dBuf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("d%d", o), bsD+o*2, 2) }
	nd1Buf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("nd1_%d", o), bsND+o*2, 1) }
	nd2Buf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("nd2_%d", o), bsND+o*2+1, 1) }
	ndBuf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("nd%d", o), bsND+o*2, 2) }
	priceBuf := func(o int) spec.Buffer { return fbuf(fmt.Sprintf("price%d", o), bsPrice+o, 1) }

	live := []spec.Buffer{
		fbuf("opts", bsIn, bsInW),
		fbuf("d", bsD, bsDW),
		fbuf("nd", bsND, bsNDW),
		fbuf("price", bsPrice, bsPriceW),
		ibuf("dtab", bsTab, bsTabW),
	}

	var s1, s2, s3, s4 []spec.InstanceIO
	for o := 0; o < bsOpts; o++ {
		in1 := []spec.Buffer{optBuf(o)}
		if v == Large {
			in1 = append(in1, ibuf("dtab", bsTab, bsTabW))
		}
		s1 = append(s1, spec.InstanceIO{Inputs: in1, Outputs: []spec.Buffer{dBuf(o)}, Live: live})
		s2 = append(s2, spec.InstanceIO{Inputs: []spec.Buffer{d1Buf(o)}, Outputs: []spec.Buffer{nd1Buf(o)}, Live: live})
		s3 = append(s3, spec.InstanceIO{Inputs: []spec.Buffer{d2Buf(o)}, Outputs: []spec.Buffer{nd2Buf(o)}, Live: live})
		s4 = append(s4, spec.InstanceIO{
			Inputs:  []spec.Buffer{optBuf(o), ndBuf(o)},
			Outputs: []spec.Buffer{priceBuf(o)},
			Live:    live,
		})
	}

	sp := &spec.Program{
		Name:     "bscholes",
		Version:  string(v),
		Linked:   linked,
		MemWords: bsMemW,
		Init: func(m *vm.Machine) {
			for o, opt := range opts {
				writeFloats(m, bsIn+o*bsOptW, opt[:])
			}
			if len(tab) > 0 {
				writeWords(m, bsTab, tab)
			}
		},
		Sections: []spec.Section{
			{ID: 0, Name: "dparams", Instances: s1},
			{ID: 1, Name: "cndf1", Instances: s2},
			{ID: 2, Name: "cndf2", Instances: s3},
			{ID: 3, Name: "price", Instances: s4},
		},
		FinalOutputs: []spec.Buffer{fbuf("price", bsPrice, bsPriceW)},
	}
	return sp, nil
}
