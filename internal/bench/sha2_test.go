package bench

import (
	"crypto/sha256"
	"testing"

	"fastflip/internal/trace"
)

func shaDigestOf(t *testing.T, v Variant) []uint64 {
	t.Helper()
	p, err := Build("sha2", v)
	if err != nil {
		t.Fatalf("Build(sha2, %s): %v", v, err)
	}
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatalf("Record(sha2, %s): %v", v, err)
	}
	out := make([]uint64, shaDigestW)
	copy(out, tr.Final.Mem[shaDigest:shaDigest+shaDigestW])
	return out
}

// TestSHA2MatchesStdlib checks the simulated hash against crypto/sha256 —
// an end-to-end validation of the padding, schedule, constants, and rounds.
func TestSHA2MatchesStdlib(t *testing.T) {
	got := shaDigestOf(t, None)
	want := sha256.Sum256(ShaMessage())
	for i := 0; i < shaDigestW; i++ {
		w := uint64(want[4*i])<<24 | uint64(want[4*i+1])<<16 | uint64(want[4*i+2])<<8 | uint64(want[4*i+3])
		if got[i] != w {
			t.Fatalf("digest[%d] = %08x, want %08x", i, got[i], w)
		}
	}
}

func TestSHA2RefMatchesStdlib(t *testing.T) {
	_, digest := RefSHA2(ShaMessage())
	want := sha256.Sum256(ShaMessage())
	for i := range digest {
		w := uint32(want[4*i])<<24 | uint32(want[4*i+1])<<16 | uint32(want[4*i+2])<<8 | uint32(want[4*i+3])
		if digest[i] != w {
			t.Fatalf("ref digest[%d] = %08x, want %08x", i, digest[i], w)
		}
	}
}

func TestSHA2VariantsPreserveSemantics(t *testing.T) {
	base := shaDigestOf(t, None)
	for _, v := range []Variant{Small, Large} {
		got := shaDigestOf(t, v)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s: digest[%d] = %08x, none-variant %08x", v, i, got[i], base[i])
			}
		}
	}
}

func TestSHA2TraceShape(t *testing.T) {
	p := MustBuild("sha2", None)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Instances), 3; got != want {
		t.Fatalf("instances = %d, want %d", got, want)
	}
	// Compress dominates the trace, as in the paper's SHA2 discussion.
	if tr.Instances[2].Len() < tr.Instances[1].Len() {
		t.Errorf("compress (%d) should be longer than schedule (%d)",
			tr.Instances[2].Len(), tr.Instances[1].Len())
	}
	t.Logf("sha2 trace: %d dynamic instructions", tr.TotalDyn)
}
