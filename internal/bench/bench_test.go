package bench

import (
	"testing"

	"fastflip/internal/sites"
	"fastflip/internal/trace"
)

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"bscholes", "campipe", "fft", "lud", "sha2"}
	if len(names) != len(want) {
		t.Fatalf("benchmarks = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	if _, err := Build("unknown", None); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Build("lud", Variant("huge")); err == nil {
		t.Error("unknown variant accepted")
	}
	for _, name := range names {
		if _, ok := PilotInaccuracies[name]; !ok {
			t.Errorf("%s has no pilot inaccuracy entry", name)
		}
	}
}

// TestAllVersionsTraceCleanly builds and traces all fifteen benchmark
// versions and checks structural invariants shared by every benchmark.
func TestAllVersionsTraceCleanly(t *testing.T) {
	for _, name := range Names() {
		for _, v := range Variants {
			t.Run(name+"/"+string(v), func(t *testing.T) {
				p, err := Build(name, v)
				if err != nil {
					t.Fatal(err)
				}
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				tr, err := trace.Record(p)
				if err != nil {
					t.Fatal(err)
				}
				// Every declared instance executed.
				declared := 0
				for _, s := range p.Sections {
					declared += len(s.Instances)
				}
				if len(tr.Instances) != declared {
					t.Errorf("executed %d instances, declared %d", len(tr.Instances), declared)
				}
				// Outputs fall inside the live set (side-effect checking
				// relies on the live set covering all meaningful state).
				for _, inst := range tr.Instances {
					for _, out := range inst.IO.Outputs {
						covered := false
						for _, lv := range inst.IO.Live {
							if out.Addr >= lv.Addr && out.Addr+out.Len <= lv.Addr+lv.Len {
								covered = true
							}
						}
						if !covered {
							t.Errorf("section %d output %v not covered by live set",
								inst.Sec, out)
						}
					}
				}
				if n := sites.Count(tr, sites.Options{}); n == 0 {
					t.Error("no error sites")
				}
			})
		}
	}
}

// TestStaticCoverage checks the Minotaur condition (§5.4): the chosen
// inputs execute every static instruction of interest, except the
// large-variant fallback kernels, which are dead when the lookup hits.
func TestStaticCoverage(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := MustBuild(name, None)
			tr, err := trace.Record(p)
			if err != nil {
				t.Fatal(err)
			}
			exec, total := tr.Coverage()
			// The base versions contain small amounts of defensive dead
			// code (e.g. bounds-check branches never taken); coverage must
			// still be near-complete.
			if float64(exec) < 0.95*float64(total) {
				t.Errorf("coverage %d/%d below 95%%", exec, total)
			}
		})
	}
}

// TestVariantsShiftOnlyModifiedFunctions checks the hash discipline that
// incremental reuse rests on: between the base and each modified version,
// only the functions the modification touches (plus added ones) change.
func TestVariantsShiftOnlyModifiedFunctions(t *testing.T) {
	expectChanged := map[string]map[Variant][]string{
		"lud":      {Small: {"lud.bmod"}, Large: {"lud.lu0"}},
		"bscholes": {Small: {"bs.cndf"}, Large: {"bs.dparams"}},
		"fft":      {Small: {"fft.stage"}, Large: {"fft.bitrev"}},
		"sha2":     {Small: {"sha.compress"}, Large: {"sha.compress"}},
		"campipe":  {Small: {"cp.gamma"}, Large: {"cp.demosaic"}},
	}
	for name, perVariant := range expectChanged {
		base := MustBuild(name, None)
		baseHash := map[string][32]byte{}
		for i, fn := range base.Linked.FuncNames {
			baseHash[fn] = base.Linked.FuncHashes[i]
		}
		for v, wantChanged := range perVariant {
			mod := MustBuild(name, v)
			changed := map[string]bool{}
			for i, fn := range mod.Linked.FuncNames {
				if h, ok := baseHash[fn]; ok && h != mod.Linked.FuncHashes[i] {
					changed[fn] = true
				}
			}
			for _, fn := range wantChanged {
				if !changed[fn] {
					t.Errorf("%s/%s: expected %s to change", name, v, fn)
				}
				delete(changed, fn)
			}
			for fn := range changed {
				t.Errorf("%s/%s: unexpected change in %s", name, v, fn)
			}
		}
	}
}

// TestSectionCounts locks in the Table 1 section structure.
func TestSectionCounts(t *testing.T) {
	want := map[string]struct{ static, dynamic int }{
		"bscholes": {4, 2},
		"campipe":  {5, 1},
		"fft":      {5, 1},
		"lud":      {4, 2},
		"sha2":     {3, 1},
	}
	for name, w := range want {
		p := MustBuild(name, None)
		if len(p.Sections) != w.static {
			t.Errorf("%s: %d static sections, want %d", name, len(p.Sections), w.static)
		}
		for _, s := range p.Sections {
			if len(s.Instances) != w.dynamic {
				t.Errorf("%s section %q: %d instances, want %d", name, s.Name, len(s.Instances), w.dynamic)
			}
		}
	}
}
