package bench

import (
	"math"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// Campipe: a raw camera image processing pipeline (modeled on CAVA's Nikon
// D7000 pipeline, §5.4) over a 16x16 RGGB Bayer input, in five sections:
//
//	s0 demosaic — bilinear Bayer interpolation into R/G/B planes
//	s1 denoise  — 5-tap cross mean filter per channel
//	s2 xform    — 3x3 color space correction matrix
//	s3 gamma    — gamma compression via exp(γ·ln x)
//	s4 tonemap  — clamp to [0,1] and quantize to 8-bit levels
//
// The tonemap quantization masks small upstream SDCs. FastFlip's
// propagation analysis cannot see that masking, which makes Campipe the
// benchmark that needs aggressive target adjustment (§6.1, Table 4) — this
// is the paper's inter-section masking case and it is reproduced here
// deliberately.
//
// Small modification: the gamma loop derives the input and output element
// addresses separately; the specialized version computes the element
// address once and reuses it with a constant plane offset (the paper's CSE
// change). Large modification: the demosaic section is replaced by a
// lookup table keyed on the raw frame.

const (
	cpW      = 16
	cpPix    = cpW * cpW
	cpRaw    = 0
	cpRGB1   = cpPix            // demosaic output, 3 planes
	cpRGB2   = cpRGB1 + 3*cpPix // denoise output
	cpRGB3   = cpRGB2 + 3*cpPix // xform output
	cpRGB4   = cpRGB3 + 3*cpPix // gamma output
	cpOut    = cpRGB4 + 3*cpPix // tonemap output
	cpTab    = cpOut + 3*cpPix  // large-variant table: 256 key + 768 value
	cpTabW   = cpPix + 3*cpPix
	cpMemW   = cpTab + cpTabW + 64
	cpGamma  = 0.4545
	cpFloor  = 1e-4 // gamma's log clamp
	cpLevels = 255.0
)

// Color correction matrix (row major).
var cpMatrix = [9]float64{
	1.438, -0.062, -0.376,
	-0.296, 1.616, -0.320,
	-0.106, -0.537, 1.643,
}

func init() { register("campipe", buildCampipe) }

// cpInput returns the deterministic raw Bayer frame with values in (0, 1).
func cpInput() []float64 {
	r := rng(0xca3)
	raw := make([]float64, cpPix)
	for i := range raw {
		raw[i] = 0.05 + 0.9*r.Float64()
	}
	return raw
}

// --- host reference (operation order mirrors the ISA kernels) ---

func refDemosaic(raw []float64) (rgb []float64) {
	rgb = make([]float64, 3*cpPix)
	r, g, b := rgb[0:cpPix], rgb[cpPix:2*cpPix], rgb[2*cpPix:]
	at := func(y, x int) float64 { return raw[(y&(cpW-1))*cpW+(x&(cpW-1))] }
	for y := 0; y < cpW; y++ {
		for x := 0; x < cpW; x++ {
			i := y*cpW + x
			lr := (at(y, x-1) + at(y, x+1)) * 0.5
			ud := (at(y-1, x) + at(y+1, x)) * 0.5
			di := (((at(y-1, x-1) + at(y-1, x+1)) + at(y+1, x-1)) + at(y+1, x+1)) * 0.25
			ce := at(y, x)
			hv := (lr + ud) * 0.5
			switch {
			case y&1 == 0 && x&1 == 0: // red site
				r[i], g[i], b[i] = ce, hv, di
			case y&1 == 0: // green on red row
				r[i], g[i], b[i] = lr, ce, ud
			case x&1 == 0: // green on blue row
				r[i], g[i], b[i] = ud, ce, lr
			default: // blue site
				r[i], g[i], b[i] = di, hv, ce
			}
		}
	}
	return rgb
}

func refDenoise(in []float64) []float64 {
	out := make([]float64, 3*cpPix)
	for p := 0; p < 3; p++ {
		src := in[p*cpPix : (p+1)*cpPix]
		dst := out[p*cpPix : (p+1)*cpPix]
		at := func(y, x int) float64 { return src[(y&(cpW-1))*cpW+(x&(cpW-1))] }
		for y := 0; y < cpW; y++ {
			for x := 0; x < cpW; x++ {
				s := at(y, x) + at(y, x-1)
				s += at(y, x+1)
				s += at(y-1, x)
				s += at(y+1, x)
				dst[y*cpW+x] = s * 0.2
			}
		}
	}
	return out
}

func refXform(in []float64) []float64 {
	out := make([]float64, 3*cpPix)
	for i := 0; i < cpPix; i++ {
		r, g, b := in[i], in[cpPix+i], in[2*cpPix+i]
		for row := 0; row < 3; row++ {
			v := float64(cpMatrix[row*3] * r)
			v += float64(cpMatrix[row*3+1] * g)
			v += float64(cpMatrix[row*3+2] * b)
			out[row*cpPix+i] = v
		}
	}
	return out
}

func refGamma(in []float64) []float64 {
	out := make([]float64, 3*cpPix)
	for i := range in {
		x := math.Max(in[i], cpFloor)
		out[i] = math.Exp(cpGamma * math.Log(x))
	}
	return out
}

func refTonemap(in []float64) []float64 {
	out := make([]float64, 3*cpPix)
	for i := range in {
		x := math.Max(in[i], 0)
		x = math.Min(x, 1)
		t := float64(x*cpLevels) + 0.5
		out[i] = float64(int64(t)) / cpLevels
	}
	return out
}

// RefCampipe runs the whole pipeline on the host, returning the demosaic
// output (for the lookup table) and the final frame.
func RefCampipe() (rgb1, out []float64) {
	rgb1 = refDemosaic(cpInput())
	out = refTonemap(refGamma(refXform(refDenoise(rgb1))))
	return rgb1, out
}

// --- ISA kernels ---

// cpDemosaicBody: per-pixel bilinear Bayer demosaic with wraparound
// neighbors. Loop registers: r1 = y, r2 = x; temporaries r3..r11.
func cpDemosaicBody(name string) *prog.Function {
	f := prog.NewFunc(name)
	// rawAt loads raw[(yr)&15][(xr)&15] into freg, using r8/r9 as scratch.
	rawAt := func(freg, yr, xr int) {
		f.Andi(8, yr, cpW-1)
		f.Shli(8, 8, 4)
		f.Andi(9, xr, cpW-1)
		f.Add(8, 8, 9)
		f.Fld(freg, 8, cpRaw)
	}
	f.Li(1, 0) // y
	f.Label("yloop")
	f.Li(10, cpW)
	f.Bge(1, 10, "end")
	f.Li(2, 0) // x
	f.Label("xloop")
	f.Li(10, cpW)
	f.Bge(2, 10, "xend")
	f.Addi(4, 2, -1) // x-1
	f.Addi(5, 2, 1)  // x+1
	f.Addi(6, 1, -1) // y-1
	f.Addi(7, 1, 1)  // y+1
	// lr
	rawAt(0, 1, 4)
	rawAt(1, 1, 5)
	f.Fadd(1, 0, 1)
	f.Fli(9, 0.5)
	f.Fmul(1, 1, 9) // f1 = lr
	// ud
	rawAt(0, 6, 2)
	rawAt(2, 7, 2)
	f.Fadd(2, 0, 2)
	f.Fmul(2, 2, 9) // f2 = ud
	// diagonal
	rawAt(0, 6, 4)
	rawAt(3, 6, 5)
	f.Fadd(3, 0, 3)
	rawAt(0, 7, 4)
	f.Fadd(3, 3, 0)
	rawAt(0, 7, 5)
	f.Fadd(3, 3, 0)
	f.Fli(9, 0.25)
	f.Fmul(3, 3, 9) // f3 = di
	// center and hv
	rawAt(0, 1, 2) // f0 = ce
	f.Fadd(4, 1, 2)
	f.Fli(9, 0.5)
	f.Fmul(4, 4, 9) // f4 = hv
	// select by parity into f6 (R), f7 (G), f8 (B)
	f.Andi(10, 1, 1)
	f.Andi(11, 2, 1)
	f.Li(9, 0)
	f.Bne(10, 9, "oddrow")
	f.Bne(11, 9, "greenR")
	f.Fmov(6, 0) // red site
	f.Fmov(7, 4)
	f.Fmov(8, 3)
	f.Jmp("store")
	f.Label("greenR")
	f.Fmov(6, 1)
	f.Fmov(7, 0)
	f.Fmov(8, 2)
	f.Jmp("store")
	f.Label("oddrow")
	f.Bne(11, 9, "bluesite")
	f.Fmov(6, 2) // green on blue row
	f.Fmov(7, 0)
	f.Fmov(8, 1)
	f.Jmp("store")
	f.Label("bluesite")
	f.Fmov(6, 3)
	f.Fmov(7, 4)
	f.Fmov(8, 0)
	f.Label("store")
	f.Shli(3, 1, 4)
	f.Add(3, 3, 2) // idx
	f.Fst(6, 3, cpRGB1)
	f.Fst(7, 3, cpRGB1+cpPix)
	f.Fst(8, 3, cpRGB1+2*cpPix)
	f.Addi(2, 2, 1)
	f.Jmp("xloop")
	f.Label("xend")
	f.Addi(1, 1, 1)
	f.Jmp("yloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// cpDemosaicLookup: table probe keyed on the raw frame.
func cpDemosaicLookup() *prog.Function {
	f := prog.NewFunc("cp.demosaic")
	f.Li(1, 0)
	f.Li(2, cpPix)
	f.Label("wloop")
	f.Bge(1, 2, "hit")
	f.Ld(3, 1, cpRaw)
	f.Ld(4, 1, cpTab)
	f.Bne(3, 4, "miss")
	f.Addi(1, 1, 1)
	f.Jmp("wloop")
	f.Label("hit")
	f.Li(1, 0)
	f.Li(2, 3*cpPix)
	f.Label("cloop")
	f.Bge(1, 2, "done")
	f.Ld(3, 1, cpTab+cpPix)
	f.St(3, 1, cpRGB1)
	f.Addi(1, 1, 1)
	f.Jmp("cloop")
	f.Label("done")
	f.Ret()
	f.Label("miss")
	f.Call("cp.demosaic.slow")
	f.Ret()
	return f.MustBuild()
}

// cpDenoise: 5-tap cross mean filter, per plane.
func cpDenoise() *prog.Function {
	f := prog.NewFunc("cp.denoise")
	f.Li(3, 0) // plane
	f.Label("ploop")
	f.Li(10, 3)
	f.Bge(3, 10, "end")
	f.Muli(13, 3, cpPix) // plane offset
	f.Li(1, 0)           // y
	f.Label("yloop")
	f.Li(10, cpW)
	f.Bge(1, 10, "yend")
	f.Li(2, 0) // x
	f.Label("xloop")
	f.Li(10, cpW)
	f.Bge(2, 10, "xend")
	// srcAt loads in[(yr)&15][(xr)&15] of the current plane into freg.
	srcAt := func(freg, yr, xr int) {
		f.Andi(8, yr, cpW-1)
		f.Shli(8, 8, 4)
		f.Andi(9, xr, cpW-1)
		f.Add(8, 8, 9)
		f.Add(8, 8, 13)
		f.Fld(freg, 8, cpRGB1)
	}
	f.Addi(4, 2, -1)
	f.Addi(5, 2, 1)
	f.Addi(6, 1, -1)
	f.Addi(7, 1, 1)
	srcAt(0, 1, 2)
	srcAt(1, 1, 4)
	f.Fadd(0, 0, 1)
	srcAt(1, 1, 5)
	f.Fadd(0, 0, 1)
	srcAt(1, 6, 2)
	f.Fadd(0, 0, 1)
	srcAt(1, 7, 2)
	f.Fadd(0, 0, 1)
	f.Fli(1, 0.2)
	f.Fmul(0, 0, 1)
	f.Shli(8, 1, 4)
	f.Add(8, 8, 2)
	f.Add(8, 8, 13)
	f.Fst(0, 8, cpRGB2)
	f.Addi(2, 2, 1)
	f.Jmp("xloop")
	f.Label("xend")
	f.Addi(1, 1, 1)
	f.Jmp("yloop")
	f.Label("yend")
	f.Addi(3, 3, 1)
	f.Jmp("ploop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// cpXform: 3x3 color matrix per pixel.
func cpXform() *prog.Function {
	f := prog.NewFunc("cp.xform")
	f.Li(1, 0) // pixel index
	f.Label("loop")
	f.Li(10, cpPix)
	f.Bge(1, 10, "end")
	f.Fld(0, 1, cpRGB2)         // R
	f.Fld(1, 1, cpRGB2+cpPix)   // G
	f.Fld(2, 1, cpRGB2+2*cpPix) // B
	for row := 0; row < 3; row++ {
		f.Fli(4, cpMatrix[row*3])
		f.Fmul(4, 4, 0)
		f.Fli(5, cpMatrix[row*3+1])
		f.Fmul(5, 5, 1)
		f.Fadd(4, 4, 5)
		f.Fli(5, cpMatrix[row*3+2])
		f.Fmul(5, 5, 2)
		f.Fadd(4, 4, 5)
		f.Fst(4, 1, int64(cpRGB3+row*cpPix))
	}
	f.Addi(1, 1, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// cpGammaFn: gamma compression. The base variant computes the source and
// destination addresses separately each iteration; the small variant
// computes the element address once and stores through a plane offset.
func cpGammaFn(small bool) *prog.Function {
	f := prog.NewFunc("cp.gamma")
	f.Li(1, 0)
	f.Label("loop")
	f.Li(10, 3*cpPix)
	f.Bge(1, 10, "end")
	if small {
		f.Li(2, cpRGB3)
		f.Add(2, 2, 1) // one address, reused for the store below
		f.Fld(0, 2, 0)
	} else {
		f.Li(2, cpRGB3)
		f.Add(2, 2, 1)
		f.Fld(0, 2, 0)
	}
	f.Fli(1, cpFloor)
	f.Fmax(0, 0, 1)
	f.Fln(0, 0)
	f.Fli(1, cpGamma)
	f.Fmul(0, 0, 1)
	f.Fexp(0, 0)
	if small {
		f.Fst(0, 2, cpRGB4-cpRGB3)
	} else {
		// Redundant address recomputation removed by the small variant.
		f.Li(3, cpRGB4)
		f.Add(3, 3, 1)
		f.Fst(0, 3, 0)
	}
	f.Addi(1, 1, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// cpTonemap: clamp to [0,1], quantize to 8-bit levels.
func cpTonemap() *prog.Function {
	f := prog.NewFunc("cp.tonemap")
	f.Li(1, 0)
	f.Label("loop")
	f.Li(10, 3*cpPix)
	f.Bge(1, 10, "end")
	f.Fld(0, 1, cpRGB4)
	f.Fli(1, 0)
	f.Fmax(0, 0, 1)
	f.Fli(1, 1)
	f.Fmin(0, 0, 1)
	f.Fli(1, cpLevels)
	f.Fmul(0, 0, 1)
	f.Fli(2, 0.5)
	f.Fadd(0, 0, 2)
	f.Ftoi(2, 0)
	f.Itof(0, 2)
	f.Fdiv(0, 0, 1)
	f.Fst(0, 1, cpOut)
	f.Addi(1, 1, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

func buildCampipe(v Variant) (*spec.Program, error) {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	for sec, name := range []string{"cp.demosaic", "cp.denoise", "cp.xform", "cp.gamma", "cp.tonemap"} {
		main.SecBeg(sec)
		main.Call(name)
		main.SecEnd(sec)
	}
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	if v == Large {
		p.MustAdd(cpDemosaicLookup())
		p.MustAdd(cpDemosaicBody("cp.demosaic.slow"))
	} else {
		p.MustAdd(cpDemosaicBody("cp.demosaic"))
	}
	p.MustAdd(cpDenoise())
	p.MustAdd(cpXform())
	p.MustAdd(cpGammaFn(v == Small))
	p.MustAdd(cpTonemap())

	linked, err := p.Link("main")
	if err != nil {
		return nil, err
	}

	raw := cpInput()
	var tab []uint64
	if v == Large {
		rgb1, _ := RefCampipe()
		for _, x := range raw {
			tab = append(tab, math.Float64bits(x))
		}
		for _, x := range rgb1 {
			tab = append(tab, math.Float64bits(x))
		}
	}

	rawBuf := fbuf("raw", cpRaw, cpPix)
	rgb1Buf := fbuf("rgb1", cpRGB1, 3*cpPix)
	rgb2Buf := fbuf("rgb2", cpRGB2, 3*cpPix)
	rgb3Buf := fbuf("rgb3", cpRGB3, 3*cpPix)
	rgb4Buf := fbuf("rgb4", cpRGB4, 3*cpPix)
	outBuf := fbuf("frame", cpOut, 3*cpPix)
	tabBuf := ibuf("dmtab", cpTab, cpTabW)

	live := []spec.Buffer{rawBuf, rgb1Buf, rgb2Buf, rgb3Buf, rgb4Buf, outBuf, tabBuf}

	dmIn := []spec.Buffer{rawBuf}
	if v == Large {
		dmIn = append(dmIn, tabBuf)
	}

	sp := &spec.Program{
		Name:     "campipe",
		Version:  string(v),
		Linked:   linked,
		MemWords: cpMemW,
		Init: func(m *vm.Machine) {
			writeFloats(m, cpRaw, raw)
			if len(tab) > 0 {
				writeWords(m, cpTab, tab)
			}
		},
		Sections: []spec.Section{
			{ID: 0, Name: "demosaic", Instances: []spec.InstanceIO{
				{Inputs: dmIn, Outputs: []spec.Buffer{rgb1Buf}, Live: live},
			}},
			{ID: 1, Name: "denoise", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{rgb1Buf}, Outputs: []spec.Buffer{rgb2Buf}, Live: live},
			}},
			{ID: 2, Name: "xform", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{rgb2Buf}, Outputs: []spec.Buffer{rgb3Buf}, Live: live},
			}},
			{ID: 3, Name: "gamma", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{rgb3Buf}, Outputs: []spec.Buffer{rgb4Buf}, Live: live},
			}},
			{ID: 4, Name: "tonemap", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{rgb4Buf}, Outputs: []spec.Buffer{outBuf}, Live: live},
			}},
		},
		FinalOutputs: []spec.Buffer{outBuf},
	}
	return sp, nil
}
