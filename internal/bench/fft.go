package bench

import (
	"math"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// FFT: a 256-point complex radix-2 decimation-in-time transform
// (Splash-3's FFT at the paper's 256x2 input size, §5.4), in five sections:
//
//	s0 bitrev    — bit-reversal permutation into the working buffers
//	s1 stages1-3 — butterfly stages with half = 1, 2, 4
//	s2 stages4-6 — half = 8, 16, 32
//	s3 stages7-8 — half = 64, 128
//	s4 scale     — normalize by 1/N into the output buffers
//
// The three butterfly sections share one stage kernel. That sharing is
// deliberate: the monolithic baseline prunes the kernel's error sites once
// across all stages, while FastFlip must re-inject it per section instance
// — the paper's explanation for FastFlip's slower initial FFT analysis
// (§6.2, Table 3).
//
// Small modification: the butterfly body recomputes each element address
// for its load and its store; the specialized version computes each address
// once (the paper's common-subexpression-elimination change).
// Large modification: the bit-reversal section is replaced by a lookup
// table keyed on the full input arrays.

const (
	fftN     = 256
	fftLogN  = 8
	fftRe    = 0
	fftIm    = fftN
	fftWRe   = 2 * fftN
	fftWIm   = 3 * fftN
	fftTwRe  = 4 * fftN // 128 twiddle cosines
	fftTwIm  = 4*fftN + fftN/2
	fftOutRe = 5 * fftN
	fftOutIm = 6 * fftN
	fftTab   = 7 * fftN // large-variant table: 512 key + 512 value words
	fftTabW  = 4 * fftN
	fftMemW  = 12 * fftN
)

func init() { register("fft", buildFFT) }

// fftScale is 1/N; a power of two, so folding it is exact.
const fftScale = 1.0 / fftN

// fftInput returns the deterministic complex input signal.
func fftInput() (re, im []float64) {
	r := rng(0xff7)
	re = make([]float64, fftN)
	im = make([]float64, fftN)
	for i := range re {
		re[i] = 2*r.Float64() - 1
		im[i] = 2*r.Float64() - 1
	}
	return re, im
}

// fftTwiddles returns the shared twiddle table: entry k holds
// e^(−2πik/N) = (cos, −sin).
func fftTwiddles() (twRe, twIm []float64) {
	twRe = make([]float64, fftN/2)
	twIm = make([]float64, fftN/2)
	for k := range twRe {
		ang := -2 * math.Pi * float64(k) / fftN
		twRe[k] = math.Cos(ang)
		twIm[k] = math.Sin(ang)
	}
	return twRe, twIm
}

func bitrev8(i int) int {
	j := 0
	for b := 0; b < fftLogN; b++ {
		j = j<<1 | i&1
		i >>= 1
	}
	return j
}

// --- host reference ---

// refFFTStage applies one butterfly stage in place, mirroring the ISA
// kernel's operation order.
func refFFTStage(re, im, twRe, twIm []float64, half int) {
	stride := (fftN / 2) / half
	for base := 0; base < fftN; base += 2 * half {
		for j := 0; j < half; j++ {
			wre, wim := twRe[j*stride], twIm[j*stride]
			a, b := base+j, base+j+half
			tre := float64(wre*re[b]) - float64(wim*im[b])
			tim := float64(wre*im[b]) + float64(wim*re[b])
			rea, ima := re[a], im[a]
			re[b] = rea - tre
			im[b] = ima - tim
			re[a] = rea + tre
			im[a] = ima + tim
		}
	}
}

// RefFFT runs the whole pipeline on host copies, returning the bit-reversed
// arrays (for the lookup table) and the final scaled outputs.
func RefFFT() (brRe, brIm, outRe, outIm []float64) {
	re, im := fftInput()
	twRe, twIm := fftTwiddles()
	brRe = make([]float64, fftN)
	brIm = make([]float64, fftN)
	for i := 0; i < fftN; i++ {
		brRe[bitrev8(i)] = re[i]
		brIm[bitrev8(i)] = im[i]
	}
	wr := append([]float64(nil), brRe...)
	wi := append([]float64(nil), brIm...)
	for half := 1; half < fftN; half *= 2 {
		refFFTStage(wr, wi, twRe, twIm, half)
	}
	outRe = make([]float64, fftN)
	outIm = make([]float64, fftN)
	for i := 0; i < fftN; i++ {
		outRe[i] = wr[i] * fftScale
		outIm[i] = wi[i] * fftScale
	}
	return brRe, brIm, outRe, outIm
}

// --- ISA kernels ---

// fftAddr emits reg = base + idxReg.
func fftAddr(f *prog.B, reg, base, idxReg int) {
	f.Li(reg, int64(base))
	f.Add(reg, reg, idxReg)
}

// fftStage emits the generic butterfly stage kernel; r1 = half.
func fftStage(small bool) *prog.Function {
	f := prog.NewFunc("fft.stage")
	f.Shli(9, 1, 1) // r9 = step = 2*half
	f.Li(8, fftN/2)
	f.Div(8, 8, 1) // r8 = twiddle stride
	f.Li(2, 0)     // base
	f.Label("baseloop")
	f.Li(10, fftN)
	f.Bge(2, 10, "end")
	f.Li(3, 0) // j
	f.Label("jloop")
	f.Bge(3, 1, "jend")
	f.Mul(4, 8, 3) // twiddle index
	fftAddr(f, 5, fftTwRe, 4)
	f.Fld(0, 5, 0) // wre
	fftAddr(f, 5, fftTwIm, 4)
	f.Fld(1, 5, 0) // wim
	f.Add(6, 2, 3) // a
	f.Add(7, 6, 1) // b
	if small {
		// CSE: each address computed once, kept for the matching store.
		fftAddr(f, 5, fftWRe, 7)  // &re[b]
		fftAddr(f, 11, fftWIm, 7) // &im[b]
		fftAddr(f, 0, fftWRe, 6)  // &re[a]
		fftAddr(f, 4, fftWIm, 6)  // &im[a]
		f.Fld(2, 5, 0)
		f.Fld(3, 11, 0)
		f.Fld(4, 0, 0)
		f.Fld(5, 4, 0)
	} else {
		fftAddr(f, 5, fftWRe, 7)
		f.Fld(2, 5, 0)
		fftAddr(f, 5, fftWIm, 7)
		f.Fld(3, 5, 0)
		fftAddr(f, 5, fftWRe, 6)
		f.Fld(4, 5, 0)
		fftAddr(f, 5, fftWIm, 6)
		f.Fld(5, 5, 0)
	}
	f.Fmul(6, 0, 2)
	f.Fmul(8, 1, 3)
	f.Fsub(6, 6, 8) // tre
	f.Fmul(7, 0, 3)
	f.Fmul(8, 1, 2)
	f.Fadd(7, 7, 8) // tim
	f.Fsub(8, 4, 6) // re[b]'
	if small {
		f.Fst(8, 5, 0)
	} else {
		fftAddr(f, 5, fftWRe, 7)
		f.Fst(8, 5, 0)
	}
	f.Fsub(8, 5, 7) // im[b]'
	if small {
		f.Fst(8, 11, 0)
	} else {
		fftAddr(f, 5, fftWIm, 7)
		f.Fst(8, 5, 0)
	}
	f.Fadd(8, 4, 6) // re[a]'
	if small {
		f.Fst(8, 0, 0)
	} else {
		fftAddr(f, 5, fftWRe, 6)
		f.Fst(8, 5, 0)
	}
	f.Fadd(8, 5, 7) // im[a]'
	if small {
		f.Fst(8, 4, 0)
	} else {
		fftAddr(f, 5, fftWIm, 6)
		f.Fst(8, 5, 0)
	}
	f.Addi(3, 3, 1)
	f.Jmp("jloop")
	f.Label("jend")
	f.Add(2, 2, 9)
	f.Jmp("baseloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

func fftBitrevBody(name string) *prog.Function {
	f := prog.NewFunc(name)
	f.Li(2, 0) // i
	f.Label("iloop")
	f.Li(3, fftN)
	f.Bge(2, 3, "end")
	f.Li(4, 0) // j
	f.Mov(5, 2)
	for b := 0; b < fftLogN; b++ {
		f.Shli(4, 4, 1)
		f.Andi(6, 5, 1)
		f.Or(4, 4, 6)
		f.Shri(5, 5, 1)
	}
	fftAddr(f, 6, fftRe, 2)
	f.Fld(0, 6, 0)
	fftAddr(f, 6, fftWRe, 4)
	f.Fst(0, 6, 0)
	fftAddr(f, 6, fftIm, 2)
	f.Fld(0, 6, 0)
	fftAddr(f, 6, fftWIm, 4)
	f.Fst(0, 6, 0)
	f.Addi(2, 2, 1)
	f.Jmp("iloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// fftBitrevLookup replaces bit-reversal with a table probe on the full
// input arrays.
func fftBitrevLookup() *prog.Function {
	f := prog.NewFunc("fft.bitrev")
	f.Li(2, 0) // word index over re..im (2N words, contiguous at fftRe)
	f.Li(3, 2*fftN)
	f.Label("wloop")
	f.Bge(2, 3, "hit")
	f.Ld(4, 2, fftRe)
	f.Ld(5, 2, fftTab)
	f.Bne(4, 5, "miss")
	f.Addi(2, 2, 1)
	f.Jmp("wloop")
	f.Label("hit")
	f.Li(2, 0)
	f.Label("cloop")
	f.Bge(2, 3, "done")
	f.Ld(4, 2, fftTab+2*fftN)
	f.St(4, 2, fftWRe)
	f.Addi(2, 2, 1)
	f.Jmp("cloop")
	f.Label("done")
	f.Ret()
	f.Label("miss")
	f.Call("fft.bitrev.slow")
	f.Ret()
	return f.MustBuild()
}

func fftScaleFn() *prog.Function {
	f := prog.NewFunc("fft.scale")
	f.Fli(1, fftScale)
	f.Li(2, 0)
	f.Label("loop")
	f.Li(3, fftN)
	f.Bge(2, 3, "end")
	fftAddr(f, 4, fftWRe, 2)
	f.Fld(0, 4, 0)
	f.Fmul(0, 0, 1)
	fftAddr(f, 4, fftOutRe, 2)
	f.Fst(0, 4, 0)
	fftAddr(f, 4, fftWIm, 2)
	f.Fld(0, 4, 0)
	f.Fmul(0, 0, 1)
	fftAddr(f, 4, fftOutIm, 2)
	f.Fst(0, 4, 0)
	f.Addi(2, 2, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// fftStagesSec builds a section driver running the stage kernel for the
// given halves.
func fftStagesSec(name string, halves []int) *prog.Function {
	f := prog.NewFunc(name)
	for _, h := range halves {
		f.Li(1, int64(h))
		f.Call("fft.stage")
	}
	f.Ret()
	return f.MustBuild()
}

func buildFFT(v Variant) (*spec.Program, error) {
	p := prog.New()

	main := prog.NewFunc("main")
	main.RoiBeg()
	secFns := []string{"fft.bitrev", "fft.stages13", "fft.stages46", "fft.stages78", "fft.scale"}
	for sec, name := range secFns {
		main.SecBeg(sec)
		main.Call(name)
		main.SecEnd(sec)
	}
	main.RoiEnd()
	main.Halt()
	p.MustAdd(main.MustBuild())

	if v == Large {
		p.MustAdd(fftBitrevLookup())
		p.MustAdd(fftBitrevBody("fft.bitrev.slow"))
	} else {
		p.MustAdd(fftBitrevBody("fft.bitrev"))
	}
	p.MustAdd(fftStagesSec("fft.stages13", []int{1, 2, 4}))
	p.MustAdd(fftStagesSec("fft.stages46", []int{8, 16, 32}))
	p.MustAdd(fftStagesSec("fft.stages78", []int{64, 128}))
	p.MustAdd(fftStage(v == Small))
	p.MustAdd(fftScaleFn())

	linked, err := p.Link("main")
	if err != nil {
		return nil, err
	}

	re, im := fftInput()
	twRe, twIm := fftTwiddles()
	var tab []uint64
	if v == Large {
		brRe, brIm, _, _ := RefFFT()
		for _, s := range [][]float64{re, im, brRe, brIm} {
			for _, x := range s {
				tab = append(tab, math.Float64bits(x))
			}
		}
	}

	inRe := fbuf("re", fftRe, fftN)
	inIm := fbuf("im", fftIm, fftN)
	wre := fbuf("wre", fftWRe, fftN)
	wim := fbuf("wim", fftWIm, fftN)
	twReBuf := fbuf("twre", fftTwRe, fftN/2)
	twImBuf := fbuf("twim", fftTwIm, fftN/2)
	outRe := fbuf("outre", fftOutRe, fftN)
	outIm := fbuf("outim", fftOutIm, fftN)
	tabBuf := ibuf("brtab", fftTab, fftTabW)

	live := []spec.Buffer{inRe, inIm, wre, wim, twReBuf, twImBuf, outRe, outIm, tabBuf}

	brIn := []spec.Buffer{inRe, inIm}
	if v == Large {
		brIn = append(brIn, tabBuf)
	}
	stageIO := spec.InstanceIO{
		Inputs:  []spec.Buffer{wre, wim, twReBuf, twImBuf},
		Outputs: []spec.Buffer{wre, wim},
		Live:    live,
	}

	sp := &spec.Program{
		Name:     "fft",
		Version:  string(v),
		Linked:   linked,
		MemWords: fftMemW,
		Init: func(m *vm.Machine) {
			writeFloats(m, fftRe, re)
			writeFloats(m, fftIm, im)
			writeFloats(m, fftTwRe, twRe)
			writeFloats(m, fftTwIm, twIm)
			if len(tab) > 0 {
				writeWords(m, fftTab, tab)
			}
		},
		Sections: []spec.Section{
			{ID: 0, Name: "bitrev", Instances: []spec.InstanceIO{
				{Inputs: brIn, Outputs: []spec.Buffer{wre, wim}, Live: live},
			}},
			{ID: 1, Name: "stages1-3", Instances: []spec.InstanceIO{stageIO}},
			{ID: 2, Name: "stages4-6", Instances: []spec.InstanceIO{stageIO}},
			{ID: 3, Name: "stages7-8", Instances: []spec.InstanceIO{stageIO}},
			{ID: 4, Name: "scale", Instances: []spec.InstanceIO{
				{Inputs: []spec.Buffer{wre, wim}, Outputs: []spec.Buffer{outRe, outIm}, Live: live},
			}},
		},
		FinalOutputs: []spec.Buffer{outRe, outIm},
	}
	return sp, nil
}
