package bench

import (
	"math"
	"testing"

	"fastflip/internal/trace"
)

func bsFinal(t *testing.T, v Variant) []float64 {
	t.Helper()
	p, err := Build("bscholes", v)
	if err != nil {
		t.Fatalf("Build(bscholes, %s): %v", v, err)
	}
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatalf("Record(bscholes, %s): %v", v, err)
	}
	return floatsOf(tr.Final, bsPrice, bsPriceW)
}

func TestBScholesMatchesReference(t *testing.T) {
	got := bsFinal(t, None)
	_, want := RefBScholes()
	for o := range want {
		if got[o] != want[o] {
			t.Fatalf("price[%d] = %v, reference %v", o, got[o], want[o])
		}
	}
}

func TestBScholesPricesPlausible(t *testing.T) {
	_, prices := RefBScholes()
	// Option 0: S=42, X=40, T=0.5, r=0.1, v=0.2 is the classic Hull
	// example; its Black-Scholes call price is ≈ 4.76.
	if math.Abs(prices[0]-4.76) > 0.02 {
		t.Errorf("price[0] = %v, want ≈ 4.76", prices[0])
	}
	for o, p := range prices {
		if p <= 0 || p >= 100 {
			t.Errorf("price[%d] = %v out of plausible range", o, p)
		}
	}
}

func TestBScholesVariantsPreserveSemantics(t *testing.T) {
	base := bsFinal(t, None)
	for _, v := range []Variant{Small, Large} {
		got := bsFinal(t, v)
		for o := range base {
			if got[o] != base[o] {
				t.Fatalf("%s: price[%d] = %v, none-variant %v", v, o, got[o], base[o])
			}
		}
	}
}

func TestBScholesTraceShape(t *testing.T) {
	p := MustBuild("bscholes", None)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Instances), 8; got != want {
		t.Fatalf("instances = %d, want %d (4 static x 2 options)", got, want)
	}
	t.Logf("bscholes trace: %d dynamic instructions", tr.TotalDyn)
}
