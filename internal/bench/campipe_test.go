package bench

import (
	"testing"

	"fastflip/internal/trace"
)

func cpFinal(t *testing.T, v Variant) []float64 {
	t.Helper()
	p, err := Build("campipe", v)
	if err != nil {
		t.Fatalf("Build(campipe, %s): %v", v, err)
	}
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatalf("Record(campipe, %s): %v", v, err)
	}
	return floatsOf(tr.Final, cpOut, 3*cpPix)
}

func TestCampipeMatchesReference(t *testing.T) {
	got := cpFinal(t, None)
	_, want := RefCampipe()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame[%d] = %v, reference %v", i, got[i], want[i])
		}
	}
}

func TestCampipeOutputQuantized(t *testing.T) {
	_, out := RefCampipe()
	for i, x := range out {
		if x < 0 || x > 1 {
			t.Fatalf("frame[%d] = %v outside [0,1]", i, x)
		}
		q := float64(int64(float64(x*cpLevels) + 0.5))
		if float64(q)/cpLevels != x {
			t.Fatalf("frame[%d] = %v not on the 8-bit grid", i, x)
		}
	}
}

func TestCampipeVariantsPreserveSemantics(t *testing.T) {
	base := cpFinal(t, None)
	for _, v := range []Variant{Small, Large} {
		got := cpFinal(t, v)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s: frame[%d] = %v, none-variant %v", v, i, got[i], base[i])
			}
		}
	}
}

func TestCampipeTraceShape(t *testing.T) {
	p := MustBuild("campipe", None)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Instances), 5; got != want {
		t.Fatalf("instances = %d, want %d", got, want)
	}
	t.Logf("campipe trace: %d dynamic instructions", tr.TotalDyn)
}
