// Package bench implements the five evaluation benchmarks of the FastFlip
// paper (Table 1) as programs for the fastflip ISA, each in three versions:
//
//	none  — the original program
//	small — a small semantics-preserving change (§5.5): common-subexpression
//	        elimination, a removed redundant operation, or a specialized
//	        loop with fewer bounds checks
//	large — one section replaced by a lookup table mapping the section's
//	        concrete inputs to its outputs (§5.5)
//
// Register discipline (so that no register is live across a section
// boundary, which the side-effect analysis relies on):
//
//	r14, r15   — reserved for the benchmark main (outer loop state)
//	r12, r13   — reserved for section-level loop state
//	r0..r11    — scratch for leaf kernels; clobbered by calls
//	f0..f15    — scratch; never live across calls or sections
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// Variant selects a benchmark version.
type Variant string

const (
	None  Variant = "none"
	Small Variant = "small"
	Large Variant = "large"
)

// Variants lists all versions in evaluation order.
var Variants = []Variant{None, Small, Large}

// Builder constructs one benchmark version.
type Builder func(v Variant) (*spec.Program, error)

var registry = map[string]Builder{}

// PilotInaccuracies are the per-benchmark pilot misprediction rates used
// for the value error range (§5.6: FFT 3%, LUD 4%, BScholes 10%, and the
// Approxilyzer average 4% for Campipe and SHA2).
var PilotInaccuracies = map[string]float64{
	"bscholes": 0.10,
	"campipe":  0.04,
	"fft":      0.03,
	"lud":      0.04,
	"sha2":     0.04,
}

func register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("bench: duplicate benchmark " + name)
	}
	registry[name] = b
}

// Names returns the registered benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Build constructs the given benchmark version.
func Build(name string, v Variant) (*spec.Program, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q (have %v)", name, Names())
	}
	switch v {
	case None, Small, Large:
	default:
		return nil, fmt.Errorf("bench: unknown variant %q", v)
	}
	return b(v)
}

// MustBuild is Build but panics on error, for tests and benchmarks.
func MustBuild(name string, v Variant) *spec.Program {
	p, err := Build(name, v)
	if err != nil {
		panic(err)
	}
	return p
}

// writeFloats stores vals as float64 bits starting at addr.
func writeFloats(m *vm.Machine, addr int, vals []float64) {
	for i, v := range vals {
		m.Mem[addr+i] = math.Float64bits(v)
	}
}

// writeWords stores raw words starting at addr.
func writeWords(m *vm.Machine, addr int, vals []uint64) {
	copy(m.Mem[addr:addr+len(vals)], vals)
}

// floatsOf reads n float64 values starting at addr.
func floatsOf(m *vm.Machine, addr, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(m.Mem[addr+i])
	}
	return out
}

// rng returns a deterministic random source for benchmark inputs.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fbuf declares a float buffer.
func fbuf(name string, addr, n int) spec.Buffer {
	return spec.Buffer{Name: name, Addr: addr, Len: n, Kind: spec.Float}
}

// ibuf declares an integer buffer.
func ibuf(name string, addr, n int) spec.Buffer {
	return spec.Buffer{Name: name, Addr: addr, Len: n, Kind: spec.Int}
}
