package bench

import (
	"fmt"
	"math"

	"fastflip/internal/prog"
	"fastflip/internal/spec"
	"fastflip/internal/vm"
)

// LUD: blocked LU decomposition (Splash-3), the paper's running example
// (§3, Algorithm 1). A 16x16 matrix with 8x8 blocks gives n = 2 blocks per
// dimension, four static sections, each with two dynamic instances:
//
//	for k = 0..n-1:
//	  s1: LU0(blk[k,k])                         — factor the diagonal block
//	  s2: for i>k: BDIV(blk[k,i],  blk[k,k])    — row blocks
//	  s3: for j>k: BMODD(blk[j,k], blk[k,k])    — column blocks
//	  s4: for i,j>k: BMOD(blk[j,i], blk[k,i], blk[j,k]) — interior update
//
// The matrix is stored block-major: block (I,J) occupies 64 contiguous
// words at (I*2+J)*64, so every section's inputs and outputs are contiguous
// buffers.
//
// Small modification: BMOD normally re-derives its row bound min(B, rem)
// on every row iteration (the bounds check blocked codes need for edge
// blocks); the specialized version drops it because 16 is a multiple of 8.
// Large modification: LU0 is replaced by a lookup table keyed on the
// concrete input block (§5.5).

const (
	ludN      = 2 // blocks per dimension
	ludB      = 8 // block size
	ludBlkW   = ludB * ludB
	ludMat    = 0
	ludMatW   = ludN * ludN * ludBlkW
	ludTab    = 320 // lookup table for the large variant
	ludTabW   = 2 * 2 * ludBlkW
	ludKSpill = 300 // scratch word where sec4 spills k
	ludMemW   = 1024
)

func init() { register("lud", buildLUD) }

func ludBlkAddr(i, j int) int { return ludMat + (i*ludN+j)*ludBlkW }

func ludBlkBuf(i, j int) spec.Buffer {
	return fbuf(fmt.Sprintf("blk%d%d", i, j), ludBlkAddr(i, j), ludBlkW)
}

// ludInput generates the deterministic, diagonally dominant input matrix in
// block-major order.
func ludInput() []float64 {
	r := rng(0x10d)
	mat := make([]float64, ludMatW)
	for i := range mat {
		mat[i] = 1 + r.Float64()
	}
	// Strengthen the diagonal just enough that the pivots stay well away
	// from zero. Mild dominance keeps the factorization numerically sane
	// while letting early sections amplify input SDCs noticeably -- the
	// paper's Equation 2 shows large downstream amplification for LU0.
	for i := 0; i < ludN*ludB; i++ {
		bi, ri := i/ludB, i%ludB
		mat[ludBlkAddr(bi, bi)-ludMat+ri*ludB+ri] += 3.5
	}
	return mat
}

// --- host reference (mirrors the ISA kernels operation for operation) ---

func refLU0(a []float64) {
	for k := 0; k < ludB; k++ {
		piv := a[k*ludB+k]
		for i := k + 1; i < ludB; i++ {
			a[i*ludB+k] /= piv
			l := a[i*ludB+k]
			for j := k + 1; j < ludB; j++ {
				a[i*ludB+j] -= float64(l * a[k*ludB+j]) // explicit rounding: no FMA, bit-identical to the VM
			}
		}
	}
}

func refBDIV(a, d []float64) {
	for r := 1; r < ludB; r++ {
		for k := 0; k < r; k++ {
			l := d[r*ludB+k]
			for c := 0; c < ludB; c++ {
				a[r*ludB+c] -= float64(l * a[k*ludB+c])
			}
		}
	}
}

func refBMODD(a, d []float64) {
	for c := 0; c < ludB; c++ {
		for k := 0; k < c; k++ {
			u := d[k*ludB+c]
			for r := 0; r < ludB; r++ {
				a[r*ludB+c] -= float64(a[r*ludB+k] * u)
			}
		}
		piv := d[c*ludB+c]
		for r := 0; r < ludB; r++ {
			a[r*ludB+c] /= piv
		}
	}
}

func refBMOD(a, b, c []float64) {
	for r := 0; r < ludB; r++ {
		for m := 0; m < ludB; m++ {
			l := c[r*ludB+m]
			for col := 0; col < ludB; col++ {
				a[r*ludB+col] -= float64(l * b[m*ludB+col])
			}
		}
	}
}

// RefLUD runs the whole blocked factorization on a host copy and returns,
// for each LU0 call, the input and output block contents (used both to
// build the large variant's lookup table and by tests).
func RefLUD(mat []float64) (lu0In, lu0Out [][]float64) {
	blk := func(i, j int) []float64 {
		base := ludBlkAddr(i, j) - ludMat
		return mat[base : base+ludBlkW]
	}
	for k := 0; k < ludN; k++ {
		in := append([]float64(nil), blk(k, k)...)
		refLU0(blk(k, k))
		out := append([]float64(nil), blk(k, k)...)
		lu0In = append(lu0In, in)
		lu0Out = append(lu0Out, out)
		for i := k + 1; i < ludN; i++ {
			refBDIV(blk(k, i), blk(k, k))
		}
		for j := k + 1; j < ludN; j++ {
			refBMODD(blk(j, k), blk(k, k))
		}
		for i := k + 1; i < ludN; i++ {
			for j := k + 1; j < ludN; j++ {
				refBMOD(blk(j, i), blk(k, i), blk(j, k))
			}
		}
	}
	return lu0In, lu0Out
}

// --- ISA kernels ---

func ludLU0Body(name string) *prog.Function {
	f := prog.NewFunc(name)
	f.Li(5, ludB) // r5 = B
	f.Li(2, 0)    // r2 = kk
	f.Label("kloop")
	f.Muli(6, 2, ludB+1) // r6 = kk*(B+1)
	f.Add(6, 6, 1)
	f.Fld(0, 6, 0) // f0 = a[kk][kk]
	f.Addi(3, 2, 1)
	f.Label("iloop")
	f.Bge(3, 5, "iend")
	f.Shli(7, 3, 3)
	f.Add(7, 7, 2)
	f.Add(7, 7, 1)
	f.Fld(1, 7, 0)
	f.Fdiv(1, 1, 0) // f1 = a[i][kk] /= pivot
	f.Fst(1, 7, 0)
	f.Addi(4, 2, 1)
	f.Label("jloop")
	f.Bge(4, 5, "jend")
	f.Shli(7, 3, 3)
	f.Add(7, 7, 4)
	f.Add(7, 7, 1) // &a[i][j]
	f.Shli(8, 2, 3)
	f.Add(8, 8, 4)
	f.Add(8, 8, 1) // &a[kk][j]
	f.Fld(2, 7, 0)
	f.Fld(3, 8, 0)
	f.Fmul(3, 1, 3)
	f.Fsub(2, 2, 3)
	f.Fst(2, 7, 0)
	f.Addi(4, 4, 1)
	f.Jmp("jloop")
	f.Label("jend")
	f.Addi(3, 3, 1)
	f.Jmp("iloop")
	f.Label("iend")
	f.Addi(2, 2, 1)
	f.Blt(2, 5, "kloop")
	f.Ret()
	return f.MustBuild()
}

// ludLU0Lookup is the large-variant replacement: probe the table; on a hit
// copy the stored output block, otherwise fall back to the original kernel.
func ludLU0Lookup() *prog.Function {
	f := prog.NewFunc("lud.lu0")
	f.Li(2, ludTab) // r2 = table base
	f.Li(3, 2)      // r3 = entries
	f.Li(4, 0)      // r4 = entry index
	f.Label("eloop")
	f.Bge(4, 3, "miss")
	f.Shli(5, 4, 7) // entry stride = 2*64 words
	f.Add(5, 5, 2)  // r5 = &entry (key at +0, value at +64)
	f.Li(7, ludBlkW)
	f.Li(6, 0)
	f.Label("wloop")
	f.Bge(6, 7, "hit")
	f.Add(8, 5, 6)
	f.Ld(10, 8, 0) // key word
	f.Add(9, 1, 6)
	f.Ld(11, 9, 0) // input word
	f.Bne(10, 11, "next")
	f.Addi(6, 6, 1)
	f.Jmp("wloop")
	f.Label("hit")
	f.Li(6, 0)
	f.Label("cloop")
	f.Bge(6, 7, "done")
	f.Add(8, 5, 6)
	f.Ld(10, 8, int64(ludBlkW)) // value word
	f.Add(9, 1, 6)
	f.St(10, 9, 0)
	f.Addi(6, 6, 1)
	f.Jmp("cloop")
	f.Label("done")
	f.Ret()
	f.Label("next")
	f.Addi(4, 4, 1)
	f.Jmp("eloop")
	f.Label("miss")
	f.Call("lud.lu0.slow")
	f.Ret()
	return f.MustBuild()
}

func ludBDIV() *prog.Function {
	f := prog.NewFunc("lud.bdiv")
	f.Li(6, ludB)
	f.Li(3, 1) // r
	f.Label("rloop")
	f.Bge(3, 6, "end")
	f.Li(4, 0) // k
	f.Label("kloop")
	f.Bge(4, 3, "kend")
	f.Shli(7, 3, 3)
	f.Add(7, 7, 4)
	f.Add(7, 7, 2)
	f.Fld(0, 7, 0) // f0 = d[r][k]
	f.Li(5, 0)     // c
	f.Label("cloop")
	f.Bge(5, 6, "cend")
	f.Shli(7, 3, 3)
	f.Add(7, 7, 5)
	f.Add(7, 7, 1) // &a[r][c]
	f.Shli(8, 4, 3)
	f.Add(8, 8, 5)
	f.Add(8, 8, 1) // &a[k][c]
	f.Fld(1, 7, 0)
	f.Fld(2, 8, 0)
	f.Fmul(2, 0, 2)
	f.Fsub(1, 1, 2)
	f.Fst(1, 7, 0)
	f.Addi(5, 5, 1)
	f.Jmp("cloop")
	f.Label("cend")
	f.Addi(4, 4, 1)
	f.Jmp("kloop")
	f.Label("kend")
	f.Addi(3, 3, 1)
	f.Jmp("rloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

func ludBMODD() *prog.Function {
	f := prog.NewFunc("lud.bmodd")
	f.Li(6, ludB)
	f.Li(3, 0) // c
	f.Label("cloop")
	f.Bge(3, 6, "end")
	f.Li(4, 0) // k
	f.Label("kloop")
	f.Bge(4, 3, "kend")
	f.Shli(7, 4, 3)
	f.Add(7, 7, 3)
	f.Add(7, 7, 2)
	f.Fld(0, 7, 0) // f0 = d[k][c]
	f.Li(5, 0)     // r
	f.Label("rloop")
	f.Bge(5, 6, "rend")
	f.Shli(7, 5, 3)
	f.Add(7, 7, 3)
	f.Add(7, 7, 1) // &a[r][c]
	f.Shli(8, 5, 3)
	f.Add(8, 8, 4)
	f.Add(8, 8, 1) // &a[r][k]
	f.Fld(1, 7, 0)
	f.Fld(2, 8, 0)
	f.Fmul(2, 2, 0)
	f.Fsub(1, 1, 2)
	f.Fst(1, 7, 0)
	f.Addi(5, 5, 1)
	f.Jmp("rloop")
	f.Label("rend")
	f.Addi(4, 4, 1)
	f.Jmp("kloop")
	f.Label("kend")
	f.Muli(7, 3, ludB+1)
	f.Add(7, 7, 2)
	f.Fld(0, 7, 0) // f0 = d[c][c]
	f.Li(5, 0)
	f.Label("dloop")
	f.Bge(5, 6, "dend")
	f.Shli(7, 5, 3)
	f.Add(7, 7, 3)
	f.Add(7, 7, 1)
	f.Fld(1, 7, 0)
	f.Fdiv(1, 1, 0)
	f.Fst(1, 7, 0)
	f.Addi(5, 5, 1)
	f.Jmp("dloop")
	f.Label("dend")
	f.Addi(3, 3, 1)
	f.Jmp("cloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// ludBMOD builds the interior update a -= c·b. The base version re-derives
// the row limit min(B, rem) every row iteration; fast (the small
// modification) uses the constant block size.
func ludBMOD(fast bool) *prog.Function {
	f := prog.NewFunc("lud.bmod")
	f.Li(10, ludB)
	f.Li(5, 0) // row
	f.Label("rloop")
	if fast {
		f.Bge(5, 10, "end")
	} else {
		// Bounds check: limit = min(B, rem); rem arrives in r4.
		f.Mov(11, 10)
		f.Bge(4, 10, "cap")
		f.Mov(11, 4)
		f.Label("cap")
		f.Bge(5, 11, "end")
	}
	f.Li(6, 0) // m
	f.Label("mloop")
	f.Bge(6, 10, "mend")
	f.Shli(8, 5, 3)
	f.Add(8, 8, 6)
	f.Add(8, 8, 3)
	f.Fld(0, 8, 0) // f0 = c[row][m]
	f.Li(7, 0)     // col
	f.Label("cloop")
	f.Bge(7, 10, "cend")
	f.Shli(8, 5, 3)
	f.Add(8, 8, 7)
	f.Add(8, 8, 1) // &a[row][col]
	f.Shli(9, 6, 3)
	f.Add(9, 9, 7)
	f.Add(9, 9, 2) // &b[m][col]
	f.Fld(1, 8, 0)
	f.Fld(2, 9, 0)
	f.Fmul(2, 0, 2)
	f.Fsub(1, 1, 2)
	f.Fst(1, 8, 0)
	f.Addi(7, 7, 1)
	f.Jmp("cloop")
	f.Label("cend")
	f.Addi(6, 6, 1)
	f.Jmp("mloop")
	f.Label("mend")
	f.Addi(5, 5, 1)
	f.Jmp("rloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

// --- section drivers ---

// ludBlkAddrInto emits code computing &blk(rI, rJ) into rd (clobbers rd).
func ludBlkAddrInto(f *prog.B, rd, rI, rJ int) {
	f.Shli(rd, rI, 1)
	f.Add(rd, rd, rJ)
	f.Shli(rd, rd, 6)
}

func ludSec1() *prog.Function {
	f := prog.NewFunc("lud.sec1") // r1 = k
	ludBlkAddrInto(f, 2, 1, 1)
	f.Mov(1, 2)
	f.Call("lud.lu0")
	f.Ret()
	return f.MustBuild()
}

func ludSec2() *prog.Function {
	f := prog.NewFunc("lud.sec2") // r1 = k
	f.Mov(12, 1)                  // k
	f.Addi(13, 12, 1)             // i
	f.Label("loop")
	f.Li(11, ludN)
	f.Bge(13, 11, "end")
	ludBlkAddrInto(f, 2, 12, 13) // a = blk(k,i)
	ludBlkAddrInto(f, 3, 12, 12) // d = blk(k,k)
	f.Mov(1, 2)
	f.Mov(2, 3)
	f.Call("lud.bdiv")
	f.Addi(13, 13, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

func ludSec3() *prog.Function {
	f := prog.NewFunc("lud.sec3") // r1 = k
	f.Mov(12, 1)
	f.Addi(13, 12, 1) // j
	f.Label("loop")
	f.Li(11, ludN)
	f.Bge(13, 11, "end")
	ludBlkAddrInto(f, 2, 13, 12) // a = blk(j,k)
	ludBlkAddrInto(f, 3, 12, 12) // d = blk(k,k)
	f.Mov(1, 2)
	f.Mov(2, 3)
	f.Call("lud.bmodd")
	f.Addi(13, 13, 1)
	f.Jmp("loop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

func ludSec4() *prog.Function {
	f := prog.NewFunc("lud.sec4") // r1 = k
	f.Li(2, 0)
	f.St(1, 2, ludKSpill) // spill k; r12/r13 hold the loop counters
	f.Addi(12, 1, 1)      // i = k+1
	f.Label("iloop")
	f.Li(11, ludN)
	f.Bge(12, 11, "end")
	f.Li(10, 0)
	f.Ld(5, 10, ludKSpill)
	f.Addi(13, 5, 1) // j = k+1
	f.Label("jloop")
	f.Li(11, ludN)
	f.Bge(13, 11, "jend")
	f.Li(10, 0)
	f.Ld(5, 10, ludKSpill)       // k
	ludBlkAddrInto(f, 6, 13, 12) // a = blk(j,i)
	ludBlkAddrInto(f, 7, 5, 12)  // b = blk(k,i)
	ludBlkAddrInto(f, 8, 13, 5)  // c = blk(j,k)
	f.Mov(1, 6)
	f.Mov(2, 7)
	f.Mov(3, 8)
	f.Li(4, ludB) // rem: matrix size is a multiple of the block size
	f.Call("lud.bmod")
	f.Addi(13, 13, 1)
	f.Jmp("jloop")
	f.Label("jend")
	f.Addi(12, 12, 1)
	f.Jmp("iloop")
	f.Label("end")
	f.Ret()
	return f.MustBuild()
}

func ludMain() *prog.Function {
	f := prog.NewFunc("main")
	f.RoiBeg()
	f.Li(15, ludN)
	f.Li(14, 0) // k
	f.Label("kloop")
	for sec, name := range []string{"lud.sec1", "lud.sec2", "lud.sec3", "lud.sec4"} {
		f.SecBeg(sec)
		f.Mov(1, 14)
		f.Call(name)
		f.SecEnd(sec)
	}
	f.Addi(14, 14, 1)
	f.Blt(14, 15, "kloop")
	f.RoiEnd()
	f.Halt()
	return f.MustBuild()
}

func buildLUD(v Variant) (*spec.Program, error) {
	p := prog.New()
	p.MustAdd(ludMain())
	p.MustAdd(ludSec1())
	p.MustAdd(ludSec2())
	p.MustAdd(ludSec3())
	p.MustAdd(ludSec4())
	p.MustAdd(ludBDIV())
	p.MustAdd(ludBMODD())
	p.MustAdd(ludBMOD(v == Small))
	if v == Large {
		p.MustAdd(ludLU0Lookup())
		p.MustAdd(ludLU0Body("lud.lu0.slow"))
	} else {
		p.MustAdd(ludLU0Body("lud.lu0"))
	}

	linked, err := p.Link("main")
	if err != nil {
		return nil, err
	}

	input := ludInput()
	var tab []uint64
	if v == Large {
		lu0In, lu0Out := RefLUD(append([]float64(nil), input...))
		for e := range lu0In {
			for _, x := range lu0In[e] {
				tab = append(tab, math.Float64bits(x))
			}
			for _, x := range lu0Out[e] {
				tab = append(tab, math.Float64bits(x))
			}
		}
	}

	// The live set is identical across variants (the table region is
	// declared live even when unused) so that section reuse keys survive
	// the large modification.
	mat := fbuf("mat", ludMat, ludMatW)
	live := []spec.Buffer{mat, ibuf("lu0tab", ludTab, ludTabW)}
	empty := spec.InstanceIO{Live: live}
	s1in0 := []spec.Buffer{ludBlkBuf(0, 0)}
	s1in1 := []spec.Buffer{ludBlkBuf(1, 1)}
	if v == Large {
		s1in0 = append(s1in0, ibuf("lu0tab", ludTab, ludTabW))
		s1in1 = append(s1in1, ibuf("lu0tab", ludTab, ludTabW))
	}

	sp := &spec.Program{
		Name:     "lud",
		Version:  string(v),
		Linked:   linked,
		MemWords: ludMemW,
		Init: func(m *vm.Machine) {
			writeFloats(m, ludMat, input)
			if len(tab) > 0 {
				writeWords(m, ludTab, tab)
			}
		},
		Sections: []spec.Section{
			{ID: 0, Name: "LU0", Instances: []spec.InstanceIO{
				{Inputs: s1in0, Outputs: []spec.Buffer{ludBlkBuf(0, 0)}, Live: live},
				{Inputs: s1in1, Outputs: []spec.Buffer{ludBlkBuf(1, 1)}, Live: live},
			}},
			{ID: 1, Name: "BDIV", Instances: []spec.InstanceIO{
				{
					Inputs:  []spec.Buffer{ludBlkBuf(0, 1), ludBlkBuf(0, 0)},
					Outputs: []spec.Buffer{ludBlkBuf(0, 1)},
					Live:    live,
				},
				empty,
			}},
			{ID: 2, Name: "BMODD", Instances: []spec.InstanceIO{
				{
					Inputs:  []spec.Buffer{ludBlkBuf(1, 0), ludBlkBuf(0, 0)},
					Outputs: []spec.Buffer{ludBlkBuf(1, 0)},
					Live:    live,
				},
				empty,
			}},
			{ID: 3, Name: "BMOD", Instances: []spec.InstanceIO{
				{
					Inputs:  []spec.Buffer{ludBlkBuf(1, 1), ludBlkBuf(0, 1), ludBlkBuf(1, 0)},
					Outputs: []spec.Buffer{ludBlkBuf(1, 1)},
					Live:    live,
				},
				empty,
			}},
		},
		FinalOutputs: []spec.Buffer{mat},
	}
	return sp, nil
}
