package bench

import (
	"math"
	"testing"

	"fastflip/internal/trace"
)

// ludFinal runs one LUD variant cleanly and returns the final matrix.
func ludFinal(t *testing.T, v Variant) []float64 {
	t.Helper()
	p, err := Build("lud", v)
	if err != nil {
		t.Fatalf("Build(lud, %s): %v", v, err)
	}
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatalf("Record(lud, %s): %v", v, err)
	}
	return floatsOf(tr.Final, ludMat, ludMatW)
}

func TestLUDMatchesReference(t *testing.T) {
	got := ludFinal(t, None)
	ref := ludInput()
	RefLUD(ref)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("mat[%d] = %v, reference %v", i, got[i], ref[i])
		}
	}
}

func TestLUDVariantsPreserveSemantics(t *testing.T) {
	base := ludFinal(t, None)
	for _, v := range []Variant{Small, Large} {
		got := ludFinal(t, v)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("%s: mat[%d] = %v, none-variant %v", v, i, got[i], base[i])
			}
		}
	}
}

// TestLUDFactorization checks L·U reproduces the input matrix: the blocked
// factorization must be a real LU decomposition, not just deterministic.
func TestLUDFactorization(t *testing.T) {
	lu := ludFinal(t, None)
	orig := ludInput()
	n := ludN * ludB
	at := func(m []float64, r, c int) float64 {
		return m[ludBlkAddr(r/ludB, c/ludB)+(r%ludB)*ludB+(c%ludB)]
	}
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			sum := 0.0
			for k := 0; k <= r && k <= c; k++ {
				l := at(lu, r, k)
				if k == r {
					l = 1 // unit lower triangle
				}
				sum += l * at(lu, k, c)
			}
			want := at(orig, r, c)
			if math.Abs(sum-want) > 1e-9*math.Abs(want) {
				t.Fatalf("L*U[%d][%d] = %v, want %v", r, c, sum, want)
			}
		}
	}
}

func TestLUDTraceShape(t *testing.T) {
	p := MustBuild("lud", None)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Instances), 8; got != want {
		t.Fatalf("instances = %d, want %d (4 static sections x 2)", got, want)
	}
	wantSecs := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i, inst := range tr.Instances {
		if inst.Sec != wantSecs[i] {
			t.Errorf("instance %d: section %d, want %d", i, inst.Sec, wantSecs[i])
		}
	}
	// The second LU0 instance factors blk(1,1); the empty tail instances
	// must still be tiny but present.
	if tr.Instances[5].Len() > 20 {
		t.Errorf("BDIV#1 should be near-empty, has %d instructions", tr.Instances[5].Len())
	}
	t.Logf("lud trace: %d dynamic instructions", tr.TotalDyn)
}
