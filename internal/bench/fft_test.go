package bench

import (
	"math"
	"math/cmplx"
	"testing"

	"fastflip/internal/trace"
)

func fftFinal(t *testing.T, v Variant) (re, im []float64) {
	t.Helper()
	p, err := Build("fft", v)
	if err != nil {
		t.Fatalf("Build(fft, %s): %v", v, err)
	}
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatalf("Record(fft, %s): %v", v, err)
	}
	return floatsOf(tr.Final, fftOutRe, fftN), floatsOf(tr.Final, fftOutIm, fftN)
}

func TestFFTMatchesReference(t *testing.T) {
	gotRe, gotIm := fftFinal(t, None)
	_, _, wantRe, wantIm := RefFFT()
	for i := 0; i < fftN; i++ {
		if gotRe[i] != wantRe[i] || gotIm[i] != wantIm[i] {
			t.Fatalf("out[%d] = (%v,%v), reference (%v,%v)", i, gotRe[i], gotIm[i], wantRe[i], wantIm[i])
		}
	}
}

// TestFFTMatchesDFT compares against a naive O(N²) DFT: the butterfly
// network must compute an actual Fourier transform, not merely be
// deterministic.
func TestFFTMatchesDFT(t *testing.T) {
	gotRe, gotIm := fftFinal(t, None)
	re, im := fftInput()
	for k := 0; k < fftN; k += 17 { // spot-check a spread of bins
		var acc complex128
		for n := 0; n < fftN; n++ {
			ang := -2 * math.Pi * float64(k) * float64(n) / fftN
			acc += complex(re[n], im[n]) * cmplx.Exp(complex(0, ang))
		}
		acc /= fftN
		if math.Abs(real(acc)-gotRe[k]) > 1e-9 || math.Abs(imag(acc)-gotIm[k]) > 1e-9 {
			t.Fatalf("bin %d: fft (%v,%v), dft (%v,%v)", k, gotRe[k], gotIm[k], real(acc), imag(acc))
		}
	}
}

func TestFFTVariantsPreserveSemantics(t *testing.T) {
	baseRe, baseIm := fftFinal(t, None)
	for _, v := range []Variant{Small, Large} {
		gotRe, gotIm := fftFinal(t, v)
		for i := range baseRe {
			if gotRe[i] != baseRe[i] || gotIm[i] != baseIm[i] {
				t.Fatalf("%s: out[%d] differs from none-variant", v, i)
			}
		}
	}
}

func TestFFTTraceShape(t *testing.T) {
	p := MustBuild("fft", None)
	tr, err := trace.Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Instances), 5; got != want {
		t.Fatalf("instances = %d, want %d", got, want)
	}
	t.Logf("fft trace: %d dynamic instructions", tr.TotalDyn)
}
