package tables

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"fastflip/internal/bench"
	"fastflip/internal/sens"
)

// fastSuite runs the evaluation over the two cheapest benchmarks.
func fastSuite(t *testing.T) *Suite {
	t.Helper()
	opts := DefaultOptions()
	opts.Benchmarks = []string{"bscholes", "sha2"}
	cfg := sens.DefaultConfig()
	cfg.Samples = 16
	opts.Sens = cfg
	s, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign")
	}
	s := fastSuite(t)
	if len(s.Runs) != 6 {
		t.Fatalf("runs = %d, want 2 benchmarks x 3 variants", len(s.Runs))
	}
	for _, run := range s.Runs {
		if len(run.EvalsStrict) != len(s.Opts.Targets) {
			t.Errorf("%s/%s: %d strict evals", run.Bench, run.Variant, len(run.EvalsStrict))
		}
		if run.Variant != bench.None && run.R.ReusedInstances == 0 {
			t.Errorf("%s/%s reused nothing", run.Bench, run.Variant)
		}
	}
	if s.Get("bscholes", bench.Small) == nil || s.Get("nothere", bench.None) != nil {
		t.Error("Get lookup broken")
	}
}

func TestTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign")
	}
	s := fastSuite(t)

	t1 := s.Table1()
	for _, want := range []string{"bscholes", "sha2", "4 (x2)", "3 (x1)"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}

	t2 := s.Table2()
	if !strings.Contains(t2, "geomean cost:") || strings.Count(t2, "\n") < 8 {
		t.Errorf("Table2 malformed:\n%s", t2)
	}

	t3 := s.Table3()
	if !strings.Contains(t3, "geomean speedup") || !strings.Contains(t3, "Speedup") {
		t.Errorf("Table3 malformed:\n%s", t3)
	}

	// Table 4 is Campipe-specific; with this subset it has only headers.
	if !strings.Contains(s.Table4(), "WITHOUT target adjustment") {
		t.Error("Table4 missing title")
	}

	t64 := s.Table64()
	if !strings.Contains(t64, "SHA2 stays 0") {
		t.Errorf("Table64 missing SHA2 note:\n%s", t64)
	}

	if _, err := s.Eq2("bscholes"); err != nil {
		t.Errorf("Eq2: %v", err)
	}
	if _, err := s.Eq2("lud"); err == nil {
		t.Error("Eq2 for a benchmark outside the suite did not error")
	}

	fig, err := s.Figure1("bscholes")
	if err != nil {
		t.Fatalf("Figure1: %v", err)
	}
	if strings.Count(fig, "\n") < 15 {
		t.Errorf("Figure1 sweep too short:\n%s", fig)
	}
}

func TestSHA2KeepsStrictEpsilon(t *testing.T) {
	if testing.Short() {
		t.Skip("injection campaign")
	}
	s := fastSuite(t)
	// §6.4: SHA2's relaxed-ε evaluation must be identical to the strict
	// one because its ε stays 0.
	run := s.Get("sha2", bench.None)
	for i := range run.EvalsStrict {
		if run.EvalsStrict[i].Achieved != run.EvalsGood[i].Achieved {
			t.Errorf("sha2 eval %d differs between strict and good", i)
		}
	}
}

// TestPerfRecordJSONRoundTrip: the machine-readable digest must preserve
// every field through encode/decode — in particular the protection-loop
// additions (harden_target, residual_sdc, detector_coverage,
// protection_overhead), which downstream perf dashboards key on.
func TestPerfRecordJSONRoundTrip(t *testing.T) {
	want := PerfRecord{
		Bench:                 "lud",
		Variant:               "small",
		SiteCount:             4096,
		DynInstrs:             123456,
		Reused:                6,
		Injected:              2,
		FFExperiments:         2048,
		FFSimInstrs:           999999,
		FFCleanInstrs:         1111,
		FFFaultyInstrs:        2222,
		FFWallNs:              1500,
		FFElidedExperiments:   96,
		FFElidedSimInstrs:     48000,
		FFExecutedExperiments: 1952,
		FFBatchedExperiments:  1800,
		FFBatchReplicasAvg:    112.5,
		BaseExperims:          4096,
		BaseSimInstrs:         5000000,
		BaseCleanInstr:        4000,
		BaseFaultyInst:        5000,
		BaseWallNs:            9000,
		Speedup:               3.2,
		HardenTarget:          0.95,
		ResidualSDC:           120,
		PredictedResidual:     150,
		DetectorCoverage:      0.93,
		ProtectionOverhead:    0.42,
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got PerfRecord
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip changed the record:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestPerfRecordOmitEmpty: a run without the protection loop keeps the
// hardening keys out of the wire format entirely (consumers feature-detect
// by key presence), while the always-on cost fields stay.
func TestPerfRecordOmitEmpty(t *testing.T) {
	data, err := json.Marshal(PerfRecord{Bench: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, absent := range []string{
		"harden_target", "residual_sdc", "predicted_residual",
		"detector_coverage", "protection_overhead",
	} {
		if strings.Contains(text, `"`+absent+`"`) {
			t.Errorf("zero-value record serializes %q: %s", absent, text)
		}
	}
	for _, present := range []string{"bench", "ff_experiments", "speedup"} {
		if !strings.Contains(text, `"`+present+`"`) {
			t.Errorf("record missing always-on key %q: %s", present, text)
		}
	}
}

func TestGroup(t *testing.T) {
	for _, tt := range []struct {
		n    int
		want string
	}{
		{0, "0"}, {999, "999"}, {1000, "1,000"}, {1234567, "1,234,567"},
	} {
		if got := group(tt.n); got != tt.want {
			t.Errorf("group(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}
