// Package tables regenerates the FastFlip paper's evaluation artifacts:
// Table 1 (benchmarks), Table 2 (utility, ε = 0), Table 3 (analysis cost),
// Table 4 (Campipe without target adjustment), the §6.4 utility comparison
// with ε = 0.01, Figure 1 (value and cost curves), and the §3.1 Equation 2
// symbolic specification.
//
// Analysis cost is reported in simulated instructions (the core-hours
// proxy, see DESIGN.md) alongside wall-clock time.
package tables

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"

	"fastflip/internal/bench"
	"fastflip/internal/core"
	"fastflip/internal/sens"
)

// Options configures a suite run.
type Options struct {
	// Benchmarks to run; nil means all registered benchmarks.
	Benchmarks []string
	// Targets are the v_trgt columns of Tables 2 and 4.
	Targets []float64
	// EpsGood is the SDC-Good threshold of §6.4 (SHA2 always uses 0).
	EpsGood float64
	// Workers bounds injection parallelism (0 = GOMAXPROCS).
	Workers int
	// Sens overrides the sensitivity configuration (zero value = default).
	Sens sens.Config
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// WALDir, when non-empty, gives every campaign a write-ahead log under
	// this directory; with Resume set, experiments a previous (crashed)
	// suite run logged are merged instead of re-executed.
	WALDir string
	Resume bool
	// NoElide disables the static masking tier (every experiment is
	// simulated); NoBatch disables lockstep batch replay (scalar forks).
	// Both exist to measure the tiers' wins and to fall back if needed —
	// outcomes are identical either way.
	NoElide bool
	NoBatch bool
	// HardenTarget, when nonzero, closes the protection loop on every
	// benchmark's original version: the knapsack selection for this target
	// is applied as duplication-and-compare detectors, the hardened program
	// is re-injected, and the measured residual SDC lands in the perf
	// records (residual_sdc, detector_coverage, protection_overhead).
	HardenTarget float64
}

// DefaultOptions mirrors the paper's evaluation setup.
func DefaultOptions() Options {
	return Options{
		Targets: []float64{0.90, 0.95, 0.99},
		EpsGood: 0.01,
		Sens:    sens.DefaultConfig(),
	}
}

// Run is the analysis of one benchmark version.
type Run struct {
	Bench   string
	Variant bench.Variant
	R       *core.Result

	// EvalsStrict is Table 2's setting: ε = 0, target adjustment on.
	EvalsStrict []core.TargetEval
	// EvalsGood is §6.4: ε = EpsGood (0 for SHA2), adjustment on.
	EvalsGood []core.TargetEval
	// EvalsNoAdjust is Table 4's setting: ε = 0, adjustment off.
	EvalsNoAdjust []core.TargetEval

	// Harden is the measured protection loop for Options.HardenTarget,
	// populated only on original versions (nil otherwise).
	Harden *core.HardenEval
}

// Suite holds every run plus the analyzers (kept for re-evaluation, e.g.
// Figure 1's target sweep).
type Suite struct {
	Opts      Options
	Runs      []*Run
	analyzers map[string]*core.Analyzer
}

func (s *Suite) logf(format string, args ...any) {
	if s.Opts.Log != nil {
		fmt.Fprintf(s.Opts.Log, format+"\n", args...)
	}
}

// Get returns the run for one benchmark version, or nil.
func (s *Suite) Get(name string, v bench.Variant) *Run {
	for _, r := range s.Runs {
		if r.Bench == name && r.Variant == v {
			return r
		}
	}
	return nil
}

// epsGoodFor returns the §6.4 threshold for a benchmark: SHA2's outputs
// must be fully precise, so its ε stays 0.
func (s *Suite) epsGoodFor(name string) float64 {
	if name == "sha2" {
		return 0
	}
	return s.Opts.EpsGood
}

// RunSuite analyzes every requested benchmark in all three versions,
// mirroring the paper's workflow: the original version is analyzed from
// scratch (with the monolithic baseline co-run for target adjustment), and
// each modified version reuses stored per-section results.
func RunSuite(opts Options) (*Suite, error) {
	if opts.Targets == nil {
		opts.Targets = DefaultOptions().Targets
	}
	if opts.EpsGood == 0 {
		opts.EpsGood = DefaultOptions().EpsGood
	}
	if opts.Sens == (sens.Config{}) {
		opts.Sens = sens.DefaultConfig()
	}
	names := opts.Benchmarks
	if names == nil {
		names = bench.Names()
	}
	s := &Suite{Opts: opts, analyzers: make(map[string]*core.Analyzer)}

	for _, name := range names {
		cfg := core.DefaultConfig()
		cfg.Targets = opts.Targets
		cfg.Workers = opts.Workers
		cfg.Sens = opts.Sens
		cfg.WALDir = opts.WALDir
		cfg.Resume = opts.Resume
		cfg.Elide = !opts.NoElide
		cfg.NoBatch = opts.NoBatch
		if inacc, ok := bench.PilotInaccuracies[name]; ok {
			cfg.PilotInaccuracy = inacc
		}
		a := core.NewAnalyzer(cfg)
		s.analyzers[name] = a

		noAdjust := *a
		noAdjust.Cfg.AdjustTargets = false

		for _, variant := range bench.Variants {
			p, err := bench.Build(name, variant)
			if err != nil {
				return nil, err
			}
			modified := variant != bench.None
			if modified {
				a.NoteModification()
			}
			r, err := a.Analyze(p)
			if err != nil {
				return nil, fmt.Errorf("tables: %s/%s: %w", name, variant, err)
			}
			a.RunBaseline(r)
			run := &Run{Bench: name, Variant: variant, R: r}
			if run.EvalsStrict, err = a.Evaluate(r, 0, modified); err != nil {
				return nil, fmt.Errorf("tables: %s/%s strict: %w", name, variant, err)
			}
			if run.EvalsGood, err = a.Evaluate(r, s.epsGoodFor(name), modified); err != nil {
				return nil, fmt.Errorf("tables: %s/%s good: %w", name, variant, err)
			}
			if run.EvalsNoAdjust, err = noAdjust.Evaluate(r, 0, modified); err != nil {
				return nil, fmt.Errorf("tables: %s/%s noadjust: %w", name, variant, err)
			}
			if opts.HardenTarget > 0 && variant == bench.None {
				// Close the protection loop on the original version only: the
				// hardened re-injection is a second full campaign, and the
				// residual claim is about the program, not its modifications.
				if run.Harden, err = a.Harden(context.Background(), r, 0, opts.HardenTarget); err != nil {
					return nil, fmt.Errorf("tables: %s/%s harden: %w", name, variant, err)
				}
			}
			s.Runs = append(s.Runs, run)
			s.logf("%-9s %-6s sites=%-9d ff=%7.1fMi base=%7.1fMi speedup=%5.1fx reused=%d/%d",
				name, variant, r.SiteCount,
				float64(r.FFCost())/1e6, float64(r.BaseCost())/1e6,
				float64(r.BaseCost())/float64(max(r.FFCost(), 1)),
				r.ReusedInstances, r.ReusedInstances+r.InjectedInstances)
		}
	}
	return s, nil
}

// Table1 renders the benchmark inventory (paper Table 1).
func (s *Suite) Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: FastFlip benchmarks (sections shown as static(xdynamic))\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tSections\tTrace (dyn. instrs)\t# Error Sites (|J|)")
	for _, name := range s.benchNames() {
		r := s.Get(name, bench.None).R
		static := len(r.Prog.Sections)
		dyn := len(r.Trace.Instances) / static
		fmt.Fprintf(w, "%s\t%d (x%d)\t%d\t%s\n", name, static, dyn, r.Trace.TotalDyn, group(r.SiteCount))
	}
	w.Flush()
	return b.String()
}

// Table2 renders the utility comparison with every SDC unacceptable
// (paper Table 2); pass §6.4's evals selector for the ε = 0.01 variant.
func (s *Suite) Table2() string {
	return s.utilityTable(
		"Table 2: FastFlip vs. baseline utility, eps = 0, with target adjustment",
		func(r *Run) []core.TargetEval { return r.EvalsStrict })
}

// Table64 renders the §6.4 comparison where SDCs up to ε are acceptable.
func (s *Suite) Table64() string {
	return s.utilityTable(
		fmt.Sprintf("Sec 6.4: utility with SDC-Good threshold eps = %g (SHA2 stays 0)", s.Opts.EpsGood),
		func(r *Run) []core.TargetEval { return r.EvalsGood })
}

func (s *Suite) utilityTable(title string, evalsOf func(*Run) []core.TargetEval) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "Benchmark\tModif.")
	for _, t := range s.Opts.Targets {
		fmt.Fprintf(w, "\tValue@%.2f\tCost (diff)", t)
	}
	fmt.Fprintln(w)
	for _, run := range s.Runs {
		fmt.Fprintf(w, "%s\t%s", run.Bench, run.Variant)
		for _, ev := range evalsOf(run) {
			mark := ""
			if ev.WithinRange {
				mark = " *"
			}
			fmt.Fprintf(w, "\t%.3f%s\t%.3f (%+.3f)", ev.Achieved, mark, ev.FFCostFrac, ev.CostDiff)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	b.WriteString("(* = achieved value within FastFlip's pruning error range)\n")
	// Geomean protection cost per target, as quoted in §6.1/§6.4.
	b.WriteString("geomean cost:")
	for i, t := range s.Opts.Targets {
		prod, n := 1.0, 0
		for _, run := range s.Runs {
			prod *= evalsOf(run)[i].FFCostFrac
			n++
		}
		fmt.Fprintf(&b, " %.3f@%.2f", math.Pow(prod, 1/float64(n)), t)
	}
	b.WriteString("\n")
	return b.String()
}

// Table3 renders the analysis cost comparison (paper Table 3). Costs are
// simulated instructions; the paper's core-hours are linear in this.
func (s *Suite) Table3() string {
	var b strings.Builder
	b.WriteString("Table 3: analysis cost (simulated instructions, Mi = 1e6) and wall time\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Benchmark\tModif.\tFastFlip (Mi)\tBaseline (Mi)\tSpeedup\tFF wall\tBase wall\tReused")
	var speedups []float64
	for _, run := range s.Runs {
		r := run.R
		sp := float64(r.BaseCost()) / float64(max(r.FFCost(), 1))
		if run.Variant != bench.None {
			speedups = append(speedups, sp)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1fx\t%s\t%s\t%d/%d\n",
			run.Bench, run.Variant,
			float64(r.FFCost())/1e6, float64(r.BaseCost())/1e6, sp,
			r.FFWall.Round(1e6), r.BaseWall.Round(1e6),
			r.ReusedInstances, r.ReusedInstances+r.InjectedInstances)
	}
	w.Flush()
	if len(speedups) > 0 {
		prod := 1.0
		for _, sp := range speedups {
			prod *= sp
		}
		fmt.Fprintf(&b, "geomean speedup on modified versions: %.1fx\n",
			math.Pow(prod, 1/float64(len(speedups))))
	}
	return b.String()
}

// Table4 renders the Campipe comparison without target adjustment (paper
// Table 4): achieved values only, with the within-error-range marker.
func (s *Suite) Table4() string {
	var b strings.Builder
	b.WriteString("Table 4: Campipe utility WITHOUT target adjustment (cf. Table 2 with)\n")
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "Benchmark\tModif.")
	for _, t := range s.Opts.Targets {
		fmt.Fprintf(w, "\tValue@%.2f", t)
	}
	fmt.Fprintln(w)
	for _, run := range s.Runs {
		if run.Bench != "campipe" {
			continue
		}
		fmt.Fprintf(w, "%s\t%s", run.Bench, run.Variant)
		for _, ev := range run.EvalsNoAdjust {
			mark := " x"
			if ev.WithinRange {
				mark = " *"
			}
			fmt.Fprintf(w, "\t%.3f%s", ev.Achieved, mark)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	b.WriteString("(* = within error range, x = outside; Table 2 shows the adjusted results)\n")
	return b.String()
}

// Figure1 renders the value and cost series of the paper's Figure 1 for
// one benchmark's original version: target vs. achieved value, and target
// vs. protection cost for FastFlip and the baseline.
func (s *Suite) Figure1(name string) (string, error) {
	a := s.analyzers[name]
	run := s.Get(name, bench.None)
	if a == nil || run == nil {
		return "", fmt.Errorf("tables: no %s run in suite", name)
	}
	var targets []float64
	for t := 0.90; t < 0.9951; t += 0.005 {
		targets = append(targets, t)
	}
	evals, err := a.Frontier(run.R, 0, targets)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: %s target sweep (eps = 0)\n", name)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Target\tAchieved\tFF cost\tBaseline cost\tCost diff")
	for _, ev := range evals {
		fmt.Fprintf(w, "%.3f\t%.4f\t%.4f\t%.4f\t%+.4f\n",
			ev.Target, ev.Achieved, ev.FFCostFrac, ev.BaseCostFrac, ev.CostDiff)
	}
	w.Flush()
	return b.String(), nil
}

// Eq2 renders the composed end-to-end SDC specification of a benchmark's
// original version (the paper's Equation 2 for LUD).
func (s *Suite) Eq2(name string) (string, error) {
	run := s.Get(name, bench.None)
	if run == nil {
		return "", fmt.Errorf("tables: no %s run in suite", name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "End-to-end SDC specification for %s (cf. Equation 2):\n", name)
	for λ := range run.R.Prog.FinalOutputs {
		fmt.Fprintf(&b, "  d(%s) <= %s\n", run.R.Prog.FinalOutputs[λ].Name, run.R.FormatSpec(λ))
	}
	return b.String(), nil
}

// PerfRecord is the machine-readable performance digest of one benchmark
// version, written by `ffbench -out`. Sim-instruction figures use the
// paper's accounted cost model; the clean/faulty pairs report the replay
// engine's actual simulated work (see DESIGN.md, "Replay engine").
type PerfRecord struct {
	Bench   string `json:"bench"`
	Variant string `json:"variant"`

	SiteCount int    `json:"site_count"`
	DynInstrs uint64 `json:"dyn_instrs"`
	Reused    int    `json:"reused_instances"`
	Injected  int    `json:"injected_instances"`

	FFExperiments  int    `json:"ff_experiments"`
	FFSimInstrs    uint64 `json:"ff_sim_instrs"`
	FFCleanInstrs  uint64 `json:"ff_clean_instrs"`
	FFFaultyInstrs uint64 `json:"ff_faulty_instrs"`
	FFWallNs       int64  `json:"ff_wall_ns"`
	// The elision tiers' contribution: experiments the masking tier proved
	// Masked without simulation (and their accounted cost share), the
	// simulated remainder, and how much of it ran inside lockstep batches.
	FFElidedExperiments   int     `json:"ff_elided_experiments"`
	FFElidedSimInstrs     uint64  `json:"ff_elided_sim_instrs"`
	FFExecutedExperiments int     `json:"ff_executed_experiments"`
	FFBatchedExperiments  int     `json:"ff_batched_experiments"`
	FFBatchReplicasAvg    float64 `json:"ff_batch_replicas_avg"`
	BaseExperims          int     `json:"base_experiments"`
	BaseSimInstrs         uint64  `json:"base_sim_instrs"`
	BaseCleanInstr        uint64  `json:"base_clean_instrs"`
	BaseFaultyInst        uint64  `json:"base_faulty_instrs"`
	BaseWallNs            int64   `json:"base_wall_ns"`
	Speedup               float64 `json:"speedup"`

	// The measured protection loop (Options.HardenTarget; original
	// versions only). ResidualSDC is the hardened program's own SDC-Bad
	// site count, PredictedResidual the bound computed before re-injection.
	HardenTarget       float64 `json:"harden_target,omitempty"`
	ResidualSDC        int     `json:"residual_sdc,omitempty"`
	PredictedResidual  int     `json:"predicted_residual,omitempty"`
	DetectorCoverage   float64 `json:"detector_coverage,omitempty"`
	ProtectionOverhead float64 `json:"protection_overhead,omitempty"`
}

// PerfRecords digests every run of the suite for machine-readable output.
func (s *Suite) PerfRecords() []PerfRecord {
	recs := make([]PerfRecord, 0, len(s.Runs))
	for _, run := range s.Runs {
		r := run.R
		rec := PerfRecord{
			Bench:                 run.Bench,
			Variant:               string(run.Variant),
			SiteCount:             r.SiteCount,
			DynInstrs:             r.Trace.TotalDyn,
			Reused:                r.ReusedInstances,
			Injected:              r.InjectedInstances,
			FFExperiments:         r.FFInject.Experiments,
			FFSimInstrs:           r.FFCost(),
			FFCleanInstrs:         r.FFInject.CleanInstrs,
			FFFaultyInstrs:        r.FFInject.FaultyInstrs,
			FFWallNs:              r.FFWall.Nanoseconds(),
			FFElidedExperiments:   r.FFInject.ElidedExperiments,
			FFElidedSimInstrs:     r.FFInject.ElidedInstrs,
			FFExecutedExperiments: r.FFInject.Experiments - r.FFInject.ElidedExperiments,
			FFBatchedExperiments:  r.FFInject.BatchExperiments,
			BaseExperims:          r.BaseInject.Experiments,
			BaseSimInstrs:         r.BaseCost(),
			BaseCleanInstr:        r.BaseInject.CleanInstrs,
			BaseFaultyInst:        r.BaseInject.FaultyInstrs,
			BaseWallNs:            r.BaseWall.Nanoseconds(),
			Speedup:               float64(r.BaseCost()) / float64(max(r.FFCost(), 1)),
		}
		if b := r.FFInject.Batches; b > 0 {
			rec.FFBatchReplicasAvg = float64(r.FFInject.BatchExperiments) / float64(b)
		}
		if h := run.Harden; h != nil {
			rec.HardenTarget = h.Target
			rec.ResidualSDC = h.ResidualSDC
			rec.PredictedResidual = h.PredictedResidual
			rec.DetectorCoverage = h.DetectorCoverage
			rec.ProtectionOverhead = h.ProtectionOverhead
		}
		recs = append(recs, rec)
	}
	return recs
}

func (s *Suite) benchNames() []string {
	seen := map[string]bool{}
	var names []string
	for _, r := range s.Runs {
		if !seen[r.Bench] {
			seen[r.Bench] = true
			names = append(names, r.Bench)
		}
	}
	sort.Strings(names)
	return names
}

// group formats n with thousands separators (for the site counts).
func group(n int) string {
	str := fmt.Sprintf("%d", n)
	var parts []string
	for len(str) > 3 {
		parts = append([]string{str[len(str)-3:]}, parts...)
		str = str[:len(str)-3]
	}
	parts = append([]string{str}, parts...)
	return strings.Join(parts, ",")
}
